/**
 * @file
 * Fig 10: the benefit of deterministic non-minimal routing as message
 * size and path diversity vary, inside the 8-TSP fully-connected
 * node (1 minimal path, up to 7 non-minimal 2-hop paths per pair).
 * Benefit = latency(minimal only) / latency(spread).
 *
 * Includes the node-wiring ablation: the triple-ring torus node
 * trades all-pair connectivity for 3x nearest-neighbour bandwidth.
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/table.hh"
#include "scenario/runner.hh"
#include "ssn/scheduler.hh"
#include "ssn/spread.hh"
#include "trace/session.hh"

using namespace tsm;

namespace {

std::vector<PathChoice>
nodePaths(unsigned nonminimal)
{
    std::vector<PathChoice> paths;
    paths.push_back({{}, flightCycles(LinkClass::IntraNode)});
    for (unsigned p = 0; p < nonminimal; ++p)
        paths.push_back(
            {{}, 2 * flightCycles(LinkClass::IntraNode) + forwardCycles()});
    return paths;
}

} // namespace

int
main(int argc, char **argv)
{
    TraceOptions opts;
    std::uint64_t seed = 1;
    double mbe = 0.0;
    std::string scenarioPath =
        TSM_SCENARIO_DIR "/fig10_nonminimal_routing.json";
    CliParser cli("fig10_nonminimal_routing");
    opts.registerFlags(cli);
    cli.addValue("--seed", &seed, "network RNG seed for the traced run");
    cli.addValue("--mbe", &mbe,
                 "injected FEC multi-bit error rate per vector");
    cli.addValue("--scenario", &scenarioPath,
                 "scenario file for the instrumented timeline");
    if (!cli.parse(argc, argv))
        return 2;
    TraceSession session(std::move(opts));
    session.setRun("fig10_nonminimal_routing", 0);

    // The instrumented timeline is the figure's cross-check transfer —
    // the 64 KB spread across the full mesh's non-minimal paths — as
    // a checked-in scenario document; the speedup tables below stay
    // analytic.
    if (session.active()) {
        Scenario sc;
        std::string error;
        if (!loadScenarioFile(scenarioPath, sc, &error)) {
            std::fprintf(stderr, "scenario: %s\n", error.c_str());
            return 2;
        }
        ScenarioOverrides over;
        over.seed = seed;
        over.mbe = mbe;
        runScenario(session, sc, over);
    }

    std::printf("=== Fig 10: benefit of non-minimal routing vs message "
                "size and path count ===\n\n");
    Table table({"message", "KB", "1 path", "3 paths", "5 paths",
                 "7 paths"});
    for (Bytes kb : {1ull, 2ull, 4ull, 8ull, 16ull, 32ull, 64ull, 128ull,
                     256ull, 512ull, 1024ull}) {
        const auto vectors = std::uint32_t(bytesToVectors(kb * kKiB));
        const Cycle minimal_only =
            pathCompletionCycles(vectors, nodePaths(0)[0].latencyCycles);
        std::vector<std::string> cells{std::to_string(kb) + " KB",
                                       Table::num(std::uint64_t(kb))};
        for (unsigned p : {1u, 3u, 5u, 7u}) {
            const auto plan = spreadVectors(vectors, nodePaths(p));
            cells.push_back(Table::num(
                double(minimal_only) / double(plan.completionCycles), 2));
        }
        table.addRow(std::move(cells));
    }
    std::printf("speedup over minimal-only routing:\n%s\n",
                table.ascii().c_str());
    std::printf("below ~8 KB there is no benefit (the detour costs more "
                "than the spread saves);\nbeyond it, more paths help "
                "more as messages grow (paper Fig 10).\n\n");

    // Cross-check with the full scheduler on the real topology.
    std::printf("scheduler cross-check (64 KB, TSP0 -> TSP1):\n");
    const Topology topo = Topology::makeNode();
    for (bool spread : {false, true}) {
        SsnScheduler s(topo, {.loadBalance = spread});
        TensorTransfer t;
        t.flow = 1;
        t.src = 0;
        t.dst = 1;
        t.vectors = std::uint32_t(bytesToVectors(64 * kKiB));
        const auto sched = s.schedule({t});
        std::printf("  %-13s makespan %6.2f us over %u path(s)\n",
                    spread ? "spread:" : "minimal only:",
                    double(sched.makespan) / kCoreFreqHz * 1e6,
                    sched.flows.at(1).pathsUsed);
    }

    // Node-wiring ablation (§4.4).
    std::printf("\nnode-wiring ablation (64 KB nearest-neighbour "
                "transfer):\n");
    for (auto wiring : {NodeWiring::FullMesh, NodeWiring::TripleRing}) {
        const Topology node = Topology::makeNode(wiring);
        SsnScheduler s(node, {.maxExtraHops = 1});
        TensorTransfer t;
        t.flow = 1;
        t.src = 0;
        t.dst = 1; // ring neighbour
        t.vectors = std::uint32_t(bytesToVectors(64 * kKiB));
        const auto sched = s.schedule({t});
        std::printf("  %-12s makespan %6.2f us (%u paths, %zu direct "
                    "links)\n",
                    wiring == NodeWiring::FullMesh ? "full mesh:"
                                                   : "triple ring:",
                    double(sched.makespan) / kCoreFreqHz * 1e6,
                    sched.flows.at(1).pathsUsed,
                    node.linksBetween(0, 1).size());
    }
    session.finish();
    return 0;
}
