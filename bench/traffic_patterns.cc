/**
 * @file
 * Extension bench (§5.6 theme): the standard synthetic traffic
 * patterns on an 8-TSP node and a 2-node system, comparing the SSN
 * schedule's completion against the dynamically routed baseline's —
 * including the baseline's latency spread, which SSN does not have.
 */

#include <cstdio>

#include "baseline/hw_router.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "ssn/scheduler.hh"
#include "workload/traffic_gen.hh"

using namespace tsm;

namespace {

void
sweep(const Topology &topo, const char *title, std::uint32_t vectors)
{
    std::printf("%s (%u vectors per flow):\n", title, vectors);
    Table table({"pattern", "SSN us", "router us", "router p99-p1 ns"});
    for (TrafficPattern p : allTrafficPatterns()) {
        const auto transfers = generateTraffic(topo, p, vectors, 7);

        SsnScheduler scheduler(topo);
        const auto sched = scheduler.schedule(transfers);

        EventQueue eq;
        HwRoutedNetwork hw(topo, eq, Rng(7));
        for (const auto &t : transfers)
            hw.inject(t.flow, t.src, t.dst, t.vectors, 0);
        eq.run();
        Tick hw_done = 0;
        for (const auto &t : transfers)
            hw_done = std::max(hw_done, hw.flowCompletion(t.flow));
        const auto &lat = hw.packetLatencyNs();

        table.addRow(
            {trafficPatternName(p),
             Table::num(double(sched.makespan) / kCoreFreqHz * 1e6, 2),
             Table::num(psToUs(double(hw_done)), 2),
             Table::num(lat.percentile(0.99) - lat.percentile(0.01),
                        0)});
    }
    std::printf("%s\n", table.ascii().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("traffic_patterns");
    if (!cli.parse(argc, argv))
        return 2;

    std::printf("=== Synthetic traffic patterns: scheduled vs routed "
                "===\n\n");
    sweep(Topology::makeNode(), "8-TSP node", 64);
    sweep(Topology::makeSingleLevel(2), "2-node dragonfly (16 TSPs)",
          32);
    std::printf("SSN completion is comparable to (often better than) "
                "dynamic routing while\ncarrying zero per-packet "
                "latency variance; the router's p99-p1 spread grows\n"
                "with adversity (incast) — paper Figs 1/8's argument "
                "across the classic patterns.\n");
    return 0;
}
