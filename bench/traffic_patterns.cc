/**
 * @file
 * Extension bench (§5.6 theme): the standard synthetic traffic
 * patterns on an 8-TSP node and a 2-node system, comparing the SSN
 * schedule's completion against the dynamically routed baseline's —
 * including the baseline's latency spread, which SSN does not have.
 *
 * The patterns themselves are checked-in scenario files under
 * scenarios/traffic/; this binary is a thin loader over them.
 */

#include <cstdio>
#include <string>

#include "baseline/hw_router.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "scenario/scenario.hh"
#include "ssn/scheduler.hh"
#include "trace/session.hh"
#include "workload/traffic_gen.hh"

using namespace tsm;

namespace {

bool
sweep(TraceSession &session, const std::string &dir, const char *prefix,
      const char *title)
{
    std::uint32_t vectors = 0;
    Table table({"pattern", "SSN us", "router us", "router p99-p1 ns"});
    for (TrafficPattern p : allTrafficPatterns()) {
        const std::string path = dir + "/" + prefix +
                                 trafficPatternName(p) + ".json";
        Scenario sc;
        std::string error;
        if (!loadScenarioFile(path, sc, &error)) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return false;
        }
        const Topology topo = sc.topology.build();
        const auto lowered = lowerScenario(sc, topo);
        const auto &transfers = lowered.transfers;
        if (!sc.patterns.empty())
            vectors = sc.patterns.front().vectors;

        SsnScheduler scheduler(topo, sc.ssn);
        const auto sched = scheduler.schedule(transfers);

        EventQueue eq;
        eq.setHostProfiler(session.hostprof());
        HwRoutedNetwork hw(topo, eq, Rng(sc.seed));
        for (const auto &t : transfers)
            hw.inject(t.flow, t.src, t.dst, t.vectors, 0);
        eq.run();
        Tick hw_done = 0;
        for (const auto &t : transfers)
            hw_done = std::max(hw_done, hw.flowCompletion(t.flow));
        const auto &lat = hw.packetLatencyNs();

        table.addRow(
            {trafficPatternName(p),
             Table::num(double(sched.makespan) / kCoreFreqHz * 1e6, 2),
             Table::num(psToUs(double(hw_done)), 2),
             Table::num(lat.percentile(0.99) - lat.percentile(0.01),
                        0)});
    }
    std::printf("%s (%u vectors per flow):\n", title, vectors);
    std::printf("%s\n", table.ascii().c_str());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dir = TSM_SCENARIO_DIR "/traffic";
    TraceOptions opts;
    CliParser cli("traffic_patterns");
    opts.registerFlags(cli);
    cli.addValue("--scenario-dir", &dir,
                 "directory holding the traffic scenario files");
    if (!cli.parse(argc, argv))
        return 2;
    TraceSession session(std::move(opts));
    session.setRun("traffic_patterns", 0);

    std::printf("=== Synthetic traffic patterns: scheduled vs routed "
                "===\n\n");
    if (!sweep(session, dir, "node_", "8-TSP node"))
        return 2;
    if (!sweep(session, dir, "system2_", "2-node dragonfly (16 TSPs)"))
        return 2;
    session.finish();
    std::printf("SSN completion is comparable to (often better than) "
                "dynamic routing while\ncarrying zero per-packet "
                "latency variance; the router's p99-p1 spread grows\n"
                "with adversity (incast) — paper Figs 1/8's argument "
                "across the classic patterns.\n");
    return 0;
}
