/**
 * @file
 * Extension bench for the introduction's capability/capacity duality:
 * the same machinery serving strong scaling (fixed problem, more
 * TSPs, minimize latency) and weak scaling (problem grows with the
 * machine, maximize throughput) — using the distributed matmul
 * planner on both axes.
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/table.hh"
#include "workload/matmul.hh"
#include "trace/session.hh"

using namespace tsm;

int
main(int argc, char **argv)
{
    // Analytic bench: the trace flags are accepted for harness
    // uniformity; --hostprof reports an honest zero-event run.
    TraceOptions opts;
    CliParser cli("ext_scaling_duality");
    opts.registerFlags(cli);
    if (!cli.parse(argc, argv))
        return 2;
    TraceSession session(std::move(opts));
    session.setRun("ext_scaling_duality", 0);

    const TspCostModel cost;

    std::printf("=== Extension: strong vs weak scaling on distributed "
                "matmul ===\n\n");

    std::printf("strong scaling (capability): fixed "
                "[800x32576][32576x8192], more TSPs:\n");
    Table strong({"TSPs", "latency us", "speedup", "efficiency %"});
    double t8 = 0.0;
    for (unsigned r : {1u, 2u, 4u, 8u, 13u}) {
        DistMatmulConfig cfg;
        cfg.rowSplits = r;
        const auto res = planDistributedMatmul(cfg, cost);
        if (r == 1)
            t8 = res.seconds;
        const double speedup = t8 / res.seconds;
        strong.addRow({Table::num(res.tsps),
                       Table::num(res.seconds * 1e6, 1),
                       Table::num(speedup, 2) + "x",
                       Table::num(100.0 * speedup / r, 1)});
    }
    std::printf("%s\n", strong.ascii().c_str());

    std::printf("weak scaling (capacity): output columns grow with "
                "the machine (1024/TSP):\n");
    Table weak({"TSPs", "N", "latency us", "TFLOPs", "TFLOPs/TSP"});
    for (unsigned x : {8u, 16u, 32u, 64u}) {
        DistMatmulConfig cfg;
        cfg.colSplits = x;
        cfg.rowSplits = 1;
        cfg.n = 1024ull * x; // problem grows with the machine
        const auto res = planDistributedMatmul(cfg, cost);
        weak.addRow({Table::num(res.tsps), Table::num(cfg.n),
                     Table::num(res.seconds * 1e6, 1),
                     Table::num(res.tflops, 0),
                     Table::num(res.tflops / res.tsps, 1)});
    }
    std::printf("%s\n", weak.ascii().c_str());
    std::printf("strong scaling buys latency at falling efficiency "
                "(reduction traffic);\nweak scaling holds per-TSP "
                "throughput flat — the two regimes the Dragonfly's\n"
                "flat global bandwidth is built to serve "
                "simultaneously (paper §1).\n");
    session.finish();
    return 0;
}
