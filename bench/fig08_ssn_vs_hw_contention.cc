/**
 * @file
 * Fig 8 (and Fig 1's premise): the same contended traffic pattern on
 * (a) a conventional hardware-routed network — arbitration, queueing,
 * back-pressure, and therefore latency variance — and (b) the
 * software-scheduled network, where the compiler resolves the
 * contention and every vector lands at a precomputed cycle with zero
 * variance.
 *
 * Also reports the FEC-vs-retry ablation: with FEC, injected bit
 * errors leave delivery timing untouched.
 */

#include <cstdio>
#include <memory>

#include "arch/chip.hh"
#include "baseline/hw_router.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "prof/report.hh"
#include "ssn/schedule_trace.hh"
#include "ssn/scheduler.hh"
#include "trace/session.hh"

using namespace tsm;

int
main(int argc, char **argv)
{
    // --trace=FILE / --metrics / --digest / --report=FILE instrument
    // the SSN execution phase below (schedule replay + chips +
    // network).
    TraceOptions opts;
    CliParser cli("fig08_ssn_vs_hw_contention");
    opts.registerFlags(cli);
    if (!cli.parse(argc, argv))
        return 2;
    TraceSession session(std::move(opts));
    std::printf("=== Fig 8: routed-with-contention vs "
                "software-scheduled ===\n\n");
    // The paper's scenario: A and B both send to D, contending for
    // the shared link; here 4 contending flows inside the ring-wired
    // node so minimal routes share intermediate links.
    const Topology topo = Topology::makeNode(NodeWiring::TripleRing);
    const unsigned kVectors = 256;

    // (a) Conventional: dynamic arbitration -> latency variance.
    Table hw_table({"routing", "p1 ns", "p50 ns", "p99 ns",
                    "spread ns"});
    for (auto routing : {HwRouting::DeterministicMinimal,
                         HwRouting::ObliviousMinimal,
                         HwRouting::AdaptiveMinimal}) {
        EventQueue eq;
        // The host profiler spans all phases (runs accumulate): the
        // hardware-routed loops are where router_hop events come from.
        eq.setHostProfiler(session.hostprof());
        HwRoutedNetwork hw(topo, eq, Rng(5), {routing, 8});
        hw.inject(1, 0, 2, kVectors, 0);
        hw.inject(2, 1, 2, kVectors, 0);
        hw.inject(3, 3, 2, kVectors, 0);
        hw.inject(4, 4, 2, kVectors, 0);
        eq.run();
        const auto &lat = hw.packetLatencyNs();
        const char *name =
            routing == HwRouting::DeterministicMinimal ? "deterministic"
            : routing == HwRouting::ObliviousMinimal   ? "oblivious"
                                                       : "adaptive";
        hw_table.addRow(
            {name, Table::num(lat.percentile(0.01), 0),
             Table::num(lat.percentile(0.50), 0),
             Table::num(lat.percentile(0.99), 0),
             Table::num(lat.percentile(0.99) - lat.percentile(0.01),
                        0)});
    }
    std::printf("hardware-routed baseline (per-packet network latency):"
                "\n%s\n",
                hw_table.ascii().c_str());

    // (b) SSN: schedule the identical flows; arrivals are exact.
    SsnScheduler scheduler(topo, {.maxExtraHops = 2});
    std::vector<TensorTransfer> transfers;
    for (unsigned f = 0; f < 4; ++f) {
        TensorTransfer t;
        t.flow = f + 1;
        t.src = TspId(f < 2 ? f : f + 1); // 0, 1, 3, 4
        t.dst = 2;
        t.vectors = kVectors;
        transfers.push_back(t);
    }
    const auto schedule = scheduler.schedule(transfers);
    session.setRun("fig08_ssn_vs_hw_contention", 6);
    if (ProfileCollector *prof = session.profile())
        prof->setSchedule(schedule, topo, transfers);
    const auto report = validateSchedule(schedule, topo);
    std::printf("software-scheduled network:\n");
    std::printf("  schedule: %zu vectors, 0 conflicts (%s), makespan "
                "%.2f us\n",
                schedule.vectors.size(), report.ok ? "validated" : "BUG",
                double(schedule.makespan) / kCoreFreqHz * 1e6);
    std::printf("  arrival-time variance: 0 (every vector lands at its "
                "precomputed cycle;\n  the simulator panics on any "
                "deviation)\n\n");

    // Execute on chips to demonstrate the zero-variance claim is
    // enforced, not asserted.
    EventQueue eq;
    session.attach(eq.tracer());
    eq.setHostProfiler(session.hostprof());
    traceSchedule(eq.tracer(), schedule);
    Network net(topo, eq, Rng(6));
    std::vector<std::unique_ptr<TspChip>> chips;
    for (TspId t = 0; t < topo.numTsps(); ++t)
        chips.push_back(std::make_unique<TspChip>(t, net, DriftClock()));
    auto programs = buildPrograms(schedule, topo);
    for (TspId t = 0; t < topo.numTsps(); ++t) {
        chips[t]->setStream(0, makeVec(Vec(1.0f)));
        programs.byChip[t].emitHalt();
        chips[t]->load(std::move(programs.byChip[t]));
        chips[t]->start(0);
    }
    eq.run();
    session.finish();
    std::printf("  executed: destination received %llu vectors, %llu "
                "corrupt, all on schedule\n\n",
                (unsigned long long)chips[2]->stats().flitsReceived,
                (unsigned long long)chips[2]->stats().corruptReceived);

    // FEC ablation (§4.5): errors do not perturb timing.
    EventQueue eq2;
    Network clean(topo, eq2, Rng(7));
    const LinkId l01 = topo.linksBetween(0, 1)[0];
    Flit probe;
    probe.flow = 1;
    const Tick t_clean = clean.transmit(0, l01, probe, 0);
    EventQueue eq3;
    Network noisy(topo, eq3, Rng(7));
    noisy.setErrorModel({.sbePerVector = 0.5, .mbePerVector = 0.1});
    const Tick t_noisy = noisy.transmit(0, l01, probe, 0);
    std::printf("FEC ablation: arrival with clean link %llu ps, with "
                "injected errors %llu ps\n(identical — a link-layer "
                "retry would have shifted it by a full round trip)\n",
                (unsigned long long)t_clean,
                (unsigned long long)t_noisy);
    return 0;
}
