/**
 * @file
 * Fig 8 (and Fig 1's premise): the same contended traffic pattern on
 * (a) a conventional hardware-routed network — arbitration, queueing,
 * back-pressure, and therefore latency variance — and (b) the
 * software-scheduled network, where the compiler resolves the
 * contention and every vector lands at a precomputed cycle with zero
 * variance.
 *
 * Also reports the FEC-vs-retry ablation: with FEC, injected bit
 * errors leave delivery timing untouched.
 */

#include <cstdio>

#include "baseline/hw_router.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "net/network.hh"
#include "prof/report.hh"
#include "scenario/runner.hh"
#include "ssn/schedule_trace.hh"
#include "trace/session.hh"

using namespace tsm;

int
main(int argc, char **argv)
{
    // --trace=FILE / --metrics / --digest / --report=FILE instrument
    // the SSN execution phase below (schedule replay + chips +
    // network).
    TraceOptions opts;
    CliParser cli("fig08_ssn_vs_hw_contention");
    opts.registerFlags(cli);
    std::string hw_blame_path;
    std::uint64_t hw_seed = 5;
    std::string scenarioPath =
        TSM_SCENARIO_DIR "/fig08_ssn_vs_hw_contention.json";
    std::uint64_t seed = 6;
    cli.addValue("--hw-blame", &hw_blame_path,
                 "write the hardware-routed baseline's tsm-blame-v1 "
                 "(oblivious policy) to FILE");
    cli.addValue("--hw-seed", &hw_seed,
                 "seed of the hardware-routed baseline (default 5)");
    cli.addValue("--scenario", &scenarioPath,
                 "scenario file for the software-scheduled phase");
    cli.addValue("--seed", &seed,
                 "network RNG seed for the software-scheduled phase");
    if (!cli.parse(argc, argv))
        return 2;
    TraceSession session(std::move(opts));
    std::printf("=== Fig 8: routed-with-contention vs "
                "software-scheduled ===\n\n");
    // The paper's scenario: A and B both send to D, contending for
    // the shared link; here 4 contending flows inside the ring-wired
    // node so minimal routes share intermediate links.
    const Topology topo = Topology::makeNode(NodeWiring::TripleRing);
    const unsigned kVectors = 256;

    // (a) Conventional: dynamic arbitration -> latency variance.
    Table hw_table({"routing", "p1 ns", "p50 ns", "p99 ns",
                    "spread ns"});
    for (auto routing : {HwRouting::DeterministicMinimal,
                         HwRouting::ObliviousMinimal,
                         HwRouting::AdaptiveMinimal}) {
        EventQueue eq;
        // The host profiler spans all phases (runs accumulate): the
        // hardware-routed loops are where router_hop events come from.
        eq.setHostProfiler(session.hostprof());
        HwRoutedNetwork hw(topo, eq, Rng(hw_seed), {routing, 8});
        // Blame the seed-sensitive policy: with --hw-seed varied the
        // resulting document varies too — the contrast to the SSN
        // blame, which is byte-identical across seeds.
        HwBlameRecorder hw_blame;
        if (!hw_blame_path.empty() &&
            routing == HwRouting::ObliviousMinimal)
            hw.setBlame(&hw_blame);
        hw.inject(1, 0, 2, kVectors, 0);
        hw.inject(2, 1, 2, kVectors, 0);
        hw.inject(3, 3, 2, kVectors, 0);
        hw.inject(4, 4, 2, kVectors, 0);
        eq.run();
        if (!hw_blame_path.empty() &&
            routing == HwRouting::ObliviousMinimal) {
            std::string error;
            if (writeProfileReport(
                    hw_blame_path,
                    hw_blame.report("fig08_ssn_vs_hw_contention",
                                    hw_seed),
                    &error))
                std::printf("hw blame: wrote %s\n",
                            hw_blame_path.c_str());
            else
                std::fprintf(stderr, "hw blame: %s\n", error.c_str());
        }
        const auto &lat = hw.packetLatencyNs();
        const char *name =
            routing == HwRouting::DeterministicMinimal ? "deterministic"
            : routing == HwRouting::ObliviousMinimal   ? "oblivious"
                                                       : "adaptive";
        hw_table.addRow(
            {name, Table::num(lat.percentile(0.01), 0),
             Table::num(lat.percentile(0.50), 0),
             Table::num(lat.percentile(0.99), 0),
             Table::num(lat.percentile(0.99) - lat.percentile(0.01),
                        0)});
    }
    std::printf("hardware-routed baseline (per-packet network latency):"
                "\n%s\n",
                hw_table.ascii().c_str());

    // (b) SSN: the identical flows, described by the checked-in
    // scenario document and executed through the scenario runner (a
    // golden test pins the journal to the pre-port hand-built list).
    Scenario sc;
    std::string error;
    if (!loadScenarioFile(scenarioPath, sc, &error)) {
        std::fprintf(stderr, "scenario: %s\n", error.c_str());
        return 2;
    }
    ScenarioOverrides over;
    over.seed = seed;
    const ScenarioRunResult run = runScenario(session, sc, over);
    const auto report = validateSchedule(run.traced.schedule, topo);
    std::printf("software-scheduled network:\n");
    std::printf("  schedule: %zu vectors, 0 conflicts (%s), makespan "
                "%.2f us\n",
                run.traced.schedule.vectors.size(),
                report.ok ? "validated" : "BUG",
                double(run.makespan) / kCoreFreqHz * 1e6);
    std::printf("  arrival-time variance: 0 (every vector lands at its "
                "precomputed cycle;\n  the simulator panics on any "
                "deviation)\n\n");
    session.finish();
    std::printf("  executed: %llu flits delivered across %u links, all "
                "on schedule\n\n",
                (unsigned long long)run.traced.flitsDelivered,
                run.traced.links);

    // FEC ablation (§4.5): errors do not perturb timing.
    EventQueue eq2;
    Network clean(topo, eq2, Rng(7));
    const LinkId l01 = topo.linksBetween(0, 1)[0];
    Flit probe;
    probe.flow = 1;
    const Tick t_clean = clean.transmit(0, l01, probe, 0);
    EventQueue eq3;
    Network noisy(topo, eq3, Rng(7));
    noisy.setErrorModel({.sbePerVector = 0.5, .mbePerVector = 0.1});
    const Tick t_noisy = noisy.transmit(0, l01, probe, 0);
    std::printf("FEC ablation: arrival with clean link %llu ps, with "
                "injected errors %llu ps\n(identical — a link-layer "
                "retry would have shifted it by a full round trip)\n",
                (unsigned long long)t_clean,
                (unsigned long long)t_noisy);
    return 0;
}
