/**
 * @file
 * Table 2: HAC latency characterization of the seven intra-node C2C
 * links of one TSP, 100 K echo iterations per link, reporting
 * min/mean/max/std in core cycles.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "common/cli.hh"
#include "common/table.hh"
#include "sync/link_characterizer.hh"
#include "trace/session.hh"

using namespace tsm;

int
main(int argc, char **argv)
{
    TraceOptions opts;
    CliParser cli("table2_hac_characterization");
    opts.registerFlags(cli);
    if (!cli.parse(argc, argv))
        return 2;
    TraceSession session(std::move(opts));
    session.setRun("table2_hac_characterization", 20260706);

    std::printf("=== Table 2: HAC latency characterization "
                "(100K iterations per link) ===\n\n");

    const Topology topo = Topology::makeNode();
    EventQueue eq;
    session.attach(eq.tracer());
    eq.setHostProfiler(session.hostprof());
    Network net(topo, eq, Rng(20260706), /*jitter=*/true);
    Rng drift(7);
    std::vector<std::unique_ptr<TspChip>> chips;
    for (TspId t = 0; t < topo.numTsps(); ++t) {
        // Independent plesiochronous clocks, as in the real node.
        const double ppm = t == 0 ? 0.0 : drift.uniform(-50.0, 50.0);
        chips.push_back(std::make_unique<TspChip>(
            t, net, DriftClock(ppm, Tick(drift.below(100000)))));
    }

    Table table({"link", "min", "mean", "max", "std"});
    const char *names = "ABCDEFG";
    for (TspId peer = 1; peer < 8; ++peer) {
        const LinkId link = topo.linksBetween(0, peer)[0];
        LinkCharacterizer lc(*chips[0], *chips[peer], link);
        lc.start(100000);
        eq.run();
        const auto &st = lc.latencyCycles();
        table.addRow({std::string(1, names[peer - 1]),
                      Table::num(st.min(), 0), Table::num(st.mean(), 2),
                      Table::num(st.max(), 0),
                      Table::num(st.stddev(), 2)});
    }
    std::printf("%s\n", table.ascii().c_str());
    std::printf("paper Table 2: min 209-211, mean 216.3-217.4, max "
                "225-228, std 2.63-2.93\n");
    session.finish();
    return 0;
}
