/**
 * @file
 * Fig 13: single-chip matmul utilization, TSP vs A100, for
 * [2304 x 4096] x [4096 x N], N = 1376..3500 — the TSP's
 * quantization-only losses stay above 80% while the GPU's tile/wave
 * quantization produces the sawtooth.
 */

#include <cstdio>

#include "baseline/gpu_matmul.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "trace/session.hh"

using namespace tsm;

int
main(int argc, char **argv)
{
    // Analytic bench: the trace flags are accepted for harness
    // uniformity; --hostprof reports an honest zero-event run.
    TraceOptions opts;
    CliParser cli("fig13_matmul_utilization");
    opts.registerFlags(cli);
    if (!cli.parse(argc, argv))
        return 2;
    TraceSession session(std::move(opts));
    session.setRun("fig13_matmul_utilization", 0);

    std::printf("=== Fig 13: [2304x4096][4096xN] utilization, TSP vs "
                "A100 ===\n\n");
    const GpuModel gpu;
    const TspMatmulModel tsp;

    Table table({"N", "TSP util %", "TSP TFLOPs", "A100 util %",
                 "A100 TFLOPs"});
    double tsp_min = 1.0, gpu_min = 1.0, gpu_max = 0.0;
    for (std::uint64_t n = 1376; n <= 3500; n += 59) {
        const auto t = tspGemmUtilization(tsp, 2304, 4096, n);
        const auto g = gpuGemmUtilization(gpu, 2304, 4096, n);
        table.addRow({Table::num(n), Table::num(t.utilization * 100, 1),
                      Table::num(t.tflops, 0),
                      Table::num(g.utilization * 100, 1),
                      Table::num(g.tflops, 0)});
        tsp_min = std::min(tsp_min, t.utilization);
        gpu_min = std::min(gpu_min, g.utilization);
        gpu_max = std::max(gpu_max, g.utilization);
    }
    std::printf("%s\n", table.ascii().c_str());
    std::printf("TSP worst-case utilization across the sweep: %.1f%% "
                "(paper: consistently >= 80%%)\n",
                tsp_min * 100);
    std::printf("A100 swings between %.1f%% and %.1f%% with the "
                "tile/wave sawtooth\n",
                gpu_min * 100, gpu_max * 100);
    session.finish();
    return 0;
}
