/**
 * @file
 * Fig 16: realized bus bandwidth of an 8-way All-Reduce vs tensor
 * size — the TSP's synchronous, flag-free fabric vs the GPU
 * shared-memory baseline (raw and pin-normalized), plus the zoomed
 * small-message region and the §5.6 latency budget.
 */

#include <cstdio>
#include <memory>

#include "arch/chip.hh"
#include "baseline/sharedmem_allreduce.hh"
#include "collective/allreduce.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "prof/report.hh"
#include "runtime/traced_scenario.hh"
#include "ssn/scheduler.hh"
#include "trace/session.hh"

using namespace tsm;

namespace {

std::string
sizeLabel(Bytes bytes)
{
    if (bytes >= kMiB)
        return std::to_string(bytes / kMiB) + " MiB";
    return std::to_string(bytes / kKiB) + " KiB";
}

} // namespace

int
main(int argc, char **argv)
{
    TraceOptions opts;
    std::uint64_t seed = 1;
    double mbe = 0.0;
    CliParser cli("fig16_allreduce");
    opts.registerFlags(cli);
    cli.addValue("--seed", &seed, "network RNG seed for the traced run");
    cli.addValue("--mbe", &mbe,
                 "injected FEC multi-bit error rate per vector");
    if (!cli.parse(argc, argv))
        return 2;
    TraceSession session(std::move(opts));

    std::printf("=== Fig 16: 8-way All-Reduce realized bandwidth "
                "===\n\n");
    const Topology node = Topology::makeNode();
    HierarchicalAllReduce tsp(node);

    // The figure's tables are evaluated through the scheduler, so the
    // instrumented timeline is a representative stage-1 reduce-scatter
    // schedule — replayed as planned Ssn events AND executed on chips,
    // which is what gives the profiler a real simulated timeline to
    // attribute against the static analysis. 32 KiB is the largest
    // all-to-all the stream-register allocator can lower single-hop.
    if (session.active()) {
        constexpr Bytes kTracedBytes = 32 * kKiB;
        const auto transfers = tsp.reduceScatterTransfers(kTracedBytes, 1, 0);
        runScheduledScenario(session, node, transfers, "fig16_allreduce",
                             seed, mbe);
        if (ProfileCollector *prof = session.profile())
            prof->addExtra("traced_tensor_bytes", double(kTracedBytes));
    }
    const GpuAllReduceModel gpu;
    // The TSP exposes 7x12.5 GB/s of intra-node links; pin-normalize
    // the A100's 300 GB/s down to it (the paper's second A100 curve).
    const double tsp_pin = 7 * kC2cLinkBytesPerSec;

    Table table({"tensor", "TSP GB/s", "A100 GB/s", "A100 norm GB/s"});
    for (Bytes bytes = 4 * kKiB; bytes <= 1024 * kMiB; bytes *= 4) {
        // Exact vector-level schedule for small tensors, the
        // cross-validated analytic model beyond.
        const auto t = bytes <= 4 * kMiB ? tsp.scheduled(bytes)
                                         : tsp.analytic(bytes);
        const auto g = gpuRingAllReduce(gpu, bytes);
        const auto gn = gpuRingAllReduceNormalized(gpu, bytes, tsp_pin);
        table.addRow({sizeLabel(bytes),
                      Table::num(t.busBandwidthBytesPerSec / 1e9, 1),
                      Table::num(g.busBandwidthBytesPerSec / 1e9, 1),
                      Table::num(gn.busBandwidthBytesPerSec / 1e9, 1)});
    }
    std::printf("%s\n", table.ascii().c_str());

    std::printf("zoomed small-message region (fine-grained "
                "communication):\n");
    Table zoom({"tensor", "TSP us", "A100 us", "TSP advantage"});
    for (Bytes bytes = 1 * kKiB; bytes <= 256 * kKiB; bytes *= 4) {
        const auto t = tsp.scheduled(bytes);
        const auto g = gpuRingAllReduce(gpu, bytes);
        zoom.addRow({sizeLabel(bytes), Table::num(t.seconds * 1e6, 2),
                     Table::num(g.seconds * 1e6, 2),
                     Table::num(g.seconds / t.seconds, 1) + "x"});
    }
    std::printf("%s\n", zoom.ascii().c_str());
    std::printf("the mailbox flag+fence handshake the shared-memory "
                "model needs per step is\nexactly what the compiler's "
                "total ordering removes (paper §5.3): the TSP\ncurve "
                "saturates orders of magnitude earlier, and the "
                "pin-normalized A100\nmatches the TSP only at large "
                "tensors.\n\n");

    // §5.6: hierarchical all-reduce latency at system scale.
    const Topology system = Topology::makeSingleLevel(32);
    std::printf("256-TSP system: 3-stage hierarchical all-reduce, "
                "small-message latency %.2f us\n(paper: 722 ns x 3 hops "
                "~ 2.1 us)\n",
                HierarchicalAllReduce(system).smallMessageLatencySec() *
                    1e6);
    session.finish();
    return 0;
}
