/**
 * @file
 * Fig 2: the global bandwidth profile per TSP across system scales,
 * with the bandwidth cliffs at each packaging boundary, plus the
 * abstract's headline claims (10,440 TSPs, > 2 TB of global SRAM,
 * < 3 us end-to-end latency).
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/table.hh"
#include "net/topology.hh"
#include "trace/session.hh"

using namespace tsm;

namespace {

void
row(Table &table, const Topology &topo)
{
    const double link_gbps = kC2cLinkBytesPerSec / 1e9;
    unsigned local = 0, global = 0;
    for (const auto &l : topo.links()) {
        if (l.cls == LinkClass::IntraNode)
            ++local;
        else
            ++global;
    }
    // Injection bandwidth per TSP into each level of the hierarchy.
    const double local_inj =
        2.0 * local * link_gbps / topo.numTsps(); // both directions
    const double global_inj = 2.0 * global * link_gbps / topo.numTsps();
    // Uniform-traffic throughput bound: bisection capacity shared by
    // the endpoints on one side.
    const double bisection = 2.0 * topo.bisectionLinks() * link_gbps /
                             double(topo.numTsps());
    table.addRow({Table::num(topo.numTsps()),
                  topo.numRacks() > 1   ? "two-level"
                  : topo.numNodes() > 1 ? "single-level"
                                        : "node",
                  Table::num(local_inj, 1), Table::num(global_inj, 1),
                  Table::num(bisection, 1)});
}

} // namespace

int
main(int argc, char **argv)
{
    // Analytic bench: the trace flags are accepted for harness
    // uniformity; --hostprof reports an honest zero-event run.
    TraceOptions opts;
    CliParser cli("fig02_bandwidth_profile");
    opts.registerFlags(cli);
    if (!cli.parse(argc, argv))
        return 2;
    TraceSession session(std::move(opts));
    session.setRun("fig02_bandwidth_profile", 0);

    std::printf("=== Fig 2: global bandwidth profile per TSP ===\n\n");
    Table table({"TSPs", "level", "local GB/s", "global GB/s",
                 "bisection GB/s"});
    row(table, Topology::makeNode());
    for (unsigned nodes : {2u, 4u, 8u, 16u, 24u, 33u})
        row(table, Topology::makeSingleLevel(nodes));
    for (unsigned racks : {5u, 16u, 48u, 96u, 145u})
        row(table, Topology::makeTwoLevel(racks));
    std::printf("%s\n", table.ascii().c_str());
    std::printf(
        "cliffs: abundant intra-node wire density below 16 TSPs, ~50 "
        "GB/s\nof global injection per TSP through 264 TSPs, then the "
        "inter-rack\nlevel flattens toward ~14 GB/s per TSP at full "
        "scale (paper Fig 2).\n\n");

    // Headline system claims.
    const Topology max = Topology::makeTwoLevel(kMaxRacks);
    const double mem_tb =
        double(max.numTsps()) * double(kLocalMemBytes) / 1e12;
    // The paper's idealized minimal route: 2 hops in the source rack,
    // 1 global, 2 in the destination rack.
    const double ideal_us =
        psToUs(2.0 * hopLatencyPs(LinkClass::IntraNode) +
               2.0 * hopLatencyPs(LinkClass::IntraRack) +
               1.0 * hopLatencyPs(LinkClass::InterRack));
    // And the honest number for the wiring this library constructs
    // (greedy port assignment can cost extra intra-rack hops).
    const double measured_us = psToUs(double(max.latencyDiameterPs(4)));
    std::printf("maximum configuration: %u TSPs in %u racks, %.2f TB "
                "global SRAM\n",
                max.numTsps(), max.numRacks(), mem_tb);
    std::printf("end-to-end latency: %.2f us on the paper's idealized "
                "5-hop route;\n%.2f us worst case over this library's "
                "constructed wiring (%u-hop diameter)\n",
                ideal_us, measured_us, max.diameter());
    session.finish();
    return 0;
}
