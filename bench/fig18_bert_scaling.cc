/**
 * @file
 * Fig 18: BERT encoder stacks of 6/24/48/96 layers on 1/4/8/16 TSPs —
 * realized TOPs normalized to the single-TSP run scales linearly,
 * because each added TSP brings compute and C2C links together.
 *
 * The analytic table is the figure; the instrumented run (any trace
 * flag) executes a 256-TSP (32-node single-level dragonfly) staged
 * activation pipeline — the largest standard scenario in the tree and
 * the host-profiling baseline for fig18-class scale.
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/table.hh"
#include "scenario/runner.hh"
#include "workload/bert.hh"

using namespace tsm;

int
main(int argc, char **argv)
{
    TraceOptions opts;
    std::uint64_t seed = 1;
    double mbe = 0.0;
    std::string scenarioPath =
        TSM_SCENARIO_DIR "/fig18_bert_scaling_256.json";
    CliParser cli("fig18_bert_scaling");
    opts.registerFlags(cli);
    cli.addValue("--seed", &seed, "network RNG seed for the traced run");
    cli.addValue("--mbe", &mbe,
                 "injected FEC multi-bit error rate per vector");
    cli.addValue("--scenario", &scenarioPath,
                 "scenario file for the instrumented timeline");
    if (!cli.parse(argc, argv))
        return 2;
    TraceSession session(std::move(opts));

    // The scaling claim extended to system scale: 31 staged
    // activation handoffs between adjacent nodes of a 256-TSP
    // dragonfly, over a nearest-neighbor background — pipeline
    // parallelism where each stage boundary crosses a C2C link.
    if (session.active()) {
        Scenario sc;
        std::string error;
        if (!loadScenarioFile(scenarioPath, sc, &error)) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return 2;
        }
        ScenarioOverrides over;
        over.seed = seed;
        over.mbe = mbe;
        const ScenarioRunResult run = runScenario(session, sc, over);
        std::printf("traced scenario: %zu transfers (%zu background) on "
                    "%u links, makespan %llu cycles\n\n",
                    run.transfers, run.backgroundTransfers,
                    run.traced.links,
                    (unsigned long long)run.makespan);
    }

    std::printf("=== Fig 18: BERT encoder scaling (6/24/48/96 encoders "
                "on 1/4/8/16 TSPs) ===\n\n");
    const TspCostModel cost;
    const BertConfig geometry = BertConfig::large();

    struct Point
    {
        unsigned encoders;
        unsigned tsps;
    };
    const Point points[] = {{6, 1}, {24, 4}, {48, 8}, {96, 16}};

    double tops1 = 0.0;
    Table table({"encoders", "TSPs", "realized TOPs", "normalized",
                 "ideal"});
    for (const auto &pt : points) {
        const auto est =
            estimateBert(geometry.withEncoders(pt.encoders), pt.tsps,
                         cost);
        if (pt.tsps == 1)
            tops1 = est.realizedTops;
        table.addRow({Table::num(pt.encoders), Table::num(pt.tsps),
                      Table::num(est.realizedTops, 1),
                      Table::num(est.realizedTops / tops1, 2) + "x",
                      Table::num(pt.tsps) + "x"});
    }
    std::printf("%s\n", table.ascii().c_str());
    std::printf("throughput scales with device count because every "
                "stage keeps 6 encoders\nand the boundary activations "
                "overlap with compute (paper Fig 18: linear).\n");
    session.finish();
    return 0;
}
