/**
 * @file
 * Fig 18: BERT encoder stacks of 6/24/48/96 layers on 1/4/8/16 TSPs —
 * realized TOPs normalized to the single-TSP run scales linearly,
 * because each added TSP brings compute and C2C links together.
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/table.hh"
#include "workload/bert.hh"

using namespace tsm;

int
main(int argc, char **argv)
{
    CliParser cli("fig18_bert_scaling");
    if (!cli.parse(argc, argv))
        return 2;

    std::printf("=== Fig 18: BERT encoder scaling (6/24/48/96 encoders "
                "on 1/4/8/16 TSPs) ===\n\n");
    const TspCostModel cost;
    const BertConfig geometry = BertConfig::large();

    struct Point
    {
        unsigned encoders;
        unsigned tsps;
    };
    const Point points[] = {{6, 1}, {24, 4}, {48, 8}, {96, 16}};

    double tops1 = 0.0;
    Table table({"encoders", "TSPs", "realized TOPs", "normalized",
                 "ideal"});
    for (const auto &pt : points) {
        const auto est =
            estimateBert(geometry.withEncoders(pt.encoders), pt.tsps,
                         cost);
        if (pt.tsps == 1)
            tops1 = est.realizedTops;
        table.addRow({Table::num(pt.encoders), Table::num(pt.tsps),
                      Table::num(est.realizedTops, 1),
                      Table::num(est.realizedTops / tops1, 2) + "x",
                      Table::num(pt.tsps) + "x"});
    }
    std::printf("%s\n", table.ascii().c_str());
    std::printf("throughput scales with device count because every "
                "stage keeps 6 encoders\nand the boundary activations "
                "overlap with compute (paper Fig 18: linear).\n");
    return 0;
}
