/**
 * @file
 * google-benchmark micro-benchmarks of the simulation harness itself:
 * event-queue throughput, network flit delivery, SSN scheduling rate,
 * and topology path enumeration — the costs that bound how large an
 * experiment the simulator can run.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "arch/chip.hh"
#include "common/cli.hh"
#include "net/network.hh"
#include "runtime/traced_scenario.hh"
#include "ssn/scheduler.hh"
#include "trace/session.hh"

namespace tsm {
namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t sink = 0;
        for (Tick t = 0; t < 10000; ++t)
            eq.schedule(t, [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_NetworkFlitDelivery(benchmark::State &state)
{
    const Topology topo = Topology::makeNode();
    for (auto _ : state) {
        EventQueue eq;
        Network net(topo, eq, Rng(1));
        const LinkId l = topo.linksBetween(0, 1)[0];
        const Tick ser = Tick(kVectorSerializationPs);
        for (unsigned i = 0; i < 1000; ++i)
            net.transmit(0, l, Flit{}, i * ser);
        eq.run();
        benchmark::DoNotOptimize(net.totalFlits());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_NetworkFlitDelivery);

void
BM_SsnScheduleTensor(benchmark::State &state)
{
    const Topology topo = Topology::makeNode();
    const auto vectors = std::uint32_t(state.range(0));
    for (auto _ : state) {
        SsnScheduler scheduler(topo);
        TensorTransfer t;
        t.flow = 1;
        t.src = 0;
        t.dst = 1;
        t.vectors = vectors;
        const auto sched = scheduler.schedule({t});
        benchmark::DoNotOptimize(sched.makespan);
    }
    state.SetItemsProcessed(state.iterations() * vectors);
}
BENCHMARK(BM_SsnScheduleTensor)->Arg(64)->Arg(512)->Arg(4096);

void
BM_TopologyPathEnumeration(benchmark::State &state)
{
    const Topology topo = Topology::makeSingleLevel(33); // 264 TSPs
    for (auto _ : state) {
        const auto paths = topo.paths(0, 263, 1, 16);
        benchmark::DoNotOptimize(paths.size());
    }
}
BENCHMARK(BM_TopologyPathEnumeration);

void
BM_ChipInstructionRate(benchmark::State &state)
{
    const Topology topo = Topology::makeNode();
    for (auto _ : state) {
        EventQueue eq;
        Network net(topo, eq, Rng(2));
        TspChip chip(0, net, DriftClock());
        Program p;
        for (int i = 0; i < 5000; ++i)
            p.emitNop(1);
        p.emitHalt();
        chip.load(std::move(p));
        chip.start(0);
        eq.run();
        benchmark::DoNotOptimize(chip.stats().instrsExecuted);
    }
    state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_ChipInstructionRate);

/**
 * With --trace/--metrics/--digest/--report/--journal the harness runs
 * one instrumented scenario instead of the benchmarks: a 4-flow
 * contended transfer scheduled by SSN and executed on chips, producing
 * events from the chip, network, SSN and (with --trace including it)
 * sim categories. `--seed` varies the network RNG; `--mbe` injects FEC
 * multi-bit errors at the given per-vector rate, which corrupts
 * payloads without perturbing timing — the canonical way to make two
 * same-seed journals diverge for the tsm_diverge walkthrough.
 */
int
runTracedScenario(const TraceOptions &opts, std::uint64_t seed, double mbe)
{
    TraceSession session(opts);
    const Topology topo = Topology::makeNode();

    std::vector<TensorTransfer> transfers;
    for (unsigned f = 0; f < 4; ++f) {
        TensorTransfer t;
        t.flow = f + 1;
        t.src = TspId(f + 1);
        t.dst = 0;
        t.vectors = 32;
        transfers.push_back(t);
    }
    const auto result = runScheduledScenario(session, topo, transfers,
                                             "micro_harness", seed, mbe);
    std::printf("traced scenario: %llu vectors delivered over %u links\n",
                (unsigned long long)result.flitsDelivered, result.links);
    session.finish();
    return 0;
}

} // namespace
} // namespace tsm

int
main(int argc, char **argv)
{
    tsm::TraceOptions opts;
    std::uint64_t seed = 1;
    double mbe = 0.0;
    tsm::CliParser cli("micro_harness");
    opts.registerFlags(cli);
    cli.addValue("--seed", &seed, "network RNG seed for the scenario");
    cli.addValue("--mbe", &mbe,
                 "injected FEC multi-bit error rate per vector");
    // Everything else belongs to google-benchmark, which rejects what
    // it does not recognize itself.
    cli.allowPrefix("--benchmark");
    cli.allowPrefix("--v=");
    if (!cli.parse(argc, argv))
        return 2;
    if (!opts.instrumented()) {
        benchmark::Initialize(&argc, argv);
        if (benchmark::ReportUnrecognizedArguments(argc, argv))
            return 1;
        benchmark::RunSpecifiedBenchmarks();
        benchmark::Shutdown();
        return 0;
    }
    return tsm::runTracedScenario(opts, seed, mbe);
}
