/**
 * @file
 * Fig 17: the BERT-Large latency histogram across 24,240 runs on 4
 * TSPs (5 us bins): a tight, bounded distribution whose only variance
 * comes from the PCIe host legs, with the compiler's estimate within
 * 2% of measurement. Includes the BERT-Base-on-1-TSP check.
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/table.hh"
#include "prof/report.hh"
#include "scenario/runner.hh"
#include "workload/bert.hh"

using namespace tsm;

int
main(int argc, char **argv)
{
    TraceOptions opts;
    std::uint64_t seed = 1;
    double mbe = 0.0;
    std::string scenarioPath = TSM_SCENARIO_DIR "/fig17_bert_latency.json";
    CliParser cli("fig17_bert_latency");
    opts.registerFlags(cli);
    cli.addValue("--seed", &seed, "network RNG seed for the traced run");
    cli.addValue("--mbe", &mbe,
                 "injected FEC multi-bit error rate per vector");
    cli.addValue("--scenario", &scenarioPath,
                 "scenario file for the instrumented timeline");
    if (!cli.parse(argc, argv))
        return 2;
    TraceSession session(std::move(opts));

    std::printf("=== Fig 17: BERT-Large latency across 24,240 runs "
                "(4 TSPs) ===\n\n");

    // The instrumented timeline is the model-parallel activation
    // pipeline the figure measures: encoder shards on TSPs 0..3 hand
    // activations down the chain, each hop gated on the producing
    // shard's compute (staggered `earliest`). The stagger makes the
    // timeline alternate compute-bound and network-bound windows —
    // pipeline bubbles show up as idle regimes.
    if (session.active()) {
        Scenario sc;
        std::string error;
        if (!loadScenarioFile(scenarioPath, sc, &error)) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return 2;
        }
        ScenarioOverrides over;
        over.seed = seed;
        over.mbe = mbe;
        runScenario(session, sc, over);
        if (ProfileCollector *prof = session.profile())
            prof->addExtra("pipeline_stages", 4.0);
    }
    const TspCostModel cost;
    const auto est = estimateBert(BertConfig::large(), 4, cost);
    const auto samples = simulateBertRuns(est, 24240, Rng(17));

    const double p50 = samples.percentile(0.50) * 1e6;
    const double p99 = samples.percentile(0.99) * 1e6;
    const double pmax = samples.percentile(1.0) * 1e6;

    // 5 us bins, as the paper plots.
    const double lo = std::floor((p50 - 25.0) / 5.0) * 5.0;
    Histogram hist(lo, lo + 90.0, 18);
    for (double s : samples.samples())
        hist.add(s * 1e6);
    std::printf("%s\n", hist.ascii(50).c_str());

    Table table({"metric", "measured", "paper"});
    table.addRow({"runs", Table::num(std::uint64_t(samples.count())),
                  "24240"});
    table.addRow({"p99 - p50 (us)", Table::num(p99 - p50, 1),
                  "<= ~45 (1225 vs ~1180)"});
    table.addRow({"max - p50 (us)", Table::num(pmax - p50, 1),
                  "<= ~120 (1300 vs ~1180)"});
    table.addRow({"compiler estimate error",
                  Table::num((est.totalSec * 1e6 / p50 - 1.0) * 100, 2) +
                      "%",
                  "within 2%"});
    std::printf("%s\n", table.ascii().c_str());
    std::printf("absolute latency: measured p50 %.0f us vs the paper's "
                "~1180 us — our cost model\nruns the encoder stack "
                "~1.8x slower than Groq's binary; the distribution "
                "shape,\nboundedness, and estimate accuracy are the "
                "reproduced claims.\n\n",
                p50);

    const auto base = estimateBert(BertConfig::base(), 1, cost);
    const auto base_samples = simulateBertRuns(base, 5000, Rng(18));
    std::printf("BERT-Base on 1 TSP: estimate %.0f us vs measured p50 "
                "%.0f us (%.2f%% apart)\n",
                base.totalSec * 1e6,
                base_samples.percentile(0.5) * 1e6,
                (base.totalSec / base_samples.percentile(0.5) - 1.0) *
                    100);
    session.finish();
    return 0;
}
