/**
 * @file
 * Fig 14: the distributed [800 x 32576] x [32576 x 8192] matmul —
 * latency vs number of TSPs (left) and throughput/utilization vs
 * number of TSPs (right), decomposed as 8 column splits x 1..13 row
 * splits with row groups clustered per node.
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/table.hh"
#include "prof/report.hh"
#include "scenario/runner.hh"
#include "workload/matmul.hh"

using namespace tsm;

int
main(int argc, char **argv)
{
    TraceOptions opts;
    std::uint64_t seed = 1;
    double mbe = 0.0;
    std::string scenarioPath =
        TSM_SCENARIO_DIR "/fig14_distributed_matmul.json";
    CliParser cli("fig14_distributed_matmul");
    opts.registerFlags(cli);
    cli.addValue("--seed", &seed, "network RNG seed for the traced run");
    cli.addValue("--mbe", &mbe,
                 "injected FEC multi-bit error rate per vector");
    cli.addValue("--scenario", &scenarioPath,
                 "scenario file for the instrumented timeline");
    if (!cli.parse(argc, argv))
        return 2;
    TraceSession session(std::move(opts));

    std::printf("=== Fig 14: distributed [800x32576][32576x8192] fp16 "
                "matmul ===\n\n");

    // The instrumented timeline is the figure's dominant network
    // pattern: the row-split partial-sum reduction, a 7-way fan-in of
    // partial products onto the chip owning the output panel. On one
    // 8-TSP node that contends every inbound link of TSP 0 at once —
    // the traffic the utilization column decays under. The pattern
    // itself lives in the checked-in scenario file.
    if (session.active()) {
        Scenario sc;
        std::string error;
        if (!loadScenarioFile(scenarioPath, sc, &error)) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return 2;
        }
        ScenarioOverrides over;
        over.seed = seed;
        over.mbe = mbe;
        const ScenarioRunResult run = runScenario(session, sc, over);
        if (ProfileCollector *prof = session.profile())
            prof->addExtra("reduction_fan_in", double(run.transfers));
    }
    const TspCostModel cost;
    DistMatmulConfig cfg; // the paper's operation

    Table table({"TSPs", "latency us", "TFLOPs", "utilization %"});
    double first_latency = 0.0, last_latency = 0.0;
    for (unsigned r = 1; r <= 13; ++r) {
        cfg.rowSplits = r;
        const auto res = planDistributedMatmul(cfg, cost);
        table.addRow({Table::num(res.tsps),
                      Table::num(res.seconds * 1e6, 1),
                      Table::num(res.tflops, 0),
                      Table::num(res.utilization * 100, 1)});
        if (r == 1)
            first_latency = res.seconds;
        last_latency = res.seconds;
    }
    std::printf("%s\n", table.ascii().c_str());
    std::printf("latency falls %.1fx from 8 to 104 TSPs because each "
                "added TSP contributes\nboth ALUs and C2C links (paper "
                "Fig 14); utilization decays gently as the\nreduction "
                "traffic grows.\n",
                first_latency / last_latency);
    session.finish();
    return 0;
}
