/**
 * @file
 * Fig 20: per-TSP compute vs C2C breakdown of BERT-Large on 4 TSPs
 * under (a) the FLOPs-only "initial, unoptimized" compiler, which
 * pays on-chip data movement and boundary transfers serially, and
 * (b) the movement-aware optimized compiler that overlaps them —
 * the paper reports ~26% realized-throughput improvement.
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/table.hh"
#include "workload/bert.hh"
#include "trace/session.hh"

using namespace tsm;

namespace {

void
breakdown(const char *title, const BertEstimate &est)
{
    std::printf("%s\n", title);
    Table table({"TSP", "encoders", "compute us", "movement us",
                 "C2C us", "stage us"});
    for (std::size_t s = 0; s < est.plan.stages.size(); ++s) {
        const auto &st = est.plan.stages[s];
        table.addRow(
            {Table::num(std::uint64_t(s)), Table::num(st.numBlocks),
             Table::num(TspCostModel::cyclesToSeconds(st.computeCycles) *
                            1e6,
                        0),
             Table::num(
                 TspCostModel::cyclesToSeconds(st.movementCycles) * 1e6,
                 0),
             Table::num(TspCostModel::cyclesToSeconds(st.commCycles) *
                            1e6,
                        0),
             Table::num(TspCostModel::cyclesToSeconds(
                            st.stageCycles(est.plan.mode)) *
                            1e6,
                        0)});
    }
    std::printf("%srealized throughput: %.1f TOPs\n\n",
                table.ascii().c_str(), est.realizedTops);
}

} // namespace

int
main(int argc, char **argv)
{
    // Analytic bench: the trace flags are accepted for harness
    // uniformity; --hostprof reports an honest zero-event run.
    TraceOptions opts;
    CliParser cli("fig20_compiler_breakdown");
    opts.registerFlags(cli);
    if (!cli.parse(argc, argv))
        return 2;
    TraceSession session(std::move(opts));
    session.setRun("fig20_compiler_breakdown", 0);

    std::printf("=== Fig 20: BERT-Large on 4 TSPs, unoptimized vs "
                "optimized compiler ===\n\n");
    const TspCostModel cost;
    const auto naive = estimateBert(BertConfig::large(), 4, cost,
                                    BalanceMode::FlopsOnly);
    const auto opt = estimateBert(BertConfig::large(), 4, cost,
                                  BalanceMode::MovementAware);

    breakdown("(a) FLOPs-only balancing (movement and C2C serialize "
              "after compute):",
              naive);
    breakdown("(b) movement-aware balancing (movement and C2C overlap "
              "compute):",
              opt);
    std::printf("optimized / unoptimized = %.1f%% realized-throughput "
                "improvement (paper: ~26%%)\n",
                (opt.realizedTops / naive.realizedTops - 1.0) * 100.0);
    session.finish();
    return 0;
}
