/**
 * @file
 * Extension bench for §4.5's claim that "the scale of a parallel
 * computer is in a very practical sense limited by the reliability of
 * the system": with FEC correcting single-bit errors and software
 * replay handling the (rare) uncorrectable ones, what replay overhead
 * does a given per-vector MBE rate impose as the system grows?
 *
 * Analytic: an inference moving V vectors over h average hops replays
 * with probability 1 - (1-eps)^(V*h); expected attempts = 1/(1-p).
 * Monte Carlo: the actual Runtime on a 4-node system, measuring
 * attempts across repeated inferences.
 */

#include <cmath>
#include <cstdio>

#include "common/cli.hh"
#include "common/table.hh"
#include "runtime/runtime.hh"
#include "trace/session.hh"

using namespace tsm;

namespace {

std::vector<TensorTransfer>
ringWork(const Topology &, const std::vector<TspId> &active)
{
    std::vector<TensorTransfer> out;
    for (std::size_t i = 0; i < active.size(); ++i) {
        TensorTransfer t;
        t.flow = FlowId(i + 1);
        t.src = active[i];
        t.dst = active[(i + 1) % active.size()];
        t.vectors = 32;
        out.push_back(t);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    // Analytic bench: the trace flags are accepted for harness
    // uniformity; --hostprof reports an honest zero-event run.
    TraceOptions opts;
    CliParser cli("ext_reliability_scale");
    opts.registerFlags(cli);
    if (!cli.parse(argc, argv))
        return 2;
    TraceSession session(std::move(opts));
    session.setRun("ext_reliability_scale", 0);

    std::printf("=== Extension: replay overhead vs scale and error "
                "rate (§4.5) ===\n\n");

    // Analytic sweep: vectors-per-inference grows with system size.
    Table table({"TSPs", "vectors/inference", "MBE 1e-9", "MBE 1e-7",
                 "MBE 1e-5"});
    for (unsigned tsps : {8u, 64u, 264u, 1152u, 10440u}) {
        // A representative inference moves ~1 MiB per TSP over ~2 hops.
        const double wire_vectors =
            double(tsps) * double(bytesToVectors(kMiB)) * 2.0;
        std::vector<std::string> cells{
            Table::num(tsps), Table::num(std::uint64_t(wire_vectors))};
        for (double eps : {1e-9, 1e-7, 1e-5}) {
            const double p_replay =
                1.0 - std::pow(1.0 - eps, wire_vectors);
            if (p_replay > 0.99) {
                // Effectively never completes: replay probability ~1.
                cells.push_back("unusable");
                continue;
            }
            const double expected_attempts = 1.0 / (1.0 - p_replay);
            cells.push_back(
                Table::num((expected_attempts - 1.0) * 100.0, 2) + "%");
        }
        table.addRow(std::move(cells));
    }
    std::printf("expected replay overhead (extra attempts):\n%s\n",
                table.ascii().c_str());
    std::printf("FEC keeps the usable scale large: at the 1e-9 "
                "post-FEC MBE rate, even the\n10,440-TSP system "
                "replays well under 10%% of inferences; without FEC "
                "(raw link\nBER ~1e-5 reaching software) the largest "
                "systems would replay every time.\n\n");

    // Monte Carlo spot check on the simulated 4-node runtime.
    std::printf("Monte Carlo spot check (4-node runtime, transient "
                "faults at rate 3e-4/vector):\n");
    Runtime rt(4, 99);
    unsigned total_attempts = 0;
    const unsigned inferences = 40;
    for (unsigned i = 0; i < inferences; ++i) {
        FaultScenario fault;
        fault.faultyNode = 1;
        fault.mbeRate = 3e-4;
        fault.persistent = false;
        const auto report = rt.runInference(ringWork, fault, 5);
        total_attempts += report.attempts;
        if (!report.success)
            std::printf("  inference %u FAILED\n", i);
    }
    std::printf("  %u inferences, %u attempts -> %.1f%% replay "
                "overhead\n",
                inferences, total_attempts,
                (double(total_attempts) / inferences - 1.0) * 100.0);
    session.finish();
    return 0;
}
