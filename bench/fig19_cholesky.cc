/**
 * @file
 * Fig 19: Cholesky factorization across multiple TSPs — execution
 * time vs problem size for 1/2/4/8 chips, the strong-scaling
 * speedups, the realized TFLOPs anchors, and a numeric correctness
 * check of the paper's rsqrt-based column kernel.
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "workload/cholesky.hh"

using namespace tsm;

int
main(int argc, char **argv)
{
    CliParser cli("fig19_cholesky");
    if (!cli.parse(argc, argv))
        return 2;

    std::printf("=== Fig 19: Cholesky factorization on 1/2/4/8 TSPs "
                "===\n\n");

    // (c) execution time vs problem size.
    Table table({"p", "1 TSP ms", "2 TSPs ms", "4 TSPs ms",
                 "8 TSPs ms"});
    for (std::uint64_t p : {2000ull, 4000ull, 8000ull, 16000ull,
                            32000ull}) {
        std::vector<std::string> cells{Table::num(p)};
        for (unsigned d : {1u, 2u, 4u, 8u})
            cells.push_back(
                Table::num(choleskyEstimate(p, d).seconds * 1e3, 1));
        table.addRow(std::move(cells));
    }
    std::printf("%s\n", table.ascii().c_str());

    // Strong scaling at the calibration point.
    const std::uint64_t p = 16000;
    const double t1 = choleskyEstimate(p, 1).seconds;
    std::printf("strong scaling at p=%llu: %.2fx / %.2fx / %.2fx on "
                "2/4/8 TSPs (paper: 1.2/1.4/1.5)\n",
                (unsigned long long)p,
                t1 / choleskyEstimate(p, 2).seconds,
                t1 / choleskyEstimate(p, 4).seconds,
                t1 / choleskyEstimate(p, 8).seconds);
    std::printf("realized throughput: %.1f TFLOPs on 4 TSPs, %.1f "
                "TFLOPs on 8 TSPs (paper: 14.9 / 22.4)\n",
                choleskyEstimate(p, 4).tflops,
                choleskyEstimate(p, 8).tflops);
    std::printf("the loop-carried vector-matrix dependence keeps the "
                "serial fraction high,\nwhich is why speedups saturate "
                "near 1.5x (paper §5.5).\n\n");

    // Numeric kernel check: factor a random SPD matrix with the
    // fast-rsqrt column pipeline and measure the residual.
    const unsigned n = 64;
    Rng rng(19);
    std::vector<float> b(std::size_t(n) * n);
    for (auto &x : b)
        x = float(rng.uniform(-1.0, 1.0));
    std::vector<float> a(std::size_t(n) * n, 0.0f);
    for (unsigned r = 0; r < n; ++r)
        for (unsigned c = 0; c < n; ++c) {
            for (unsigned k = 0; k < n; ++k)
                a[r * n + c] += b[r * n + k] * b[c * n + k];
            if (r == c)
                a[r * n + c] += float(n);
        }
    const auto original = a;
    const bool ok = choleskyFactor(a, n);
    std::printf("numeric kernel: %ux%u SPD factorization %s, residual "
                "max|A - L Lt| = %.3e\n",
                n, n, ok ? "succeeded" : "FAILED",
                double(choleskyResidual(original, a, n)));
    return ok ? 0 : 1;
}
