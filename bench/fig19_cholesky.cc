/**
 * @file
 * Fig 19: Cholesky factorization across multiple TSPs — execution
 * time vs problem size for 1/2/4/8 chips, the strong-scaling
 * speedups, the realized TFLOPs anchors, and a numeric correctness
 * check of the paper's rsqrt-based column kernel.
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "prof/report.hh"
#include "scenario/runner.hh"
#include "workload/cholesky.hh"

using namespace tsm;

int
main(int argc, char **argv)
{
    TraceOptions opts;
    std::uint64_t seed = 1;
    double mbe = 0.0;
    std::string scenarioPath = TSM_SCENARIO_DIR "/fig19_cholesky.json";
    CliParser cli("fig19_cholesky");
    opts.registerFlags(cli);
    cli.addValue("--seed", &seed, "network RNG seed for the traced run");
    cli.addValue("--mbe", &mbe,
                 "injected FEC multi-bit error rate per vector");
    cli.addValue("--scenario", &scenarioPath,
                 "scenario file for the instrumented timeline");
    if (!cli.parse(argc, argv))
        return 2;
    TraceSession session(std::move(opts));

    std::printf("=== Fig 19: Cholesky factorization on 1/2/4/8 TSPs "
                "===\n\n");

    // The instrumented timeline is the right-looking factorization's
    // panel broadcast: after each column panel is factored, the owner
    // broadcasts it to the other chips for the trailing update. Three
    // successive rounds rotate the owner (0, 1, 2) and shrink the
    // panel, so the timeline shows repeating network bursts separated
    // by owner-compute gaps — the serial fraction §5.5 blames for the
    // saturating speedups.
    if (session.active()) {
        Scenario sc;
        std::string error;
        if (!loadScenarioFile(scenarioPath, sc, &error)) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return 2;
        }
        ScenarioOverrides over;
        over.seed = seed;
        over.mbe = mbe;
        runScenario(session, sc, over);
        if (ProfileCollector *prof = session.profile())
            prof->addExtra("broadcast_rounds", 3.0);
    }

    // (c) execution time vs problem size.
    Table table({"p", "1 TSP ms", "2 TSPs ms", "4 TSPs ms",
                 "8 TSPs ms"});
    for (std::uint64_t p : {2000ull, 4000ull, 8000ull, 16000ull,
                            32000ull}) {
        std::vector<std::string> cells{Table::num(p)};
        for (unsigned d : {1u, 2u, 4u, 8u})
            cells.push_back(
                Table::num(choleskyEstimate(p, d).seconds * 1e3, 1));
        table.addRow(std::move(cells));
    }
    std::printf("%s\n", table.ascii().c_str());

    // Strong scaling at the calibration point.
    const std::uint64_t p = 16000;
    const double t1 = choleskyEstimate(p, 1).seconds;
    std::printf("strong scaling at p=%llu: %.2fx / %.2fx / %.2fx on "
                "2/4/8 TSPs (paper: 1.2/1.4/1.5)\n",
                (unsigned long long)p,
                t1 / choleskyEstimate(p, 2).seconds,
                t1 / choleskyEstimate(p, 4).seconds,
                t1 / choleskyEstimate(p, 8).seconds);
    std::printf("realized throughput: %.1f TFLOPs on 4 TSPs, %.1f "
                "TFLOPs on 8 TSPs (paper: 14.9 / 22.4)\n",
                choleskyEstimate(p, 4).tflops,
                choleskyEstimate(p, 8).tflops);
    std::printf("the loop-carried vector-matrix dependence keeps the "
                "serial fraction high,\nwhich is why speedups saturate "
                "near 1.5x (paper §5.5).\n\n");

    // Numeric kernel check: factor a random SPD matrix with the
    // fast-rsqrt column pipeline and measure the residual.
    const unsigned n = 64;
    Rng rng(19);
    std::vector<float> b(std::size_t(n) * n);
    for (auto &x : b)
        x = float(rng.uniform(-1.0, 1.0));
    std::vector<float> a(std::size_t(n) * n, 0.0f);
    for (unsigned r = 0; r < n; ++r)
        for (unsigned c = 0; c < n; ++c) {
            for (unsigned k = 0; k < n; ++k)
                a[r * n + c] += b[r * n + k] * b[c * n + k];
            if (r == c)
                a[r * n + c] += float(n);
        }
    const auto original = a;
    const bool ok = choleskyFactor(a, n);
    std::printf("numeric kernel: %ux%u SPD factorization %s, residual "
                "max|A - L Lt| = %.3e\n",
                n, n, ok ? "succeeded" : "FAILED",
                double(choleskyResidual(original, a, n)));
    session.finish();
    return ok ? 0 : 1;
}
