/**
 * @file
 * Ablations of the design choices DESIGN.md calls out, beyond the
 * paper's own figures:
 *
 *  1. path-diversity cap of the SSN scheduler (1/2/4/8 paths);
 *  2. HAC aligner adjustment rate vs convergence time;
 *  3. baseline-router buffer depth vs contention latency — the
 *     hardware resource SSN deletes entirely;
 *  4. minimal-extra-hops allowance (0/1/2) vs makespan on incast.
 */

#include <cstdio>
#include <memory>

#include "baseline/hw_router.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "hostprof/hostprof.hh"
#include "ssn/scheduler.hh"
#include "sync/hac_aligner.hh"
#include "trace/session.hh"

using namespace tsm;

namespace {

void
pathCapAblation()
{
    std::printf("1. path-diversity cap (256 KB transfer inside the "
                "node):\n");
    const Topology topo = Topology::makeNode();
    Table table({"max paths", "makespan us", "speedup"});
    double base = 0.0;
    for (unsigned cap : {1u, 2u, 4u, 8u}) {
        SsnScheduler s(topo, {.maxExtraHops = 1, .maxPaths = cap});
        TensorTransfer t;
        t.flow = 1;
        t.src = 0;
        t.dst = 1;
        t.vectors = std::uint32_t(bytesToVectors(256 * kKiB));
        const auto sched = s.schedule({t});
        const double us = double(sched.makespan) / kCoreFreqHz * 1e6;
        if (cap == 1)
            base = us;
        table.addRow({Table::num(cap), Table::num(us, 2),
                      Table::num(base / us, 2) + "x"});
    }
    std::printf("%s\n", table.ascii().c_str());
}

void
hacRateAblation(HostProfiler *hp)
{
    std::printf("2. HAC adjustment rate vs convergence (child starts "
                "120 cycles off):\n");
    Table table({"max adjust/update", "epochs to converge"});
    for (int rate : {1, 2, 4, 8, 16, 32}) {
        EventQueue eq;
        eq.setHostProfiler(hp);
        Topology topo = Topology::makeNode();
        Network net(topo, eq, Rng(4));
        TspChip parent(0, net, DriftClock());
        TspChip child(1, net, DriftClock());
        child.adjustHac(120);
        HacAlignerConfig cfg;
        cfg.maxAdjustPerUpdate = rate;
        HacAligner aligner(
            parent, child, topo.linksBetween(0, 1)[0],
            double(linkPropagationPs(LinkClass::IntraNode)) /
                kCorePeriodPs,
            cfg);
        aligner.start();
        // Step epoch by epoch until converged.
        unsigned epochs = 0;
        const Tick epoch_ps = Tick(kHacPeriodCycles * kCorePeriodPs);
        while (!aligner.converged(2) && epochs < 1000) {
            eq.runUntil(eq.now() + epoch_ps);
            ++epochs;
        }
        aligner.stop();
        eq.run();
        table.addRow({Table::num(rate), Table::num(epochs)});
    }
    std::printf("%s(faster steering converges sooner at the cost of "
                "larger per-epoch time steps)\n\n",
                table.ascii().c_str());
}

void
bufferDepthAblation(HostProfiler *hp)
{
    std::printf("3. baseline router buffer depth under incast (7 -> 1, "
                "ring node):\n");
    Table table({"queue depth", "p50 ns", "p99 ns"});
    for (unsigned depth : {1u, 2u, 4u, 8u, 16u}) {
        const Topology topo = Topology::makeNode(NodeWiring::TripleRing);
        EventQueue eq;
        eq.setHostProfiler(hp);
        HwRoutedNetwork hw(topo, eq, Rng(9),
                           {HwRouting::ObliviousMinimal, depth});
        for (TspId s = 1; s < 8; ++s)
            hw.inject(FlowId(s), s, 0, 64, 0);
        eq.run();
        table.addRow({Table::num(depth),
                      Table::num(hw.packetLatencyNs().percentile(0.5), 0),
                      Table::num(hw.packetLatencyNs().percentile(0.99),
                                 0)});
    }
    std::printf("%s(deeper buffers absorb bursts but stretch the tail "
                "— SSN needs neither)\n\n",
                table.ascii().c_str());
}

void
extraHopsAblation()
{
    std::printf("4. non-minimal allowance on 7->1 incast (64 vectors "
                "each):\n");
    Table table({"extra hops", "makespan us"});
    for (unsigned extra : {0u, 1u, 2u}) {
        const Topology topo = Topology::makeNode();
        SsnScheduler s(topo, {.maxExtraHops = extra, .maxPaths = 8});
        std::vector<TensorTransfer> transfers;
        for (TspId src = 1; src < 8; ++src) {
            TensorTransfer t;
            t.flow = FlowId(src);
            t.src = src;
            t.dst = 0;
            t.vectors = 64;
            transfers.push_back(t);
        }
        const auto sched = s.schedule(transfers);
        table.addRow({Table::num(extra),
                      Table::num(double(sched.makespan) / kCoreFreqHz *
                                     1e6,
                                 2)});
    }
    std::printf("%s(incast saturates the destination's links; detours "
                "cannot add capacity, so\nthe knob is ~neutral here — "
                "unlike the point-to-point case of Fig 10)\n",
                table.ascii().c_str());
}

void
vcAblation(HostProfiler *hp)
{
    std::printf("5. virtual channels on the ring torus (§4.4): every "
                "TSP sends 3 hops clockwise:\n");
    Table table({"VCs", "queue depth", "delivered", "stuck",
                 "outcome"});
    for (unsigned vcs : {1u, 2u}) {
        for (unsigned depth : {1u, 4u}) {
            const Topology ring = Topology::makeRing(8);
            EventQueue eq;
            eq.setHostProfiler(hp);
            HwConfig cfg;
            cfg.routing = HwRouting::DeterministicMinimal;
            cfg.queueDepth = depth;
            cfg.numVcs = vcs;
            HwRoutedNetwork hw(ring, eq, Rng(1), cfg);
            for (TspId s = 0; s < 8; ++s)
                hw.inject(FlowId(s + 1), s, (s + 3) % 8, 64, 0);
            eq.run();
            table.addRow({Table::num(vcs), Table::num(depth),
                          Table::num(hw.delivered()),
                          Table::num(hw.stuck()),
                          hw.stuck() ? "DEADLOCK" : "drained"});
        }
    }
    std::printf("%s(the hardware needs a second, dateline-switched VC "
                "to break the toroidal\ncycle; the software-scheduled "
                "network needs none — its windows are disjoint\nby "
                "construction)\n",
                table.ascii().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    TraceOptions opts;
    CliParser cli("ablation_knobs");
    opts.registerFlags(cli);
    if (!cli.parse(argc, argv))
        return 2;
    TraceSession session(std::move(opts));
    session.setRun("ablation_knobs", 0);

    std::printf("=== Ablations of DESIGN.md design choices ===\n\n");
    pathCapAblation();
    hacRateAblation(session.hostprof());
    bufferDepthAblation(session.hostprof());
    extraHopsAblation();
    std::printf("\n");
    vcAblation(session.hostprof());
    session.finish();
    return 0;
}
