/**
 * @file
 * Fig 15: [N x N] x [N x N] fp16 matmul with column-wise splits on
 * clusters of 100, 200, and 300 TSPs, throughput vs N, including the
 * comparison against the paper's 432-GPU reference (~2800 fp64
 * TFLOPs on N = 650,000).
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/table.hh"
#include "workload/matmul.hh"
#include "trace/session.hh"

using namespace tsm;

int
main(int argc, char **argv)
{
    // Analytic bench: the trace flags are accepted for harness
    // uniformity; --hostprof reports an honest zero-event run.
    TraceOptions opts;
    CliParser cli("fig15_matmul_clusters");
    opts.registerFlags(cli);
    if (!cli.parse(argc, argv))
        return 2;
    TraceSession session(std::move(opts));
    session.setRun("fig15_matmul_clusters", 0);

    std::printf("=== Fig 15: NxN matmul on 100/200/300-TSP clusters "
                "===\n\n");
    const TspCostModel cost;

    Table table({"N", "100 TSPs TF", "200 TSPs TF", "300 TSPs TF"});
    for (std::uint64_t n : {50000ull, 100000ull, 200000ull, 325000ull,
                            450000ull, 650000ull}) {
        std::vector<std::string> cells{Table::num(n)};
        for (unsigned tsps : {100u, 200u, 300u}) {
            const auto r = clusterColSplitMatmul(n, tsps, cost);
            cells.push_back(Table::num(r.tflops, 0));
        }
        table.addRow(std::move(cells));
    }
    std::printf("%s\n", table.ascii().c_str());

    const auto best = clusterColSplitMatmul(650000, 300, cost);
    const double reference_tflops = 2800.0; // 432 V100s, fp64 [17]
    std::printf("at N=650,000 on 300 TSPs: %.0f fp16 TFLOPs = %.0fx "
                "the 432-GPU fp64 reference\n(the paper reports >100x; "
                "the gap is the fp64-vs-fp16 accounting of the "
                "reference)\n",
                best.tflops, best.tflops / reference_tflops);
    std::printf("column-wise splits avoid partial-product reductions "
                "entirely: throughput\nscales linearly in cluster size "
                "and rises with N as tile quantization fades.\n");
    session.finish();
    return 0;
}
