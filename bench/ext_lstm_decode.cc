/**
 * @file
 * Extension bench (beyond the paper's figures, motivated by its §5
 * intro): batch-1 LSTM decode — the latency-bound, vector-matrix
 * workload sequence-to-sequence models produce — TSP pipeline vs the
 * tensor-core baseline across hidden sizes and depths.
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/table.hh"
#include "workload/lstm.hh"
#include "trace/session.hh"

using namespace tsm;

int
main(int argc, char **argv)
{
    // Analytic bench: the trace flags are accepted for harness
    // uniformity; --hostprof reports an honest zero-event run.
    TraceOptions opts;
    CliParser cli("ext_lstm_decode");
    opts.registerFlags(cli);
    if (!cli.parse(argc, argv))
        return 2;
    TraceSession session(std::move(opts));
    session.setRun("ext_lstm_decode", 0);

    std::printf("=== Extension: batch-1 LSTM decode (256 timesteps) "
                "===\n\n");
    const TspCostModel cost;
    Table table({"layers", "hidden", "TSPs", "TSP tok/s", "A100 tok/s",
                 "speedup"});
    for (unsigned layers : {2u, 4u, 8u}) {
        for (unsigned hidden : {512u, 1024u, 2048u}) {
            LstmConfig c;
            c.layers = layers;
            c.hidden = hidden;
            const unsigned tsps = layers;
            const auto tsp = lstmOnTsp(c, tsps, cost);
            const auto gpu = lstmOnGpu(c, {});
            table.addRow({Table::num(layers), Table::num(hidden),
                          Table::num(tsps),
                          Table::num(tsp.tokensPerSec, 0),
                          Table::num(gpu.tokensPerSec, 0),
                          Table::num(tsp.tokensPerSec /
                                         gpu.tokensPerSec,
                                     1) +
                              "x"});
        }
    }
    std::printf("%s\n", table.ascii().c_str());
    std::printf("the recurrence forbids batching across time, so the "
                "GPU pays 128-row tile\npadding on every M=1 matvec "
                "plus a launch per step; the statically scheduled\n"
                "pipeline keeps its matrix unit streaming — the "
                "strong-scaling (\"capability\")\nregime the paper's "
                "introduction frames the whole system around.\n");
    session.finish();
    return 0;
}
