/**
 * @file
 * Triage tool for contention attribution: reads the tsm-blame-v1
 * documents written by the bench binaries' --blame flag (SSN path)
 * or fig08's --hw-blame flag (hardware-routed baseline) and renders
 * the blame summary — wait decomposition, top contended resources,
 * top blamed flow pairs, the compile-time schedule blame, and the
 * per-transfer blocked-by chains — followed by the windowed
 * contention heatmap tsm_top also understands.
 *
 *   tsm_blame [--top=N] [--cols=N] [--links=N] [--check] BLAME.json...
 *
 * --check verifies the exactness invariants instead of rendering:
 * per-transfer and per-link blame shares must sum exactly to their
 * waits, link waits to the run total, and windowed cells to their
 * link's wait.
 *
 * Exit status: 0 ok, 1 invariant violation, 2 unreadable input.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/cli.hh"
#include "common/version.hh"
#include "prof/blame.hh"
#include "telemetry/contention.hh"

int
main(int argc, char **argv)
{
    unsigned top = 5;
    unsigned cols = 64;
    unsigned links = 12;
    bool check = false;
    bool version = false;
    tsm::CliParser cli("tsm_blame");
    cli.addValue("--top", &top,
                 "rows shown per section (links, pairs, chains)");
    cli.addValue("--cols", &cols, "heatmap width in columns");
    cli.addValue("--links", &links,
                 "links shown in the heatmap, most contended first");
    cli.addFlag("--check", &check,
                "verify the blame exactness invariants instead of "
                "rendering");
    cli.allowPositional();
    cli.addFlag("--version", &version,
                "print the tool name and supported schemas");
    if (!cli.parse(argc, argv))
        return 2;
    if (version) {
        std::printf("%s", tsm::toolVersionLine("tsm_blame",
            {tsm::kBlameSchema}).c_str());
        return 0;
    }
    if (argc < 2) {
        std::fprintf(stderr, "tsm_blame: no blame files given\n%s",
                     cli.usage().c_str());
        return 2;
    }

    int ioFailures = 0;
    int checkFailures = 0;
    for (int i = 1; i < argc; ++i) {
        const char *path = argv[i];
        std::ifstream f(path, std::ios::binary);
        if (!f) {
            std::fprintf(stderr, "tsm_blame: cannot open %s\n", path);
            ++ioFailures;
            continue;
        }
        std::ostringstream text;
        text << f.rdbuf();
        std::string error;
        const tsm::Json blame = tsm::Json::parse(text.str(), &error);
        if (blame.isNull()) {
            std::fprintf(stderr, "tsm_blame: %s: %s\n", path,
                         error.c_str());
            ++ioFailures;
            continue;
        }
        if (!blame.has("schema") ||
            blame["schema"].kind() != tsm::Json::Kind::String ||
            blame["schema"].str() != tsm::kBlameSchema) {
            std::fprintf(stderr, "tsm_blame: %s: not a %s document\n",
                         path, tsm::kBlameSchema);
            ++ioFailures;
            continue;
        }
        if (check) {
            std::string why;
            if (tsm::checkBlameExactness(blame, &why)) {
                std::printf("%s: ok (shares sum exactly to waits)\n",
                            path);
            } else {
                std::printf("%s: FAIL\n%s", path, why.c_str());
                ++checkFailures;
            }
            continue;
        }
        if (i > 1)
            std::printf("\n");
        std::printf("%s", tsm::renderBlameSummary(blame, top).c_str());
        std::printf("\n%s",
                    tsm::renderContentionHeatmap(blame, cols, links)
                        .c_str());
    }
    if (ioFailures)
        return 2;
    return checkFailures ? 1 : 0;
}
