/**
 * @file
 * What-if triage tool: reads the tsm-whatif-v1 documents written by
 * the bench binaries' --whatif flag and renders the ranked lever
 * table — the counterfactual perturbations ("link 3 2x faster",
 * "flow 5 removed") ordered by projected end-to-end makespan delta.
 *
 *   tsm_whatif [--top=N] WHATIF.json...
 *
 * The render path always verifies the document's structural
 * invariants (checkWhatIfInvariants) first, so a malformed ranking
 * can never be rendered as if it were sound.
 *
 * --check=SCENARIO.json switches to validation mode: the scenario is
 * scheduled from scratch, the what-if engine's projections are
 * recomputed, and the top-N counterfactuals are *re-simulated* on a
 * network with the actually-perturbed wire timing. Three gates:
 *
 *   A  identity — recomputing the constraint graph with unchanged
 *      timing reproduces every departure/arrival cycle exactly
 *   B  baseline — simulating the unperturbed schedule lands on its
 *      static completion cycle exactly (gap == 0)
 *   C  counterfactuals — each of the top N levers, materialized as a
 *      perturbed schedule and simulated with the perturbed physics,
 *      lands on its own static completion exactly (gap == 0)
 *
 *   tsm_whatif --check=SCENARIO.json [--top=N] [--factor=K] [--seed=S]
 *
 * Exit status: 0 ok, 1 gate or invariant failure, 2 unreadable input.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/version.hh"
#include "prof/whatif.hh"
#include "runtime/counterfactual.hh"
#include "scenario/scenario.hh"
#include "ssn/scheduler.hh"

namespace {

int
runCheck(const std::string &path, unsigned top, double factor,
         std::uint64_t seed, bool haveSeed)
{
    tsm::Scenario scenario;
    std::string error;
    if (!tsm::loadScenarioFile(path, scenario, &error)) {
        std::fprintf(stderr, "tsm_whatif: %s: %s\n", path.c_str(),
                     error.c_str());
        return 2;
    }
    if (!haveSeed)
        seed = scenario.seed;

    tsm::Topology topo = scenario.topology.build();
    tsm::LoweredScenario lowered = tsm::lowerScenario(scenario, topo);
    tsm::SsnScheduler scheduler(topo, scenario.ssn);
    tsm::NetworkSchedule sched = scheduler.schedule(lowered.transfers);
    tsm::WhatIfEngine engine(sched, topo, lowered.transfers);

    std::printf("%s: %zu flows, %zu vectors, makespan %llu cycles\n",
                scenario.name.c_str(), lowered.transfers.size(),
                sched.vectors.size(),
                (unsigned long long)sched.makespan);

    int failures = 0;

    std::string why;
    if (engine.identityExact(&why)) {
        std::printf("  identity: ok (recomputation reproduces every "
                    "hop cycle)\n");
    } else {
        std::printf("  identity: FAIL\n%s", why.c_str());
        ++failures;
    }

    // Gate B: the unperturbed schedule, via the same lowering and
    // simulation path every counterfactual takes.
    {
        tsm::Perturbation identity;
        identity.kind = tsm::LeverKind::HacDrift;
        tsm::WhatIfCounterfactual base = engine.rebuild(identity);
        tsm::CounterfactualRun run;
        if (!tsm::runCounterfactual(topo, base, seed, &run, &error)) {
            std::printf("  baseline: FAIL (%s)\n", error.c_str());
            ++failures;
        } else if (run.gapCycles != 0) {
            std::printf("  baseline: FAIL (static %llu, simulated "
                        "%llu, gap %+lld)\n",
                        (unsigned long long)run.staticCompletionCycles,
                        (unsigned long long)run.simulatedCompletionCycles,
                        (long long)run.gapCycles);
            ++failures;
        } else {
            std::printf("  baseline: ok (simulated completion %llu == "
                        "static, gap 0)\n",
                        (unsigned long long)run.simulatedCompletionCycles);
        }
    }

    // Gate C: the top-N ranked levers, re-simulated with perturbed
    // physics. hac_drift projects observed-vs-static drift, not a
    // schedule change, so it has nothing to re-simulate.
    std::vector<tsm::WhatIfProjection> ranked =
        tsm::rankedLevers(engine, factor);
    unsigned checked = 0;
    for (const tsm::WhatIfProjection &proj : ranked) {
        if (checked >= top)
            break;
        if (proj.lever.kind == tsm::LeverKind::HacDrift)
            continue;
        ++checked;
        tsm::WhatIfCounterfactual cf = engine.rebuild(proj.lever);
        tsm::CounterfactualRun run;
        if (!tsm::runCounterfactual(topo, cf, seed, &run, &error)) {
            std::printf("  %-28s FAIL (%s)\n",
                        proj.lever.label().c_str(), error.c_str());
            ++failures;
            continue;
        }
        if (run.gapCycles != 0) {
            std::printf("  %-28s FAIL (projected makespan %llu, "
                        "static %llu, simulated %llu, gap %+lld)\n",
                        proj.lever.label().c_str(),
                        (unsigned long long)proj.projectedMakespan,
                        (unsigned long long)run.staticCompletionCycles,
                        (unsigned long long)run.simulatedCompletionCycles,
                        (long long)run.gapCycles);
            ++failures;
            continue;
        }
        std::printf("  %-28s ok (projected delta %+lld cycles, "
                    "simulated completion %llu == static, gap 0)\n",
                    proj.lever.label().c_str(),
                    (long long)proj.deltaCycles,
                    (unsigned long long)run.simulatedCompletionCycles);
    }
    if (checked == 0)
        std::printf("  (no re-simulatable levers ranked)\n");

    if (failures) {
        std::printf("%s: FAIL (%d gate%s)\n", path.c_str(), failures,
                    failures == 1 ? "" : "s");
        return 1;
    }
    std::printf("%s: ok (%u counterfactual%s re-simulated, all gaps "
                "0)\n",
                path.c_str(), checked, checked == 1 ? "" : "s");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned top = 0;
    double factor = 2.0;
    std::uint64_t seed = 0;
    std::string checkPath;
    bool version = false;
    tsm::CliParser cli("tsm_whatif");
    cli.addValue("--top", &top,
                 "levers shown (render) or re-simulated (--check); "
                 "default 10 render, 3 check");
    cli.addValue("--check", &checkPath,
                 "schedule SCENARIO.json, recompute the lever "
                 "projections and re-simulate the top levers with "
                 "perturbed physics, gating gap == 0");
    cli.addValue("--factor", &factor,
                 "lever speedup factor for --check (default 2)");
    cli.addValue("--seed", &seed,
                 "network seed for --check; 0 (default) uses the "
                 "scenario's own seed");
    cli.addFlag("--version", &version,
                "print tool name and supported schemas");
    cli.allowPositional();
    if (!cli.parse(argc, argv))
        return 2;
    if (version) {
        std::printf("%s",
                    tsm::toolVersionLine(
                        "tsm_whatif",
                        {tsm::kWhatIfSchema, tsm::kScenarioSchema})
                        .c_str());
        return 0;
    }

    if (!checkPath.empty())
        return runCheck(checkPath, top ? top : 3, factor, seed,
                        seed != 0);

    if (argc < 2) {
        std::fprintf(stderr, "tsm_whatif: no what-if files given\n%s",
                     cli.usage().c_str());
        return 2;
    }

    int ioFailures = 0;
    int checkFailures = 0;
    for (int i = 1; i < argc; ++i) {
        const char *path = argv[i];
        std::ifstream f(path, std::ios::binary);
        if (!f) {
            std::fprintf(stderr, "tsm_whatif: cannot open %s\n", path);
            ++ioFailures;
            continue;
        }
        std::ostringstream text;
        text << f.rdbuf();
        std::string error;
        const tsm::Json doc = tsm::Json::parse(text.str(), &error);
        if (doc.isNull()) {
            std::fprintf(stderr, "tsm_whatif: %s: %s\n", path,
                         error.c_str());
            ++ioFailures;
            continue;
        }
        if (!doc.has("schema") ||
            doc["schema"].kind() != tsm::Json::Kind::String ||
            doc["schema"].str() != tsm::kWhatIfSchema) {
            std::fprintf(stderr, "tsm_whatif: %s: not a %s document\n",
                         path, tsm::kWhatIfSchema);
            ++ioFailures;
            continue;
        }
        std::string why;
        if (!tsm::checkWhatIfInvariants(doc, &why)) {
            std::printf("%s: FAIL\n%s", path, why.c_str());
            ++checkFailures;
            continue;
        }
        if (i > 1)
            std::printf("\n");
        std::printf("%s",
                    tsm::renderWhatIfSummary(doc, top ? top : 10)
                        .c_str());
    }
    if (ioFailures)
        return 2;
    return checkFailures ? 1 : 0;
}
