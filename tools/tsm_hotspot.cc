/**
 * @file
 * Host-profile viewer: reads the tsm-hostprof-v1 files written by the
 * bench binaries' --hostprof flag and renders where the simulator's
 * own wall-clock time went — top event kinds by wall time, queue
 * telemetry, the queue-depth sparkline, and the sim-rate trend over
 * the run's wall-clock windows.
 *
 *   tsm_hotspot [--top=N] HOSTPROF.json...
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/cli.hh"
#include "common/version.hh"
#include "hostprof/hostprof.hh"

int
main(int argc, char **argv)
{
    unsigned top = 8;
    bool version = false;
    tsm::CliParser cli("tsm_hotspot");
    cli.addValue("--top", &top, "event kinds shown, hottest first");
    cli.allowPositional();
    cli.addFlag("--version", &version,
                "print the tool name and supported schemas");
    if (!cli.parse(argc, argv))
        return 2;
    if (version) {
        std::printf("%s", tsm::toolVersionLine("tsm_hotspot",
            {tsm::kHostprofSchema}).c_str());
        return 0;
    }
    if (argc < 2) {
        std::fprintf(stderr, "tsm_hotspot: no hostprof files given\n%s",
                     cli.usage().c_str());
        return 2;
    }

    int failures = 0;
    for (int i = 1; i < argc; ++i) {
        const char *path = argv[i];
        std::ifstream f(path, std::ios::binary);
        if (!f) {
            std::fprintf(stderr, "tsm_hotspot: cannot open %s\n", path);
            ++failures;
            continue;
        }
        std::ostringstream text;
        text << f.rdbuf();
        std::string error;
        const tsm::Json doc = tsm::Json::parse(text.str(), &error);
        if (doc.isNull()) {
            std::fprintf(stderr, "tsm_hotspot: %s: %s\n", path,
                         error.c_str());
            ++failures;
            continue;
        }
        if (!doc.has("schema") ||
            doc["schema"].str() != tsm::kHostprofSchema) {
            std::fprintf(stderr, "tsm_hotspot: %s: not a %s document\n",
                         path, tsm::kHostprofSchema);
            ++failures;
            continue;
        }
        if (i > 1)
            std::printf("\n");
        std::printf("%s", tsm::renderHostprof(doc, top).c_str());
    }
    return failures == 0 ? 0 : 1;
}
