/**
 * @file
 * Concurrency triage tool: reads the tsm-parallel-v1 documents
 * written by the bench binaries' --lanes flag and renders the
 * concurrency summary — lane and phase totals, the projected
 * phase-barrier speedup-bound table, the events-per-phase ribbon, and
 * the busiest-lanes heatmap.
 *
 *   tsm_lanes [--top=N] [--cols=N] [--check] [--min-speedup=X]
 *             [--workers=W] LANES.json...
 *
 * --check verifies the reconciliation invariants instead of
 * rendering: per-kind lane totals and per-phase counts must each sum
 * exactly to the live event total, and the speedup bounds must be
 * >= 1, monotone in the worker count, and capped by the critical
 * path. --min-speedup=X additionally gates on the projected bound
 * for --workers (default 16) being at least X — the "the serial
 * engine leaves >= Xx on the table" assertion CI pins on the 256-chip
 * scenario.
 *
 * Exit status: 0 ok, 1 invariant violation or gate failure, 2
 * unreadable input.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/cli.hh"
#include "common/version.hh"
#include "prof/lanes.hh"

int
main(int argc, char **argv)
{
    unsigned top = 8;
    unsigned cols = 64;
    unsigned workers = 16;
    double minSpeedup = 0.0;
    bool check = false;
    bool version = false;
    tsm::CliParser cli("tsm_lanes");
    cli.addValue("--top", &top, "lanes shown in the heatmap");
    cli.addValue("--cols", &cols,
                 "ribbon/heatmap width in columns (phases are bucketed)");
    cli.addFlag("--check", &check,
                "verify the lane/phase reconciliation invariants "
                "instead of rendering");
    cli.addValue("--min-speedup", &minSpeedup,
                 "gate: projected bound for --workers must be >= X "
                 "(implies --check)");
    cli.addValue("--workers", &workers,
                 "worker-pool size the --min-speedup gate reads "
                 "(default 16)");
    cli.allowPositional();
    cli.addFlag("--version", &version,
                "print the tool name and supported schemas");
    if (!cli.parse(argc, argv))
        return 2;
    if (version) {
        std::printf("%s", tsm::toolVersionLine("tsm_lanes",
            {tsm::kLanesSchema}).c_str());
        return 0;
    }
    if (minSpeedup > 0.0)
        check = true;
    if (argc < 2) {
        std::fprintf(stderr, "tsm_lanes: no lanes files given\n%s",
                     cli.usage().c_str());
        return 2;
    }

    int ioFailures = 0;
    int checkFailures = 0;
    for (int i = 1; i < argc; ++i) {
        const char *path = argv[i];
        std::ifstream f(path, std::ios::binary);
        if (!f) {
            std::fprintf(stderr, "tsm_lanes: cannot open %s\n", path);
            ++ioFailures;
            continue;
        }
        std::ostringstream text;
        text << f.rdbuf();
        std::string error;
        const tsm::Json lanes = tsm::Json::parse(text.str(), &error);
        if (lanes.isNull()) {
            std::fprintf(stderr, "tsm_lanes: %s: %s\n", path,
                         error.c_str());
            ++ioFailures;
            continue;
        }
        if (!lanes.has("schema") ||
            lanes["schema"].kind() != tsm::Json::Kind::String ||
            lanes["schema"].str() != tsm::kLanesSchema) {
            std::fprintf(stderr, "tsm_lanes: %s: not a %s document\n",
                         path, tsm::kLanesSchema);
            ++ioFailures;
            continue;
        }
        if (check) {
            std::string why;
            bool ok = tsm::checkLanesInvariants(lanes, &why);
            if (ok && minSpeedup > 0.0) {
                double bound = -1.0;
                for (const tsm::Json &s : lanes["speedup"].items())
                    if (s["workers"].integer() ==
                        std::int64_t(workers))
                        bound = s["bound"].number();
                if (bound < 0.0) {
                    ok = false;
                    why += "no speedup entry for " +
                           std::to_string(workers) + " workers\n";
                } else if (bound < minSpeedup) {
                    ok = false;
                    why += "projected bound for " +
                           std::to_string(workers) + " workers is " +
                           std::to_string(bound) + " < required " +
                           std::to_string(minSpeedup) + "\n";
                }
            }
            if (ok) {
                std::printf("%s: ok (lane and phase counts reconcile "
                            "with the total)\n",
                            path);
            } else {
                std::printf("%s: FAIL\n%s", path, why.c_str());
                ++checkFailures;
            }
            continue;
        }
        if (i > 1)
            std::printf("\n");
        std::printf("%s", tsm::renderLanesSummary(lanes, top, cols)
                              .c_str());
    }
    if (ioFailures)
        return 2;
    return checkFailures ? 1 : 0;
}
