/**
 * @file
 * First-divergence determinism auditor: compares two tsm-journal-v1
 * event journals (recorded with --journal=FILE or
 * SystemConfig::journalPath) and reports the first event at which the
 * two runs differ, together with the causal span ancestry of the
 * offending transfer — every earlier event belonging to the same
 * vector journey, so the report reads as "this transfer, on this leg,
 * is where the machines stopped agreeing".
 *
 *   tsm_diverge [--context=N] [--ancestry=N] A.journal B.journal
 *
 * Exit status: 0 when the journals are event-identical, 1 on
 * divergence (or length mismatch), 2 on usage or file errors.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/version.hh"
#include "trace/journal.hh"
#include "trace/span.hh"

namespace {

using tsm::JournalRecord;
using tsm::SpanId;

void
printRecord(const char *tag, const JournalRecord &rec)
{
    std::printf("  %s line %zu: %s\n", tag, rec.line, rec.raw.c_str());
}

/** Name the first field that differs between two records. */
const char *
firstDifference(const JournalRecord &a, const JournalRecord &b)
{
    if (a.tick != b.tick)
        return "tick";
    if (a.cat != b.cat)
        return "category";
    if (a.actor != b.actor)
        return "actor";
    if (a.name != b.name)
        return "event name";
    if (a.a != b.a)
        return "payload a";
    if (a.b != b.b)
        return "payload b";
    if (a.span != b.span)
        return "span";
    return "nothing";
}

/**
 * Every event in `recs[0..limit)` belonging to the same transfer as
 * `span` (same parent span), i.e. the causal history of the diverging
 * vector: its open, each link leg, each forwarding chip's part.
 */
std::vector<const JournalRecord *>
spanAncestry(const std::vector<JournalRecord> &recs, std::size_t limit,
             SpanId span)
{
    std::vector<const JournalRecord *> out;
    const SpanId parent = tsm::spanParent(span);
    for (std::size_t i = 0; i < limit && i < recs.size(); ++i)
        if (recs[i].span != tsm::kSpanNone &&
            tsm::spanParent(recs[i].span) == parent)
            out.push_back(&recs[i]);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned context = 3;
    unsigned ancestry_max = 32;
    bool version = false;
    tsm::CliParser cli("tsm_diverge");
    cli.addValue("--context", &context,
                 "matching events shown before the divergence");
    cli.addValue("--ancestry", &ancestry_max,
                 "causal span-ancestry events shown (most recent first)");
    cli.allowPositional();
    cli.addFlag("--version", &version,
                "print the tool name and supported schemas");
    if (!cli.parse(argc, argv))
        return 2;
    if (version) {
        std::printf("%s", tsm::toolVersionLine("tsm_diverge",
            {"tsm-journal-v1"}).c_str());
        return 0;
    }
    if (argc != 3) {
        std::fprintf(stderr,
                     "tsm_diverge: expected exactly two journal files\n%s",
                     cli.usage().c_str());
        return 2;
    }

    const std::string path_a = argv[1];
    const std::string path_b = argv[2];
    std::vector<JournalRecord> a, b;
    std::string error;
    if (!tsm::readJournal(path_a, a, &error) ||
        !tsm::readJournal(path_b, b, &error)) {
        std::fprintf(stderr, "tsm_diverge: %s\n", error.c_str());
        return 2;
    }

    const std::size_t common = std::min(a.size(), b.size());
    std::size_t idx = 0;
    while (idx < common && a[idx] == b[idx])
        ++idx;

    if (idx == common && a.size() == b.size()) {
        std::printf("journals identical: %zu events\n  A: %s\n  B: %s\n",
                    a.size(), path_a.c_str(), path_b.c_str());
        return 0;
    }

    std::printf("journals diverge at event %zu\n  A: %s (%zu events)\n"
                "  B: %s (%zu events)\n\n",
                idx, path_a.c_str(), a.size(), path_b.c_str(), b.size());

    if (context > 0 && idx > 0) {
        const std::size_t from = idx > context ? idx - context : 0;
        std::printf("last %zu matching events:\n", idx - from);
        for (std::size_t i = from; i < idx; ++i)
            printRecord("=", a[i]);
        std::printf("\n");
    }

    // The diverging event itself; one journal may simply have ended.
    const JournalRecord *ra = idx < a.size() ? &a[idx] : nullptr;
    const JournalRecord *rb = idx < b.size() ? &b[idx] : nullptr;
    if (ra && rb) {
        std::printf("first divergence (differs in %s):\n",
                    firstDifference(*ra, *rb));
        printRecord("A", *ra);
        printRecord("B", *rb);
    } else {
        std::printf("journal %s ends %zu events early:\n",
                    ra ? "B" : "A", (ra ? a.size() : b.size()) - idx);
        printRecord(ra ? "A" : "B", ra ? *ra : *rb);
    }

    // Causal ancestry: the diverging vector's journey so far, taken
    // from run A (the reference) — or B when only B has the event.
    const JournalRecord *probe = ra ? ra : rb;
    SpanId span = probe->span;
    const std::vector<JournalRecord> &ref = ra ? a : b;
    if (span == tsm::kSpanNone) {
        // Spanless event (e.g. a dispatch of untagged work): fall back
        // to the most recent spanned event, which is the transfer
        // context the divergence happened inside.
        for (std::size_t i = idx; i-- > 0;)
            if (ref[i].span != tsm::kSpanNone) {
                span = ref[i].span;
                std::printf("\ndiverging event carries no span; nearest "
                            "preceding spanned event is line %zu\n",
                            ref[i].line);
                break;
            }
    }
    if (span == tsm::kSpanNone) {
        std::printf("\nno causal span ancestry available\n");
        return 1;
    }

    auto chain = spanAncestry(ref, idx + 1, span);
    std::printf("\ncausal span ancestry of transfer %s "
                "(%zu events, oldest first%s):\n",
                tsm::spanStr(tsm::spanParent(span)).c_str(), chain.size(),
                chain.size() > ancestry_max ? ", truncated" : "");
    const std::size_t from =
        chain.size() > ancestry_max ? chain.size() - ancestry_max : 0;
    for (std::size_t i = from; i < chain.size(); ++i) {
        const JournalRecord &rec = *chain[i];
        std::printf("  [%s] %s\n", tsm::spanStr(rec.span).c_str(),
                    rec.raw.c_str());
    }
    return 1;
}
