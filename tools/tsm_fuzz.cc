/**
 * @file
 * tsm_fuzz — seeded scenario fuzzer asserting the determinism
 * invariants the paper's software-scheduled network promises.
 *
 * For every seed in [--seed, --seed + --cases) it generates a random
 * valid scenario (src/scenario/generator.hh) and checks:
 *
 *   roundtrip  parse -> serialize -> parse is byte-stable: the
 *              canonical document re-parses to the same canonical
 *              document;
 *   journal    two executions of the scenario produce byte-identical
 *              tsm-journal-v1 streams — the same-seed reproducibility
 *              claim, per generated scenario instead of per bench;
 *   waterfall  every transfer's serialize + flight + forward + wait
 *              stages sum *exactly* to its observed latency, every
 *              span closes, and the span count equals the vectors
 *              moved;
 *   blame      the tsm-blame-v1 contention attribution is exact (per
 *              transfer and per link the blamed shares sum exactly to
 *              the waits), its per-link waits reconcile with the
 *              profiler's queue-delay account, and two executions
 *              produce byte-identical blame documents;
 *   lanes      the tsm-parallel-v1 concurrency profile reconciles
 *              exactly (per-kind lane totals and per-phase counts
 *              each sum to the live event total, speedup bounds are
 *              >= 1, monotone, and capped by the critical path) and
 *              two executions produce byte-identical lanes documents.
 *
 * On a failure the scenario is greedily shrunk (re-testing candidate
 * simplifications until none still fails) and the minimal reproducer
 * is saved as a scenario JSON file: re-run it with
 * `tsm_fuzz --replay=FILE`, or feed the two journals of a journal
 * failure to tools/tsm_diverge for first-divergence triage.
 *
 * Exit codes: 0 all cases pass, 1 any invariant failed (reproducer
 * saved), 2 usage error.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/version.hh"
#include "hostprof/hostprof.hh"
#include "prof/report.hh"
#include "scenario/generator.hh"
#include "scenario/runner.hh"
#include "scenario/scenario.hh"

using namespace tsm;

namespace {

struct Invariants
{
    bool roundtrip = true;
    bool journal = true;
    bool waterfall = true;
    bool blame = true;
    bool lanes = true;
};

/**
 * First failing invariant's name, or nullptr when all hold. `hp`,
 * when given, profiles the first execution only — so the journal
 * invariant then also asserts that a profiled and an unprofiled run
 * produce byte-identical journals (hostprof must never perturb the
 * simulation).
 */
const char *
check(const Scenario &sc, const Invariants &which,
      HostProfiler *hp = nullptr)
{
    if (which.roundtrip) {
        const std::string text = dumpScenario(sc);
        Scenario reparsed;
        std::string error;
        if (!parseScenario(text, reparsed, &error))
            return "roundtrip";
        if (dumpScenario(reparsed) != text)
            return "roundtrip";
    }

    if (which.journal || which.waterfall || which.blame ||
        which.lanes) {
        const ScenarioExecution first = executeScenario(sc, {}, hp);
        if (which.waterfall &&
            (!first.allSpansClosed() || !first.waterfallsExact()))
            return "waterfall";
        if (which.blame && !first.blameExact())
            return "blame";
        if (which.lanes && !first.lanesReconcile())
            return "lanes";
        if (which.journal || which.blame || which.lanes) {
            const ScenarioExecution second = executeScenario(sc);
            if (which.journal &&
                (first.journal.empty() ||
                 first.journal != second.journal))
                return "journal";
            // Same-seed blame must be byte-deterministic, like the
            // journal — shares and chains included, not just totals.
            if (which.blame &&
                (first.blameText.empty() ||
                 first.blameText != second.blameText))
                return "blame";
            // So must the concurrency profile — the speedup bounds
            // included, not just the event counts.
            if (which.lanes &&
                (first.lanesText.empty() ||
                 first.lanesText != second.lanesText))
                return "lanes";
        }
    }
    return nullptr;
}

/** Greedily shrink `sc` while `failed` still fails. */
Scenario
shrink(Scenario sc, const char *failed, const Invariants &which,
       unsigned *rounds)
{
    Invariants only;
    only.roundtrip = which.roundtrip &&
                     std::string(failed) == "roundtrip";
    only.journal = which.journal && std::string(failed) == "journal";
    only.waterfall = which.waterfall &&
                     std::string(failed) == "waterfall";
    only.blame = which.blame && std::string(failed) == "blame";
    only.lanes = which.lanes && std::string(failed) == "lanes";

    bool shrunk = true;
    while (shrunk) {
        shrunk = false;
        for (Scenario &candidate : shrinkCandidates(sc)) {
            const char *still = check(candidate, only);
            if (still && std::string(still) == failed) {
                sc = std::move(candidate);
                ++*rounds;
                shrunk = true;
                break;
            }
        }
    }
    return sc;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t seed = 1;
    unsigned cases = 100;
    FuzzConfig cfg;
    std::uint64_t maxVectors = cfg.maxVectors;
    std::vector<std::string> skip;
    std::string save = ".";
    std::string replay;
    std::string emit;
    std::string hostprofDir;
    bool keepGoing = false;
    bool quiet = false;
    bool stats = false;
    unsigned progress = 0;

    bool version = false;
    CliParser cli("tsm_fuzz");
    cli.addValue("--seed", &seed, "first generator seed (default 1)");
    cli.addValue("--cases", &cases,
                 "number of consecutive seeds to run (default 100)");
    cli.addValue("--max-flows", &cfg.maxFlows,
                 "explicit-flow bound per scenario (default 10)");
    cli.addValue("--max-vectors", &maxVectors,
                 "tensor-size bound in vectors (default 48)");
    cli.addList("--skip-invariant", &skip,
                "invariants to skip: "
                "roundtrip,journal,waterfall,blame,lanes");
    cli.addValue("--save", &save,
                 "directory for shrunk reproducers (default .)");
    cli.addValue("--replay", &replay,
                 "check one scenario file instead of generating");
    cli.addValue("--emit", &emit,
                 "write the scenario for --seed to FILE and exit");
    cli.addFlag("--keep-going", &keepGoing,
                "test every case even after a failure");
    cli.addFlag("--quiet", &quiet, "only report failures and totals");
    cli.addFlag("--stats", &stats,
                "profile each case's first execution and report its "
                "sim-rate");
    cli.addValue("--hostprof-dir", &hostprofDir,
                 "write one tsm-hostprof-v1 file per case to DIR "
                 "(implies --stats)");
    cli.addValue("--progress", &progress,
                 "heartbeat to stderr every N cases, for long CI runs "
                 "(0 = off)");
    cli.addFlag("--version", &version,
                "print the tool name and supported schemas");
    if (!cli.parse(argc, argv))
        return 2;
    if (version) {
        std::printf("%s", toolVersionLine("tsm_fuzz",
            {kScenarioSchema}).c_str());
        return 0;
    }
    cfg.maxVectors = std::uint32_t(maxVectors);
    if (!hostprofDir.empty())
        stats = true;

    Invariants which;
    for (const std::string &s : skip) {
        if (s == "roundtrip")
            which.roundtrip = false;
        else if (s == "journal")
            which.journal = false;
        else if (s == "waterfall")
            which.waterfall = false;
        else if (s == "blame")
            which.blame = false;
        else if (s == "lanes")
            which.lanes = false;
        else {
            std::fprintf(stderr,
                         "tsm_fuzz: unknown invariant \"%s\" (known: "
                         "roundtrip, journal, waterfall, blame, "
                         "lanes)\n",
                         s.c_str());
            return 2;
        }
    }
    if (!which.roundtrip && !which.journal && !which.waterfall &&
        !which.blame && !which.lanes) {
        std::fprintf(stderr,
                     "tsm_fuzz: every invariant skipped — nothing to "
                     "check\n");
        return 2;
    }

    if (!emit.empty()) {
        const Scenario sc = generateScenario(seed, cfg);
        std::string error;
        if (!saveScenarioFile(emit, sc, &error)) {
            std::fprintf(stderr, "tsm_fuzz: %s\n", error.c_str());
            return 2;
        }
        std::printf("wrote %s (seed %llu: %zu flows, %zu collectives, "
                    "%zu patterns)\n",
                    emit.c_str(), (unsigned long long)seed,
                    sc.flows.size(), sc.collectives.size(),
                    sc.patterns.size());
        return 0;
    }

    if (!replay.empty()) {
        Scenario sc;
        std::string error;
        if (!loadScenarioFile(replay, sc, &error)) {
            std::fprintf(stderr, "tsm_fuzz: %s\n", error.c_str());
            return 2;
        }
        const char *failed = check(sc, which);
        if (failed) {
            std::printf("%s: FAIL (%s invariant)\n", replay.c_str(),
                        failed);
            return 1;
        }
        std::printf("%s: ok\n", replay.c_str());
        return 0;
    }

    unsigned failures = 0;
    std::uint64_t totalEvents = 0;
    std::uint64_t totalWallNs = 0;
    std::uint64_t totalSimPs = 0;
    unsigned profiled = 0;
    for (unsigned i = 0; i < cases; ++i) {
        const std::uint64_t s = seed + i;
        if (progress > 0 && i % progress == 0) {
            // stderr so the heartbeat survives a redirected stdout and
            // shows up unbuffered in CI logs.
            std::fprintf(stderr,
                         "tsm_fuzz: case %u/%u (seed %llu), %u "
                         "failure%s so far\n",
                         i + 1, cases, (unsigned long long)s, failures,
                         failures == 1 ? "" : "s");
        }
        const Scenario sc = generateScenario(s, cfg);
        HostProfiler hp;
        const char *failed = check(sc, which, stats ? &hp : nullptr);
        if (stats && hp.events() > 0) {
            totalEvents += hp.events();
            totalWallNs += hp.wallNs();
            totalSimPs += hp.simPs();
            ++profiled;
            if (!hostprofDir.empty()) {
                const std::string path = hostprofDir + "/hostprof_seed" +
                                         std::to_string(s) + ".json";
                std::string error;
                if (!writeProfileReport(path, hp.report(), &error))
                    std::fprintf(stderr, "tsm_fuzz: %s\n", error.c_str());
            }
        }
        if (!failed) {
            if (!quiet) {
                std::printf("seed %llu: ok (%zu flows)",
                            (unsigned long long)s, sc.flows.size());
                if (stats && hp.wallNs() > 0)
                    std::printf(" — %llu events in %.2f ms, %.2fM "
                                "events/s, slowdown %.0fx",
                                (unsigned long long)hp.events(),
                                double(hp.wallNs()) / 1e6,
                                double(hp.events()) * 1e3 /
                                    double(hp.wallNs()),
                                hp.simPs() > 0
                                    ? double(hp.wallNs()) * 1e3 /
                                          double(hp.simPs())
                                    : 0.0);
                std::printf("\n");
            }
            continue;
        }

        ++failures;
        unsigned rounds = 0;
        const Scenario minimal = shrink(sc, failed, which, &rounds);
        const std::string path = save + "/tsm_fuzz_repro_seed" +
                                 std::to_string(s) + ".json";
        std::string error;
        if (!saveScenarioFile(path, minimal, &error))
            std::fprintf(stderr, "tsm_fuzz: %s\n", error.c_str());
        std::printf("seed %llu: FAIL (%s invariant) — shrunk %u "
                    "rounds to %zu flows, reproducer saved to %s\n",
                    (unsigned long long)s, failed, rounds,
                    minimal.flows.size(), path.c_str());
        if (!keepGoing)
            break;
    }

    std::printf("tsm_fuzz: %u case%s, %u failure%s\n",
                cases, cases == 1 ? "" : "s", failures,
                failures == 1 ? "" : "s");
    if (stats && totalWallNs > 0)
        std::printf("tsm_fuzz sim-rate: %u profiled case%s, %llu events "
                    "in %.2f ms — %.2fM events/s, mean slowdown %.0fx\n",
                    profiled, profiled == 1 ? "" : "s",
                    (unsigned long long)totalEvents,
                    double(totalWallNs) / 1e6,
                    double(totalEvents) * 1e3 / double(totalWallNs),
                    totalSimPs > 0 ? double(totalWallNs) * 1e3 /
                                         double(totalSimPs)
                                   : 0.0);
    return failures ? 1 : 0;
}
