/**
 * @file
 * Bench regression gate: compares two tsm-profile-v1 reports (or two
 * tsm-timeline-v1 documents) metric by metric against a relative
 * tolerance and exits 1 when any directional metric regressed beyond
 * it. CI diffs fresh reports against the checked-in BENCH_*.json
 * baselines, so a perf regression fails the build instead of
 * scrolling past in a log.
 *
 *   tsm_bench_diff [--tol=FRAC] BASELINE.json NEW.json
 *
 * Exit status: 0 within tolerance, 1 regression, 2 usage/IO error.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/cli.hh"
#include "common/version.hh"
#include "hostprof/hostprof.hh"
#include "prof/blame.hh"
#include "prof/lanes.hh"
#include "prof/report.hh"
#include "prof/whatif.hh"
#include "telemetry/bench_diff.hh"
#include "telemetry/timeline.hh"

namespace {

bool
loadJson(const char *path, tsm::Json *doc)
{
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        std::fprintf(stderr, "tsm_bench_diff: cannot open %s\n", path);
        return false;
    }
    std::ostringstream text;
    text << f.rdbuf();
    std::string error;
    *doc = tsm::Json::parse(text.str(), &error);
    if (doc->isNull()) {
        std::fprintf(stderr, "tsm_bench_diff: %s: %s\n", path,
                     error.c_str());
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    double tol = 0.05;
    bool version = false;
    tsm::CliParser cli("tsm_bench_diff");
    cli.addValue("--tol", &tol,
                 "relative tolerance (0.05 = 5%) before a directional "
                 "metric gates");
    cli.allowPositional();
    cli.addFlag("--version", &version,
                "print the tool name and supported schemas");
    if (!cli.parse(argc, argv))
        return 2;
    if (version) {
        std::printf("%s",
                    tsm::toolVersionLine(
                        "tsm_bench_diff",
                        {tsm::kProfileSchema, tsm::kHostprofSchema,
                         tsm::kTimelineSchema, tsm::kBlameSchema,
                         tsm::kWhatIfSchema, tsm::kLanesSchema})
                        .c_str());
        return 0;
    }
    if (argc != 3) {
        std::fprintf(stderr,
                     "tsm_bench_diff: expected BASELINE.json NEW.json\n%s",
                     cli.usage().c_str());
        return 2;
    }

    tsm::Json base, next;
    if (!loadJson(argv[1], &base) || !loadJson(argv[2], &next))
        return 2;

    const tsm::DiffResult diff = tsm::diffReports(base, next, tol);
    std::printf("%s", tsm::renderDiff(diff).c_str());
    return diff.regressed ? 1 : 0;
}
