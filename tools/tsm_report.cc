/**
 * @file
 * Offline renderer for profile reports: reads BENCH_*.json files
 * written by the bench binaries' --report flag and prints the same
 * human-readable summary the binaries print live — per-chip
 * functional-unit utilization, top-k bottleneck links with queueing
 * percentiles, HAC telemetry, and the SSN critical-path breakdown.
 *
 *   tsm_report [--top=N] REPORT.json...
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/cli.hh"
#include "prof/report.hh"

int
main(int argc, char **argv)
{
    unsigned top = 5;
    tsm::CliParser cli("tsm_report");
    cli.addValue("--top", &top, "links shown in the bottleneck table");
    cli.allowPositional();
    if (!cli.parse(argc, argv))
        return 2;
    if (argc < 2) {
        std::fprintf(stderr, "tsm_report: no report files given\n%s",
                     cli.usage().c_str());
        return 2;
    }

    int failures = 0;
    for (int i = 1; i < argc; ++i) {
        const char *path = argv[i];
        std::ifstream f(path, std::ios::binary);
        if (!f) {
            std::fprintf(stderr, "tsm_report: cannot open %s\n", path);
            ++failures;
            continue;
        }
        std::ostringstream text;
        text << f.rdbuf();
        std::string error;
        const tsm::Json report = tsm::Json::parse(text.str(), &error);
        if (report.isNull()) {
            std::fprintf(stderr, "tsm_report: %s: %s\n", path,
                         error.c_str());
            ++failures;
            continue;
        }
        if (!report.has("schema") ||
            report["schema"].str() != tsm::kProfileSchema) {
            std::fprintf(stderr,
                         "tsm_report: %s: not a %s document\n", path,
                         tsm::kProfileSchema);
            ++failures;
            continue;
        }
        if (i > 1)
            std::printf("\n");
        std::printf("%s", tsm::renderProfileSummary(report, top).c_str());
    }
    return failures == 0 ? 0 : 1;
}
