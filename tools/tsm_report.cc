/**
 * @file
 * Offline renderer for profile reports: reads BENCH_*.json files
 * written by the bench binaries' --report flag and prints the same
 * human-readable summary the binaries print live — per-chip
 * functional-unit utilization, top-k bottleneck links with queueing
 * percentiles, HAC telemetry, and the SSN critical-path breakdown.
 *
 *   tsm_report [--top=N] [--hostprof=FILE] [--blame=FILE] REPORT.json...
 *
 * With --hostprof=FILE (a tsm-hostprof-v1 document from the same
 * run), the summary's wall-clock/sim-rate footer is filled in;
 * without it the footer honestly reads "n/a".
 *
 * With --blame=FILE (a tsm-blame-v1 document from the same run), the
 * contention-attribution summary — wait decomposition, top blamed
 * flow pairs, blocked-by chains — is appended after the profile
 * summaries.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/cli.hh"
#include "common/version.hh"
#include "hostprof/hostprof.hh"
#include "prof/blame.hh"
#include "prof/report.hh"

int
main(int argc, char **argv)
{
    unsigned top = 5;
    std::string hostprofPath;
    std::string blamePath;
    bool version = false;
    tsm::CliParser cli("tsm_report");
    cli.addValue("--top", &top, "links shown in the bottleneck table");
    cli.addValue("--hostprof", &hostprofPath,
                 "companion tsm-hostprof-v1 file for the sim-rate footer");
    cli.addValue("--blame", &blamePath,
                 "companion tsm-blame-v1 file for the contention section");
    cli.allowPositional();
    cli.addFlag("--version", &version,
                "print the tool name and supported schemas");
    if (!cli.parse(argc, argv))
        return 2;
    if (version) {
        std::printf("%s", tsm::toolVersionLine("tsm_report",
            {tsm::kProfileSchema, tsm::kHostprofSchema, tsm::kBlameSchema}).c_str());
        return 0;
    }
    if (argc < 2) {
        std::fprintf(stderr, "tsm_report: no report files given\n%s",
                     cli.usage().c_str());
        return 2;
    }

    int failures = 0;
    tsm::Json host;
    if (!hostprofPath.empty()) {
        std::ifstream f(hostprofPath, std::ios::binary);
        std::ostringstream text;
        std::string error;
        if (f)
            text << f.rdbuf();
        if (f)
            host = tsm::Json::parse(text.str(), &error);
        if (host.isNull() || !host.has("schema") ||
            host["schema"].str() != tsm::kHostprofSchema) {
            std::fprintf(stderr, "tsm_report: %s: not a readable %s "
                         "document\n",
                         hostprofPath.c_str(), tsm::kHostprofSchema);
            host = tsm::Json();
            ++failures;
        }
    }
    tsm::Json blame;
    if (!blamePath.empty()) {
        std::ifstream f(blamePath, std::ios::binary);
        std::ostringstream text;
        std::string error;
        if (f)
            text << f.rdbuf();
        if (f)
            blame = tsm::Json::parse(text.str(), &error);
        if (blame.isNull() || !blame.has("schema") ||
            blame["schema"].kind() != tsm::Json::Kind::String ||
            blame["schema"].str() != tsm::kBlameSchema) {
            std::fprintf(stderr, "tsm_report: %s: not a readable %s "
                         "document\n",
                         blamePath.c_str(), tsm::kBlameSchema);
            blame = tsm::Json();
            ++failures;
        }
    }
    for (int i = 1; i < argc; ++i) {
        const char *path = argv[i];
        std::ifstream f(path, std::ios::binary);
        if (!f) {
            std::fprintf(stderr, "tsm_report: cannot open %s\n", path);
            ++failures;
            continue;
        }
        std::ostringstream text;
        text << f.rdbuf();
        std::string error;
        const tsm::Json report = tsm::Json::parse(text.str(), &error);
        if (report.isNull()) {
            std::fprintf(stderr, "tsm_report: %s: %s\n", path,
                         error.c_str());
            ++failures;
            continue;
        }
        if (!report.has("schema") ||
            report["schema"].str() != tsm::kProfileSchema) {
            std::fprintf(stderr,
                         "tsm_report: %s: not a %s document\n", path,
                         tsm::kProfileSchema);
            ++failures;
            continue;
        }
        if (i > 1)
            std::printf("\n");
        std::printf("%s",
                    tsm::renderProfileSummary(
                        report, top, host.isNull() ? nullptr : &host)
                        .c_str());
    }
    if (!blame.isNull())
        std::printf("\n%s", tsm::renderBlameSummary(blame, top).c_str());
    return failures == 0 ? 0 : 1;
}
