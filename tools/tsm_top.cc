/**
 * @file
 * Terminal heatmap viewer for windowed timelines: reads the
 * tsm-timeline-v1 files written by the bench binaries' --timeline
 * flag and renders the links x windows utilization heatmap, the
 * chips x windows issue-slot occupancy heatmap, and the
 * bottleneck-phase ribbon with its per-phase summary table.
 *
 *   tsm_top [--cols=N] [--links=N] [--chips=N] [--hostprof=FILE]
 *           TIMELINE.json...
 *
 * A tsm-blame-v1 document (from --blame) may be given in place of a
 * timeline: it renders as the links x windows contention heatmap —
 * where waits piled up instead of where flits flowed.
 *
 * With --hostprof=FILE (a tsm-hostprof-v1 document from the same
 * run), a wall-clock/sim-rate footer is appended; without it the
 * footer honestly reads "n/a".
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/cli.hh"
#include "common/version.hh"
#include "hostprof/hostprof.hh"
#include "prof/blame.hh"
#include "telemetry/contention.hh"
#include "telemetry/render.hh"
#include "telemetry/timeline.hh"

namespace {

/** Load a hostprof document; null Json (with stderr note) on failure. */
tsm::Json
loadHostprof(const std::string &path, const char *tool)
{
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        std::fprintf(stderr, "%s: cannot open %s\n", tool, path.c_str());
        return tsm::Json();
    }
    std::ostringstream text;
    text << f.rdbuf();
    std::string error;
    const tsm::Json doc = tsm::Json::parse(text.str(), &error);
    if (doc.isNull()) {
        std::fprintf(stderr, "%s: %s: %s\n", tool, path.c_str(),
                     error.c_str());
        return tsm::Json();
    }
    if (!doc.has("schema") ||
        doc["schema"].str() != tsm::kHostprofSchema) {
        std::fprintf(stderr, "%s: %s: not a %s document\n", tool,
                     path.c_str(), tsm::kHostprofSchema);
        return tsm::Json();
    }
    return doc;
}

} // namespace

int
main(int argc, char **argv)
{
    tsm::TopOptions opts;
    std::string hostprofPath;
    bool version = false;
    tsm::CliParser cli("tsm_top");
    cli.addValue("--cols", &opts.cols, "heatmap width in columns");
    cli.addValue("--links", &opts.maxLinks, "links shown, busiest first");
    cli.addValue("--chips", &opts.maxChips, "chips shown, busiest first");
    cli.addValue("--hostprof", &hostprofPath,
                 "companion tsm-hostprof-v1 file for the sim-rate footer");
    cli.allowPositional();
    cli.addFlag("--version", &version,
                "print the tool name and supported schemas");
    if (!cli.parse(argc, argv))
        return 2;
    if (version) {
        std::printf("%s", tsm::toolVersionLine("tsm_top",
            {tsm::kTimelineSchema, tsm::kBlameSchema, tsm::kHostprofSchema}).c_str());
        return 0;
    }
    if (argc < 2) {
        std::fprintf(stderr, "tsm_top: no timeline files given\n%s",
                     cli.usage().c_str());
        return 2;
    }

    int failures = 0;
    for (int i = 1; i < argc; ++i) {
        const char *path = argv[i];
        std::ifstream f(path, std::ios::binary);
        if (!f) {
            std::fprintf(stderr, "tsm_top: cannot open %s\n", path);
            ++failures;
            continue;
        }
        std::ostringstream text;
        text << f.rdbuf();
        std::string error;
        const tsm::Json timeline = tsm::Json::parse(text.str(), &error);
        if (timeline.isNull()) {
            std::fprintf(stderr, "tsm_top: %s: %s\n", path, error.c_str());
            ++failures;
            continue;
        }
        const std::string schema =
            timeline.has("schema") &&
                    timeline["schema"].kind() == tsm::Json::Kind::String
                ? timeline["schema"].str()
                : "";
        if (schema == tsm::kBlameSchema) {
            if (i > 1)
                std::printf("\n");
            std::printf("%s",
                        tsm::renderContentionHeatmap(timeline, opts.cols,
                                                     opts.maxLinks)
                            .c_str());
            continue;
        }
        if (schema != tsm::kTimelineSchema) {
            std::fprintf(stderr, "tsm_top: %s: not a %s (or %s) "
                         "document\n",
                         path, tsm::kTimelineSchema, tsm::kBlameSchema);
            ++failures;
            continue;
        }
        if (i > 1)
            std::printf("\n");
        std::printf("%s", tsm::renderTimelineTop(timeline, opts).c_str());
    }
    tsm::Json host;
    if (!hostprofPath.empty()) {
        host = loadHostprof(hostprofPath, "tsm_top");
        if (host.isNull())
            ++failures;
    }
    std::printf("%s",
                tsm::renderHostRateLine(host.isNull() ? nullptr : &host)
                    .c_str());
    return failures == 0 ? 0 : 1;
}
