/**
 * @file
 * Terminal heatmap viewer for windowed timelines: reads the
 * tsm-timeline-v1 files written by the bench binaries' --timeline
 * flag and renders the links x windows utilization heatmap, the
 * chips x windows issue-slot occupancy heatmap, and the
 * bottleneck-phase ribbon with its per-phase summary table.
 *
 *   tsm_top [--cols=N] [--links=N] [--chips=N] TIMELINE.json...
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/cli.hh"
#include "telemetry/render.hh"
#include "telemetry/timeline.hh"

int
main(int argc, char **argv)
{
    tsm::TopOptions opts;
    tsm::CliParser cli("tsm_top");
    cli.addValue("--cols", &opts.cols, "heatmap width in columns");
    cli.addValue("--links", &opts.maxLinks, "links shown, busiest first");
    cli.addValue("--chips", &opts.maxChips, "chips shown, busiest first");
    cli.allowPositional();
    if (!cli.parse(argc, argv))
        return 2;
    if (argc < 2) {
        std::fprintf(stderr, "tsm_top: no timeline files given\n%s",
                     cli.usage().c_str());
        return 2;
    }

    int failures = 0;
    for (int i = 1; i < argc; ++i) {
        const char *path = argv[i];
        std::ifstream f(path, std::ios::binary);
        if (!f) {
            std::fprintf(stderr, "tsm_top: cannot open %s\n", path);
            ++failures;
            continue;
        }
        std::ostringstream text;
        text << f.rdbuf();
        std::string error;
        const tsm::Json timeline = tsm::Json::parse(text.str(), &error);
        if (timeline.isNull()) {
            std::fprintf(stderr, "tsm_top: %s: %s\n", path, error.c_str());
            ++failures;
            continue;
        }
        if (!timeline.has("schema") ||
            timeline["schema"].str() != tsm::kTimelineSchema) {
            std::fprintf(stderr, "tsm_top: %s: not a %s document\n", path,
                         tsm::kTimelineSchema);
            ++failures;
            continue;
        }
        if (i > 1)
            std::printf("\n");
        std::printf("%s", tsm::renderTimelineTop(timeline, opts).c_str());
    }
    return failures == 0 ? 0 : 1;
}
