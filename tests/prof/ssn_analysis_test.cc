/**
 * @file
 * SSN schedule analyzer tests: critical-path length equals the
 * schedule makespan, the makespan decomposition is exact, and — the
 * paper's determinism claim made executable — on a contention-free
 * schedule the static prediction matches the simulated completion
 * cycle exactly (gap == 0).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "arch/chip.hh"
#include "net/network.hh"
#include "prof/report.hh"
#include "prof/ssn_analysis.hh"
#include "prof/whatif.hh"
#include "ssn/scheduler.hh"

namespace tsm {
namespace {

TensorTransfer
makeTransfer(FlowId flow, TspId src, TspId dst, std::uint32_t vectors,
             Cycle earliest = 0)
{
    TensorTransfer t;
    t.flow = flow;
    t.src = src;
    t.dst = dst;
    t.vectors = vectors;
    t.earliest = earliest;
    return t;
}

void
expectDecompositionExact(const SsnAnalysis &a)
{
    EXPECT_EQ(a.startCycle + a.flightCyclesTotal + a.forwardCyclesTotal +
                  a.waitCyclesTotal,
              a.makespan);
}

TEST(SsnAnalysis, SingleVectorSingleHop)
{
    const Topology topo = Topology::makeNode();
    SsnScheduler scheduler(topo);
    const auto transfers = std::vector{makeTransfer(1, 0, 1, 1)};
    const auto sched = scheduler.schedule(transfers);
    const SsnAnalysis a = analyzeSchedule(sched, topo, transfers);

    EXPECT_EQ(a.makespan, sched.makespan);
    EXPECT_EQ(a.criticalPathCycles, a.makespan);
    EXPECT_EQ(a.hopsTotal, 1u);
    EXPECT_EQ(a.contendedHops, 0u);
    EXPECT_TRUE(a.contentionFree);
    ASSERT_EQ(a.criticalPath.size(), 1u);
    EXPECT_EQ(a.criticalPath[0].edge, CritEdge::Start);
    EXPECT_EQ(a.criticalPath[0].wait, 0u);
    EXPECT_EQ(a.criticalPath[0].arrive, a.makespan);
    EXPECT_EQ(a.startCycle, 0u);
    EXPECT_EQ(a.flightCyclesTotal, flightCycles(LinkClass::IntraNode));
    EXPECT_EQ(a.forwardCyclesTotal, 0u);
    EXPECT_EQ(a.waitCyclesTotal, 0u);
    expectDecompositionExact(a);
    EXPECT_EQ(a.predictedCompletionCycles, a.makespan + kRxMarginCycles);
    EXPECT_EQ(a.hopSlack.count(), a.hopsTotal);
}

TEST(SsnAnalysis, EarliestInjectionSetsStartCycle)
{
    const Topology topo = Topology::makeNode();
    SsnScheduler scheduler(topo);
    const auto transfers = std::vector{makeTransfer(1, 2, 5, 1, 100)};
    const auto sched = scheduler.schedule(transfers);
    const SsnAnalysis a = analyzeSchedule(sched, topo, transfers);

    EXPECT_TRUE(a.contentionFree);
    EXPECT_EQ(a.startCycle, 100u);
    EXPECT_EQ(a.makespan, 100 + flightCycles(LinkClass::IntraNode));
    expectDecompositionExact(a);
}

TEST(SsnAnalysis, ContendedFanInStaysExact)
{
    // Four flows, 32 vectors each, all into TSP 0 — heavy contention
    // on the destination's links and issue slots.
    const Topology topo = Topology::makeNode();
    SsnScheduler scheduler(topo);
    std::vector<TensorTransfer> transfers;
    for (unsigned f = 0; f < 4; ++f)
        transfers.push_back(makeTransfer(f + 1, TspId(f + 1), 0, 32));
    const auto sched = scheduler.schedule(transfers);
    const SsnAnalysis a = analyzeSchedule(sched, topo, transfers);

    EXPECT_EQ(a.criticalPathCycles, a.makespan);
    EXPECT_FALSE(a.contentionFree);
    EXPECT_GT(a.contendedHops, 0u);
    EXPECT_GE(a.hopsTotal, 128u);
    EXPECT_EQ(a.hopSlack.count(), a.hopsTotal);
    ASSERT_FALSE(a.criticalPath.empty());
    EXPECT_EQ(a.criticalPath.back().arrive, a.makespan);
    expectDecompositionExact(a);

    // The path is chronological, and every waiting hop is explained
    // by a contention edge.
    for (std::size_t i = 0; i < a.criticalPath.size(); ++i) {
        const CritHop &h = a.criticalPath[i];
        if (i > 0) {
            EXPECT_GT(h.depart, a.criticalPath[i - 1].depart);
        }
        if (h.wait > 0) {
            EXPECT_EQ(h.edge, CritEdge::Contention);
        }
    }
}

/**
 * The satellite the issue names: on a contention-free schedule run on
 * drift-free chips, the statically predicted completion cycle equals
 * the simulated one — gap == 0, no measurement required.
 */
TEST(SsnAnalysis, PredictionMatchesSimulationOnContentionFreeRun)
{
    const Topology topo = Topology::makeNode();
    SsnScheduler scheduler(topo);
    const std::vector<TensorTransfer> transfers = {
        makeTransfer(1, 0, 1, 1), makeTransfer(2, 2, 3, 1)};
    const auto sched = scheduler.schedule(transfers);

    ProfileCollector prof;
    prof.setBench("ssn_analysis_test");
    prof.setSeed(1);
    prof.setSchedule(sched, topo, transfers);
    ASSERT_TRUE(prof.analysis().has_value());
    EXPECT_TRUE(prof.analysis()->contentionFree);

    EventQueue eq;
    eq.tracer().addSink(&prof.sink());
    Network net(topo, eq, Rng(1));
    std::vector<std::unique_ptr<TspChip>> chips;
    for (TspId t = 0; t < topo.numTsps(); ++t)
        chips.push_back(std::make_unique<TspChip>(t, net, DriftClock()));
    auto programs = buildPrograms(sched, topo);
    for (TspId t = 0; t < topo.numTsps(); ++t) {
        chips[t]->setStream(0, makeVec(Vec(1.0f)));
        programs.byChip[t].emitHalt();
        chips[t]->load(std::move(programs.byChip[t]));
        chips[t]->start(0);
    }
    eq.run();
    eq.tracer().removeSink(&prof.sink());
    prof.sink().finish();

    ASSERT_GT(prof.sink().recvEvents(), 0u);
    const Cycle simulated = Cycle(std::llround(
        double(prof.sink().lastRecvTick()) / kCorePeriodPs));
    EXPECT_EQ(simulated, prof.analysis()->predictedCompletionCycles);

    const Json report = prof.report();
    EXPECT_TRUE(report["ssn"]["simulated"].boolean());
    EXPECT_EQ(report["ssn"]["gap_cycles"].integer(), 0);
    EXPECT_TRUE(report["ssn"]["contention_free"].boolean());
}

TEST(SsnAnalysis, CriticalPathHopsHaveZeroBindingSlack)
{
    // Every critical-path hop must depart exactly at its binding
    // constraint: a hop labeled start/pipeline departs the cycle it
    // became feasible (wait == 0), and a contention hop's wait is
    // fully explained by the constraint graph — verified by the
    // what-if engine's identity recomputation reproducing every
    // departure cycle with zero residual slack.
    const Topology topo = Topology::makeNode();
    SsnScheduler scheduler(topo);
    std::vector<TensorTransfer> transfers;
    transfers.push_back(makeTransfer(1, 1, 0, 24));
    transfers.push_back(makeTransfer(2, 2, 0, 16));
    transfers.push_back(makeTransfer(3, 3, 0, 8, 50));
    const auto sched = scheduler.schedule(transfers);
    const SsnAnalysis a = analyzeSchedule(sched, topo, transfers);

    ASSERT_FALSE(a.criticalPath.empty());
    EXPECT_GT(a.contendedHops, 0u);
    for (const CritHop &ch : a.criticalPath) {
        if (ch.edge == CritEdge::Contention) {
            EXPECT_GT(ch.wait, 0u);
        } else {
            EXPECT_EQ(ch.wait, 0u)
                << critEdgeName(ch.edge) << " hop on link " << ch.link
                << " departed " << ch.wait
                << " cycles after it became feasible";
        }
        EXPECT_GE(ch.arrive, ch.depart);
    }
    expectDecompositionExact(a);

    // Zero residual slack anywhere: the constraint graph alone
    // explains every departure cycle, so no critical-path hop (and
    // no other hop) idles past its binding constraint.
    const WhatIfEngine engine(sched, topo, transfers);
    std::string why;
    EXPECT_TRUE(engine.identityExact(&why)) << why;
}

} // namespace
} // namespace tsm
