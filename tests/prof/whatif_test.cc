/**
 * @file
 * What-if engine tests: the identity-exactness theorem (recomputing
 * the schedule's constraint graph with unchanged timing reproduces
 * every hop cycle), zero-magnitude perturbations projecting zero
 * makespan delta on every checked-in scenario, flow-removal
 * semantics, projection-vs-resimulation agreement (gap == 0), and
 * byte-determinism plus structural invariants of the tsm-whatif-v1
 * document.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "prof/whatif.hh"
#include "runtime/counterfactual.hh"
#include "scenario/scenario.hh"
#include "ssn/scheduler.hh"

namespace tsm {
namespace {

TensorTransfer
makeTransfer(FlowId flow, TspId src, TspId dst, std::uint32_t vectors,
             Cycle earliest = 0)
{
    TensorTransfer t;
    t.flow = flow;
    t.src = src;
    t.dst = dst;
    t.vectors = vectors;
    t.earliest = earliest;
    return t;
}

/** A contended all-to-one pattern plus a staggered background flow. */
std::vector<TensorTransfer>
contendedTransfers()
{
    std::vector<TensorTransfer> transfers;
    transfers.push_back(makeTransfer(1, 1, 0, 24));
    transfers.push_back(makeTransfer(2, 2, 0, 16, 100));
    transfers.push_back(makeTransfer(3, 3, 0, 8, 50));
    transfers.push_back(makeTransfer(4, 1, 2, 12, 400));
    return transfers;
}

TEST(WhatIfEngine, IdentityExactOnContendedSchedule)
{
    const Topology topo = Topology::makeNode();
    SsnScheduler scheduler(topo);
    const auto transfers = contendedTransfers();
    const auto sched = scheduler.schedule(transfers);
    const WhatIfEngine engine(sched, topo, transfers);

    std::string why;
    EXPECT_TRUE(engine.identityExact(&why)) << why;
}

TEST(WhatIfEngine, IdentityExactWithNonMinimalRouting)
{
    // Multi-hop paths exercise the pipeline-forward edge of the
    // constraint graph (hop h waits on hop h-1's arrival).
    const Topology topo = Topology::makeNode();
    SsnConfig config;
    config.maxExtraHops = 1;
    config.maxPaths = 8;
    config.loadBalance = true;
    SsnScheduler scheduler(topo, config);
    const auto transfers =
        std::vector{makeTransfer(1, 0, 7, 64), makeTransfer(2, 7, 0, 64),
                    makeTransfer(3, 3, 4, 48)};
    const auto sched = scheduler.schedule(transfers);
    const WhatIfEngine engine(sched, topo, transfers);

    std::string why;
    EXPECT_TRUE(engine.identityExact(&why)) << why;
}

TEST(WhatIfEngine, ZeroMagnitudePerturbationProjectsZeroDelta)
{
    const Topology topo = Topology::makeNode();
    SsnScheduler scheduler(topo);
    const auto transfers = contendedTransfers();
    const auto sched = scheduler.schedule(transfers);
    const WhatIfEngine engine(sched, topo, transfers);

    for (const Perturbation &p : engine.enumerateLevers(1.0)) {
        if (p.kind == LeverKind::FlowRemoval)
            continue; // removal has no magnitude to zero out
        const WhatIfProjection proj = engine.project(p);
        EXPECT_EQ(proj.projectedMakespan, sched.makespan) << p.label();
        EXPECT_EQ(proj.deltaCycles, 0) << p.label();
        EXPECT_EQ(proj.affectedHops, 0u) << p.label();
        EXPECT_TRUE(proj.affectedFlows.empty()) << p.label();
    }
}

TEST(WhatIfEngine, ZeroMagnitudeIsNoOpOnEveryCheckedInScenario)
{
    // The identity theorem, pinned against the real figure scenarios:
    // the engine must explain every checked-in schedule exactly, and
    // a factor-1 lever of any kind must not move the makespan.
    for (const char *name :
         {"/contention_probe.json", "/fig08_ssn_vs_hw_contention.json",
          "/fig10_nonminimal_routing.json",
          "/fig14_distributed_matmul.json", "/fig16_allreduce.json",
          "/fig17_bert_latency.json", "/fig19_cholesky.json"}) {
        const std::string path = std::string(TSM_SCENARIO_DIR) + name;
        Scenario scenario;
        std::string error;
        ASSERT_TRUE(loadScenarioFile(path, scenario, &error))
            << path << ": " << error;
        const Topology topo = scenario.topology.build();
        const LoweredScenario lowered = lowerScenario(scenario, topo);
        SsnScheduler scheduler(topo, scenario.ssn);
        const auto sched = scheduler.schedule(lowered.transfers);
        const WhatIfEngine engine(sched, topo, lowered.transfers);

        std::string why;
        EXPECT_TRUE(engine.identityExact(&why)) << name << ": " << why;
        for (const Perturbation &p : engine.enumerateLevers(1.0)) {
            if (p.kind == LeverKind::FlowRemoval)
                continue;
            const WhatIfProjection proj = engine.project(p);
            EXPECT_EQ(proj.deltaCycles, 0) << name << ": " << p.label();
            EXPECT_EQ(proj.affectedHops, 0u)
                << name << ": " << p.label();
        }
    }
}

TEST(WhatIfEngine, SpeedupLeversNeverProjectSlowdown)
{
    const Topology topo = Topology::makeNode();
    SsnScheduler scheduler(topo);
    const auto transfers = contendedTransfers();
    const auto sched = scheduler.schedule(transfers);
    const WhatIfEngine engine(sched, topo, transfers);

    for (const WhatIfProjection &proj : rankedLevers(engine, 2.0)) {
        if (proj.lever.kind == LeverKind::HacDrift)
            continue;
        EXPECT_GE(proj.deltaCycles, 0) << proj.lever.label();
        EXPECT_LE(proj.projectedMakespan, sched.makespan)
            << proj.lever.label();
    }
}

TEST(WhatIfEngine, FlowRemovalSemantics)
{
    const Topology topo = Topology::makeNode();
    SsnScheduler scheduler(topo);
    const auto transfers = contendedTransfers();
    const auto sched = scheduler.schedule(transfers);
    const WhatIfEngine engine(sched, topo, transfers);

    Perturbation p;
    p.kind = LeverKind::FlowRemoval;
    p.target = 1;
    const WhatIfProjection proj = engine.project(p);
    EXPECT_EQ(proj.removedVectors, 24u);
    ASSERT_FALSE(proj.affectedFlows.empty());
    EXPECT_EQ(proj.affectedFlows.front(), FlowId(1));

    const WhatIfCounterfactual cf = engine.rebuild(p);
    EXPECT_EQ(cf.schedule.makespan, proj.projectedMakespan);
    EXPECT_EQ(cf.transfers.size(), transfers.size() - 1);
    for (const ScheduledVector &sv : cf.schedule.vectors)
        EXPECT_NE(sv.flow, FlowId(1));
    EXPECT_EQ(cf.schedule.flows.count(FlowId(1)), 0u);
}

TEST(WhatIfEngine, ProjectionMatchesResimulation)
{
    // The tentpole claim: a counterfactual's projected completion is
    // what a simulation of the perturbed machine actually reaches —
    // gap == 0, for the baseline and for every standard lever.
    const Topology topo = Topology::makeNode();
    SsnScheduler scheduler(topo);
    const auto transfers = contendedTransfers();
    const auto sched = scheduler.schedule(transfers);
    const WhatIfEngine engine(sched, topo, transfers);

    Perturbation identity;
    identity.kind = LeverKind::HacDrift;
    CounterfactualRun baseline;
    std::string error;
    ASSERT_TRUE(runCounterfactual(topo, engine.rebuild(identity), 1,
                                  &baseline, &error))
        << error;
    EXPECT_EQ(baseline.gapCycles, 0);

    for (const WhatIfProjection &proj : rankedLevers(engine, 2.0)) {
        if (proj.lever.kind == LeverKind::HacDrift)
            continue;
        const WhatIfCounterfactual cf = engine.rebuild(proj.lever);
        EXPECT_EQ(cf.schedule.makespan, proj.projectedMakespan)
            << proj.lever.label();
        CounterfactualRun run;
        ASSERT_TRUE(runCounterfactual(topo, cf, 1, &run, &error))
            << proj.lever.label() << ": " << error;
        EXPECT_EQ(run.gapCycles, 0) << proj.lever.label();
    }
}

TEST(WhatIfCollector, DocumentIsDeterministicAndSound)
{
    const Topology topo = Topology::makeNode();
    SsnScheduler scheduler(topo);
    const auto transfers = contendedTransfers();
    const auto sched = scheduler.schedule(transfers);

    auto build = [&] {
        WhatIfCollector collector;
        collector.setBench("whatif_test");
        collector.setSeed(7);
        collector.setSchedule(sched, topo, transfers);
        return collector.report();
    };
    const Json a = build();
    const Json b = build();
    EXPECT_EQ(a.dump(2), b.dump(2));

    EXPECT_EQ(a["schema"].str(), kWhatIfSchema);
    EXPECT_EQ(a["bench"].str(), "whatif_test");
    EXPECT_EQ(a["base"]["makespan_cycles"].number(),
              double(sched.makespan));
    std::string why;
    EXPECT_TRUE(checkWhatIfInvariants(a, &why)) << why;

    const std::string summary = renderWhatIfSummary(a);
    EXPECT_NE(summary.find("what-if"), std::string::npos);
    EXPECT_NE(summary.find("levers"), std::string::npos);
}

TEST(WhatIfCollector, InvariantCheckerCatchesCorruption)
{
    const Topology topo = Topology::makeNode();
    SsnScheduler scheduler(topo);
    const auto transfers = contendedTransfers();
    const auto sched = scheduler.schedule(transfers);

    WhatIfCollector collector;
    collector.setSchedule(sched, topo, transfers);
    Json doc = collector.report();
    ASSERT_TRUE(checkWhatIfInvariants(doc));

    // Break one lever's delta/projected consistency.
    ASSERT_GT(doc["levers"].size(), 0u);
    Json levers = Json::array();
    for (std::size_t i = 0; i < doc["levers"].size(); ++i) {
        Json lever = doc["levers"].at(i);
        if (i == 0)
            lever.set("delta_cycles",
                      Json(lever["delta_cycles"].number() + 1.0));
        levers.push(std::move(lever));
    }
    doc.set("levers", std::move(levers));
    std::string why;
    EXPECT_FALSE(checkWhatIfInvariants(doc, &why));
    EXPECT_NE(why.find("delta"), std::string::npos) << why;
}

} // namespace
} // namespace tsm
