/**
 * Concurrency-profiler invariants (prof/lanes.hh):
 *
 *  - reconciliation: per-kind lane totals and per-phase counts each
 *    sum exactly to the live event total, on synthetic streams and on
 *    real scenario runs alike;
 *  - degenerate profiles are exact, not approximate: a zero-event run
 *    projects bound 1.0, a single-lane run projects exactly 1.0 for
 *    every pool size, and an all-cross-lane ping-pong collapses the
 *    bound onto the critical path;
 *  - genuinely parallel phases project the arithmetic the header
 *    promises: bound(W) = total / max(sum of per-phase steps,
 *    critical path);
 *  - determinism: identical streams emit byte-identical
 *    tsm-parallel-v1 documents, and so do same-seed scenario runs;
 *  - the checker catches tampered totals and rejects foreign
 *    documents instead of asserting on them.
 */

#include <gtest/gtest.h>

#include <string>

#include "prof/lanes.hh"
#include "scenario/runner.hh"
#include "scenario/scenario.hh"
#include "trace/span.hh"

namespace tsm {
namespace {

/** One live chip-lane event (Chip cat never hits the replay filter). */
TraceEvent
chipEvent(Tick tick, std::uint32_t chip, SpanId span = kSpanNone)
{
    TraceEvent ev;
    ev.tick = tick;
    ev.dur = 100;
    ev.cat = TraceCat::Chip;
    ev.actor = chip;
    ev.name = "issue";
    ev.span = span;
    return ev;
}

/** A small two-flow scenario for the end-to-end checks. */
Scenario
smallScenario()
{
    Scenario sc;
    sc.name = "lanes_test_pair";
    sc.seed = 7;
    for (FlowId flow = 1; flow <= 2; ++flow) {
        ScenarioFlow f;
        f.id = flow;
        f.src = TspId(flow);
        f.dst = 0;
        f.tensor.vectors = 16;
        sc.flows.push_back(f);
    }
    return sc;
}

TEST(Lanes, ConservativeLookaheadTracksFastestLink)
{
    // A full-mesh node is all intra-node links, so the minimum equals
    // the intra-node default exactly.
    const Topology node = Topology::makeNode();
    EXPECT_EQ(conservativeLookaheadPs(node), kDefaultLookaheadPs);

    // A two-level system adds slower inter-rack links; the minimum
    // must stay the fastest class, not grow with the topology.
    const Topology system = Topology::makeTwoLevel(2);
    EXPECT_EQ(conservativeLookaheadPs(system), kDefaultLookaheadPs);
}

TEST(Lanes, ZeroEventRunProjectsExactlyOne)
{
    LaneCollector collector;
    collector.setBench("lanes_test_empty");
    const Json doc = collector.report();

    EXPECT_EQ(doc["schema"].str(), kLanesSchema);
    EXPECT_EQ(doc["totals"]["events"].integer(), 0);
    EXPECT_EQ(doc["lanes_total"].integer(), 0);
    EXPECT_EQ(doc["phases"]["count"].integer(), 0);
    EXPECT_EQ(doc["critical_path"]["events"].integer(), 0);
    for (const Json &s : doc["speedup"].items())
        EXPECT_EQ(s["bound"].number(), 1.0);
    EXPECT_EQ(doc["speedup_inf"].number(), 1.0);

    std::string why;
    EXPECT_TRUE(checkLanesInvariants(doc, &why)) << why;
}

TEST(Lanes, SingleLaneBoundsAreExactlyOne)
{
    // One chip, events spread over several phases: every phase's
    // busiest lane is the whole phase, so no pool size helps and the
    // bound must be exactly 1.0, not approximately.
    LaneCollector collector;
    collector.setBench("lanes_test_serial");
    collector.sink().setLookahead(1000);
    for (Tick t = 0; t < 10; ++t)
        collector.sink().event(chipEvent(t * 700, 0));
    const Json doc = collector.report();

    EXPECT_EQ(doc["totals"]["events"].integer(), 10);
    EXPECT_EQ(doc["lanes_total"].integer(), 1);
    EXPECT_EQ(doc["critical_path"]["events"].integer(), 10);
    for (const Json &s : doc["speedup"].items())
        EXPECT_EQ(s["bound"].number(), 1.0);
    EXPECT_EQ(doc["speedup_inf"].number(), 1.0);

    std::string why;
    EXPECT_TRUE(checkLanesInvariants(doc, &why)) << why;
}

TEST(Lanes, AllCrossLanePingPongCollapsesToCriticalPath)
{
    // Two chips handing one span back and forth: every event but the
    // first depends on the other lane, the critical path spans the
    // whole stream, and the projected bound collapses to 1.0 even
    // though two lanes exist.
    LaneCollector collector;
    collector.setBench("lanes_test_pingpong");
    collector.sink().setLookahead(1000 * 1000);
    const SpanId span = transferSpan(1, 0);
    constexpr std::uint64_t kEvents = 12;
    for (std::uint64_t i = 0; i < kEvents; ++i)
        collector.sink().event(
            chipEvent(Tick(i) * 10, std::uint32_t(i % 2), span));
    const Json doc = collector.report();

    EXPECT_EQ(doc["totals"]["events"].integer(),
              std::int64_t(kEvents));
    EXPECT_EQ(doc["lanes_total"].integer(), 2);
    EXPECT_EQ(doc["totals"]["cross_lane_events"].integer(),
              std::int64_t(kEvents - 1));
    EXPECT_EQ(doc["totals"]["same_phase_cross_lane"].integer(),
              std::int64_t(kEvents - 1));
    EXPECT_EQ(doc["critical_path"]["events"].integer(),
              std::int64_t(kEvents));
    for (const Json &s : doc["speedup"].items())
        EXPECT_EQ(s["bound"].number(), 1.0);
    EXPECT_EQ(doc["speedup_inf"].number(), 1.0);

    std::string why;
    EXPECT_TRUE(checkLanesInvariants(doc, &why)) << why;
}

TEST(Lanes, IndependentLanesProjectThePhaseBarrierArithmetic)
{
    // Four chips, eight independent events each, one phase: total 32,
    // busiest lane 8, critical path 8 (the per-lane chains). bound(2)
    // = 32/16 = 2, bound(4) = 32/8 = 4, and 8/16 workers stay capped
    // at the busiest lane / critical path: 4.
    LaneCollector collector;
    collector.setBench("lanes_test_parallel");
    collector.sink().setLookahead(1000 * 1000);
    for (std::uint32_t chip = 0; chip < 4; ++chip)
        for (Tick t = 0; t < 8; ++t)
            collector.sink().event(chipEvent(t * 10, chip));
    const Json doc = collector.report();

    EXPECT_EQ(doc["totals"]["events"].integer(), 32);
    EXPECT_EQ(doc["lanes_total"].integer(), 4);
    EXPECT_EQ(doc["phases"]["count"].integer(), 1);
    EXPECT_EQ(doc["critical_path"]["events"].integer(), 8);

    const Json &speedup = doc["speedup"];
    ASSERT_EQ(speedup.size(), 4u);
    EXPECT_EQ(speedup.at(0)["workers"].integer(), 2);
    EXPECT_EQ(speedup.at(0)["bound"].number(), 2.0);
    EXPECT_EQ(speedup.at(1)["bound"].number(), 4.0);
    EXPECT_EQ(speedup.at(2)["bound"].number(), 4.0);
    EXPECT_EQ(speedup.at(3)["bound"].number(), 4.0);
    EXPECT_EQ(doc["speedup_inf"].number(), 4.0);

    std::string why;
    EXPECT_TRUE(checkLanesInvariants(doc, &why)) << why;
}

TEST(Lanes, ScheduleReplayEventsStayOutOfEveryLane)
{
    LaneCollector collector;
    for (const char *name : {"hop", "flow", "makespan"}) {
        TraceEvent ev;
        ev.cat = TraceCat::Ssn;
        ev.name = name;
        collector.sink().event(ev);
    }
    // A live Ssn event (a chip's send) still lands in its chip lane.
    TraceEvent send;
    send.cat = TraceCat::Ssn;
    send.name = "send";
    send.actor = 3;
    collector.sink().event(send);

    const Json doc = collector.report();
    EXPECT_EQ(doc["totals"]["schedule_events"].integer(), 3);
    EXPECT_EQ(doc["totals"]["events"].integer(), 1);
    EXPECT_EQ(doc["lanes_total"].integer(), 1);
    EXPECT_EQ(doc["lanes"].at(0)["kind"].str(), "chip");

    std::string why;
    EXPECT_TRUE(checkLanesInvariants(doc, &why)) << why;
}

TEST(Lanes, ReportIsByteDeterministic)
{
    auto build = [] {
        LaneCollector c;
        c.setBench("lanes_test_det");
        c.setSeed(11);
        c.sink().setLookahead(5000);
        const SpanId span = transferSpan(2, 5);
        for (Tick t = 0; t < 20; ++t)
            c.sink().event(
                chipEvent(t * 900, std::uint32_t(t % 3), span));
        return c.report().dump(2);
    };
    const std::string a = build();
    const std::string b = build();
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);

    const ScenarioExecution x = executeScenario(smallScenario());
    const ScenarioExecution y = executeScenario(smallScenario());
    ASSERT_FALSE(x.lanesText.empty());
    EXPECT_EQ(x.lanesText, y.lanesText);
}

TEST(Lanes, ScenarioRunReconcilesAndRenders)
{
    const ScenarioExecution exec = executeScenario(smallScenario());
    std::string why;
    EXPECT_TRUE(exec.lanesReconcile(&why)) << why;

    // A scheduled run exercises chip work and data-flow link legs
    // (the sync lane needs HAC traffic, which plain scheduled runs
    // skip), plus the excluded schedule replay.
    EXPECT_GT(exec.lanes["totals"]["events"].integer(), 0);
    EXPECT_GT(exec.lanes["totals"]["schedule_events"].integer(), 0);
    const Json &kinds = exec.lanes["lane_kinds"];
    ASSERT_EQ(kinds.size(), 3u);
    EXPECT_EQ(kinds.at(0)["kind"].str(), "chip");
    EXPECT_GT(kinds.at(0)["lanes"].integer(), 0);
    EXPECT_EQ(kinds.at(1)["kind"].str(), "link");
    EXPECT_GT(kinds.at(1)["lanes"].integer(), 0);

    const std::string summary = renderLanesSummary(exec.lanes);
    EXPECT_NE(summary.find("lanes_test_pair"), std::string::npos);
    EXPECT_NE(summary.find("speedup bounds"), std::string::npos);
    EXPECT_NE(summary.find("phase ribbon"), std::string::npos);
}

TEST(Lanes, CheckerCatchesTamperedTotals)
{
    const ScenarioExecution exec = executeScenario(smallScenario());
    ASSERT_TRUE(checkLanesInvariants(exec.lanes));

    // Inflate the live total: neither the lane kinds nor the phases
    // reconcile with it any more.
    Json tampered = exec.lanes;
    Json totals = tampered["totals"];
    totals.set("events",
               Json(std::uint64_t(totals["events"].integer()) + 1));
    tampered.set("totals", totals);
    std::string why;
    EXPECT_FALSE(checkLanesInvariants(tampered, &why));
    EXPECT_FALSE(why.empty());
}

TEST(Lanes, CheckerRejectsForeignDocuments)
{
    std::string why;
    EXPECT_FALSE(checkLanesInvariants(Json(), &why));
    EXPECT_FALSE(why.empty());

    Json wrong = Json::object();
    wrong.set("schema", Json("tsm-blame-v1"));
    EXPECT_FALSE(checkLanesInvariants(wrong));

    // Right schema but missing sections must fail, not assert.
    Json hollow = Json::object();
    hollow.set("schema", Json(kLanesSchema));
    EXPECT_FALSE(checkLanesInvariants(hollow));
}

} // namespace
} // namespace tsm
