/**
 * Contention-attribution invariants (prof/blame.hh):
 *
 *  - exactness: every transfer's blame shares (flows + local + margin)
 *    sum *exactly* to the profiler's waitPs for that transfer, and
 *    every link's blamed wait reconciles with the profiler's
 *    independently kept queue-delay histogram sum;
 *  - determinism: two executions of the same scenario emit
 *    byte-identical tsm-blame-v1 documents;
 *  - non-perturbation: attaching the BlameSink never changes the
 *    journal — blame is observation, not simulation;
 *  - the document checker catches tampered shares and rejects foreign
 *    documents instead of asserting on them.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "prof/blame.hh"
#include "prof/profiler.hh"
#include "runtime/traced_scenario.hh"
#include "scenario/runner.hh"
#include "scenario/scenario.hh"
#include "trace/journal.hh"
#include "trace/session.hh"

namespace tsm {
namespace {

TensorTransfer
makeTransfer(FlowId flow, TspId src, TspId dst, std::uint32_t vectors)
{
    TensorTransfer t;
    t.flow = flow;
    t.src = src;
    t.dst = dst;
    t.vectors = vectors;
    return t;
}

/** A four-sender incast: guaranteed cross-flow contention at TSP 0. */
std::vector<TensorTransfer>
incastTransfers()
{
    return {makeTransfer(1, 1, 0, 24), makeTransfer(2, 2, 0, 24),
            makeTransfer(3, 3, 0, 24), makeTransfer(4, 4, 0, 24)};
}

/** The same incast as a scenario document, for executeScenario. */
Scenario
incastScenario()
{
    Scenario sc;
    sc.name = "blame_test_incast";
    sc.seed = 3;
    for (const TensorTransfer &t : incastTransfers()) {
        ScenarioFlow f;
        f.id = t.flow;
        f.src = t.src;
        f.dst = t.dst;
        f.tensor.vectors = t.vectors;
        sc.flows.push_back(f);
    }
    return sc;
}

TEST(Blame, SharesSumExactlyToProfilerWaits)
{
    const Topology topo = Topology::makeNode();
    ProfilerSink prof;
    BlameCollector blame;
    TraceSession inactive;
    runScheduledScenario(inactive, topo, incastTransfers(), "blame_test",
                         3, 0.0, {}, {&prof, &blame.sink()});

    const BlameSink &sink = blame.sink();
    ASSERT_FALSE(sink.transfers().empty());
    ASSERT_FALSE(sink.links().empty());

    // Per transfer: the decomposition tiles the profiler's wait.
    for (const auto &[span, tb] : sink.transfers()) {
        ASSERT_TRUE(tb.closed);
        ASSERT_TRUE(prof.transfers().count(span));
        EXPECT_EQ(tb.waitPs, prof.transfers().at(span).waitPs);
        EXPECT_EQ(tb.shares.totalPs(), tb.waitPs)
            << "flow " << tb.flow << " seq " << tb.seq;
    }

    // Per link: blamed wait == the profiler's queue-delay sum, and the
    // shares tile it.
    for (const auto &[link, lb] : sink.links()) {
        const Log2Histogram *h = prof.queueDelay(link);
        ASSERT_TRUE(h != nullptr) << "link " << link;
        EXPECT_EQ(lb.waitPs, Tick(h->sum())) << "link " << link;
        EXPECT_EQ(lb.shares.totalPs(), lb.waitPs) << "link " << link;
    }

    // The run totals tile too, and contention really happened (an
    // all-margin run would mean the attribution path is dead).
    Tick linkWait = 0, flowBlame = 0;
    for (const auto &[link, lb] : sink.links()) {
        linkWait += lb.waitPs;
        for (const auto &[flow, ps] : lb.shares.flowPs)
            flowBlame += ps;
    }
    EXPECT_EQ(linkWait, sink.totalWaitPs());
    EXPECT_GT(sink.totalWaitPs(), 0u);
    EXPECT_GT(flowBlame, 0u);
}

TEST(Blame, ReportIsByteDeterministic)
{
    const ScenarioExecution a = executeScenario(incastScenario());
    const ScenarioExecution b = executeScenario(incastScenario());
    ASSERT_FALSE(a.blameText.empty());
    EXPECT_EQ(a.blameText, b.blameText);
    EXPECT_EQ(a.journal, b.journal);

    std::string why;
    EXPECT_TRUE(a.blameExact(&why)) << why;
}

TEST(Blame, SinkDoesNotPerturbJournal)
{
    const Topology topo = Topology::makeNode();
    auto journalOf = [&](bool withBlame) {
        std::ostringstream text;
        JournalSink journal(text);
        BlameCollector blame;
        std::vector<TraceSink *> sinks{&journal};
        if (withBlame)
            sinks.push_back(&blame.sink());
        TraceSession inactive;
        runScheduledScenario(inactive, topo, incastTransfers(),
                             "blame_test", 3, 0.0, {}, sinks);
        return text.str();
    };
    const std::string without = journalOf(false);
    const std::string with = journalOf(true);
    ASSERT_FALSE(without.empty());
    EXPECT_EQ(without, with);
}

TEST(Blame, CheckerCatchesTamperedShares)
{
    ScenarioExecution exec = executeScenario(incastScenario());
    ASSERT_TRUE(checkBlameExactness(exec.blame));

    // Inflate the run total: the links no longer reconcile with it.
    Json tampered = exec.blame;
    Json totals = tampered["totals"];
    totals.set("wait_ps",
               Json(std::uint64_t(totals["wait_ps"].integer()) + 1));
    tampered.set("totals", totals);
    std::string why;
    EXPECT_FALSE(checkBlameExactness(tampered, &why));
    EXPECT_FALSE(why.empty());
}

TEST(Blame, CheckerRejectsForeignDocuments)
{
    std::string why;
    EXPECT_FALSE(checkBlameExactness(Json(), &why));
    EXPECT_FALSE(why.empty());

    Json wrong = Json::object();
    wrong.set("schema", Json("tsm-timeline-v1"));
    EXPECT_FALSE(checkBlameExactness(wrong));

    // Right schema but missing sections must fail, not assert.
    Json hollow = Json::object();
    hollow.set("schema", Json(kBlameSchema));
    EXPECT_FALSE(checkBlameExactness(hollow));
}

TEST(Blame, SummaryRendersIdentityAndSections)
{
    BlameCollector collector;
    collector.setBench("blame_test_incast");
    collector.setSeed(3);
    const Topology topo = Topology::makeNode();
    TraceSession inactive;
    runScheduledScenario(inactive, topo, incastTransfers(),
                         "blame_test_incast", 3, 0.0, {},
                         {&collector.sink()});
    const Json report = collector.report();
    EXPECT_EQ(report["schema"].str(), kBlameSchema);
    EXPECT_EQ(report["source"].str(), "ssn");

    const std::string summary = renderBlameSummary(report);
    EXPECT_NE(summary.find("blame_test_incast"), std::string::npos);
    EXPECT_NE(summary.find("wait decomposed"), std::string::npos);
    EXPECT_NE(summary.find("top blamed flow pairs"), std::string::npos);
}

} // namespace
} // namespace tsm
