/**
 * @file
 * Attribution profiler tests: the busy+stall+idle == span invariant on
 * a real simulated run, the report's JSON schema, same-seed byte
 * stability, and the synthetic-event accounting paths.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "arch/chip.hh"
#include "net/network.hh"
#include "prof/report.hh"
#include "ssn/schedule_trace.hh"
#include "ssn/scheduler.hh"

namespace tsm {
namespace {

/**
 * The micro_harness traced scenario, in-process: four flows fanning
 * into TSP 0, SSN-scheduled and executed on chips with the profiler
 * attached.
 */
void
runScenario(ProfileCollector &prof)
{
    const Topology topo = Topology::makeNode();
    SsnScheduler scheduler(topo);
    std::vector<TensorTransfer> transfers;
    for (unsigned f = 0; f < 4; ++f) {
        TensorTransfer t;
        t.flow = f + 1;
        t.src = TspId(f + 1);
        t.dst = 0;
        t.vectors = 8;
        transfers.push_back(t);
    }
    const auto schedule = scheduler.schedule(transfers);
    prof.setBench("profiler_test");
    prof.setSeed(1);
    prof.setSchedule(schedule, topo, transfers);

    EventQueue eq;
    eq.tracer().addSink(&prof.sink());
    traceSchedule(eq.tracer(), schedule);
    Network net(topo, eq, Rng(1));
    std::vector<std::unique_ptr<TspChip>> chips;
    for (TspId t = 0; t < topo.numTsps(); ++t)
        chips.push_back(std::make_unique<TspChip>(t, net, DriftClock()));
    auto programs = buildPrograms(schedule, topo);
    for (TspId t = 0; t < topo.numTsps(); ++t) {
        chips[t]->setStream(0, makeVec(Vec(1.0f)));
        programs.byChip[t].emitHalt();
        chips[t]->load(std::move(programs.byChip[t]));
        chips[t]->start(0);
    }
    eq.run();
    eq.tracer().removeSink(&prof.sink());
    prof.sink().finish();
}

TEST(Profiler, AttributionSumsToSpan)
{
    ProfileCollector prof;
    runScenario(prof);
    const ProfilerSink &sink = prof.sink();

    ASSERT_FALSE(sink.chips().empty());
    for (const auto &[id, acct] : sink.chips()) {
        EXPECT_EQ(acct.busyTotal() + acct.stall + acct.idle,
                  acct.totalCycles())
            << "chip " << id;
        EXPECT_TRUE(acct.halted) << "chip " << id;
    }
    // The four sources and the sink chip all executed instructions.
    for (TspId t = 0; t < 5; ++t) {
        ASSERT_TRUE(sink.chips().count(t));
        EXPECT_GT(sink.chips().at(t).instrs, 0u) << "chip " << t;
    }
    EXPECT_GT(sink.events(), 0u);
    EXPECT_GT(sink.spanPs(), 0u);
    // 4 flows x 8 vectors, each at least one hop.
    EXPECT_GE(sink.totalFlits(), 32u);
    EXPECT_GE(sink.sendEvents(), 32u);
    EXPECT_GE(sink.recvEvents(), 32u);
    EXPECT_GT(sink.lastRecvTick(), 0u);
    // Consuming Recvs pair with arrivals into the delay histogram.
    EXPECT_GE(sink.queueDelayAll().count(), 32u);
    EXPECT_LE(sink.queueDelayAll().count(), sink.recvEvents());
}

TEST(Profiler, ReportSchemaGolden)
{
    ProfileCollector prof;
    runScenario(prof);
    const Json report = prof.report();

    EXPECT_EQ(report["schema"].str(), kProfileSchema);
    EXPECT_EQ(report["bench"].str(), "profiler_test");
    EXPECT_EQ(report["seed"].integer(), 1);

    const std::vector<std::string> top = {
        "schema", "bench",          "seed", "cycles", "sim",
        "throughput", "chips",      "links", "queue_delay_ps",
        "transfers", "transfers_summary", "hac", "ssn"};
    ASSERT_EQ(report.members().size(), top.size());
    for (std::size_t i = 0; i < top.size(); ++i)
        EXPECT_EQ(report.members()[i].first, top[i]) << "key " << i;

    const std::vector<std::string> ssnKeys = {
        "makespan_cycles",  "critical_path_cycles",
        "predicted_completion_cycles", "simulated",
        "simulated_completion_cycles", "gap_cycles",
        "hops_total",       "contended_hops",
        "contention_free",  "hop_slack_cycles",
        "decomposition",    "critical_path",
        "critical_path_hops", "critical_path_truncated"};
    const Json &ssn = report["ssn"];
    ASSERT_EQ(ssn.members().size(), ssnKeys.size());
    for (std::size_t i = 0; i < ssnKeys.size(); ++i)
        EXPECT_EQ(ssn.members()[i].first, ssnKeys[i]) << "ssn key " << i;
    EXPECT_TRUE(ssn["simulated"].boolean());

    // Per-chip entries carry the attribution breakdown.
    ASSERT_GT(report["chips"].size(), 0u);
    const Json &c0 = report["chips"].at(0);
    for (const char *key : {"id", "total_cycles", "instrs", "halted",
                            "busy", "stall", "idle", "util", "busy_frac",
                            "stall_frac", "idle_frac"})
        EXPECT_TRUE(c0.has(key)) << key;

    // Link entries attribute FEC drops; transfer entries carry the
    // exact waterfall decomposition.
    ASSERT_GT(report["links"].size(), 0u);
    EXPECT_TRUE(report["links"].at(0).has("dropped_flits"));
    ASSERT_GT(report["transfers"].size(), 0u);
    for (const Json &t : report["transfers"].items()) {
        for (const char *key :
             {"flow", "seq", "src", "dst", "legs", "open_ps", "close_ps",
              "total_ps", "serialize_ps", "flight_ps", "forward_ps",
              "wait_ps", "mbes", "closed", "exact"})
            EXPECT_TRUE(t.has(key)) << key;
        EXPECT_TRUE(t["closed"].boolean());
        EXPECT_TRUE(t["exact"].boolean());
        EXPECT_EQ(t["serialize_ps"].integer() + t["flight_ps"].integer() +
                      t["forward_ps"].integer() + t["wait_ps"].integer(),
                  t["total_ps"].integer());
    }
    EXPECT_EQ(report["transfers_summary"]["closed"].integer(),
              report["transfers_summary"]["exact"].integer());

    // The document round-trips through the parser.
    std::string error;
    const Json back = Json::parse(report.dump(2), &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(back.dump(2), report.dump(2));

    // The human renderer accepts it.
    const std::string summary = renderProfileSummary(report);
    EXPECT_NE(summary.find("tsm profile: profiler_test"),
              std::string::npos);
    EXPECT_NE(summary.find("critical path"), std::string::npos);
}

TEST(Profiler, SameSeedReportsAreByteIdentical)
{
    ProfileCollector a, b;
    runScenario(a);
    runScenario(b);
    EXPECT_EQ(a.report().dump(2), b.report().dump(2));
}

TEST(Profiler, HacTelemetryFromSyncEvents)
{
    ProfilerSink sink;
    sink.event({100, 0, TraceCat::Sync, 0, "hac_tx", 0, 0});
    sink.event({200, 0, TraceCat::Sync, 2, "hac_adj", -5, 3});
    sink.event({300, 0, TraceCat::Sync, 3, "hac_adj", 2, -1});
    sink.finish();

    const HacAccount &hac = sink.hac();
    EXPECT_EQ(hac.updatesSent, 1u);
    EXPECT_EQ(hac.adjustments, 2u);
    EXPECT_EQ(hac.sumAbsDelta, 7u);
    EXPECT_EQ(hac.maxAbsDelta, 5u);
    EXPECT_EQ(hac.sumAbsStep, 4u);
    ASSERT_EQ(hac.timeline.size(), 2u);
    EXPECT_EQ(hac.timeline[0].tick, 200u);
    EXPECT_EQ(hac.timeline[0].delta, -5);
    EXPECT_EQ(hac.timeline[0].step, 3);
}

TEST(Profiler, QueueDelayPairsArrivalWithRecv)
{
    ProfilerSink sink;
    // Flit of flow 3 seq 0 lands on link 7 at t=1000; the scheduled
    // Recv consumes it at t=3500.
    sink.event({1000, 0, TraceCat::Net, 7, "rx", 3, 0});
    sink.event({3500, 0, TraceCat::Ssn, 0, "recv", 3, 0});
    sink.finish();

    EXPECT_EQ(sink.queueDelayAll().count(), 1u);
    EXPECT_EQ(sink.queueDelayAll().min(), 2500u);
    const Log2Histogram *h = sink.queueDelay(7);
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 1u);
    EXPECT_EQ(sink.queueDelay(8), nullptr);
    EXPECT_EQ(sink.recvEvents(), 1u);
    EXPECT_EQ(sink.lastRecvTick(), 3500u);
}

} // namespace
} // namespace tsm
