/**
 * Span-lifecycle and waterfall invariants under fuzzed scheduled
 * traffic, including forwarded (multi-hop, non-minimal) routes:
 *
 *  - every transfer span that opens closes exactly once, at the final
 *    destination, whatever path spreading the SSN chose;
 *  - the profiler's four waterfall stages (serialize, flight, forward
 *    layover, deskew wait) sum *exactly* to each transfer's observed
 *    end-to-end latency — the telescoping identity the report's
 *    "exact" field asserts;
 *  - FEC MBE injection corrupts payloads without breaking either
 *    invariant, and every MBE is attributed back to its link as one
 *    dropped payload at the consuming Recv.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string_view>
#include <vector>

#include "arch/chip.hh"
#include "net/network.hh"
#include "prof/profiler.hh"
#include "sim/event_queue.hh"
#include "ssn/scheduler.hh"
#include "trace/span.hh"
#include "trace/trace.hh"

namespace tsm {
namespace {

class RecordingSink : public TraceSink
{
  public:
    unsigned categoryMask() const override { return kTraceAllCats; }
    void event(const TraceEvent &ev) override { events.push_back(ev); }
    std::vector<TraceEvent> events;
};

TensorTransfer
makeTransfer(FlowId flow, TspId src, TspId dst, std::uint32_t vectors)
{
    TensorTransfer t;
    t.flow = flow;
    t.src = src;
    t.dst = dst;
    t.vectors = vectors;
    return t;
}

/** Schedule, execute on chips, and collect the full trace stream. */
void
runScheduled(const std::vector<TensorTransfer> &transfers,
             std::uint64_t seed, double mbe_rate, RecordingSink &rec,
             ProfilerSink &prof)
{
    const Topology topo = Topology::makeNode();
    SsnScheduler scheduler(topo);
    const auto sched = scheduler.schedule(transfers);

    EventQueue eq;
    eq.tracer().addSink(&rec);
    eq.tracer().addSink(&prof);
    Network net(topo, eq, Rng(seed));
    if (mbe_rate > 0.0) {
        ErrorModel errors;
        errors.mbePerVector = mbe_rate;
        net.setErrorModel(errors);
    }
    std::vector<std::unique_ptr<TspChip>> chips;
    for (TspId t = 0; t < topo.numTsps(); ++t)
        chips.push_back(std::make_unique<TspChip>(t, net, DriftClock()));
    auto programs = buildPrograms(sched, topo);
    for (TspId t = 0; t < topo.numTsps(); ++t) {
        chips[t]->setStream(0, makeVec(Vec(1.0f)));
        programs.byChip[t].emitHalt();
        chips[t]->load(std::move(programs.byChip[t]));
        chips[t]->start(0);
    }
    eq.run();
    eq.tracer().removeSink(&rec);
    eq.tracer().removeSink(&prof);
    prof.finish();
}

std::uint64_t
totalVectors(const std::vector<TensorTransfer> &transfers)
{
    std::uint64_t n = 0;
    for (const auto &t : transfers)
        n += t.vectors;
    return n;
}

void
checkLifecycleAndWaterfalls(const std::vector<TensorTransfer> &transfers,
                            std::uint64_t seed, double mbe_rate,
                            unsigned &max_legs)
{
    RecordingSink rec;
    ProfilerSink prof;
    runScheduled(transfers, seed, mbe_rate, rec, prof);

    // Span lifecycle from the raw stream: open exactly once, close
    // exactly once, close at or after open, never a close without an
    // open — across direct and forwarded routes alike.
    std::map<SpanId, unsigned> opens, closes;
    std::map<SpanId, Tick> openTick;
    std::uint64_t corrupt_consumes = 0;
    for (const TraceEvent &ev : rec.events) {
        if (ev.cat != TraceCat::Ssn)
            continue;
        const std::string_view name(ev.name);
        if (name == "span_open") {
            EXPECT_FALSE(spanIsChild(ev.span));
            ++opens[ev.span];
            openTick[ev.span] = ev.tick;
        } else if (name == "span_close") {
            EXPECT_FALSE(spanIsChild(ev.span));
            ++closes[ev.span];
            ASSERT_TRUE(openTick.count(ev.span))
                << "span closed before it opened: " << spanStr(ev.span);
            EXPECT_GE(ev.tick, openTick[ev.span]);
        } else if (name == "corrupt") {
            ++corrupt_consumes;
        }
    }
    EXPECT_EQ(opens.size(), totalVectors(transfers));
    EXPECT_EQ(closes.size(), opens.size());
    for (const auto &[span, n] : opens)
        EXPECT_EQ(n, 1u) << "span opened " << n << "x: " << spanStr(span);
    for (const auto &[span, n] : closes)
        EXPECT_EQ(n, 1u) << "span closed " << n << "x: " << spanStr(span);

    // The profiler's reconstruction agrees, and every closed transfer
    // obeys the exact waterfall decomposition.
    EXPECT_EQ(prof.transfers().size(), totalVectors(transfers));
    for (const auto &[span, tr] : prof.transfers()) {
        EXPECT_TRUE(tr.closed) << spanStr(span);
        EXPECT_GE(tr.legs, 1u);
        max_legs = std::max(max_legs, tr.legs);
        EXPECT_EQ(tr.stagesPs(), tr.totalPs())
            << spanStr(span) << ": serialize " << tr.serializePs
            << " + flight " << tr.flightPs << " + forward " << tr.forwardPs
            << " + wait " << tr.waitPs << " != total " << tr.totalPs();
        EXPECT_EQ(tr.openTick, openTick[span]);
    }

    // MBE attribution: each corrupted vector is eventually dropped at
    // a consuming Recv and charged back to the corrupting link.
    std::uint64_t mbes = 0, dropped = 0;
    for (const auto &[link, acct] : prof.links()) {
        mbes += acct.mbes;
        dropped += acct.dropped;
    }
    EXPECT_EQ(dropped, corrupt_consumes);
    EXPECT_EQ(mbes, dropped);
    if (mbe_rate == 0.0)
        EXPECT_EQ(mbes, 0u);
}

TEST(Waterfall, LifecycleAndExactStagesAcrossFuzzedRoutes)
{
    // Saturating single flows force non-minimal path spreading with
    // forwarded hops; incasts exercise contention; small transfers
    // stay single-hop. Every shape must satisfy the same invariants.
    const std::vector<std::vector<TensorTransfer>> shapes = {
        {makeTransfer(1, 0, 7, 64)},                       // spread
        {makeTransfer(1, 0, 1, 1)},                        // minimal
        {makeTransfer(1, 1, 0, 16), makeTransfer(2, 2, 0, 16),
         makeTransfer(3, 3, 0, 16), makeTransfer(4, 4, 0, 16)}, // incast
        {makeTransfer(1, 0, 3, 48), makeTransfer(2, 5, 2, 48)}, // cross
    };
    unsigned max_legs = 0;
    for (std::size_t i = 0; i < shapes.size(); ++i) {
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            SCOPED_TRACE("shape " + std::to_string(i) + " seed " +
                         std::to_string(seed));
            checkLifecycleAndWaterfalls(shapes[i], seed, 0.0, max_legs);
        }
    }
    // The fuzz must actually have covered a forwarded route.
    EXPECT_GE(max_legs, 2u);
}

TEST(Waterfall, InvariantsSurviveInjectedMbes)
{
    unsigned max_legs = 0;
    checkLifecycleAndWaterfalls({makeTransfer(1, 0, 7, 64)}, 1, 0.3,
                                max_legs);
    EXPECT_GE(max_legs, 2u);

    // And the faulty run really did see MBEs (the rate is high enough
    // that a clean pass would mean the injection path is dead).
    RecordingSink rec;
    ProfilerSink prof;
    runScheduled({makeTransfer(1, 0, 7, 64)}, 1, 0.3, rec, prof);
    std::uint64_t mbes = 0;
    for (const auto &[link, acct] : prof.links())
        mbes += acct.mbes;
    EXPECT_GT(mbes, 0u);
    bool saw_corrupt_transfer = false;
    for (const auto &[span, tr] : prof.transfers())
        saw_corrupt_transfer |= tr.mbes > 0;
    EXPECT_TRUE(saw_corrupt_transfer);
}

} // namespace
} // namespace tsm
