#include <gtest/gtest.h>

#include "net/topology.hh"
#include "ssn/spread.hh"
#include "ssn/transfer.hh"

namespace tsm {
namespace {

/** Path set of an intra-node transfer: 1 minimal + P two-hop paths. */
std::vector<PathChoice>
nodePaths(unsigned nonminimal)
{
    std::vector<PathChoice> paths;
    PathChoice minimal;
    minimal.latencyCycles = flightCycles(LinkClass::IntraNode);
    paths.push_back(minimal);
    for (unsigned p = 0; p < nonminimal; ++p) {
        PathChoice two_hop;
        two_hop.latencyCycles =
            2 * flightCycles(LinkClass::IntraNode) + forwardCycles();
        paths.push_back(two_hop);
    }
    return paths;
}

TEST(Spread, SmallMessagesStayMinimal)
{
    // Paper Fig 10: below ~8 KB there is no benefit from non-minimal
    // routing, so everything rides the minimal path.
    const auto paths = nodePaths(7);
    for (std::uint32_t vectors : {1u, 4u, 16u}) { // up to 5 KB
        const SpreadPlan plan = spreadVectors(vectors, paths);
        EXPECT_EQ(plan.pathsUsed(), 1u) << vectors << " vectors";
        EXPECT_EQ(plan.vectorsPerPath[0], vectors);
    }
}

TEST(Spread, LargeMessagesUseAllPaths)
{
    const auto paths = nodePaths(7);
    const SpreadPlan plan = spreadVectors(1000, paths); // 320 KB
    EXPECT_EQ(plan.pathsUsed(), 8u);
    // The minimal path carries the most vectors.
    for (std::size_t p = 1; p < paths.size(); ++p)
        EXPECT_GE(plan.vectorsPerPath[0], plan.vectorsPerPath[p]);
}

TEST(Spread, CrossoverNearEightKilobytes)
{
    // The crossover point emerges from serialization (24 cycles per
    // vector) vs the extra hop (~469 cycles): spreading starts to pay
    // once the minimal path's queue exceeds the detour latency —
    // ~20 vectors, i.e. ~6.4-8 KB (Fig 10 reports 8 KB).
    const auto paths = nodePaths(7);
    std::uint32_t first_spread = 0;
    for (std::uint32_t v = 1; v < 100; ++v) {
        if (spreadVectors(v, paths).pathsUsed() > 1) {
            first_spread = v;
            break;
        }
    }
    const Bytes crossover_bytes = Bytes(first_spread) * kVectorBytes;
    EXPECT_GE(crossover_bytes, 4 * kKiB);
    EXPECT_LE(crossover_bytes, 12 * kKiB);
}

TEST(Spread, MorePathsHelpMoreForLargeMessages)
{
    // Fig 10's second axis: with bigger messages, more non-minimal
    // paths yield bigger speedups.
    const std::uint32_t vectors = 4096; // 1.3 MB
    const Cycle lat1 =
        spreadVectors(vectors, nodePaths(1)).completionCycles;
    const Cycle lat3 =
        spreadVectors(vectors, nodePaths(3)).completionCycles;
    const Cycle lat7 =
        spreadVectors(vectors, nodePaths(7)).completionCycles;
    EXPECT_LT(lat7, lat3);
    EXPECT_LT(lat3, lat1);
    // With 8 paths the completion approaches 1/8 of minimal-only.
    const Cycle minimal_only =
        pathCompletionCycles(vectors, nodePaths(0)[0].latencyCycles);
    EXPECT_LT(double(lat7), 0.20 * double(minimal_only));
}

TEST(Spread, CompletionModelMatchesWaterFill)
{
    // For two equal paths the optimal split is even.
    std::vector<PathChoice> two;
    two.push_back({{}, 100});
    two.push_back({{}, 100});
    const SpreadPlan plan = spreadVectors(10, two);
    EXPECT_EQ(plan.vectorsPerPath[0], 5u);
    EXPECT_EQ(plan.vectorsPerPath[1], 5u);
    EXPECT_EQ(plan.completionCycles, pathCompletionCycles(5, 100));
}

TEST(Spread, DeterministicTieBreaking)
{
    const auto paths = nodePaths(7);
    const SpreadPlan a = spreadVectors(1234, paths);
    const SpreadPlan b = spreadVectors(1234, paths);
    EXPECT_EQ(a.vectorsPerPath, b.vectorsPerPath);
}

TEST(Spread, PathCompletionFormula)
{
    EXPECT_EQ(pathCompletionCycles(0, 100), 0u);
    EXPECT_EQ(pathCompletionCycles(1, 100), 100u);
    EXPECT_EQ(pathCompletionCycles(10, 100), 9 * 24 + 100u);
}

TEST(Spread, ToPathChoicesSortsMinimalFirst)
{
    const Topology topo = Topology::makeNode();
    const auto choices = toPathChoices(topo, topo.paths(0, 1, 1, 16));
    ASSERT_GE(choices.size(), 2u);
    EXPECT_EQ(choices[0].path.size(), 1u);
    EXPECT_EQ(choices[0].latencyCycles, flightCycles(LinkClass::IntraNode));
    EXPECT_EQ(choices[1].latencyCycles,
              2 * flightCycles(LinkClass::IntraNode) + forwardCycles());
}

} // namespace
} // namespace tsm
