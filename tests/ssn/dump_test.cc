#include <gtest/gtest.h>

#include "ssn/dump.hh"

namespace tsm {
namespace {

NetworkSchedule
smallSchedule(const Topology &topo)
{
    SsnScheduler scheduler(topo);
    TensorTransfer t;
    t.flow = 3;
    t.src = 0;
    t.dst = 1;
    t.vectors = 4;
    return scheduler.schedule({t});
}

TEST(Dump, DisassemblyListsEveryInstruction)
{
    Program p;
    p.emitCompute(10);
    p.emitSend(2, 0, 9, 0).issueAt = 50;
    p.emitHalt();
    const std::string listing = disassemble(p);
    EXPECT_NE(listing.find("COMPUTE"), std::string::npos);
    EXPECT_NE(listing.find("SEND @50 port2 flow9:0"), std::string::npos);
    EXPECT_NE(listing.find("HALT"), std::string::npos);
    EXPECT_EQ(std::count(listing.begin(), listing.end(), '\n'), 3);
}

TEST(Dump, ScheduleTimelineSortedAndComplete)
{
    const Topology topo = Topology::makeNode();
    const auto sched = smallSchedule(topo);
    const std::string dump = dumpSchedule(sched, topo);
    // One line per hop (4 single-hop vectors here).
    EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 4);
    EXPECT_NE(dump.find("flow3:0"), std::string::npos);
    EXPECT_NE(dump.find("flow3:3"), std::string::npos);
    // Sorted by departure: flow3:0 appears before flow3:3.
    EXPECT_LT(dump.find("flow3:0"), dump.find("flow3:3"));
}

TEST(Dump, TimelineCapTruncates)
{
    const Topology topo = Topology::makeNode();
    const auto sched = smallSchedule(topo);
    const std::string dump = dumpSchedule(sched, topo, 2);
    EXPECT_NE(dump.find("2 more windows"), std::string::npos);
}

TEST(Dump, FlowSummariesOnePerFlow)
{
    const Topology topo = Topology::makeNode();
    SsnScheduler scheduler(topo);
    std::vector<TensorTransfer> ts;
    for (FlowId f = 1; f <= 3; ++f) {
        TensorTransfer t;
        t.flow = f;
        t.src = TspId(f - 1);
        t.dst = TspId(f + 3);
        t.vectors = 2;
        ts.push_back(t);
    }
    const auto sched = scheduler.schedule(ts);
    const std::string s = dumpFlowSummaries(sched);
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);
    EXPECT_NE(s.find("flow    1"), std::string::npos);
}

} // namespace
} // namespace tsm
