#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "arch/chip.hh"
#include "ssn/deadlock.hh"
#include "ssn/scheduler.hh"

namespace tsm {
namespace {

TensorTransfer
makeTransfer(FlowId flow, TspId src, TspId dst, std::uint32_t vectors,
             Cycle earliest = 0)
{
    TensorTransfer t;
    t.flow = flow;
    t.src = src;
    t.dst = dst;
    t.vectors = vectors;
    t.earliest = earliest;
    return t;
}

TEST(SsnScheduler, SingleVectorMinimalPath)
{
    const Topology topo = Topology::makeNode();
    SsnScheduler sched(topo);
    const auto s = sched.schedule({makeTransfer(1, 0, 1, 1)});
    ASSERT_EQ(s.vectors.size(), 1u);
    EXPECT_EQ(s.vectors[0].hops.size(), 1u);
    EXPECT_EQ(s.vectors[0].departure(), 0u);
    EXPECT_EQ(s.vectors[0].arrival(), flightCycles(LinkClass::IntraNode));
    EXPECT_TRUE(validateSchedule(s, topo).ok);
}

TEST(SsnScheduler, LargeTensorSpreadsAcrossPaths)
{
    const Topology topo = Topology::makeNode();
    SsnScheduler sched(topo);
    const auto s = sched.schedule({makeTransfer(1, 0, 1, 256)}); // 80 KB
    EXPECT_GT(s.flows.at(1).pathsUsed, 1u);
    EXPECT_TRUE(validateSchedule(s, topo).ok);
    // Spreading beats minimal-only by a wide margin at this size.
    SsnScheduler minimal_only(topo, {.loadBalance = false});
    const auto m = minimal_only.schedule({makeTransfer(1, 0, 1, 256)});
    EXPECT_LT(double(s.makespan), 0.35 * double(m.makespan));
    EXPECT_TRUE(validateSchedule(m, topo).ok);
}

TEST(SsnScheduler, ContentionResolvedAtCompileTime)
{
    // Fig 8's scenario: two sources both target D; the shared link is
    // time-multiplexed with no conflicts.
    const Topology topo = Topology::makeNode();
    SsnScheduler sched(topo);
    const auto s = sched.schedule({
        makeTransfer(1, 0, 3, 64),
        makeTransfer(2, 1, 3, 64),
    });
    const auto report = validateSchedule(s, topo);
    EXPECT_TRUE(report.ok) << report.firstViolation;
    EXPECT_EQ(report.windowsChecked, s.vectors.size() == 0 ? 0 :
              [&] {
                  std::uint64_t hops = 0;
                  for (const auto &sv : s.vectors)
                      hops += sv.hops.size();
                  return hops;
              }());
}

TEST(SsnScheduler, EarliestCycleHonoured)
{
    const Topology topo = Topology::makeNode();
    SsnScheduler sched(topo);
    const auto s = sched.schedule({makeTransfer(1, 0, 1, 4, 1000)});
    for (const auto &sv : s.vectors)
        EXPECT_GE(sv.departure(), 1000u);
}

TEST(SsnScheduler, DeterministicOutput)
{
    const Topology topo = Topology::makeSingleLevel(2);
    SsnScheduler sched(topo);
    const std::vector<TensorTransfer> transfers = {
        makeTransfer(1, 0, 9, 100),
        makeTransfer(2, 3, 12, 50),
        makeTransfer(3, 8, 2, 75),
    };
    const auto a = sched.schedule(transfers);
    const auto b = sched.schedule(transfers);
    ASSERT_EQ(a.vectors.size(), b.vectors.size());
    for (std::size_t i = 0; i < a.vectors.size(); ++i) {
        EXPECT_EQ(a.vectors[i].hops.size(), b.vectors[i].hops.size());
        EXPECT_EQ(a.vectors[i].departure(), b.vectors[i].departure());
        EXPECT_EQ(a.vectors[i].arrival(), b.vectors[i].arrival());
    }
}

TEST(SsnScheduler, CrossNodeTransfersUseGlobalLinks)
{
    const Topology topo = Topology::makeSingleLevel(2);
    SsnScheduler sched(topo);
    const auto s = sched.schedule({makeTransfer(1, 0, 15, 8)});
    EXPECT_TRUE(validateSchedule(s, topo).ok);
    for (const auto &sv : s.vectors) {
        bool crossed = false;
        for (const auto &hop : sv.hops)
            crossed |= topo.links()[hop.link].cls != LinkClass::IntraNode;
        EXPECT_TRUE(crossed);
    }
}

TEST(SsnScheduler, ManyToOneIncast)
{
    // 7 sources all sending to TSP 0 simultaneously: the classic
    // incast that collapses dynamically routed networks resolves into
    // clean time-multiplexing here.
    const Topology topo = Topology::makeNode();
    SsnScheduler sched(topo);
    std::vector<TensorTransfer> transfers;
    for (TspId s = 1; s < 8; ++s)
        transfers.push_back(makeTransfer(FlowId(s), s, 0, 32));
    const auto s = sched.schedule(transfers);
    const auto report = validateSchedule(s, topo);
    EXPECT_TRUE(report.ok) << report.firstViolation;
    // All 7*32 vectors arrive.
    EXPECT_EQ(s.vectors.size(), 7u * 32);
}

TEST(SsnSchedulerProgram, EndToEndDataDelivery)
{
    // schedule -> buildPrograms -> run on real chips -> verify memory.
    const Topology topo = Topology::makeNode();
    EventQueue eq;
    Network net(topo, eq, Rng(1));
    std::vector<std::unique_ptr<TspChip>> chips;
    for (TspId t = 0; t < topo.numTsps(); ++t)
        chips.push_back(std::make_unique<TspChip>(t, net, DriftClock()));

    SsnScheduler sched(topo, {.loadBalance = false}); // single path
    const auto s = sched.schedule({makeTransfer(1, 2, 5, 3)});

    std::unordered_map<FlowId, LocalAddr> dst_base;
    dst_base[1] = LocalAddr::unflatten(100);
    auto programs = buildPrograms(s, topo, dst_base);

    // Preload the source's stream 0 with a recognizable payload.
    chips[2]->setStream(0, makeVec(Vec(6.5f)));
    for (TspId t = 0; t < topo.numTsps(); ++t) {
        programs.byChip[t].emitHalt();
        chips[t]->load(std::move(programs.byChip[t]));
        chips[t]->start(0);
    }
    eq.run();

    for (std::uint32_t seq = 0; seq < 3; ++seq) {
        const auto addr = LocalAddr::unflatten(100 + seq);
        ASSERT_TRUE(chips[5]->mem().present(addr)) << "seq " << seq;
        EXPECT_EQ((*chips[5]->mem().read(addr))[0], 6.5f);
    }
}

TEST(SsnSchedulerProgram, MultiHopForwardingDelivers)
{
    // Force a 2-hop route by saturating: large transfer spreads over
    // non-minimal paths; every vector must still arrive uncorrupted
    // and on time (the chips panic otherwise).
    const Topology topo = Topology::makeNode();
    EventQueue eq;
    Network net(topo, eq, Rng(2));
    std::vector<std::unique_ptr<TspChip>> chips;
    for (TspId t = 0; t < topo.numTsps(); ++t)
        chips.push_back(std::make_unique<TspChip>(t, net, DriftClock()));

    SsnScheduler sched(topo);
    const std::uint32_t n = 64;
    const auto s = sched.schedule({makeTransfer(1, 0, 7, n)});
    EXPECT_GT(s.flows.at(1).pathsUsed, 1u);

    auto programs = buildPrograms(s, topo);
    chips[0]->setStream(0, makeVec(Vec(1.0f)));
    for (TspId t = 0; t < topo.numTsps(); ++t) {
        programs.byChip[t].emitHalt();
        chips[t]->load(std::move(programs.byChip[t]));
        chips[t]->start(0);
    }
    eq.run();
    EXPECT_EQ(chips[7]->stats().flitsReceived, n);
    EXPECT_EQ(chips[7]->stats().corruptReceived, 0u);

    // The simulated arrival matches the schedule's makespan: the
    // compiler knows timing "to the clock cycle" (paper §4).
    const Cycle halt_cycle =
        chips[7]->clock().tickToCycle(chips[7]->stats().haltTick);
    EXPECT_GE(halt_cycle, s.makespan);
    EXPECT_LE(halt_cycle, s.makespan + 64);
}

TEST(SsnSchedulerProgram, SimulationMatchesScheduledArrivals)
{
    // Each individual vector's simulated arrival tick equals the
    // scheduled arrival cycle (within the rx margin).
    const Topology topo = Topology::makeNode();
    EventQueue eq;
    Network net(topo, eq, Rng(3));
    std::vector<std::unique_ptr<TspChip>> chips;
    for (TspId t = 0; t < topo.numTsps(); ++t)
        chips.push_back(std::make_unique<TspChip>(t, net, DriftClock()));

    SsnScheduler sched(topo, {.loadBalance = false});
    const auto s = sched.schedule({makeTransfer(1, 0, 4, 10)});
    auto programs = buildPrograms(s, topo);
    chips[0]->setStream(0, makeVec(Vec(2.0f)));

    // Intercept arrivals at the destination.
    std::vector<Tick> arrivals;
    for (TspId t = 0; t < topo.numTsps(); ++t) {
        programs.byChip[t].emitHalt();
        chips[t]->load(std::move(programs.byChip[t]));
        chips[t]->start(0);
    }
    eq.run();

    // Verify the schedule's prediction for the last vector.
    const DriftClock clk;
    const auto &last = s.vectors.back();
    const Tick predicted = clk.cycleToTick(last.arrival());
    // Actual = depart(tick) + ser + prop; predicted uses the ceiled
    // cycle count, so actual <= predicted within one cycle.
    const Tick actual = clk.cycleToTick(last.departure()) +
                        Tick(kVectorSerializationPs) +
                        linkPropagationPs(LinkClass::IntraNode);
    EXPECT_LE(actual, predicted);
    EXPECT_LE(predicted - actual, Tick(2 * kCorePeriodPs));
}

TEST(Deadlock, CdgMayBeCyclicYetScheduleIsSafe)
{
    // Ring traffic around the node with non-minimal spreading induces
    // circular channel dependencies — the exact situation the paper
    // says needs no VCs under SSN.
    const Topology topo = Topology::makeNode(NodeWiring::TripleRing);
    SsnScheduler sched(topo, {.maxExtraHops = 2, .maxPaths = 8});
    std::vector<TensorTransfer> transfers;
    for (TspId s = 0; s < 8; ++s)
        transfers.push_back(
            makeTransfer(FlowId(s + 1), s, (s + 2) % 8, 64));
    const auto s = sched.schedule(transfers);

    const CdgReport cdg = channelDependencyCycles(s, topo);
    EXPECT_GT(cdg.edges, 0u);
    EXPECT_TRUE(cdg.cyclic); // circular dependencies exist...
    EXPECT_TRUE(holdAndWaitFree(s, topo)); // ...but cannot deadlock
}

TEST(Deadlock, LinearTrafficHasAcyclicCdg)
{
    const Topology topo = Topology::makeNode();
    SsnScheduler sched(topo, {.loadBalance = false});
    const auto s = sched.schedule({makeTransfer(1, 0, 1, 4)});
    const CdgReport cdg = channelDependencyCycles(s, topo);
    EXPECT_FALSE(cdg.cyclic);
}

} // namespace
} // namespace tsm
