#include <gtest/gtest.h>

#include "ssn/reservation.hh"

namespace tsm {
namespace {

TEST(ReservationLedger, EmptyIsFreeEverywhere)
{
    ReservationLedger ledger(4);
    EXPECT_EQ(ledger.earliestFree(0, true, 0), 0u);
    EXPECT_EQ(ledger.earliestFree(3, false, 1000), 1000u);
    EXPECT_EQ(ledger.totalReservations(), 0u);
    EXPECT_EQ(ledger.horizon(), 0u);
}

TEST(ReservationLedger, ReserveBlocksWindow)
{
    ReservationLedger ledger(1);
    ledger.reserve(0, true, 100);
    // Anything overlapping [100, 124) is pushed to 124.
    EXPECT_EQ(ledger.earliestFree(0, true, 100), 124u);
    EXPECT_EQ(ledger.earliestFree(0, true, 110), 124u);
    EXPECT_EQ(ledger.earliestFree(0, true, 123), 124u);
    // A window ending exactly at 100 is fine.
    EXPECT_EQ(ledger.earliestFree(0, true, 76), 76u);
    // One starting before that overlaps.
    EXPECT_EQ(ledger.earliestFree(0, true, 77), 124u);
    EXPECT_EQ(ledger.horizon(), 124u);
}

TEST(ReservationLedger, DirectionsIndependent)
{
    ReservationLedger ledger(1);
    ledger.reserve(0, true, 0);
    EXPECT_TRUE(ledger.free(0, false, 0));
    ledger.reserve(0, false, 0);
    EXPECT_EQ(ledger.totalReservations(), 2u);
}

TEST(ReservationLedger, SkipsOverMultipleReservations)
{
    ReservationLedger ledger(1);
    ledger.reserve(0, true, 0);
    ledger.reserve(0, true, 24);
    ledger.reserve(0, true, 48);
    EXPECT_EQ(ledger.earliestFree(0, true, 0), 72u);
    // Gap in the middle is found.
    ReservationLedger l2(1);
    l2.reserve(0, true, 0);
    l2.reserve(0, true, 48);
    EXPECT_EQ(l2.earliestFree(0, true, 0), 24u);
}

TEST(ReservationLedger, DoubleBookPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ReservationLedger ledger(1);
    ledger.reserve(0, true, 10);
    EXPECT_DEATH(ledger.reserve(0, true, 20), "conflict");
}

TEST(ReservationLedger, CustomWindow)
{
    ReservationLedger ledger(1, 10);
    ledger.reserve(0, true, 0);
    EXPECT_EQ(ledger.earliestFree(0, true, 0), 10u);
}

} // namespace
} // namespace tsm
