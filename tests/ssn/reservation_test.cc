#include <gtest/gtest.h>

#include "ssn/reservation.hh"

namespace tsm {
namespace {

TEST(ReservationLedger, EmptyIsFreeEverywhere)
{
    ReservationLedger ledger(4);
    EXPECT_EQ(ledger.earliestFree(0, true, 0), 0u);
    EXPECT_EQ(ledger.earliestFree(3, false, 1000), 1000u);
    EXPECT_EQ(ledger.totalReservations(), 0u);
    EXPECT_EQ(ledger.horizon(), 0u);
}

TEST(ReservationLedger, ReserveBlocksWindow)
{
    ReservationLedger ledger(1);
    ledger.reserve(0, true, 100);
    // Anything overlapping [100, 124) is pushed to 124.
    EXPECT_EQ(ledger.earliestFree(0, true, 100), 124u);
    EXPECT_EQ(ledger.earliestFree(0, true, 110), 124u);
    EXPECT_EQ(ledger.earliestFree(0, true, 123), 124u);
    // A window ending exactly at 100 is fine.
    EXPECT_EQ(ledger.earliestFree(0, true, 76), 76u);
    // One starting before that overlaps.
    EXPECT_EQ(ledger.earliestFree(0, true, 77), 124u);
    EXPECT_EQ(ledger.horizon(), 124u);
}

TEST(ReservationLedger, DirectionsIndependent)
{
    ReservationLedger ledger(1);
    ledger.reserve(0, true, 0);
    EXPECT_TRUE(ledger.free(0, false, 0));
    ledger.reserve(0, false, 0);
    EXPECT_EQ(ledger.totalReservations(), 2u);
}

TEST(ReservationLedger, SkipsOverMultipleReservations)
{
    ReservationLedger ledger(1);
    ledger.reserve(0, true, 0);
    ledger.reserve(0, true, 24);
    ledger.reserve(0, true, 48);
    EXPECT_EQ(ledger.earliestFree(0, true, 0), 72u);
    // Gap in the middle is found.
    ReservationLedger l2(1);
    l2.reserve(0, true, 0);
    l2.reserve(0, true, 48);
    EXPECT_EQ(l2.earliestFree(0, true, 0), 24u);
}

TEST(ReservationLedger, DoubleBookPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ReservationLedger ledger(1);
    ledger.reserve(0, true, 10);
    EXPECT_DEATH(ledger.reserve(0, true, 20), "conflict");
}

TEST(ReservationLedger, CustomWindow)
{
    ReservationLedger ledger(1, 10);
    ledger.reserve(0, true, 0);
    EXPECT_EQ(ledger.earliestFree(0, true, 0), 10u);
}

TEST(ReservationLedger, OccupantsInRangeNamesOwners)
{
    ReservationLedger ledger(2, 10);
    ledger.reserve(0, true, 0, 7);
    ledger.reserve(0, true, 10, 8);
    ledger.reserve(0, true, 30, 9);
    ledger.reserve(0, false, 0, 1); // other direction, never reported
    ledger.reserve(1, true, 0, 2);  // other link, never reported

    // Overlap is half-open on both sides: a window ending exactly at
    // `from` or starting exactly at `to` is not an occupant.
    const auto occ = ledger.occupantsInRange(0, true, 5, 30);
    ASSERT_EQ(occ.size(), 2u);
    EXPECT_EQ(occ[0].start, 0u);
    EXPECT_EQ(occ[0].owner, 7u);
    EXPECT_EQ(occ[1].start, 10u);
    EXPECT_EQ(occ[1].owner, 8u);

    EXPECT_TRUE(ledger.occupantsInRange(0, true, 20, 30).empty());
    EXPECT_TRUE(ledger.occupantsInRange(1, false, 0, 100).empty());

    // Default-owner reservations still report, tagged invalid.
    ReservationLedger anon(1, 10);
    anon.reserve(0, true, 0);
    const auto a = anon.occupantsInRange(0, true, 0, 10);
    ASSERT_EQ(a.size(), 1u);
    EXPECT_EQ(a[0].owner, kFlowInvalid);
}

} // namespace
} // namespace tsm
