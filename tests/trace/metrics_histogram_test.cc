/**
 * @file
 * MetricsRegistry histogram support: named log2 histograms alongside
 * counters/accumulators, their percentile columns in the rendered
 * table, and clear() covering them.
 */

#include <gtest/gtest.h>

#include <string>

#include "trace/metrics.hh"

namespace tsm {
namespace {

TEST(MetricsHistogram, NamedCreationAndLookup)
{
    MetricsRegistry reg;
    EXPECT_EQ(reg.findHistogram("q"), nullptr);
    EXPECT_EQ(reg.numHistograms(), 0u);

    reg.histogram("q").add(100);
    reg.histogram("q").add(300);
    ASSERT_NE(reg.findHistogram("q"), nullptr);
    EXPECT_EQ(reg.findHistogram("q")->count(), 2u);
    EXPECT_EQ(reg.numHistograms(), 1u);
    EXPECT_FALSE(reg.empty());

    reg.histogram("r");
    EXPECT_EQ(reg.numHistograms(), 2u);
}

TEST(MetricsHistogram, ReportShowsPercentiles)
{
    MetricsRegistry reg;
    reg.counter("net.tx") = 3;
    for (std::uint64_t v : {10u, 20u, 40u, 80u, 5000u})
        reg.histogram("net.link0.queue_delay_ps").add(v);

    const std::string rep = reg.report();
    EXPECT_NE(rep.find("net.link0.queue_delay_ps"), std::string::npos);
    EXPECT_NE(rep.find("p50"), std::string::npos);
    EXPECT_NE(rep.find("p99"), std::string::npos);
    EXPECT_NE(rep.find("net.tx"), std::string::npos);
}

TEST(MetricsHistogram, ClearCoversHistograms)
{
    MetricsRegistry reg;
    reg.histogram("h").add(1);
    reg.counter("c") = 1;
    reg.clear();
    EXPECT_TRUE(reg.empty());
    EXPECT_EQ(reg.numHistograms(), 0u);
    EXPECT_EQ(reg.findHistogram("h"), nullptr);
}

} // namespace
} // namespace tsm
