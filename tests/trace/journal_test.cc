#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "arch/chip.hh"
#include "net/network.hh"
#include "sim/event_queue.hh"
#include "ssn/scheduler.hh"
#include "trace/journal.hh"
#include "trace/span.hh"

namespace tsm {
namespace {

TEST(JournalLine, RoundTripsEveryField)
{
    const TraceEvent ev{12345, 0, TraceCat::Net, 7, "tx", -3, 99,
                        spanChild(transferSpan(4, 20), 1)};
    const std::string line = journalLine(ev);
    JournalRecord rec;
    ASSERT_TRUE(parseJournalLine(line, rec)) << line;
    EXPECT_EQ(rec.tick, ev.tick);
    EXPECT_EQ(rec.cat, "net");
    EXPECT_EQ(rec.actor, ev.actor);
    EXPECT_EQ(rec.name, "tx");
    EXPECT_EQ(rec.a, ev.a);
    EXPECT_EQ(rec.b, ev.b);
    EXPECT_EQ(rec.span, ev.span);
}

TEST(JournalLine, RejectsMalformedLines)
{
    JournalRecord rec;
    EXPECT_FALSE(parseJournalLine("", rec));
    EXPECT_FALSE(parseJournalLine("12 net 0", rec));
    EXPECT_FALSE(parseJournalLine("12 net 0 tx 1 2 0 extra", rec));
    EXPECT_FALSE(parseJournalLine("x net 0 tx 1 2 0", rec));
}

TEST(JournalSink, WritesMagicAndOneLinePerEvent)
{
    std::ostringstream os;
    {
        JournalSink sink(os);
        EXPECT_EQ(sink.categoryMask(), kTraceAllCats);
        sink.event({1, 0, TraceCat::Sim, 0, "dispatch", 0, 0});
        sink.event({2, 0, TraceCat::Ssn, 3, "span_open", 5, 0,
                    transferSpan(5, 0)});
        sink.finish();
        EXPECT_EQ(sink.eventsWritten(), 2u);
    }
    std::istringstream is(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(line, kJournalMagic);
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(line, "1 sim 0 dispatch 0 0 0");
    ASSERT_TRUE(std::getline(is, line));
    JournalRecord rec;
    ASSERT_TRUE(parseJournalLine(line, rec));
    EXPECT_EQ(rec.span, transferSpan(5, 0));
}

TEST(ReadJournal, ReportsMissingFileAndBadMagic)
{
    std::vector<JournalRecord> recs;
    std::string error;
    EXPECT_FALSE(readJournal("/nonexistent/journal", recs, &error));
    EXPECT_FALSE(error.empty());

    const std::string path =
        testing::TempDir() + "/journal_badmagic.tsmj";
    {
        std::ofstream f(path);
        f << "not a journal\n";
    }
    error.clear();
    EXPECT_FALSE(readJournal(path, recs, &error));
    EXPECT_NE(error.find("not a tsm-journal-v1"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ReadJournal, RoundTripsThroughAFile)
{
    const std::string path = testing::TempDir() + "/journal_rt.tsmj";
    {
        JournalSink sink(path);
        sink.event({10, 0, TraceCat::Chip, 1, "Send", 2, 0,
                    spanChild(transferSpan(2, 0), 0)});
        sink.event({20, 5, TraceCat::Net, 0, "tx", 2, 0});
        sink.finish();
    }
    std::vector<JournalRecord> recs;
    std::string error;
    ASSERT_TRUE(readJournal(path, recs, &error)) << error;
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].name, "Send");
    EXPECT_EQ(recs[0].span, spanChild(transferSpan(2, 0), 0));
    EXPECT_EQ(recs[0].line, 2u);
    EXPECT_EQ(recs[1].cat, "net");
    std::remove(path.c_str());
}

/** Run the 2-flow scheduled scenario, journaling into `os`. */
void
runScenario(std::ostream &os, std::uint64_t seed, double mbe_rate)
{
    const Topology topo = Topology::makeNode();
    SsnScheduler scheduler(topo);
    std::vector<TensorTransfer> transfers;
    for (unsigned f = 0; f < 2; ++f) {
        TensorTransfer t;
        t.flow = f + 1;
        t.src = TspId(f + 1);
        t.dst = 0;
        t.vectors = 8;
        transfers.push_back(t);
    }
    const auto sched = scheduler.schedule(transfers);

    EventQueue eq;
    JournalSink sink(os);
    eq.tracer().addSink(&sink);
    Network net(topo, eq, Rng(seed));
    if (mbe_rate > 0.0) {
        ErrorModel errors;
        errors.mbePerVector = mbe_rate;
        net.setErrorModel(errors);
    }
    std::vector<std::unique_ptr<TspChip>> chips;
    for (TspId t = 0; t < topo.numTsps(); ++t)
        chips.push_back(std::make_unique<TspChip>(t, net, DriftClock()));
    auto programs = buildPrograms(sched, topo);
    for (TspId t = 0; t < topo.numTsps(); ++t) {
        chips[t]->setStream(0, makeVec(Vec(1.0f)));
        programs.byChip[t].emitHalt();
        chips[t]->load(std::move(programs.byChip[t]));
        chips[t]->start(0);
    }
    eq.run();
    eq.tracer().removeSink(&sink);
    sink.finish();
}

TEST(Journal, SameSeedRunsAreByteIdentical)
{
    std::ostringstream a, b;
    runScenario(a, 1, 0.0);
    runScenario(b, 1, 0.0);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_GT(a.str().size(), std::string(kJournalMagic).size() + 1);
}

TEST(Journal, InjectedMbeDivergesWithoutPerturbingTiming)
{
    std::ostringstream clean, faulty;
    runScenario(clean, 1, 0.0);
    runScenario(faulty, 1, 0.25);
    ASSERT_NE(clean.str(), faulty.str());

    // FEC MBEs corrupt payloads but never timing (paper §4.5): the
    // faulty run gains "mbe" lines and renames recv->corrupt, so line
    // counts differ but the tick sequence of common events matches.
    std::istringstream ic(clean.str()), if_(faulty.str());
    std::vector<JournalRecord> rc, rf;
    std::string line;
    std::getline(ic, line); // magic
    while (std::getline(ic, line)) {
        JournalRecord rec;
        ASSERT_TRUE(parseJournalLine(line, rec));
        rc.push_back(rec);
    }
    std::getline(if_, line);
    std::size_t mbe_lines = 0;
    while (std::getline(if_, line)) {
        JournalRecord rec;
        ASSERT_TRUE(parseJournalLine(line, rec));
        if (rec.name == "mbe")
            ++mbe_lines;
        rf.push_back(rec);
    }
    EXPECT_GT(mbe_lines, 0u);
    EXPECT_EQ(rf.size(), rc.size() + mbe_lines);
}

} // namespace
} // namespace tsm
