#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "ssn/schedule_trace.hh"
#include "ssn/scheduler.hh"
#include "trace/chrome_trace.hh"
#include "trace/digest.hh"
#include "trace/metrics.hh"
#include "trace/session.hh"

namespace tsm {
namespace {

/** Records every delivered event for inspection. */
class RecordingSink : public TraceSink
{
  public:
    explicit RecordingSink(unsigned mask = kTraceAllCats) : mask_(mask) {}

    unsigned categoryMask() const override { return mask_; }
    void event(const TraceEvent &ev) override { events.push_back(ev); }
    void finish() override { ++finishes; }

    std::vector<TraceEvent> events;
    int finishes = 0;

  private:
    unsigned mask_;
};

TEST(Tracer, InactiveByDefault)
{
    Tracer tracer;
    EXPECT_FALSE(tracer.active());
    EXPECT_EQ(tracer.numSinks(), 0u);
    for (unsigned c = 0; c < kNumTraceCats; ++c)
        EXPECT_FALSE(tracer.wants(TraceCat(c)));
    // Emitting with no sinks must be harmless.
    tracer.emit({1, 0, TraceCat::Chip, 0, "x", 0, 0});
}

TEST(Tracer, MaskFiltersPerSink)
{
    Tracer tracer;
    RecordingSink all(kTraceAllCats);
    RecordingSink netOnly(traceCatBit(TraceCat::Net));
    tracer.addSink(&all);
    tracer.addSink(&netOnly);

    EXPECT_TRUE(tracer.wants(TraceCat::Net));
    EXPECT_TRUE(tracer.wants(TraceCat::Sim));

    tracer.emit({1, 0, TraceCat::Net, 0, "tx", 0, 0});
    tracer.emit({2, 0, TraceCat::Chip, 0, "NOP", 0, 0});

    EXPECT_EQ(all.events.size(), 2u);
    ASSERT_EQ(netOnly.events.size(), 1u);
    EXPECT_STREQ(netOnly.events[0].name, "tx");
}

TEST(Tracer, RemoveSinkRecomputesMask)
{
    Tracer tracer;
    RecordingSink sim(traceCatBit(TraceCat::Sim));
    RecordingSink chip(traceCatBit(TraceCat::Chip));
    tracer.addSink(&sim);
    tracer.addSink(&chip);
    tracer.removeSink(&sim);

    EXPECT_FALSE(tracer.wants(TraceCat::Sim));
    EXPECT_TRUE(tracer.wants(TraceCat::Chip));
    EXPECT_EQ(tracer.numSinks(), 1u);

    tracer.removeSink(&chip);
    EXPECT_FALSE(tracer.active());
    // Removing an absent sink is a no-op.
    tracer.removeSink(&chip);
}

TEST(Tracer, FinishAllForwards)
{
    Tracer tracer;
    RecordingSink a, b;
    tracer.addSink(&a);
    tracer.addSink(&b);
    tracer.finishAll();
    EXPECT_EQ(a.finishes, 1);
    EXPECT_EQ(b.finishes, 1);
}

TEST(Tracer, DefaultMaskExcludesSimOnly)
{
    EXPECT_EQ(kTraceDefaultCats & traceCatBit(TraceCat::Sim), 0u);
    for (auto c : {TraceCat::Chip, TraceCat::Net, TraceCat::Ssn,
                   TraceCat::Sync, TraceCat::Runtime})
        EXPECT_NE(kTraceDefaultCats & traceCatBit(c), 0u);
}

TEST(Tracer, CategoryNames)
{
    EXPECT_STREQ(traceCatName(TraceCat::Sim), "sim");
    EXPECT_STREQ(traceCatName(TraceCat::Chip), "chip");
    EXPECT_STREQ(traceCatName(TraceCat::Net), "net");
    EXPECT_STREQ(traceCatName(TraceCat::Ssn), "ssn");
    EXPECT_STREQ(traceCatName(TraceCat::Sync), "sync");
    EXPECT_STREQ(traceCatName(TraceCat::Runtime), "runtime");
}

TEST(ChromeTrace, WellFormedJsonArray)
{
    std::ostringstream os;
    {
        ChromeTraceSink sink(os);
        sink.event({2 * kPsPerUs, kPsPerUs, TraceCat::Chip, 3, "SEND",
                    7, 9});
        sink.event({5 * kPsPerUs, 0, TraceCat::Net, 1, "rx", 2, 4});
        sink.finish();
        EXPECT_EQ(sink.eventsWritten(), 2u);
    }
    const std::string json = os.str();

    // Structural well-formedness without a JSON parser: array
    // brackets, balanced braces, no trailing comma.
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.substr(json.size() - 2), "]\n");
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(json.find(",]"), std::string::npos);
    EXPECT_EQ(json.find(",\n]"), std::string::npos);

    // A complete event with microsecond ts/dur...
    EXPECT_NE(json.find("\"name\":\"SEND\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":2.000000"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":1.000000"), std::string::npos);
    // ...an instant for the zero-duration one...
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    // ...and process-name metadata naming the categories.
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("\"chip\""), std::string::npos);
}

TEST(ChromeTrace, FinishIsIdempotentAndDtorFinishes)
{
    std::ostringstream os;
    {
        ChromeTraceSink sink(os);
        sink.event({1, 0, TraceCat::Net, 0, "tx", 0, 0});
        sink.finish();
        sink.finish();
        // Destructor runs here; must not close the array again.
    }
    const std::string json = os.str();
    EXPECT_EQ(std::count(json.begin(), json.end(), ']'), 1);
}

TEST(ChromeTrace, EmptyTraceIsStillAnArray)
{
    std::ostringstream os;
    ChromeTraceSink sink(os);
    sink.finish();
    const std::string json = os.str();
    EXPECT_EQ(json.front(), '[');
    EXPECT_NE(json.find(']'), std::string::npos);
    EXPECT_EQ(sink.eventsWritten(), 0u);
}

TEST(Metrics, RegistryCountersAndAccumulators)
{
    MetricsRegistry reg;
    EXPECT_TRUE(reg.empty());
    EXPECT_EQ(reg.counterValue("missing"), 0u);
    EXPECT_EQ(reg.findAccumulator("missing"), nullptr);

    reg.counter("a") += 3;
    ++reg.counter("a");
    reg.accumulator("lat").add(2.0);
    reg.accumulator("lat").add(4.0);

    EXPECT_EQ(reg.counterValue("a"), 4u);
    ASSERT_NE(reg.findAccumulator("lat"), nullptr);
    EXPECT_DOUBLE_EQ(reg.findAccumulator("lat")->mean(), 3.0);
    EXPECT_EQ(reg.numCounters(), 1u);
    EXPECT_EQ(reg.numAccumulators(), 1u);

    const std::string report = reg.report();
    EXPECT_NE(report.find("a"), std::string::npos);
    EXPECT_NE(report.find("lat"), std::string::npos);

    reg.clear();
    EXPECT_TRUE(reg.empty());
}

TEST(Metrics, SinkFoldsEventsByCategoryAndName)
{
    MetricsSink sink;
    sink.event({0, 0, TraceCat::Net, 1, "tx", 0, 0});
    sink.event({1, 2 * kPsPerUs, TraceCat::Net, 1, "tx", 0, 0});
    sink.event({2, 0, TraceCat::Chip, 0, "SEND", 0, 0});

    const MetricsRegistry &reg = sink.registry();
    EXPECT_EQ(reg.counterValue("net.tx"), 2u);
    EXPECT_EQ(reg.counterValue("chip.SEND"), 1u);
    const Accumulator *us = reg.findAccumulator("net.tx.us");
    ASSERT_NE(us, nullptr);
    EXPECT_EQ(us->count(), 1u);
    EXPECT_DOUBLE_EQ(us->mean(), 2.0);
}

TEST(Digest, StableAndOrderSensitive)
{
    const TraceEvent e1{1, 0, TraceCat::Chip, 0, "a", 1, 2};
    const TraceEvent e2{2, 0, TraceCat::Net, 1, "b", 3, 4};

    DigestSink d1, d2, d3;
    EXPECT_EQ(d1.digest(), kFnvOffsetBasis);

    d1.event(e1);
    d1.event(e2);
    d2.event(e1);
    d2.event(e2);
    d3.event(e2);
    d3.event(e1);

    EXPECT_EQ(d1.digest(), d2.digest());
    EXPECT_NE(d1.digest(), d3.digest()); // order matters
    EXPECT_EQ(d1.events(), 2u);

    d1.reset();
    EXPECT_EQ(d1.digest(), kFnvOffsetBasis);
    EXPECT_EQ(d1.events(), 0u);
}

TEST(Digest, SensitiveToEveryField)
{
    const TraceEvent base{1, 2, TraceCat::Chip, 3, "n", 4, 5};
    const auto hash = [](TraceEvent ev) {
        DigestSink d;
        d.event(ev);
        return d.digest();
    };
    const std::uint64_t h0 = hash(base);

    TraceEvent m = base;
    m.tick = 9;
    EXPECT_NE(hash(m), h0);
    m = base;
    m.dur = 9;
    EXPECT_NE(hash(m), h0);
    m = base;
    m.cat = TraceCat::Net;
    EXPECT_NE(hash(m), h0);
    m = base;
    m.actor = 9;
    EXPECT_NE(hash(m), h0);
    m = base;
    m.name = "m";
    EXPECT_NE(hash(m), h0);
    m = base;
    m.a = 9;
    EXPECT_NE(hash(m), h0);
    m = base;
    m.b = 9;
    EXPECT_NE(hash(m), h0);
}

TEST(Digest, KnownFnvVector)
{
    // Classic FNV-1a test vector: "a" hashes to this constant.
    EXPECT_EQ(fnv1a64(kFnvOffsetBasis, "a", 1), 0xaf63dc4c8601ec8cull);
}

TEST(EventQueueTracing, DispatchEventsCoverEveryExecution)
{
    EventQueue eq;
    DigestSink digest; // kTraceAllCats, so it sees Sim dispatches
    eq.tracer().addSink(&digest);
    for (Tick t = 1; t <= 5; ++t)
        eq.schedule(t * 10, [] {});
    eq.run();
    EXPECT_EQ(digest.events(), 5u);
    eq.tracer().removeSink(&digest);
}

TEST(EventQueueTracing, DefaultMaskSinkSkipsDispatches)
{
    EventQueue eq;
    RecordingSink sink(kTraceDefaultCats);
    eq.tracer().addSink(&sink);
    eq.schedule(1, [] {});
    eq.run();
    EXPECT_TRUE(sink.events.empty());
    eq.tracer().removeSink(&sink);
}

TEST(TraceOptions, FromArgsStripsRecognized)
{
    const char *raw[] = {"prog", "--trace=/tmp/t.json", "--keep",
                         "--metrics", "--digest", "positional"};
    std::vector<char *> argv;
    for (const char *a : raw)
        argv.push_back(const_cast<char *>(a));
    int argc = int(argv.size());

    const TraceOptions opts = TraceOptions::fromArgs(argc, argv.data());
    EXPECT_EQ(opts.tracePath, "/tmp/t.json");
    EXPECT_TRUE(opts.metrics);
    EXPECT_TRUE(opts.digest);
    ASSERT_EQ(argc, 3);
    EXPECT_STREQ(argv[0], "prog");
    EXPECT_STREQ(argv[1], "--keep");
    EXPECT_STREQ(argv[2], "positional");
}

TEST(TraceOptions, FromArgsDefaults)
{
    const char *raw[] = {"prog"};
    std::vector<char *> argv{const_cast<char *>(raw[0])};
    int argc = 1;
    const TraceOptions opts = TraceOptions::fromArgs(argc, argv.data());
    EXPECT_TRUE(opts.tracePath.empty());
    EXPECT_FALSE(opts.metrics);
    EXPECT_FALSE(opts.digest);
    EXPECT_EQ(argc, 1);
}

TEST(TraceSession, AttachDetachAcrossQueues)
{
    TraceOptions opts;
    opts.digest = true;
    TraceSession session(opts);
    EXPECT_TRUE(session.active());

    {
        EventQueue eq;
        session.attach(eq.tracer());
        eq.schedule(1, [] {});
        eq.run();
        session.detach();
    }
    const std::uint64_t after_first = session.digest();
    EXPECT_NE(after_first, 0u);

    {
        EventQueue eq2;
        session.attach(eq2.tracer());
        eq2.schedule(1, [] {});
        eq2.run();
        session.detach();
    }
    // The digest keeps folding across attachments.
    EXPECT_NE(session.digest(), after_first);
}

TEST(ScheduleTrace, DeterministicAcrossRuns)
{
    const Topology topo = Topology::makeNode();
    std::vector<TensorTransfer> transfers;
    for (unsigned f = 0; f < 3; ++f) {
        TensorTransfer t;
        t.flow = f + 1;
        t.src = TspId(f);
        t.dst = TspId(7 - f);
        t.vectors = 16;
        transfers.push_back(t);
    }

    const auto digestOf = [&] {
        SsnScheduler scheduler(topo);
        const auto sched = scheduler.schedule(transfers);
        Tracer tracer;
        DigestSink digest;
        tracer.addSink(&digest);
        const std::uint64_t n = traceSchedule(tracer, sched);
        EXPECT_GT(n, 0u);
        EXPECT_EQ(n, digest.events());
        tracer.removeSink(&digest);
        return digest.digest();
    };
    EXPECT_EQ(digestOf(), digestOf());
}

TEST(ScheduleTrace, NoSinkMeansNoWork)
{
    const Topology topo = Topology::makeNode();
    TensorTransfer t;
    t.flow = 1;
    t.src = 0;
    t.dst = 1;
    t.vectors = 4;
    SsnScheduler scheduler(topo);
    const auto sched = scheduler.schedule({t});
    Tracer tracer;
    EXPECT_EQ(traceSchedule(tracer, sched), 0u);
}

} // namespace
} // namespace tsm
