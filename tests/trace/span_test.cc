#include <gtest/gtest.h>

#include <set>

#include "trace/span.hh"

namespace tsm {
namespace {

TEST(Span, NoneIsDistinctFromEveryTransfer)
{
    EXPECT_EQ(kSpanNone, SpanId(0));
    EXPECT_NE(transferSpan(0, 0), kSpanNone);
    EXPECT_NE(transferSpan(1, 0), kSpanNone);
}

TEST(Span, PackingRoundTrips)
{
    for (std::uint32_t flow : {0u, 1u, 7u, 1000u, 0xfffffeu}) {
        for (std::uint32_t seq : {0u, 1u, 31u, 0xffffffu - 1}) {
            const SpanId parent = transferSpan(flow, seq);
            EXPECT_EQ(spanFlow(parent), flow);
            EXPECT_EQ(spanSeq(parent), seq);
            EXPECT_FALSE(spanIsChild(parent));
            EXPECT_EQ(spanParent(parent), parent);
            EXPECT_EQ(spanHop(parent), 0u);
        }
    }
}

TEST(Span, ChildrenKeepIdentityAndHop)
{
    const SpanId parent = transferSpan(42, 1234);
    for (unsigned hop : {0u, 1u, 2u, 5u, 200u}) {
        const SpanId child = spanChild(parent, hop);
        EXPECT_TRUE(spanIsChild(child));
        EXPECT_EQ(spanParent(child), parent);
        EXPECT_EQ(spanHop(child), hop);
        EXPECT_EQ(spanFlow(child), 42u);
        EXPECT_EQ(spanSeq(child), 1234u);
        EXPECT_NE(child, parent);
    }
}

TEST(Span, DistinctTransfersGetDistinctIds)
{
    std::set<SpanId> seen;
    for (std::uint32_t flow = 0; flow < 16; ++flow)
        for (std::uint32_t seq = 0; seq < 64; ++seq)
            EXPECT_TRUE(seen.insert(transferSpan(flow, seq)).second)
                << "collision at flow " << flow << " seq " << seq;
    // Leg children never collide with any parent either.
    for (SpanId parent : seen)
        for (unsigned hop = 0; hop < 4; ++hop)
            EXPECT_EQ(seen.count(spanChild(parent, hop)), 0u);
}

TEST(Span, IdsArePureFunctionsOfTags)
{
    // The auditor depends on run-to-run stability: the id must derive
    // from compile-time tags only, never from allocation order.
    EXPECT_EQ(transferSpan(3, 7), transferSpan(3, 7));
    EXPECT_EQ(spanChild(transferSpan(3, 7), 2),
              spanChild(transferSpan(3, 7), 2));
}

TEST(Span, Rendering)
{
    EXPECT_EQ(spanStr(kSpanNone), "-");
    EXPECT_EQ(spanStr(transferSpan(5, 12)), "5:12");
    EXPECT_EQ(spanStr(spanChild(transferSpan(5, 12), 0)), "5:12/hop0");
    EXPECT_EQ(spanStr(spanChild(transferSpan(5, 12), 3)), "5:12/hop3");
}

} // namespace
} // namespace tsm
