#include <gtest/gtest.h>

#include "compiler/cost_model.hh"
#include "compiler/graph.hh"

namespace tsm {
namespace {

TEST(TensorShape, ElementsAndBytes)
{
    TensorShape s{{384, 1024}, DType::Fp16};
    EXPECT_EQ(s.elements(), 384u * 1024);
    EXPECT_EQ(s.bytes(), 384u * 1024 * 2);
    EXPECT_EQ(s.vectors(), (384u * 1024 * 2 + 319) / 320);
    s.dtype = DType::Int8;
    EXPECT_EQ(s.bytes(), 384u * 1024);
}

TEST(Graph, MatMulFlops)
{
    Graph g;
    const NodeId a = g.addInput({{128, 256}, DType::Fp16});
    const NodeId w = g.addWeights({{256, 512}, DType::Fp16});
    const NodeId mm = g.addMatMul(a, w, 128, 256, 512);
    EXPECT_DOUBLE_EQ(g.node(mm).flops(), 2.0 * 128 * 256 * 512);
    g.validate();
}

TEST(Graph, TopoOrderIsConstructionOrder)
{
    Graph g;
    const NodeId a = g.addInput({{4, 4}, DType::Fp16});
    const NodeId b = g.addSoftmax(a);
    const NodeId c = g.addOutput(b);
    const auto order = g.topoOrder();
    EXPECT_EQ(order, (std::vector<NodeId>{a, b, c}));
}

TEST(Graph, ConsumersTracked)
{
    Graph g;
    const NodeId a = g.addInput({{4, 4}, DType::Fp16});
    const NodeId b = g.addSoftmax(a);
    const NodeId c = g.addLayerNorm(a);
    const auto consumers = g.consumers(a);
    EXPECT_EQ(consumers, (std::vector<NodeId>{b, c}));
}

TEST(Graph, WeightBytesSumOverWeightNodes)
{
    Graph g;
    g.addWeights({{1024, 1024}, DType::Fp16});
    g.addWeights({{1024, 4096}, DType::Fp16});
    EXPECT_EQ(g.weightBytes(),
              Bytes(1024) * 1024 * 2 + Bytes(1024) * 4096 * 2);
}

TEST(CostModel, MatMulCyclesMatchSubops)
{
    TspCostModel cost;
    Graph g;
    const NodeId a = g.addInput({{320, 160}, DType::Fp16});
    const NodeId w = g.addWeights({{160, 320}, DType::Fp16});
    const NodeId mm = g.addMatMul(a, w, 320, 160, 320);
    // 320 rows x 1 n-tile x 1 k-tile = 320 sub-ops, 2 per cycle.
    EXPECT_EQ(cost.nodeCycles(g.node(mm)),
              320u / 2 + cost.opOverheadCycles);
}

TEST(CostModel, PcieTimeHasInvocationFloor)
{
    TspCostModel cost;
    EXPECT_GE(cost.pcieSeconds(1), cost.pcieInvocationSec);
    const double one_gb = cost.pcieSeconds(1'000'000'000);
    EXPECT_NEAR(one_gb, cost.pcieInvocationSec + 1e9 / 25.6e9, 1e-4);
}

TEST(CostModel, GraphCyclesAccumulate)
{
    TspCostModel cost;
    Graph g;
    const NodeId a = g.addInput({{320, 160}, DType::Fp16});
    const NodeId w = g.addWeights({{160, 320}, DType::Fp16});
    g.addMatMul(a, w, 320, 160, 320);
    g.addMatMul(a, w, 320, 160, 320);
    EXPECT_EQ(cost.graphCycles(g),
              2 * (320u / 2 + cost.opOverheadCycles));
}

} // namespace
} // namespace tsm
