#include <gtest/gtest.h>

#include "compiler/cost_model.hh"
#include "ssn/scheduler.hh"
#include "workload/bert.hh"

namespace tsm {
namespace {

/**
 * End-to-end compiler path: BERT blocks -> pipeline plan -> stage
 * boundary transfers -> SSN schedule on the real node topology.
 * Closes the loop between the analytic plan and the network layer.
 */
TEST(LoweringIntegration, BertPipelineTransfersScheduleCleanly)
{
    const TspCostModel cost;
    const auto blocks = bertBlocks(BertConfig::large(), cost);
    const auto plan =
        planPipeline(blocks, 4, BalanceMode::MovementAware);

    const auto transfers = plan.transfers(1);
    ASSERT_EQ(transfers.size(), 3u);

    const Topology topo = Topology::makeNode();
    SsnScheduler scheduler(topo);
    const auto sched = scheduler.schedule(transfers);
    const auto report = validateSchedule(sched, topo);
    EXPECT_TRUE(report.ok) << report.firstViolation;

    // The scheduled boundary transfer time must not exceed the plan's
    // per-stage comm estimate by much (the estimate assumed 2 links;
    // the scheduler may find more diversity and beat it).
    for (const auto &t : transfers) {
        const Cycle scheduled_time =
            sched.flows.at(t.flow).lastArrival -
            sched.flows.at(t.flow).firstDeparture;
        EXPECT_LT(scheduled_time, 2 * plan.stages[0].commCycles + 2000)
            << "flow " << t.flow;
    }
}

TEST(LoweringIntegration, PipelinedStagesOverlapInTheSchedule)
{
    // Consecutive stage boundaries release at increasing times; the
    // schedule must respect each earliest, and the later transfer's
    // injection must not wait for the earlier one to finish (they use
    // disjoint links: 0->1 vs 1->2).
    const TspCostModel cost;
    const auto blocks = bertBlocks(BertConfig::large(), cost);
    const auto plan =
        planPipeline(blocks, 4, BalanceMode::MovementAware);
    const auto transfers = plan.transfers(1);

    const Topology topo = Topology::makeNode();
    SsnScheduler scheduler(topo);
    const auto sched = scheduler.schedule(transfers);
    for (const auto &t : transfers)
        EXPECT_EQ(sched.flows.at(t.flow).firstDeparture, t.earliest);
}

TEST(LoweringIntegration, SixteenStagePipelineNeedsTwoNodes)
{
    // A 16-TSP pipeline spans two nodes; the boundary crossing nodes
    // must route over global links and still validate.
    const TspCostModel cost;
    const auto blocks =
        bertBlocks(BertConfig::large().withEncoders(96), cost);
    const auto plan =
        planPipeline(blocks, 16, BalanceMode::MovementAware);
    ASSERT_EQ(plan.stages.size(), 16u);

    const Topology topo = Topology::makeSingleLevel(2);
    SsnScheduler scheduler(topo);
    const auto sched = scheduler.schedule(plan.transfers(1));
    EXPECT_TRUE(validateSchedule(sched, topo).ok);
    // The 7->8 boundary crosses nodes.
    bool crossed = false;
    for (const auto &sv : sched.vectors) {
        if (sv.flow != 8)
            continue;
        for (const auto &hop : sv.hops)
            crossed |=
                topo.links()[hop.link].cls != LinkClass::IntraNode;
    }
    EXPECT_TRUE(crossed);
}

} // namespace
} // namespace tsm
