#include <gtest/gtest.h>

#include "compiler/pipeline.hh"

namespace tsm {
namespace {

std::vector<BlockCost>
uniformBlocks(unsigned n, Cycle compute, Cycle movement, Bytes act)
{
    std::vector<BlockCost> blocks(n);
    for (auto &b : blocks) {
        b.computeCycles = compute;
        b.movementCycles = movement;
        b.activationBytes = act;
    }
    return blocks;
}

TEST(Pipeline, EvenSplitOfUniformBlocks)
{
    const auto blocks = uniformBlocks(24, 1000, 0, 0);
    const auto plan =
        planPipeline(blocks, 4, BalanceMode::MovementAware);
    ASSERT_EQ(plan.stages.size(), 4u);
    for (const auto &s : plan.stages) {
        EXPECT_EQ(s.numBlocks, 6u);
        EXPECT_EQ(s.computeCycles, 6000u);
    }
    EXPECT_EQ(plan.bottleneckCycles(), 6000u);
    EXPECT_EQ(plan.latencyCycles(), 24000u);
}

TEST(Pipeline, MoreDevicesThanBlocksClamps)
{
    const auto blocks = uniformBlocks(3, 100, 0, 0);
    const auto plan =
        planPipeline(blocks, 8, BalanceMode::MovementAware);
    EXPECT_EQ(plan.stages.size(), 3u);
}

TEST(Pipeline, NonUniformBlocksBalanceByDp)
{
    // Block costs 1,1,1,10: the optimal 2-way cut isolates the heavy
    // block.
    std::vector<BlockCost> blocks = uniformBlocks(4, 1, 0, 0);
    blocks[3].computeCycles = 10;
    const auto plan =
        planPipeline(blocks, 2, BalanceMode::MovementAware);
    EXPECT_EQ(plan.stages[0].numBlocks, 3u);
    EXPECT_EQ(plan.stages[1].numBlocks, 1u);
    EXPECT_EQ(plan.bottleneckCycles(), 10u);
}

TEST(Pipeline, FlopsOnlyPaysMovementAndCommSerially)
{
    const auto blocks = uniformBlocks(8, 1000, 120, 32000);
    const auto naive = planPipeline(blocks, 4, BalanceMode::FlopsOnly);
    const auto opt =
        planPipeline(blocks, 4, BalanceMode::MovementAware);
    // Fig 20: the optimized compiler realizes higher throughput.
    EXPECT_GT(naive.bottleneckCycles(), opt.bottleneckCycles());
    EXPECT_GT(opt.throughputPerSec(), naive.throughputPerSec());
}

TEST(Pipeline, OverlapHidesCommUnderCompute)
{
    // Comm (2400 cycles for 100 vectors) < compute: fully hidden.
    const auto blocks = uniformBlocks(4, 5000, 0, 100 * 320);
    const auto plan =
        planPipeline(blocks, 4, BalanceMode::MovementAware);
    EXPECT_EQ(plan.bottleneckCycles(), 5000u);
}

TEST(Pipeline, CommBoundStageShowsInBottleneck)
{
    // Tiny compute, huge activations: stages become comm-bound.
    const auto blocks = uniformBlocks(4, 10, 0, 10000 * 320);
    const auto plan =
        planPipeline(blocks, 4, BalanceMode::MovementAware);
    EXPECT_GT(plan.bottleneckCycles(), 10u * 24 * 100);
}

TEST(Pipeline, LastStageHasNoBoundaryComm)
{
    const auto blocks = uniformBlocks(4, 100, 0, 320 * 50);
    const auto plan =
        planPipeline(blocks, 4, BalanceMode::MovementAware);
    EXPECT_GT(plan.stages[0].commCycles, 0u);
    EXPECT_EQ(plan.stages.back().commCycles, 0u);
}

TEST(Pipeline, TransfersChainConsecutiveDevices)
{
    const auto blocks = uniformBlocks(4, 100, 0, 320 * 10);
    const auto plan =
        planPipeline(blocks, 4, BalanceMode::MovementAware);
    const auto transfers = plan.transfers(5);
    ASSERT_EQ(transfers.size(), 3u);
    for (std::size_t i = 0; i < transfers.size(); ++i) {
        EXPECT_EQ(transfers[i].flow, FlowId(5 + i));
        EXPECT_EQ(transfers[i].src, TspId(i));
        EXPECT_EQ(transfers[i].dst, TspId(i + 1));
        EXPECT_GT(transfers[i].vectors, 0u);
    }
    // Later boundaries release later (pipeline order).
    EXPECT_LT(transfers[0].earliest, transfers[2].earliest);
}

TEST(Pipeline, ThroughputUsesNominalClock)
{
    const auto blocks = uniformBlocks(1, 900'000, 0, 0); // 1 ms
    const auto plan =
        planPipeline(blocks, 1, BalanceMode::MovementAware);
    EXPECT_NEAR(plan.throughputPerSec(), 1000.0, 1.0);
}

TEST(Pipeline, FitChecksWeightCapacity)
{
    // A stage holding more than ~188 MiB of weights does not fit.
    auto blocks = uniformBlocks(4, 100, 0, 0);
    for (auto &b : blocks)
        b.weightBytes = 60 * kMiB;
    const auto one_chip =
        planPipeline(blocks, 1, BalanceMode::MovementAware);
    EXPECT_FALSE(one_chip.fits()); // 240 MiB on one TSP
    const auto two_chips =
        planPipeline(blocks, 2, BalanceMode::MovementAware);
    EXPECT_TRUE(two_chips.fits()); // 120 MiB per TSP
}

} // namespace
} // namespace tsm
