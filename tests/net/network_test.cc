#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "common/stats.hh"
#include "net/network.hh"
#include "net/topology.hh"
#include "sim/event_queue.hh"

namespace tsm {
namespace {

class NetFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        topo = Topology::makeNode();
        net = std::make_unique<Network>(topo, eq, Rng(7));
        link01 = topo.linksBetween(0, 1)[0];
    }

    Flit
    flit(FlowId f, std::uint32_t seq)
    {
        Flit fl;
        fl.flow = f;
        fl.seq = seq;
        return fl;
    }

    Topology topo;
    EventQueue eq;
    std::unique_ptr<Network> net;
    LinkId link01 = 0;
};

TEST_F(NetFixture, DeliveryTimingIsExact)
{
    const Tick arrive = net->transmit(0, link01, flit(1, 0), 0);
    EXPECT_EQ(arrive, Tick(kVectorSerializationPs) +
                          linkPropagationPs(LinkClass::IntraNode));
    eq.run();
    const auto got = net->pollRx(1, topo.links()[link01].portB);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->arrival, arrive);
    EXPECT_EQ(got->flit.flow, 1u);
}

TEST_F(NetFixture, SerializationWindowEnforced)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    net->transmit(0, link01, flit(1, 0), 0);
    EXPECT_DEATH(net->transmit(0, link01, flit(1, 1), 100), "conflict");
}

TEST_F(NetFixture, BackToBackAtSerializationRate)
{
    const Tick ser = Tick(kVectorSerializationPs);
    for (unsigned s = 0; s < 100; ++s)
        net->transmit(0, link01, flit(1, s), s * ser);
    eq.run();
    EXPECT_EQ(net->linkStats(link01).flits, 100u);
    // All arrive in order.
    Tick prev = 0;
    for (unsigned s = 0; s < 100; ++s) {
        const auto got = net->pollRx(1, topo.links()[link01].portB);
        ASSERT_TRUE(got);
        EXPECT_EQ(got->flit.seq, s);
        EXPECT_GT(got->arrival, prev);
        prev = got->arrival;
    }
}

TEST_F(NetFixture, OppositeDirectionsDoNotConflict)
{
    net->transmit(0, link01, flit(1, 0), 0);
    net->transmit(1, link01, flit(2, 0), 0); // other direction, same time
    eq.run();
    EXPECT_TRUE(net->pollRx(1, topo.links()[link01].portB).has_value());
    EXPECT_TRUE(net->pollRx(0, topo.links()[link01].portA).has_value());
}

TEST_F(NetFixture, EarliestDepartureTracksBusyWindow)
{
    EXPECT_EQ(net->earliestDeparture(0, link01, 0), 0u);
    net->transmit(0, link01, flit(1, 0), 0);
    EXPECT_EQ(net->earliestDeparture(0, link01, 0),
              Tick(kVectorSerializationPs));
}

TEST_F(NetFixture, JitterPerturbsOnlyWhenEnabled)
{
    // Without jitter, two transmits have identical flight times.
    const Tick a1 = net->transmit(0, link01, flit(1, 0), 0);
    const Tick a2 =
        net->transmit(0, link01, flit(1, 1), Tick(kVectorSerializationPs));
    EXPECT_EQ(a2 - a1, Tick(kVectorSerializationPs));

    net->setJitterEnabled(true);
    Accumulator flight;
    Tick depart = 10 * Tick(kVectorSerializationPs);
    for (int i = 0; i < 200; ++i) {
        const Tick arr = net->transmit(0, link01, flit(1, 2 + i), depart);
        flight.add(double(arr - depart));
        depart = arr + Tick(kVectorSerializationPs);
    }
    // Mean close to nominal, nonzero spread close to configured sigma.
    const double nominal = kVectorSerializationPs +
                           double(linkPropagationPs(LinkClass::IntraNode));
    const double sigma = double(linkJitterPs(LinkClass::IntraNode));
    EXPECT_NEAR(flight.mean(), nominal, 4.0 * sigma / std::sqrt(200.0));
    EXPECT_GT(flight.stddev(), 0.5 * sigma);
    EXPECT_LT(flight.stddev(), 1.5 * sigma);
}

TEST_F(NetFixture, ControlTransmitBypassesSerializationWindow)
{
    net->transmit(0, link01, flit(1, 0), 0);
    // Would panic if it used the data path.
    net->controlTransmit(0, link01, flit(kFlowHacExchange, 0));
    eq.run();
    EXPECT_EQ(net->rxDepth(1, topo.links()[link01].portB), 2u);
}

TEST_F(NetFixture, FecCorrectsSbeWithoutCorruption)
{
    ErrorModel em;
    em.sbePerVector = 1.0; // every vector takes a correctable hit
    net->setErrorModel(em);
    net->transmit(0, link01, flit(1, 0), 0);
    eq.run();
    const auto got = net->pollRx(1, topo.links()[link01].portB);
    ASSERT_TRUE(got);
    EXPECT_FALSE(got->flit.corrupt);
    EXPECT_EQ(net->linkStats(link01).sbeCorrected, 1u);
}

TEST_F(NetFixture, FecFlagsMbeAsCorrupt)
{
    ErrorModel em;
    em.mbePerVector = 1.0;
    net->setErrorModel(em);
    const Tick t_clean = net->transmit(0, link01, flit(1, 0), 0);
    eq.run();
    const auto got = net->pollRx(1, topo.links()[link01].portB);
    ASSERT_TRUE(got);
    EXPECT_TRUE(got->flit.corrupt);
    // Timing is unchanged by the error (FEC, not retry) — this is the
    // paper's core argument for FEC over link-layer replay.
    EXPECT_EQ(got->arrival, t_clean);
    EXPECT_EQ(net->totalMbes(), 1u);
}

TEST_F(NetFixture, SinkTakesDeliveryInsteadOfFifo)
{
    struct Recorder : FlitSink
    {
        unsigned port = 999;
        std::uint32_t flow = 0;
        void
        flitArrived(unsigned p, const ArrivedFlit &af) override
        {
            port = p;
            flow = af.flit.flow;
        }
    } rec;
    net->attachSink(1, &rec);
    net->transmit(0, link01, flit(5, 0), 0);
    eq.run();
    EXPECT_EQ(rec.flow, 5u);
    EXPECT_EQ(rec.port, topo.links()[link01].portB);
    EXPECT_EQ(net->rxDepth(1, rec.port), 0u);
}

TEST_F(NetFixture, DisabledLinkRejectsTraffic)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Topology t2 = Topology::makeSingleLevel(2);
    Network n2(t2, eq, Rng(9));
    const auto dead = t2.disableNode(1);
    ASSERT_FALSE(dead.empty());
    EXPECT_DEATH(n2.transmit(t2.links()[dead[0]].a, dead[0], Flit{}, 0),
                 "out-of-service");
}

TEST_F(NetFixture, StatsAccumulateBusyTime)
{
    for (unsigned s = 0; s < 5; ++s)
        net->transmit(0, link01, flit(1, s),
                      s * 2 * Tick(kVectorSerializationPs));
    eq.run();
    EXPECT_EQ(net->linkStats(link01).busyPs,
              5 * Tick(kVectorSerializationPs));
    EXPECT_EQ(net->totalFlits(), 5u);
}

} // namespace
} // namespace tsm
