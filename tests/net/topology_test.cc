#include <gtest/gtest.h>

#include <set>

#include "net/topology.hh"

namespace tsm {
namespace {

TEST(TopologyNode, FullMeshHas28Links)
{
    const Topology t = Topology::makeNode();
    EXPECT_EQ(t.numTsps(), 8u);
    // Paper §2.3: 28 internal cables fully connect 8 TSPs.
    EXPECT_EQ(t.links().size(), 28u);
    EXPECT_TRUE(t.connected());
    EXPECT_EQ(t.diameter(), 1u);
    for (TspId a = 0; a < 8; ++a)
        for (TspId b = a + 1; b < 8; ++b)
            EXPECT_EQ(t.linksBetween(a, b).size(), 1u);
}

TEST(TopologyNode, PortsAreExclusive)
{
    const Topology t = Topology::makeNode();
    for (TspId tsp = 0; tsp < 8; ++tsp) {
        std::set<unsigned> used;
        for (LinkId l : t.linksAt(tsp)) {
            const unsigned port = t.links()[l].portAt(tsp);
            EXPECT_LT(port, kLocalPortsPerTsp);
            EXPECT_TRUE(used.insert(port).second)
                << "port reused on tsp " << tsp;
        }
        EXPECT_EQ(used.size(), 7u);
    }
}

TEST(TopologyNode, TripleRingWiring)
{
    const Topology t = Topology::makeNode(NodeWiring::TripleRing);
    EXPECT_TRUE(t.connected());
    // 8 x 3 ring links + 4 diagonals = 28 links again (all 7 local
    // ports used), but with 3x parallel nearest-neighbour bandwidth.
    EXPECT_EQ(t.links().size(), 28u);
    EXPECT_EQ(t.linksBetween(0, 1).size(), 3u);
    EXPECT_EQ(t.linksBetween(0, 4).size(), 1u); // diagonal
    EXPECT_EQ(t.linksBetween(0, 2).size(), 0u);
    EXPECT_LE(t.diameter(), 2u);
}

TEST(TopologySingleLevel, MaxConfig264Tsps)
{
    const Topology t = Topology::makeSingleLevel(33);
    EXPECT_EQ(t.numTsps(), 264u);
    EXPECT_TRUE(t.connected());
    // Paper §2.2: three-hop topology with minimal routing.
    EXPECT_EQ(t.diameter(), 3u);
    // 33 nodes all-to-all, one link per pair.
    unsigned global = 0;
    for (const auto &l : t.links())
        global += l.cls != LinkClass::IntraNode;
    EXPECT_EQ(global, 33u * 32 / 2);
}

TEST(TopologySingleLevel, SpareGlobalPortsBecomeParallelLinks)
{
    const Topology t = Topology::makeSingleLevel(2);
    // 2 nodes: 32 links between them (all global ports used).
    unsigned between = 0;
    for (const auto &l : t.links())
        if (l.cls != LinkClass::IntraNode)
            ++between;
    EXPECT_EQ(between, 32u);
    EXPECT_EQ(t.diameter(), 2u);
}

TEST(TopologySingleLevel, GlobalPortBudgetRespected)
{
    for (unsigned nodes : {3u, 5u, 9u, 17u, 33u}) {
        const Topology t = Topology::makeSingleLevel(nodes);
        std::vector<unsigned> global_ports(t.numTsps(), 0);
        for (const auto &l : t.links()) {
            if (l.cls == LinkClass::IntraNode)
                continue;
            ++global_ports[l.a];
            ++global_ports[l.b];
        }
        for (unsigned g : global_ports)
            EXPECT_LE(g, kGlobalPortsPerTsp);
        EXPECT_TRUE(t.connected());
        EXPECT_LE(t.diameter(), 3u);
    }
}

TEST(TopologyTwoLevel, RackStructure)
{
    const Topology t = Topology::makeTwoLevel(4);
    EXPECT_EQ(t.numTsps(), 4u * 72);
    EXPECT_EQ(t.numRacks(), 4u);
    EXPECT_TRUE(t.connected());
    // Paper §2.2: at most 5-hop diameter with minimal routing.
    EXPECT_LE(t.diameter(), 5u);

    // Intra-rack: every node pair doubly connected.
    EXPECT_EQ(t.rackOf(0), 0u);
    EXPECT_EQ(t.rackOf(71), 0u);
    EXPECT_EQ(t.rackOf(72), 1u);
}

TEST(TopologyTwoLevel, PortBudgets)
{
    const Topology t = Topology::makeTwoLevel(3);
    std::vector<unsigned> local_ports(t.numTsps(), 0);
    std::vector<unsigned> global_ports(t.numTsps(), 0);
    for (const auto &l : t.links()) {
        auto &v = l.cls == LinkClass::IntraNode ? local_ports : global_ports;
        ++v[l.a];
        ++v[l.b];
    }
    for (unsigned i = 0; i < t.numTsps(); ++i) {
        EXPECT_LE(local_ports[i], kLocalPortsPerTsp);
        EXPECT_LE(global_ports[i], kGlobalPortsPerTsp);
    }
}

TEST(TopologyTwoLevel, MaxSystemIsTenThousandFourForty)
{
    // Construct the paper's maximum configuration: 145 racks.
    const Topology t = Topology::makeTwoLevel(145);
    EXPECT_EQ(t.numTsps(), 10440u);
    EXPECT_TRUE(t.connected());
    // 145 racks all-to-all: one inter-rack link per rack pair.
    unsigned inter = 0;
    for (const auto &l : t.links())
        inter += l.cls == LinkClass::InterRack;
    EXPECT_EQ(inter, 145u * 144 / 2);
}

TEST(TopologyForSystemSize, PicksPackagingLevel)
{
    EXPECT_EQ(Topology::forSystemSize(4).numNodes(), 1u);
    EXPECT_EQ(Topology::forSystemSize(8).numNodes(), 1u);
    EXPECT_EQ(Topology::forSystemSize(16).numNodes(), 2u);
    EXPECT_EQ(Topology::forSystemSize(264).numNodes(), 33u);
    EXPECT_EQ(Topology::forSystemSize(265).numRacks(), 4u);
    EXPECT_EQ(Topology::forSystemSize(10440).numRacks(), 145u);
}

TEST(TopologyPaths, MinimalAndNonMinimalWithinNode)
{
    const Topology t = Topology::makeNode();
    const auto minimal = t.minimalPaths(0, 1);
    ASSERT_EQ(minimal.size(), 1u);
    EXPECT_EQ(minimal[0].size(), 1u);

    // Paper §4.3: 1 minimal + 7 non-minimal paths inside a node.
    const auto all = t.paths(0, 1, /*extra=*/1, /*limit=*/32);
    EXPECT_EQ(all.size(), 7u); // 1 direct + 6 two-hop via peers
    unsigned two_hop = 0;
    for (const auto &p : all)
        two_hop += p.size() == 2;
    EXPECT_EQ(two_hop, 6u);
}

TEST(TopologyPaths, PathLatencyAccumulates)
{
    const Topology t = Topology::makeNode();
    const auto paths = t.paths(0, 1, 1, 8);
    EXPECT_EQ(t.pathLatencyPs(paths[0]), hopLatencyPs(LinkClass::IntraNode));
    EXPECT_EQ(t.pathLatencyPs(paths.back()),
              2 * hopLatencyPs(LinkClass::IntraNode));
}

TEST(TopologyPaths, DeterministicOrder)
{
    const Topology t = Topology::makeSingleLevel(4);
    const auto a = t.paths(0, 31, 1, 16);
    const auto b = t.paths(0, 31, 1, 16);
    EXPECT_EQ(a, b);
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_LE(a[i - 1].size(), a[i].size());
}

TEST(TopologyFault, DisableNodeKeepsRestConnected)
{
    Topology t = Topology::makeSingleLevel(4);
    const auto disabled = t.disableNode(1);
    EXPECT_FALSE(disabled.empty());
    // All remaining TSPs can still reach each other (edge/node
    // symmetry, paper §4.5).
    for (TspId a = 0; a < 8; ++a)
        for (TspId b = 16; b < 24; ++b)
            EXPECT_NE(t.distance(a, b), ~0u);
    // The disabled node is unreachable.
    EXPECT_EQ(t.distance(0, 8), ~0u);
}

TEST(TopologyBisection, NodeAndSystem)
{
    // Node: 4x4 = 16 links cross the bisection of the 8-clique.
    EXPECT_EQ(Topology::makeNode().bisectionLinks(), 16u);
    const Topology t = Topology::makeSingleLevel(32);
    EXPECT_GT(t.bisectionLinks(), 0u);
}

} // namespace
} // namespace tsm
