/**
 * @file
 * Golden-file pins for the checked-in scenario documents: each ported
 * figure scenario must (1) be stored in canonical serialized form,
 * and (2) produce a byte-identical tsm-journal-v1 stream to the
 * hand-built C++ transfer list it replaced — the porting-was-lossless
 * proof the determinism layer makes checkable.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "prof/report.hh"
#include "runtime/traced_scenario.hh"
#include "scenario/runner.hh"
#include "scenario/scenario.hh"
#include "telemetry/progress.hh"
#include "telemetry/timeline.hh"
#include "trace/journal.hh"

namespace tsm {
namespace {

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot open " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

Scenario
loadChecked(const std::string &path)
{
    Scenario sc;
    std::string error;
    EXPECT_TRUE(loadScenarioFile(path, sc, &error)) << error;
    return sc;
}

/** Journal of a hand-built transfer list, as the pre-port bench ran. */
std::string
journalOfTransfers(const Topology &topo,
                   const std::vector<TensorTransfer> &transfers,
                   const std::string &bench, std::uint64_t seed = 1,
                   SsnConfig ssn = {})
{
    std::ostringstream text;
    JournalSink sink(text);
    TraceSession inactive;
    runScheduledScenario(inactive, topo, transfers, bench, seed, 0.0,
                         ssn, {&sink});
    return text.str();
}

void
expectCanonicalOnDisk(const std::string &path)
{
    const Scenario sc = loadChecked(path);
    EXPECT_EQ(dumpScenario(sc), fileBytes(path))
        << path << " is not stored in canonical serialized form";
}

TEST(ScenarioGolden, Fig08FileMatchesPrePortTransfers)
{
    const std::string path =
        TSM_SCENARIO_DIR "/fig08_ssn_vs_hw_contention.json";
    expectCanonicalOnDisk(path);

    // The exact flows the bench hand-built before the port: four
    // contending senders onto TSP 2 inside the triple-ring node,
    // seed 6, two extra hops of non-minimal spreading.
    const Topology node = Topology::makeNode(NodeWiring::TripleRing);
    std::vector<TensorTransfer> transfers;
    for (unsigned f = 0; f < 4; ++f) {
        TensorTransfer t;
        t.flow = f + 1;
        t.src = TspId(f < 2 ? f : f + 1); // 0, 1, 3, 4
        t.dst = 2;
        t.vectors = 256;
        transfers.push_back(t);
    }
    const std::string golden =
        journalOfTransfers(node, transfers, "fig08_ssn_vs_hw_contention",
                           6, {.maxExtraHops = 2});

    const ScenarioExecution exec = executeScenario(loadChecked(path));
    EXPECT_FALSE(exec.journal.empty());
    EXPECT_EQ(exec.journal, golden);
}

TEST(ScenarioGolden, Fig10FileMatchesPrePortTransfers)
{
    const std::string path =
        TSM_SCENARIO_DIR "/fig10_nonminimal_routing.json";
    expectCanonicalOnDisk(path);

    // The figure's scheduler cross-check transfer: 64 KB from TSP 0
    // to TSP 1 spread across the full mesh's non-minimal paths.
    const Topology node = Topology::makeNode();
    TensorTransfer t;
    t.flow = 1;
    t.src = 0;
    t.dst = 1;
    t.vectors = std::uint32_t(bytesToVectors(64 * kKiB));
    const std::string golden =
        journalOfTransfers(node, {t}, "fig10_nonminimal_routing");

    const ScenarioExecution exec = executeScenario(loadChecked(path));
    EXPECT_FALSE(exec.journal.empty());
    EXPECT_EQ(exec.journal, golden);
}

TEST(ScenarioGolden, Fig14FileMatchesPrePortTransfers)
{
    const std::string path =
        TSM_SCENARIO_DIR "/fig14_distributed_matmul.json";
    expectCanonicalOnDisk(path);

    // The exact loop the bench ran before the port.
    const Topology node = Topology::makeNode();
    std::vector<TensorTransfer> transfers;
    for (unsigned f = 1; f < node.numTsps(); ++f) {
        TensorTransfer t;
        t.flow = f;
        t.src = TspId(f);
        t.dst = 0;
        t.vectors = 48;
        transfers.push_back(t);
    }
    const std::string golden = journalOfTransfers(
        node, transfers, "fig14_distributed_matmul");

    const ScenarioExecution exec = executeScenario(loadChecked(path));
    EXPECT_FALSE(exec.journal.empty());
    EXPECT_EQ(exec.journal, golden);
}

TEST(ScenarioGolden, Fig17FileMatchesPrePortTransfers)
{
    const std::string path = TSM_SCENARIO_DIR "/fig17_bert_latency.json";
    expectCanonicalOnDisk(path);

    const Topology node = Topology::makeNode();
    std::vector<TensorTransfer> transfers;
    for (unsigned hop = 0; hop < 3; ++hop) {
        TensorTransfer t;
        t.flow = FlowId(hop + 1);
        t.src = TspId(hop);
        t.dst = TspId(hop + 1);
        t.vectors = 64;
        t.earliest = Cycle(hop) * 20000;
        transfers.push_back(t);
    }
    const std::string golden =
        journalOfTransfers(node, transfers, "fig17_bert_latency");

    const ScenarioExecution exec = executeScenario(loadChecked(path));
    EXPECT_FALSE(exec.journal.empty());
    EXPECT_EQ(exec.journal, golden);
}

TEST(ScenarioGolden, Fig19FileMatchesPrePortTransfers)
{
    const std::string path = TSM_SCENARIO_DIR "/fig19_cholesky.json";
    expectCanonicalOnDisk(path);

    const Topology node = Topology::makeNode();
    std::vector<TensorTransfer> transfers;
    FlowId flow = 1;
    for (unsigned round = 0; round < 3; ++round) {
        const TspId owner = TspId(round);
        const std::uint32_t panel = 48 - 12 * round;
        for (TspId t = 0; t < 4; ++t) {
            if (t == owner)
                continue;
            TensorTransfer x;
            x.flow = flow++;
            x.src = owner;
            x.dst = t;
            x.vectors = panel;
            x.earliest = Cycle(round) * 15000;
            transfers.push_back(x);
        }
    }
    const std::string golden =
        journalOfTransfers(node, transfers, "fig19_cholesky");

    const ScenarioExecution exec = executeScenario(loadChecked(path));
    EXPECT_FALSE(exec.journal.empty());
    EXPECT_EQ(exec.journal, golden);
}

TEST(ScenarioGolden, TrafficFilesMatchGeneratedTraffic)
{
    // Every checked-in traffic scenario lowers to exactly the
    // transfer list generateTraffic produced for the pre-port bench.
    for (const char *prefix : {"node_", "system2_"}) {
        const std::uint32_t vectors =
            std::string(prefix) == "node_" ? 64 : 32;
        for (TrafficPattern p : allTrafficPatterns()) {
            const std::string path = std::string(TSM_SCENARIO_DIR) +
                                     "/traffic/" + prefix +
                                     trafficPatternName(p) + ".json";
            expectCanonicalOnDisk(path);
            const Scenario sc = loadChecked(path);
            const Topology topo = sc.topology.build();
            const auto lowered = lowerScenario(sc, topo);
            const auto expected = generateTraffic(topo, p, vectors, 7);
            ASSERT_EQ(lowered.transfers.size(), expected.size())
                << path;
            for (std::size_t i = 0; i < expected.size(); ++i) {
                EXPECT_EQ(lowered.transfers[i].flow, expected[i].flow);
                EXPECT_EQ(lowered.transfers[i].src, expected[i].src);
                EXPECT_EQ(lowered.transfers[i].dst, expected[i].dst);
                EXPECT_EQ(lowered.transfers[i].vectors,
                          expected[i].vectors);
                EXPECT_EQ(lowered.transfers[i].earliest,
                          expected[i].earliest);
            }
        }
    }
}

TEST(ScenarioGolden, ExecuteScenarioWaterfallsAreExact)
{
    // The fuzzer's waterfall invariant holds on the real figure
    // scenarios too, not just generated ones.
    for (const char *name :
         {"/fig08_ssn_vs_hw_contention.json",
          "/fig10_nonminimal_routing.json",
          "/fig14_distributed_matmul.json", "/fig17_bert_latency.json",
          "/fig19_cholesky.json"}) {
        const ScenarioExecution exec = executeScenario(
            loadChecked(std::string(TSM_SCENARIO_DIR) + name));
        EXPECT_TRUE(exec.allSpansClosed()) << name;
        EXPECT_TRUE(exec.waterfallsExact()) << name;
        std::string why;
        EXPECT_TRUE(exec.blameExact(&why)) << name << ": " << why;
    }
}

} // namespace
} // namespace tsm
