/**
 * @file
 * Negative-path coverage of the strict scenario parser: every defect
 * class in ISSUE's checklist — unknown keys, out-of-range chip ids,
 * overlapping flow ids, zero-length tensors, malformed documents —
 * must fail with a distinct, actionable message (all prefixed
 * "scenario: " so bench loaders can print them verbatim and exit 2).
 */

#include <gtest/gtest.h>

#include <string>

#include "scenario/scenario.hh"

namespace tsm {
namespace {

/** A minimal valid document to mutate from. */
const char *kValid = R"({
  "schema": "tsm-scenario-v1",
  "name": "t",
  "flows": [
    {"id": 1, "src": 0, "dst": 1, "tensor": {"vectors": 4}}
  ]
})";

std::string
errorOf(const std::string &text)
{
    Scenario sc;
    std::string error;
    EXPECT_FALSE(parseScenario(text, sc, &error)) << text;
    EXPECT_EQ(error.rfind("scenario: ", 0), 0u)
        << "error lacks the scenario: prefix: " << error;
    return error;
}

void
expectFails(const std::string &text, const std::string &needle)
{
    const std::string error = errorOf(text);
    EXPECT_NE(error.find(needle), std::string::npos)
        << "expected \"" << needle << "\" in: " << error;
}

TEST(ScenarioParse, ValidMinimalDocument)
{
    Scenario sc;
    std::string error;
    ASSERT_TRUE(parseScenario(kValid, sc, &error)) << error;
    EXPECT_EQ(sc.name, "t");
    EXPECT_EQ(sc.flows.size(), 1u);
    EXPECT_EQ(sc.flows[0].tensor.vectors, 4u);
}

TEST(ScenarioParse, InvalidJsonIsDiagnosed)
{
    expectFails("{ not json", "invalid JSON");
}

TEST(ScenarioParse, NonObjectDocument)
{
    expectFails("[1, 2]", "document must be a JSON object");
}

TEST(ScenarioParse, MissingSchema)
{
    expectFails(R"({"name": "t", "flows": []})",
                "missing required key \"schema\"");
}

TEST(ScenarioParse, WrongSchema)
{
    expectFails(
        R"({"schema": "tsm-scenario-v9", "name": "t", "flows": []})",
        "schema is \"tsm-scenario-v9\", expected \"tsm-scenario-v1\"");
}

TEST(ScenarioParse, UnknownTopLevelKeyIsNamed)
{
    expectFails(R"({"schema": "tsm-scenario-v1", "name": "t",
                    "flowz": []})",
                "unknown key \"flowz\" in document");
}

TEST(ScenarioParse, UnknownFlowKeyNamesTheElement)
{
    expectFails(R"({"schema": "tsm-scenario-v1", "name": "t", "flows": [
        {"id": 1, "src": 0, "dst": 1, "tensor": {"vectors": 4}},
        {"id": 2, "src": 1, "dst": 2, "tensor": {"vectors": 4},
         "colour": "red"}
    ]})",
                "unknown key \"colour\" in flow[1]");
}

TEST(ScenarioParse, MissingName)
{
    expectFails(R"({"schema": "tsm-scenario-v1", "flows": [
        {"id": 1, "src": 0, "dst": 1, "tensor": {"vectors": 4}}]})",
                "non-empty \"name\"");
}

TEST(ScenarioParse, NoTraffic)
{
    expectFails(R"({"schema": "tsm-scenario-v1", "name": "t"})",
                "declares no traffic");
}

TEST(ScenarioParse, ZeroLengthTensor)
{
    expectFails(R"({"schema": "tsm-scenario-v1", "name": "t", "flows": [
        {"id": 1, "src": 0, "dst": 1, "tensor": {"vectors": 0}}]})",
                "zero-length tensor");
}

TEST(ScenarioParse, ZeroLengthShapeTensor)
{
    expectFails(R"({"schema": "tsm-scenario-v1", "name": "t", "flows": [
        {"id": 1, "src": 0, "dst": 1,
         "tensor": {"shape": [0, 8], "dtype": "fp16"}}]})",
                "zero-length tensor");
}

TEST(ScenarioParse, TensorNeedsExactlyOneForm)
{
    expectFails(R"({"schema": "tsm-scenario-v1", "name": "t", "flows": [
        {"id": 1, "src": 0, "dst": 1,
         "tensor": {"vectors": 4, "shape": [2, 2]}}]})",
                "both \"vectors\" and \"shape\"");
    expectFails(R"({"schema": "tsm-scenario-v1", "name": "t", "flows": [
        {"id": 1, "src": 0, "dst": 1, "tensor": {}}]})",
                "either \"vectors\" or \"shape\"");
}

TEST(ScenarioParse, BadDtype)
{
    expectFails(R"({"schema": "tsm-scenario-v1", "name": "t", "flows": [
        {"id": 1, "src": 0, "dst": 1,
         "tensor": {"shape": [4, 4], "dtype": "fp64"}}]})",
                "dtype \"fp64\" is not one of fp16/fp32/int8");
}

TEST(ScenarioParse, ShapeResolvesToCeilOfVectorBytes)
{
    // 100 x 100 fp16 = 20000 B = 62.5 vectors -> 63.
    Scenario sc;
    std::string error;
    ASSERT_TRUE(parseScenario(
        R"({"schema": "tsm-scenario-v1", "name": "t", "flows": [
            {"id": 1, "src": 0, "dst": 1,
             "tensor": {"shape": [100, 100], "dtype": "fp16"}}]})",
        sc, &error))
        << error;
    EXPECT_EQ(sc.flows[0].tensor.vectors, 63u);
    EXPECT_TRUE(sc.flows[0].tensor.hasShape);
}

TEST(ScenarioParse, OutOfRangeChipNamesTopology)
{
    const std::string error =
        errorOf(R"({"schema": "tsm-scenario-v1", "name": "t", "flows": [
            {"id": 1, "src": 0, "dst": 11,
             "tensor": {"vectors": 4}}]})");
    EXPECT_NE(error.find("dst chip 11 out of range"), std::string::npos)
        << error;
    EXPECT_NE(error.find("8 TSPs"), std::string::npos) << error;
}

TEST(ScenarioParse, SelfLoopFlow)
{
    expectFails(R"({"schema": "tsm-scenario-v1", "name": "t", "flows": [
        {"id": 1, "src": 2, "dst": 2, "tensor": {"vectors": 4}}]})",
                "src == dst");
}

TEST(ScenarioParse, OverlappingFlowIds)
{
    expectFails(R"({"schema": "tsm-scenario-v1", "name": "t", "flows": [
        {"id": 3, "src": 0, "dst": 1, "tensor": {"vectors": 4}},
        {"id": 3, "src": 1, "dst": 2, "tensor": {"vectors": 4}}]})",
                "flow id 3 is used twice");
}

TEST(ScenarioParse, CollectiveCollidingWithFlowIds)
{
    // broadcast from root 0 on a node lowers to flows 5..11, which
    // overlaps the explicit flow 6.
    expectFails(R"({"schema": "tsm-scenario-v1", "name": "t",
        "flows": [
            {"id": 6, "src": 0, "dst": 1, "tensor": {"vectors": 4}}],
        "collectives": [
            {"op": "broadcast", "root": 0, "vectors": 2,
             "first_flow": 5}]})",
                "is used twice");
}

TEST(ScenarioParse, FlowIdZeroAndReservedIdsRejected)
{
    expectFails(R"({"schema": "tsm-scenario-v1", "name": "t", "flows": [
        {"id": 0, "src": 0, "dst": 1, "tensor": {"vectors": 4}}]})",
                "flow[0] id must be in 1..");
}

TEST(ScenarioParse, RingRejectsNodeCollectives)
{
    expectFails(R"({"schema": "tsm-scenario-v1", "name": "t",
        "topology": {"kind": "ring", "size": 6},
        "collectives": [{"op": "reduce_scatter", "vectors": 2}]})",
                "needs a node-based topology");
}

TEST(ScenarioParse, TopologyBounds)
{
    expectFails(R"({"schema": "tsm-scenario-v1", "name": "t",
        "topology": {"kind": "ring", "size": 2}, "flows": [
        {"id": 1, "src": 0, "dst": 1, "tensor": {"vectors": 4}}]})",
                "\"ring\" needs size in 3..64");
    expectFails(R"({"schema": "tsm-scenario-v1", "name": "t",
        "topology": {"kind": "mesh"}, "flows": [
        {"id": 1, "src": 0, "dst": 1, "tensor": {"vectors": 4}}]})",
                "not one of node/ring/single_level/two_level/system");
}

TEST(ScenarioParse, BadMbe)
{
    expectFails(R"({"schema": "tsm-scenario-v1", "name": "t",
        "mbe": 1.5, "flows": [
        {"id": 1, "src": 0, "dst": 1, "tensor": {"vectors": 4}}]})",
                "mbe must be in [0, 1]");
}

TEST(ScenarioParse, BadRole)
{
    expectFails(R"({"schema": "tsm-scenario-v1", "name": "t", "flows": [
        {"id": 1, "src": 0, "dst": 1, "tensor": {"vectors": 4},
         "role": "midground"}]})",
                "role \"midground\" is not");
}

TEST(ScenarioParse, BadPatternKind)
{
    expectFails(R"({"schema": "tsm-scenario-v1", "name": "t",
        "patterns": [{"kind": "tornado", "vectors": 4}]})",
                "kind \"tornado\" is not a known traffic pattern");
}

TEST(ScenarioParse, OversubscriptionIsDiagnosedNotPanicked)
{
    // 7 simultaneous 64-vector incast flows through one receiver on a
    // minimal-path-only policy exhaust its stream registers; the
    // parser must say so instead of letting the program builder panic.
    std::string doc = R"({"schema": "tsm-scenario-v1", "name": "t",
        "ssn": {"max_extra_hops": 0, "max_paths": 1},
        "flows": [)";
    for (int f = 1; f <= 7; ++f) {
        if (f > 1)
            doc += ",";
        doc += "{\"id\": " + std::to_string(f) + ", \"src\": " +
               std::to_string(f) +
               ", \"dst\": 0, \"tensor\": {\"vectors\": 200}}";
    }
    doc += "]}";
    Scenario sc;
    std::string error;
    if (!parseScenario(doc, sc, &error))
        EXPECT_NE(error.find("oversubscribes the machine"),
                  std::string::npos)
            << error;
    // (If the spill path absorbs it, the scenario is simply valid —
    // the property the test pins is "never panic".)
}

TEST(ScenarioParse, LoadScenarioFileReportsMissingPath)
{
    Scenario sc;
    std::string error;
    EXPECT_FALSE(
        loadScenarioFile("/nonexistent/nope.json", sc, &error));
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(ScenarioParse, DistinctMessagesPerDefectClass)
{
    // The checklist's "distinct actionable messages" claim, literally:
    // each defect class yields a different diagnosis.
    const std::string unknown =
        errorOf(R"({"schema": "tsm-scenario-v1", "name": "t",
                    "flowz": []})");
    const std::string range =
        errorOf(R"({"schema": "tsm-scenario-v1", "name": "t", "flows": [
            {"id": 1, "src": 0, "dst": 11,
             "tensor": {"vectors": 4}}]})");
    const std::string overlap =
        errorOf(R"({"schema": "tsm-scenario-v1", "name": "t", "flows": [
            {"id": 3, "src": 0, "dst": 1, "tensor": {"vectors": 4}},
            {"id": 3, "src": 1, "dst": 2,
             "tensor": {"vectors": 4}}]})");
    const std::string zero =
        errorOf(R"({"schema": "tsm-scenario-v1", "name": "t", "flows": [
            {"id": 1, "src": 0, "dst": 1,
             "tensor": {"vectors": 0}}]})");
    EXPECT_NE(unknown, range);
    EXPECT_NE(unknown, overlap);
    EXPECT_NE(unknown, zero);
    EXPECT_NE(range, overlap);
    EXPECT_NE(range, zero);
    EXPECT_NE(overlap, zero);
}

} // namespace
} // namespace tsm
