#include <gtest/gtest.h>

#include <memory>

#include "arch/chip.hh"
#include "compiler/pipeline.hh"
#include "ssn/scheduler.hh"

namespace tsm {
namespace {

/**
 * The full stack in one test: a 4-stage pipeline's compute blocks and
 * boundary activations execute as real chip programs over the real
 * network — compute blocks burn their exact cycle counts, the SSN
 * schedule moves the activations, and the measured end-to-end latency
 * matches the plan's analytic estimate to within the margins the
 * lowering inserts.
 */
class PipelineOnChips : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        topo = Topology::makeNode();
        net = std::make_unique<Network>(topo, eq, Rng(55));
        for (TspId t = 0; t < topo.numTsps(); ++t)
            chips.push_back(
                std::make_unique<TspChip>(t, *net, DriftClock()));
    }

    Topology topo;
    EventQueue eq;
    std::unique_ptr<Network> net;
    std::vector<std::unique_ptr<TspChip>> chips;
};

TEST_F(PipelineOnChips, MeasuredLatencyMatchesPlan)
{
    // Four uniform stages of 5000 compute cycles shipping 32-vector
    // activations between consecutive chips.
    const unsigned stages = 4;
    const Cycle stage_compute = 5000;
    const std::uint32_t act_vectors = 32;

    std::vector<BlockCost> blocks(stages);
    for (auto &b : blocks) {
        b.computeCycles = stage_compute;
        b.activationBytes = Bytes(act_vectors) * kVectorBytes;
    }
    const auto plan =
        planPipeline(blocks, stages, BalanceMode::MovementAware);
    const auto transfers = plan.transfers(1);

    SsnScheduler scheduler(topo);
    const auto sched = scheduler.schedule(transfers);
    ASSERT_TRUE(validateSchedule(sched, topo).ok);
    auto programs = buildPrograms(sched, topo);

    // Weave each stage's compute into the idle gaps between its
    // scheduled communication instructions — the single-sequence
    // stand-in for the real chip's concurrent functional units. The
    // transfers' earliest cycles already gate sends on the compute.
    // A stage's compute begins once its input activation has fully
    // arrived (that dependence is what the plan's latency sums); the
    // compute then fills the sequence gaps between the stage's own
    // scheduled sends.
    auto weave = [](const Program &comm, Cycle compute_budget,
                    Cycle start_after) {
        Program merged;
        Cycle avail_from = start_after;
        Cycle remaining = compute_budget;
        for (const auto &i : comm.instrs) {
            EXPECT_NE(i.issueAt, kCycleUnscheduled)
                << "comm instructions must be scheduled";
            const Cycle gap =
                i.issueAt > avail_from ? i.issueAt - avail_from : 0;
            const Cycle chunk = std::min(remaining, gap);
            if (chunk > 0) {
                auto &c = merged.emitCompute(chunk);
                c.issueAt = avail_from;
                remaining -= chunk;
            }
            merged.instrs.push_back(i);
            avail_from =
                std::max(avail_from, i.issueAt + 1);
        }
        if (remaining > 0) {
            auto &c = merged.emitCompute(remaining);
            c.issueAt = avail_from;
        }
        merged.emitHalt();
        return merged;
    };
    for (unsigned s = 0; s < stages; ++s) {
        // Stage 0's input comes from the host; later stages wait for
        // their inbound flow (flow id == s) to finish arriving.
        const Cycle input_ready =
            s == 0 ? 0
                   : sched.flows.at(FlowId(s)).lastArrival +
                         kRxMarginCycles + 1;
        chips[s]->setStream(0, makeVec(Vec(float(s))));
        chips[s]->load(
            weave(programs.byChip[s], stage_compute, input_ready));
        chips[s]->start(0);
    }
    // Non-stage chips still participate: the spreader routes some
    // vectors through them, so they run their forwarding programs.
    for (unsigned s = stages; s < topo.numTsps(); ++s) {
        Program fwd = std::move(programs.byChip[s]);
        fwd.emitHalt();
        chips[s]->load(std::move(fwd));
        chips[s]->start(0);
    }
    eq.run();

    for (unsigned s = 0; s < stages; ++s)
        ASSERT_TRUE(chips[s]->halted()) << "stage " << s;

    // The last stage halts after its compute plus the final
    // activation delivery; the plan's latency counts the four stage
    // occupancies. Allow the lowering margins (receive slack, issue
    // staggering) but require cycle-scale agreement.
    const Cycle measured = chips[stages - 1]->clock().tickToCycle(
        chips[stages - 1]->stats().haltTick);
    const Cycle planned = plan.latencyCycles();
    EXPECT_GE(measured + 64, planned);
    // Upper slack: per-boundary flight + margins the analytic plan
    // folds into overlap.
    EXPECT_LE(measured, planned + stages * (flightCycles(
                                                LinkClass::IntraNode) +
                                            forwardCycles()));

    // Data integrity: stage s+1 received stage s's activation (plus
    // possibly some forwarded vectors of other flows).
    for (unsigned s = 1; s < stages; ++s)
        EXPECT_GE(chips[s]->stats().flitsReceived, act_vectors);
}

TEST_F(PipelineOnChips, ComputeGatesCommunication)
{
    // A transfer whose earliest is after a compute block must depart
    // exactly when the schedule says — not when the data "happens" to
    // be ready. Verify the first departure honours the gate.
    TensorTransfer t;
    t.flow = 1;
    t.src = 0;
    t.dst = 1;
    t.vectors = 4;
    t.earliest = 9999;
    SsnScheduler scheduler(topo);
    const auto sched = scheduler.schedule({t});
    EXPECT_EQ(sched.flows.at(1).firstDeparture, 9999u);

    auto programs = buildPrograms(sched, topo);
    Program src;
    src.emitCompute(9999).issueAt = 0;
    for (const auto &i : programs.byChip[0].instrs)
        src.instrs.push_back(i);
    src.emitHalt();
    chips[0]->setStream(0, makeVec(Vec(1.0f)));
    chips[0]->load(std::move(src));
    programs.byChip[1].emitHalt();
    chips[1]->load(std::move(programs.byChip[1]));
    chips[0]->start(0);
    chips[1]->start(0);
    eq.run();
    EXPECT_EQ(chips[1]->stats().flitsReceived, 4u);
}

} // namespace
} // namespace tsm
