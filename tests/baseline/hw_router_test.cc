#include <gtest/gtest.h>

#include "baseline/gpu_matmul.hh"
#include "baseline/hw_router.hh"
#include "baseline/sharedmem_allreduce.hh"

namespace tsm {
namespace {

TEST(HwRouter, SingleFlowDeliversEverything)
{
    Topology topo = Topology::makeNode();
    EventQueue eq;
    HwRoutedNetwork net(topo, eq, Rng(1));
    net.inject(1, 0, 1, 100, 0);
    eq.run();
    EXPECT_EQ(net.delivered(), 100u);
    EXPECT_GT(net.flowCompletion(1), 0u);
}

TEST(HwRouter, LatencyHasVarianceUnderContention)
{
    // Fig 8's scenario: in the ring-wired node, traffic from TSP 0 to
    // TSP 2 must forward through TSP 1, whose own traffic to TSP 2
    // contends for the same links. Arbitration and queueing create
    // the latency variance SSN eliminates.
    Topology topo = Topology::makeNode(NodeWiring::TripleRing);
    EventQueue eq;
    HwRoutedNetwork net(topo, eq, Rng(2));
    net.inject(1, 0, 2, 200, 0);
    net.inject(2, 1, 2, 200, 0);
    eq.run();
    EXPECT_EQ(net.delivered(), 400u);
    const auto &lat = net.packetLatencyNs();
    const double p1 = lat.percentile(0.01);
    const double p99 = lat.percentile(0.99);
    EXPECT_GT(p99, p1 * 1.2); // wide spread
}

TEST(HwRouter, UncontendedLatencyIsTight)
{
    Topology topo = Topology::makeNode();
    EventQueue eq;
    HwRoutedNetwork net(topo, eq, Rng(3));
    // Single packet: pure flight time.
    net.inject(1, 0, 1, 1, 0);
    eq.run();
    const double ns = net.packetLatencyNs().percentile(0.5);
    const double expect =
        psToNs(kVectorSerializationPs +
               double(linkPropagationPs(LinkClass::IntraNode)));
    EXPECT_NEAR(ns, expect, 1.0);
}

TEST(HwRouter, BackpressurePropagates)
{
    // Saturating incast: 7 sources at line rate into one sink. The
    // sink link is the bottleneck; everything still delivers, later.
    Topology topo = Topology::makeNode();
    EventQueue eq;
    HwRoutedNetwork net(topo, eq, Rng(4), {.queueDepth = 2});
    for (TspId s = 1; s < 8; ++s)
        net.inject(FlowId(s), s, 0, 50, 0);
    eq.run();
    EXPECT_EQ(net.delivered(), 7u * 50);
}

TEST(HwRouter, MultiHopDeliversAcrossNodes)
{
    Topology topo = Topology::makeSingleLevel(2);
    EventQueue eq;
    HwRoutedNetwork net(topo, eq, Rng(5));
    net.inject(1, 0, 15, 40, 0);
    eq.run();
    EXPECT_EQ(net.delivered(), 40u);
}

TEST(HwRouter, AdaptiveSpreadsBetterThanDeterministicUnderLoad)
{
    // With deterministic minimal routing all packets from one source
    // pile onto one path; adaptive uses credits to spread.
    auto run = [](HwRouting routing) {
        Topology topo = Topology::makeSingleLevel(2);
        EventQueue eq;
        HwRoutedNetwork net(topo, eq, Rng(6), {routing, 4});
        // Cross-node traffic from all 8 TSPs of node 0 to node 1.
        for (TspId s = 0; s < 8; ++s)
            net.inject(FlowId(s + 1), s, 8 + s, 200, 0);
        eq.run();
        Tick worst = 0;
        for (TspId s = 0; s < 8; ++s)
            worst = std::max(worst, net.flowCompletion(FlowId(s + 1)));
        return worst;
    };
    const Tick det = run(HwRouting::DeterministicMinimal);
    const Tick adp = run(HwRouting::AdaptiveMinimal);
    EXPECT_LE(adp, det);
}

TEST(GpuMatmul, WaveQuantizationSawtooth)
{
    // Fig 13: A100 utilization dips when N crosses tile/wave
    // boundaries; e.g. tiles = 18 * ceil(N/128), waves jump at
    // multiples where tiles pass 108.
    const GpuModel gpu;
    const auto just_full = gpuGemmUtilization(gpu, 2304, 4096, 1536);
    const auto just_over = gpuGemmUtilization(gpu, 2304, 4096, 1537);
    EXPECT_GT(just_full.utilization, just_over.utilization);
    // The drop is significant (a whole extra wave).
    EXPECT_GT(just_full.utilization - just_over.utilization, 0.05);
}

TEST(GpuMatmul, TspUtilizationStaysHigh)
{
    // Fig 13's headline: TSP >= 80% across the N sweep.
    const TspMatmulModel tsp;
    for (std::uint64_t n = 1376; n <= 3500; n += 31) {
        const auto est = tspGemmUtilization(tsp, 2304, 4096, n);
        EXPECT_GE(est.utilization, 0.80) << "N=" << n;
    }
}

TEST(GpuMatmul, TspPeakMatchesSpec)
{
    // 2 fp16 sub-ops/cycle x [1x160][160x320] x 0.9 GHz = 184 TFLOPs.
    const TspMatmulModel tsp;
    EXPECT_NEAR(tsp.peakFp16Tflops(), 184.3, 0.5);
}

TEST(GpuMatmul, TspBeatsGpuUtilizationAcrossSweep)
{
    const GpuModel gpu;
    const TspMatmulModel tsp;
    unsigned tsp_wins = 0, points = 0;
    for (std::uint64_t n = 1376; n <= 3500; n += 64) {
        ++points;
        const auto g = gpuGemmUtilization(gpu, 2304, 4096, n);
        const auto t = tspGemmUtilization(tsp, 2304, 4096, n);
        tsp_wins += t.utilization > g.utilization;
    }
    EXPECT_GT(tsp_wins, points * 3 / 4);
}

TEST(GpuAllReduce, LatencyFloorDominatesSmallTensors)
{
    const GpuAllReduceModel model;
    const auto tiny = gpuRingAllReduce(model, 1 * kKiB);
    const auto large = gpuRingAllReduce(model, 256 * kMiB);
    // Small messages are overhead-bound: bus bandwidth is tiny.
    EXPECT_LT(tiny.busBandwidthBytesPerSec, 1e9);
    // Large messages approach the link bandwidth ceiling.
    EXPECT_GT(large.busBandwidthBytesPerSec, 150e9);
    EXPECT_LT(large.busBandwidthBytesPerSec,
              model.linkBytesPerSec * 1.01);
}

TEST(GpuAllReduce, NormalizationScalesBandwidthTerm)
{
    const GpuAllReduceModel model;
    const Bytes big = 512 * kMiB;
    const auto raw = gpuRingAllReduce(model, big);
    const auto norm = gpuRingAllReduceNormalized(model, big, 87.5e9);
    EXPECT_LT(norm.busBandwidthBytesPerSec,
              raw.busBandwidthBytesPerSec);
}

} // namespace
} // namespace tsm
