#include <gtest/gtest.h>

#include "baseline/hw_router.hh"
#include "ssn/deadlock.hh"
#include "ssn/scheduler.hh"

namespace tsm {
namespace {

/**
 * Paper §4.4, executable: "toroidal deadlock scenarios arise in torus
 * networks due to overlapping VC dependencies around the torus links".
 * On a bare 8-ring with every TSP sending 3 hops clockwise, every
 * packet holds a buffer while waiting for the next buffer around the
 * cycle:
 *
 *  - 1 VC + tiny buffers: the hardware-routed network deadlocks
 *    (the event queue drains with packets still inside);
 *  - 2 VCs with the dateline rule: the cycle is broken, everything
 *    delivers — the hardware cost the paper's SSN avoids;
 *  - SSN on the same ring and pattern: no VCs, no buffers to fight
 *    over — the schedule is hold-and-wait free by construction.
 */

/** Every TSP sends a burst 3 hops clockwise around the ring. */
void
injectRingTraffic(HwRoutedNetwork &hw, unsigned n, std::uint32_t burst)
{
    for (TspId s = 0; s < n; ++s)
        hw.inject(FlowId(s + 1), s, (s + 3) % n, burst, 0);
}

TEST(VcDeadlock, OneVcTinyBuffersDeadlocks)
{
    const Topology ring = Topology::makeRing(8);
    EventQueue eq;
    HwConfig cfg;
    cfg.routing = HwRouting::DeterministicMinimal;
    cfg.queueDepth = 1;
    cfg.numVcs = 1;
    HwRoutedNetwork hw(ring, eq, Rng(1), cfg);
    injectRingTraffic(hw, 8, 16);
    eq.run();
    // The network wedged: buffers full all the way around the cycle.
    EXPECT_GT(hw.stuck(), 0u);
    EXPECT_LT(hw.delivered(), hw.injected());
}

TEST(VcDeadlock, TwoVcsWithDatelineDrainEverything)
{
    const Topology ring = Topology::makeRing(8);
    EventQueue eq;
    HwConfig cfg;
    cfg.routing = HwRouting::DeterministicMinimal;
    cfg.queueDepth = 1;
    cfg.numVcs = 2;
    HwRoutedNetwork hw(ring, eq, Rng(1), cfg);
    injectRingTraffic(hw, 8, 16);
    eq.run();
    EXPECT_EQ(hw.stuck(), 0u);
    EXPECT_EQ(hw.delivered(), hw.injected());
}

TEST(VcDeadlock, DeeperBuffersMerelyDelayTheDeadlock)
{
    // More buffering without VCs can absorb a small burst but a large
    // enough one still wedges — buffers are not a correctness fix.
    const Topology ring = Topology::makeRing(8);
    EventQueue eq;
    HwConfig cfg;
    cfg.routing = HwRouting::DeterministicMinimal;
    cfg.queueDepth = 4;
    cfg.numVcs = 1;
    HwRoutedNetwork hw(ring, eq, Rng(2), cfg);
    injectRingTraffic(hw, 8, 256);
    eq.run();
    EXPECT_GT(hw.stuck(), 0u);
}

TEST(VcDeadlock, SsnNeedsNoVcsOnTheSameScenario)
{
    // The identical ring and pattern through the SSN scheduler: the
    // channel dependency graph is cyclic, yet the schedule cannot
    // deadlock — every window is pre-assigned and disjoint.
    const Topology ring = Topology::makeRing(8);
    SsnScheduler scheduler(ring, {.maxExtraHops = 0, .maxPaths = 2});
    std::vector<TensorTransfer> transfers;
    for (TspId s = 0; s < 8; ++s) {
        TensorTransfer t;
        t.flow = FlowId(s + 1);
        t.src = s;
        t.dst = (s + 3) % 8;
        t.vectors = 16;
        transfers.push_back(t);
    }
    const auto sched = scheduler.schedule(transfers);
    const auto cdg = channelDependencyCycles(sched, ring);
    EXPECT_TRUE(cdg.cyclic);           // the torus hazard exists...
    EXPECT_TRUE(holdAndWaitFree(sched, ring)); // ...and is harmless
    EXPECT_EQ(sched.vectors.size(), 8u * 16);
}

TEST(VcDeadlock, RingTopologyShape)
{
    const Topology ring = Topology::makeRing(8);
    EXPECT_EQ(ring.links().size(), 8u);
    EXPECT_EQ(ring.diameter(), 4u);
    EXPECT_TRUE(ring.connected());
    EXPECT_EQ(ring.linksBetween(0, 1).size(), 1u);
    EXPECT_EQ(ring.linksBetween(0, 2).size(), 0u);
}

} // namespace
} // namespace tsm
