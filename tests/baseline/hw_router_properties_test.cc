#include <gtest/gtest.h>

#include "baseline/hw_router.hh"
#include "common/rng.hh"
#include "workload/traffic_gen.hh"

namespace tsm {
namespace {

/** Conservation: the router delivers exactly what was injected. */
class RouterConservation
    : public ::testing::TestWithParam<TrafficPattern>
{
};

TEST_P(RouterConservation, EveryPacketDeliveredOncePerPattern)
{
    const Topology topo = Topology::makeNode(NodeWiring::TripleRing);
    const auto transfers = generateTraffic(topo, GetParam(), 24, 13);
    EventQueue eq;
    HwRoutedNetwork hw(topo, eq, Rng(13));
    std::uint64_t injected = 0;
    for (const auto &t : transfers) {
        hw.inject(t.flow, t.src, t.dst, t.vectors, 0);
        injected += t.vectors;
    }
    eq.run();
    EXPECT_EQ(hw.delivered(), injected);
    for (const auto &t : transfers)
        EXPECT_GT(hw.flowCompletion(t.flow), 0u);
}

INSTANTIATE_TEST_SUITE_P(All, RouterConservation,
                         ::testing::ValuesIn(allTrafficPatterns()),
                         [](const auto &info) {
                             std::string n =
                                 trafficPatternName(info.param);
                             for (auto &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(RouterProperties, DeterministicGivenSeed)
{
    auto run = [](std::uint64_t seed) {
        const Topology topo = Topology::makeNode(NodeWiring::TripleRing);
        EventQueue eq;
        HwRoutedNetwork hw(topo, eq, Rng(seed));
        hw.inject(1, 0, 4, 100, 0);
        hw.inject(2, 1, 4, 100, 0);
        eq.run();
        return std::pair(hw.flowCompletion(1), hw.flowCompletion(2));
    };
    EXPECT_EQ(run(5), run(5));
}

TEST(RouterProperties, RoundRobinIsFairUnderSymmetricLoad)
{
    // Two symmetric flows through the same bottleneck finish within a
    // few percent of each other — round-robin arbitration shares the
    // link (the paper's age-based-fairness discussion, §6).
    const Topology topo = Topology::makeNode(NodeWiring::TripleRing);
    EventQueue eq;
    HwRoutedNetwork hw(topo, eq, Rng(8));
    hw.inject(1, 0, 2, 200, 0); // via TSP 1
    hw.inject(2, 1, 2, 200, 0); // injecting at TSP 1
    eq.run();
    const double c1 = double(hw.flowCompletion(1));
    const double c2 = double(hw.flowCompletion(2));
    EXPECT_NEAR(c1 / c2, 1.0, 0.25);
}

TEST(RouterProperties, TinyBuffersStillDeliverEverything)
{
    // Depth-1 credits: maximum back-pressure, zero loss.
    const Topology topo = Topology::makeNode(NodeWiring::TripleRing);
    EventQueue eq;
    HwRoutedNetwork hw(topo, eq, Rng(3),
                       {HwRouting::ObliviousMinimal, 1});
    for (TspId s = 1; s < 8; ++s)
        hw.inject(FlowId(s), s, 0, 40, 0);
    eq.run();
    EXPECT_EQ(hw.delivered(), 7u * 40);
}

TEST(RouterProperties, TwoLevelSystemRoutesEndToEnd)
{
    const Topology topo = Topology::makeTwoLevel(2);
    EventQueue eq;
    HwRoutedNetwork hw(topo, eq, Rng(4));
    // Rack 0 TSP 0 to rack 1's far corner: up to 7 hops.
    hw.inject(1, 0, topo.numTsps() - 1, 20, 0);
    eq.run();
    EXPECT_EQ(hw.delivered(), 20u);
}

} // namespace
} // namespace tsm
