#include <gtest/gtest.h>

#include <cmath>

#include "arch/vec.hh"

namespace tsm {
namespace {

TEST(Vec, ZeroInitialized)
{
    Vec v;
    for (unsigned i = 0; i < Vec::kLanes; ++i)
        ASSERT_EQ(v[i], 0.0f);
}

TEST(Vec, FillConstructor)
{
    Vec v(2.5f);
    for (unsigned i = 0; i < Vec::kLanes; ++i)
        ASSERT_EQ(v[i], 2.5f);
}

TEST(Vec, ElementwiseOps)
{
    Vec a(3.0f), b(2.0f);
    EXPECT_EQ(a.add(b), Vec(5.0f));
    EXPECT_EQ(a.sub(b), Vec(1.0f));
    EXPECT_EQ(a.mul(b), Vec(6.0f));
    EXPECT_EQ(a.scale(4.0f), Vec(12.0f));
}

TEST(Vec, LaneSumAndDot)
{
    Vec a(1.0f), b(2.0f);
    EXPECT_EQ(a.laneSum(), 320.0f);
    EXPECT_EQ(a.dot(b), 640.0f);
    EXPECT_EQ(a.dot(b, 10), 20.0f);
}

TEST(Vec, RsqrtApproximationAccuracy)
{
    // The paper's Cholesky uses a custom rsqrt approximation; ours must
    // be accurate to a few ppm over a wide dynamic range.
    for (float x : {0.25f, 1.0f, 2.0f, 16.0f, 1e4f, 1e-4f, 123.456f}) {
        const float approx = fastRsqrt(x);
        const float exact = 1.0f / std::sqrt(x);
        EXPECT_NEAR(approx / exact, 1.0f, 5e-6f) << "x=" << x;
    }
}

TEST(Vec, RsqrtVectorized)
{
    Vec v(4.0f);
    const Vec r = v.rsqrt();
    for (unsigned i = 0; i < Vec::kLanes; ++i)
        ASSERT_NEAR(r[i], 0.5f, 1e-5f);
}

TEST(Vec, SharedPayload)
{
    VecPtr p = makeVec(Vec(7.0f));
    VecPtr q = p;
    EXPECT_EQ((*q)[0], 7.0f);
    EXPECT_EQ(p.use_count(), 2);
}

} // namespace
} // namespace tsm
