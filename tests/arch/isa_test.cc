#include <gtest/gtest.h>

#include <memory>

#include "arch/chip.hh"

namespace tsm {
namespace {

class IsaFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        topo = Topology::makeNode();
        net = std::make_unique<Network>(topo, eq, Rng(21));
        for (TspId t = 0; t < topo.numTsps(); ++t)
            chips.push_back(std::make_unique<TspChip>(t, *net, DriftClock()));
    }

    void
    runProgram(TspId chip, Program p)
    {
        p.emitHalt();
        chips[chip]->load(std::move(p));
        chips[chip]->start(0);
        eq.run();
    }

    Topology topo;
    EventQueue eq;
    std::unique_ptr<Network> net;
    std::vector<std::unique_ptr<TspChip>> chips;
};

TEST_F(IsaFixture, VSubAndSplat)
{
    Program p;
    auto &sp = p.emit(Op::VSplat);
    sp.dst = 1;
    sp.fimm = 10.0f;
    auto &sp2 = p.emit(Op::VSplat);
    sp2.dst = 2;
    sp2.fimm = 4.0f;
    auto &sub = p.emit(Op::VSub);
    sub.dst = 3;
    sub.srcA = 1;
    sub.srcB = 2;
    runProgram(0, std::move(p));
    EXPECT_EQ((*chips[0]->stream(3))[0], 6.0f);
}

TEST_F(IsaFixture, SxmRotateMovesLanes)
{
    Vec v;
    v[0] = 1.0f;
    v[1] = 2.0f;
    chips[0]->setStream(1, makeVec(v));
    Program p;
    auto &rot = p.emit(Op::SxmRotate);
    rot.dst = 2;
    rot.srcA = 1;
    rot.imm = 5;
    runProgram(0, std::move(p));
    EXPECT_EQ((*chips[0]->stream(2))[5], 1.0f);
    EXPECT_EQ((*chips[0]->stream(2))[6], 2.0f);
    EXPECT_EQ((*chips[0]->stream(2))[0], 0.0f);
}

TEST_F(IsaFixture, SxmRotateNegativeWraps)
{
    Vec v;
    v[0] = 7.0f;
    chips[0]->setStream(1, makeVec(v));
    Program p;
    auto &rot = p.emit(Op::SxmRotate);
    rot.dst = 2;
    rot.srcA = 1;
    rot.imm = -1;
    runProgram(0, std::move(p));
    EXPECT_EQ((*chips[0]->stream(2))[319], 7.0f);
}

TEST_F(IsaFixture, MxmClearDropsWeights)
{
    chips[0]->setStream(0, makeVec(Vec(2.0f)));
    Vec act;
    act[0] = 1.0f;
    chips[0]->setStream(1, makeVec(act));
    Program p;
    auto &lw = p.emit(Op::MxmLoadWeights);
    lw.srcA = 0;
    lw.imm = 0;
    p.emit(Op::MxmClear);
    auto &mm = p.emit(Op::MxmMatMul);
    mm.srcA = 1;
    mm.dst = 2;
    runProgram(0, std::move(p));
    // After clear, the matmul sees no weight rows: zero output.
    EXPECT_EQ((*chips[0]->stream(2))[0], 0.0f);
}

TEST_F(IsaFixture, NotifyHasFixedKnownLatency)
{
    Program p;
    p.emit(Op::Sync);
    p.emit(Op::Notify);
    runProgram(0, std::move(p));
    // Sync(1 cycle) + Notify(kNotifyLatency) before Halt.
    EXPECT_EQ(chips[0]->clock().tickToCycle(chips[0]->stats().haltTick),
              1 + kNotifyLatency);
}

TEST_F(IsaFixture, TransmitDeliversSyncTokenToFifo)
{
    const LinkId l = topo.linksBetween(0, 1)[0];
    Program p;
    auto &tx = p.emit(Op::Transmit);
    tx.port = topo.links()[l].portAt(0);
    tx.imm = 42;
    runProgram(0, std::move(p));
    // The token sits in chip 1's rx fifo (PollRecv would consume it).
    EXPECT_EQ(chips[1]->rxDepth(topo.links()[l].portAt(1)), 1u);
}

TEST_F(IsaFixture, ProgramShiftMovesOnlyScheduledInstrs)
{
    Program p;
    p.emitCompute(5).issueAt = 100;
    p.emitCompute(5); // unscheduled
    p.emitHalt().issueAt = 300;
    p.shift(1000);
    EXPECT_EQ(p.instrs[0].issueAt, 1100u);
    EXPECT_EQ(p.instrs[1].issueAt, kCycleUnscheduled);
    EXPECT_EQ(p.instrs[2].issueAt, 1300u);
}

TEST_F(IsaFixture, InstrStrIsInformative)
{
    Program p;
    p.emitSend(3, 0, 7, 9).issueAt = 55;
    EXPECT_EQ(p.instrs[0].str(), "SEND @55 port3 flow7:9");
    p.emitRead(LocalAddr::unflatten(0), 1);
    EXPECT_NE(p.instrs[1].str().find("READ"), std::string::npos);
}

TEST_F(IsaFixture, NopMinimumOneCycle)
{
    Program p;
    p.emitNop(0); // clamped to 1
    runProgram(0, std::move(p));
    EXPECT_EQ(chips[0]->clock().tickToCycle(chips[0]->stats().haltTick),
              1u);
}

TEST_F(IsaFixture, OpNamesCoverAllOpcodes)
{
    for (int op = 0; op <= int(Op::RuntimeDeskew); ++op)
        EXPECT_STRNE(opName(Op(op)), "?");
}

TEST_F(IsaFixture, EmptyProgramHaltsImmediately)
{
    Program p;
    chips[0]->load(std::move(p));
    chips[0]->start(0);
    eq.run();
    EXPECT_TRUE(chips[0]->halted());
    EXPECT_EQ(chips[0]->stats().instrsExecuted, 0u);
}

TEST_F(IsaFixture, ChipCanRunSuccessivePrograms)
{
    Program a;
    a.emitCompute(10);
    runProgram(0, std::move(a));
    const Tick first = chips[0]->stats().haltTick;
    Program b;
    b.emitCompute(10);
    b.emitHalt();
    chips[0]->load(std::move(b));
    chips[0]->start(eq.now());
    eq.run();
    EXPECT_GT(chips[0]->stats().haltTick, first);
}

} // namespace
} // namespace tsm
