#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "arch/chip.hh"
#include "common/rng.hh"
#include "net/network.hh"
#include "net/topology.hh"
#include "sim/event_queue.hh"

namespace tsm {
namespace {

/** An 8-TSP node with chips attached, ready to run programs. */
class NodeFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        topo = Topology::makeNode();
        net = std::make_unique<Network>(topo, eq, Rng(1234));
        for (TspId t = 0; t < topo.numTsps(); ++t)
            chips.push_back(std::make_unique<TspChip>(t, *net, DriftClock()));
    }

    /** Port on `src` that reaches adjacent `dst`. */
    unsigned
    portTo(TspId src, TspId dst)
    {
        const auto ls = topo.linksBetween(src, dst);
        EXPECT_FALSE(ls.empty());
        return topo.links()[ls[0]].portAt(src);
    }

    Topology topo;
    EventQueue eq;
    std::unique_ptr<Network> net;
    std::vector<std::unique_ptr<TspChip>> chips;
};

TEST_F(NodeFixture, HaltStopsProgram)
{
    Program p;
    p.emitNop(5);
    p.emitHalt();
    chips[0]->load(std::move(p));
    chips[0]->start(0);
    eq.run();
    EXPECT_TRUE(chips[0]->halted());
    EXPECT_EQ(chips[0]->stats().instrsExecuted, 2u);
}

TEST_F(NodeFixture, ComputeConsumesExactCycles)
{
    Program p;
    p.emitCompute(100);
    p.emitHalt();
    chips[0]->load(std::move(p));
    chips[0]->start(0);
    eq.run();
    // Halt executes at cycle 100 exactly.
    EXPECT_EQ(chips[0]->stats().haltTick,
              chips[0]->clock().cycleToTick(100));
    EXPECT_EQ(chips[0]->stats().computeCycles, 100u);
}

TEST_F(NodeFixture, MemoryReadWriteThroughStreams)
{
    const LocalAddr src = LocalAddr::unflatten(10);
    const LocalAddr dst = LocalAddr::unflatten(20);
    chips[0]->mem().write(src, makeVec(Vec(3.0f)));

    Program p;
    p.emitRead(src, 0);
    p.emitWrite(0, dst);
    p.emitHalt();
    chips[0]->load(std::move(p));
    chips[0]->start(0);
    eq.run();
    EXPECT_EQ((*chips[0]->mem().read(dst))[0], 3.0f);
}

TEST_F(NodeFixture, VectorAluOps)
{
    chips[0]->setStream(1, makeVec(Vec(6.0f)));
    chips[0]->setStream(2, makeVec(Vec(2.0f)));

    Program p;
    auto &add = p.emit(Op::VAdd);
    add.dst = 3; add.srcA = 1; add.srcB = 2;
    auto &mul = p.emit(Op::VMul);
    mul.dst = 4; mul.srcA = 1; mul.srcB = 2;
    auto &sc = p.emit(Op::VScale);
    sc.dst = 5; sc.srcA = 1; sc.fimm = 0.5f;
    auto &rs = p.emit(Op::VRsqrt);
    rs.dst = 6; rs.srcA = 2;
    p.emitHalt();

    chips[0]->load(std::move(p));
    chips[0]->start(0);
    eq.run();
    EXPECT_EQ((*chips[0]->stream(3))[0], 8.0f);
    EXPECT_EQ((*chips[0]->stream(4))[0], 12.0f);
    EXPECT_EQ((*chips[0]->stream(5))[0], 3.0f);
    EXPECT_NEAR((*chips[0]->stream(6))[0], 0.7071f, 1e-4f);
}

TEST_F(NodeFixture, MxmComputesSubOperation)
{
    // [1 x 2] x [2 x 320]: act = [2, 3], W row0 = all 10, row1 = all 100.
    chips[0]->setStream(0, makeVec(Vec(10.0f)));
    chips[0]->setStream(1, makeVec(Vec(100.0f)));
    Vec act;
    act[0] = 2.0f;
    act[1] = 3.0f;
    chips[0]->setStream(2, makeVec(act));

    Program p;
    auto &w0 = p.emit(Op::MxmLoadWeights);
    w0.srcA = 0; w0.imm = 0;
    auto &w1 = p.emit(Op::MxmLoadWeights);
    w1.srcA = 1; w1.imm = 1;
    auto &mm = p.emit(Op::MxmMatMul);
    mm.srcA = 2; mm.dst = 3;
    p.emitHalt();

    chips[0]->load(std::move(p));
    chips[0]->start(0);
    eq.run();
    // out = 2*10 + 3*100 = 320 in every lane.
    EXPECT_EQ((*chips[0]->stream(3))[0], 320.0f);
    EXPECT_EQ((*chips[0]->stream(3))[319], 320.0f);
}

TEST_F(NodeFixture, SendRecvAcrossOneLink)
{
    const unsigned p01 = portTo(0, 1);
    const unsigned p10 = portTo(1, 0);

    chips[0]->setStream(0, makeVec(Vec(42.0f)));
    Program tx;
    tx.emitSend(p01, 0, /*flow=*/7, /*seq=*/0);
    tx.emitHalt();

    Program rx;
    // Receive is scheduled comfortably after the arrival (hop ~520ns
    // = ~468 cycles).
    rx.emitRecv(p10, 5, 7, 0).issueAt = 600;
    rx.emitHalt();

    chips[0]->load(std::move(tx));
    chips[1]->load(std::move(rx));
    chips[0]->start(0);
    chips[1]->start(0);
    eq.run();

    ASSERT_TRUE(chips[1]->stream(5));
    EXPECT_EQ((*chips[1]->stream(5))[0], 42.0f);
    EXPECT_EQ(chips[0]->stats().flitsSent, 1u);
    EXPECT_EQ(chips[1]->stats().flitsReceived, 1u);
}

TEST_F(NodeFixture, RecvUnderflowPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Program rx;
    rx.emitRecv(portTo(1, 0), 5, 7, 0);
    rx.emitHalt();
    chips[1]->load(std::move(rx));
    chips[1]->start(0);
    EXPECT_DEATH(eq.run(), "underflow");
}

TEST_F(NodeFixture, RecvTagMismatchPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const unsigned p01 = portTo(0, 1);
    const unsigned p10 = portTo(1, 0);
    chips[0]->setStream(0, makeVec(Vec(1.0f)));
    Program tx;
    tx.emitSend(p01, 0, 7, 0);
    tx.emitHalt();
    Program rx;
    rx.emitRecv(p10, 5, /*wrong flow=*/8, 0).issueAt = 600;
    rx.emitHalt();
    chips[0]->load(std::move(tx));
    chips[1]->load(std::move(rx));
    chips[0]->start(0);
    chips[1]->start(0);
    EXPECT_DEATH(eq.run(), "mismatch");
}

TEST_F(NodeFixture, UnscheduledSendsSelfPaceAtSerializationRate)
{
    const unsigned p01 = portTo(0, 1);
    chips[0]->setStream(0, makeVec(Vec(1.0f)));
    Program tx;
    for (unsigned s = 0; s < 10; ++s)
        tx.emitSend(p01, 0, 7, s);
    tx.emitHalt();
    chips[0]->load(std::move(tx));
    chips[0]->start(0);
    eq.run(); // must not panic: sends are spaced by >= 24 cycles
    EXPECT_EQ(chips[0]->stats().flitsSent, 10u);
}

TEST_F(NodeFixture, ScheduledOverlappingSendsPanic)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const unsigned p01 = portTo(0, 1);
    chips[0]->setStream(0, makeVec(Vec(1.0f)));
    Program tx;
    tx.emitSend(p01, 0, 7, 0).issueAt = 100;
    tx.emitSend(p01, 0, 7, 1).issueAt = 101; // overlaps serialization
    tx.emitHalt();
    chips[0]->load(std::move(tx));
    chips[0]->start(0);
    EXPECT_DEATH(eq.run(), "conflict");
}

TEST_F(NodeFixture, HacSacCountersTrackCycles)
{
    // With no adjustment both counters read the epoch phase.
    EXPECT_EQ(chips[0]->hac(), 0u);
    EXPECT_EQ(chips[0]->sac(), 0u);
    eq.runUntil(chips[0]->clock().cycleToTick(300));
    EXPECT_EQ(chips[0]->hac(), 300u % kHacPeriodCycles);
    EXPECT_EQ(chips[0]->hac(), chips[0]->sac());
}

TEST_F(NodeFixture, HacAdjustmentCreatesSacDelta)
{
    chips[0]->adjustHac(-5);
    EXPECT_EQ(chips[0]->sacHacDelta(), 5); // SAC ahead: local ran fast
    chips[0]->realignSac();
    EXPECT_EQ(chips[0]->sacHacDelta(), 0);
}

TEST_F(NodeFixture, DeskewAlignsToEpochBoundary)
{
    Program p;
    p.emitCompute(100); // end mid-epoch
    p.emit(Op::Deskew);
    p.emitHalt();
    chips[0]->load(std::move(p));
    chips[0]->start(0);
    eq.run();
    // Halt must issue at an epoch boundary: cycle 252.
    EXPECT_EQ(chips[0]->clock().tickToCycle(chips[0]->stats().haltTick),
              Cycle(kHacPeriodCycles));
}

TEST_F(NodeFixture, RuntimeDeskewCompensatesDrift)
{
    // Simulate a chip whose HAC was nudged back 10 cycles by its
    // parent (local clock fast by 10): RUNTIME_DESKEW t=50 must stall
    // 50 + 10 = 60 cycles and realign SAC.
    chips[0]->adjustHac(-10);
    Program p;
    auto &rd = p.emit(Op::RuntimeDeskew);
    rd.imm = 50;
    p.emitHalt();
    chips[0]->load(std::move(p));
    chips[0]->start(0);
    eq.run();
    EXPECT_EQ(chips[0]->clock().tickToCycle(chips[0]->stats().haltTick),
              60u);
    EXPECT_EQ(chips[0]->sacHacDelta(), 0);
}

TEST_F(NodeFixture, PollRecvWaitsAcrossEpochs)
{
    const unsigned p01 = portTo(0, 1);
    const unsigned p10 = portTo(1, 0);

    // Child polls; parent transmits after ~4 epochs.
    Program child;
    auto &poll = child.emit(Op::PollRecv);
    poll.port = std::uint8_t(p10);
    poll.dst = 2;
    child.emitHalt();

    Program parent;
    parent.emitNop(4 * kHacPeriodCycles);
    parent.emitSend(p01, 0, 9, 0);
    parent.emitHalt();

    chips[0]->setStream(0, makeVec(Vec(5.0f)));
    chips[0]->load(std::move(parent));
    chips[1]->load(std::move(child));
    chips[0]->start(0);
    chips[1]->start(0);
    eq.run();
    ASSERT_TRUE(chips[1]->halted());
    ASSERT_TRUE(chips[1]->stream(2));
    EXPECT_EQ((*chips[1]->stream(2))[0], 5.0f);
}

TEST_F(NodeFixture, LateScheduledInstructionPanicsWhenStrict)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Program p;
    p.emitCompute(200);
    p.emitCompute(10).issueAt = 100; // unreachable on time
    p.emitHalt();
    chips[0]->load(std::move(p));
    chips[0]->start(0);
    EXPECT_DEATH(eq.run(), "schedule");
}

TEST_F(NodeFixture, DeterministicReplayIsByteIdentical)
{
    // Run the same program twice on fresh fixtures and compare halt
    // ticks — the reproducibility invariant.
    auto run_once = [&]() {
        EventQueue eq2;
        Topology topo2 = Topology::makeNode();
        Network net2(topo2, eq2, Rng(1234));
        TspChip c0(0, net2, DriftClock());
        TspChip c1(1, net2, DriftClock());
        const unsigned port =
            topo2.links()[topo2.linksBetween(0, 1)[0]].portAt(0);
        const unsigned rport =
            topo2.links()[topo2.linksBetween(0, 1)[0]].portAt(1);
        c0.setStream(0, makeVec(Vec(1.0f)));
        Program tx;
        for (unsigned s = 0; s < 50; ++s)
            tx.emitSend(port, 0, 3, s);
        tx.emitHalt();
        Program rx;
        for (unsigned s = 0; s < 50; ++s) {
            auto &r = rx.emitRecv(rport, 1, 3, s);
            r.issueAt = 600 + s * kVectorSerializationCycles;
        }
        rx.emitHalt();
        c0.load(std::move(tx));
        c1.load(std::move(rx));
        c0.start(0);
        c1.start(0);
        eq2.run();
        return std::pair(c0.stats().haltTick, c1.stats().haltTick);
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
} // namespace tsm
