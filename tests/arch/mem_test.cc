#include <gtest/gtest.h>

#include "arch/mem.hh"

namespace tsm {
namespace {

TEST(LocalAddr, FlattenUnflattenRoundTrip)
{
    for (std::uint32_t flat : {0u, 1u, 4095u, 4096u, 100000u,
                               LocalAddr::kWords - 1}) {
        const LocalAddr a = LocalAddr::unflatten(flat);
        EXPECT_TRUE(a.valid());
        EXPECT_EQ(a.flatten(), flat);
    }
}

TEST(LocalAddr, ShapeMatchesPaper)
{
    // [2, 44, 2, 4096] x 320 B = 220 MiB per device (paper Fig 3).
    EXPECT_EQ(LocalAddr::kWords, 2u * 44 * 2 * 4096);
    EXPECT_EQ(std::uint64_t(LocalAddr::kWords) * kVectorBytes,
              220ull * 1024 * 1024);
}

TEST(LocalAddr, ValidityBounds)
{
    LocalAddr a;
    EXPECT_TRUE(a.valid());
    a.hemisphere = 2;
    EXPECT_FALSE(a.valid());
    a = LocalAddr{};
    a.slice = 44;
    EXPECT_FALSE(a.valid());
    a = LocalAddr{};
    a.offset = 4096;
    EXPECT_FALSE(a.valid());
}

TEST(GlobalAddr, DeviceMajorFlattening)
{
    GlobalAddr g;
    g.device = 3;
    g.local = LocalAddr::unflatten(17);
    const std::uint64_t flat = g.flatten();
    EXPECT_EQ(flat, 3ull * LocalAddr::kWords + 17);
    EXPECT_EQ(GlobalAddr::unflatten(flat), g);
}

TEST(GlobalAddr, SystemCapacityClaims)
{
    // 264 TSPs hold 56+ GiB; 10,440 TSPs hold > 2 TiB (abstract).
    const std::uint64_t per_dev = kLocalMemBytes;
    EXPECT_GE(264 * per_dev, 56ull * kGiB);
    EXPECT_GT(10440 * per_dev, 2ull * 1024 * kGiB);
}

TEST(LocalMemory, WriteReadBack)
{
    LocalMemory m;
    LocalAddr a = LocalAddr::unflatten(123);
    EXPECT_FALSE(m.present(a));
    m.write(a, makeVec(Vec(9.0f)));
    EXPECT_TRUE(m.present(a));
    EXPECT_EQ((*m.read(a))[0], 9.0f);
}

TEST(LocalMemory, UnwrittenReadsNull)
{
    LocalMemory m;
    EXPECT_EQ(m.read(LocalAddr::unflatten(5)), nullptr);
}

TEST(LocalMemory, PoisonBlocksReads)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    LocalMemory m;
    LocalAddr a = LocalAddr::unflatten(9);
    m.write(a, makeVec(Vec(1.0f)));
    m.poison(a);
    EXPECT_TRUE(m.poisoned(a));
    EXPECT_DEATH((void)m.read(a), "replay");
    // A fresh write clears the error.
    m.write(a, makeVec(Vec(2.0f)));
    EXPECT_FALSE(m.poisoned(a));
}

TEST(LocalMemory, ResetClears)
{
    LocalMemory m;
    m.write(LocalAddr::unflatten(1), makeVec(Vec(1.0f)));
    m.reset();
    EXPECT_EQ(m.footprint(), 0u);
}

} // namespace
} // namespace tsm
