#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "hostprof/hostprof.hh"
#include "prof/report.hh"
#include "scenario/runner.hh"
#include "scenario/scenario.hh"
#include "telemetry/bench_diff.hh"

namespace tsm {
namespace {

/** A small but non-trivial scenario: 3-stage pipeline on one node. */
const char *kScenarioText = R"({
  "schema": "tsm-scenario-v1",
  "name": "hostprof_determinism",
  "seed": 11,
  "topology": {"kind": "node", "wiring": "full_mesh"},
  "flows": [
    {"id": 1, "src": 0, "dst": 1, "tensor": {"vectors": 24}, "start": 0},
    {"id": 2, "src": 1, "dst": 2, "tensor": {"vectors": 24},
     "start": 15000},
    {"id": 3, "src": 2, "dst": 3, "tensor": {"vectors": 24},
     "start": 30000}
  ]
})";

Scenario
loadScenario()
{
    Scenario sc;
    std::string error;
    EXPECT_TRUE(parseScenario(kScenarioText, sc, &error)) << error;
    return sc;
}

std::string
slurp(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    std::ostringstream text;
    text << f.rdbuf();
    return text.str();
}

TEST(HostprofDeterminism, JournalIdenticalWithAndWithoutProfiler)
{
    const Scenario sc = loadScenario();
    HostProfiler hp;
    const ScenarioExecution profiled = executeScenario(sc, {}, &hp);
    const ScenarioExecution bare = executeScenario(sc);
    ASSERT_FALSE(profiled.journal.empty());
    EXPECT_EQ(profiled.journal, bare.journal);
    EXPECT_EQ(profiled.makespan, bare.makespan);
    EXPECT_EQ(profiled.flitsDelivered, bare.flitsDelivered);
    // And the profiler actually observed the run it didn't perturb.
    EXPECT_GT(hp.events(), 0u);
}

TEST(HostprofDeterminism, NonTimingFieldsAgreeAcrossRuns)
{
    const Scenario sc = loadScenario();
    HostProfiler a, b;
    executeScenario(sc, {}, &a);
    executeScenario(sc, {}, &b);

    EXPECT_EQ(a.events(), b.events());
    EXPECT_EQ(a.simPs(), b.simPs());
    EXPECT_EQ(a.runs(), b.runs());
    EXPECT_EQ(a.queue().inserts, b.queue().inserts);
    EXPECT_EQ(a.queue().maxDepth, b.queue().maxDepth);
    EXPECT_EQ(a.queue().batches, b.queue().batches);
    EXPECT_EQ(a.queue().maxBatch, b.queue().maxBatch);
    for (unsigned k = 0; k < kNumEventKinds; ++k) {
        EXPECT_EQ(a.kind(EventKind(k)).events, b.kind(EventKind(k)).events)
            << eventKindName(EventKind(k));
        EXPECT_EQ(a.kind(EventKind(k)).allocs, b.kind(EventKind(k)).allocs)
            << eventKindName(EventKind(k));
    }
}

TEST(HostprofDeterminism, ProfileReportBytesUnchangedByHostprof)
{
    const Scenario sc = loadScenario();
    const std::string dir = ::testing::TempDir();
    const std::string bare_path = dir + "/hostprof_det_bare.json";
    const std::string prof_path = dir + "/hostprof_det_prof.json";
    const std::string hp_path = dir + "/hostprof_det_hp.json";

    std::uint64_t digestBare = 0, digestProf = 0;
    {
        TraceOptions opts;
        opts.reportPath = bare_path;
        opts.digest = true;
        TraceSession session(std::move(opts));
        runScenario(session, sc);
        digestBare = session.digest();
        session.finish();
    }
    {
        TraceOptions opts;
        opts.reportPath = prof_path;
        opts.hostprofPath = hp_path;
        opts.digest = true;
        TraceSession session(std::move(opts));
        runScenario(session, sc);
        digestProf = session.digest();
        session.finish();
    }
    const std::string bare = slurp(bare_path);
    ASSERT_FALSE(bare.empty());
    EXPECT_EQ(bare, slurp(prof_path));
    EXPECT_EQ(digestBare, digestProf);
    // The hostprof document itself was written and is valid.
    std::string error;
    const Json hp = Json::parse(slurp(hp_path), &error);
    ASSERT_FALSE(hp.isNull()) << error;
    EXPECT_EQ(hp["schema"].str(), kHostprofSchema);
    EXPECT_GT(hp["events"].integer(), 0);
}

TEST(HostprofDeterminism, SummaryFooterReflectsHostprofPresence)
{
    const Json report = Json::parse(R"({"schema": "tsm-profile-v1",
                                        "bench": "footer"})",
                                    nullptr);
    const std::string bare = renderProfileSummary(report);
    EXPECT_NE(bare.find("host: n/a"), std::string::npos);

    HostProfiler hp;
    executeScenario(loadScenario(), {}, &hp);
    const Json host = hp.report();
    const std::string footed = renderProfileSummary(report, 5, &host);
    EXPECT_EQ(footed.find("host: n/a"), std::string::npos);
    EXPECT_NE(footed.find("events/s"), std::string::npos);
}

TEST(HostprofDeterminism, BenchDiffGatesHostprofDocuments)
{
    HostProfiler hp;
    executeScenario(loadScenario(), {}, &hp);
    const Json doc = hp.report();

    // Self-comparison is exact even at zero tolerance.
    const DiffResult same = diffReports(doc, doc, 0.0);
    EXPECT_FALSE(same.regressed);
    EXPECT_GT(same.metrics.size(), 0u);

    // A slower simulator (higher slowdown) regresses...
    Json slowed = doc;
    Json rate = doc["sim_rate"];
    rate.set("slowdown", doc["sim_rate"]["slowdown"].number() * 2.0 + 1.0);
    rate.set("events_per_sec",
             doc["sim_rate"]["events_per_sec"].number() / 2.0);
    slowed.set("sim_rate", rate);
    EXPECT_TRUE(diffReports(doc, slowed, 0.05).regressed);

    // ...and so does any drift in the deterministic counts.
    Json mutated = doc;
    mutated.set("events", doc["events"].integer() + 1);
    EXPECT_TRUE(diffReports(doc, mutated, 0.0).regressed);

    // Schema mismatch is a hard failure, not a silent pass.
    const Json profile = Json::parse(R"({"schema": "tsm-profile-v1"})",
                                     nullptr);
    EXPECT_TRUE(diffReports(doc, profile, 0.0).regressed);
}

} // namespace
} // namespace tsm
