#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "hostprof/alloc_hook.hh"
#include "hostprof/hostprof.hh"
#include "sim/event_queue.hh"

namespace tsm {
namespace {

/**
 * Deterministic clock for pinning attribution and window semantics:
 * the test sets `t` between hook calls (step 0), or lets every read
 * advance it by `step` to simulate uniform per-call cost.
 */
struct ScriptedClock : HostClock
{
    mutable std::uint64_t t = 0;
    std::uint64_t step = 0;

    std::uint64_t nowNs() const override
    {
        const std::uint64_t v = t;
        t += step;
        return v;
    }
};

TEST(HostProfiler, AttributesEveryNanosecondExactly)
{
    ScriptedClock clock;
    HostProfiler hp(&clock, 1'000'000);

    clock.t = 100;
    hp.runBegin(0, 2);
    clock.t = 110;
    hp.dispatchBegin(); // 10 ns of queue time
    clock.t = 150;
    hp.dispatchEnd(EventKind::ChipIssue, 1000, 1); // 40 ns chip_issue
    clock.t = 160;
    hp.dispatchBegin(); // 10 ns of queue time
    clock.t = 200;
    hp.dispatchEnd(EventKind::NetDeliver, 3000, 0); // 40 ns net_deliver
    clock.t = 230;
    hp.runEnd(3000, 0); // 30 ns of queue (drain) time

    EXPECT_EQ(hp.events(), 2u);
    EXPECT_EQ(hp.runs(), 1u);
    EXPECT_EQ(hp.wallNs(), 130u);
    EXPECT_EQ(hp.queueNs(), 50u);
    EXPECT_EQ(hp.kind(EventKind::ChipIssue).wallNs, 40u);
    EXPECT_EQ(hp.kind(EventKind::NetDeliver).wallNs, 40u);
    EXPECT_EQ(hp.simPs(), 3000u);

    // The exactness invariant: queue + sum(kinds) == wall, identically.
    std::uint64_t kindNs = 0;
    for (unsigned k = 0; k < kNumEventKinds; ++k)
        kindNs += hp.kind(EventKind(k)).wallNs;
    EXPECT_EQ(hp.queueNs() + kindNs, hp.wallNs());
}

TEST(HostProfiler, AttributionSumsExactlyUnderFuzzedTimings)
{
    // Pseudo-random hook timings: whatever the clock does, every
    // nanosecond must land in exactly one bucket.
    ScriptedClock clock;
    HostProfiler hp(&clock, 1'000);
    std::uint64_t rng = 0x9e3779b97f4a7c15ULL;
    auto advance = [&] {
        rng ^= rng >> 33;
        rng *= 0xff51afd7ed558ccdULL;
        rng ^= rng >> 29;
        clock.t += rng % 997;
    };

    Tick sim = 0;
    for (unsigned run = 0; run < 7; ++run) {
        advance();
        hp.runBegin(sim, run);
        const unsigned events = (run * 13) % 29;
        for (unsigned e = 0; e < events; ++e) {
            advance();
            hp.dispatchBegin();
            advance();
            sim += (rng % 5000);
            hp.dispatchEnd(EventKind((run + e) % kNumEventKinds), sim,
                           e % 11);
        }
        advance();
        hp.runEnd(sim, 0);
    }

    std::uint64_t kindNs = 0;
    std::uint64_t kindEvents = 0;
    for (unsigned k = 0; k < kNumEventKinds; ++k) {
        kindNs += hp.kind(EventKind(k)).wallNs;
        kindEvents += hp.kind(EventKind(k)).events;
    }
    EXPECT_EQ(hp.queueNs() + kindNs, hp.wallNs());
    EXPECT_EQ(kindEvents, hp.events());
    EXPECT_EQ(hp.simPs(), std::uint64_t(sim));
    EXPECT_EQ(hp.runs(), 7u);
}

TEST(HostProfiler, ClosesWindowsOnFixedWallBoundaries)
{
    ScriptedClock clock;
    HostProfiler hp(&clock, 100); // 100 ns windows

    clock.t = 1000;
    hp.runBegin(0, 0);
    clock.t = 1010;
    hp.dispatchBegin();
    clock.t = 1050;
    hp.dispatchEnd(EventKind::Generic, 500, 3); // within window 0
    clock.t = 1060;
    hp.dispatchBegin();
    clock.t = 1120;
    hp.dispatchEnd(EventKind::Generic, 900, 2); // crosses into window 1
    ASSERT_EQ(hp.windows().size(), 1u);
    EXPECT_EQ(hp.windows()[0].endNs, 100u); // relative to start
    EXPECT_EQ(hp.windows()[0].events, 2u);
    EXPECT_EQ(hp.windows()[0].simPs, 900u);
    EXPECT_EQ(hp.windows()[0].depth, 2u);

    // A dispatch landing several windows later closes the empty
    // intermediate windows too — gaps are real data, not skipped.
    clock.t = 1130;
    hp.dispatchBegin();
    clock.t = 1420;
    hp.dispatchEnd(EventKind::Generic, 1000, 1);
    ASSERT_EQ(hp.windows().size(), 4u);
    EXPECT_EQ(hp.windows()[1].endNs, 200u);
    EXPECT_EQ(hp.windows()[1].events, 1u); // the 1120 dispatch
    EXPECT_EQ(hp.windows()[2].events, 0u);
    EXPECT_EQ(hp.windows()[3].events, 0u);
    clock.t = 1430;
    hp.runEnd(1000, 0);
    EXPECT_EQ(hp.windowsDropped(), 0u);
    // The 1420 dispatch was tallied into the window that was open when
    // it ran (closed as endNs 200), so no partial window remains open
    // and the report carries exactly the four closed windows.
    const Json doc = hp.report();
    ASSERT_EQ(doc["windows"].size(), 4u);
    EXPECT_EQ(doc["windows"].at(3)["events"].integer(), 0);
}

TEST(HostProfiler, ZeroLengthRunAccruesOnlyQueueTime)
{
    ScriptedClock clock;
    HostProfiler hp(&clock, 100);
    clock.t = 50;
    hp.runBegin(0, 0);
    clock.t = 80;
    hp.runEnd(0, 0);
    EXPECT_EQ(hp.events(), 0u);
    EXPECT_EQ(hp.wallNs(), 30u);
    EXPECT_EQ(hp.queueNs(), 30u);
    EXPECT_TRUE(hp.windows().empty());
    // And an honest zero-rate report, not a division by zero.
    const Json doc = hp.report();
    EXPECT_EQ(doc["sim_rate"]["slowdown"].number(), 0.0);
    EXPECT_EQ(doc["windows"].size(), 0u);
}

TEST(HostProfiler, QueueTelemetryAgainstScriptedEventSequence)
{
    // A real EventQueue: one seed event whose callback schedules three
    // more (a batch), each of which schedules nothing.
    EventQueue eq;
    HostProfiler hp;
    eq.setHostProfiler(&hp);
    eq.schedule(10, [&eq] {
        for (Tick t = 20; t <= 40; t += 10)
            eq.schedule(t, [] {}, kSpanNone, EventKind::Generic);
    });
    eq.run();

    EXPECT_EQ(hp.events(), 4u);
    EXPECT_EQ(hp.queue().inserts, 4u);
    // Depth peaks at 3 right after the batch insert.
    EXPECT_EQ(hp.queue().maxDepth, 3u);
    EXPECT_EQ(hp.queue().batches, 1u);
    EXPECT_EQ(hp.queue().maxBatch, 3u);
    EXPECT_EQ(hp.runs(), 1u);
}

TEST(HostProfiler, ReportSchemaAndKindOrdering)
{
    ScriptedClock clock;
    clock.step = 7;
    HostProfiler hp(&clock);
    hp.setBench("unit");
    hp.setSeed(42);
    hp.runBegin(0, 0);
    hp.dispatchBegin();
    hp.dispatchEnd(EventKind::RouterHop, 1111, 0);
    hp.runEnd(1111, 0);

    const Json doc = hp.report();
    EXPECT_EQ(doc["schema"].str(), kHostprofSchema);
    EXPECT_EQ(doc["bench"].str(), "unit");
    EXPECT_EQ(doc["seed"].integer(), 42);
    ASSERT_EQ(doc["kinds"].size(), std::size_t(kNumEventKinds));
    // Kinds serialize in enum order, every kind always present.
    EXPECT_EQ(doc["kinds"].at(0)["kind"].str(), "generic");
    EXPECT_EQ(doc["kinds"].at(1)["kind"].str(), "chip_issue");
    EXPECT_EQ(doc["kinds"].at(2)["kind"].str(), "net_deliver");
    EXPECT_EQ(doc["kinds"].at(3)["kind"].str(), "hac_update");
    EXPECT_EQ(doc["kinds"].at(4)["kind"].str(), "sync_probe");
    EXPECT_EQ(doc["kinds"].at(5)["kind"].str(), "router_hop");
    // The sections tile the wall time exactly.
    EXPECT_EQ(doc["sections"]["queue_ns"].integer() +
                  doc["sections"]["dispatch_ns"].integer(),
              doc["wall_ns"].integer());
    // And the per-kind event counts tile the event total.
    std::int64_t kindEvents = 0;
    for (const Json &k : doc["kinds"].items())
        kindEvents += k["events"].integer();
    EXPECT_EQ(kindEvents, doc["events"].integer());
}

TEST(HostProfiler, InjectedSlowdownInflatesTheDispatchBucket)
{
    HostProfiler hp; // real steady clock
    hp.setSlowdownNs(50'000);
    EventQueue eq;
    eq.setHostProfiler(&hp);
    for (Tick t = 10; t <= 100; t += 10)
        eq.schedule(t, [] {}, kSpanNone, EventKind::ChipIssue);
    eq.run();
    EXPECT_EQ(hp.events(), 10u);
    // Each dispatch spun >= 50 us, attributed to chip_issue.
    EXPECT_GE(hp.kind(EventKind::ChipIssue).wallNs, 10u * 50'000u);
    const Json doc = hp.report();
    EXPECT_EQ(doc["slowdown_injected_ns"].integer(), 50'000);
}

TEST(HostProfiler, CountsEventPathAllocations)
{
    if (!hostalloc::hookCompiledIn())
        GTEST_SKIP() << "TSM_HOSTPROF_ALLOC_HOOK off";
    HostProfiler hp;
    EventQueue eq;
    eq.setHostProfiler(&hp);
    eq.schedule(10, [] {
        std::vector<char> big(4096);
        big[0] = 1;
        (void)big;
    }, kSpanNone, EventKind::NetDeliver);
    eq.run();
    EXPECT_GE(hp.kind(EventKind::NetDeliver).allocs, 1u);
    EXPECT_GE(hp.kind(EventKind::NetDeliver).allocBytes, 4096u);
}

TEST(HostProfiler, RenderHostRateLineHonestWithoutData)
{
    EXPECT_NE(renderHostRateLine(nullptr).find("host: n/a"),
              std::string::npos);
    const Json null;
    EXPECT_NE(renderHostRateLine(&null).find("host: n/a"),
              std::string::npos);
}

TEST(HostProfiler, RenderHostprofShowsHotKindsAndQueue)
{
    HostProfiler hp;
    hp.setBench("render");
    EventQueue eq;
    eq.setHostProfiler(&hp);
    for (Tick t = 10; t <= 300; t += 10)
        eq.schedule(t, [] {}, kSpanNone, EventKind::RouterHop);
    eq.run();
    const Json doc = hp.report();
    const std::string out = renderHostprof(doc);
    EXPECT_NE(out.find("render"), std::string::npos);
    EXPECT_NE(out.find("router_hop"), std::string::npos);
    EXPECT_NE(out.find("queue:"), std::string::npos);
    const std::string line = renderHostRateLine(&doc);
    EXPECT_NE(line.find("events/s"), std::string::npos);
}

} // namespace
} // namespace tsm
