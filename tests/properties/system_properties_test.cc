#include <gtest/gtest.h>

#include <memory>

#include "arch/chip.hh"
#include "collective/allreduce.hh"
#include "runtime/system.hh"
#include "ssn/scheduler.hh"
#include "sync/sync_tree.hh"

namespace tsm {
namespace {

/** Golden-run reproducibility across full-system simulations. */
TEST(GoldenRun, FullSystemByteIdenticalAcrossRuns)
{
    auto run = [](std::uint64_t seed) {
        SystemConfig cfg;
        cfg.numTsps = 16;
        cfg.driftPpmSigma = 25.0;
        cfg.jitter = true;
        cfg.seed = seed;
        TsmSystem sys(cfg);
        const int residual = sys.synchronize(2 * kPsPerMs);
        std::vector<Program> payloads(16);
        for (auto &p : payloads) {
            p.emitCompute(12345);
            auto &rd = p.emit(Op::RuntimeDeskew);
            rd.imm = 32;
            p.emitCompute(6789);
        }
        sys.launchAligned(std::move(payloads));
        sys.runToCompletion();
        std::vector<Tick> halts;
        for (TspId t = 0; t < 16; ++t)
            halts.push_back(sys.chip(t).stats().haltTick);
        return std::pair(residual, halts);
    };
    const auto a = run(99);
    const auto b = run(99);
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
    // A different seed gives a different (but valid) execution.
    const auto c = run(100);
    EXPECT_NE(a.second, c.second);
}

/** Drift sweep: RUNTIME_DESKEW bounds skew across drift magnitudes. */
class DriftSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(DriftSweep, SkewStaysWithinOneEpoch)
{
    const double ppm = GetParam();
    EventQueue eq;
    Topology topo = Topology::makeNode();
    Network net(topo, eq, Rng(3));
    TspChip parent(0, net, DriftClock(0.0));
    TspChip child(1, net, DriftClock(ppm));
    const LinkId link = topo.linksBetween(0, 1)[0];
    HacAligner aligner(
        parent, child, link,
        double(linkPropagationPs(LinkClass::IntraNode)) / kCorePeriodPs);
    aligner.start();

    Program prog;
    for (int seg = 0; seg < 10; ++seg) {
        prog.emitCompute(200000);
        auto &rd = prog.emit(Op::RuntimeDeskew);
        rd.imm = 128;
    }
    prog.emitHalt();
    Program prog2 = prog;
    int halted = 0;
    const auto on_halt = [&] {
        if (++halted == 2)
            aligner.stop();
    };
    parent.onHalt(on_halt);
    child.onHalt(on_halt);
    parent.load(std::move(prog));
    child.load(std::move(prog2));
    parent.start(0);
    child.start(0);
    eq.run();

    const auto skew = std::llabs(std::int64_t(parent.stats().haltTick) -
                                 std::int64_t(child.stats().haltTick));
    EXPECT_LT(skew, std::int64_t(kHacPeriodCycles * kCorePeriodPs))
        << "ppm=" << ppm;
}

INSTANTIATE_TEST_SUITE_P(Ppm, DriftSweep,
                         ::testing::Values(-80.0, -40.0, -10.0, 10.0,
                                           40.0, 80.0));

/** Aligner adjustment-rate ablation: faster rate converges sooner. */
class RateSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(RateSweep, ConvergesFromLargeOffset)
{
    const int rate = GetParam();
    EventQueue eq;
    Topology topo = Topology::makeNode();
    Network net(topo, eq, Rng(4));
    TspChip parent(0, net, DriftClock());
    TspChip child(1, net, DriftClock());
    child.adjustHac(120);
    HacAlignerConfig cfg;
    cfg.maxAdjustPerUpdate = rate;
    HacAligner aligner(
        parent, child, topo.linksBetween(0, 1)[0],
        double(linkPropagationPs(LinkClass::IntraNode)) / kCorePeriodPs,
        cfg);
    aligner.start();
    eq.runUntil(Tick((130.0 / rate + 20) * kHacPeriodCycles *
                     kCorePeriodPs));
    aligner.stop();
    eq.run();
    EXPECT_TRUE(aligner.converged(2))
        << "rate " << rate << " delta " << aligner.lastDelta();
    // Updates needed scales inversely with the rate.
    EXPECT_GE(aligner.updatesApplied(), std::uint64_t(120 / rate));
}

INSTANTIATE_TEST_SUITE_P(Rates, RateSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

/** FEC sweep: error rates scale detections, never timing. */
class FecSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(FecSweep, DetectionsScaleTimingDoesNot)
{
    const double rate = GetParam();
    const Topology topo = Topology::makeNode();
    EventQueue eq;
    Network net(topo, eq, Rng(5));
    net.setErrorModel({.sbePerVector = rate, .mbePerVector = rate / 10});
    const LinkId l = topo.linksBetween(0, 1)[0];
    const Tick ser = Tick(kVectorSerializationPs);
    const unsigned n = 2000;
    Tick last_arrival = 0;
    for (unsigned i = 0; i < n; ++i)
        last_arrival = net.transmit(0, l, Flit{}, i * ser);
    eq.run();
    // Timing identical regardless of the error rate.
    EXPECT_EQ(last_arrival,
              (n - 1) * ser + ser + linkPropagationPs(LinkClass::IntraNode));
    // Detections track the configured rates statistically.
    const auto &st = net.linkStats(l);
    EXPECT_NEAR(double(st.sbeCorrected), rate * n,
                5.0 * std::sqrt(rate * n) + 3.0);
    EXPECT_NEAR(double(st.mbeDetected), rate / 10 * n,
                5.0 * std::sqrt(rate / 10 * n) + 3.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, FecSweep,
                         ::testing::Values(0.001, 0.01, 0.1, 0.5));

/** All-reduce analytic/scheduled agreement across sizes (TEST_P). */
class AllReduceAgreement : public ::testing::TestWithParam<Bytes>
{
};

TEST_P(AllReduceAgreement, WithinFifteenPercent)
{
    const Topology topo = Topology::makeNode();
    HierarchicalAllReduce ar(topo);
    const Bytes bytes = GetParam();
    const auto sim = ar.scheduled(bytes);
    const auto model = ar.analytic(bytes);
    EXPECT_NEAR(double(model.cycles), double(sim.cycles),
                0.15 * double(sim.cycles));
}

INSTANTIATE_TEST_SUITE_P(Sizes, AllReduceAgreement,
                         ::testing::Values(32 * kKiB, 128 * kKiB,
                                           kMiB, 2 * kMiB));

} // namespace
} // namespace tsm
