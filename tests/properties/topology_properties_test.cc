#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>

#include "net/topology.hh"

namespace tsm {
namespace {

/** Property sweep over single-level system sizes. */
class SingleLevelProps : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SingleLevelProps, StructuralInvariants)
{
    const unsigned nodes = GetParam();
    const Topology t = Topology::makeSingleLevel(nodes);

    // Size arithmetic.
    EXPECT_EQ(t.numTsps(), nodes * kTspsPerNode);
    EXPECT_EQ(t.numNodes(), nodes);
    EXPECT_TRUE(t.connected());
    EXPECT_LE(t.diameter(), 3u);

    // Port budgets: <= 7 local, <= 4 global, no port reused.
    std::vector<std::set<unsigned>> ports(t.numTsps());
    std::vector<unsigned> local(t.numTsps(), 0), global(t.numTsps(), 0);
    for (const auto &l : t.links()) {
        EXPECT_NE(l.a, l.b);
        EXPECT_TRUE(ports[l.a].insert(l.portA).second);
        EXPECT_TRUE(ports[l.b].insert(l.portB).second);
        auto &va = l.cls == LinkClass::IntraNode ? local : global;
        ++va[l.a];
        ++va[l.b];
    }
    for (TspId i = 0; i < t.numTsps(); ++i) {
        EXPECT_LE(local[i], kLocalPortsPerTsp);
        EXPECT_LE(global[i], kGlobalPortsPerTsp);
    }

    // Intra-node links stay within one node; global links cross.
    for (const auto &l : t.links()) {
        if (l.cls == LinkClass::IntraNode)
            EXPECT_EQ(t.nodeOf(l.a), t.nodeOf(l.b));
        else
            EXPECT_NE(t.nodeOf(l.a), t.nodeOf(l.b));
    }
}

TEST_P(SingleLevelProps, NodePairConnectivityIsBalanced)
{
    const unsigned nodes = GetParam();
    if (nodes < 2)
        return;
    const Topology t = Topology::makeSingleLevel(nodes);
    // Count links per node pair: every pair connected; max/min spread
    // bounded by the greedy second pass (at most a factor of ~2).
    std::map<std::pair<unsigned, unsigned>, unsigned> pair_links;
    for (const auto &l : t.links()) {
        if (l.cls == LinkClass::IntraNode)
            continue;
        const unsigned na = t.nodeOf(l.a), nb = t.nodeOf(l.b);
        ++pair_links[{std::min(na, nb), std::max(na, nb)}];
    }
    EXPECT_EQ(pair_links.size(), std::size_t(nodes) * (nodes - 1) / 2);
    unsigned lo = ~0u, hi = 0;
    for (const auto &[k, v] : pair_links) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    EXPECT_GE(lo, 1u);
    EXPECT_LE(hi, lo * 2 + 1);
}

TEST_P(SingleLevelProps, LinkAtPortIsInverseOfPortAssignment)
{
    const Topology t = Topology::makeSingleLevel(GetParam());
    for (LinkId l = 0; l < t.links().size(); ++l) {
        const Link &link = t.links()[l];
        EXPECT_EQ(t.linkAtPort(link.a, link.portA), l);
        EXPECT_EQ(t.linkAtPort(link.b, link.portB), l);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SingleLevelProps,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           33u));

/** Property sweep over two-level (rack) system sizes. */
class TwoLevelProps : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TwoLevelProps, StructuralInvariants)
{
    const unsigned racks = GetParam();
    const Topology t = Topology::makeTwoLevel(racks);
    EXPECT_EQ(t.numTsps(), racks * 72);
    EXPECT_TRUE(t.connected());
    EXPECT_LE(t.diameter(), 7u);

    std::vector<unsigned> global(t.numTsps(), 0);
    unsigned intra_rack = 0, inter_rack = 0;
    for (const auto &l : t.links()) {
        if (l.cls == LinkClass::IntraNode)
            continue;
        ++global[l.a];
        ++global[l.b];
        if (t.rackOf(l.a) == t.rackOf(l.b)) {
            ++intra_rack;
            EXPECT_EQ(l.cls, LinkClass::IntraRack);
        } else {
            ++inter_rack;
            EXPECT_EQ(l.cls, LinkClass::InterRack);
        }
    }
    for (unsigned g : global)
        EXPECT_LE(g, kGlobalPortsPerTsp);
    // 36 doubly-connected node pairs per rack.
    EXPECT_EQ(intra_rack, racks * 72u);
    // Every rack pair connected.
    EXPECT_GE(inter_rack, racks * (racks - 1) / 2);
}

TEST_P(TwoLevelProps, EveryRackPairDirectlyLinked)
{
    const unsigned racks = GetParam();
    const Topology t = Topology::makeTwoLevel(racks);
    std::set<std::pair<unsigned, unsigned>> pairs;
    for (const auto &l : t.links())
        if (l.cls == LinkClass::InterRack) {
            const unsigned ra = t.rackOf(l.a), rb = t.rackOf(l.b);
            pairs.insert({std::min(ra, rb), std::max(ra, rb)});
        }
    EXPECT_EQ(pairs.size(), std::size_t(racks) * (racks - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TwoLevelProps,
                         ::testing::Values(2u, 3u, 7u, 16u, 33u, 64u,
                                           145u));

/** Path enumeration properties over assorted topologies. */
class PathProps : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PathProps, PathsAreSimpleAndConnectEndpoints)
{
    const Topology t = Topology::makeSingleLevel(GetParam());
    const TspId src = 0;
    const TspId dst = t.numTsps() - 1;
    for (const auto &path : t.paths(src, dst, 1, 24)) {
        ASSERT_FALSE(path.empty());
        TspId at = src;
        std::set<TspId> visited{src};
        for (LinkId l : path) {
            const Link &link = t.links()[l];
            ASSERT_TRUE(link.a == at || link.b == at);
            at = link.peer(at);
            // Simple: no vertex revisited.
            EXPECT_TRUE(visited.insert(at).second);
        }
        EXPECT_EQ(at, dst);
        EXPECT_LE(path.size(), t.distance(src, dst) + 1);
    }
}

TEST_P(PathProps, MinimalPathsHaveExactlyShortestLength)
{
    const Topology t = Topology::makeSingleLevel(GetParam());
    const TspId dst = t.numTsps() / 2 + 1;
    const unsigned d = t.distance(0, dst);
    for (const auto &p : t.minimalPaths(0, dst, 16))
        EXPECT_EQ(p.size(), d);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PathProps,
                         ::testing::Values(2u, 4u, 9u, 17u));

TEST(NodeFailure, AnySingleNodeRemovalKeepsRestConnected)
{
    // Edge/node symmetry claim (§4.5), checked for every node.
    for (unsigned victim = 0; victim < 4; ++victim) {
        Topology t = Topology::makeSingleLevel(4);
        t.disableNode(victim);
        const TspId lo = victim * kTspsPerNode;
        // BFS from a surviving TSP must reach all other survivors.
        const TspId start = victim == 0 ? kTspsPerNode : 0;
        unsigned reachable = 0;
        for (TspId other = 0; other < t.numTsps(); ++other) {
            if (other >= lo && other < lo + kTspsPerNode)
                continue;
            reachable += t.distance(start, other) != ~0u;
        }
        EXPECT_EQ(reachable, t.numTsps() - kTspsPerNode)
            << "victim " << victim;
    }
}

} // namespace
} // namespace tsm
