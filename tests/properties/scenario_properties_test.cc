/**
 * @file
 * Property tests over the scenario generator (ISSUE satellite): for
 * 200 consecutive seeds, every generated scenario validates, stays
 * within its declared topology's bounds, and round-trips through the
 * canonical serializer byte-identically. Plus: the generator itself
 * is a pure function of its seed, and every shrink candidate it
 * offers the fuzzer is itself valid.
 */

#include <gtest/gtest.h>

#include <string>

#include "scenario/generator.hh"
#include "scenario/scenario.hh"

namespace tsm {
namespace {

constexpr std::uint64_t kSeeds = 200;

TEST(ScenarioProperties, GeneratedScenariosValidate)
{
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        const Scenario sc = generateScenario(seed);
        std::string error;
        EXPECT_TRUE(validateScenario(sc, &error))
            << "seed " << seed << ": " << error;
    }
}

TEST(ScenarioProperties, GeneratedScenariosRespectTopologyBounds)
{
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        const Scenario sc = generateScenario(seed);
        const Topology topo = sc.topology.build();
        const unsigned n = topo.numTsps();
        for (const ScenarioFlow &f : sc.flows) {
            EXPECT_LT(f.src, n) << "seed " << seed;
            EXPECT_LT(f.dst, n) << "seed " << seed;
            EXPECT_NE(f.src, f.dst) << "seed " << seed;
            EXPECT_GE(f.tensor.vectors, 1u) << "seed " << seed;
            EXPECT_NE(f.id, 0u) << "seed " << seed;
        }
        for (const ScenarioCollective &c : sc.collectives) {
            EXPECT_LT(c.root, n) << "seed " << seed;
            EXPECT_GE(c.vectors, 1u) << "seed " << seed;
        }
        for (const ScenarioPattern &p : sc.patterns)
            EXPECT_GE(p.vectors, 1u) << "seed " << seed;
    }
}

TEST(ScenarioProperties, GeneratedScenariosRoundTripByteIdentically)
{
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        const Scenario sc = generateScenario(seed);
        const std::string text = dumpScenario(sc);
        Scenario reparsed;
        std::string error;
        ASSERT_TRUE(parseScenario(text, reparsed, &error))
            << "seed " << seed << ": " << error;
        EXPECT_EQ(dumpScenario(reparsed), text) << "seed " << seed;
    }
}

TEST(ScenarioProperties, GeneratorIsAPureFunctionOfItsSeed)
{
    for (std::uint64_t seed = 1; seed <= 32; ++seed)
        EXPECT_EQ(dumpScenario(generateScenario(seed)),
                  dumpScenario(generateScenario(seed)))
            << "seed " << seed;
}

TEST(ScenarioProperties, GeneratorHonorsConfigCeilings)
{
    FuzzConfig cfg;
    cfg.maxFlows = 3;
    cfg.maxVectors = 4;
    cfg.allowCollectives = false;
    cfg.allowPatterns = false;
    cfg.allowMbe = false;
    cfg.allowBackground = false;
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        const Scenario sc = generateScenario(seed, cfg);
        EXPECT_LE(sc.flows.size(), 3u) << "seed " << seed;
        EXPECT_TRUE(sc.collectives.empty()) << "seed " << seed;
        EXPECT_TRUE(sc.patterns.empty()) << "seed " << seed;
        EXPECT_EQ(sc.mbe, 0.0) << "seed " << seed;
        for (const ScenarioFlow &f : sc.flows) {
            EXPECT_EQ(f.role, FlowRole::Foreground) << "seed " << seed;
            if (!f.tensor.hasShape)
                EXPECT_LE(f.tensor.vectors, 4u) << "seed " << seed;
        }
    }
}

TEST(ScenarioProperties, ShrinkCandidatesAreAlwaysValidAndSmaller)
{
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        const Scenario sc = generateScenario(seed);
        const std::string original = dumpScenario(sc);
        for (const Scenario &candidate : shrinkCandidates(sc)) {
            std::string error;
            EXPECT_TRUE(validateScenario(candidate, &error))
                << "seed " << seed << ": " << error;
            EXPECT_NE(dumpScenario(candidate), original)
                << "seed " << seed
                << ": shrink candidate equals its parent";
        }
    }
}

} // namespace
} // namespace tsm
