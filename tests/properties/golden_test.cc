#include <gtest/gtest.h>

#include "baseline/gpu_matmul.hh"
#include "collective/allreduce.hh"
#include "net/topology.hh"
#include "ssn/dump.hh"
#include "ssn/scheduler.hh"
#include "ssn/spread.hh"
#include "workload/cholesky.hh"

namespace tsm {
namespace {

/**
 * Golden anchors: exact values the calibration and the emergent
 * results rest on. A change to any of these is either a deliberate
 * recalibration (update here AND in EXPERIMENTS.md) or a regression.
 */

TEST(Golden, TimingConstants)
{
    EXPECT_EQ(Tick(kVectorSerializationPs), 26240u);
    EXPECT_EQ(flightCycles(LinkClass::IntraNode), 241u);
    EXPECT_EQ(flightCycles(LinkClass::IntraRack), 277u);
    EXPECT_EQ(flightCycles(LinkClass::InterRack), 514u);
    EXPECT_EQ(forwardCycles(), 228u);
    EXPECT_EQ(hopLatencyPs(LinkClass::IntraNode), 520000u);
    EXPECT_EQ(hopLatencyPs(LinkClass::IntraRack), 560000u);
    EXPECT_EQ(hopLatencyPs(LinkClass::InterRack), 823000u);
}

TEST(Golden, MachineConstants)
{
    EXPECT_EQ(kLocalMemBytes, 230686720u);
    EXPECT_EQ(LocalAddr::kWords, 720896u);
    EXPECT_EQ(kHacPeriodCycles, 252u);
    EXPECT_NEAR(TspMatmulModel{}.peakFp16Tflops(), 184.32, 1e-9);
}

TEST(Golden, SpreadCrossover)
{
    // First message size at which the spreader leaves the minimal
    // path: 21 vectors = 6720 B (the "~8 KB" crossover of Fig 10).
    std::vector<PathChoice> paths;
    paths.push_back({{}, flightCycles(LinkClass::IntraNode)});
    for (unsigned p = 0; p < 7; ++p)
        paths.push_back({{},
                         2 * flightCycles(LinkClass::IntraNode) +
                             forwardCycles()});
    std::uint32_t first = 0;
    for (std::uint32_t v = 1; v < 64 && !first; ++v)
        if (spreadVectors(v, paths).pathsUsed() > 1)
            first = v;
    EXPECT_EQ(first, 21u);
}

TEST(Golden, SingleVectorScheduleTimeline)
{
    // The exact itinerary of a minimal one-vector transfer.
    const Topology topo = Topology::makeNode();
    SsnScheduler s(topo);
    TensorTransfer t;
    t.flow = 1;
    t.src = 0;
    t.dst = 1;
    t.vectors = 1;
    const auto sched = s.schedule({t});
    ASSERT_EQ(sched.vectors.size(), 1u);
    EXPECT_EQ(sched.vectors[0].departure(), 0u);
    EXPECT_EQ(sched.vectors[0].arrival(), 241u);
    EXPECT_EQ(sched.makespan, 241u);
}

TEST(Golden, NodeTopologyCensus)
{
    const Topology node = Topology::makeNode();
    EXPECT_EQ(node.links().size(), 28u);
    EXPECT_EQ(node.bisectionLinks(), 16u);
    const Topology max = Topology::makeTwoLevel(145);
    EXPECT_EQ(max.numTsps(), 10440u);
    unsigned inter = 0;
    for (const auto &l : max.links())
        inter += l.cls == LinkClass::InterRack;
    EXPECT_EQ(inter, 10440u);
}

TEST(Golden, AllReduceCeiling)
{
    // Saturated 8-way all-reduce bus bandwidth: ~82.3 GB/s
    // (7 x 12.5 GB/s wire-rate times 2(n-1)/n accounting and the
    // protocol's residual latency terms).
    const Topology node = Topology::makeNode();
    HierarchicalAllReduce ar(node);
    const double ceiling =
        ar.analytic(512 * kMiB).busBandwidthBytesPerSec / 1e9;
    EXPECT_NEAR(ceiling, 82.3, 0.3);
}

TEST(Golden, CholeskyCalibrationPoint)
{
    const auto est8 = choleskyEstimate(16000, 8);
    EXPECT_NEAR(est8.tflops, 21.2, 0.5);
    const double t1 = choleskyEstimate(16000, 1).seconds;
    EXPECT_NEAR(t1 / est8.seconds, 1.50, 0.03);
}

TEST(Golden, GpuModelReferencePoints)
{
    // A100 wave-quantization at the documented sweep endpoints.
    const GpuModel gpu;
    EXPECT_NEAR(gpuGemmUtilization(gpu, 2304, 4096, 1376).utilization,
                0.806, 0.005);
    EXPECT_NEAR(gpuGemmUtilization(gpu, 2304, 4096, 1553).utilization,
                0.607, 0.005);
}

} // namespace
} // namespace tsm
