#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "arch/chip.hh"
#include "common/rng.hh"
#include "ssn/deadlock.hh"
#include "ssn/scheduler.hh"

namespace tsm {
namespace {

/** Generate a random but reproducible transfer set. */
std::vector<TensorTransfer>
randomTransfers(Rng &rng, unsigned num_tsps, unsigned count,
                std::uint32_t max_vectors)
{
    std::vector<TensorTransfer> out;
    for (unsigned i = 0; i < count; ++i) {
        TensorTransfer t;
        t.flow = FlowId(i + 1);
        t.src = TspId(rng.below(num_tsps));
        do {
            t.dst = TspId(rng.below(num_tsps));
        } while (t.dst == t.src);
        t.vectors = std::uint32_t(rng.below(max_vectors) + 1);
        t.earliest = Cycle(rng.below(500));
        out.push_back(t);
    }
    return out;
}

/** Random workloads on the node, parameterized by seed. */
class SchedulerFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SchedulerFuzz, EveryRandomWorkloadValidates)
{
    Rng rng(GetParam());
    const Topology topo = Topology::makeNode();
    SsnScheduler scheduler(topo);
    const auto transfers = randomTransfers(rng, topo.numTsps(), 12, 64);
    const auto sched = scheduler.schedule(transfers);

    // (1) Conflict-free, causal, chained.
    const auto report = validateSchedule(sched, topo);
    EXPECT_TRUE(report.ok) << report.firstViolation;

    // (2) Conservation: exactly the requested vectors, once each.
    std::map<FlowId, std::uint32_t> counts;
    for (const auto &sv : sched.vectors)
        ++counts[sv.flow];
    for (const auto &t : transfers)
        EXPECT_EQ(counts[t.flow], t.vectors) << "flow " << t.flow;

    // (3) Release times respected.
    for (const auto &t : transfers)
        EXPECT_GE(sched.flows.at(t.flow).firstDeparture, t.earliest);

    // (4) Deadlock-freedom argument holds by construction.
    EXPECT_TRUE(holdAndWaitFree(sched, topo));
}

TEST_P(SchedulerFuzz, ScheduleExecutesOnChipsWithoutPanic)
{
    // The strongest property: lower the schedule to programs and run
    // it on the real chip/network simulation. Any timing error in the
    // scheduler (missed window, underflow, tag mismatch) panics.
    Rng rng(GetParam() ^ 0xabcd);
    const Topology topo = Topology::makeNode();
    SsnScheduler scheduler(topo);
    const auto transfers = randomTransfers(rng, topo.numTsps(), 6, 24);
    const auto sched = scheduler.schedule(transfers);

    EventQueue eq;
    Network net(topo, eq, Rng(GetParam()));
    std::vector<std::unique_ptr<TspChip>> chips;
    for (TspId t = 0; t < topo.numTsps(); ++t)
        chips.push_back(std::make_unique<TspChip>(t, net, DriftClock()));
    auto programs = buildPrograms(sched, topo);
    std::uint64_t expected_rx = 0;
    for (const auto &t : transfers)
        expected_rx += t.vectors;
    for (TspId t = 0; t < topo.numTsps(); ++t) {
        chips[t]->setStream(0, makeVec(Vec(float(t))));
        programs.byChip[t].emitHalt();
        chips[t]->load(std::move(programs.byChip[t]));
        chips[t]->start(0);
    }
    eq.run();

    std::uint64_t delivered = 0;
    for (const auto &c : chips)
        delivered += c->stats().flitsReceived;
    // Receptions include intermediate-hop forwards, so >= final
    // deliveries; final deliveries are bounded below by the transfer
    // volume.
    EXPECT_GE(delivered, expected_rx);
    for (const auto &c : chips)
        EXPECT_TRUE(c->halted());
}

TEST_P(SchedulerFuzz, MakespanBoundedByMinimalOnlySerialization)
{
    // Load balancing never loses to the trivial upper bound of
    // pushing everything down one path serially.
    Rng rng(GetParam() ^ 0x77);
    const Topology topo = Topology::makeNode();
    const auto transfers = randomTransfers(rng, topo.numTsps(), 8, 48);

    SsnScheduler balanced(topo);
    SsnScheduler minimal(topo, {.loadBalance = false});
    const auto b = balanced.schedule(transfers);
    const auto m = minimal.schedule(transfers);
    EXPECT_LE(b.makespan, m.makespan + 1);
}

TEST_P(SchedulerFuzz, LargeWorkloadsValidate)
{
    // Heavier load: more flows, bigger tensors — the reservation
    // ledger sees far more occupied windows per link.
    Rng rng(GetParam() ^ 0xf00d);
    const Topology topo = Topology::makeNode();
    SsnScheduler scheduler(topo);
    const auto transfers = randomTransfers(rng, topo.numTsps(), 32, 160);
    const auto sched = scheduler.schedule(transfers);

    const auto report = validateSchedule(sched, topo);
    EXPECT_TRUE(report.ok) << report.firstViolation;

    std::map<FlowId, std::uint32_t> counts;
    for (const auto &sv : sched.vectors)
        ++counts[sv.flow];
    for (const auto &t : transfers)
        EXPECT_EQ(counts[t.flow], t.vectors) << "flow " << t.flow;
    EXPECT_TRUE(holdAndWaitFree(sched, topo));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull,
                                           13ull, 21ull, 34ull, 55ull,
                                           89ull, 144ull, 233ull, 377ull,
                                           610ull, 987ull, 1597ull));

TEST(SchedulerCrossTopology, CrossNodeWorkloadsValidate)
{
    // Same fuzz on multi-node dragonflies (multi-hop, global links)
    // and the ring-wired node (longer minimal paths, fewer choices).
    const Topology topos[] = {Topology::makeSingleLevel(2),
                              Topology::makeSingleLevel(4),
                              Topology::makeNode(NodeWiring::TripleRing)};
    for (const Topology &topo : topos) {
        for (std::uint64_t seed :
             {100ull, 200ull, 300ull, 400ull, 500ull}) {
            Rng rng(seed);
            SsnScheduler scheduler(topo);
            const auto transfers =
                randomTransfers(rng, topo.numTsps(), 10, 32);
            const auto sched = scheduler.schedule(transfers);
            const auto report = validateSchedule(sched, topo);
            EXPECT_TRUE(report.ok)
                << topo.describe() << " seed " << seed << ": "
                << report.firstViolation;
        }
    }
}

TEST(SchedulerCrossTopology, CrossNodeSchedulesExecuteOnChips)
{
    // Execute a cross-node schedule on the simulator: inter-node
    // transfers traverse intermediate hops over global links, so this
    // exercises forwarding programs end to end.
    const Topology topo = Topology::makeSingleLevel(2);
    for (std::uint64_t seed : {1ull, 9ull}) {
        Rng rng(seed);
        SsnScheduler scheduler(topo);
        const auto transfers = randomTransfers(rng, topo.numTsps(), 4, 8);
        const auto sched = scheduler.schedule(transfers);

        EventQueue eq;
        Network net(topo, eq, Rng(seed));
        std::vector<std::unique_ptr<TspChip>> chips;
        for (TspId t = 0; t < topo.numTsps(); ++t)
            chips.push_back(
                std::make_unique<TspChip>(t, net, DriftClock()));
        auto programs = buildPrograms(sched, topo);
        for (TspId t = 0; t < topo.numTsps(); ++t) {
            chips[t]->setStream(0, makeVec(Vec(float(t))));
            programs.byChip[t].emitHalt();
            chips[t]->load(std::move(programs.byChip[t]));
            chips[t]->start(0);
        }
        eq.run();
        for (const auto &c : chips)
            EXPECT_TRUE(c->halted()) << "seed " << seed;
    }
}

TEST(SchedulerOrderSensitivity, TransferOrderIsHonouredDeterministically)
{
    // Scheduling is order-dependent (earlier transfers get earlier
    // windows) but deterministic: permuting inputs changes the
    // schedule reproducibly, not randomly.
    const Topology topo = Topology::makeNode();
    std::vector<TensorTransfer> fwd, rev;
    for (unsigned i = 0; i < 4; ++i) {
        TensorTransfer t;
        t.flow = i + 1;
        t.src = TspId(i);
        t.dst = TspId(i + 4);
        t.vectors = 32;
        fwd.push_back(t);
    }
    rev.assign(fwd.rbegin(), fwd.rend());

    SsnScheduler s(topo);
    const auto a1 = s.schedule(fwd);
    const auto a2 = s.schedule(fwd);
    const auto b = s.schedule(rev);
    EXPECT_EQ(a1.makespan, a2.makespan);
    EXPECT_TRUE(validateSchedule(b, topo).ok);
}

} // namespace
} // namespace tsm
