#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hh"
#include "ssn/reservation.hh"
#include "ssn/spread.hh"

namespace tsm {
namespace {

/** Brute-force optimal completion for two paths (exhaustive split). */
Cycle
bruteForceTwoPaths(std::uint32_t vectors, const PathChoice &a,
                   const PathChoice &b, Cycle window)
{
    Cycle best = ~Cycle(0);
    for (std::uint32_t x = 0; x <= vectors; ++x) {
        const Cycle ca = pathCompletionCycles(x, a.latencyCycles, window);
        const Cycle cb =
            pathCompletionCycles(vectors - x, b.latencyCycles, window);
        best = std::min(best, std::max(ca, cb));
    }
    return best;
}

class SpreadFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SpreadFuzz, WaterFillMatchesBruteForceOnTwoPaths)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 50; ++trial) {
        PathChoice a{{}, Cycle(rng.below(1000) + 1)};
        PathChoice b{{}, Cycle(rng.below(1000) + 1)};
        if (b.latencyCycles < a.latencyCycles)
            std::swap(a, b);
        const auto vectors = std::uint32_t(rng.below(200) + 1);
        const SpreadPlan plan = spreadVectors(vectors, {a, b});
        const Cycle brute =
            bruteForceTwoPaths(vectors, a, b, 24);
        EXPECT_EQ(plan.completionCycles, brute)
            << "v=" << vectors << " la=" << a.latencyCycles
            << " lb=" << b.latencyCycles;
    }
}

TEST_P(SpreadFuzz, ConservationAndMonotonicity)
{
    Rng rng(GetParam() ^ 0x5ee);
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<PathChoice> paths;
        const auto np = unsigned(rng.below(7) + 1);
        for (unsigned p = 0; p < np; ++p)
            paths.push_back({{}, Cycle(rng.below(2000) + 100)});
        std::sort(paths.begin(), paths.end(),
                  [](const auto &x, const auto &y) {
                      return x.latencyCycles < y.latencyCycles;
                  });
        const auto vectors = std::uint32_t(rng.below(500) + 1);
        const SpreadPlan plan = spreadVectors(vectors, paths);

        // Conservation.
        std::uint32_t total = 0;
        for (auto v : plan.vectorsPerPath)
            total += v;
        EXPECT_EQ(total, vectors);

        // Adding a vector never reduces completion.
        const SpreadPlan plus = spreadVectors(vectors + 1, paths);
        EXPECT_GE(plus.completionCycles, plan.completionCycles);

        // Adding a path never increases completion.
        auto more_paths = paths;
        more_paths.push_back({{}, paths.back().latencyCycles});
        const SpreadPlan wider = spreadVectors(vectors, more_paths);
        EXPECT_LE(wider.completionCycles, plan.completionCycles);

        // Faster paths carry at least as many vectors as slower ones.
        for (std::size_t p = 1; p < paths.size(); ++p) {
            if (paths[p - 1].latencyCycles < paths[p].latencyCycles) {
                EXPECT_GE(plan.vectorsPerPath[p - 1],
                          plan.vectorsPerPath[p]);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpreadFuzz,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull,
                                           55ull, 66ull, 77ull, 88ull));

/**
 * Seed-sweep fuzz of the non-minimal path machinery the spreader
 * feeds on: real topology path enumeration -> latency-model
 * conversion -> water-fill, checking the §4.3 invariants on random
 * endpoint pairs.
 */
class NonMinimalPathFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(NonMinimalPathFuzz, SpreadOverRealPathsHoldsInvariants)
{
    Rng rng(GetParam());
    const Topology topos[] = {Topology::makeNode(),
                              Topology::makeNode(NodeWiring::TripleRing),
                              Topology::makeSingleLevel(2)};
    for (const Topology &topo : topos) {
        for (int trial = 0; trial < 8; ++trial) {
            const auto src = TspId(rng.below(topo.numTsps()));
            TspId dst;
            do {
                dst = TspId(rng.below(topo.numTsps()));
            } while (dst == src);
            const auto extra = unsigned(rng.below(3)); // 0..2 extra hops
            const auto limit = unsigned(rng.below(12) + 2);

            const auto raw = topo.paths(src, dst, extra, limit);
            ASSERT_FALSE(raw.empty());
            ASSERT_LE(raw.size(), limit);

            // Every enumerated path chains src -> dst over enabled
            // links and respects the length bound.
            const unsigned min_hops = topo.distance(src, dst);
            for (const auto &path : raw) {
                EXPECT_GE(path.size(), min_hops);
                EXPECT_LE(path.size(), min_hops + extra);
                TspId at = src;
                for (LinkId l : path) {
                    const Link &link = topo.links().at(l);
                    EXPECT_TRUE(at == link.a || at == link.b);
                    EXPECT_TRUE(topo.linkEnabled(l));
                    at = link.peer(at);
                }
                EXPECT_EQ(at, dst);
            }

            auto choices = toPathChoices(topo, raw);
            std::sort(choices.begin(), choices.end(),
                      [](const auto &x, const auto &y) {
                          return x.latencyCycles < y.latencyCycles;
                      });
            // Longer paths never model as faster than shorter ones.
            EXPECT_GE(choices.back().latencyCycles,
                      choices.front().latencyCycles);

            const auto vectors = std::uint32_t(rng.below(400) + 1);
            const SpreadPlan plan = spreadVectors(vectors, choices);

            // Conservation.
            std::uint32_t total = 0;
            for (auto v : plan.vectorsPerPath)
                total += v;
            EXPECT_EQ(total, vectors);

            // A single vector rides the minimal path alone.
            const SpreadPlan one = spreadVectors(1, choices);
            EXPECT_EQ(one.pathsUsed(), 1u);
            EXPECT_EQ(one.vectorsPerPath.front(), 1u);

            // Never worse than minimal-only serialization.
            EXPECT_LE(plan.completionCycles,
                      pathCompletionCycles(
                          vectors, choices.front().latencyCycles));

            // Faster paths carry at least as much as slower ones.
            for (std::size_t p = 1; p < choices.size(); ++p) {
                if (choices[p - 1].latencyCycles <
                    choices[p].latencyCycles) {
                    EXPECT_GE(plan.vectorsPerPath[p - 1],
                              plan.vectorsPerPath[p]);
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NonMinimalPathFuzz,
                         ::testing::Values(3ull, 31ull, 314ull, 3141ull,
                                           31415ull, 314159ull));

class LedgerFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(LedgerFuzz, MatchesBruteForceOccupancyOracle)
{
    // Randomized reservations vs a dumb per-cycle bitmap oracle.
    Rng rng(GetParam());
    const Cycle window = 24;
    const Cycle horizon = 4096;
    ReservationLedger ledger(1, window);
    // Oversized so crowded asks near the top stay in range.
    std::vector<bool> oracle(horizon * 2, false);

    auto oracle_free = [&](Cycle start) {
        for (Cycle c = start; c < start + window; ++c)
            if (oracle[c])
                return false;
        return true;
    };
    auto oracle_earliest = [&](Cycle from) {
        Cycle c = from;
        while (!oracle_free(c))
            ++c;
        return c;
    };

    for (int i = 0; i < 100; ++i) {
        const Cycle ask = Cycle(rng.below(horizon - window));
        const Cycle got = ledger.earliestFree(0, true, ask);
        ASSERT_EQ(got, oracle_earliest(ask)) << "iteration " << i;
        ledger.reserve(0, true, got);
        for (Cycle c = got; c < got + window; ++c)
            oracle[c] = true;
    }
    EXPECT_EQ(ledger.totalReservations(), 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LedgerFuzz,
                         ::testing::Values(7ull, 17ull, 27ull));

} // namespace
} // namespace tsm
