#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hh"
#include "ssn/reservation.hh"
#include "ssn/spread.hh"

namespace tsm {
namespace {

/** Brute-force optimal completion for two paths (exhaustive split). */
Cycle
bruteForceTwoPaths(std::uint32_t vectors, const PathChoice &a,
                   const PathChoice &b, Cycle window)
{
    Cycle best = ~Cycle(0);
    for (std::uint32_t x = 0; x <= vectors; ++x) {
        const Cycle ca = pathCompletionCycles(x, a.latencyCycles, window);
        const Cycle cb =
            pathCompletionCycles(vectors - x, b.latencyCycles, window);
        best = std::min(best, std::max(ca, cb));
    }
    return best;
}

class SpreadFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SpreadFuzz, WaterFillMatchesBruteForceOnTwoPaths)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 50; ++trial) {
        PathChoice a{{}, Cycle(rng.below(1000) + 1)};
        PathChoice b{{}, Cycle(rng.below(1000) + 1)};
        if (b.latencyCycles < a.latencyCycles)
            std::swap(a, b);
        const auto vectors = std::uint32_t(rng.below(200) + 1);
        const SpreadPlan plan = spreadVectors(vectors, {a, b});
        const Cycle brute =
            bruteForceTwoPaths(vectors, a, b, 24);
        EXPECT_EQ(plan.completionCycles, brute)
            << "v=" << vectors << " la=" << a.latencyCycles
            << " lb=" << b.latencyCycles;
    }
}

TEST_P(SpreadFuzz, ConservationAndMonotonicity)
{
    Rng rng(GetParam() ^ 0x5ee);
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<PathChoice> paths;
        const auto np = unsigned(rng.below(7) + 1);
        for (unsigned p = 0; p < np; ++p)
            paths.push_back({{}, Cycle(rng.below(2000) + 100)});
        std::sort(paths.begin(), paths.end(),
                  [](const auto &x, const auto &y) {
                      return x.latencyCycles < y.latencyCycles;
                  });
        const auto vectors = std::uint32_t(rng.below(500) + 1);
        const SpreadPlan plan = spreadVectors(vectors, paths);

        // Conservation.
        std::uint32_t total = 0;
        for (auto v : plan.vectorsPerPath)
            total += v;
        EXPECT_EQ(total, vectors);

        // Adding a vector never reduces completion.
        const SpreadPlan plus = spreadVectors(vectors + 1, paths);
        EXPECT_GE(plus.completionCycles, plan.completionCycles);

        // Adding a path never increases completion.
        auto more_paths = paths;
        more_paths.push_back({{}, paths.back().latencyCycles});
        const SpreadPlan wider = spreadVectors(vectors, more_paths);
        EXPECT_LE(wider.completionCycles, plan.completionCycles);

        // Faster paths carry at least as many vectors as slower ones.
        for (std::size_t p = 1; p < paths.size(); ++p) {
            if (paths[p - 1].latencyCycles < paths[p].latencyCycles) {
                EXPECT_GE(plan.vectorsPerPath[p - 1],
                          plan.vectorsPerPath[p]);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpreadFuzz,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull));

class LedgerFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(LedgerFuzz, MatchesBruteForceOccupancyOracle)
{
    // Randomized reservations vs a dumb per-cycle bitmap oracle.
    Rng rng(GetParam());
    const Cycle window = 24;
    const Cycle horizon = 4096;
    ReservationLedger ledger(1, window);
    // Oversized so crowded asks near the top stay in range.
    std::vector<bool> oracle(horizon * 2, false);

    auto oracle_free = [&](Cycle start) {
        for (Cycle c = start; c < start + window; ++c)
            if (oracle[c])
                return false;
        return true;
    };
    auto oracle_earliest = [&](Cycle from) {
        Cycle c = from;
        while (!oracle_free(c))
            ++c;
        return c;
    };

    for (int i = 0; i < 100; ++i) {
        const Cycle ask = Cycle(rng.below(horizon - window));
        const Cycle got = ledger.earliestFree(0, true, ask);
        ASSERT_EQ(got, oracle_earliest(ask)) << "iteration " << i;
        ledger.reserve(0, true, got);
        for (Cycle c = got; c < got + window; ++c)
            oracle[c] = true;
    }
    EXPECT_EQ(ledger.totalReservations(), 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LedgerFuzz,
                         ::testing::Values(7ull, 17ull, 27ull));

} // namespace
} // namespace tsm
