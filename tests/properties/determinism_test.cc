/**
 * @file
 * The paper's end-to-end determinism claim as a regression oracle:
 * the golden timeline digest (trace/digest.hh) over every traced
 * event of a run — bring-up under clock drift, link jitter and FEC
 * errors, then a scheduled All-Reduce under injected FEC errors —
 * must be bit-identical across runs with the same seed, and must
 * diverge when the seed changes.
 */

#include <gtest/gtest.h>

#include "collective/allreduce.hh"
#include "runtime/system.hh"
#include "ssn/scheduler.hh"

namespace tsm {
namespace {

/** Digest of the bring-up phase: HAC alignment under adverse physics. */
std::uint64_t
bringupDigest(std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.numTsps = 8;
    cfg.driftPpmSigma = 20.0;
    cfg.jitter = true;
    cfg.errors = {.sbePerVector = 0.01, .mbePerVector = 0.001};
    cfg.captureDigest = true;
    cfg.seed = seed;
    TsmSystem sys(cfg);
    sys.synchronize(2 * kPsPerMs);
    EXPECT_GT(sys.digestEvents(), 0u);
    return sys.timelineDigest();
}

/**
 * Digest of an 8-way reduce-scatter executed on chips. Scheduled
 * programs require the SSN operating regime (no drift, no jitter),
 * but FEC errors stay on: corruption is detected and counted without
 * perturbing timing, so it must not perturb the digest either —
 * except through the error events themselves, which the seed pins.
 */
std::uint64_t
allReduceDigest(std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.numTsps = 8;
    cfg.errors = {.mbePerVector = 0.02};
    cfg.captureDigest = true;
    cfg.seed = seed;
    TsmSystem sys(cfg);

    HierarchicalAllReduce ar(sys.topo());
    SsnScheduler scheduler(sys.topo());
    const auto schedule =
        scheduler.schedule(ar.reduceScatterTransfers(16 * kKiB, 1, 100));
    EXPECT_TRUE(validateSchedule(schedule, sys.topo()).ok);

    // Deposit each flow into its own SRAM region so receives drain to
    // memory instead of pinning stream registers.
    std::unordered_map<FlowId, LocalAddr> dst;
    std::uint64_t region = 0;
    for (const auto &[flow, summary] : schedule.flows)
        dst[flow] = LocalAddr::unflatten((region++) * 256);
    auto programs = buildPrograms(schedule, sys.topo(), dst);
    for (TspId t = 0; t < sys.numTsps(); ++t)
        sys.chip(t).setStream(0, makeVec(Vec(1.0f)));
    sys.launchRaw(std::move(programs.byChip), 0);
    EXPECT_TRUE(sys.runToCompletion());
    EXPECT_GT(sys.digestEvents(), 0u);
    return sys.timelineDigest();
}

TEST(Determinism, BringupSameSeedSameDigest)
{
    EXPECT_EQ(bringupDigest(7), bringupDigest(7));
}

TEST(Determinism, BringupDifferentSeedsDiverge)
{
    // Different seeds draw different drift rates, phases, jitter and
    // error outcomes; the full-timeline digest must see that.
    EXPECT_NE(bringupDigest(7), bringupDigest(8));
}

TEST(Determinism, AllReduceSameSeedSameDigest)
{
    EXPECT_EQ(allReduceDigest(21), allReduceDigest(21));
}

TEST(Determinism, AllReduceDifferentSeedsDiverge)
{
    // With mbePerVector = 0.02 over ~1600 flit events, runs with
    // different seeds corrupt different vectors.
    EXPECT_NE(allReduceDigest(21), allReduceDigest(22));
}

TEST(Determinism, DigestOffByDefault)
{
    SystemConfig cfg;
    cfg.numTsps = 8;
    TsmSystem sys(cfg);
    sys.synchronize(1 * kPsPerMs);
    EXPECT_EQ(sys.timelineDigest(), 0u);
    EXPECT_EQ(sys.digestEvents(), 0u);
}

} // namespace
} // namespace tsm
