#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "common/stats.hh"

namespace tsm {
namespace {

TEST(Accumulator, BasicMoments)
{
    Accumulator a;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.add(v);
    EXPECT_EQ(a.count(), 8u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_NEAR(a.variance(), 4.0, 1e-12);               // population
    EXPECT_NEAR(a.stddev(), std::sqrt(32.0 / 7.0), 1e-12); // sample
}

TEST(Accumulator, SingleSample)
{
    Accumulator a;
    a.add(3.5);
    EXPECT_DOUBLE_EQ(a.mean(), 3.5);
    EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, MergeMatchesCombined)
{
    Rng r(77);
    Accumulator whole, left, right;
    for (int i = 0; i < 1000; ++i) {
        const double v = r.gaussian(5.0, 2.0);
        whole.add(v);
        (i % 2 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(left.stddev(), whole.stddev(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeIntoEmpty)
{
    Accumulator a, b;
    b.add(1.0);
    b.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);   // bin 0
    h.add(9.99);  // bin 9
    h.add(-1.0);  // underflow -> bin 0
    h.add(15.0);  // overflow -> bin 9
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(9), 2u);
}

TEST(Histogram, PercentileOnUniformFill)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.percentile(0.50), 50.0, 1.0);
    EXPECT_NEAR(h.percentile(0.99), 99.0, 1.0);
    EXPECT_NEAR(h.cumulativeFraction(49), 0.5, 0.01);
}

TEST(Histogram, AsciiRendersBars)
{
    Histogram h(0.0, 3.0, 3);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    const std::string art = h.ascii(10);
    EXPECT_NE(art.find('#'), std::string::npos);
    EXPECT_NE(art.find('|'), std::string::npos);
}

TEST(SampleSet, ExactPercentiles)
{
    SampleSet s;
    for (int i = 100; i >= 1; --i) // reverse order: must sort internally
        s.add(double(i));
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
    EXPECT_NEAR(s.percentile(0.5), 50.5, 1e-9);
}

} // namespace
} // namespace tsm
