#include <gtest/gtest.h>

#include "common/format.hh"

namespace tsm {
namespace {

TEST(Format, PlainText)
{
    EXPECT_EQ(format("hello"), "hello");
    EXPECT_EQ(format(""), "");
}

TEST(Format, DefaultFields)
{
    EXPECT_EQ(format("{} {} {}", 1, 2u, "three"), "1 2 three");
    EXPECT_EQ(format("{}", -17), "-17");
    EXPECT_EQ(format("{}", std::string("abc")), "abc");
    EXPECT_EQ(format("{}", true), "true");
    EXPECT_EQ(format("{}", 'x'), "x");
}

TEST(Format, Unsigned64)
{
    EXPECT_EQ(format("{}", ~std::uint64_t(0)), "18446744073709551615");
}

TEST(Format, FloatPrecision)
{
    EXPECT_EQ(format("{:.2f}", 3.14159), "3.14");
    EXPECT_EQ(format("{:.0f}", 2.6), "3");
    EXPECT_EQ(format("{:.3f}", -0.5), "-0.500");
}

TEST(Format, FloatDefaultUsesG)
{
    EXPECT_EQ(format("{}", 2.5), "2.5");
    EXPECT_EQ(format("{}", 100.0), "100");
}

TEST(Format, WidthAlignment)
{
    EXPECT_EQ(format("{:>5}", 42), "   42");
    EXPECT_EQ(format("{:<5}", 42), "42   ");
    EXPECT_EQ(format("{:5}", "ab"), "ab   "); // strings left by default
    EXPECT_EQ(format("{:5}", 7), "    7");    // numbers right by default
}

TEST(Format, DynamicWidth)
{
    EXPECT_EQ(format("{:>{}}", "x", 4), "   x");
    EXPECT_EQ(format("{:<{}}", "x", 4), "x   ");
}

TEST(Format, DynamicPrecision)
{
    EXPECT_EQ(format("{:.{}f}", 3.14159, 3), "3.142");
}

TEST(Format, LiteralBraces)
{
    EXPECT_EQ(format("{{}}"), "{}");
    EXPECT_EQ(format("a{{b}}c {}", 1), "a{b}c 1");
}

TEST(Format, HexPresentation)
{
    EXPECT_EQ(format("{:x}", 255), "ff");
}

TEST(Format, ErrorsThrow)
{
    EXPECT_THROW(format("{}"), std::runtime_error);
    EXPECT_THROW(format("{"), std::runtime_error);
    EXPECT_THROW(format("{:>{}}", "x"), std::runtime_error);
}

} // namespace
} // namespace tsm
