#include <gtest/gtest.h>

#include <cstdint>

#include "common/stats.hh"

namespace tsm {
namespace {

TEST(Log2Histogram, BucketBoundaries)
{
    EXPECT_EQ(Log2Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Log2Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Log2Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Log2Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Log2Histogram::bucketOf(255), 8u);
    EXPECT_EQ(Log2Histogram::bucketOf(256), 9u);
    EXPECT_EQ(Log2Histogram::bucketOf(~std::uint64_t(0)), 64u);

    EXPECT_EQ(Log2Histogram::bucketLo(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketHi(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketLo(1), 1u);
    EXPECT_EQ(Log2Histogram::bucketHi(1), 1u);
    EXPECT_EQ(Log2Histogram::bucketLo(4), 8u);
    EXPECT_EQ(Log2Histogram::bucketHi(4), 15u);
    // Each bucket's bounds round-trip through bucketOf.
    for (unsigned b = 0; b < Log2Histogram::kBuckets; ++b) {
        EXPECT_EQ(Log2Histogram::bucketOf(Log2Histogram::bucketLo(b)), b);
        EXPECT_EQ(Log2Histogram::bucketOf(Log2Histogram::bucketHi(b)), b);
    }
}

TEST(Log2Histogram, BasicStats)
{
    Log2Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.percentile(0.5), 0u);

    h.add(10);
    h.add(20);
    h.add(30);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 30u);
    EXPECT_EQ(h.sum(), 60u);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    EXPECT_EQ(h.bucketCount(Log2Histogram::bucketOf(10)), 1u);
}

TEST(Log2Histogram, PercentileClampsToObservedMax)
{
    Log2Histogram h;
    h.add(100); // bucket [64,127]
    // p100-style queries never exceed the observed max even though the
    // bucket upper bound is 127.
    EXPECT_EQ(h.percentile(1.0), 100u);
    EXPECT_EQ(h.p99(), 100u);

    Log2Histogram skew;
    for (int i = 0; i < 99; ++i)
        skew.add(1);
    skew.add(1000);
    EXPECT_EQ(skew.p50(), 1u);
    // 95th sample of 100 is still 1; the tail only shows past p99.
    EXPECT_EQ(skew.p95(), 1u);
    EXPECT_EQ(skew.percentile(1.0), 1000u);
}

TEST(Log2Histogram, MergeAndReset)
{
    Log2Histogram a, b;
    a.add(5);
    a.add(6);
    b.add(500);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.min(), 5u);
    EXPECT_EQ(a.max(), 500u);
    EXPECT_EQ(a.sum(), 511u);

    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.sum(), 0u);
    EXPECT_EQ(a.max(), 0u);
    a.add(2);
    EXPECT_EQ(a.min(), 2u);
}

} // namespace
} // namespace tsm
