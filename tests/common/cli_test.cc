#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/cli.hh"

namespace tsm {
namespace {

/** argv builder (argv must be mutable char* for parse()). */
struct Argv
{
    explicit Argv(std::vector<std::string> args) : strings(std::move(args))
    {
        for (auto &s : strings)
            ptrs.push_back(s.data());
        argc = int(ptrs.size());
    }

    std::vector<std::string> strings;
    std::vector<char *> ptrs;
    int argc;

    char **argv() { return ptrs.data(); }
};

TEST(Cli, ParsesAndStripsRegisteredFlags)
{
    bool verbose = false;
    std::string out;
    unsigned n = 0;
    CliParser cli("prog");
    cli.addFlag("--verbose", &verbose);
    cli.addValue("--out", &out);
    cli.addValue("--n", &n);

    Argv a({"prog", "--verbose", "--out=x.json", "--n=17"});
    EXPECT_TRUE(cli.parse(a.argc, a.argv()));
    EXPECT_TRUE(verbose);
    EXPECT_EQ(out, "x.json");
    EXPECT_EQ(n, 17u);
    EXPECT_EQ(a.argc, 1); // everything consumed
}

TEST(Cli, RejectsUnknownFlag)
{
    CliParser cli("prog");
    Argv a({"prog", "--bogus"});
    EXPECT_FALSE(cli.parse(a.argc, a.argv()));
}

TEST(Cli, RejectsPositionalByDefaultAllowsWhenAsked)
{
    {
        CliParser cli("prog");
        Argv a({"prog", "file.json"});
        EXPECT_FALSE(cli.parse(a.argc, a.argv()));
    }
    {
        CliParser cli("prog");
        cli.allowPositional();
        Argv a({"prog", "file.json", "other.json"});
        EXPECT_TRUE(cli.parse(a.argc, a.argv()));
        ASSERT_EQ(a.argc, 3); // positionals stay in argv
        EXPECT_STREQ(a.argv()[1], "file.json");
        EXPECT_STREQ(a.argv()[2], "other.json");
    }
}

TEST(Cli, ValueFlagWithoutValueIsAnError)
{
    std::string out;
    CliParser cli("prog");
    cli.addValue("--out", &out);
    Argv a({"prog", "--out"});
    EXPECT_FALSE(cli.parse(a.argc, a.argv()));
}

TEST(Cli, MalformedUnsignedIsAnError)
{
    unsigned n = 0;
    CliParser cli("prog");
    cli.addValue("--n", &n);
    Argv a({"prog", "--n=seven"});
    EXPECT_FALSE(cli.parse(a.argc, a.argv()));
}

TEST(Cli, PrefixPassthroughKeepsArgsInArgv)
{
    bool flag = false;
    CliParser cli("prog");
    cli.addFlag("--flag", &flag);
    cli.allowPrefix("--benchmark");
    Argv a({"prog", "--benchmark_filter=foo", "--flag"});
    EXPECT_TRUE(cli.parse(a.argc, a.argv()));
    EXPECT_TRUE(flag);
    ASSERT_EQ(a.argc, 2);
    EXPECT_STREQ(a.argv()[1], "--benchmark_filter=foo");
}

TEST(Cli, HelpReturnsFalse)
{
    CliParser cli("prog");
    Argv a({"prog", "--help"});
    EXPECT_FALSE(cli.parse(a.argc, a.argv()));
}

TEST(Cli, UsageListsFlags)
{
    bool b = false;
    CliParser cli("prog");
    cli.addFlag("--thing", &b, "does the thing");
    const std::string u = cli.usage();
    EXPECT_NE(u.find("--thing"), std::string::npos);
    EXPECT_NE(u.find("does the thing"), std::string::npos);
}

} // namespace
} // namespace tsm
