#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/cli.hh"

namespace tsm {
namespace {

/** argv builder (argv must be mutable char* for parse()). */
struct Argv
{
    explicit Argv(std::vector<std::string> args) : strings(std::move(args))
    {
        for (auto &s : strings)
            ptrs.push_back(s.data());
        argc = int(ptrs.size());
    }

    std::vector<std::string> strings;
    std::vector<char *> ptrs;
    int argc;

    char **argv() { return ptrs.data(); }
};

TEST(Cli, ParsesAndStripsRegisteredFlags)
{
    bool verbose = false;
    std::string out;
    unsigned n = 0;
    CliParser cli("prog");
    cli.addFlag("--verbose", &verbose);
    cli.addValue("--out", &out);
    cli.addValue("--n", &n);

    Argv a({"prog", "--verbose", "--out=x.json", "--n=17"});
    EXPECT_TRUE(cli.parse(a.argc, a.argv()));
    EXPECT_TRUE(verbose);
    EXPECT_EQ(out, "x.json");
    EXPECT_EQ(n, 17u);
    EXPECT_EQ(a.argc, 1); // everything consumed
}

TEST(Cli, RejectsUnknownFlag)
{
    CliParser cli("prog");
    Argv a({"prog", "--bogus"});
    EXPECT_FALSE(cli.parse(a.argc, a.argv()));
}

TEST(Cli, RejectsPositionalByDefaultAllowsWhenAsked)
{
    {
        CliParser cli("prog");
        Argv a({"prog", "file.json"});
        EXPECT_FALSE(cli.parse(a.argc, a.argv()));
    }
    {
        CliParser cli("prog");
        cli.allowPositional();
        Argv a({"prog", "file.json", "other.json"});
        EXPECT_TRUE(cli.parse(a.argc, a.argv()));
        ASSERT_EQ(a.argc, 3); // positionals stay in argv
        EXPECT_STREQ(a.argv()[1], "file.json");
        EXPECT_STREQ(a.argv()[2], "other.json");
    }
}

TEST(Cli, ValueFlagWithoutValueIsAnError)
{
    std::string out;
    CliParser cli("prog");
    cli.addValue("--out", &out);
    Argv a({"prog", "--out"});
    EXPECT_FALSE(cli.parse(a.argc, a.argv()));
}

TEST(Cli, MalformedUnsignedIsAnError)
{
    unsigned n = 0;
    CliParser cli("prog");
    cli.addValue("--n", &n);
    Argv a({"prog", "--n=seven"});
    EXPECT_FALSE(cli.parse(a.argc, a.argv()));
}

TEST(Cli, PrefixPassthroughKeepsArgsInArgv)
{
    bool flag = false;
    CliParser cli("prog");
    cli.addFlag("--flag", &flag);
    cli.allowPrefix("--benchmark");
    Argv a({"prog", "--benchmark_filter=foo", "--flag"});
    EXPECT_TRUE(cli.parse(a.argc, a.argv()));
    EXPECT_TRUE(flag);
    ASSERT_EQ(a.argc, 2);
    EXPECT_STREQ(a.argv()[1], "--benchmark_filter=foo");
}

TEST(Cli, HelpReturnsFalse)
{
    CliParser cli("prog");
    Argv a({"prog", "--help"});
    EXPECT_FALSE(cli.parse(a.argc, a.argv()));
}

TEST(Cli, UsageListsFlags)
{
    bool b = false;
    CliParser cli("prog");
    cli.addFlag("--thing", &b, "does the thing");
    const std::string u = cli.usage();
    EXPECT_NE(u.find("--thing"), std::string::npos);
    EXPECT_NE(u.find("does the thing"), std::string::npos);
}

TEST(Cli, ListFlagSplitsOnCommas)
{
    std::vector<std::string> items;
    CliParser cli("prog");
    cli.addList("--skip", &items);
    Argv a({"prog", "--skip=alpha,beta,gamma"});
    EXPECT_TRUE(cli.parse(a.argc, a.argv()));
    ASSERT_EQ(items.size(), 3u);
    EXPECT_EQ(items[0], "alpha");
    EXPECT_EQ(items[1], "beta");
    EXPECT_EQ(items[2], "gamma");
}

TEST(Cli, ListFlagSingleItem)
{
    std::vector<std::string> items;
    CliParser cli("prog");
    cli.addList("--skip", &items);
    Argv a({"prog", "--skip=only"});
    EXPECT_TRUE(cli.parse(a.argc, a.argv()));
    ASSERT_EQ(items.size(), 1u);
    EXPECT_EQ(items[0], "only");
    EXPECT_EQ(a.argc, 1);
}

TEST(Cli, ListFlagRequiresInlineValue)
{
    // House style: value flags take --flag=value, never a separate
    // argument; list flags follow it.
    std::vector<std::string> items;
    CliParser cli("prog");
    cli.addList("--skip", &items);
    Argv a({"prog", "--skip", "only"});
    EXPECT_FALSE(cli.parse(a.argc, a.argv()));
}

TEST(Cli, ListFlagRepeatsAppend)
{
    std::vector<std::string> items;
    CliParser cli("prog");
    cli.addList("--skip", &items);
    Argv a({"prog", "--skip=a,b", "--skip=c"});
    EXPECT_TRUE(cli.parse(a.argc, a.argv()));
    ASSERT_EQ(items.size(), 3u);
    EXPECT_EQ(items[2], "c");
}

TEST(Cli, ListFlagRejectsEmptyItems)
{
    for (const char *bad : {"--skip=a,,b", "--skip=a,", "--skip=,a",
                            "--skip="}) {
        std::vector<std::string> items;
        CliParser cli("prog");
        cli.addList("--skip", &items);
        Argv a({"prog", bad});
        EXPECT_FALSE(cli.parse(a.argc, a.argv())) << bad;
    }
}

TEST(Cli, ListFlagUsageShowsListForm)
{
    std::vector<std::string> items;
    CliParser cli("prog");
    cli.addList("--skip", &items, "what to skip");
    const std::string u = cli.usage();
    EXPECT_NE(u.find("--skip=A,B,..."), std::string::npos);
    EXPECT_NE(u.find("what to skip"), std::string::npos);
}

} // namespace
} // namespace tsm
