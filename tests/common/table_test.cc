#include <gtest/gtest.h>

#include <algorithm>

#include "common/table.hh"

namespace tsm {
namespace {

TEST(Table, AsciiAlignsColumns)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    const std::string out = t.ascii();
    // Header, separator, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvRoundTrip)
{
    Table t({"x", "y"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.csv(), "x,y\n1,2\n");
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(std::uint64_t(12345)), "12345");
    EXPECT_EQ(Table::num(-7), "-7");
}

TEST(Table, RowCount)
{
    Table t({"a"});
    EXPECT_EQ(t.numRows(), 0u);
    t.addRow({"x"});
    EXPECT_EQ(t.numRows(), 1u);
}

} // namespace
} // namespace tsm
