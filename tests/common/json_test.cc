#include <gtest/gtest.h>

#include <string>

#include "common/json.hh"

namespace tsm {
namespace {

TEST(Json, ObjectKeepsInsertionOrder)
{
    Json o = Json::object();
    o.set("zulu", 1);
    o.set("alpha", 2);
    o.set("mike", 3);
    EXPECT_EQ(o.dump(), "{\"zulu\":1,\"alpha\":2,\"mike\":3}");
    // Replacing an existing key keeps its original position.
    o.set("alpha", 9);
    EXPECT_EQ(o.dump(), "{\"zulu\":1,\"alpha\":9,\"mike\":3}");
}

TEST(Json, IntegersPrintExactly)
{
    Json o = Json::object();
    o.set("i", std::int64_t(1234567890123456789LL));
    o.set("u", std::uint64_t(42));
    o.set("neg", -7);
    EXPECT_EQ(o.dump(), "{\"i\":1234567890123456789,\"u\":42,\"neg\":-7}");
    EXPECT_EQ(o["i"].kind(), Json::Kind::Int);
}

TEST(Json, DoublesTrimTrailingZeros)
{
    Json a = Json::array();
    a.push(0.5);
    a.push(1.25);
    const std::string s = a.dump();
    EXPECT_NE(s.find("0.5"), std::string::npos);
    EXPECT_NE(s.find("1.25"), std::string::npos);
    EXPECT_EQ(s.find("0.500000"), std::string::npos);
}

TEST(Json, MemberAccessNullSentinel)
{
    Json o = Json::object();
    o.set("x", 1);
    EXPECT_TRUE(o.has("x"));
    EXPECT_FALSE(o.has("y"));
    EXPECT_TRUE(o["y"].isNull());
    EXPECT_EQ(o["x"].integer(), 1);
}

TEST(Json, StringEscaping)
{
    const Json s(std::string("a\"b\\c\n\t"));
    EXPECT_EQ(s.dump(), "\"a\\\"b\\\\c\\n\\t\"");
}

TEST(Json, ParseRoundTrip)
{
    Json o = Json::object();
    o.set("name", "bench");
    o.set("n", 17);
    o.set("ratio", 0.75);
    o.set("ok", true);
    o.set("nothing", Json());
    Json arr = Json::array();
    arr.push(1);
    arr.push(2);
    o.set("list", std::move(arr));

    const std::string text = o.dump(2);
    std::string error;
    const Json back = Json::parse(text, &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(back.dump(2), text);
    EXPECT_EQ(back["n"].integer(), 17);
    EXPECT_DOUBLE_EQ(back["ratio"].number(), 0.75);
    EXPECT_TRUE(back["ok"].boolean());
    EXPECT_TRUE(back["nothing"].isNull());
    EXPECT_EQ(back["list"].size(), 2u);
    EXPECT_EQ(back["list"].at(1).integer(), 2);
}

TEST(Json, ParseErrorsReport)
{
    std::string error;
    EXPECT_TRUE(Json::parse("{\"a\": }", &error).isNull());
    EXPECT_FALSE(error.empty());
    error.clear();
    EXPECT_TRUE(Json::parse("[1, 2", &error).isNull());
    EXPECT_FALSE(error.empty());
    error.clear();
    // Trailing garbage after a valid document is an error.
    EXPECT_TRUE(Json::parse("{} x", &error).isNull());
    EXPECT_FALSE(error.empty());
}

TEST(Json, UnicodeEscapesDecodeToUtf8)
{
    std::string error;
    // One escape from each UTF-8 length class: ASCII, 2-byte, 3-byte,
    // and an astral code point spelled as a surrogate pair.
    const Json v = Json::parse(
        "\"\\u0041 \\u00e9 \\u20ac \\ud83d\\ude00\"", &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(v.str(), "A \xc3\xa9 \xe2\x82\xac \xf0\x9f\x98\x80");
}

TEST(Json, UnicodeEscapesRoundTripByteStably)
{
    // parse -> serialize -> parse: after the first serialize (which
    // emits the decoded UTF-8 bytes raw), the text is a fixed point.
    std::string error;
    const Json first = Json::parse(
        "{\"k\\u00e9y\": \"caf\\u00e9 \\u2014 \\ud834\\udd1e\"}", &error);
    ASSERT_TRUE(error.empty()) << error;
    const std::string text = first.dump();
    const Json second = Json::parse(text, &error);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_EQ(second.dump(), text);
    EXPECT_EQ(first["k\xc3\xa9y"].str(),
              "caf\xc3\xa9 \xe2\x80\x94 \xf0\x9d\x84\x9e");
}

TEST(Json, ControlCharEscapesRoundTrip)
{
    // escapeTo writes control chars as \u00XX; the parser must read
    // them back to the same bytes.
    const Json s(std::string("a\x01b\x1f"));
    const std::string text = s.dump();
    std::string error;
    const Json back = Json::parse(text, &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(back.str(), s.str());
    EXPECT_EQ(back.dump(), text);
}

TEST(Json, MalformedUnicodeEscapesAreErrors)
{
    const char *bad[] = {
        "\"\\u12\"",            // truncated escape
        "\"\\u12g4\"",          // non-hex digit
        "\"\\udc00\"",          // lone low surrogate
        "\"\\ud800\"",          // unpaired high surrogate at EOS
        "\"\\ud800x\"",         // high surrogate not followed by \u
        "\"\\ud800\\u0041\"",   // high surrogate + non-low escape
        "\"\\ud800\\ud800\"",   // high surrogate + another high
    };
    for (const char *text : bad) {
        std::string error;
        EXPECT_TRUE(Json::parse(text, &error).isNull()) << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

TEST(Json, DumpIsDeterministic)
{
    auto build = [] {
        Json o = Json::object();
        o.set("b", 2);
        o.set("a", Json::array());
        o.set("c", 1.5);
        return o;
    };
    EXPECT_EQ(build().dump(2), build().dump(2));
}

} // namespace
} // namespace tsm
