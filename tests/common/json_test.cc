#include <gtest/gtest.h>

#include <string>

#include "common/json.hh"

namespace tsm {
namespace {

TEST(Json, ObjectKeepsInsertionOrder)
{
    Json o = Json::object();
    o.set("zulu", 1);
    o.set("alpha", 2);
    o.set("mike", 3);
    EXPECT_EQ(o.dump(), "{\"zulu\":1,\"alpha\":2,\"mike\":3}");
    // Replacing an existing key keeps its original position.
    o.set("alpha", 9);
    EXPECT_EQ(o.dump(), "{\"zulu\":1,\"alpha\":9,\"mike\":3}");
}

TEST(Json, IntegersPrintExactly)
{
    Json o = Json::object();
    o.set("i", std::int64_t(1234567890123456789LL));
    o.set("u", std::uint64_t(42));
    o.set("neg", -7);
    EXPECT_EQ(o.dump(), "{\"i\":1234567890123456789,\"u\":42,\"neg\":-7}");
    EXPECT_EQ(o["i"].kind(), Json::Kind::Int);
}

TEST(Json, DoublesTrimTrailingZeros)
{
    Json a = Json::array();
    a.push(0.5);
    a.push(1.25);
    const std::string s = a.dump();
    EXPECT_NE(s.find("0.5"), std::string::npos);
    EXPECT_NE(s.find("1.25"), std::string::npos);
    EXPECT_EQ(s.find("0.500000"), std::string::npos);
}

TEST(Json, MemberAccessNullSentinel)
{
    Json o = Json::object();
    o.set("x", 1);
    EXPECT_TRUE(o.has("x"));
    EXPECT_FALSE(o.has("y"));
    EXPECT_TRUE(o["y"].isNull());
    EXPECT_EQ(o["x"].integer(), 1);
}

TEST(Json, StringEscaping)
{
    const Json s(std::string("a\"b\\c\n\t"));
    EXPECT_EQ(s.dump(), "\"a\\\"b\\\\c\\n\\t\"");
}

TEST(Json, ParseRoundTrip)
{
    Json o = Json::object();
    o.set("name", "bench");
    o.set("n", 17);
    o.set("ratio", 0.75);
    o.set("ok", true);
    o.set("nothing", Json());
    Json arr = Json::array();
    arr.push(1);
    arr.push(2);
    o.set("list", std::move(arr));

    const std::string text = o.dump(2);
    std::string error;
    const Json back = Json::parse(text, &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(back.dump(2), text);
    EXPECT_EQ(back["n"].integer(), 17);
    EXPECT_DOUBLE_EQ(back["ratio"].number(), 0.75);
    EXPECT_TRUE(back["ok"].boolean());
    EXPECT_TRUE(back["nothing"].isNull());
    EXPECT_EQ(back["list"].size(), 2u);
    EXPECT_EQ(back["list"].at(1).integer(), 2);
}

TEST(Json, ParseErrorsReport)
{
    std::string error;
    EXPECT_TRUE(Json::parse("{\"a\": }", &error).isNull());
    EXPECT_FALSE(error.empty());
    error.clear();
    EXPECT_TRUE(Json::parse("[1, 2", &error).isNull());
    EXPECT_FALSE(error.empty());
    error.clear();
    // Trailing garbage after a valid document is an error.
    EXPECT_TRUE(Json::parse("{} x", &error).isNull());
    EXPECT_FALSE(error.empty());
}

TEST(Json, DumpIsDeterministic)
{
    auto build = [] {
        Json o = Json::object();
        o.set("b", 2);
        o.set("a", Json::array());
        o.set("c", 1.5);
        return o;
    };
    EXPECT_EQ(build().dump(2), build().dump(2));
}

} // namespace
} // namespace tsm
