#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"

namespace tsm {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next64() == b.next64();
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(13);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowIsUnbiasedAndInRange)
{
    Rng r(99);
    int counts[7] = {};
    const int n = 70000;
    for (int i = 0; i < n; ++i) {
        const auto v = r.below(7);
        ASSERT_LT(v, 7u);
        ++counts[v];
    }
    for (int c : counts)
        EXPECT_NEAR(double(c), n / 7.0, 5 * std::sqrt(n / 7.0));
}

TEST(Rng, RangeInclusive)
{
    Rng r(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.range(-2, 2);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments)
{
    Rng r(21);
    double sum = 0, sq = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = r.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.01);
    EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, GaussianScaled)
{
    Rng r(22);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += r.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ForkIndependentButDeterministic)
{
    Rng parent(100);
    Rng c1 = parent.fork(1);
    Rng c2 = parent.fork(2);
    Rng c1_again = Rng(100).fork(1);
    EXPECT_NE(c1.next64(), c2.next64());
    Rng c1b = Rng(100).fork(1);
    EXPECT_EQ(c1b.next64(), c1_again.next64());
}

TEST(Rng, ChanceExtremes)
{
    Rng r(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

} // namespace
} // namespace tsm
