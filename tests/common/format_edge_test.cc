#include <gtest/gtest.h>

#include "common/format.hh"
#include "common/stats.hh"

namespace tsm {
namespace {

TEST(FormatEdge, CenterAlignment)
{
    EXPECT_EQ(format("{:^5}", "x"), "  x  ");
    EXPECT_EQ(format("{:^6}", "ab"), "  ab  ");
}

TEST(FormatEdge, FillCharacter)
{
    EXPECT_EQ(format("{:*>5}", 7), "****7");
    EXPECT_EQ(format("{:0>4}", 42), "0042");
}

TEST(FormatEdge, ScientificAndGeneral)
{
    EXPECT_EQ(format("{:.2e}", 12345.0), "1.23e+04");
    EXPECT_EQ(format("{:.3g}", 0.0001234), "0.000123");
}

TEST(FormatEdge, NegativeNumbersRightAligned)
{
    EXPECT_EQ(format("{:6}", -123), "  -123");
}

TEST(FormatEdge, EnumsFormatAsIntegers)
{
    enum class E { A = 3 };
    EXPECT_EQ(format("{}", E::A), "3");
}

TEST(FormatEdge, WidthSmallerThanContentIsNoop)
{
    EXPECT_EQ(format("{:2}", "abcdef"), "abcdef");
}

TEST(AccumulatorEdge, ResetClearsEverything)
{
    Accumulator a;
    a.add(5.0);
    a.add(7.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    a.add(1.0);
    EXPECT_DOUBLE_EQ(a.mean(), 1.0);
    EXPECT_DOUBLE_EQ(a.sum(), 1.0);
}

TEST(AccumulatorEdge, MergeEmptyIsNoop)
{
    Accumulator a, empty;
    a.add(2.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
}

TEST(HistogramEdge, NonSkippingAsciiShowsAllBins)
{
    Histogram h(0, 4, 4);
    h.add(0.5);
    const std::string art = h.ascii(10, /*skip_empty=*/false);
    EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
}

TEST(HistogramEdge, BinLoEdges)
{
    Histogram h(10, 20, 5);
    EXPECT_DOUBLE_EQ(h.binLo(0), 10.0);
    EXPECT_DOUBLE_EQ(h.binLo(4), 18.0);
    EXPECT_DOUBLE_EQ(h.binWidth(), 2.0);
}

} // namespace
} // namespace tsm
