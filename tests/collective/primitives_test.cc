#include <gtest/gtest.h>

#include <memory>

#include "collective/primitives.hh"
#include "runtime/global_memory.hh"

namespace tsm {
namespace {

TEST(Primitives, BroadcastPatternShape)
{
    const Topology topo = Topology::makeNode();
    const auto transfers = broadcastTransfers(topo, 3, 10, 5, 100);
    EXPECT_EQ(transfers.size(), 7u);
    FlowId expect = 5;
    for (const auto &t : transfers) {
        EXPECT_EQ(t.src, 3u);
        EXPECT_NE(t.dst, 3u);
        EXPECT_EQ(t.vectors, 10u);
        EXPECT_EQ(t.earliest, 100u);
        EXPECT_EQ(t.flow, expect++);
    }
}

TEST(Primitives, GatherPatternShape)
{
    const Topology topo = Topology::makeNode();
    const auto transfers = gatherTransfers(topo, 0, 4);
    EXPECT_EQ(transfers.size(), 7u);
    for (const auto &t : transfers)
        EXPECT_EQ(t.dst, 0u);
}

TEST(Primitives, BroadcastFasterThanGatherAtRootBottleneck)
{
    // Broadcast spreads the root's output over its 7 links; gather
    // funnels 7 flows into the root's 7 receive links — symmetric in
    // this node, so both complete in similar time.
    const Topology topo = Topology::makeNode();
    const Cycle b =
        collectiveCompletion(topo, broadcastTransfers(topo, 0, 64));
    const Cycle g =
        collectiveCompletion(topo, gatherTransfers(topo, 0, 64));
    EXPECT_NEAR(double(b), double(g), 0.3 * double(b));
}

TEST(Primitives, CompletionScalesWithTensorSize)
{
    const Topology topo = Topology::makeNode();
    const Cycle small =
        collectiveCompletion(topo, broadcastTransfers(topo, 0, 8));
    const Cycle large =
        collectiveCompletion(topo, broadcastTransfers(topo, 0, 512));
    EXPECT_GT(large, small * 4);
}

/**
 * The strongest collective test: a *numeric* 8-way all-reduce run on
 * the actual chips — every device contributes a distinct vector, the
 * scheduled pushes move data, and VXM adds performed by appended
 * chip instructions produce the correct global sum everywhere.
 */
TEST(NumericAllReduce, ChipsComputeCorrectGlobalSum)
{
    const Topology topo = Topology::makeNode();
    EventQueue eq;
    Network net(topo, eq, Rng(11));
    std::vector<std::unique_ptr<TspChip>> owned;
    std::vector<TspChip *> chips;
    for (TspId t = 0; t < topo.numTsps(); ++t) {
        owned.push_back(std::make_unique<TspChip>(t, net, DriftClock()));
        chips.push_back(owned.back().get());
    }
    GlobalMemory gm(topo, chips);

    // Each device's contribution lives at word 0: Vec(i + 1).
    for (TspId d = 0; d < 8; ++d) {
        GlobalAddr a;
        a.device = d;
        a.local = LocalAddr::unflatten(0);
        gm.write(a, makeVec(Vec(float(d + 1))));
    }

    // All-to-all pushes: device i's contribution lands at word
    // 100 + i on every peer.
    std::vector<PushRequest> pushes;
    for (TspId i = 0; i < 8; ++i) {
        for (TspId j = 0; j < 8; ++j) {
            if (i == j)
                continue;
            PushRequest p;
            p.src.device = i;
            p.src.local = LocalAddr::unflatten(0);
            p.dstDevice = j;
            p.dstAddr = LocalAddr::unflatten(100 + i);
            p.vectors = 1;
            pushes.push_back(p);
        }
    }
    auto compiled = gm.compile(pushes);
    ASSERT_TRUE(validateSchedule(compiled.schedule, topo).ok);

    // Append the reduction to each chip's program: accumulate own
    // contribution plus the 7 received ones into word 200. Appended
    // instructions are unscheduled, so they run after the last
    // scheduled receive... but only per-chip; gate them on the global
    // completion cycle via an explicit issueAt on the first one.
    for (TspId d = 0; d < 8; ++d) {
        Program &p = compiled.programs.byChip[d];
        auto &own = p.emitRead(LocalAddr::unflatten(0), 1);
        own.issueAt = compiled.completion + 64;
        p.emit(Op::VCopy).dst = 2;
        p.instrs.back().srcA = 1;
        for (TspId i = 0; i < 8; ++i) {
            if (i == d)
                continue;
            p.emitRead(LocalAddr::unflatten(100 + i), 3);
            auto &add = p.emit(Op::VAdd);
            add.dst = 2;
            add.srcA = 2;
            add.srcB = 3;
        }
        p.emitWrite(2, LocalAddr::unflatten(200));
        p.emitHalt();
        chips[d]->load(std::move(p));
        chips[d]->start(0);
    }
    eq.run();

    // Sum of 1..8 = 36 in every lane on every chip.
    for (TspId d = 0; d < 8; ++d) {
        const VecPtr result =
            chips[d]->mem().read(LocalAddr::unflatten(200));
        ASSERT_TRUE(result) << "chip " << d;
        EXPECT_EQ((*result)[0], 36.0f) << "chip " << d;
        EXPECT_EQ((*result)[319], 36.0f) << "chip " << d;
    }
}

} // namespace
} // namespace tsm
