#include <gtest/gtest.h>

#include "collective/allreduce.hh"

namespace tsm {
namespace {

TEST(AllReduce, TransferPatternIsAllToAll)
{
    const Topology topo = Topology::makeNode();
    HierarchicalAllReduce ar(topo);
    const auto transfers = ar.reduceScatterTransfers(1 * kMiB, 1, 0);
    EXPECT_EQ(transfers.size(), 8u * 7); // ordered pairs
    for (const auto &t : transfers) {
        EXPECT_NE(t.src, t.dst);
        EXPECT_EQ(t.vectors, bytesToVectors(1 * kMiB) / 8 + 1);
    }
}

TEST(AllReduce, ScheduledAndAnalyticAgree)
{
    // The closed-form model must track the exact scheduled makespan
    // across two orders of magnitude of tensor size.
    const Topology topo = Topology::makeNode();
    HierarchicalAllReduce ar(topo);
    for (Bytes bytes : {64 * kKiB, 512 * kKiB, 4 * kMiB}) {
        const auto sim = ar.scheduled(bytes);
        const auto model = ar.analytic(bytes);
        EXPECT_NEAR(double(model.cycles), double(sim.cycles),
                    0.15 * double(sim.cycles))
            << "bytes=" << bytes;
    }
}

TEST(AllReduce, BandwidthSaturatesWithTensorSize)
{
    // Fig 16: realized bandwidth climbs and saturates near the
    // 7-link aggregate (7 x 12.5 GB/s with wire overhead).
    const Topology topo = Topology::makeNode();
    HierarchicalAllReduce ar(topo);
    const auto small = ar.analytic(32 * kKiB);
    const auto mid = ar.analytic(4 * kMiB);
    const auto big = ar.analytic(512 * kMiB);
    EXPECT_LT(small.busBandwidthBytesPerSec, mid.busBandwidthBytesPerSec);
    EXPECT_LT(mid.busBandwidthBytesPerSec, big.busBandwidthBytesPerSec);
    EXPECT_GT(big.busBandwidthBytesPerSec, 60e9);
    EXPECT_LT(big.busBandwidthBytesPerSec, 90e9);
}

TEST(AllReduce, SaturationIsEarly)
{
    // The synchronous, flag-free protocol reaches half of its peak
    // bandwidth by ~1 MiB — the paper's "quickly saturate" claim.
    const Topology topo = Topology::makeNode();
    HierarchicalAllReduce ar(topo);
    const double peak = ar.analytic(512 * kMiB).busBandwidthBytesPerSec;
    const double at_1mib = ar.analytic(1 * kMiB).busBandwidthBytesPerSec;
    EXPECT_GT(at_1mib, 0.5 * peak);
}

TEST(AllReduce, SmallMessageLatencyMatchesHopBudget)
{
    // §5.6: 3-hop all-reduce in a 256-TSP system ~ 2.1 us.
    const Topology single = Topology::makeSingleLevel(32);
    HierarchicalAllReduce ar(single);
    const double sec = ar.smallMessageLatencySec();
    EXPECT_GT(sec, 1.5e-6);
    EXPECT_LT(sec, 3.0e-6);

    // Intra-node all-reduce is a single local hop.
    const Topology node = Topology::makeNode();
    EXPECT_LT(HierarchicalAllReduce(node).smallMessageLatencySec(),
              1e-6);
}

TEST(AllReduce, ScheduledPathValidates)
{
    const Topology topo = Topology::makeNode();
    HierarchicalAllReduce ar(topo);
    // Drive the full machinery once and sanity-check the result
    // fields.
    const auto r = ar.scheduled(256 * kKiB);
    EXPECT_EQ(r.n, 8u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.busBandwidthBytesPerSec, 1e9);
}

TEST(AllReduce, MultiNodeScheduledRunsAllThreeStages)
{
    // The vector-exact path on a 2-node system: stage 2 crosses the
    // global links; all three stages validate and the result covers
    // 16 participants.
    const Topology system = Topology::makeSingleLevel(2);
    HierarchicalAllReduce ar(system);
    const auto r = ar.scheduled(256 * kKiB);
    EXPECT_EQ(r.n, 16u);
    EXPECT_GT(r.cycles, 0u);
    // More participants and a global stage: slower than the
    // single-node all-reduce of the same tensor.
    const Topology node = Topology::makeNode();
    const auto local = HierarchicalAllReduce(node).scheduled(256 * kKiB);
    EXPECT_GT(r.cycles, local.cycles);
}

TEST(AllReduce, MultiNodeAnalyticAddsGlobalStage)
{
    const Topology node = Topology::makeNode();
    const Topology system = Topology::makeSingleLevel(4);
    const Bytes bytes = 16 * kMiB;
    const auto local = HierarchicalAllReduce(node).analytic(bytes);
    const auto global = HierarchicalAllReduce(system).analytic(bytes);
    EXPECT_GT(global.cycles, local.cycles);
    EXPECT_EQ(global.n, 32u);
}

} // namespace
} // namespace tsm
