#include <gtest/gtest.h>

#include "runtime/runtime.hh"
#include "runtime/system.hh"

namespace tsm {
namespace {

/** Simple work: every active TSP sends a few vectors to a peer. */
std::vector<TensorTransfer>
ringWork(const Topology &, const std::vector<TspId> &active)
{
    std::vector<TensorTransfer> out;
    for (std::size_t i = 0; i < active.size(); ++i) {
        TensorTransfer t;
        t.flow = FlowId(i + 1);
        t.src = active[i];
        t.dst = active[(i + 1) % active.size()];
        t.vectors = 8;
        out.push_back(t);
    }
    return out;
}

TEST(TsmSystem, BuildsBySize)
{
    SystemConfig cfg;
    cfg.numTsps = 16;
    TsmSystem sys(cfg);
    EXPECT_EQ(sys.numTsps(), 16u);
    EXPECT_TRUE(sys.topo().connected());
}

TEST(TsmSystem, SynchronizeAlignsDriftingChips)
{
    SystemConfig cfg;
    cfg.numTsps = 8;
    cfg.driftPpmSigma = 30.0;
    TsmSystem sys(cfg);
    const int residual = sys.synchronize();
    EXPECT_LE(residual, 2);
}

TEST(TsmSystem, AlignedLaunchRunsToCompletion)
{
    SystemConfig cfg;
    cfg.numTsps = 8;
    TsmSystem sys(cfg);
    std::vector<Program> payloads(8);
    for (auto &p : payloads)
        p.emitCompute(1000);
    sys.launchAligned(std::move(payloads));
    EXPECT_TRUE(sys.runToCompletion());
    // All chips halted at the same cycle (synchronized launch).
    const Cycle h0 =
        sys.chip(0).clock().tickToCycle(sys.chip(0).stats().haltTick);
    for (TspId t = 1; t < 8; ++t)
        EXPECT_EQ(sys.chip(t).clock().tickToCycle(
                      sys.chip(t).stats().haltTick),
                  h0);
}

TEST(TsmSystem, CleanRunHasNoCriticalErrors)
{
    SystemConfig cfg;
    cfg.numTsps = 8;
    TsmSystem sys(cfg);
    std::vector<Program> payloads(8);
    sys.launchRaw(std::move(payloads), 0);
    EXPECT_TRUE(sys.runToCompletion());
    EXPECT_EQ(sys.criticalErrors(), 0u);
}

TEST(Runtime, HoldsBackTheSpare)
{
    Runtime rt(4);
    // 4 physical nodes, one spare: 3 x 8 = 24 logical TSPs.
    EXPECT_EQ(rt.logicalTsps(), 24u);
    EXPECT_EQ(rt.activeNodes().size(), 3u);
    EXPECT_FALSE(rt.spareUsed());
}

TEST(Runtime, CleanInferenceSucceedsFirstTry)
{
    Runtime rt(4);
    const auto report = rt.runInference(ringWork);
    EXPECT_TRUE(report.success);
    EXPECT_EQ(report.attempts, 1u);
    EXPECT_EQ(report.mbesObserved, 0u);
    EXPECT_FALSE(report.spareSwapped);
}

TEST(Runtime, TransientFaultClearsOnReplay)
{
    Runtime rt(4, /*seed=*/42);
    FaultScenario fault;
    fault.faultyNode = 1;
    fault.mbeRate = 1.0; // every vector through node 1 corrupts
    fault.persistent = false;
    const auto report = rt.runInference(ringWork, fault);
    EXPECT_TRUE(report.success);
    EXPECT_EQ(report.attempts, 2u); // one replay
    EXPECT_GT(report.mbesObserved, 0u);
    EXPECT_FALSE(report.spareSwapped); // no hardware action needed
}

TEST(Runtime, PersistentFaultSwapsSpareAndRecovers)
{
    Runtime rt(4, /*seed=*/43);
    FaultScenario fault;
    fault.faultyNode = 1;
    fault.mbeRate = 1.0;
    fault.persistent = true;
    const auto report = rt.runInference(ringWork, fault, 4);
    EXPECT_TRUE(report.success);
    EXPECT_TRUE(report.spareSwapped);
    EXPECT_EQ(report.failedNode, 1u);
    EXPECT_TRUE(rt.spareUsed());
    // Capacity is preserved: still 3 worker nodes.
    EXPECT_EQ(rt.logicalTsps(), 24u);
    // The failed node is no longer in service.
    for (unsigned n : rt.activeNodes())
        EXPECT_NE(n, 1u);
}

TEST(Runtime, SystemRemainsConnectedAfterFailover)
{
    // Paper §4.5: the Dragonfly is edge- and node-symmetric, so the
    // network stays fully connected after removing a node.
    Runtime rt(4, 44);
    FaultScenario fault;
    fault.faultyNode = 2;
    fault.mbeRate = 1.0;
    fault.persistent = true;
    const auto report = rt.runInference(ringWork, fault, 4);
    EXPECT_TRUE(report.success);
    // A follow-up inference on the repaired system is clean.
    const auto again = rt.runInference(ringWork);
    EXPECT_TRUE(again.success);
    EXPECT_EQ(again.attempts, 1u);
}

} // namespace
} // namespace tsm
