#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "runtime/global_memory.hh"

namespace tsm {
namespace {

class GlobalMemFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        topo = Topology::makeNode();
        net = std::make_unique<Network>(topo, eq, Rng(77));
        for (TspId t = 0; t < topo.numTsps(); ++t) {
            owned.push_back(
                std::make_unique<TspChip>(t, *net, DriftClock()));
            raw.push_back(owned.back().get());
        }
        gm = std::make_unique<GlobalMemory>(topo, raw);
    }

    GlobalAddr
    at(TspId device, std::uint32_t word)
    {
        GlobalAddr g;
        g.device = device;
        g.local = LocalAddr::unflatten(word);
        return g;
    }

    Topology topo;
    EventQueue eq;
    std::unique_ptr<Network> net;
    std::vector<std::unique_ptr<TspChip>> owned;
    std::vector<TspChip *> raw;
    std::unique_ptr<GlobalMemory> gm;
};

TEST_F(GlobalMemFixture, CapacityMatchesFigThree)
{
    // 8 devices x 220 MiB = 1.72 GiB in a node; the rank-5 tensor has
    // [8, 2, 44, 2, 4096] vector words.
    EXPECT_EQ(gm->capacity(), 8ull * 220 * kMiB);
    EXPECT_EQ(gm->words(), 8ull * 2 * 44 * 2 * 4096);
}

TEST_F(GlobalMemFixture, HostReadWriteRoundTrip)
{
    gm->write(at(3, 1000), makeVec(Vec(1.5f)));
    EXPECT_TRUE(gm->present(at(3, 1000)));
    EXPECT_FALSE(gm->present(at(4, 1000)));
    EXPECT_EQ((*gm->read(at(3, 1000)))[0], 1.5f);
}

TEST_F(GlobalMemFixture, SinglePushMovesData)
{
    for (std::uint32_t w = 0; w < 10; ++w)
        gm->write(at(0, 100 + w), makeVec(Vec(float(w))));

    PushRequest push;
    push.src = at(0, 100);
    push.dstDevice = 5;
    push.dstAddr = LocalAddr::unflatten(2000);
    push.vectors = 10;
    gm->execute({push});

    for (std::uint32_t w = 0; w < 10; ++w) {
        ASSERT_TRUE(gm->present(at(5, 2000 + w))) << w;
        EXPECT_EQ((*gm->read(at(5, 2000 + w)))[0], float(w));
    }
}

TEST_F(GlobalMemFixture, ManyConcurrentPushesAllLand)
{
    // Every device pushes a distinct region to its neighbour: 8
    // concurrent flows over the node.
    std::vector<PushRequest> pushes;
    for (TspId d = 0; d < 8; ++d) {
        for (std::uint32_t w = 0; w < 5; ++w)
            gm->write(at(d, w), makeVec(Vec(float(d * 100 + w))));
        PushRequest p;
        p.src = at(d, 0);
        p.dstDevice = (d + 1) % 8;
        p.dstAddr = LocalAddr::unflatten(500);
        p.vectors = 5;
        pushes.push_back(p);
    }
    gm->execute(pushes);
    for (TspId d = 0; d < 8; ++d) {
        const TspId from = (d + 7) % 8;
        for (std::uint32_t w = 0; w < 5; ++w) {
            ASSERT_TRUE(gm->present(at(d, 500 + w)));
            EXPECT_EQ((*gm->read(at(d, 500 + w)))[0],
                      float(from * 100 + w));
        }
    }
}

TEST_F(GlobalMemFixture, RepeatedBatchesRebaseOntoCurrentTime)
{
    gm->write(at(0, 0), makeVec(Vec(1.0f)));
    PushRequest p;
    p.src = at(0, 0);
    p.dstDevice = 1;
    p.dstAddr = LocalAddr::unflatten(0);
    p.vectors = 1;
    const Tick t1 = gm->execute({p});
    // Second batch launches after time has advanced; compiled cycle
    // numbers must re-base, not panic.
    p.dstDevice = 2;
    const Tick t2 = gm->execute({p});
    EXPECT_GT(t2, t1);
    EXPECT_TRUE(gm->present(at(2, 0)));
}

TEST_F(GlobalMemFixture, CompileReportsCompletionAndValidates)
{
    PushRequest p;
    p.src = at(2, 50);
    p.dstDevice = 6;
    p.dstAddr = LocalAddr::unflatten(60);
    p.vectors = 100;
    p.earliest = 300;
    const auto compiled = gm->compile({p});
    EXPECT_TRUE(validateSchedule(compiled.schedule, topo).ok);
    EXPECT_GE(compiled.schedule.flows.at(1).firstDeparture, 300u);
    EXPECT_GT(compiled.completion, compiled.schedule.makespan);
}

TEST_F(GlobalMemFixture, PushTimeIsMicrosecondsForMegabytes)
{
    // The abstract's framing: global memory accessible in
    // microseconds. 1 MiB across the node lands in a handful of us.
    for (std::uint32_t w = 0; w < bytesToVectors(kMiB); ++w)
        gm->write(at(0, w), makeVec(Vec(1.0f)));
    PushRequest p;
    p.src = at(0, 0);
    p.dstDevice = 7;
    p.dstAddr = LocalAddr::unflatten(0);
    p.vectors = std::uint32_t(bytesToVectors(kMiB));
    const auto compiled = gm->compile({p});
    const double us =
        double(compiled.completion) / kCoreFreqHz * 1e6;
    EXPECT_LT(us, 25.0);
    EXPECT_GT(us, 1.0);
}

TEST_F(GlobalMemFixture, BoundsAreEnforced)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    PushRequest p;
    p.src = at(0, LocalAddr::kWords - 1);
    p.dstDevice = 1;
    p.dstAddr = LocalAddr::unflatten(0);
    p.vectors = 2; // runs past the end
    EXPECT_DEATH(gm->compile({p}), "past the end");
}

} // namespace
} // namespace tsm
