#include <gtest/gtest.h>

#include "runtime/runtime.hh"
#include "runtime/system.hh"
#include "sync/program_alignment.hh"

namespace tsm {
namespace {

std::vector<TensorTransfer>
pairWork(const Topology &, const std::vector<TspId> &active)
{
    // A ring over all active TSPs: every node's links carry traffic,
    // so a faulty node is always exercised.
    std::vector<TensorTransfer> out;
    for (std::size_t i = 0; i < active.size(); ++i) {
        TensorTransfer t;
        t.flow = FlowId(i + 1);
        t.src = active[i];
        t.dst = active[(i + 1) % active.size()];
        t.vectors = 4;
        out.push_back(t);
    }
    return out;
}

TEST(RuntimeEdge, ExhaustedAttemptsReportFailure)
{
    // A persistent fault with the spare already consumed: the runtime
    // runs out of attempts and reports failure honestly.
    Runtime rt(4, 7);
    FaultScenario first;
    first.faultyNode = 0;
    first.mbeRate = 1.0;
    first.persistent = true;
    ASSERT_TRUE(rt.runInference(pairWork, first, 4).success);
    ASSERT_TRUE(rt.spareUsed());

    FaultScenario second;
    second.faultyNode = 2;
    second.mbeRate = 1.0;
    second.persistent = true;
    const auto report = rt.runInference(pairWork, second, 3);
    EXPECT_FALSE(report.success);
    EXPECT_EQ(report.attempts, 3u);
    EXPECT_GT(report.mbesObserved, 0u);
}

TEST(RuntimeEdge, DeadlineAbortsWedgedRun)
{
    // A chip waiting forever (PollRecv with no sender) trips the
    // runToCompletion deadline rather than hanging.
    SystemConfig cfg;
    cfg.numTsps = 8;
    TsmSystem sys(cfg);
    std::vector<Program> payloads(8);
    auto &poll = payloads[0].emit(Op::PollRecv);
    poll.port = 0;
    poll.dst = 1;
    sys.launchRaw(std::move(payloads), 0);
    EXPECT_FALSE(sys.runToCompletion(10 * kPsPerUs));
}

TEST(RuntimeEdge, AlignedLaunchOnTripleRingMultiHopTree)
{
    // The ring-wired node has a spanning tree of height > 1: the
    // DESKEW/TRANSMIT alignment must still start everyone on the same
    // epoch through the multi-hop token relay.
    SystemConfig cfg;
    cfg.numTsps = 8;
    cfg.wiring = NodeWiring::TripleRing;
    TsmSystem sys(cfg, Topology::makeNode(NodeWiring::TripleRing));
    const SyncTree tree = SyncTree::build(sys.topo(), 0);
    EXPECT_GE(tree.height(), 2u);

    std::vector<Program> payloads(8);
    for (auto &p : payloads)
        p.emitCompute(100);
    sys.launchAligned(std::move(payloads));
    ASSERT_TRUE(sys.runToCompletion());
    const Cycle h0 =
        sys.chip(0).clock().tickToCycle(sys.chip(0).stats().haltTick);
    for (TspId t = 1; t < 8; ++t)
        EXPECT_EQ(sys.chip(t).clock().tickToCycle(
                      sys.chip(t).stats().haltTick),
                  h0);
}

TEST(RuntimeEdge, DescribeStringsAreHuman)
{
    EXPECT_NE(Topology::makeNode().describe().find("single node"),
              std::string::npos);
    EXPECT_NE(
        Topology::makeSingleLevel(4).describe().find("single-level"),
        std::string::npos);
    EXPECT_NE(Topology::makeTwoLevel(2).describe().find("two-level"),
              std::string::npos);
    EXPECT_STREQ(linkClassName(LinkClass::IntraNode), "intra-node");
    EXPECT_STREQ(linkClassName(LinkClass::InterRack), "inter-rack");
}

TEST(RuntimeEdge, GlobalAddrStringsRoundTripVisually)
{
    GlobalAddr g;
    g.device = 7;
    g.local = LocalAddr::unflatten(4096 * 2 + 5);
    EXPECT_NE(g.str().find("dev7"), std::string::npos);
    EXPECT_NE(g.str().find("+5"), std::string::npos);
}

TEST(RuntimeEdge, SystemWithErrorsCountsThem)
{
    SystemConfig cfg;
    cfg.numTsps = 8;
    cfg.errors.mbePerVector = 1.0;
    TsmSystem sys(cfg);
    // One raw transfer: the MBE is detected and counted.
    SsnScheduler scheduler(sys.topo());
    TensorTransfer t;
    t.flow = 1;
    t.src = 0;
    t.dst = 1;
    t.vectors = 3;
    auto programs = buildPrograms(scheduler.schedule({t}), sys.topo());
    sys.chip(0).setStream(0, makeVec(Vec(1.0f)));
    sys.launchRaw(std::move(programs.byChip), 0);
    ASSERT_TRUE(sys.runToCompletion());
    EXPECT_GE(sys.criticalErrors(), 3u);
}

} // namespace
} // namespace tsm
