#include <gtest/gtest.h>

#include "sim/clock.hh"

namespace tsm {
namespace {

TEST(DriftClock, NominalPeriod)
{
    DriftClock c;
    EXPECT_NEAR(c.periodPs(), kCorePeriodPs, 1e-9);
    EXPECT_EQ(c.cycleToTick(0), 0u);
    // 900 cycles at 900 MHz = 1 us.
    EXPECT_NEAR(double(c.cycleToTick(900)), 1e6, 1.0);
}

TEST(DriftClock, RoundTrip)
{
    DriftClock c(0.0, 12345);
    for (Cycle cyc : {0ul, 1ul, 100ul, 999999ul}) {
        const Tick t = c.cycleToTick(cyc);
        EXPECT_EQ(c.tickToCycle(t), cyc);
    }
}

TEST(DriftClock, PositivePpmRunsFast)
{
    DriftClock fast(100.0); // +100 ppm
    DriftClock nominal(0.0);
    EXPECT_LT(fast.periodPs(), nominal.periodPs());
    // After 1 simulated second the fast clock counted ~100 us worth of
    // extra cycles: 90,000 more at 900 MHz.
    const Tick one_sec = kPsPerSec;
    const auto extra = std::int64_t(fast.tickToCycle(one_sec)) -
                       std::int64_t(nominal.tickToCycle(one_sec));
    EXPECT_NEAR(double(extra), 90000.0, 10.0);
}

TEST(DriftClock, PhaseOffsetShiftsEdges)
{
    DriftClock c(0.0, 500);
    EXPECT_EQ(c.cycleToTick(0), 500u);
    EXPECT_EQ(c.tickToCycle(499), 0u);
}

TEST(DriftClock, NextEdgeAtOrAfter)
{
    DriftClock c;
    const Tick mid = c.cycleToTick(10) + 1;
    const Tick edge = c.nextEdge(mid);
    EXPECT_GE(edge, mid);
    EXPECT_EQ(c.tickToCycle(edge), 11u);
    // Exactly on an edge stays put.
    EXPECT_EQ(c.nextEdge(c.cycleToTick(10)), c.cycleToTick(10));
}

TEST(DriftClock, DriftAccumulatesLinearly)
{
    DriftClock a(50.0), b(-50.0);
    // Relative drift 100 ppm: over 252 cycles (one HAC epoch) the
    // skew is ~0.025 cycles; over ~10k epochs it exceeds a cycle.
    const Tick t = Tick(10000 * kHacPeriodCycles * kCorePeriodPs);
    const auto d = std::int64_t(a.tickToCycle(t)) -
                   std::int64_t(b.tickToCycle(t));
    EXPECT_GT(d, 200);
}

} // namespace
} // namespace tsm
