#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace tsm {
namespace {

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.schedule(2, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilStopsAndAdvancesClock)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.runUntil(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunWithLimit)
{
    EventQueue eq;
    int fired = 0;
    for (Tick t = 1; t <= 5; ++t)
        eq.schedule(t, [&] { ++fired; });
    EXPECT_EQ(eq.run(3), 3u);
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, ScheduleAfterUsesNow)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(10, [&] {
        eq.scheduleAfter(5, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 15u);
}

TEST(EventQueue, ResetDropsEverything)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.reset();
    eq.run();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.now(), 0u);
}

TEST(EventQueue, ScheduleAtNowInsideCallbackRunsSameRun)
{
    // An event scheduled for the current tick from within a callback
    // must still execute in this run(), after the events already
    // queued for that tick (insertion order).
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] {
        order.push_back(1);
        eq.schedule(eq.now(), [&] { order.push_back(3); });
    });
    eq.schedule(10, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, ScheduleAfterZeroDelayIsLegal)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] { eq.scheduleAfter(0, [&] { ++fired; }); });
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, SameTickStabilityAcrossInterleavedSchedules)
{
    // Insertion order at one tick must hold even when schedules for
    // that tick are interleaved with schedules for other ticks — the
    // global sequence number, not heap luck, decides.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(20, [&] { order.push_back(100); });
    eq.schedule(10, [&] { order.push_back(0); });
    eq.schedule(20, [&] { order.push_back(101); });
    eq.schedule(5, [&] { order.push_back(-1); });
    eq.schedule(20, [&] { order.push_back(102); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{-1, 0, 100, 101, 102}));
}

TEST(EventQueue, SameTickStabilitySurvivesManyEvents)
{
    // Enough same-tick events to force heap rebalancing.
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 1000; ++i)
        eq.schedule(7, [&order, i] { order.push_back(i); });
    eq.run();
    ASSERT_EQ(order.size(), 1000u);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, RunUntilBoundaryIsInclusive)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(50, [&] { ++fired; });
    eq.schedule(51, [&] { ++fired; });
    EXPECT_EQ(eq.runUntil(50), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
}

TEST(EventQueue, RunUntilAtNowWithEmptyQueueHoldsTime)
{
    EventQueue eq;
    eq.runUntil(100);
    EXPECT_EQ(eq.now(), 100u);
    eq.runUntil(100); // not in the past; must be a no-op
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, CascadedSameTickChainTerminates)
{
    // A bounded chain of schedule-at-now events all run at one tick.
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 64)
            eq.schedule(eq.now(), chain);
    };
    eq.schedule(3, chain);
    EXPECT_EQ(eq.run(), 64u);
    EXPECT_EQ(depth, 64);
    EXPECT_EQ(eq.now(), 3u);
}

TEST(EventQueue, ResetAllowsReuseFromZero)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    eq.reset();
    // After reset, scheduling at early ticks is legal again.
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 1u);
}

TEST(EventQueueDeath, PastScheduleAborts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "past");
}

TEST(EventQueueDeath, PastScheduleInsideCallbackAborts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EventQueue eq;
    eq.schedule(10, [&] {
        EXPECT_DEATH(eq.schedule(9, [] {}), "past");
    });
    eq.run();
}

} // namespace
} // namespace tsm
