#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace tsm {
namespace {

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.schedule(2, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilStopsAndAdvancesClock)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.runUntil(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunWithLimit)
{
    EventQueue eq;
    int fired = 0;
    for (Tick t = 1; t <= 5; ++t)
        eq.schedule(t, [&] { ++fired; });
    EXPECT_EQ(eq.run(3), 3u);
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, ScheduleAfterUsesNow)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(10, [&] {
        eq.scheduleAfter(5, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 15u);
}

TEST(EventQueue, ResetDropsEverything)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.reset();
    eq.run();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.now(), 0u);
}

TEST(EventQueueDeath, PastScheduleAborts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "past");
}

} // namespace
} // namespace tsm
