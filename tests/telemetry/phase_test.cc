/**
 * @file
 * Bottleneck-phase analyzer tests: regime classification on synthetic
 * window streams, tie-breaking, idle-bubble labeling, phase merging,
 * and the hottest-link/FU naming.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "telemetry/phase.hh"
#include "telemetry/timeline.hh"

namespace tsm {
namespace {

Tick
cyclesPs(Cycle cycles)
{
    return Tick(std::llround(double(cycles) * kCorePeriodPs));
}

TEST(Phase, RegimeNamesAndChars)
{
    EXPECT_STREQ(regimeName(Regime::Idle), "idle");
    EXPECT_STREQ(regimeName(Regime::Compute), "compute");
    EXPECT_STREQ(regimeName(Regime::Network), "network");
    EXPECT_STREQ(regimeName(Regime::Sync), "sync");
    EXPECT_EQ(regimeChar(Regime::Idle), '.');
    EXPECT_EQ(regimeChar(Regime::Compute), 'C');
    EXPECT_EQ(regimeChar(Regime::Network), 'N');
    EXPECT_EQ(regimeChar(Regime::Sync), 'S');
}

TEST(Phase, ComputeBoundWindow)
{
    TimelineSampler s(10);
    // Window 0 is all MXM busy with no network traffic.
    s.event({0, cyclesPs(8), TraceCat::Chip, 0, "MXM.MM", 0, 0});
    s.event({0, 0, TraceCat::Chip, 0, "halt", 0, 8});
    s.finish();

    const PhaseAnalysis a = analyzePhases(s);
    ASSERT_EQ(a.labels.size(), 1u);
    EXPECT_EQ(a.labels[0].regime, Regime::Compute);
    EXPECT_EQ(a.labels[0].hotFu, std::int64_t(FuncUnit::MXM));
    EXPECT_EQ(a.labels[0].hotLink, -1);
    EXPECT_GT(a.labels[0].busyFrac, 0.9);
}

TEST(Phase, SyncBoundWindow)
{
    TimelineSampler s(10);
    // Stall (poll wait) dominates the charged cycles.
    s.event({0, cyclesPs(7), TraceCat::Chip, 0, "poll_wait", 0, 0});
    s.event({0, cyclesPs(2), TraceCat::Chip, 0, "VADD", 0, 7});
    s.event({0, 0, TraceCat::Chip, 0, "halt", 0, 9});
    s.finish();

    const PhaseAnalysis a = analyzePhases(s);
    ASSERT_EQ(a.labels.size(), 1u);
    EXPECT_EQ(a.labels[0].regime, Regime::Sync);
    EXPECT_GT(a.labels[0].stallFrac, a.labels[0].busyFrac);
}

TEST(Phase, NetworkBoundWindow)
{
    TimelineSampler s(100);
    // Four serialization charges on link 3 (each ~24 cycles of the
    // 100-cycle window) dwarf one 2-cycle VADD.
    const Tick ser = Tick(std::llround(kVectorSerializationPs));
    for (unsigned i = 0; i < 4; ++i)
        s.event({cyclesPs(i * 24), ser, TraceCat::Net, 3, "tx", 1,
                 std::int64_t(i)});
    s.event({0, cyclesPs(2), TraceCat::Chip, 0, "VADD", 0, 0});
    s.event({0, 0, TraceCat::Chip, 0, "halt", 0, 90});
    s.finish();

    const PhaseAnalysis a = analyzePhases(s);
    ASSERT_EQ(a.labels.size(), 1u);
    EXPECT_EQ(a.labels[0].regime, Regime::Network);
    EXPECT_EQ(a.labels[0].hotLink, 3);
    EXPECT_GT(a.labels[0].netUtil, 0.9);
}

TEST(Phase, AllIdleWindowIsIdleNotSync)
{
    TimelineSampler s(10);
    // A 2-cycle op at cycle 0, then nothing until cycle 28: windows 1
    // and 2 hold only idle cycles — a pipeline bubble, not sync time.
    s.event({0, cyclesPs(2), TraceCat::Chip, 0, "VADD", 0, 0});
    s.event({0, 0, TraceCat::Chip, 0, "halt", 0, 28});
    s.finish();

    const PhaseAnalysis a = analyzePhases(s);
    ASSERT_EQ(a.labels.size(), 3u);
    EXPECT_EQ(a.labels[1].regime, Regime::Idle);
    EXPECT_EQ(a.labels[2].regime, Regime::Idle);
}

TEST(Phase, HacOnlyWindowIsSync)
{
    TimelineSampler s(10);
    s.event({cyclesPs(3), 0, TraceCat::Sync, 1, "hac_adj", -4, 2});
    s.finish();

    const PhaseAnalysis a = analyzePhases(s);
    ASSERT_EQ(a.labels.size(), 1u);
    EXPECT_EQ(a.labels[0].regime, Regime::Sync);
}

TEST(Phase, ConsecutiveSameRegimeWindowsMerge)
{
    TimelineSampler s(10);
    // Windows 0-1 compute, windows 2-3 idle, window 4 compute.
    s.event({0, cyclesPs(18), TraceCat::Chip, 0, "COMPUTE", 0, 0});
    s.event({0, cyclesPs(4), TraceCat::Chip, 0, "MXM.MM", 0, 44});
    s.event({0, 0, TraceCat::Chip, 0, "halt", 0, 48});
    s.finish();

    const PhaseAnalysis a = analyzePhases(s);
    ASSERT_EQ(a.labels.size(), 5u);
    ASSERT_EQ(a.phases.size(), 3u);
    EXPECT_EQ(a.phases[0].regime, Regime::Compute);
    EXPECT_EQ(a.phases[0].firstWindow, 0u);
    EXPECT_EQ(a.phases[0].lastWindow, 1u);
    EXPECT_EQ(a.phases[0].windows(), 2u);
    EXPECT_EQ(a.phases[1].regime, Regime::Idle);
    EXPECT_EQ(a.phases[1].firstWindow, 2u);
    EXPECT_EQ(a.phases[1].lastWindow, 3u);
    EXPECT_EQ(a.phases[2].regime, Regime::Compute);
    EXPECT_EQ(a.phases[2].firstWindow, 4u);
    EXPECT_EQ(a.phases[2].hotFu, std::int64_t(FuncUnit::MXM));
}

TEST(Phase, PhaseNamesHottestLinkByTotalWork)
{
    TimelineSampler s(100);
    const Tick ser = Tick(std::llround(kVectorSerializationPs));
    // Link 2 carries three flits, link 7 one: the phase's hot link is
    // the one that did the most total serialization work.
    s.event({cyclesPs(0), ser, TraceCat::Net, 2, "tx", 1, 0});
    s.event({cyclesPs(30), ser, TraceCat::Net, 2, "tx", 1, 1});
    s.event({cyclesPs(110), ser, TraceCat::Net, 2, "tx", 1, 2});
    s.event({cyclesPs(120), ser, TraceCat::Net, 7, "tx", 2, 0});
    s.finish();

    const PhaseAnalysis a = analyzePhases(s);
    ASSERT_EQ(a.phases.size(), 1u);
    EXPECT_EQ(a.phases[0].regime, Regime::Network);
    EXPECT_EQ(a.phases[0].hotLink, 2);
    EXPECT_EQ(a.phases[0].flits, 4u);
}

TEST(Phase, JsonSerializationMatchesAnalysis)
{
    TimelineSampler s(10);
    s.event({0, cyclesPs(8), TraceCat::Chip, 0, "VMUL", 0, 0});
    s.event({0, 0, TraceCat::Chip, 0, "halt", 0, 8});
    s.finish();

    const PhaseAnalysis a = analyzePhases(s);
    const Json labels = windowLabelsJson(a);
    ASSERT_EQ(labels.size(), a.labels.size());
    EXPECT_EQ(labels.at(0)["regime"].str(), "compute");
    EXPECT_EQ(labels.at(0)["hot_fu"].str(), "VXM");

    const Json phases = phasesJson(a);
    ASSERT_EQ(phases.size(), 1u);
    EXPECT_EQ(phases.at(0)["regime"].str(), "compute");
    EXPECT_EQ(phases.at(0)["windows"].integer(), 1);

    const std::string table = renderPhaseTable(phases);
    EXPECT_NE(table.find("bottleneck phases"), std::string::npos);
    EXPECT_NE(table.find("compute"), std::string::npos);

    // Empty phases render to nothing.
    EXPECT_EQ(renderPhaseTable(Json::array()), "");
}

} // namespace
} // namespace tsm
