/**
 * @file
 * tsm_top renderer tests: shading ramp, empty documents, and a smoke
 * render of a real sampled timeline — heatmap rows, phase ribbon and
 * summary table all present and sized to the column budget.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "telemetry/phase.hh"
#include "telemetry/render.hh"
#include "telemetry/timeline.hh"

namespace tsm {
namespace {

Tick
cyclesPs(Cycle cycles)
{
    return Tick(std::llround(double(cycles) * kCorePeriodPs));
}

TEST(Render, ShadeRampIsMonotonic)
{
    EXPECT_EQ(shadeChar(0.0), ' ');
    EXPECT_EQ(shadeChar(1.0), '@');
    EXPECT_EQ(shadeChar(2.0), '@'); // clamped above 100%
    double prev = -1;
    for (double u = 0.0; u <= 1.0; u += 0.05) {
        const char *pos = std::strchr(kShadeRamp, shadeChar(u));
        ASSERT_NE(pos, nullptr) << "util " << u;
        EXPECT_GE(pos - kShadeRamp, prev) << "util " << u;
        prev = double(pos - kShadeRamp);
    }
}

TEST(Render, EmptyTimelineExplainsItself)
{
    TimelineSampler s;
    s.finish();
    const std::string out = renderTimelineTop(s.report());
    EXPECT_NE(out.find("no windowed activity"), std::string::npos);
}

TEST(Render, SmokeRenderOfSampledTimeline)
{
    TimelineSampler s(10);
    s.setBench("render_smoke");
    s.setSeed(7);
    const Tick ser = Tick(std::llround(kVectorSerializationPs));
    // Three windows: network burst, compute, idle tail.
    s.event({cyclesPs(1), ser, TraceCat::Net, 4, "tx", 1, 0});
    s.event({cyclesPs(2), 0, TraceCat::Net, 4, "rx", 1, 0});
    s.event({cyclesPs(3), 0, TraceCat::Ssn, 0, "recv", 1, 0});
    s.event({0, cyclesPs(9), TraceCat::Chip, 0, "MXM.MM", 0, 11});
    s.event({0, 0, TraceCat::Chip, 0, "halt", 0, 29});
    s.finish();

    const PhaseAnalysis analysis = analyzePhases(s);
    const Json doc = s.report(&analysis);

    TopOptions opts;
    opts.cols = 16;
    const std::string out = renderTimelineTop(doc, opts);
    EXPECT_NE(out.find("render_smoke"), std::string::npos);
    EXPECT_NE(out.find("link 4"), std::string::npos);
    EXPECT_NE(out.find("tsp 0"), std::string::npos);
    EXPECT_NE(out.find("phase ribbon"), std::string::npos);
    EXPECT_NE(out.find("bottleneck phases"), std::string::npos);

    // Heatmap rows are bounded by the column budget: the row body
    // between the pipes never exceeds opts.cols characters.
    const std::size_t row = out.find("link 4");
    ASSERT_NE(row, std::string::npos);
    const std::size_t open = out.find('|', row);
    const std::size_t close = out.find('|', open + 1);
    ASSERT_NE(close, std::string::npos);
    EXPECT_LE(close - open - 1, std::size_t(opts.cols));
}

TEST(Render, ManyWindowsBucketIntoColumns)
{
    TimelineSampler s(10);
    const Tick ser = Tick(std::llround(kVectorSerializationPs));
    // 200 windows of traffic on one link.
    for (unsigned w = 0; w < 200; ++w)
        s.event({cyclesPs(w * 10 + 1), ser, TraceCat::Net, 0, "tx", 1,
                 std::int64_t(w)});
    s.finish();

    const PhaseAnalysis analysis = analyzePhases(s);
    TopOptions opts;
    opts.cols = 32;
    const std::string out = renderTimelineTop(s.report(&analysis), opts);
    const std::size_t row = out.find("link 0");
    ASSERT_NE(row, std::string::npos);
    const std::size_t open = out.find('|', row);
    const std::size_t close = out.find('|', open + 1);
    EXPECT_EQ(close - open - 1, std::size_t(opts.cols));
}

} // namespace
} // namespace tsm
