/**
 * @file
 * Bench-diff tests: direction semantics (lower/higher/stable/info),
 * tolerance gating, zero baselines, schema mismatches, timeline
 * documents, and the rendered verdict footer.
 */

#include <gtest/gtest.h>

#include "telemetry/bench_diff.hh"

namespace tsm {
namespace {

Json
profileDoc(double cycles, double gbps, double events)
{
    Json doc = Json::object();
    doc.set("schema", "tsm-profile-v1");
    doc.set("cycles", cycles);
    Json sim = Json::object();
    sim.set("events", events);
    doc.set("sim", std::move(sim));
    Json tp = Json::object();
    tp.set("flits", 173.0);
    tp.set("gbytes_per_sec", gbps);
    doc.set("throughput", std::move(tp));
    Json hac = Json::object();
    hac.set("adjustments", 0.0);
    doc.set("hac", std::move(hac));
    return doc;
}

const MetricDelta *
find(const DiffResult &diff, const std::string &name)
{
    for (const MetricDelta &m : diff.metrics)
        if (m.name == name)
            return &m;
    return nullptr;
}

TEST(BenchDiff, SelfCompareIsClean)
{
    const Json doc = profileDoc(1000, 50, 1488);
    const DiffResult diff = diffReports(doc, doc, 0.05);
    EXPECT_FALSE(diff.regressed);
    EXPECT_GT(diff.metrics.size(), 0u);
    for (const MetricDelta &m : diff.metrics)
        EXPECT_NE(m.verdict, MetricVerdict::Regressed) << m.name;
    EXPECT_NE(renderDiff(diff).find("ok:"), std::string::npos);
}

TEST(BenchDiff, LowerIsBetterGatesOnGrowth)
{
    const Json base = profileDoc(1000, 50, 1488);
    const DiffResult slow =
        diffReports(base, profileDoc(1200, 50, 1488), 0.05);
    EXPECT_TRUE(slow.regressed);
    const MetricDelta *m = find(slow, "cycles");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->verdict, MetricVerdict::Regressed);
    EXPECT_NEAR(m->rel, 0.2, 1e-9);
    EXPECT_NE(renderDiff(slow).find("REGRESSION"), std::string::npos);

    // Shrinkage is an improvement, never a regression.
    const DiffResult fast =
        diffReports(base, profileDoc(800, 50, 1488), 0.05);
    EXPECT_FALSE(fast.regressed);
    EXPECT_EQ(find(fast, "cycles")->verdict, MetricVerdict::Improved);
}

TEST(BenchDiff, HigherIsBetterGatesOnShrink)
{
    const Json base = profileDoc(1000, 50, 1488);
    const DiffResult diff =
        diffReports(base, profileDoc(1000, 40, 1488), 0.05);
    EXPECT_TRUE(diff.regressed);
    EXPECT_EQ(find(diff, "throughput.gbytes_per_sec")->verdict,
              MetricVerdict::Regressed);
}

TEST(BenchDiff, StableGatesBothWays)
{
    const Json base = profileDoc(1000, 50, 1488);
    const DiffResult up =
        diffReports(base, profileDoc(1000, 50, 2000), 0.05);
    EXPECT_EQ(find(up, "sim.events")->verdict, MetricVerdict::Regressed);
    const DiffResult down =
        diffReports(base, profileDoc(1000, 50, 1000), 0.05);
    EXPECT_EQ(find(down, "sim.events")->verdict, MetricVerdict::Regressed);
}

TEST(BenchDiff, ToleranceSuppressesSmallDrift)
{
    const Json base = profileDoc(1000, 50, 1488);
    // +40% cycles passes under a 50% tolerance.
    const DiffResult diff =
        diffReports(base, profileDoc(1400, 50, 1488), 0.5);
    EXPECT_FALSE(diff.regressed);
    EXPECT_EQ(find(diff, "cycles")->verdict, MetricVerdict::Ok);
}

TEST(BenchDiff, InfoMetricsNeverGate)
{
    Json base = profileDoc(1000, 50, 1488);
    Json next = profileDoc(1000, 50, 1488);
    Json hac = Json::object();
    hac.set("adjustments", 999.0);
    next.set("hac", std::move(hac));
    const DiffResult diff = diffReports(base, next, 0.05);
    EXPECT_FALSE(diff.regressed);
    EXPECT_EQ(find(diff, "hac.adjustments")->verdict, MetricVerdict::Info);
}

TEST(BenchDiff, ZeroBaselineUsesUnitDelta)
{
    Json base = profileDoc(1000, 50, 1488);
    Json next = profileDoc(1000, 50, 1488);
    base.set("cycles", 0.0);
    next.set("cycles", 5.0);
    const DiffResult diff = diffReports(base, next, 0.05);
    const MetricDelta *m = find(diff, "cycles");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->rel, 1.0);
    EXPECT_EQ(m->verdict, MetricVerdict::Regressed);
}

TEST(BenchDiff, SchemaMismatchRegresses)
{
    Json profile = profileDoc(1000, 50, 1488);
    Json timeline = Json::object();
    timeline.set("schema", "tsm-timeline-v1");
    const DiffResult diff = diffReports(profile, timeline, 0.05);
    EXPECT_TRUE(diff.regressed);
    EXPECT_TRUE(diff.metrics.empty());
    EXPECT_NE(renderDiff(diff).find("no comparable metrics"),
              std::string::npos);

    // Missing schema entirely is also a mismatch.
    const DiffResult none = diffReports(Json::object(), profile, 0.05);
    EXPECT_TRUE(none.regressed);
}

TEST(BenchDiff, MissingMetricsAreSkipped)
{
    Json base = Json::object();
    base.set("schema", "tsm-profile-v1");
    base.set("cycles", 100.0);
    Json next = Json::object();
    next.set("schema", "tsm-profile-v1");
    // `cycles` absent in next: skipped, not compared, not a crash.
    const DiffResult diff = diffReports(base, next, 0.05);
    EXPECT_EQ(find(diff, "cycles"), nullptr);
    EXPECT_FALSE(diff.regressed);
}

TEST(BenchDiff, TimelineDocumentsCompareWindows)
{
    auto timelineDoc = [](double span, double flits) {
        Json doc = Json::object();
        doc.set("schema", "tsm-timeline-v1");
        doc.set("span_cycles", span);
        doc.set("windows", 4.0);
        doc.set("events", 100.0);
        Json links = Json::array();
        Json l = Json::object();
        l.set("id", 0);
        l.set("flits", flits);
        links.push(std::move(l));
        doc.set("links", std::move(links));
        return doc;
    };
    const Json base = timelineDoc(1000, 64);
    const DiffResult ok = diffReports(base, timelineDoc(1000, 64), 0.05);
    EXPECT_FALSE(ok.regressed);
    ASSERT_NE(find(ok, "span_cycles"), nullptr);
    ASSERT_NE(find(ok, "links.total_flits"), nullptr);

    const DiffResult slow =
        diffReports(base, timelineDoc(1500, 64), 0.05);
    EXPECT_TRUE(slow.regressed);
    const DiffResult rerouted =
        diffReports(base, timelineDoc(1000, 128), 0.05);
    EXPECT_TRUE(rerouted.regressed); // flit drift = different work
}

} // namespace
} // namespace tsm
