/**
 * @file
 * Bench-diff tests: direction semantics (lower/higher/stable/info),
 * tolerance gating, zero baselines, schema mismatches, timeline
 * documents, and the rendered verdict footer.
 */

#include <gtest/gtest.h>

#include "telemetry/bench_diff.hh"

namespace tsm {
namespace {

Json
profileDoc(double cycles, double gbps, double events)
{
    Json doc = Json::object();
    doc.set("schema", "tsm-profile-v1");
    doc.set("cycles", cycles);
    Json sim = Json::object();
    sim.set("events", events);
    doc.set("sim", std::move(sim));
    Json tp = Json::object();
    tp.set("flits", 173.0);
    tp.set("gbytes_per_sec", gbps);
    doc.set("throughput", std::move(tp));
    Json hac = Json::object();
    hac.set("adjustments", 0.0);
    doc.set("hac", std::move(hac));
    return doc;
}

const MetricDelta *
find(const DiffResult &diff, const std::string &name)
{
    for (const MetricDelta &m : diff.metrics)
        if (m.name == name)
            return &m;
    return nullptr;
}

TEST(BenchDiff, SelfCompareIsClean)
{
    const Json doc = profileDoc(1000, 50, 1488);
    const DiffResult diff = diffReports(doc, doc, 0.05);
    EXPECT_FALSE(diff.regressed);
    EXPECT_GT(diff.metrics.size(), 0u);
    for (const MetricDelta &m : diff.metrics)
        EXPECT_NE(m.verdict, MetricVerdict::Regressed) << m.name;
    EXPECT_NE(renderDiff(diff).find("ok:"), std::string::npos);
}

TEST(BenchDiff, LowerIsBetterGatesOnGrowth)
{
    const Json base = profileDoc(1000, 50, 1488);
    const DiffResult slow =
        diffReports(base, profileDoc(1200, 50, 1488), 0.05);
    EXPECT_TRUE(slow.regressed);
    const MetricDelta *m = find(slow, "cycles");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->verdict, MetricVerdict::Regressed);
    EXPECT_NEAR(m->rel, 0.2, 1e-9);
    EXPECT_NE(renderDiff(slow).find("REGRESSION"), std::string::npos);

    // Shrinkage is an improvement, never a regression.
    const DiffResult fast =
        diffReports(base, profileDoc(800, 50, 1488), 0.05);
    EXPECT_FALSE(fast.regressed);
    EXPECT_EQ(find(fast, "cycles")->verdict, MetricVerdict::Improved);
}

TEST(BenchDiff, HigherIsBetterGatesOnShrink)
{
    const Json base = profileDoc(1000, 50, 1488);
    const DiffResult diff =
        diffReports(base, profileDoc(1000, 40, 1488), 0.05);
    EXPECT_TRUE(diff.regressed);
    EXPECT_EQ(find(diff, "throughput.gbytes_per_sec")->verdict,
              MetricVerdict::Regressed);
}

TEST(BenchDiff, StableGatesBothWays)
{
    const Json base = profileDoc(1000, 50, 1488);
    const DiffResult up =
        diffReports(base, profileDoc(1000, 50, 2000), 0.05);
    EXPECT_EQ(find(up, "sim.events")->verdict, MetricVerdict::Regressed);
    const DiffResult down =
        diffReports(base, profileDoc(1000, 50, 1000), 0.05);
    EXPECT_EQ(find(down, "sim.events")->verdict, MetricVerdict::Regressed);
}

TEST(BenchDiff, ToleranceSuppressesSmallDrift)
{
    const Json base = profileDoc(1000, 50, 1488);
    // +40% cycles passes under a 50% tolerance.
    const DiffResult diff =
        diffReports(base, profileDoc(1400, 50, 1488), 0.5);
    EXPECT_FALSE(diff.regressed);
    EXPECT_EQ(find(diff, "cycles")->verdict, MetricVerdict::Ok);
}

TEST(BenchDiff, InfoMetricsNeverGate)
{
    Json base = profileDoc(1000, 50, 1488);
    Json next = profileDoc(1000, 50, 1488);
    Json hac = Json::object();
    hac.set("adjustments", 999.0);
    next.set("hac", std::move(hac));
    const DiffResult diff = diffReports(base, next, 0.05);
    EXPECT_FALSE(diff.regressed);
    EXPECT_EQ(find(diff, "hac.adjustments")->verdict, MetricVerdict::Info);
}

TEST(BenchDiff, ZeroBaselineUsesUnitDelta)
{
    Json base = profileDoc(1000, 50, 1488);
    Json next = profileDoc(1000, 50, 1488);
    base.set("cycles", 0.0);
    next.set("cycles", 5.0);
    const DiffResult diff = diffReports(base, next, 0.05);
    const MetricDelta *m = find(diff, "cycles");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->rel, 1.0);
    EXPECT_EQ(m->verdict, MetricVerdict::Regressed);
}

TEST(BenchDiff, SchemaMismatchRegresses)
{
    Json profile = profileDoc(1000, 50, 1488);
    Json timeline = Json::object();
    timeline.set("schema", "tsm-timeline-v1");
    const DiffResult diff = diffReports(profile, timeline, 0.05);
    EXPECT_TRUE(diff.regressed);
    EXPECT_TRUE(diff.metrics.empty());
    EXPECT_NE(renderDiff(diff).find("no comparable metrics"),
              std::string::npos);

    // Missing schema entirely is also a mismatch.
    const DiffResult none = diffReports(Json::object(), profile, 0.05);
    EXPECT_TRUE(none.regressed);
}

TEST(BenchDiff, MissingMetricsAreSkipped)
{
    Json base = Json::object();
    base.set("schema", "tsm-profile-v1");
    base.set("cycles", 100.0);
    Json next = Json::object();
    next.set("schema", "tsm-profile-v1");
    // `cycles` absent in next: skipped, not compared, not a crash.
    const DiffResult diff = diffReports(base, next, 0.05);
    EXPECT_EQ(find(diff, "cycles"), nullptr);
    EXPECT_FALSE(diff.regressed);
}

TEST(BenchDiff, TimelineDocumentsCompareWindows)
{
    auto timelineDoc = [](double span, double flits) {
        Json doc = Json::object();
        doc.set("schema", "tsm-timeline-v1");
        doc.set("span_cycles", span);
        doc.set("windows", 4.0);
        doc.set("events", 100.0);
        Json links = Json::array();
        Json l = Json::object();
        l.set("id", 0);
        l.set("flits", flits);
        links.push(std::move(l));
        doc.set("links", std::move(links));
        return doc;
    };
    const Json base = timelineDoc(1000, 64);
    const DiffResult ok = diffReports(base, timelineDoc(1000, 64), 0.05);
    EXPECT_FALSE(ok.regressed);
    ASSERT_NE(find(ok, "span_cycles"), nullptr);
    ASSERT_NE(find(ok, "links.total_flits"), nullptr);

    const DiffResult slow =
        diffReports(base, timelineDoc(1500, 64), 0.05);
    EXPECT_TRUE(slow.regressed);
    const DiffResult rerouted =
        diffReports(base, timelineDoc(1000, 128), 0.05);
    EXPECT_TRUE(rerouted.regressed); // flit drift = different work
}

Json
whatifDoc(double makespan, double topDelta, double topRank,
          bool dropTopLever = false)
{
    Json doc = Json::object();
    doc.set("schema", "tsm-whatif-v1");
    Json base = Json::object();
    base.set("makespan_cycles", makespan);
    base.set("static_completion_cycles", makespan + 8.0);
    base.set("hops", 208.0);
    doc.set("base", std::move(base));
    Json levers = Json::array();
    struct Row
    {
        const char *key;
        double delta;
    };
    const Row rows[] = {{"flow_removal:99:x2", topDelta},
                        {"link_bandwidth:1:x2", 12.0},
                        {"link_latency:1:x2", 1.0}};
    double rank = 1.0;
    for (const Row &row : rows) {
        if (dropTopLever && rank == 1.0) {
            rank += 1.0;
            continue;
        }
        Json lever = Json::object();
        lever.set("rank", rank == 1.0 ? topRank : rank);
        lever.set("key", row.key);
        lever.set("delta_cycles", row.delta);
        levers.push(std::move(lever));
        rank += 1.0;
    }
    doc.set("levers", std::move(levers));
    doc.set("levers_total", 3.0);
    return doc;
}

TEST(BenchDiff, WhatifSelfCompareIsClean)
{
    const Json doc = whatifDoc(1341, 240, 1);
    const DiffResult diff = diffReports(doc, doc, 0.05);
    EXPECT_FALSE(diff.regressed);
    ASSERT_NE(find(diff, "base.makespan_cycles"), nullptr);
    ASSERT_NE(find(diff, "lever.flow_removal:99:x2.delta_cycles"),
              nullptr);
    ASSERT_NE(find(diff, "lever.flow_removal:99:x2.rank"), nullptr);
    const MetricDelta *missing = find(diff, "levers.top5_missing_in_new");
    ASSERT_NE(missing, nullptr);
    EXPECT_EQ(missing->next, 0.0);
}

TEST(BenchDiff, WhatifGatesOnLeverDeltaDrift)
{
    const Json base = whatifDoc(1341, 240, 1);
    const DiffResult drifted =
        diffReports(base, whatifDoc(1341, 120, 1), 0.05);
    EXPECT_TRUE(drifted.regressed);
    const MetricDelta *m =
        find(drifted, "lever.flow_removal:99:x2.delta_cycles");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->verdict, MetricVerdict::Regressed);
}

TEST(BenchDiff, WhatifGatesOnLeverRankAndDisappearance)
{
    const Json base = whatifDoc(1341, 240, 1);
    const DiffResult demoted =
        diffReports(base, whatifDoc(1341, 240, 3), 0.05);
    EXPECT_TRUE(demoted.regressed);
    const MetricDelta *rank =
        find(demoted, "lever.flow_removal:99:x2.rank");
    ASSERT_NE(rank, nullptr);
    EXPECT_EQ(rank->verdict, MetricVerdict::Regressed);

    const DiffResult vanished =
        diffReports(base, whatifDoc(1341, 240, 1, true), 0.05);
    EXPECT_TRUE(vanished.regressed);
    const MetricDelta *missing =
        find(vanished, "levers.top5_missing_in_new");
    ASSERT_NE(missing, nullptr);
    EXPECT_EQ(missing->verdict, MetricVerdict::Regressed);
    EXPECT_EQ(missing->next, 1.0);
}

/** A minimal tsm-parallel-v1 document for the lanes-schema diffs. */
Json
lanesDoc(double bound16, double cpEvents)
{
    Json doc = Json::object();
    doc.set("schema", Json("tsm-parallel-v1"));
    Json totals = Json::object();
    totals.set("events", 1000.0);
    totals.set("cross_lane_events", 400.0);
    totals.set("same_phase_cross_lane", 250.0);
    doc.set("totals", std::move(totals));
    doc.set("lanes_total", 12.0);
    Json phases = Json::object();
    phases.set("count", 40.0);
    doc.set("phases", std::move(phases));
    Json speedup = Json::array();
    for (const double workers : {2.0, 4.0, 8.0, 16.0}) {
        Json entry = Json::object();
        entry.set("workers", workers);
        entry.set("bound", workers == 16.0 ? bound16 : 2.0);
        speedup.push(std::move(entry));
    }
    doc.set("speedup", std::move(speedup));
    doc.set("speedup_inf", bound16);
    Json critical = Json::object();
    critical.set("events", cpEvents);
    doc.set("critical_path", std::move(critical));
    doc.set("lookahead_ps", 267210.0);
    return doc;
}

TEST(BenchDiff, LanesSelfCompareIsClean)
{
    const Json doc = lanesDoc(4.3, 200);
    const DiffResult diff = diffReports(doc, doc, 0.05);
    EXPECT_FALSE(diff.regressed);
    ASSERT_NE(find(diff, "totals.events"), nullptr);
    ASSERT_NE(find(diff, "speedup.16.bound"), nullptr);
    ASSERT_NE(find(diff, "critical_path.events"), nullptr);
    const MetricDelta *look = find(diff, "lookahead_ps");
    ASSERT_NE(look, nullptr);
    EXPECT_EQ(look->verdict, MetricVerdict::Info);
}

TEST(BenchDiff, LanesGateOnShrinkingBoundsAndGrowingCriticalPath)
{
    const Json base = lanesDoc(4.3, 200);
    // Shrinking exploitable parallelism is a regression...
    const DiffResult shrunk = diffReports(base, lanesDoc(2.5, 200), 0.05);
    EXPECT_TRUE(shrunk.regressed);
    const MetricDelta *bound = find(shrunk, "speedup.16.bound");
    ASSERT_NE(bound, nullptr);
    EXPECT_EQ(bound->verdict, MetricVerdict::Regressed);
    // ...a longer critical path is too...
    const DiffResult longer = diffReports(base, lanesDoc(4.3, 400), 0.05);
    EXPECT_TRUE(longer.regressed);
    // ...but a *higher* bound only improves.
    const DiffResult grown = diffReports(base, lanesDoc(6.0, 200), 0.05);
    EXPECT_FALSE(grown.regressed);
    const MetricDelta *up = find(grown, "speedup.16.bound");
    ASSERT_NE(up, nullptr);
    EXPECT_EQ(up->verdict, MetricVerdict::Improved);
}

} // namespace
} // namespace tsm
