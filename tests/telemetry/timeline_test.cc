/**
 * @file
 * Timeline sampler tests: window-boundary splitting of instruction
 * occupancies, zero-length runs, the final partial window, byte
 * stability of same-seed documents, and the exactness contract — the
 * per-window accounts sum to the whole-run ProfilerSink accounts,
 * cycle for cycle and flit for flit.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "arch/chip.hh"
#include "net/network.hh"
#include "prof/profiler.hh"
#include "ssn/schedule_trace.hh"
#include "ssn/scheduler.hh"
#include "telemetry/phase.hh"
#include "telemetry/timeline.hh"

namespace tsm {
namespace {

/** Trace-event duration worth exactly `cycles` core cycles. */
Tick
cyclesPs(Cycle cycles)
{
    return Tick(std::llround(double(cycles) * kCorePeriodPs));
}

TEST(Timeline, ChargeSplitsAcrossWindowBoundaries)
{
    TimelineSampler s(10);
    // A 12-cycle COMPUTE issued at cycle 5; the next issue lands at
    // cycle 25, so the occupancy [5, 17) splits 5 + 7 across windows
    // 0 and 1 and the trailing idle gap [17, 25) splits 3 + 5 across
    // windows 1 and 2.
    s.event({0, cyclesPs(12), TraceCat::Chip, 0, "COMPUTE", 0, 5});
    s.event({0, 0, TraceCat::Chip, 0, "halt", 0, 25});
    s.finish();

    ASSERT_EQ(s.chips().size(), 1u);
    const auto &ws = s.chips().at(0);
    ASSERT_EQ(ws.size(), 3u);
    EXPECT_EQ(ws.at(0).busy[unsigned(FuncUnit::MXM)], 5u);
    EXPECT_EQ(ws.at(0).idle, 0u);
    EXPECT_EQ(ws.at(0).instrs, 1u);
    EXPECT_EQ(ws.at(1).busy[unsigned(FuncUnit::MXM)], 7u);
    EXPECT_EQ(ws.at(1).idle, 3u);
    EXPECT_EQ(ws.at(2).busy[unsigned(FuncUnit::MXM)], 0u);
    EXPECT_EQ(ws.at(2).idle, 5u);
    EXPECT_EQ(s.numWindows(), 3u);
    EXPECT_EQ(s.spanCycles(), 25u);
}

TEST(Timeline, BoundaryCycleOpensNewWindow)
{
    TimelineSampler s(10);
    // Issue exactly on the window-1 boundary: cycle 10 belongs to
    // window 1, not window 0.
    s.event({0, cyclesPs(2), TraceCat::Chip, 3, "VADD", 0, 10});
    s.event({0, 0, TraceCat::Chip, 3, "halt", 0, 12});
    s.finish();

    const auto &ws = s.chips().at(3);
    EXPECT_EQ(ws.count(0), 0u);
    ASSERT_EQ(ws.count(1), 1u);
    EXPECT_EQ(ws.at(1).busy[unsigned(FuncUnit::VXM)], 2u);
    EXPECT_EQ(ws.at(1).instrs, 1u);
}

TEST(Timeline, ZeroLengthRun)
{
    TimelineSampler s;
    s.finish();
    EXPECT_EQ(s.numWindows(), 0u);
    EXPECT_EQ(s.spanCycles(), 0u);

    const Json doc = s.report();
    EXPECT_EQ(doc["schema"].str(), kTimelineSchema);
    EXPECT_EQ(doc["windows"].integer(), 0);
    EXPECT_EQ(doc["chips"].size(), 0u);
    EXPECT_EQ(doc["links"].size(), 0u);

    // The analyzer degrades gracefully too.
    const PhaseAnalysis analysis = analyzePhases(s);
    EXPECT_TRUE(analysis.labels.empty());
    EXPECT_TRUE(analysis.phases.empty());
}

TEST(Timeline, FinishChargesFinalPartialWindow)
{
    TimelineSampler s(10);
    // A 7-cycle instruction still pending at end of stream: finish()
    // charges its full modeled occupancy, [25, 32), exactly as the
    // profiler does — the last window is partial and stays partial.
    s.event({0, cyclesPs(7), TraceCat::Chip, 1, "READ", 0, 25});
    s.finish();

    const auto &ws = s.chips().at(1);
    ASSERT_EQ(ws.count(2), 1u);
    ASSERT_EQ(ws.count(3), 1u);
    EXPECT_EQ(ws.at(2).busy[unsigned(FuncUnit::MEM)], 5u);
    EXPECT_EQ(ws.at(3).busy[unsigned(FuncUnit::MEM)], 2u);
    EXPECT_EQ(s.spanCycles(), 32u);
    EXPECT_EQ(s.numWindows(), 4u);
}

TEST(Timeline, PollWaitChargesSxmStall)
{
    TimelineSampler s(10);
    s.event({0, cyclesPs(4), TraceCat::Chip, 2, "poll_wait", 0, 0});
    s.event({0, 0, TraceCat::Chip, 2, "halt", 0, 4});
    s.finish();

    const auto &ws = s.chips().at(2);
    ASSERT_EQ(ws.count(0), 1u);
    EXPECT_EQ(ws.at(0).stall, 4u);
    EXPECT_EQ(ws.at(0).busyTotal(), 0u);
    // poll_wait is not an instruction issue.
    EXPECT_EQ(ws.at(0).instrs, 0u);
}

TEST(Timeline, LinkWindowsCountFlitsAndQueueDepth)
{
    TimelineSampler s(100);
    const Tick ser = Tick(std::llround(kVectorSerializationPs));
    // Two transmits on link 5 land in different windows (cycle ~23 and
    // ~118 at the nominal period); both arrivals queue on link 5
    // before one Recv drains the first.
    s.event({cyclesPs(23), ser, TraceCat::Net, 5, "tx", 1, 0});
    s.event({cyclesPs(118), ser, TraceCat::Net, 5, "tx", 1, 1});
    s.event({cyclesPs(119), 0, TraceCat::Net, 5, "rx", 1, 0});
    s.event({cyclesPs(120), 0, TraceCat::Net, 5, "rx", 1, 1});
    s.event({cyclesPs(121), 0, TraceCat::Ssn, 0, "recv", 1, 0});
    s.finish();

    const auto &ws = s.links().at(5);
    ASSERT_EQ(ws.count(0), 1u);
    ASSERT_EQ(ws.count(1), 1u);
    EXPECT_EQ(ws.at(0).flits, 1u);
    EXPECT_EQ(ws.at(0).busyPs, ser);
    EXPECT_EQ(ws.at(1).flits, 1u);
    EXPECT_EQ(ws.at(1).queueHwm, 2u);

    // Control flits (HAC exchange, sync tokens) never queue.
    TimelineSampler c(100);
    c.event({0, 0, TraceCat::Net, 9, "rx",
             std::int64_t(kFlowHacExchange), 0});
    c.finish();
    EXPECT_EQ(c.links().count(9), 0u);
}

TEST(Timeline, HacWindowsAggregateAdjustments)
{
    TimelineSampler s(100);
    s.event({cyclesPs(10), 0, TraceCat::Sync, 2, "hac_adj", -5, 3});
    s.event({cyclesPs(20), 0, TraceCat::Sync, 3, "hac_adj", 2, -1});
    s.event({cyclesPs(150), 0, TraceCat::Sync, 2, "hac_adj", 7, 0});
    s.event({cyclesPs(30), 0, TraceCat::Sync, 0, "hac_tx", 0, 0});
    s.finish();

    ASSERT_EQ(s.hac().size(), 2u);
    const HacWindow &w0 = s.hac().at(0);
    EXPECT_EQ(w0.adjustments, 2u);
    EXPECT_EQ(w0.sumAbsDelta, 7u);
    EXPECT_EQ(w0.maxAbsDelta, 5u);
    EXPECT_EQ(w0.sumAbsStep, 4u);
    EXPECT_EQ(s.hac().at(1).adjustments, 1u);
}

TEST(Timeline, MarkersRecordRuntimeAndScheduleReplay)
{
    TimelineSampler s;
    s.event({100, 50, TraceCat::Runtime, 0, "synchronize", 0, 0});
    s.event({200, 900, TraceCat::Ssn, 1, "flow", 0, 0});
    s.event({200, 990, TraceCat::Ssn, 0, "makespan", 0, 0});
    s.event({300, 0, TraceCat::Ssn, 0, "send", 1, 0});
    s.finish();

    ASSERT_EQ(s.markers().size(), 3u);
    EXPECT_EQ(s.markers()[0].cat, "runtime");
    EXPECT_EQ(s.markers()[0].name, "synchronize");
    EXPECT_EQ(s.markers()[1].cat, "ssn");
    EXPECT_EQ(s.markers()[1].name, "flow");
    EXPECT_EQ(s.markers()[2].name, "makespan");
}

/**
 * The micro_harness traced scenario in-process with both the profiler
 * and the sampler attached to the same tracer.
 */
void
runScenario(ProfilerSink &prof, TimelineSampler &timeline,
            std::uint64_t seed = 1)
{
    const Topology topo = Topology::makeNode();
    SsnScheduler scheduler(topo);
    std::vector<TensorTransfer> transfers;
    for (unsigned f = 0; f < 4; ++f) {
        TensorTransfer t;
        t.flow = f + 1;
        t.src = TspId(f + 1);
        t.dst = 0;
        t.vectors = 8;
        transfers.push_back(t);
    }
    const auto schedule = scheduler.schedule(transfers);

    EventQueue eq;
    eq.tracer().addSink(&prof);
    eq.tracer().addSink(&timeline);
    traceSchedule(eq.tracer(), schedule);
    Network net(topo, eq, Rng(seed));
    std::vector<std::unique_ptr<TspChip>> chips;
    for (TspId t = 0; t < topo.numTsps(); ++t)
        chips.push_back(std::make_unique<TspChip>(t, net, DriftClock()));
    auto programs = buildPrograms(schedule, topo);
    for (TspId t = 0; t < topo.numTsps(); ++t) {
        chips[t]->setStream(0, makeVec(Vec(1.0f)));
        programs.byChip[t].emitHalt();
        chips[t]->load(std::move(programs.byChip[t]));
        chips[t]->start(0);
    }
    eq.run();
    eq.tracer().removeSink(&prof);
    eq.tracer().removeSink(&timeline);
    prof.finish();
    timeline.finish();
}

TEST(Timeline, WindowSumsMatchProfilerExactly)
{
    ProfilerSink prof;
    TimelineSampler timeline(64); // small window: force many windows
    runScenario(prof, timeline);
    ASSERT_GT(timeline.numWindows(), 1u);

    // Per chip: busy per functional unit, stall, idle and instruction
    // counts summed over windows equal the whole-run accounts exactly.
    ASSERT_EQ(timeline.chips().size(), prof.chips().size());
    for (const auto &[chip, acct] : prof.chips()) {
        ASSERT_TRUE(timeline.chips().count(chip)) << "chip " << chip;
        Cycle busy[kNumFuncUnits] = {};
        Cycle stall = 0, idle = 0;
        std::uint64_t instrs = 0;
        for (const auto &[w, cw] : timeline.chips().at(chip)) {
            for (unsigned u = 0; u < kNumFuncUnits; ++u)
                busy[u] += cw.busy[u];
            stall += cw.stall;
            idle += cw.idle;
            instrs += cw.instrs;
        }
        for (unsigned u = 0; u < kNumFuncUnits; ++u)
            EXPECT_EQ(busy[u], acct.busy[u])
                << "chip " << chip << " fu "
                << funcUnitName(FuncUnit(u));
        EXPECT_EQ(stall, acct.stall) << "chip " << chip;
        EXPECT_EQ(idle, acct.idle) << "chip " << chip;
        EXPECT_EQ(instrs, acct.instrs) << "chip " << chip;
    }

    // Per link: flit counts and serialization busy time.
    ASSERT_EQ(timeline.links().size(), prof.links().size());
    for (const auto &[link, acct] : prof.links()) {
        ASSERT_TRUE(timeline.links().count(link)) << "link " << link;
        std::uint64_t flits = 0;
        Tick busyPs = 0;
        for (const auto &[w, lw] : timeline.links().at(link)) {
            flits += lw.flits;
            busyPs += lw.busyPs;
        }
        EXPECT_EQ(flits, acct.flits) << "link " << link;
        EXPECT_EQ(busyPs, acct.busyPs) << "link " << link;
    }

    // HAC adjustment totals.
    std::uint64_t adjustments = 0, sumAbsDelta = 0;
    for (const auto &[w, hw] : timeline.hac()) {
        adjustments += hw.adjustments;
        sumAbsDelta += hw.sumAbsDelta;
    }
    EXPECT_EQ(adjustments, prof.hac().adjustments);
    EXPECT_EQ(sumAbsDelta, prof.hac().sumAbsDelta);
}

TEST(Timeline, SameSeedDocumentsAreByteIdentical)
{
    ProfilerSink pa, pb;
    TimelineSampler ta(64), tb(64);
    runScenario(pa, ta);
    runScenario(pb, tb);
    ta.setBench("determinism");
    tb.setBench("determinism");
    ta.setSeed(1);
    tb.setSeed(1);

    const PhaseAnalysis aa = analyzePhases(ta);
    const PhaseAnalysis ab = analyzePhases(tb);
    EXPECT_EQ(ta.report(&aa).dump(2), tb.report(&ab).dump(2));
}

TEST(Timeline, ReportSchemaAndRoundTrip)
{
    ProfilerSink prof;
    TimelineSampler timeline(64);
    runScenario(prof, timeline);
    timeline.setBench("schema");
    timeline.setSeed(1);

    const PhaseAnalysis analysis = analyzePhases(timeline);
    const Json doc = timeline.report(&analysis);
    EXPECT_EQ(doc["schema"].str(), kTimelineSchema);
    EXPECT_EQ(doc["bench"].str(), "schema");
    EXPECT_EQ(doc["seed"].integer(), 1);
    EXPECT_EQ(doc["window_cycles"].integer(), 64);
    EXPECT_GT(doc["windows"].integer(), 1);
    ASSERT_GT(doc["chips"].size(), 0u);
    const Json &w0 = doc["chips"].at(0)["windows"].at(0);
    for (const char *key : {"w", "busy", "stall", "idle", "instrs"})
        EXPECT_TRUE(w0.has(key)) << key;
    ASSERT_GT(doc["links"].size(), 0u);
    const Json &l0 = doc["links"].at(0)["windows"].at(0);
    for (const char *key : {"w", "flits", "busy_ps", "util", "queue_hwm",
                            "mbes"})
        EXPECT_TRUE(l0.has(key)) << key;
    ASSERT_GT(doc["labels"].size(), 0u);
    EXPECT_EQ(doc["labels"].size(), std::size_t(doc["windows"].integer()));
    ASSERT_GT(doc["phases"].size(), 0u);

    std::string error;
    const Json back = Json::parse(doc.dump(2), &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(back.dump(2), doc.dump(2));
}

} // namespace
} // namespace tsm
