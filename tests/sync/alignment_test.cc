#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "arch/chip.hh"
#include "sync/program_alignment.hh"

namespace tsm {
namespace {

/** Build chips over a topology with identical clocks (HACs aligned). */
struct System
{
    explicit System(Topology t) : topo(std::move(t)), net(topo, eq, Rng(3))
    {
        for (TspId i = 0; i < topo.numTsps(); ++i) {
            chips.push_back(std::make_unique<TspChip>(i, net, DriftClock()));
            raw.push_back(chips.back().get());
        }
    }

    Topology topo;
    EventQueue eq;
    Network net;
    std::vector<std::unique_ptr<TspChip>> chips;
    std::vector<TspChip *> raw;
};

/** Launch the alignment plan with a Halt payload; return halt cycles. */
std::vector<Cycle>
launchAndCollect(System &sys)
{
    const SyncTree tree = SyncTree::build(sys.topo, 0);
    const AlignmentPlan plan = AlignmentPlan::build(sys.topo, tree);

    Program payload;
    payload.emitHalt();
    for (TspId t = 0; t < sys.topo.numTsps(); ++t) {
        sys.chips[t]->load(plan.assemble(t, payload));
        sys.chips[t]->start(0);
    }
    sys.eq.run();

    std::vector<Cycle> halt_cycles;
    for (TspId t = 0; t < sys.topo.numTsps(); ++t) {
        EXPECT_TRUE(sys.chips[t]->halted()) << "tsp " << t;
        halt_cycles.push_back(sys.chips[t]->clock().tickToCycle(
            sys.chips[t]->stats().haltTick));
    }
    return halt_cycles;
}

TEST(ProgramAlignment, NodePayloadsStartSimultaneously)
{
    System sys(Topology::makeNode());
    const auto halts = launchAndCollect(sys);
    for (Cycle h : halts)
        EXPECT_EQ(h, halts[0]);
}

TEST(ProgramAlignment, StartEpochMatchesTreeHeightFormula)
{
    const Topology topo = Topology::makeNode();
    const SyncTree tree = SyncTree::build(topo, 0);
    const AlignmentPlan plan = AlignmentPlan::build(topo, tree);
    // One hop, L < period: overhead floor(L/P)+1 = 1 epoch; root has
    // the token at epoch 1, children at 2, start at 3.
    EXPECT_EQ(plan.arrivalEpoch(0), 1u);
    EXPECT_EQ(plan.arrivalEpoch(5), 2u);
    EXPECT_EQ(plan.startEpoch(), 3u);
}

TEST(ProgramAlignment, TwoNodeSystemAligns)
{
    System sys(Topology::makeSingleLevel(2));
    const auto halts = launchAndCollect(sys);
    for (Cycle h : halts)
        EXPECT_EQ(h, halts[0]);
}

TEST(ProgramAlignment, FourNodeSystemAligns)
{
    System sys(Topology::makeSingleLevel(4));
    const auto halts = launchAndCollect(sys);
    for (Cycle h : halts)
        EXPECT_EQ(h, halts[0]);
    // Start epoch grows with tree height: at least depth 2 + 2.
    const SyncTree tree = SyncTree::build(sys.topo, 0);
    EXPECT_GE(AlignmentPlan::build(sys.topo, tree).startEpoch(),
              tree.height() + 2);
}

TEST(ProgramAlignment, PayloadSeesSynchronizedStreams)
{
    // After alignment, chip 0 sends one vector to chip 1 with a
    // statically scheduled exchange; correct delivery proves the
    // common time base is real.
    System sys(Topology::makeNode());
    const SyncTree tree = SyncTree::build(sys.topo, 0);
    const AlignmentPlan plan = AlignmentPlan::build(sys.topo, tree);
    const Cycle t0 = (plan.startEpoch() * kHacPeriodCycles) +
                     kNotifyLatency; // payload begins here on all chips

    const LinkId link = sys.topo.linksBetween(0, 1)[0];
    const unsigned p01 = sys.topo.links()[link].portAt(0);
    const unsigned p10 = sys.topo.links()[link].portAt(1);

    sys.chips[0]->setStream(0, makeVec(Vec(3.25f)));
    Program tx;
    tx.emitSend(p01, 0, 77, 0).issueAt = t0 + 10;
    tx.emitHalt();

    Program rx;
    rx.emitRecv(p10, 4, 77, 0).issueAt = t0 + 10 + 500; // hop ~469 cyc
    rx.emitHalt();

    Program idle;
    idle.emitHalt();

    for (TspId t = 0; t < sys.topo.numTsps(); ++t) {
        const Program &payload = t == 0 ? tx : (t == 1 ? rx : idle);
        sys.chips[t]->load(plan.assemble(t, payload));
        sys.chips[t]->start(0);
    }
    sys.eq.run();
    ASSERT_TRUE(sys.chips[1]->stream(4));
    EXPECT_EQ((*sys.chips[1]->stream(4))[0], 3.25f);
}

TEST(RuntimeDeskewProperty, PeriodicResyncBoundsSkewUnderDrift)
{
    // Two chips with +/-40 ppm drift run a long computation broken
    // into segments separated by RUNTIME_DESKEW. With the HAC aligner
    // active, accumulated skew stays bounded by a few cycles at every
    // segment boundary; without it, it would grow without bound
    // (~40 us per second per 40 ppm).
    EventQueue eq;
    Topology topo = Topology::makeNode();
    Network net(topo, eq, Rng(17));
    TspChip parent(0, net, DriftClock(0.0));
    TspChip child(1, net, DriftClock(40.0));
    const LinkId link = topo.linksBetween(0, 1)[0];
    const double latency =
        double(linkPropagationPs(LinkClass::IntraNode)) / kCorePeriodPs;
    HacAligner aligner(parent, child, link, latency);
    aligner.start();

    // 20 segments of ~100k cycles each, far beyond one drift cycle.
    Program prog;
    for (int seg = 0; seg < 20; ++seg) {
        prog.emitCompute(100000);
        auto &rd = prog.emit(Op::RuntimeDeskew);
        rd.imm = 64;
    }
    prog.emitHalt();
    Program prog2 = prog;

    // Stop the (self-rescheduling) aligner once both programs halt so
    // the event queue can drain.
    int halted = 0;
    const auto on_halt = [&] {
        if (++halted == 2)
            aligner.stop();
    };
    parent.onHalt(on_halt);
    child.onHalt(on_halt);

    parent.load(std::move(prog));
    child.load(std::move(prog2));
    parent.start(0);
    child.start(0);
    eq.run();

    ASSERT_TRUE(parent.halted() && child.halted());
    // The child stalls longer in RUNTIME_DESKEW (its clock runs fast),
    // so wall-clock completion stays within one epoch of the parent.
    const auto skew =
        std::llabs(std::int64_t(parent.stats().haltTick) -
                   std::int64_t(child.stats().haltTick));
    EXPECT_LT(skew, std::int64_t(kHacPeriodCycles * kCorePeriodPs));
    EXPECT_GT(child.stats().deskewStallCycles,
              parent.stats().deskewStallCycles);
}

} // namespace
} // namespace tsm
