#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "arch/chip.hh"
#include "sync/link_characterizer.hh"

namespace tsm {
namespace {

class CharFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        topo = Topology::makeNode();
        net = std::make_unique<Network>(topo, eq, Rng(42),
                                        /*jitter=*/true);
        for (TspId t = 0; t < topo.numTsps(); ++t)
            chips.push_back(std::make_unique<TspChip>(t, *net, DriftClock()));
    }

    Topology topo;
    EventQueue eq;
    std::unique_ptr<Network> net;
    std::vector<std::unique_ptr<TspChip>> chips;
};

TEST_F(CharFixture, EstimatesMatchConfiguredLatency)
{
    const LinkId link = topo.linksBetween(0, 1)[0];
    LinkCharacterizer lc(*chips[0], *chips[1], link);
    lc.start(10000);
    eq.run();
    ASSERT_TRUE(lc.done());
    const auto &st = lc.latencyCycles();
    EXPECT_EQ(st.count(), 10000u);
    // Nominal intra-node one-way latency is 216.87 core cycles
    // (Table 2); estimate must land within a cycle of it.
    const double nominal =
        double(linkPropagationPs(LinkClass::IntraNode)) / kCorePeriodPs;
    EXPECT_NEAR(st.mean(), nominal, 1.0);
    // Sample std ~2.8 cycles (Table 2).
    EXPECT_NEAR(st.stddev(), 2.8, 0.8);
    // Range is bounded by the 4-sigma jitter clip.
    EXPECT_GT(st.min(), nominal - 14.0);
    EXPECT_LT(st.max(), nominal + 14.0);
}

TEST_F(CharFixture, WithoutJitterOnlyQuantizationNoiseRemains)
{
    net->setJitterEnabled(false);
    const LinkId link = topo.linksBetween(2, 3)[0];
    LinkCharacterizer lc(*chips[2], *chips[3], link);
    lc.start(100);
    eq.run();
    // The HAC reads integer cycles, so even a perfectly stable link
    // shows sub-cycle quantization noise — but no more than that.
    EXPECT_LT(lc.latencyCycles().stddev(), 0.5);
    const double nominal =
        double(linkPropagationPs(LinkClass::IntraNode)) / kCorePeriodPs;
    EXPECT_NEAR(lc.latencyCycles().mean(), nominal, 1.0);
}

TEST_F(CharFixture, AllSevenIntraNodeLinksCharacterize)
{
    // The Table 2 experiment: all 7 links of TSP0 within the node.
    for (TspId peer = 1; peer < 8; ++peer) {
        const LinkId link = topo.linksBetween(0, peer)[0];
        LinkCharacterizer lc(*chips[0], *chips[peer], link);
        lc.start(2000);
        eq.run();
        EXPECT_TRUE(lc.done());
        EXPECT_NEAR(lc.latencyCycles().mean(), 216.9, 2.0)
            << "link to peer " << peer;
    }
}

TEST_F(CharFixture, DeterministicGivenSeed)
{
    auto measure = [&](std::uint64_t seed) {
        EventQueue eq2;
        Topology t2 = Topology::makeNode();
        Network n2(t2, eq2, Rng(seed), true);
        TspChip a(0, n2, DriftClock());
        TspChip b(1, n2, DriftClock());
        LinkCharacterizer lc(a, b, t2.linksBetween(0, 1)[0]);
        lc.start(500);
        eq2.run();
        return lc.latencyCycles().mean();
    };
    EXPECT_EQ(measure(7), measure(7));
    EXPECT_NE(measure(7), measure(8));
}

} // namespace
} // namespace tsm
