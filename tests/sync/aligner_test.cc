#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "arch/chip.hh"
#include "sync/sync_tree.hh"

namespace tsm {
namespace {

/** Two chips, drifting clocks, one link. */
class AlignFixture : public ::testing::Test
{
  protected:
    void
    buildPair(double parent_ppm, double child_ppm, Tick child_phase = 0)
    {
        topo = Topology::makeNode();
        net = std::make_unique<Network>(topo, eq, Rng(5));
        parent = std::make_unique<TspChip>(0, *net, DriftClock(parent_ppm));
        child = std::make_unique<TspChip>(
            1, *net, DriftClock(child_ppm, child_phase));
        link = topo.linksBetween(0, 1)[0];
        latency = double(linkPropagationPs(LinkClass::IntraNode)) /
                  kCorePeriodPs;
    }

    Topology topo;
    EventQueue eq;
    std::unique_ptr<Network> net;
    std::unique_ptr<TspChip> parent, child;
    LinkId link = 0;
    double latency = 0.0;
};

TEST_F(AlignFixture, CorrectsInitialMisalignment)
{
    buildPair(0.0, 0.0);
    child->adjustHac(100); // gross initial misalignment
    HacAligner aligner(*parent, *child, link, latency);
    aligner.start();
    // Paper: convergence takes roughly the period of the HAC counters;
    // run a few hundred epochs.
    eq.runUntil(Tick(500 * kHacPeriodCycles * kCorePeriodPs));
    aligner.stop();
    EXPECT_TRUE(aligner.converged(2));
    EXPECT_LE(std::abs(aligner.lastDelta()), 1);
}

TEST_F(AlignFixture, AdjustmentRateIsClamped)
{
    buildPair(0.0, 0.0);
    child->adjustHac(100);
    HacAlignerConfig cfg;
    cfg.maxAdjustPerUpdate = 2;
    HacAligner aligner(*parent, *child, link, latency, cfg);
    aligner.start();
    // After 3 updates at most 6 cycles can have been corrected.
    eq.runUntil(Tick(3.5 * kHacPeriodCycles * kCorePeriodPs));
    aligner.stop();
    eq.run();
    EXPECT_GE(std::abs(aligner.lastDelta()), 100 - 3 * 2 - 1);
}

TEST_F(AlignFixture, TracksContinuousDrift)
{
    // Child runs 100 ppm fast: without correction it gains a cycle
    // every ~11 us. The aligner must hold the delta near zero.
    buildPair(0.0, 100.0);
    HacAligner aligner(*parent, *child, link, latency);
    aligner.start();
    eq.runUntil(10 * kPsPerMs); // 10 ms >> drift time constant
    aligner.stop();
    EXPECT_LE(std::abs(aligner.lastDelta()), 2);
    EXPECT_GT(aligner.updatesApplied(), 30000u);
}

TEST_F(AlignFixture, PhaseOffsetToleratedToo)
{
    buildPair(0.0, -50.0, /*child_phase=*/123456);
    HacAligner aligner(*parent, *child, link, latency);
    aligner.start();
    eq.runUntil(5 * kPsPerMs);
    aligner.stop();
    EXPECT_LE(std::abs(aligner.lastDelta()), 2);
}

TEST(SyncTreeTest, BfsTreeSpansNode)
{
    const Topology topo = Topology::makeNode();
    const SyncTree tree = SyncTree::build(topo, 0);
    EXPECT_EQ(tree.edges().size(), 7u); // spanning tree of 8 vertices
    EXPECT_EQ(tree.height(), 1u);       // full mesh: all depth 1
    EXPECT_EQ(tree.depthOf(0), 0u);
    for (TspId t = 1; t < 8; ++t)
        EXPECT_EQ(tree.depthOf(t), 1u);
    EXPECT_EQ(tree.parentEdge(0), nullptr);
    EXPECT_EQ(tree.childEdges(0).size(), 7u);
}

TEST(SyncTreeTest, MultiHopTreeOnDragonfly)
{
    const Topology topo = Topology::makeSingleLevel(4);
    const SyncTree tree = SyncTree::build(topo, 0);
    EXPECT_EQ(tree.edges().size(), topo.numTsps() - 1);
    EXPECT_GE(tree.height(), 2u);
    // Every non-root has exactly one parent edge.
    for (TspId t = 1; t < topo.numTsps(); ++t)
        EXPECT_NE(tree.parentEdge(t), nullptr);
}

TEST(SystemSyncTest, WholeNodeConvergesFromRandomOffsets)
{
    EventQueue eq;
    Topology topo = Topology::makeNode();
    Network net(topo, eq, Rng(11));
    Rng rng(99);
    std::vector<std::unique_ptr<TspChip>> chips;
    std::vector<TspChip *> raw;
    for (TspId t = 0; t < topo.numTsps(); ++t) {
        const double ppm = t == 0 ? 0.0 : rng.uniform(-50.0, 50.0);
        const Tick phase = t == 0 ? 0 : Tick(rng.below(100000));
        chips.push_back(
            std::make_unique<TspChip>(t, net, DriftClock(ppm, phase)));
        chips.back()->adjustHac(int(rng.range(-100, 100)));
        raw.push_back(chips.back().get());
    }

    const SyncTree tree = SyncTree::build(topo, 0);
    SystemSynchronizer sync(raw, tree);

    const Tick before_skew = sync.epochSkewPs(0);
    sync.start();
    eq.runUntil(5 * kPsPerMs);
    sync.stop();

    EXPECT_TRUE(sync.allConverged(2));
    EXPECT_LE(sync.worstDelta(), 2);
    // Post-alignment epoch skew is within a few cycles; it started
    // off grossly misaligned.
    const Tick after_skew = sync.epochSkewPs(eq.now());
    EXPECT_LT(after_skew, Tick(4 * kCorePeriodPs));
    EXPECT_LT(after_skew, before_skew);
}

TEST(SystemSyncTest, MultiHopChainAccumulatesBoundedSkew)
{
    // A 2-node dragonfly: depth-2 tree; skew must stay bounded even
    // through the intermediate hop.
    EventQueue eq;
    Topology topo = Topology::makeSingleLevel(2);
    Network net(topo, eq, Rng(13));
    Rng rng(7);
    std::vector<std::unique_ptr<TspChip>> chips;
    std::vector<TspChip *> raw;
    for (TspId t = 0; t < topo.numTsps(); ++t) {
        const double ppm = t == 0 ? 0.0 : rng.uniform(-50.0, 50.0);
        chips.push_back(std::make_unique<TspChip>(t, net, DriftClock(ppm)));
        raw.push_back(chips.back().get());
    }
    const SyncTree tree = SyncTree::build(topo, 0);
    SystemSynchronizer sync(raw, tree);
    sync.start();
    eq.runUntil(5 * kPsPerMs);
    sync.stop();
    EXPECT_TRUE(sync.allConverged(2));
    EXPECT_LT(sync.epochSkewPs(eq.now()), Tick(6 * kCorePeriodPs));
}

} // namespace
} // namespace tsm
