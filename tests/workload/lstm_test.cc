#include <gtest/gtest.h>

#include "workload/lstm.hh"

namespace tsm {
namespace {

TEST(Lstm, FlopsFormula)
{
    LstmConfig c;
    c.layers = 1;
    c.hidden = 1024;
    EXPECT_DOUBLE_EQ(c.flopsPerStep(), 2.0 * 2 * 1024 * 4096);
}

TEST(Lstm, TspBeatsGpuOnBatchOneDecode)
{
    // The headline of the extension: latency-bound recurrent decode
    // is where deterministic skinny-matvec hardware wins big.
    const LstmConfig config;
    const TspCostModel cost;
    const auto tsp = lstmOnTsp(config, 4, cost);
    const auto gpu = lstmOnGpu(config, {});
    EXPECT_GT(tsp.tokensPerSec, 10.0 * gpu.tokensPerSec);
}

TEST(Lstm, PipeliningLayersHelpsUntilLayersRunOut)
{
    const LstmConfig config; // 4 layers
    const TspCostModel cost;
    const auto t1 = lstmOnTsp(config, 1, cost);
    const auto t4 = lstmOnTsp(config, 4, cost);
    const auto t8 = lstmOnTsp(config, 8, cost);
    EXPECT_GT(t4.tokensPerSec, 3.0 * t1.tokensPerSec);
    // Only 4 layers: the 5th..8th chips are idle.
    EXPECT_NEAR(t8.tokensPerSec, t4.tokensPerSec,
                0.05 * t4.tokensPerSec);
}

TEST(Lstm, GpuUtilizationIsTiny)
{
    // M=1 against 128-row tiles: ~1/128th useful work at best.
    const auto gpu = lstmOnGpu(LstmConfig{}, {});
    EXPECT_LT(gpu.utilization, 0.02);
}

TEST(Lstm, TspUtilizationModestButFarHigher)
{
    const TspCostModel cost;
    const auto tsp = lstmOnTsp(LstmConfig{}, 4, cost);
    const auto gpu = lstmOnGpu(LstmConfig{}, {});
    EXPECT_GT(tsp.utilization, 5.0 * gpu.utilization);
}

TEST(Lstm, ThroughputScalesWithTimesteps)
{
    const TspCostModel cost;
    LstmConfig short_seq;
    short_seq.timesteps = 16;
    LstmConfig long_seq;
    long_seq.timesteps = 1024;
    // Longer decode amortizes pipeline fill: tokens/s improves.
    EXPECT_GT(lstmOnTsp(long_seq, 4, cost).tokensPerSec,
              lstmOnTsp(short_seq, 4, cost).tokensPerSec);
}

} // namespace
} // namespace tsm
