#include <gtest/gtest.h>

#include "common/rng.hh"
#include "workload/cholesky.hh"

namespace tsm {
namespace {

/** Random SPD matrix: A = B Bt + n I. */
std::vector<float>
randomSpd(unsigned n, Rng &rng)
{
    std::vector<float> b(std::size_t(n) * n);
    for (auto &x : b)
        x = float(rng.uniform(-1.0, 1.0));
    std::vector<float> a(std::size_t(n) * n, 0.0f);
    for (unsigned r = 0; r < n; ++r)
        for (unsigned c = 0; c < n; ++c) {
            for (unsigned k = 0; k < n; ++k)
                a[r * n + c] += b[r * n + k] * b[c * n + k];
            if (r == c)
                a[r * n + c] += float(n);
        }
    return a;
}

TEST(CholeskyKernel, FactorsIdentity)
{
    std::vector<float> a(16, 0.0f);
    for (unsigned i = 0; i < 4; ++i)
        a[i * 4 + i] = 1.0f;
    ASSERT_TRUE(choleskyFactor(a, 4));
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_NEAR(a[i * 4 + i], 1.0f, 1e-5f);
}

TEST(CholeskyKernel, KnownSmallFactorization)
{
    // A = [[4, 2], [2, 5]] -> L = [[2, 0], [1, 2]].
    std::vector<float> a{4, 2, 2, 5};
    ASSERT_TRUE(choleskyFactor(a, 2));
    EXPECT_NEAR(a[0], 2.0f, 1e-4f);
    EXPECT_NEAR(a[1], 0.0f, 1e-6f);
    EXPECT_NEAR(a[2], 1.0f, 1e-4f);
    EXPECT_NEAR(a[3], 2.0f, 1e-4f);
}

TEST(CholeskyKernel, ResidualSmallOnRandomSpd)
{
    Rng rng(31);
    for (unsigned n : {8u, 16u, 32u, 64u}) {
        const auto original = randomSpd(n, rng);
        auto a = original;
        ASSERT_TRUE(choleskyFactor(a, n)) << "n=" << n;
        // The fast-rsqrt approximation costs a few ulps per column;
        // the residual stays tiny relative to the diagonal scale ~n.
        EXPECT_LT(choleskyResidual(original, a, n), 0.02f * float(n))
            << "n=" << n;
    }
}

TEST(CholeskyKernel, RejectsNonSpd)
{
    std::vector<float> a{1, 2, 2, 1}; // indefinite
    EXPECT_FALSE(choleskyFactor(a, 2));
}

TEST(CholeskyTiming, StrongScalingMatchesPaper)
{
    // Paper Fig 19(c): net speedups ~1.2x, 1.4x, 1.5x on 2/4/8 TSPs
    // for a fixed problem — limited by the loop-carried dependence.
    const std::uint64_t p = 16000;
    const double t1 = choleskyEstimate(p, 1).seconds;
    const double s2 = t1 / choleskyEstimate(p, 2).seconds;
    const double s4 = t1 / choleskyEstimate(p, 4).seconds;
    const double s8 = t1 / choleskyEstimate(p, 8).seconds;
    EXPECT_NEAR(s2, 1.2, 0.1);
    EXPECT_NEAR(s4, 1.4, 0.1);
    EXPECT_NEAR(s8, 1.5, 0.1);
}

TEST(CholeskyTiming, EightTspsLandNearPaperTflops)
{
    // Paper: 22.4 fp16 TFLOPs on 8 TSPs.
    const auto est = choleskyEstimate(16000, 8);
    EXPECT_GT(est.tflops, 15.0);
    EXPECT_LT(est.tflops, 30.0);
}

TEST(CholeskyTiming, TimeGrowsSuperlinearly)
{
    const double t1 = choleskyEstimate(4000, 4).seconds;
    const double t2 = choleskyEstimate(8000, 4).seconds;
    // Between linear (serial term) and cubic (update term).
    EXPECT_GT(t2 / t1, 1.9);
    EXPECT_LT(t2 / t1, 8.5);
}

TEST(CholeskyTiming, SmallProblemsGainNothingFromMoreTsps)
{
    // At small p the loop-carried serial chain dominates and the
    // added broadcast cost outweighs the shared update: parallelism
    // does not pay — the reason the paper calls Cholesky "difficult
    // to efficiently parallelize".
    const double t1 = choleskyEstimate(2000, 1).seconds;
    const double t8 = choleskyEstimate(2000, 8).seconds;
    EXPECT_GE(t8, 0.95 * t1);
}

TEST(CholeskyTiming, LargeProblemsScaleMonotonically)
{
    double prev = 1e30;
    for (unsigned d : {1u, 2u, 4u, 8u}) {
        const double t = choleskyEstimate(40000, d).seconds;
        EXPECT_LE(t, prev * 1.001) << "d=" << d;
        prev = t;
    }
}

} // namespace
} // namespace tsm
