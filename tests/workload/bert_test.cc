#include <gtest/gtest.h>

#include "workload/bert.hh"

namespace tsm {
namespace {

TEST(Bert, GraphShapeMatchesArchitecture)
{
    const BertConfig large = BertConfig::large();
    const Graph g = buildBertGraph(large.withEncoders(1));
    g.validate();
    // One encoder: 6 matmuls (qkv, scores, context, proj, 2 ffn).
    unsigned matmuls = 0;
    for (const auto &n : g.nodes())
        matmuls += n.kind == OpKind::MatMul;
    EXPECT_EQ(matmuls, 8u); // q, k, v, scores, ctx, proj, ffn1, ffn2
}

TEST(Bert, EncoderFlopsMatchAnalyticFormula)
{
    // Standard transformer estimate: 4 H^2 projections + FFN 8 H^2
    // per token, plus 2 S H per-token attention matmuls x2.
    const BertConfig c = BertConfig::large();
    const double s = c.seqLen, h = c.hidden, i = c.intermediate;
    const double proj = 2.0 * s * h * h * 4;          // q,k,v,o
    const double attn = 2.0 * 2.0 * s * s * h;        // scores+ctx
    const double ffn = 2.0 * s * h * i * 2;           // two matmuls
    const double expect = proj + attn + ffn;
    EXPECT_NEAR(encoderFlops(c) / expect, 1.0, 0.05);
}

TEST(Bert, LargeConfigWeightsFitNicely)
{
    // BERT-Large is ~340 M parameters; the encoder stack holds ~302M
    // (24 x 12.6 M). At fp16 that is ~605 MB — more than one TSP's
    // 220 MiB, which is why the paper runs it on 4 TSPs.
    const Graph g = buildBertGraph(BertConfig::large());
    const double mb = double(g.weightBytes()) / 1e6;
    EXPECT_GT(mb, 500.0);
    EXPECT_LT(mb, 700.0);
    EXPECT_GT(mb / 4.0, 100.0); // but 4 chips hold it comfortably
    EXPECT_LT(mb / 4.0, double(kLocalMemBytes) / 1e6);
}

TEST(Bert, EstimateOnFourTspsInPaperBand)
{
    // The paper measures ~1.2 ms per inference for BERT-Large on 4
    // TSPs; our cost model lands in the same order of magnitude
    // (within ~3x — it is a model, not their binary).
    TspCostModel cost;
    const auto est = estimateBert(BertConfig::large(), 4, cost);
    EXPECT_GT(est.totalSec, 0.4e-3);
    EXPECT_LT(est.totalSec, 4e-3);
    EXPECT_GT(est.realizedTops, 10.0);
}

TEST(Bert, PipelineBalancesEncodersEvenly)
{
    TspCostModel cost;
    const auto est = estimateBert(BertConfig::large(), 4, cost);
    ASSERT_EQ(est.plan.stages.size(), 4u);
    for (const auto &s : est.plan.stages)
        EXPECT_EQ(s.numBlocks, 6u);
}

TEST(Bert, Fig18LinearScaling)
{
    // 6/24/48/96 encoders on 1/4/8/16 TSPs: constant per-stage work
    // means realized TOPs scales ~linearly with devices.
    TspCostModel cost;
    const BertConfig base = BertConfig::large();
    const double t1 =
        estimateBert(base.withEncoders(6), 1, cost).realizedTops;
    const double t4 =
        estimateBert(base.withEncoders(24), 4, cost).realizedTops;
    const double t8 =
        estimateBert(base.withEncoders(48), 8, cost).realizedTops;
    const double t16 =
        estimateBert(base.withEncoders(96), 16, cost).realizedTops;
    EXPECT_NEAR(t4 / t1, 4.0, 0.5);
    EXPECT_NEAR(t8 / t1, 8.0, 1.0);
    EXPECT_NEAR(t16 / t1, 16.0, 2.0);
}

TEST(Bert, Fig20OptimizedCompilerWinsAboutQuarter)
{
    // Paper: the movement-aware compiler realizes ~26% more
    // throughput than FLOPs-only balancing on BERT-Large / 4 TSPs.
    TspCostModel cost;
    const auto naive = estimateBert(BertConfig::large(), 4, cost,
                                    BalanceMode::FlopsOnly);
    const auto opt = estimateBert(BertConfig::large(), 4, cost,
                                  BalanceMode::MovementAware);
    const double gain = opt.realizedTops / naive.realizedTops - 1.0;
    EXPECT_GT(gain, 0.12);
    EXPECT_LT(gain, 0.45);
}

TEST(Bert, Fig17DistributionShape)
{
    // 24,240 runs: tight distribution, long-but-bounded right tail,
    // and the compiler estimate within 2% of the typical latency.
    TspCostModel cost;
    const auto est = estimateBert(BertConfig::large(), 4, cost);
    const auto samples = simulateBertRuns(est, 24240, Rng(99));
    ASSERT_EQ(samples.count(), 24240u);

    const double p50 = samples.percentile(0.50);
    const double p99 = samples.percentile(0.99);
    const double max = samples.percentile(1.0);
    // All runs bounded (paper: all within 1300 us for their binary).
    EXPECT_LT(max - p50, 100e-6);
    // 99% within a narrow band of the median (paper: 99% < 1225 us).
    EXPECT_LT(p99 - p50, 50e-6);
    // Compiler estimate within 2% of the median measurement.
    EXPECT_NEAR(est.totalSec / p50, 1.0, 0.02);
}

TEST(Bert, BaseOnSingleTspEstimateTracksMeasured)
{
    // Paper: BERT-Base on one TSP also shows estimate within 2%.
    TspCostModel cost;
    const auto est = estimateBert(BertConfig::base(), 1, cost);
    const auto samples = simulateBertRuns(est, 2000, Rng(7));
    EXPECT_NEAR(est.totalSec / samples.percentile(0.5), 1.0, 0.02);
}

TEST(Bert, LargeDoesNotFitOneChipButFitsFour)
{
    // The paper's reason for running BERT-Large on 4 TSPs: ~605 MB of
    // fp16 encoder weights cannot live in one 220 MiB SRAM.
    TspCostModel cost;
    const auto one = estimateBert(BertConfig::large(), 1, cost);
    EXPECT_FALSE(one.plan.fits());
    const auto four = estimateBert(BertConfig::large(), 4, cost);
    EXPECT_TRUE(four.plan.fits());
    // Fig 18's single-TSP point (6 encoders, ~151 MB) does fit.
    const auto six =
        estimateBert(BertConfig::large().withEncoders(6), 1, cost);
    EXPECT_TRUE(six.plan.fits());
}

} // namespace
} // namespace tsm
