#include <gtest/gtest.h>

#include "workload/matmul.hh"

namespace tsm {
namespace {

TEST(DistMatmul, SingleTspBaseline)
{
    TspCostModel cost;
    DistMatmulConfig cfg;
    cfg.colSplits = 1;
    cfg.rowSplits = 1;
    const auto r = planDistributedMatmul(cfg, cost);
    EXPECT_EQ(r.tsps, 1u);
    EXPECT_EQ(r.reduceCycles, 0u);
    EXPECT_GT(r.utilization, 0.7);
    EXPECT_LT(r.utilization, 1.01);
}

TEST(DistMatmul, LatencyDropsWithMoreRowSplits)
{
    // Fig 14 left: latency reduces as row splits add TSPs.
    TspCostModel cost;
    double prev = 1e9;
    for (unsigned r = 1; r <= 13; ++r) {
        DistMatmulConfig cfg;
        cfg.rowSplits = r;
        const auto res = planDistributedMatmul(cfg, cost);
        EXPECT_EQ(res.tsps, 8 * r);
        EXPECT_LT(res.seconds, prev) << "rowSplits=" << r;
        prev = res.seconds;
    }
}

TEST(DistMatmul, ThroughputGrowsUtilizationShrinks)
{
    // Fig 14 right: adding TSPs grows absolute TFLOPs but the
    // reduction overhead erodes per-TSP utilization.
    TspCostModel cost;
    DistMatmulConfig one;
    const auto r1 = planDistributedMatmul(one, cost);
    DistMatmulConfig many;
    many.rowSplits = 13;
    const auto r13 = planDistributedMatmul(many, cost);
    EXPECT_GT(r13.tflops, r1.tflops);
    EXPECT_LT(r13.utilization, r1.utilization);
}

TEST(DistMatmul, EightColSplitsHitPaperLatencyBand)
{
    // The paper's Fig 14 operation at 8 TSPs completes in a few
    // hundred microseconds; at 104 TSPs in tens of microseconds.
    TspCostModel cost;
    DistMatmulConfig base;
    const auto r8 = planDistributedMatmul(base, cost);
    EXPECT_GT(r8.seconds, 100e-6);
    EXPECT_LT(r8.seconds, 1e-3);
    DistMatmulConfig big;
    big.rowSplits = 13;
    const auto r104 = planDistributedMatmul(big, cost);
    EXPECT_LT(r104.seconds, 100e-6);
}

TEST(ClusterMatmul, ThroughputScalesWithClusterSize)
{
    // Fig 15: same N, larger cluster -> proportionally more TFLOPs.
    // N chosen so the column shards stay tile-aligned (192000/100,
    // /200, /300 are all multiples of 320) to isolate scaling from
    // tile-quantization effects.
    TspCostModel cost;
    const std::uint64_t n = 192000;
    const auto c100 = clusterColSplitMatmul(n, 100, cost);
    const auto c200 = clusterColSplitMatmul(n, 200, cost);
    const auto c300 = clusterColSplitMatmul(n, 300, cost);
    EXPECT_NEAR(c200.tflops / c100.tflops, 2.0, 0.2);
    EXPECT_NEAR(c300.tflops / c100.tflops, 3.0, 0.3);
}

TEST(ClusterMatmul, ThroughputGrowsWithProblemSize)
{
    TspCostModel cost;
    const auto small = clusterColSplitMatmul(50000, 300, cost);
    const auto large = clusterColSplitMatmul(650000, 300, cost);
    EXPECT_GE(large.tflops, small.tflops);
    // The largest configuration realizes tens of petaflops — far
    // beyond the paper's 2.8 PF GPU-cluster reference.
    EXPECT_GT(large.tflops, 10000.0); // > 10 PF in TFLOP units
}

TEST(ClusterMatmul, StreamingOrderKeepsPcieFeasible)
{
    // Paper §5.2: row-major traversal keeps the demand well under
    // PCIe Gen4 x16; the model should not be PCIe-bound at these
    // shapes.
    TspCostModel cost;
    const auto r = clusterColSplitMatmul(100000, 100, cost);
    EXPECT_FALSE(r.pcieBound);
}

TEST(ClusterMatmul, TinyShardsGoPcieBound)
{
    // Degenerate: enormous cluster on a small matrix -> shards so
    // small that streaming dominates.
    TspCostModel cost;
    cost.pcieBytesPerSec = 1e6; // cripple the host link
    const auto r = clusterColSplitMatmul(10000, 10, cost);
    EXPECT_TRUE(r.pcieBound);
}

} // namespace
} // namespace tsm
