#include <gtest/gtest.h>

#include <set>

#include "ssn/scheduler.hh"
#include "workload/traffic_gen.hh"

namespace tsm {
namespace {

class PatternSweep : public ::testing::TestWithParam<TrafficPattern>
{
};

TEST_P(PatternSweep, WellFormedAndSchedulable)
{
    const Topology topo = Topology::makeNode();
    const auto transfers = generateTraffic(topo, GetParam(), 16, 3);
    ASSERT_FALSE(transfers.empty());
    std::set<FlowId> flows;
    for (const auto &t : transfers) {
        EXPECT_NE(t.src, t.dst);
        EXPECT_LT(t.src, topo.numTsps());
        EXPECT_LT(t.dst, topo.numTsps());
        EXPECT_EQ(t.vectors, 16u);
        EXPECT_TRUE(flows.insert(t.flow).second);
    }
    // Every pattern schedules conflict-free.
    SsnScheduler scheduler(topo);
    const auto sched = scheduler.schedule(transfers);
    const auto report = validateSchedule(sched, topo);
    EXPECT_TRUE(report.ok) << report.firstViolation;
}

TEST_P(PatternSweep, DeterministicGivenSeed)
{
    const Topology topo = Topology::makeNode();
    const auto a = generateTraffic(topo, GetParam(), 8, 42);
    const auto b = generateTraffic(topo, GetParam(), 8, 42);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].src, b[i].src);
        EXPECT_EQ(a[i].dst, b[i].dst);
    }
}

INSTANTIATE_TEST_SUITE_P(All, PatternSweep,
                         ::testing::ValuesIn(allTrafficPatterns()),
                         [](const auto &info) {
                             std::string name =
                                 trafficPatternName(info.param);
                             for (auto &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

TEST(TrafficGen, PermutationIsOneToOne)
{
    const Topology topo = Topology::makeSingleLevel(2);
    const auto transfers =
        generateTraffic(topo, TrafficPattern::Permutation, 4, 9);
    EXPECT_EQ(transfers.size(), topo.numTsps());
    std::set<TspId> dsts;
    for (const auto &t : transfers)
        EXPECT_TRUE(dsts.insert(t.dst).second);
}

TEST(TrafficGen, AllToOneTargetsZero)
{
    const Topology topo = Topology::makeNode();
    for (const auto &t :
         generateTraffic(topo, TrafficPattern::AllToOne, 4))
        EXPECT_EQ(t.dst, 0u);
}

TEST(TrafficGen, NearestNeighborChains)
{
    const Topology topo = Topology::makeNode();
    const auto transfers =
        generateTraffic(topo, TrafficPattern::NearestNeighbor, 4);
    for (const auto &t : transfers)
        EXPECT_EQ(t.dst, (t.src + 1) % topo.numTsps());
}

TEST(TrafficGen, BitComplementReverses)
{
    const Topology topo = Topology::makeNode();
    const auto transfers =
        generateTraffic(topo, TrafficPattern::BitComplement, 4);
    for (const auto &t : transfers)
        EXPECT_EQ(t.dst, topo.numTsps() - 1 - t.src);
}

TEST(TrafficGen, IncastIsSlowestUniformIsFast)
{
    // Network folklore reproduced: incast serializes on the
    // destination, uniform/permutation spread evenly.
    const Topology topo = Topology::makeNode();
    SsnScheduler scheduler(topo);
    const auto incast = scheduler.schedule(
        generateTraffic(topo, TrafficPattern::AllToOne, 64));
    const auto perm = scheduler.schedule(
        generateTraffic(topo, TrafficPattern::Permutation, 64, 5));
    EXPECT_GT(incast.makespan, perm.makespan);
}

} // namespace
} // namespace tsm
