#include "collective/allreduce.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace tsm {

HierarchicalAllReduce::HierarchicalAllReduce(const Topology &topo,
                                             AllReduceConfig config)
    : topo_(&topo), config_(config)
{
    // The all-to-all exchange saturates every direct link; detours
    // would only collide with other slices' traffic.
    config_.ssn.maxExtraHops = 0;
    config_.ssn.maxPaths = 4;
}

namespace {

/** Slice size each participant owns, in vectors. */
std::uint32_t
sliceVectors(Bytes tensor_bytes, unsigned n)
{
    return std::uint32_t(
        (bytesToVectors(tensor_bytes) + n - 1) / n);
}

/** All ordered intra-node pairs, one transfer per pair. */
std::vector<TensorTransfer>
intraNodeAllToAll(const Topology &topo, std::uint32_t vectors,
                  FlowId first_flow, Cycle earliest)
{
    std::vector<TensorTransfer> out;
    FlowId flow = first_flow;
    for (unsigned node = 0; node < topo.numNodes(); ++node) {
        const TspId base = node * kTspsPerNode;
        for (unsigned i = 0; i < kTspsPerNode; ++i) {
            for (unsigned j = 0; j < kTspsPerNode; ++j) {
                if (i == j)
                    continue;
                TensorTransfer t;
                t.flow = flow++;
                t.src = base + i;
                t.dst = base + j;
                t.vectors = vectors;
                t.earliest = earliest;
                out.push_back(t);
            }
        }
    }
    return out;
}

} // namespace

std::vector<TensorTransfer>
HierarchicalAllReduce::reduceScatterTransfers(Bytes tensor_bytes,
                                              FlowId first_flow,
                                              Cycle earliest) const
{
    return intraNodeAllToAll(*topo_, sliceVectors(tensor_bytes,
                                                  kTspsPerNode),
                             first_flow, earliest);
}

std::vector<TensorTransfer>
HierarchicalAllReduce::allGatherTransfers(Bytes tensor_bytes,
                                          FlowId first_flow,
                                          Cycle earliest) const
{
    // Same all-to-all pattern: each owner broadcasts its reduced slice
    // to the 7 peers (pairwise over the direct links).
    return intraNodeAllToAll(*topo_, sliceVectors(tensor_bytes,
                                                  kTspsPerNode),
                             first_flow, earliest);
}

AllReduceResult
HierarchicalAllReduce::scheduled(Bytes tensor_bytes) const
{
    const unsigned nodes = topo_->numNodes();
    const unsigned n = kTspsPerNode * nodes;
    const std::uint32_t slice = sliceVectors(tensor_bytes, kTspsPerNode);
    const Cycle reduce_cycles =
        Cycle(std::ceil(double(slice) * config_.reduceCyclesPerVector));

    SsnScheduler scheduler(*topo_, config_.ssn);

    // Stage 1: per-node reduce-scatter (all nodes run concurrently).
    auto transfers = reduceScatterTransfers(tensor_bytes, 1, 0);
    const auto sched1 = scheduler.schedule(transfers);
    Cycle ready = sched1.makespan + reduce_cycles;
    FlowId next_flow = FlowId(transfers.size() + 1);

    // Stage 2 (multi-node only): each slice owner exchanges its
    // reduced slice with its counterpart TSPs in every other node,
    // then fuses the remote partials — an all-to-all between
    // counterpart sets over the global links.
    if (nodes > 1) {
        std::vector<TensorTransfer> stage2;
        for (unsigned na = 0; na < nodes; ++na) {
            for (unsigned nb = 0; nb < nodes; ++nb) {
                if (na == nb)
                    continue;
                for (unsigned s = 0; s < kTspsPerNode; ++s) {
                    TensorTransfer t;
                    t.flow = next_flow++;
                    t.src = na * kTspsPerNode + s;
                    t.dst = nb * kTspsPerNode + s;
                    t.vectors = slice;
                    t.earliest = ready;
                    stage2.push_back(t);
                }
            }
        }
        std::vector<TensorTransfer> upto2 = transfers;
        upto2.insert(upto2.end(), stage2.begin(), stage2.end());
        const auto sched2 = scheduler.schedule(upto2);
        ready = sched2.makespan + reduce_cycles;
        transfers = std::move(upto2);
    }

    // Stage 3: per-node all-gather of the fully reduced slices.
    auto gather = allGatherTransfers(tensor_bytes, next_flow, ready);
    std::vector<TensorTransfer> all = std::move(transfers);
    all.insert(all.end(), gather.begin(), gather.end());
    const auto sched = scheduler.schedule(all);

    AllReduceResult result;
    result.n = n;
    result.cycles = sched.makespan;
    result.seconds = double(sched.makespan) / kCoreFreqHz;
    result.busBandwidthBytesPerSec = 2.0 * double(n - 1) / double(n) *
                                     double(tensor_bytes) /
                                     result.seconds;
    return result;
}

AllReduceResult
HierarchicalAllReduce::analytic(Bytes tensor_bytes) const
{
    const unsigned n = kTspsPerNode;
    const std::uint32_t slice = sliceVectors(tensor_bytes, n);
    const Cycle window = 24;
    const Cycle flight = flightCycles(LinkClass::IntraNode);

    // Stage 1 (intra-node reduce-scatter): each TSP streams 7 slices
    // in parallel on its 7 links; the issue unit staggers the 7
    // streams by up to 7 cycles.
    const Cycle stagger = kTspsPerNode - 1;
    const Cycle t_stage1 =
        Cycle(slice - 1) * window + flight + kRxMarginCycles + stagger;

    // Fused VXM reduction of the arriving slices.
    const Cycle t_reduce =
        Cycle(std::ceil(double(slice) * config_.reduceCyclesPerVector));

    unsigned participants = n;
    Cycle t_stage2 = 0;
    if (topo_->numNodes() > 1) {
        // Inter-node all-reduce of each slice among counterpart TSPs
        // over the ~4 global links per TSP.
        const unsigned nodes = topo_->numNodes();
        participants = n * nodes;
        const LinkClass cls = topo_->numRacks() > 1
                                  ? LinkClass::InterRack
                                  : LinkClass::IntraRack;
        const double shard = double(slice) * double(nodes - 1) /
                             double(nodes) / double(kGlobalPortsPerTsp);
        t_stage2 = Cycle(2.0 * shard * double(window)) +
                   2 * flightCycles(cls) + t_reduce;
    }

    // Stage 3 (intra-node all-gather): mirror of stage 1.
    const Cycle t_stage3 = t_stage1;

    AllReduceResult result;
    result.n = participants;
    result.cycles = t_stage1 + t_reduce + t_stage2 + t_stage3;
    result.seconds = double(result.cycles) / kCoreFreqHz;
    result.busBandwidthBytesPerSec = 2.0 *
                                     double(participants - 1) /
                                     double(participants) *
                                     double(tensor_bytes) /
                                     result.seconds;
    return result;
}

double
HierarchicalAllReduce::smallMessageLatencySec() const
{
    // Paper §5.6: local hop, global hop, local hop — pipelined vector
    // reductions at each stage.
    double ps = double(hopLatencyPs(LinkClass::IntraNode));
    if (topo_->numNodes() > 1) {
        const LinkClass cls = topo_->numRacks() > 1 ||
                                      topo_->numNodes() > kNodesPerRack
                                  ? LinkClass::InterRack
                                  : LinkClass::IntraRack;
        ps += double(hopLatencyPs(cls));
        ps += double(hopLatencyPs(LinkClass::IntraNode));
    }
    return ps / 1e12;
}

} // namespace tsm
