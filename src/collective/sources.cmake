tsm_module(collective
    allreduce.cc
    primitives.cc
)
