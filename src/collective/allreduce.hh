/**
 * @file
 * Collective operations over the software-scheduled network
 * (paper §5.3, §5.6, Fig 16).
 *
 * The paper's All-Reduce is hierarchical and barrier-free: stage 1
 * reduce-scatters within each 8-way fully-connected node, stage 2
 * reduces across nodes over the global links, stage 3 all-gathers
 * within each node — with every vector statically scheduled, there is
 * no flag/mutex/fence machinery, which is exactly why the TSP curve
 * in Fig 16 saturates at small tensor sizes where the GPU baseline is
 * still paying mailbox overheads.
 *
 * Two evaluation paths are provided and cross-validated in tests:
 *  - scheduled(): builds the actual vector-level transfers, runs them
 *    through the SSN scheduler, and reports the schedule makespan
 *    (exact, used for small/medium tensors);
 *  - analytic(): closed-form pipeline model of the same algorithm
 *    (used to extend Fig 16 to gigabyte tensors cheaply).
 */

#ifndef TSM_COLLECTIVE_ALLREDUCE_HH
#define TSM_COLLECTIVE_ALLREDUCE_HH

#include <vector>

#include "net/topology.hh"
#include "ssn/scheduler.hh"
#include "ssn/transfer.hh"

namespace tsm {

/** Result of one all-reduce evaluation. */
struct AllReduceResult
{
    Cycle cycles = 0;
    double seconds = 0.0;

    /** nccl-tests bus bandwidth: 2 (n-1)/n S / t. */
    double busBandwidthBytesPerSec = 0.0;

    /** Participants. */
    unsigned n = 0;
};

/** Tuning knobs of the hierarchical all-reduce. */
struct AllReduceConfig
{
    /** VXM cycles charged per reduced vector (fused in fly-by). */
    double reduceCyclesPerVector = 1.0;

    /** SSN scheduling policy for the scheduled() path. */
    SsnConfig ssn = {};
};

/** Hierarchical all-reduce evaluator bound to a topology. */
class HierarchicalAllReduce
{
  public:
    explicit HierarchicalAllReduce(const Topology &topo,
                                   AllReduceConfig config = {});

    /**
     * Vector-exact evaluation through the SSN scheduler. Cost grows
     * with tensor size and system size; keep tensors under a few tens
     * of MiB. Single-node systems run the paper's 8-way all-reduce;
     * multi-node systems run the full 3-stage hierarchical algorithm
     * (§5.6): intra-node reduce-scatter, inter-node exchange between
     * counterpart TSPs over the global links, intra-node all-gather.
     */
    AllReduceResult scheduled(Bytes tensor_bytes) const;

    /** Closed-form model of the same 3-stage algorithm. */
    AllReduceResult analytic(Bytes tensor_bytes) const;

    /**
     * The raw transfer list of the intra-node all-to-all exchange
     * used by stage 1 (reduce-scatter) — exposed for tests and for
     * composing custom collectives.
     */
    std::vector<TensorTransfer>
    reduceScatterTransfers(Bytes tensor_bytes, FlowId first_flow,
                           Cycle earliest) const;

    /** Stage-3 all-gather transfer list (same pattern, reversed). */
    std::vector<TensorTransfer>
    allGatherTransfers(Bytes tensor_bytes, FlowId first_flow,
                       Cycle earliest) const;

    /**
     * Small-message 3-hop latency (paper §5.6: 722 ns x 3 hops ~
     * 2.1 us in a 256-TSP system): latency of an all-reduce of a
     * single vector per participant.
     */
    double smallMessageLatencySec() const;

  private:
    const Topology *topo_;
    AllReduceConfig config_;
};

} // namespace tsm

#endif // TSM_COLLECTIVE_ALLREDUCE_HH
