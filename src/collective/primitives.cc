#include "collective/primitives.hh"

#include "common/log.hh"

namespace tsm {

std::vector<TensorTransfer>
broadcastTransfers(const Topology &topo, TspId root,
                   std::uint32_t vectors, FlowId first_flow,
                   Cycle earliest)
{
    TSM_ASSERT(root < topo.numTsps(), "root out of range");
    std::vector<TensorTransfer> out;
    FlowId flow = first_flow;
    for (TspId t = 0; t < topo.numTsps(); ++t) {
        if (t == root)
            continue;
        TensorTransfer tr;
        tr.flow = flow++;
        tr.src = root;
        tr.dst = t;
        tr.vectors = vectors;
        tr.earliest = earliest;
        out.push_back(tr);
    }
    return out;
}

std::vector<TensorTransfer>
gatherTransfers(const Topology &topo, TspId root, std::uint32_t vectors,
                FlowId first_flow, Cycle earliest)
{
    TSM_ASSERT(root < topo.numTsps(), "root out of range");
    std::vector<TensorTransfer> out;
    FlowId flow = first_flow;
    for (TspId t = 0; t < topo.numTsps(); ++t) {
        if (t == root)
            continue;
        TensorTransfer tr;
        tr.flow = flow++;
        tr.src = t;
        tr.dst = root;
        tr.vectors = vectors;
        tr.earliest = earliest;
        out.push_back(tr);
    }
    return out;
}

Cycle
collectiveCompletion(const Topology &topo,
                     const std::vector<TensorTransfer> &transfers,
                     SsnConfig config)
{
    SsnScheduler scheduler(topo, config);
    return scheduler.schedule(transfers).makespan;
}

} // namespace tsm
