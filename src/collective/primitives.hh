/**
 * @file
 * Transfer-list builders for the basic collectives the hierarchical
 * All-Reduce composes from (reduce-scatter and all-gather live in
 * allreduce.hh): broadcast (root to all) and gather (all to root),
 * plus scheduler-backed completion estimates.
 *
 * All of these are "collections of scheduled pushes" — no barriers,
 * no flags; ordering comes from the compile-time schedule alone.
 */

#ifndef TSM_COLLECTIVE_PRIMITIVES_HH
#define TSM_COLLECTIVE_PRIMITIVES_HH

#include <vector>

#include "ssn/scheduler.hh"
#include "ssn/transfer.hh"

namespace tsm {

/** Root pushes the same `vectors`-sized tensor to every other TSP. */
std::vector<TensorTransfer> broadcastTransfers(const Topology &topo,
                                               TspId root,
                                               std::uint32_t vectors,
                                               FlowId first_flow = 1,
                                               Cycle earliest = 0);

/** Every non-root TSP pushes its tensor to the root. */
std::vector<TensorTransfer> gatherTransfers(const Topology &topo,
                                            TspId root,
                                            std::uint32_t vectors,
                                            FlowId first_flow = 1,
                                            Cycle earliest = 0);

/** Schedule a transfer list and return its makespan in cycles. */
Cycle collectiveCompletion(const Topology &topo,
                           const std::vector<TensorTransfer> &transfers,
                           SsnConfig config = {});

} // namespace tsm

#endif // TSM_COLLECTIVE_PRIMITIVES_HH
