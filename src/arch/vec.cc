#include "arch/vec.hh"

#include <bit>
#include <cstdint>

namespace tsm {

Vec
Vec::add(const Vec &o) const
{
    Vec r;
    for (unsigned i = 0; i < kLanes; ++i)
        r.lanes_[i] = lanes_[i] + o.lanes_[i];
    return r;
}

Vec
Vec::sub(const Vec &o) const
{
    Vec r;
    for (unsigned i = 0; i < kLanes; ++i)
        r.lanes_[i] = lanes_[i] - o.lanes_[i];
    return r;
}

Vec
Vec::mul(const Vec &o) const
{
    Vec r;
    for (unsigned i = 0; i < kLanes; ++i)
        r.lanes_[i] = lanes_[i] * o.lanes_[i];
    return r;
}

Vec
Vec::scale(float s) const
{
    Vec r;
    for (unsigned i = 0; i < kLanes; ++i)
        r.lanes_[i] = lanes_[i] * s;
    return r;
}

float
Vec::laneSum() const
{
    float acc = 0.0f;
    for (unsigned i = 0; i < kLanes; ++i)
        acc += lanes_[i];
    return acc;
}

float
Vec::dot(const Vec &o, unsigned k) const
{
    float acc = 0.0f;
    for (unsigned i = 0; i < k && i < kLanes; ++i)
        acc += lanes_[i] * o.lanes_[i];
    return acc;
}

float
fastRsqrt(float x)
{
    // Bit-level initial estimate followed by two Newton-Raphson
    // refinement steps; ~1e-6 relative error over normal inputs.
    const auto bits = std::bit_cast<std::uint32_t>(x);
    auto est = std::bit_cast<float>(0x5f3759dfu - (bits >> 1));
    est = est * (1.5f - 0.5f * x * est * est);
    est = est * (1.5f - 0.5f * x * est * est);
    return est;
}

Vec
Vec::rsqrt() const
{
    Vec r;
    for (unsigned i = 0; i < kLanes; ++i)
        r.lanes_[i] = fastRsqrt(lanes_[i]);
    return r;
}

VecPtr
makeVec(const Vec &v)
{
    return std::make_shared<const Vec>(v);
}

} // namespace tsm
