/**
 * @file
 * The TSP chip model: a deterministic, statically scheduled processing
 * element that is simultaneously a network endpoint and a router
 * (paper Fig 4(c)).
 *
 * Execution model. The real TSP has one instruction control unit per
 * functional slice, all statically scheduled against a common chip
 * clock so the whole chip acts as "a single logical core" (paper §3).
 * We model the program as a single instruction sequence in which every
 * instruction either issues back-to-back (hand-written programs) or at
 * a compiler-assigned absolute cycle (`Instr::issueAt`, SSN-generated
 * programs). Instructions with assigned cycles may overlap in time
 * across functional units (e.g. concurrent sends on different ports);
 * the network enforces the per-port serialization invariant and panics
 * on any overlap, because an overlap is by definition a compiler bug.
 *
 * Determinism verification. A scheduled Recv whose operand has not
 * arrived panics ("underflow"); hardware back-pressure does not exist.
 *
 * Counters. The chip carries the paper's HAC (hardware aligned
 * counter, adjusted toward a parent's time base) and SAC (software
 * aligned counter, free-running since the last resynchronization),
 * both with a 252-cycle epoch.
 */

#ifndef TSM_ARCH_CHIP_HH
#define TSM_ARCH_CHIP_HH

#include <array>
#include <deque>
#include <functional>
#include <optional>

#include "arch/isa.hh"
#include "arch/mem.hh"
#include "arch/vec.hh"
#include "net/network.hh"
#include "sim/clock.hh"
#include "sim/sim_object.hh"

namespace tsm {

/** Serialization time of one vector in (ceiled) core cycles. */
inline constexpr Cycle kVectorSerializationCycles = 24;

/** Per-chip execution statistics. */
struct ChipStats
{
    std::uint64_t instrsExecuted = 0;
    std::uint64_t flitsSent = 0;
    std::uint64_t flitsReceived = 0;
    std::uint64_t corruptReceived = 0;
    std::uint64_t computeCycles = 0;
    std::uint64_t deskewStallCycles = 0;
    Tick haltTick = kTickInvalid;
};

/** A TSP processing element attached to the network. */
class TspChip : public SimObject, public FlitSink
{
  public:
    /**
     * @param id This chip's TSP id in the topology.
     * @param net The interconnect (must outlive the chip).
     * @param clock This chip's (possibly drifting) clock domain.
     */
    TspChip(TspId id, Network &net, DriftClock clock);

    TspId id() const { return id_; }
    const DriftClock &clock() const { return clock_; }
    Network &network() { return *net_; }
    LocalMemory &mem() { return mem_; }
    const ChipStats &stats() const { return stats_; }

    /** Current local cycle count. */
    Cycle localCycle() const { return clock_.tickToCycle(now()); }

    /// @name Aligned counters (paper §3.1, §3.3)
    /// @{

    /** Current HAC value in [0, 252). */
    unsigned hac() const;

    /** Current SAC value in [0, 252). */
    unsigned sac() const;

    /** Nudge the HAC by a (clamped elsewhere) cycle delta. */
    void adjustHac(int delta_cycles);

    /**
     * Signed accumulated drift (SAC - HAC) in cycles, in
     * [-126, 126) — "the delta between a TSP's SAC and HAC represents
     * the accumulated drift" (paper §3.3).
     */
    int sacHacDelta() const;

    /** Re-align the SAC with the HAC (done by RUNTIME_DESKEW). */
    void realignSac();

    /** First tick >= t at which this chip's HAC reads 0. */
    Tick nextEpochStart(Tick t) const;

    /// @}

    /// @name Program execution
    /// @{

    /** Load a program (replaces any previous program). */
    void load(Program program);

    /** Begin executing the loaded program at tick `at` (>= now). */
    void start(Tick at);

    bool running() const { return running_; }
    bool halted() const { return stats_.haltTick != kTickInvalid; }

    /** Callback invoked when the program executes Halt. */
    void onHalt(std::function<void()> cb) { onHalt_ = std::move(cb); }

    /**
     * When true (default), an instruction reached after its scheduled
     * issueAt cycle is a panic; when false it issues late with a
     * warning (used by drift experiments that quantify slip).
     */
    void setStrictSchedule(bool strict) { strictSchedule_ = strict; }

    /// @}

    /// @name Direct state access (program setup and verification)
    /// @{

    VecPtr stream(unsigned s) const { return streams_.at(s); }
    void setStream(unsigned s, VecPtr v) { streams_.at(s) = std::move(v); }

    /** Depth of the receive FIFO at `port`. */
    std::size_t rxDepth(unsigned port) const { return rxFifo_[port].size(); }

    /// @}

    /**
     * Handler for HAC-exchange control flits arriving at a given port;
     * installed by the sync module (link characterizer, HAC aligner).
     * Passing a null handler uninstalls.
     */
    using ControlHandler =
        std::function<void(unsigned port, const ArrivedFlit &)>;
    void
    setControlHandler(unsigned port, ControlHandler h)
    {
        controlHandlers_.at(port) = std::move(h);
    }

    /** FlitSink: network delivery. */
    void flitArrived(unsigned port, const ArrivedFlit &af) override;

  private:
    /** Schedule the issue loop to run at tick `t`. */
    void scheduleIssue(Tick t);

    /** Issue/execute the instruction at pc_. */
    void issue();

    /** Execute `i` now; @return tick at which the next instr may issue. */
    Tick execute(const Instr &i);

    /** Pop a data flit from a port FIFO, verifying its tag. */
    VecPtr consumeRx(const Instr &i);

    /** The link occupying `port`, or panic. */
    LinkId portLink(unsigned port) const;

    TspId id_;
    Network *net_;
    DriftClock clock_;
    LocalMemory mem_;
    std::array<VecPtr, kNumStreams> streams_;
    std::array<VecPtr, kVectorLanesInt8> mxmWeights_;
    unsigned mxmRows_ = 0;

    std::array<std::deque<ArrivedFlit>, kPortsPerTsp> rxFifo_;

    Program program_;
    std::size_t pc_ = 0;
    bool running_ = false;
    bool strictSchedule_ = true;

    /** Additive corrections to the free-running cycle counters. */
    std::int64_t hacOffset_ = 0;
    std::int64_t sacOffset_ = 0;

    ChipStats stats_;
    std::function<void()> onHalt_;
    std::array<ControlHandler, kPortsPerTsp> controlHandlers_;
};

} // namespace tsm

#endif // TSM_ARCH_CHIP_HH
