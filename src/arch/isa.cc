#include "arch/isa.hh"

#include "common/format.hh"

namespace tsm {

const char *
opName(Op op)
{
    switch (op) {
      case Op::Nop: return "NOP";
      case Op::Compute: return "COMPUTE";
      case Op::Halt: return "HALT";
      case Op::Read: return "READ";
      case Op::Write: return "WRITE";
      case Op::VAdd: return "VADD";
      case Op::VSub: return "VSUB";
      case Op::VMul: return "VMUL";
      case Op::VScale: return "VSCALE";
      case Op::VRsqrt: return "VRSQRT";
      case Op::VSplat: return "VSPLAT";
      case Op::VCopy: return "VCOPY";
      case Op::MxmLoadWeights: return "MXM.LW";
      case Op::MxmClear: return "MXM.CLEAR";
      case Op::MxmMatMul: return "MXM.MM";
      case Op::SxmRotate: return "SXM.ROT";
      case Op::Send: return "SEND";
      case Op::Recv: return "RECV";
      case Op::PollRecv: return "POLLRECV";
      case Op::Sync: return "SYNC";
      case Op::Notify: return "NOTIFY";
      case Op::Deskew: return "DESKEW";
      case Op::Transmit: return "TRANSMIT";
      case Op::RuntimeDeskew: return "RUNTIME_DESKEW";
    }
    return "?";
}

const char *
funcUnitName(FuncUnit u)
{
    switch (u) {
      case FuncUnit::MXM: return "MXM";
      case FuncUnit::VXM: return "VXM";
      case FuncUnit::SXM: return "SXM";
      case FuncUnit::MEM: return "MEM";
      case FuncUnit::ICU: return "ICU";
    }
    return "?";
}

FuncUnit
opUnit(Op op)
{
    switch (op) {
      case Op::MxmLoadWeights:
      case Op::MxmClear:
      case Op::MxmMatMul:
      // Opaque compute blocks stand in for matrix work in the workload
      // models, so their cycles are charged to the MXM.
      case Op::Compute:
        return FuncUnit::MXM;

      case Op::VAdd:
      case Op::VSub:
      case Op::VMul:
      case Op::VScale:
      case Op::VRsqrt:
      case Op::VSplat:
      case Op::VCopy:
        return FuncUnit::VXM;

      case Op::SxmRotate:
      case Op::Send:
      case Op::Recv:
      case Op::PollRecv:
      case Op::Transmit:
        return FuncUnit::SXM;

      case Op::Read:
      case Op::Write:
        return FuncUnit::MEM;

      case Op::Nop:
      case Op::Halt:
      case Op::Sync:
      case Op::Notify:
      case Op::Deskew:
      case Op::RuntimeDeskew:
        return FuncUnit::ICU;
    }
    return FuncUnit::ICU;
}

OpTimeClass
opTimeClass(Op op)
{
    switch (op) {
      case Op::Nop:
      case Op::Halt:
        return OpTimeClass::Idle;

      case Op::Sync:
      case Op::Deskew:
      case Op::RuntimeDeskew:
      case Op::PollRecv:
        return OpTimeClass::Stall;

      default:
        return OpTimeClass::Busy;
    }
}

std::string
Instr::str() const
{
    std::string s = opName(op);
    if (issueAt != kCycleUnscheduled)
        s += format(" @{}", issueAt);
    switch (op) {
      case Op::Send:
      case Op::Recv:
        s += format(" port{} flow{}:{}", port, flow, seq);
        break;
      case Op::Read:
      case Op::Write:
        s += " " + addr.str();
        break;
      case Op::Compute:
      case Op::Nop:
      case Op::RuntimeDeskew:
        s += format(" {}", imm);
        break;
      default:
        break;
    }
    return s;
}

Instr &
Program::emit(Op op)
{
    instrs.emplace_back();
    instrs.back().op = op;
    return instrs.back();
}

Instr &
Program::emitNop(Cycle cycles)
{
    Instr &i = emit(Op::Nop);
    i.imm = std::int64_t(cycles);
    return i;
}

Instr &
Program::emitCompute(Cycle cycles)
{
    Instr &i = emit(Op::Compute);
    i.imm = std::int64_t(cycles);
    return i;
}

Instr &
Program::emitRead(const LocalAddr &addr, unsigned dst_stream)
{
    Instr &i = emit(Op::Read);
    i.addr = addr;
    i.dst = std::uint8_t(dst_stream);
    return i;
}

Instr &
Program::emitWrite(unsigned src_stream, const LocalAddr &addr)
{
    Instr &i = emit(Op::Write);
    i.addr = addr;
    i.srcA = std::uint8_t(src_stream);
    return i;
}

Instr &
Program::emitSend(unsigned port, unsigned src_stream, std::uint32_t flow,
                  std::uint32_t seq)
{
    Instr &i = emit(Op::Send);
    i.port = std::uint8_t(port);
    i.srcA = std::uint8_t(src_stream);
    i.flow = flow;
    i.seq = seq;
    return i;
}

Instr &
Program::emitRecv(unsigned port, unsigned dst_stream, std::uint32_t flow,
                  std::uint32_t seq)
{
    Instr &i = emit(Op::Recv);
    i.port = std::uint8_t(port);
    i.dst = std::uint8_t(dst_stream);
    i.flow = flow;
    i.seq = seq;
    return i;
}

Instr &
Program::emitHalt()
{
    return emit(Op::Halt);
}

void
Program::shift(Cycle base)
{
    for (Instr &i : instrs)
        if (i.issueAt != kCycleUnscheduled)
            i.issueAt += base;
}

} // namespace tsm
