#include "arch/mem.hh"

#include "common/format.hh"

#include "common/log.hh"

namespace tsm {

std::uint32_t
LocalAddr::flatten() const
{
    return ((std::uint32_t(hemisphere) * kSlicesPerHemisphere + slice) *
                kBanksPerSlice +
            bank) *
               kWordsPerBank +
           offset;
}

LocalAddr
LocalAddr::unflatten(std::uint32_t flat)
{
    LocalAddr a;
    a.offset = std::uint16_t(flat % kWordsPerBank);
    flat /= kWordsPerBank;
    a.bank = std::uint8_t(flat % kBanksPerSlice);
    flat /= kBanksPerSlice;
    a.slice = std::uint8_t(flat % kSlicesPerHemisphere);
    flat /= kSlicesPerHemisphere;
    a.hemisphere = std::uint8_t(flat);
    return a;
}

bool
LocalAddr::valid() const
{
    return hemisphere < kHemispheres && slice < kSlicesPerHemisphere &&
           bank < kBanksPerSlice && offset < kWordsPerBank;
}

std::string
LocalAddr::str() const
{
    return format("[h{} s{} b{} +{}]", hemisphere, slice, bank, offset);
}

std::uint64_t
GlobalAddr::flatten() const
{
    return std::uint64_t(device) * LocalAddr::kWords + local.flatten();
}

GlobalAddr
GlobalAddr::unflatten(std::uint64_t flat)
{
    GlobalAddr g;
    g.device = std::uint32_t(flat / LocalAddr::kWords);
    g.local = LocalAddr::unflatten(std::uint32_t(flat % LocalAddr::kWords));
    return g;
}

std::string
GlobalAddr::str() const
{
    return format("dev{}{}", device, local.str());
}

void
LocalMemory::write(const LocalAddr &addr, VecPtr data)
{
    TSM_ASSERT(addr.valid(), "write outside the memory tensor shape");
    words_[addr.flatten()] = std::move(data);
    poisoned_.erase(addr.flatten());
}

bool
LocalMemory::present(const LocalAddr &addr) const
{
    return words_.contains(addr.flatten());
}

VecPtr
LocalMemory::read(const LocalAddr &addr) const
{
    TSM_ASSERT(addr.valid(), "read outside the memory tensor shape");
    TSM_ASSERT(!poisoned(addr),
               "read of a word with an uncorrectable error; the runtime "
               "must replay instead");
    auto it = words_.find(addr.flatten());
    return it == words_.end() ? nullptr : it->second;
}

void
LocalMemory::poison(const LocalAddr &addr)
{
    poisoned_[addr.flatten()] = true;
}

bool
LocalMemory::poisoned(const LocalAddr &addr) const
{
    auto it = poisoned_.find(addr.flatten());
    return it != poisoned_.end() && it->second;
}

void
LocalMemory::reset()
{
    words_.clear();
    poisoned_.clear();
}

} // namespace tsm
