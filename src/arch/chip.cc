#include "arch/chip.hh"

#include "common/format.hh"

#include "common/log.hh"

namespace tsm {

namespace {

/** Positive modulus. */
std::int64_t
posMod(std::int64_t v, std::int64_t m)
{
    const std::int64_t r = v % m;
    return r < 0 ? r + m : r;
}

/** Map a mod-252 difference to the signed range [-126, 126). */
int
signedEpochDelta(std::int64_t diff)
{
    const std::int64_t m = posMod(diff, kHacPeriodCycles);
    return int(m >= kHacPeriodCycles / 2 ? m - kHacPeriodCycles : m);
}

} // namespace

TspChip::TspChip(TspId id, Network &net, DriftClock clock)
    : SimObject(format("tsp{}", id), net.eventq()), id_(id), net_(&net),
      clock_(clock)
{
    net_->attachSink(id_, this);
}

unsigned
TspChip::hac() const
{
    return unsigned(
        posMod(std::int64_t(localCycle()) + hacOffset_, kHacPeriodCycles));
}

unsigned
TspChip::sac() const
{
    return unsigned(
        posMod(std::int64_t(localCycle()) + sacOffset_, kHacPeriodCycles));
}

void
TspChip::adjustHac(int delta_cycles)
{
    hacOffset_ += delta_cycles;
}

int
TspChip::sacHacDelta() const
{
    return signedEpochDelta(sacOffset_ - hacOffset_);
}

void
TspChip::realignSac()
{
    sacOffset_ = hacOffset_;
}

Tick
TspChip::nextEpochStart(Tick t) const
{
    // Find the first cycle boundary >= t whose HAC phase is zero.
    Cycle c = clock_.tickToCycle(t);
    if (clock_.cycleToTick(c) < t)
        ++c;
    const auto phase = posMod(std::int64_t(c) + hacOffset_, kHacPeriodCycles);
    const Cycle wait = phase == 0 ? 0 : Cycle(kHacPeriodCycles - phase);
    return clock_.cycleToTick(c + wait);
}

void
TspChip::load(Program program)
{
    TSM_ASSERT(!running_, "cannot load a program while running");
    program_ = std::move(program);
    pc_ = 0;
    stats_.haltTick = kTickInvalid;
}

void
TspChip::start(Tick at)
{
    TSM_ASSERT(!running_, "chip already running");
    TSM_ASSERT(at >= now(), "cannot start in the past");
    running_ = true;
    pc_ = 0;
    scheduleIssue(at);
}

void
TspChip::scheduleIssue(Tick t)
{
    eventq().schedule(t, [this] { issue(); }, kSpanNone,
                      EventKind::ChipIssue);
}

void
TspChip::issue()
{
    Tracer &tracer = eventq().tracer();

    if (pc_ >= program_.instrs.size()) {
        // Fell off the end: treat as halt.
        running_ = false;
        stats_.haltTick = now();
        if (tracer.wants(TraceCat::Chip))
            tracer.emit({now(), 0, TraceCat::Chip, id_, "halt",
                         std::int64_t(pc_), std::int64_t(localCycle())});
        if (onHalt_)
            onHalt_();
        return;
    }

    const Instr &i = program_.instrs[pc_];

    // Honour the static schedule: wait for the assigned issue cycle.
    if (i.issueAt != kCycleUnscheduled) {
        const Tick scheduled = clock_.cycleToTick(i.issueAt);
        if (scheduled > now()) {
            scheduleIssue(scheduled);
            return;
        }
        if (scheduled < now()) {
            if (strictSchedule_) {
                panic("tsp{}: instruction {} ({}) reached {}ps after its "
                      "scheduled issue — static schedule violated",
                      id_, pc_, i.str(), now() - scheduled);
            }
            warn("tsp{}: instruction {} issues {}ps late", id_, pc_,
                 now() - scheduled);
        }
    }

    const Tick next = execute(i);
    ++stats_.instrsExecuted;

    if (tracer.wants(TraceCat::Chip)) {
        // One event per retired instruction; duration is its occupancy
        // of the issue slot (0 for a failed poll, which retires later).
        const Tick dur =
            next != kTickInvalid && next > now() ? next - now() : 0;
        tracer.emit({now(), dur, TraceCat::Chip, id_, opName(i.op),
                     std::int64_t(pc_), std::int64_t(localCycle())});
    }

    if (i.op == Op::Halt) {
        running_ = false;
        stats_.haltTick = now();
        if (tracer.wants(TraceCat::Chip))
            tracer.emit({now(), 0, TraceCat::Chip, id_, "halt",
                         std::int64_t(pc_), std::int64_t(localCycle())});
        if (onHalt_)
            onHalt_();
        return;
    }
    if (i.op == Op::PollRecv && next == kTickInvalid) {
        // Poll failed; retry the same instruction next epoch. The wait
        // is a stall the profiler attributes to the SXM receive path.
        --stats_.instrsExecuted;
        const Tick retry = nextEpochStart(now() + 1);
        if (tracer.wants(TraceCat::Chip))
            tracer.emit({now(), retry - now(), TraceCat::Chip, id_,
                         "poll_wait", std::int64_t(pc_),
                         std::int64_t(localCycle())});
        scheduleIssue(retry);
        return;
    }

    ++pc_;
    scheduleIssue(next);
}

LinkId
TspChip::portLink(unsigned port) const
{
    const auto link = net_->topo().linkAtPort(id_, port);
    TSM_ASSERT(link.has_value(), "no link connected at tsp{} port {}",
               std::uint32_t{0} + id_, port);
    return *link;
}

VecPtr
TspChip::consumeRx(const Instr &i)
{
    auto &fifo = rxFifo_[i.port];
    TSM_ASSERT(!fifo.empty(),
               "tsp{} port{}: scheduled receive underflow — no vector has "
               "arrived; the SSN schedule is broken",
               std::uint32_t{0} + id_, unsigned(i.port));
    ArrivedFlit af = fifo.front();
    fifo.pop_front();
    ++stats_.flitsReceived;
    Tracer &tracer = eventq().tracer();
    if (af.flit.flow != 0 && tracer.wants(TraceCat::Ssn)) {
        tracer.emit({now(), 0, TraceCat::Ssn, id_,
                     af.flit.corrupt ? "corrupt" : "recv",
                     std::int64_t(af.flit.flow), std::int64_t(af.flit.seq),
                     af.flit.span});
        // The consuming receive at the final destination closes the
        // vector's causal span: its journey across every hop is over.
        if (i.lastHop && isDataFlow(af.flit.flow))
            tracer.emit({now(), 0, TraceCat::Ssn, id_, "span_close",
                         std::int64_t(af.flit.flow),
                         std::int64_t(af.flit.seq),
                         spanParent(af.flit.span)});
    }
    if (i.flow != 0) {
        TSM_ASSERT(af.flit.flow == i.flow && af.flit.seq == i.seq,
                   "tsp{} port{}: receive tag mismatch (expected flow {} "
                   "seq {}, got flow {} seq {}) — total order violated",
                   std::uint32_t{0} + id_, unsigned(i.port), i.flow, i.seq,
                   af.flit.flow, af.flit.seq);
    }
    if (af.flit.corrupt) {
        ++stats_.corruptReceived;
        return nullptr;
    }
    return af.flit.payload;
}

Tick
TspChip::execute(const Instr &i)
{
    const auto cycles_hence = [this](Cycle n) {
        return clock_.cycleToTick(localCycle() + n);
    };
    Tick next = cycles_hence(1);

    switch (i.op) {
      case Op::Nop:
        next = cycles_hence(Cycle(std::max<std::int64_t>(1, i.imm)));
        break;

      case Op::Compute:
        stats_.computeCycles += std::uint64_t(i.imm);
        next = cycles_hence(Cycle(std::max<std::int64_t>(1, i.imm)));
        break;

      case Op::Halt:
        break;

      case Op::Read:
        streams_[i.dst] = mem_.read(i.addr);
        break;

      case Op::Write:
        mem_.write(i.addr, streams_[i.srcA]);
        break;

      case Op::VAdd:
      case Op::VSub:
      case Op::VMul: {
        const VecPtr a = streams_[i.srcA];
        const VecPtr b = streams_[i.srcB];
        if (a && b) {
            Vec r = i.op == Op::VAdd   ? a->add(*b)
                    : i.op == Op::VSub ? a->sub(*b)
                                       : a->mul(*b);
            streams_[i.dst] = makeVec(r);
        } else {
            streams_[i.dst] = nullptr;
        }
        break;
      }

      case Op::VScale: {
        const VecPtr a = streams_[i.srcA];
        streams_[i.dst] = a ? makeVec(a->scale(i.fimm)) : nullptr;
        break;
      }

      case Op::VRsqrt: {
        const VecPtr a = streams_[i.srcA];
        streams_[i.dst] = a ? makeVec(a->rsqrt()) : nullptr;
        break;
      }

      case Op::VSplat:
        streams_[i.dst] = makeVec(Vec(i.fimm));
        break;

      case Op::VCopy:
        streams_[i.dst] = streams_[i.srcA];
        break;

      case Op::MxmLoadWeights:
        TSM_ASSERT(i.imm >= 0 && i.imm < std::int64_t(kVectorLanesInt8),
                   "MXM weight row out of range");
        mxmWeights_[std::size_t(i.imm)] = streams_[i.srcA];
        mxmRows_ = std::max(mxmRows_, unsigned(i.imm) + 1);
        break;

      case Op::MxmClear:
        for (auto &row : mxmWeights_)
            row = nullptr;
        mxmRows_ = 0;
        break;

      case Op::MxmMatMul: {
        // One [1 x K] x [K x 320] sub-operation (paper §5.2): the
        // activation's first K=mxmRows_ lanes each scale a weight row;
        // the output vector is the lane-wise sum.
        const VecPtr act = streams_[i.srcA];
        if (act) {
            Vec out;
            for (unsigned k = 0; k < mxmRows_; ++k) {
                if (!mxmWeights_[k])
                    continue;
                const float a = (*act)[k];
                const Vec &w = *mxmWeights_[k];
                for (unsigned j = 0; j < Vec::kLanes; ++j)
                    out[j] += a * w[j];
            }
            streams_[i.dst] = makeVec(out);
        } else {
            streams_[i.dst] = nullptr;
        }
        break;
      }

      case Op::SxmRotate: {
        const VecPtr a = streams_[i.srcA];
        if (a) {
            Vec r;
            const auto n = unsigned(posMod(i.imm, Vec::kLanes));
            for (unsigned j = 0; j < Vec::kLanes; ++j)
                r[(j + n) % Vec::kLanes] = (*a)[j];
            streams_[i.dst] = makeVec(r);
        } else {
            streams_[i.dst] = nullptr;
        }
        break;
      }

      case Op::Send: {
        Flit flit;
        flit.flow = i.flow;
        flit.seq = i.seq;
        flit.payload = streams_[i.srcA];
        if (i.flow != 0)
            flit.span = spanChild(transferSpan(i.flow, i.seq), i.hop);
        const SpanId span = flit.span;
        // The source chip's first Send opens the vector's causal span;
        // forwarded hops re-enter it as leg children.
        if (i.hop == 0 && isDataFlow(i.flow) &&
            eventq().tracer().wants(TraceCat::Ssn))
            eventq().tracer().emit({now(), 0, TraceCat::Ssn, id_,
                                    "span_open", std::int64_t(i.flow),
                                    std::int64_t(i.seq),
                                    spanParent(span)});
        net_->transmit(id_, portLink(i.port), std::move(flit), now());
        ++stats_.flitsSent;
        if (i.flow != 0 && eventq().tracer().wants(TraceCat::Ssn))
            eventq().tracer().emit({now(), 0, TraceCat::Ssn, id_, "send",
                                    std::int64_t(i.flow),
                                    std::int64_t(i.seq), span});
        // Hand-written (unscheduled) programs self-pace at the port
        // serialization rate; SSN schedules control pacing themselves.
        if (i.issueAt == kCycleUnscheduled)
            next = cycles_hence(kVectorSerializationCycles);
        break;
      }

      case Op::Recv:
        streams_[i.dst] = consumeRx(i);
        break;

      case Op::PollRecv:
        if (rxFifo_[i.port].empty())
            return kTickInvalid; // caller re-polls next epoch
        streams_[i.dst] = consumeRx(i);
        break;

      case Op::Sync:
        // In the single-sequence model SYNC is the point where all
        // functional units are already implicitly aligned; it consumes
        // its issue slot only.
        break;

      case Op::Notify:
        // Chip-wide restart signal with fixed, known latency.
        next = cycles_hence(kNotifyLatency);
        break;

      case Op::Deskew: {
        const Tick epoch = nextEpochStart(now());
        stats_.deskewStallCycles +=
            clock_.tickToCycle(epoch) - localCycle();
        next = std::max(epoch, cycles_hence(0));
        if (next <= now())
            next = now();
        break;
      }

      case Op::Transmit: {
        Flit flit;
        flit.flow = kFlowSyncToken;
        flit.meta = i.imm;
        flit.span =
            transferSpan(kFlowSyncToken, std::uint32_t(i.imm) & 0xffffff);
        net_->controlTransmit(id_, portLink(i.port), std::move(flit));
        break;
      }

      case Op::RuntimeDeskew: {
        // Stall for the target plus the accumulated drift: if SAC is
        // ahead of HAC the local clock ran fast and must wait longer
        // (paper §3.3); then local time is re-aligned with global time.
        const int delta = sacHacDelta();
        const std::int64_t stall =
            std::max<std::int64_t>(1, i.imm + delta);
        stats_.deskewStallCycles += std::uint64_t(stall);
        realignSac();
        next = cycles_hence(Cycle(stall));
        break;
      }
    }

    if (next <= now())
        next = now() + 1;
    return next;
}

void
TspChip::flitArrived(unsigned port, const ArrivedFlit &af)
{
    if (af.flit.flow == kFlowHacExchange) {
        if (controlHandlers_[port])
            controlHandlers_[port](port, af);
        return;
    }
    rxFifo_[port].push_back(af);
}

} // namespace tsm
