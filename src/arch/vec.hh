/**
 * @file
 * The 320-lane vector value type.
 *
 * A vector is the TSP's fundamental datum: 320 byte-lanes wide (20
 * tiles x 16 lanes), and also the network's flow-control unit (flit).
 * We model lane values as fp32 regardless of the nominal element type;
 * what the experiments measure is timing and reduction/matmul
 * correctness, not numerical precision effects, except for rsqrt where
 * the paper's "custom approximation" is modeled explicitly.
 */

#ifndef TSM_ARCH_VEC_HH
#define TSM_ARCH_VEC_HH

#include <array>
#include <cstddef>
#include <memory>

#include "common/units.hh"

namespace tsm {

/** One 320-lane vector of values. */
class Vec
{
  public:
    static constexpr unsigned kLanes = kVectorBytes;

    /** Zero-filled vector. */
    Vec() : lanes_{} {}

    /** Vector with every lane set to `fill`. */
    explicit Vec(float fill) { lanes_.fill(fill); }

    float &operator[](std::size_t i) { return lanes_[i]; }
    const float &operator[](std::size_t i) const { return lanes_[i]; }

    /** Elementwise arithmetic. */
    Vec add(const Vec &o) const;
    Vec sub(const Vec &o) const;
    Vec mul(const Vec &o) const;

    /** Multiply every lane by a scalar. */
    Vec scale(float s) const;

    /** Sum of all lanes. */
    float laneSum() const;

    /** Dot product over the first `k` lanes. */
    float dot(const Vec &o, unsigned k = kLanes) const;

    /**
     * Lane-wise reciprocal square root using a fast initial estimate
     * refined by two Newton-Raphson steps — the paper's Cholesky kernel
     * uses "a custom approximation of the reciprocal square root".
     */
    Vec rsqrt() const;

    bool operator==(const Vec &o) const { return lanes_ == o.lanes_; }

  private:
    std::array<float, kLanes> lanes_;
};

/**
 * Shared immutable payload handle. Timing-only flits carry a null
 * payload so bulk transfers need not materialize data.
 */
using VecPtr = std::shared_ptr<const Vec>;

/** Wrap a vector into a shared immutable payload. */
VecPtr makeVec(const Vec &v);

/** Fast scalar reciprocal square root (same approximation as Vec::rsqrt). */
float fastRsqrt(float x);

} // namespace tsm

#endif // TSM_ARCH_VEC_HH
