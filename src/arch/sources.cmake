tsm_module(arch
    vec.cc
    mem.cc
    isa.cc
    chip.cc
)
