/**
 * @file
 * The instruction set of the modeled TSP, including the scale-out
 * determinism support of paper Table 1 (SYNC, NOTIFY, DESKEW,
 * TRANSMIT, RUNTIME_DESKEW) and the producer-consumer stream ops.
 *
 * The chip is a single logical core (paper §3): all functional units
 * are statically scheduled against one time base. We model the program
 * as one instruction sequence in which every instruction has a
 * compile-time-known duration, and optionally a compile-time-assigned
 * absolute issue cycle (`issueAt`) produced by the SSN scheduler. The
 * executor *verifies* rather than *enforces* determinism: an operand
 * that has not arrived by its scheduled consumption cycle is a
 * scheduling bug and panics.
 */

#ifndef TSM_ARCH_ISA_HH
#define TSM_ARCH_ISA_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/mem.hh"
#include "common/units.hh"

namespace tsm {

/** Number of stream registers (32 eastward + 32 westward). */
inline constexpr unsigned kNumStreams = 64;

/** Sentinel: instruction issues as soon as the previous one retires. */
inline constexpr Cycle kCycleUnscheduled = ~Cycle(0);

/** Opcodes. */
enum class Op : std::uint8_t
{
    Nop,     ///< idle for `imm` cycles (>= 1)
    Compute, ///< opaque compute block of exactly `imm` cycles
    Halt,    ///< end of program

    // MEM functional slices
    Read,  ///< stream[dst] = mem[addr]
    Write, ///< mem[addr] = stream[srcA]

    // VXM vector ALUs
    VAdd,   ///< stream[dst] = stream[srcA] + stream[srcB]
    VSub,   ///< stream[dst] = stream[srcA] - stream[srcB]
    VMul,   ///< stream[dst] = stream[srcA] * stream[srcB]
    VScale, ///< stream[dst] = stream[srcA] * fimm
    VRsqrt, ///< stream[dst] = rsqrt(stream[srcA]) (fast approximation)
    VSplat, ///< stream[dst] = broadcast(fimm)
    VCopy,  ///< stream[dst] = stream[srcA]

    // MXM matrix unit: weights load then [1 x K] x [K x 320] sub-ops
    MxmLoadWeights, ///< append stream[srcA] as weight row `imm`
    MxmClear,       ///< drop all loaded weight rows
    MxmMatMul,      ///< stream[dst] = stream[srcA] (1xK) times weights

    // SXM switch unit (simplified: lane rotation)
    SxmRotate, ///< stream[dst] = rotate(stream[srcA], imm lanes)

    // C2C communication
    Send,     ///< transmit stream[srcA] on `port` tagged (flow, seq)
    Recv,     ///< stream[dst] = exactly-now arrival on `port`; verifies tag
    PollRecv, ///< poll `port` each HAC epoch until a flit arrives

    // Scale-out determinism support (paper Table 1)
    Sync,          ///< park instruction issue (awaits NOTIFY)
    Notify,        ///< chip-wide restart signal, fixed known latency
    Deskew,        ///< pause until the local HAC overflows (epoch start)
    Transmit,      ///< send a sync-token control flit on `port`
    RuntimeDeskew, ///< stall imm +/- (SAC - HAC) cycles, realign SAC
};

/** Number of opcodes (for tables indexed by Op). */
inline constexpr unsigned kNumOps = unsigned(Op::RuntimeDeskew) + 1;

/** Printable opcode mnemonic. */
const char *opName(Op op);

/**
 * Functional unit of the TSP an instruction occupies (paper Fig 3):
 * the matrix unit, vector ALUs, the switch unit (which also houses the
 * C2C modules, so communication ops land here), the memory slices, or
 * the instruction control unit for issue-only / timing ops.
 */
enum class FuncUnit : std::uint8_t
{
    MXM, ///< matrix execution module
    VXM, ///< vector execution module
    SXM, ///< switch execution module + C2C
    MEM, ///< SRAM memory slices
    ICU, ///< instruction control (NOP, sync/deskew machinery, HALT)
};

inline constexpr unsigned kNumFuncUnits = 5;

/** Short name of a functional unit ("MXM", "VXM", ...). */
const char *funcUnitName(FuncUnit u);

/** The functional unit `op` executes on. */
FuncUnit opUnit(Op op);

/** How profiling attributes an instruction's issue-slot occupancy. */
enum class OpTimeClass : std::uint8_t
{
    Busy,  ///< productive work on opUnit(op)
    Stall, ///< waiting for time alignment or an operand (deskew, poll)
    Idle,  ///< deliberately empty issue slots (NOP, HALT)
};

/** Busy/stall/idle classification of `op` for cycle attribution. */
OpTimeClass opTimeClass(Op op);

/** One decoded instruction. */
struct Instr
{
    Op op = Op::Nop;

    std::uint8_t dst = 0;  ///< destination stream register
    std::uint8_t srcA = 0; ///< first source stream register
    std::uint8_t srcB = 0; ///< second source stream register
    std::uint8_t port = 0; ///< C2C port for Send/Recv/Transmit

    LocalAddr addr; ///< memory address for Read/Write

    std::uint32_t flow = 0; ///< flow tag for Send/Recv
    std::uint32_t seq = 0;  ///< sequence tag for Send/Recv

    /**
     * Position of this Send/Recv in its vector's scheduled route
     * (0 = the source chip). Set by buildPrograms; hand-written
     * programs default to 0, i.e. direct source-to-destination.
     */
    std::uint8_t hop = 0;

    /**
     * True when this Recv consumes the vector at its final
     * destination (closing its causal span) rather than parking it
     * for an onward forwarded Send. Defaults to true so hand-written
     * single-hop programs behave as source + destination.
     */
    bool lastHop = true;

    std::int64_t imm = 0; ///< cycles / rotation amount / weight row
    float fimm = 0.0f;    ///< scalar operand

    /** Absolute local issue cycle, or kCycleUnscheduled. */
    Cycle issueAt = kCycleUnscheduled;

    std::string str() const;
};

/** Chip-wide NOTIFY propagation latency in cycles (known, fixed). */
inline constexpr Cycle kNotifyLatency = 8;

/** A per-chip program: just an instruction sequence. */
struct Program
{
    std::vector<Instr> instrs;

    /** Append and return a reference for further field setup. */
    Instr &emit(Op op);

    // Convenience builders for common forms.
    Instr &emitNop(Cycle cycles);
    Instr &emitCompute(Cycle cycles);
    Instr &emitRead(const LocalAddr &addr, unsigned dst_stream);
    Instr &emitWrite(unsigned src_stream, const LocalAddr &addr);
    Instr &emitSend(unsigned port, unsigned src_stream, std::uint32_t flow,
                    std::uint32_t seq);
    Instr &emitRecv(unsigned port, unsigned dst_stream, std::uint32_t flow,
                    std::uint32_t seq);
    Instr &emitHalt();

    std::size_t size() const { return instrs.size(); }

    /**
     * Shift every scheduled issue cycle by `base` (relaunching a
     * compiled program later on the same time base). Unscheduled
     * instructions are untouched.
     */
    void shift(Cycle base);
};

} // namespace tsm

#endif // TSM_ARCH_ISA_HH
