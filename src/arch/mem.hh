/**
 * @file
 * The TSP memory map and the system-wide global shared address space.
 *
 * Paper Fig 3: the global memory is "logically shared, but physically
 * distributed SRAM", addressable as a rank-5 tensor
 * [Device, Hemisphere, Slice, Bank, Offset] with shape
 * [N, 2, 44, 2, 4096], where one address holds one 320-byte vector.
 */

#ifndef TSM_ARCH_MEM_HH
#define TSM_ARCH_MEM_HH

#include <cstdint>
#include <string>
#include <unordered_map>

#include "arch/vec.hh"
#include "common/units.hh"

namespace tsm {

/** A vector-granular address within one TSP's 220 MiB SRAM. */
struct LocalAddr
{
    std::uint8_t hemisphere = 0; // [0, 2)
    std::uint8_t slice = 0;      // [0, 44)
    std::uint8_t bank = 0;       // [0, 2)
    std::uint16_t offset = 0;    // [0, 4096)

    /** Number of addressable vector words per TSP. */
    static constexpr std::uint32_t kWords =
        kHemispheres * kSlicesPerHemisphere * kBanksPerSlice * kWordsPerBank;

    /** Flatten to a dense index in [0, kWords). */
    std::uint32_t flatten() const;

    /** Inverse of flatten(). */
    static LocalAddr unflatten(std::uint32_t flat);

    /** True if all coordinates are within the tensor shape. */
    bool valid() const;

    std::string str() const;

    bool operator==(const LocalAddr &) const = default;
};

/** A vector-granular address in the global (multi-device) space. */
struct GlobalAddr
{
    std::uint32_t device = 0;
    LocalAddr local;

    /** Flatten to a dense index across an N-device system. */
    std::uint64_t flatten() const;

    static GlobalAddr unflatten(std::uint64_t flat);

    std::string str() const;

    bool operator==(const GlobalAddr &) const = default;
};

/**
 * One TSP's SRAM contents, stored sparsely (only written words occupy
 * host memory). SECDED protection is modeled as per-word error state
 * set by fault injection (runtime module) rather than as real check
 * bits.
 */
class LocalMemory
{
  public:
    /** Store a vector at `addr`, overwriting any previous contents. */
    void write(const LocalAddr &addr, VecPtr data);

    /** True if the word has been written since reset. */
    bool present(const LocalAddr &addr) const;

    /**
     * Load the vector at `addr`. Reading an unwritten word returns a
     * null payload (timing-only programs never materialize data).
     */
    VecPtr read(const LocalAddr &addr) const;

    /** Mark a word as having an uncorrectable (multi-bit) error. */
    void poison(const LocalAddr &addr);

    /** True if the word carries an uncorrectable error. */
    bool poisoned(const LocalAddr &addr) const;

    /** Drop all contents and error state. */
    void reset();

    /** Number of distinct words written. */
    std::size_t footprint() const { return words_.size(); }

  private:
    std::unordered_map<std::uint32_t, VecPtr> words_;
    std::unordered_map<std::uint32_t, bool> poisoned_;
};

} // namespace tsm

#endif // TSM_ARCH_MEM_HH
