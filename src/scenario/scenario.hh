/**
 * @file
 * The data-driven scenario DSL (`tsm-scenario-v1`).
 *
 * A scenario is a JSON document describing one complete traffic
 * experiment: the topology, the SSN policy knobs, the network seed,
 * and the traffic itself as any mix of three sources — explicit
 * `flows` (one tensor transfer each, with start cycles, tensor shapes
 * and foreground/background roles), `collectives` (lowered through
 * src/collective's transfer builders), and synthetic `patterns`
 * (lowered through workload/traffic_gen). Parsing is strict in the
 * CliParser tradition: unknown keys, out-of-range chip ids,
 * overlapping flow ids and zero-length tensors are each rejected with
 * a distinct, actionable message — a silently mis-read scenario means
 * a run measured something other than what was asked for.
 *
 * Serialization is canonical: `dumpScenario` is a pure function of
 * the IR with a fixed key order, so parse -> serialize -> parse is
 * byte-stable — the round-trip invariant tools/tsm_fuzz asserts on
 * every generated scenario.
 */

#ifndef TSM_SCENARIO_SCENARIO_HH
#define TSM_SCENARIO_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"
#include "net/topology.hh"
#include "ssn/scheduler.hh"
#include "ssn/transfer.hh"
#include "workload/traffic_gen.hh"

namespace tsm {

/** Schema identifier every scenario document must carry. */
inline constexpr const char *kScenarioSchema = "tsm-scenario-v1";

/** Which Topology builder a scenario instantiates. */
enum class ScenarioTopologyKind : std::uint8_t
{
    Node,        ///< one 8-TSP node (Topology::makeNode)
    Ring,        ///< bare ring of `size` TSPs (Topology::makeRing)
    SingleLevel, ///< single-level dragonfly of `size` nodes
    TwoLevel,    ///< two-level dragonfly of `size` racks
    System,      ///< natural topology for `size` TSPs (forSystemSize)
};

/** Topology selection, as written in the document. */
struct ScenarioTopology
{
    ScenarioTopologyKind kind = ScenarioTopologyKind::Node;

    /** Kind-dependent size; unused (0) for Node. */
    unsigned size = 0;

    NodeWiring wiring = NodeWiring::FullMesh;

    /** Instantiate the topology this selection describes. */
    Topology build() const;
};

/** Whether a flow's completion gates the scenario's figure of merit. */
enum class FlowRole : std::uint8_t
{
    Foreground, ///< counted in the foreground makespan
    Background, ///< contention only; completion not awaited
};

/**
 * Tensor size, either directly in 320-byte vectors or as a 2-D shape
 * plus dtype (vectors = ceil(rows * cols * dtypeBytes / 320)). The
 * form used in the document is preserved for canonical round-trips.
 */
struct TensorSpec
{
    std::uint32_t vectors = 0; ///< resolved size, always >= 1

    bool hasShape = false;
    std::uint64_t rows = 0;
    std::uint64_t cols = 0;
    std::string dtype; ///< "fp16" | "fp32" | "int8" (shape form only)
};

/** One explicit tensor transfer. */
struct ScenarioFlow
{
    FlowId id = kFlowInvalid;
    TspId src = kTspInvalid;
    TspId dst = kTspInvalid;
    TensorSpec tensor;

    /** Earliest injection cycle (TensorTransfer::earliest). */
    Cycle start = 0;

    FlowRole role = FlowRole::Foreground;
};

/** Collective operations a scenario can instantiate. */
enum class ScenarioCollectiveOp : std::uint8_t
{
    Broadcast,     ///< root pushes to every other TSP
    Gather,        ///< every other TSP pushes to root
    ReduceScatter, ///< stage-1 intra-node all-to-all exchange
    AllGather,     ///< stage-3 intra-node all-gather
};

/** One collective, lowered to its transfer list. */
struct ScenarioCollective
{
    ScenarioCollectiveOp op = ScenarioCollectiveOp::Broadcast;

    /** Root chip (broadcast/gather only). */
    TspId root = 0;

    /** Per-participant tensor size in vectors. */
    std::uint32_t vectors = 0;

    /** First flow id of the lowered transfer block. */
    FlowId firstFlow = 1;

    Cycle start = 0;
    FlowRole role = FlowRole::Foreground;
};

/** One synthetic traffic pattern (workload/traffic_gen). */
struct ScenarioPattern
{
    TrafficPattern kind = TrafficPattern::UniformRandom;
    std::uint32_t vectors = 0;

    /** Pattern generator seed (destination map etc.). */
    std::uint64_t seed = 1;

    /** First flow id of the lowered transfer block. */
    FlowId firstFlow = 1;

    Cycle start = 0;
    FlowRole role = FlowRole::Foreground;
};

/** A fully parsed and validated scenario document. */
struct Scenario
{
    std::string name;

    /** Network RNG seed for the run. */
    std::uint64_t seed = 1;

    /** Injected FEC multi-bit error rate per vector, in [0, 1]. */
    double mbe = 0.0;

    ScenarioTopology topology;
    SsnConfig ssn;

    std::vector<ScenarioFlow> flows;
    std::vector<ScenarioCollective> collectives;
    std::vector<ScenarioPattern> patterns;
};

/** A scenario lowered onto the scheduler's input language. */
struct LoweredScenario
{
    std::vector<TensorTransfer> transfers;

    /** Role of transfers[i], parallel to `transfers`. */
    std::vector<FlowRole> roles;

    /** Transfers carrying FlowRole::Background. */
    std::size_t backgroundTransfers() const;
};

/**
 * Lower a scenario to its transfer list: explicit flows first (in
 * document order), then collectives, then patterns. Deterministic —
 * equal scenarios lower to equal lists.
 */
LoweredScenario lowerScenario(const Scenario &scenario,
                              const Topology &topo);

/**
 * Validate a scenario beyond what parsing checks syntactically:
 * builds the topology, lowers the traffic, and checks chip-id ranges,
 * flow-id uniqueness across all three sources, and non-empty tensors.
 * Returns false with a distinct message in `*error` per defect class.
 */
bool validateScenario(const Scenario &scenario, std::string *error);

/**
 * Build a Scenario from a parsed JSON document. Strict: unknown keys,
 * wrong types, bad enum strings and failed validation all fail with a
 * message naming the offending element. On failure `out` is
 * unspecified.
 */
bool scenarioFromJson(const Json &doc, Scenario &out, std::string *error);

/** Parse JSON text into a validated Scenario. */
bool parseScenario(const std::string &text, Scenario &out,
                   std::string *error);

/** Read and parse a scenario file. */
bool loadScenarioFile(const std::string &path, Scenario &out,
                      std::string *error);

/** Serialize to the canonical JSON document (fixed key order). */
Json scenarioToJson(const Scenario &scenario);

/**
 * Canonical text form: scenarioToJson dumped with 2-space indent and
 * a trailing newline. parse(dumpScenario(s)) -> s' always satisfies
 * dumpScenario(s') == dumpScenario(s).
 */
std::string dumpScenario(const Scenario &scenario);

/** Write dumpScenario(scenario) to `path`; false on I/O failure. */
bool saveScenarioFile(const std::string &path, const Scenario &scenario,
                      std::string *error);

/// @name Enum spellings used by the document format
/// @{
const char *scenarioTopologyKindName(ScenarioTopologyKind k);
const char *flowRoleName(FlowRole r);
const char *scenarioCollectiveOpName(ScenarioCollectiveOp op);
const char *nodeWiringName(NodeWiring w);
/// @}

} // namespace tsm

#endif // TSM_SCENARIO_SCENARIO_HH
