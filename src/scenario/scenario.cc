#include "scenario/scenario.hh"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "collective/allreduce.hh"
#include "collective/primitives.hh"
#include "common/units.hh"
#include "ssn/scheduler.hh"

namespace tsm {

namespace {

/** Bytes per element of the dtypes the shape form accepts. */
int
dtypeBytes(const std::string &dtype)
{
    if (dtype == "fp16")
        return 2;
    if (dtype == "fp32")
        return 4;
    if (dtype == "int8")
        return 1;
    return 0;
}

bool
fail(std::string *error, const std::string &msg)
{
    if (error)
        *error = "scenario: " + msg;
    return false;
}

/**
 * Reject members of `obj` outside `allowed` — the first unknown key
 * fails with the element's name so the user can find the typo.
 */
bool
checkKeys(const Json &obj, const std::vector<std::string> &allowed,
          const std::string &where, std::string *error)
{
    for (const auto &[key, value] : obj.members()) {
        (void)value;
        if (std::find(allowed.begin(), allowed.end(), key) ==
            allowed.end())
            return fail(error,
                        "unknown key \"" + key + "\" in " + where);
    }
    return true;
}

bool
requireObject(const Json &v, const std::string &where, std::string *error)
{
    if (v.kind() != Json::Kind::Object)
        return fail(error, where + " must be a JSON object");
    return true;
}

/** Read a required non-negative integer member. */
bool
readUint(const Json &obj, const std::string &key, const std::string &where,
         std::uint64_t &out, std::string *error)
{
    if (!obj.has(key))
        return fail(error, where + " is missing required key \"" + key +
                               "\"");
    const Json &v = obj[key];
    if (v.kind() != Json::Kind::Int || v.integer() < 0)
        return fail(error, where + " key \"" + key +
                               "\" must be a non-negative integer");
    out = std::uint64_t(v.integer());
    return true;
}

/** Read an optional non-negative integer member (default untouched). */
bool
readOptUint(const Json &obj, const std::string &key,
            const std::string &where, std::uint64_t &out,
            std::string *error)
{
    if (!obj.has(key))
        return true;
    const Json &v = obj[key];
    if (v.kind() != Json::Kind::Int || v.integer() < 0)
        return fail(error, where + " key \"" + key +
                               "\" must be a non-negative integer");
    out = std::uint64_t(v.integer());
    return true;
}

bool
readOptString(const Json &obj, const std::string &key,
              const std::string &where, std::string &out,
              std::string *error)
{
    if (!obj.has(key))
        return true;
    const Json &v = obj[key];
    if (v.kind() != Json::Kind::String)
        return fail(error,
                    where + " key \"" + key + "\" must be a string");
    out = v.str();
    return true;
}

bool
parseRole(const Json &obj, const std::string &where, FlowRole &out,
          std::string *error)
{
    std::string role;
    if (!readOptString(obj, "role", where, role, error))
        return false;
    if (role.empty() || role == "foreground")
        out = FlowRole::Foreground;
    else if (role == "background")
        out = FlowRole::Background;
    else
        return fail(error, where + " role \"" + role +
                               "\" is not \"foreground\" or "
                               "\"background\"");
    return true;
}

bool
parseTensor(const Json &v, const std::string &where, TensorSpec &out,
            std::string *error)
{
    if (!requireObject(v, where, error))
        return false;
    if (!checkKeys(v, {"vectors", "shape", "dtype"}, where, error))
        return false;

    const bool hasVectors = v.has("vectors");
    const bool hasShape = v.has("shape");
    if (hasVectors && hasShape)
        return fail(error, where + " has both \"vectors\" and \"shape\" "
                                   "— give exactly one");
    if (!hasVectors && !hasShape)
        return fail(error, where + " needs either \"vectors\" or "
                                   "\"shape\"");

    if (hasVectors) {
        std::uint64_t vectors = 0;
        if (!readUint(v, "vectors", where, vectors, error))
            return false;
        if (vectors == 0)
            return fail(error, where + " resolves to a zero-length "
                                       "tensor (vectors must be >= 1)");
        if (vectors > 0xffffffffull)
            return fail(error, where + " vectors exceeds 2^32-1");
        if (v.has("dtype"))
            return fail(error, where + " gives \"dtype\" without "
                                       "\"shape\"");
        out.vectors = std::uint32_t(vectors);
        out.hasShape = false;
        return true;
    }

    const Json &shape = v["shape"];
    if (shape.kind() != Json::Kind::Array || shape.size() != 2)
        return fail(error, where + " shape must be a [rows, cols] "
                                   "array");
    for (std::size_t i = 0; i < 2; ++i)
        if (shape.at(i).kind() != Json::Kind::Int ||
            shape.at(i).integer() < 0)
            return fail(error, where + " shape dimensions must be "
                                       "non-negative integers");
    out.rows = std::uint64_t(shape.at(0).integer());
    out.cols = std::uint64_t(shape.at(1).integer());
    out.dtype = "fp16";
    if (!readOptString(v, "dtype", where, out.dtype, error))
        return false;
    const int elem = dtypeBytes(out.dtype);
    if (elem == 0)
        return fail(error, where + " dtype \"" + out.dtype +
                               "\" is not one of fp16/fp32/int8");
    if (out.rows == 0 || out.cols == 0)
        return fail(error, where + " resolves to a zero-length tensor "
                                   "(shape dimensions must be >= 1)");
    const std::uint64_t bytes = out.rows * out.cols * std::uint64_t(elem);
    const std::uint64_t vectors =
        (bytes + kVectorBytes - 1) / kVectorBytes;
    if (vectors > 0xffffffffull)
        return fail(error, where + " shape exceeds 2^32-1 vectors");
    out.vectors = std::uint32_t(vectors);
    out.hasShape = true;
    return true;
}

bool
parseTopology(const Json &v, ScenarioTopology &out, std::string *error)
{
    const std::string where = "topology";
    if (!requireObject(v, where, error))
        return false;
    if (!checkKeys(v, {"kind", "size", "wiring"}, where, error))
        return false;

    std::string kind = "node";
    if (!readOptString(v, "kind", where, kind, error))
        return false;
    std::uint64_t size = 0;
    if (!readOptUint(v, "size", where, size, error))
        return false;

    if (kind == "node") {
        out.kind = ScenarioTopologyKind::Node;
        if (v.has("size") && size != 8)
            return fail(error, "topology kind \"node\" is always 8 "
                               "TSPs — drop \"size\" or use another "
                               "kind");
    } else if (kind == "ring") {
        out.kind = ScenarioTopologyKind::Ring;
        if (size < 3 || size > 64)
            return fail(error, "topology kind \"ring\" needs size in "
                               "3..64 TSPs");
    } else if (kind == "single_level") {
        out.kind = ScenarioTopologyKind::SingleLevel;
        if (size < 1 || size > 33)
            return fail(error, "topology kind \"single_level\" needs "
                               "size in 1..33 nodes");
    } else if (kind == "two_level") {
        out.kind = ScenarioTopologyKind::TwoLevel;
        if (size < 2 || size > 145)
            return fail(error, "topology kind \"two_level\" needs size "
                               "in 2..145 racks");
    } else if (kind == "system") {
        out.kind = ScenarioTopologyKind::System;
        if (size < 1 || size > 10440)
            return fail(error, "topology kind \"system\" needs size in "
                               "1..10440 TSPs");
    } else {
        return fail(error, "topology kind \"" + kind +
                               "\" is not one of "
                               "node/ring/single_level/two_level/"
                               "system");
    }
    out.size = unsigned(size);

    std::string wiring = "full_mesh";
    if (!readOptString(v, "wiring", where, wiring, error))
        return false;
    if (wiring == "full_mesh")
        out.wiring = NodeWiring::FullMesh;
    else if (wiring == "triple_ring")
        out.wiring = NodeWiring::TripleRing;
    else
        return fail(error, "topology wiring \"" + wiring +
                               "\" is not \"full_mesh\" or "
                               "\"triple_ring\"");
    return true;
}

bool
parseSsn(const Json &v, SsnConfig &out, std::string *error)
{
    const std::string where = "ssn";
    if (!requireObject(v, where, error))
        return false;
    if (!checkKeys(v, {"max_extra_hops", "max_paths", "load_balance"},
                   where, error))
        return false;
    std::uint64_t extra = out.maxExtraHops, paths = out.maxPaths;
    if (!readOptUint(v, "max_extra_hops", where, extra, error) ||
        !readOptUint(v, "max_paths", where, paths, error))
        return false;
    if (extra > 4)
        return fail(error, "ssn max_extra_hops must be <= 4");
    if (paths < 1 || paths > 64)
        return fail(error, "ssn max_paths must be in 1..64");
    out.maxExtraHops = unsigned(extra);
    out.maxPaths = unsigned(paths);
    if (v.has("load_balance")) {
        if (v["load_balance"].kind() != Json::Kind::Bool)
            return fail(error, "ssn load_balance must be a boolean");
        out.loadBalance = v["load_balance"].boolean();
    }
    return true;
}

bool
parseFlow(const Json &v, std::size_t index, ScenarioFlow &out,
          std::string *error)
{
    std::ostringstream ws;
    ws << "flow[" << index << "]";
    const std::string where = ws.str();
    if (!requireObject(v, where, error))
        return false;
    if (!checkKeys(v, {"id", "src", "dst", "tensor", "start", "role"},
                   where, error))
        return false;

    std::uint64_t id = 0, src = 0, dst = 0, start = 0;
    if (!readUint(v, "id", where, id, error) ||
        !readUint(v, "src", where, src, error) ||
        !readUint(v, "dst", where, dst, error) ||
        !readOptUint(v, "start", where, start, error))
        return false;
    if (id == 0 || id >= kFlowSyncToken)
        return fail(error, where + " id must be in 1.." +
                               std::to_string(kFlowSyncToken - 1) +
                               " (0 and the reserved top ids are not "
                               "schedulable)");
    if (!v.has("tensor"))
        return fail(error, where + " is missing required key "
                                   "\"tensor\"");
    if (!parseTensor(v["tensor"], where + " tensor", out.tensor, error))
        return false;
    if (!parseRole(v, where, out.role, error))
        return false;
    out.id = FlowId(id);
    out.src = TspId(src);
    out.dst = TspId(dst);
    out.start = Cycle(start);
    return true;
}

bool
parseCollective(const Json &v, std::size_t index, ScenarioCollective &out,
                std::string *error)
{
    std::ostringstream ws;
    ws << "collective[" << index << "]";
    const std::string where = ws.str();
    if (!requireObject(v, where, error))
        return false;
    if (!checkKeys(v,
                   {"op", "root", "vectors", "first_flow", "start",
                    "role"},
                   where, error))
        return false;

    std::string op;
    if (!readOptString(v, "op", where, op, error))
        return false;
    if (op == "broadcast")
        out.op = ScenarioCollectiveOp::Broadcast;
    else if (op == "gather")
        out.op = ScenarioCollectiveOp::Gather;
    else if (op == "reduce_scatter")
        out.op = ScenarioCollectiveOp::ReduceScatter;
    else if (op == "all_gather")
        out.op = ScenarioCollectiveOp::AllGather;
    else
        return fail(error, where + " op \"" + op +
                               "\" is not one of broadcast/gather/"
                               "reduce_scatter/all_gather");

    std::uint64_t root = 0, vectors = 0, first = 1, start = 0;
    if (!readOptUint(v, "root", where, root, error) ||
        !readUint(v, "vectors", where, vectors, error) ||
        !readOptUint(v, "first_flow", where, first, error) ||
        !readOptUint(v, "start", where, start, error))
        return false;
    if (vectors == 0)
        return fail(error, where + " resolves to a zero-length tensor "
                                   "(vectors must be >= 1)");
    if (first == 0 || first >= kFlowSyncToken)
        return fail(error, where + " first_flow must be in 1.." +
                               std::to_string(kFlowSyncToken - 1));
    if (!parseRole(v, where, out.role, error))
        return false;
    out.root = TspId(root);
    out.vectors = std::uint32_t(vectors);
    out.firstFlow = FlowId(first);
    out.start = Cycle(start);
    return true;
}

bool
parsePattern(const Json &v, std::size_t index, ScenarioPattern &out,
             std::string *error)
{
    std::ostringstream ws;
    ws << "pattern[" << index << "]";
    const std::string where = ws.str();
    if (!requireObject(v, where, error))
        return false;
    if (!checkKeys(v,
                   {"kind", "vectors", "seed", "first_flow", "start",
                    "role"},
                   where, error))
        return false;

    std::string kind;
    if (!readOptString(v, "kind", where, kind, error))
        return false;
    bool found = false;
    for (TrafficPattern p : allTrafficPatterns()) {
        if (kind == trafficPatternName(p)) {
            out.kind = p;
            found = true;
            break;
        }
    }
    if (!found)
        return fail(error, where + " kind \"" + kind +
                               "\" is not a known traffic pattern "
                               "(uniform-random, permutation, "
                               "bit-complement, transpose, "
                               "nearest-neighbor, all-to-one, "
                               "one-to-all)");

    std::uint64_t vectors = 0, seed = 1, first = 1, start = 0;
    if (!readUint(v, "vectors", where, vectors, error) ||
        !readOptUint(v, "seed", where, seed, error) ||
        !readOptUint(v, "first_flow", where, first, error) ||
        !readOptUint(v, "start", where, start, error))
        return false;
    if (vectors == 0)
        return fail(error, where + " resolves to a zero-length tensor "
                                   "(vectors must be >= 1)");
    if (first == 0 || first >= kFlowSyncToken)
        return fail(error, where + " first_flow must be in 1.." +
                               std::to_string(kFlowSyncToken - 1));
    if (!parseRole(v, where, out.role, error))
        return false;
    out.vectors = std::uint32_t(vectors);
    out.seed = seed;
    out.firstFlow = FlowId(first);
    out.start = Cycle(start);
    return true;
}

Json
tensorToJson(const TensorSpec &t)
{
    Json v = Json::object();
    if (t.hasShape) {
        Json shape = Json::array();
        shape.push(Json(std::uint64_t(t.rows)));
        shape.push(Json(std::uint64_t(t.cols)));
        v.set("shape", std::move(shape));
        v.set("dtype", t.dtype);
    } else {
        v.set("vectors", Json(std::uint64_t(t.vectors)));
    }
    return v;
}

} // namespace

const char *
scenarioTopologyKindName(ScenarioTopologyKind k)
{
    switch (k) {
      case ScenarioTopologyKind::Node: return "node";
      case ScenarioTopologyKind::Ring: return "ring";
      case ScenarioTopologyKind::SingleLevel: return "single_level";
      case ScenarioTopologyKind::TwoLevel: return "two_level";
      case ScenarioTopologyKind::System: return "system";
    }
    return "?";
}

const char *
flowRoleName(FlowRole r)
{
    return r == FlowRole::Background ? "background" : "foreground";
}

const char *
scenarioCollectiveOpName(ScenarioCollectiveOp op)
{
    switch (op) {
      case ScenarioCollectiveOp::Broadcast: return "broadcast";
      case ScenarioCollectiveOp::Gather: return "gather";
      case ScenarioCollectiveOp::ReduceScatter: return "reduce_scatter";
      case ScenarioCollectiveOp::AllGather: return "all_gather";
    }
    return "?";
}

const char *
nodeWiringName(NodeWiring w)
{
    return w == NodeWiring::TripleRing ? "triple_ring" : "full_mesh";
}

Topology
ScenarioTopology::build() const
{
    switch (kind) {
      case ScenarioTopologyKind::Node:
        return Topology::makeNode(wiring);
      case ScenarioTopologyKind::Ring:
        return Topology::makeRing(size);
      case ScenarioTopologyKind::SingleLevel:
        return Topology::makeSingleLevel(size, wiring);
      case ScenarioTopologyKind::TwoLevel:
        return Topology::makeTwoLevel(size, wiring);
      case ScenarioTopologyKind::System:
        return Topology::forSystemSize(size);
    }
    return Topology::makeNode();
}

std::size_t
LoweredScenario::backgroundTransfers() const
{
    std::size_t n = 0;
    for (FlowRole r : roles)
        if (r == FlowRole::Background)
            ++n;
    return n;
}

LoweredScenario
lowerScenario(const Scenario &scenario, const Topology &topo)
{
    LoweredScenario out;
    auto append = [&out](std::vector<TensorTransfer> transfers,
                         FlowRole role) {
        for (auto &t : transfers) {
            out.transfers.push_back(t);
            out.roles.push_back(role);
        }
    };

    for (const ScenarioFlow &f : scenario.flows) {
        TensorTransfer t;
        t.flow = f.id;
        t.src = f.src;
        t.dst = f.dst;
        t.vectors = f.tensor.vectors;
        t.earliest = f.start;
        out.transfers.push_back(t);
        out.roles.push_back(f.role);
    }

    for (const ScenarioCollective &c : scenario.collectives) {
        switch (c.op) {
          case ScenarioCollectiveOp::Broadcast:
            append(broadcastTransfers(topo, c.root, c.vectors,
                                      c.firstFlow, c.start),
                   c.role);
            break;
          case ScenarioCollectiveOp::Gather:
            append(gatherTransfers(topo, c.root, c.vectors, c.firstFlow,
                                   c.start),
                   c.role);
            break;
          case ScenarioCollectiveOp::ReduceScatter:
            append(HierarchicalAllReduce(topo).reduceScatterTransfers(
                       Bytes(c.vectors) * kVectorBytes, c.firstFlow,
                       c.start),
                   c.role);
            break;
          case ScenarioCollectiveOp::AllGather:
            append(HierarchicalAllReduce(topo).allGatherTransfers(
                       Bytes(c.vectors) * kVectorBytes, c.firstFlow,
                       c.start),
                   c.role);
            break;
        }
    }

    for (const ScenarioPattern &p : scenario.patterns) {
        auto transfers =
            generateTraffic(topo, p.kind, p.vectors, p.seed);
        for (auto &t : transfers) {
            t.flow = p.firstFlow + (t.flow - 1);
            t.earliest = p.start;
        }
        append(std::move(transfers), p.role);
    }

    return out;
}

bool
validateScenario(const Scenario &scenario, std::string *error)
{
    if (scenario.mbe < 0.0 || scenario.mbe > 1.0)
        return fail(error, "mbe must be in [0, 1]");

    const bool nodeBased =
        scenario.topology.kind != ScenarioTopologyKind::Ring;
    for (std::size_t i = 0; i < scenario.collectives.size(); ++i) {
        const auto &c = scenario.collectives[i];
        if (!nodeBased &&
            (c.op == ScenarioCollectiveOp::ReduceScatter ||
             c.op == ScenarioCollectiveOp::AllGather)) {
            std::ostringstream ws;
            ws << "collective[" << i << "] op "
               << scenarioCollectiveOpName(c.op)
               << " needs a node-based topology (not a ring)";
            return fail(error, ws.str());
        }
    }

    const Topology topo = scenario.topology.build();
    const unsigned n = topo.numTsps();
    if (n < 2)
        return fail(error, "topology has fewer than 2 TSPs — nothing "
                           "to transfer");

    for (std::size_t i = 0; i < scenario.flows.size(); ++i) {
        const ScenarioFlow &f = scenario.flows[i];
        std::ostringstream ws;
        ws << "flow[" << i << "]";
        if (f.src >= n)
            return fail(error, ws.str() + " src chip " +
                                   std::to_string(f.src) +
                                   " out of range for topology \"" +
                                   topo.describe() + "\" (" +
                                   std::to_string(n) + " TSPs)");
        if (f.dst >= n)
            return fail(error, ws.str() + " dst chip " +
                                   std::to_string(f.dst) +
                                   " out of range for topology \"" +
                                   topo.describe() + "\" (" +
                                   std::to_string(n) + " TSPs)");
        if (f.src == f.dst)
            return fail(error, ws.str() + " src == dst (chip " +
                                   std::to_string(f.src) +
                                   ") — data never crosses a link");
    }
    for (std::size_t i = 0; i < scenario.collectives.size(); ++i) {
        const auto &c = scenario.collectives[i];
        if (c.root >= n) {
            std::ostringstream ws;
            ws << "collective[" << i << "] root chip " << c.root
               << " out of range (" << n << " TSPs)";
            return fail(error, ws.str());
        }
    }

    const LoweredScenario lowered = lowerScenario(scenario, topo);
    std::map<FlowId, std::size_t> seen;
    for (std::size_t i = 0; i < lowered.transfers.size(); ++i) {
        const FlowId id = lowered.transfers[i].flow;
        auto [it, fresh] = seen.emplace(id, i);
        if (!fresh) {
            std::ostringstream ws;
            ws << "flow id " << id << " is used twice (transfers "
               << it->second << " and " << i
               << " after lowering) — explicit flows, collectives and "
                  "patterns must use disjoint id ranges";
            return fail(error, ws.str());
        }
    }

    // Finally, dry-run the SSN compile: the machine's stream-register
    // buffering is finite, so a schedulable transfer set can still
    // oversubscribe a chip's forwarding capacity. Catching it here
    // turns a simulator panic into a parse-time diagnosis.
    SsnScheduler scheduler(topo, scenario.ssn);
    const NetworkSchedule sched = scheduler.schedule(lowered.transfers);
    ProgramSet programs;
    std::string capacity;
    if (!tryBuildPrograms(sched, topo, {}, {}, programs, &capacity))
        return fail(error, "traffic oversubscribes the machine (" +
                               capacity +
                               ") — reduce vectors, spread start "
                               "cycles, or stagger flows");
    return true;
}

bool
scenarioFromJson(const Json &doc, Scenario &out, std::string *error)
{
    out = Scenario{};
    if (!requireObject(doc, "document", error))
        return false;
    if (!checkKeys(doc,
                   {"schema", "name", "seed", "mbe", "topology", "ssn",
                    "flows", "collectives", "patterns"},
                   "document", error))
        return false;

    if (!doc.has("schema"))
        return fail(error, "document is missing required key "
                           "\"schema\"");
    if (doc["schema"].kind() != Json::Kind::String ||
        doc["schema"].str() != kScenarioSchema)
        return fail(error,
                    "schema is \"" +
                        (doc["schema"].kind() == Json::Kind::String
                             ? doc["schema"].str()
                             : std::string("<not a string>")) +
                        "\", expected \"" + std::string(kScenarioSchema) +
                        "\"");

    if (!readOptString(doc, "name", "document", out.name, error))
        return false;
    if (out.name.empty())
        return fail(error, "document needs a non-empty \"name\"");
    if (!readOptUint(doc, "seed", "document", out.seed, error))
        return false;
    if (doc.has("mbe")) {
        if (!doc["mbe"].isNumber())
            return fail(error, "mbe must be a number in [0, 1]");
        out.mbe = doc["mbe"].number();
    }

    if (doc.has("topology") &&
        !parseTopology(doc["topology"], out.topology, error))
        return false;
    if (doc.has("ssn") && !parseSsn(doc["ssn"], out.ssn, error))
        return false;

    for (const char *listKey : {"flows", "collectives", "patterns"}) {
        if (!doc.has(listKey))
            continue;
        const Json &list = doc[listKey];
        if (list.kind() != Json::Kind::Array)
            return fail(error, std::string("\"") + listKey +
                                   "\" must be an array");
        for (std::size_t i = 0; i < list.size(); ++i) {
            if (listKey == std::string("flows")) {
                ScenarioFlow f;
                if (!parseFlow(list.at(i), i, f, error))
                    return false;
                out.flows.push_back(std::move(f));
            } else if (listKey == std::string("collectives")) {
                ScenarioCollective c;
                if (!parseCollective(list.at(i), i, c, error))
                    return false;
                out.collectives.push_back(std::move(c));
            } else {
                ScenarioPattern p;
                if (!parsePattern(list.at(i), i, p, error))
                    return false;
                out.patterns.push_back(std::move(p));
            }
        }
    }

    if (out.flows.empty() && out.collectives.empty() &&
        out.patterns.empty())
        return fail(error, "document declares no traffic — give at "
                           "least one flow, collective or pattern");

    return validateScenario(out, error);
}

bool
parseScenario(const std::string &text, Scenario &out, std::string *error)
{
    std::string jsonError;
    const Json doc = Json::parse(text, &jsonError);
    if (doc.isNull() && !jsonError.empty())
        return fail(error, "invalid JSON: " + jsonError);
    return scenarioFromJson(doc, out, error);
}

bool
loadScenarioFile(const std::string &path, Scenario &out,
                 std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return fail(error, "cannot open \"" + path + "\"");
    std::ostringstream text;
    text << in.rdbuf();
    if (!parseScenario(text.str(), out, error))
        return false;
    if (error)
        error->clear();
    return true;
}

Json
scenarioToJson(const Scenario &scenario)
{
    Json doc = Json::object();
    doc.set("schema", kScenarioSchema);
    doc.set("name", scenario.name);
    doc.set("seed", Json(scenario.seed));
    doc.set("mbe", Json(scenario.mbe));

    Json topo = Json::object();
    topo.set("kind", scenarioTopologyKindName(scenario.topology.kind));
    if (scenario.topology.kind != ScenarioTopologyKind::Node)
        topo.set("size", Json(std::uint64_t(scenario.topology.size)));
    topo.set("wiring", nodeWiringName(scenario.topology.wiring));
    doc.set("topology", std::move(topo));

    Json ssn = Json::object();
    ssn.set("max_extra_hops",
            Json(std::uint64_t(scenario.ssn.maxExtraHops)));
    ssn.set("max_paths", Json(std::uint64_t(scenario.ssn.maxPaths)));
    ssn.set("load_balance", Json(scenario.ssn.loadBalance));
    doc.set("ssn", std::move(ssn));

    if (!scenario.flows.empty()) {
        Json flows = Json::array();
        for (const ScenarioFlow &f : scenario.flows) {
            Json v = Json::object();
            v.set("id", Json(std::uint64_t(f.id)));
            v.set("src", Json(std::uint64_t(f.src)));
            v.set("dst", Json(std::uint64_t(f.dst)));
            v.set("tensor", tensorToJson(f.tensor));
            v.set("start", Json(std::uint64_t(f.start)));
            v.set("role", flowRoleName(f.role));
            flows.push(std::move(v));
        }
        doc.set("flows", std::move(flows));
    }

    if (!scenario.collectives.empty()) {
        Json collectives = Json::array();
        for (const ScenarioCollective &c : scenario.collectives) {
            Json v = Json::object();
            v.set("op", scenarioCollectiveOpName(c.op));
            if (c.op == ScenarioCollectiveOp::Broadcast ||
                c.op == ScenarioCollectiveOp::Gather)
                v.set("root", Json(std::uint64_t(c.root)));
            v.set("vectors", Json(std::uint64_t(c.vectors)));
            v.set("first_flow", Json(std::uint64_t(c.firstFlow)));
            v.set("start", Json(std::uint64_t(c.start)));
            v.set("role", flowRoleName(c.role));
            collectives.push(std::move(v));
        }
        doc.set("collectives", std::move(collectives));
    }

    if (!scenario.patterns.empty()) {
        Json patterns = Json::array();
        for (const ScenarioPattern &p : scenario.patterns) {
            Json v = Json::object();
            v.set("kind", trafficPatternName(p.kind));
            v.set("vectors", Json(std::uint64_t(p.vectors)));
            v.set("seed", Json(p.seed));
            v.set("first_flow", Json(std::uint64_t(p.firstFlow)));
            v.set("start", Json(std::uint64_t(p.start)));
            v.set("role", flowRoleName(p.role));
            patterns.push(std::move(v));
        }
        doc.set("patterns", std::move(patterns));
    }

    return doc;
}

std::string
dumpScenario(const Scenario &scenario)
{
    return scenarioToJson(scenario).dump(2) + "\n";
}

bool
saveScenarioFile(const std::string &path, const Scenario &scenario,
                 std::string *error)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return fail(error, "cannot write \"" + path + "\"");
    out << dumpScenario(scenario);
    out.flush();
    if (!out)
        return fail(error, "write to \"" + path + "\" failed");
    return true;
}

} // namespace tsm
