tsm_module(scenario
    scenario.cc
    runner.cc
    generator.cc
)
