#include "scenario/runner.hh"

#include <sstream>

#include "common/format.hh"
#include "hostprof/hostprof.hh"
#include "prof/blame.hh"
#include "prof/lanes.hh"
#include "prof/report.hh"
#include "telemetry/progress.hh"
#include "telemetry/timeline.hh"
#include "trace/journal.hh"

namespace tsm {

namespace {

Cycle
foregroundMakespan(const NetworkSchedule &sched,
                   const LoweredScenario &lowered)
{
    Cycle fg = 0;
    for (std::size_t i = 0; i < lowered.transfers.size(); ++i) {
        if (lowered.roles[i] != FlowRole::Foreground)
            continue;
        fg = std::max(fg,
                      sched.flowCompletion(lowered.transfers[i].flow));
    }
    return fg;
}

} // namespace

ScenarioRunResult
runScenario(TraceSession &session, const Scenario &scenario,
            const ScenarioOverrides &overrides)
{
    const std::uint64_t seed = overrides.seed.value_or(scenario.seed);
    const double mbe = overrides.mbe.value_or(scenario.mbe);

    const Topology topo = scenario.topology.build();
    const LoweredScenario lowered = lowerScenario(scenario, topo);

    ScenarioRunResult result;
    result.traced =
        runScheduledScenario(session, topo, lowered.transfers,
                             scenario.name, seed, mbe, scenario.ssn);
    result.makespan = result.traced.schedule.makespan;
    result.foregroundMakespan =
        foregroundMakespan(result.traced.schedule, lowered);
    result.transfers = lowered.transfers.size();
    result.backgroundTransfers = lowered.backgroundTransfers();
    return result;
}

bool
ScenarioExecution::allSpansClosed() const
{
    for (const auto &[span, record] : transfers) {
        (void)span;
        if (!record.closed)
            return false;
    }
    return true;
}

bool
ScenarioExecution::waterfallsExact() const
{
    if (transfers.size() != expectedSpans)
        return false;
    for (const auto &[span, record] : transfers) {
        (void)span;
        if (!record.closed || record.stagesPs() != record.totalPs())
            return false;
    }
    return true;
}

bool
ScenarioExecution::blameExact(std::string *why) const
{
    if (!checkBlameExactness(blame, why))
        return false;
    // Reconcile per-link blamed waits against the profiler's
    // independently kept queue-delay histograms: same pairing rule,
    // different bookkeeping, so any drift is a real bug.
    std::map<LinkId, Tick> blamed;
    if (blame["links"].kind() == Json::Kind::Array)
        for (const Json &l : blame["links"].items())
            blamed[LinkId(l["id"].integer())] =
                Tick(l["wait_ps"].integer());
    for (const auto &[link, ps] : linkQueueDelayPs) {
        const auto it = blamed.find(link);
        const Tick got = it == blamed.end() ? 0 : it->second;
        if (got != ps) {
            if (why)
                *why = format("link {}: blamed wait {} ps != profiler "
                              "queue delay {} ps",
                              link, got, ps);
            return false;
        }
    }
    for (const auto &[link, ps] : blamed) {
        if (ps != 0 && !linkQueueDelayPs.count(link)) {
            if (why)
                *why = format("link {}: blame names {} ps the profiler "
                              "never saw",
                              link, ps);
            return false;
        }
    }
    return true;
}

bool
ScenarioExecution::lanesReconcile(std::string *why) const
{
    return checkLanesInvariants(lanes, why);
}

ScenarioExecution
executeScenario(const Scenario &scenario,
                const ScenarioOverrides &overrides, HostProfiler *hostprof)
{
    const std::uint64_t seed = overrides.seed.value_or(scenario.seed);
    const double mbe = overrides.mbe.value_or(scenario.mbe);

    const Topology topo = scenario.topology.build();
    const LoweredScenario lowered = lowerScenario(scenario, topo);

    std::ostringstream journalText;
    JournalSink journal(journalText);
    ProfilerSink profiler;
    BlameCollector blame;
    blame.setBench(scenario.name);
    blame.setSeed(seed);
    LaneCollector lanes;
    lanes.setBench(scenario.name);
    lanes.setSeed(seed);

    if (hostprof) {
        hostprof->setBench(scenario.name);
        hostprof->setSeed(seed);
    }
    TraceSession inactive;
    const TracedScenarioResult traced = runScheduledScenario(
        inactive, topo, lowered.transfers, scenario.name, seed, mbe,
        scenario.ssn, {&journal, &profiler, &blame.sink()}, hostprof,
        &lanes);
    blame.setSchedule(traced.schedule, topo);

    ScenarioExecution exec;
    exec.journal = journalText.str();
    exec.transfers = profiler.transfers();
    exec.blame = blame.report();
    exec.blameText = exec.blame.dump(2);
    exec.lanes = lanes.report();
    exec.lanesText = exec.lanes.dump(2);
    for (const auto &[link, acct] : profiler.links()) {
        (void)acct;
        if (const Log2Histogram *h = profiler.queueDelay(link))
            exec.linkQueueDelayPs[link] = Tick(h->sum());
    }
    for (const TensorTransfer &t : lowered.transfers)
        exec.expectedSpans += t.vectors;
    exec.makespan = traced.schedule.makespan;
    exec.flitsDelivered = traced.flitsDelivered;
    return exec;
}

} // namespace tsm
