#include "scenario/runner.hh"

#include <sstream>

#include "hostprof/hostprof.hh"
#include "prof/report.hh"
#include "telemetry/progress.hh"
#include "telemetry/timeline.hh"
#include "trace/journal.hh"

namespace tsm {

namespace {

Cycle
foregroundMakespan(const NetworkSchedule &sched,
                   const LoweredScenario &lowered)
{
    Cycle fg = 0;
    for (std::size_t i = 0; i < lowered.transfers.size(); ++i) {
        if (lowered.roles[i] != FlowRole::Foreground)
            continue;
        fg = std::max(fg,
                      sched.flowCompletion(lowered.transfers[i].flow));
    }
    return fg;
}

} // namespace

ScenarioRunResult
runScenario(TraceSession &session, const Scenario &scenario,
            const ScenarioOverrides &overrides)
{
    const std::uint64_t seed = overrides.seed.value_or(scenario.seed);
    const double mbe = overrides.mbe.value_or(scenario.mbe);

    const Topology topo = scenario.topology.build();
    const LoweredScenario lowered = lowerScenario(scenario, topo);

    ScenarioRunResult result;
    result.traced =
        runScheduledScenario(session, topo, lowered.transfers,
                             scenario.name, seed, mbe, scenario.ssn);
    result.makespan = result.traced.schedule.makespan;
    result.foregroundMakespan =
        foregroundMakespan(result.traced.schedule, lowered);
    result.transfers = lowered.transfers.size();
    result.backgroundTransfers = lowered.backgroundTransfers();
    return result;
}

bool
ScenarioExecution::allSpansClosed() const
{
    for (const auto &[span, record] : transfers) {
        (void)span;
        if (!record.closed)
            return false;
    }
    return true;
}

bool
ScenarioExecution::waterfallsExact() const
{
    if (transfers.size() != expectedSpans)
        return false;
    for (const auto &[span, record] : transfers) {
        (void)span;
        if (!record.closed || record.stagesPs() != record.totalPs())
            return false;
    }
    return true;
}

ScenarioExecution
executeScenario(const Scenario &scenario,
                const ScenarioOverrides &overrides, HostProfiler *hostprof)
{
    const std::uint64_t seed = overrides.seed.value_or(scenario.seed);
    const double mbe = overrides.mbe.value_or(scenario.mbe);

    const Topology topo = scenario.topology.build();
    const LoweredScenario lowered = lowerScenario(scenario, topo);

    std::ostringstream journalText;
    JournalSink journal(journalText);
    ProfilerSink profiler;

    if (hostprof) {
        hostprof->setBench(scenario.name);
        hostprof->setSeed(seed);
    }
    TraceSession inactive;
    const TracedScenarioResult traced = runScheduledScenario(
        inactive, topo, lowered.transfers, scenario.name, seed, mbe,
        scenario.ssn, {&journal, &profiler}, hostprof);

    ScenarioExecution exec;
    exec.journal = journalText.str();
    exec.transfers = profiler.transfers();
    for (const TensorTransfer &t : lowered.transfers)
        exec.expectedSpans += t.vectors;
    exec.makespan = traced.schedule.makespan;
    exec.flitsDelivered = traced.flitsDelivered;
    return exec;
}

} // namespace tsm
