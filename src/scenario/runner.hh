/**
 * @file
 * Executing a parsed Scenario on the simulated machine.
 *
 * Two entry points share the same lowering and execution path:
 *
 *  - runScenario() drives a TraceSession, exposing the full
 *    instrumentation flag set (--trace/--report/--journal/--timeline/
 *    --progress) to scenario-driven bench binaries — a bench becomes
 *    a thin loader: parse the file, run it, print the result.
 *
 *  - executeScenario() runs headless and captures the canonical
 *    journal text, the per-transfer waterfalls, the tsm-blame-v1
 *    contention attribution, and the tsm-parallel-v1 concurrency
 *    profile in memory. This is the fuzzer's oracle: run a scenario
 *    twice and the two journals (and blame and lanes documents) must
 *    be byte-identical; every waterfall must tile its transfer's
 *    observed latency exactly; every blame breakdown must sum to its
 *    wait exactly; every lane and phase count must reconcile with the
 *    live event total exactly.
 */

#ifndef TSM_SCENARIO_RUNNER_HH
#define TSM_SCENARIO_RUNNER_HH

#include <map>
#include <optional>
#include <string>

#include "common/json.hh"
#include "prof/profiler.hh"
#include "runtime/traced_scenario.hh"
#include "scenario/scenario.hh"

namespace tsm {

/** Per-run knobs that override what the scenario document says. */
struct ScenarioOverrides
{
    std::optional<std::uint64_t> seed;
    std::optional<double> mbe;
};

/** Outcome of one scenario run through a TraceSession. */
struct ScenarioRunResult
{
    TracedScenarioResult traced;

    /** Cycle by which every transfer (any role) has arrived. */
    Cycle makespan = 0;

    /** Cycle by which every *foreground* transfer has arrived. */
    Cycle foregroundMakespan = 0;

    std::size_t transfers = 0;
    std::size_t backgroundTransfers = 0;
};

/**
 * Lower and execute `scenario` with the session's sinks attached.
 * The session's collectors are stamped with the scenario name and
 * the effective seed.
 */
ScenarioRunResult runScenario(TraceSession &session,
                              const Scenario &scenario,
                              const ScenarioOverrides &overrides = {});

/** What executeScenario captured. */
struct ScenarioExecution
{
    /** Canonical tsm-journal-v1 text of the full trace stream. */
    std::string journal;

    /** Per-transfer waterfalls keyed by parent span id. */
    std::map<SpanId, TransferRecord> transfers;

    /** The tsm-blame-v1 contention attribution document. */
    Json blame;

    /** Canonical serialized blame text (byte-identity oracle). */
    std::string blameText;

    /** The tsm-parallel-v1 concurrency profile document. */
    Json lanes;

    /** Canonical serialized lanes text (byte-identity oracle). */
    std::string lanesText;

    /** Per-link receive queue-delay sums from the profiler (ps). */
    std::map<LinkId, Tick> linkQueueDelayPs;

    /** Vectors the lowered transfer set moves (expected span count). */
    std::uint64_t expectedSpans = 0;

    Cycle makespan = 0;
    std::uint64_t flitsDelivered = 0;

    /** True if every transfer span opened was also closed. */
    bool allSpansClosed() const;

    /**
     * True if, for every closed transfer, serialize + flight +
     * forward + wait equals the observed end-to-end latency exactly,
     * and the number of spans matches the vectors moved.
     */
    bool waterfallsExact() const;

    /**
     * True if the blame document passes checkBlameExactness() — every
     * per-transfer and per-link breakdown sums to its wait exactly —
     * AND the per-link blamed waits reconcile with the independently
     * kept profiler queue-delay account. `why`, when given, receives
     * the first mismatch.
     */
    bool blameExact(std::string *why = nullptr) const;

    /**
     * True if the lanes document passes checkLanesInvariants() — the
     * per-kind lane totals and the per-phase counts each reconcile
     * exactly with the live event total, and the projected speedup
     * bounds are sane (>= 1, monotone, capped by the critical path).
     * `why`, when given, receives the violations.
     */
    bool lanesReconcile(std::string *why = nullptr) const;
};

/**
 * Execute `scenario` headless, capturing the journal and waterfalls.
 * Deterministic: equal scenarios and overrides produce byte-identical
 * journals — the invariant tools/tsm_fuzz asserts. `hostprof`, when
 * given, observes the run's event queue (the fuzzer's --stats path);
 * it never influences the simulation, so the journal is identical
 * with and without it.
 */
ScenarioExecution executeScenario(const Scenario &scenario,
                                  const ScenarioOverrides &overrides = {},
                                  HostProfiler *hostprof = nullptr);

} // namespace tsm

#endif // TSM_SCENARIO_RUNNER_HH
