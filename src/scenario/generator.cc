#include "scenario/generator.hh"

#include <algorithm>
#include <string>

#include "common/rng.hh"

namespace tsm {

namespace {

/** Explicit flows use ids below these; keeps the ranges disjoint. */
constexpr FlowId kCollectiveFirstFlow = 1001;
constexpr FlowId kPatternFirstFlow = 2001;

TspId
pickOther(Rng &rng, unsigned numTsps, TspId avoid)
{
    TspId t;
    do {
        t = TspId(rng.below(numTsps));
    } while (t == avoid);
    return t;
}

} // namespace

Scenario
generateScenario(std::uint64_t seed, const FuzzConfig &config)
{
    Rng rng(seed ^ 0x7365636e6172696fULL); // "scenario"

    Scenario sc;
    sc.name = "fuzz-" + std::to_string(seed);
    sc.seed = rng.below(100000);

    // Topology: mostly a single node (both wirings), sometimes the
    // 2-node dragonfly, occasionally a bare ring (no collectives
    // there — they assume node packaging).
    const std::uint64_t topoPick = rng.below(10);
    bool nodeBased = true;
    if (topoPick < 5) {
        sc.topology.kind = ScenarioTopologyKind::Node;
        sc.topology.wiring = rng.chance(0.3) ? NodeWiring::TripleRing
                                             : NodeWiring::FullMesh;
    } else if (topoPick < 8 && config.allowMultiNode) {
        sc.topology.kind = ScenarioTopologyKind::SingleLevel;
        sc.topology.size = 2;
        sc.topology.wiring = rng.chance(0.2) ? NodeWiring::TripleRing
                                             : NodeWiring::FullMesh;
    } else if (topoPick == 8) {
        sc.topology.kind = ScenarioTopologyKind::Ring;
        sc.topology.size = unsigned(4 + rng.below(7)); // 4..10
        nodeBased = false;
    } else {
        sc.topology.kind = ScenarioTopologyKind::Node;
        sc.topology.wiring = NodeWiring::FullMesh;
    }
    const unsigned numTsps =
        sc.topology.kind == ScenarioTopologyKind::Ring
            ? sc.topology.size
        : sc.topology.kind == ScenarioTopologyKind::SingleLevel
            ? sc.topology.size * 8
            : 8;

    // SSN policy: mostly defaults, sometimes the ablation corners.
    if (rng.chance(0.25)) {
        sc.ssn.maxExtraHops = unsigned(rng.below(3)); // 0..2
        sc.ssn.maxPaths = unsigned(1 + rng.below(16));
        sc.ssn.loadBalance = rng.chance(0.8);
    }

    if (config.allowMbe && rng.chance(0.15))
        sc.mbe = rng.chance(0.5) ? 0.02 : 0.05;

    // Contention shape: one hotspot destination, and a handful of
    // start cycles flows cluster on so their windows overlap.
    const TspId hotspot = TspId(rng.below(numTsps));
    const Cycle startBase = Cycle(rng.below(3)) * 10000;

    const unsigned maxFlows = std::max(1u, config.maxFlows);
    const unsigned nFlows = unsigned(1 + rng.below(maxFlows));
    const bool sparseIds = rng.chance(0.2);
    FlowId nextId = 1;
    for (unsigned i = 0; i < nFlows; ++i) {
        ScenarioFlow f;
        f.id = nextId;
        nextId += sparseIds ? FlowId(1 + rng.below(3)) : 1;

        f.src = TspId(rng.below(numTsps));
        f.dst = rng.chance(config.contentionBias) && hotspot != f.src
                    ? hotspot
                    : pickOther(rng, numTsps, f.src);

        if (rng.chance(0.25)) {
            f.tensor.hasShape = true;
            f.tensor.rows = 1 + rng.below(64);
            f.tensor.cols = 1 + rng.below(64);
            const std::uint64_t dt = rng.below(3);
            f.tensor.dtype = dt == 0 ? "fp16" : dt == 1 ? "fp32" : "int8";
            const std::uint64_t elem =
                dt == 0 ? 2 : dt == 1 ? 4 : 1;
            f.tensor.vectors = std::uint32_t(
                (f.tensor.rows * f.tensor.cols * elem + 319) / 320);
        } else {
            f.tensor.vectors =
                std::uint32_t(1 + rng.below(config.maxVectors));
        }

        f.start = rng.chance(0.5)
                      ? startBase
                      : startBase + Cycle(rng.below(20000));
        f.role = config.allowBackground && rng.chance(0.25)
                     ? FlowRole::Background
                     : FlowRole::Foreground;
        sc.flows.push_back(std::move(f));
    }

    if (config.allowCollectives && rng.chance(0.35)) {
        ScenarioCollective c;
        const std::uint64_t opPick = rng.below(nodeBased ? 4 : 2);
        c.op = opPick == 0   ? ScenarioCollectiveOp::Broadcast
               : opPick == 1 ? ScenarioCollectiveOp::Gather
               : opPick == 2 ? ScenarioCollectiveOp::ReduceScatter
                             : ScenarioCollectiveOp::AllGather;
        c.root = TspId(rng.below(numTsps));
        c.vectors = std::uint32_t(1 + rng.below(16));
        c.firstFlow = kCollectiveFirstFlow;
        c.start = rng.chance(0.5) ? startBase : 0;
        sc.collectives.push_back(std::move(c));
    }

    if (config.allowPatterns && rng.chance(0.35)) {
        ScenarioPattern p;
        const auto all = allTrafficPatterns();
        p.kind = all[rng.below(all.size())];
        p.vectors = std::uint32_t(1 + rng.below(16));
        p.seed = rng.below(1000);
        p.firstFlow = kPatternFirstFlow;
        p.start = rng.chance(0.5) ? startBase : 0;
        p.role = config.allowBackground && rng.chance(0.3)
                     ? FlowRole::Background
                     : FlowRole::Foreground;
        sc.patterns.push_back(std::move(p));
    }

    // The draw above is biased toward contention, so it occasionally
    // lands outside the machine's capacity envelope (validateScenario
    // dry-runs the SSN compile and rejects schedules that exhaust a
    // chip's stream registers). Degrade deterministically until valid:
    // halve every tensor, then shed traffic sources — the fuzzer must
    // only ever emit scenarios the machine can actually run.
    while (!validateScenario(sc, nullptr)) {
        bool thinned = false;
        for (ScenarioFlow &f : sc.flows) {
            if (f.tensor.vectors > 1) {
                f.tensor = TensorSpec{
                    std::max<std::uint32_t>(1, f.tensor.vectors / 2)};
                thinned = true;
            }
        }
        for (ScenarioCollective &c : sc.collectives) {
            if (c.vectors > 1) {
                c.vectors /= 2;
                thinned = true;
            }
        }
        for (ScenarioPattern &p : sc.patterns) {
            if (p.vectors > 1) {
                p.vectors /= 2;
                thinned = true;
            }
        }
        if (thinned)
            continue;
        if (!sc.patterns.empty())
            sc.patterns.clear();
        else if (!sc.collectives.empty())
            sc.collectives.clear();
        else if (sc.flows.size() > 1)
            sc.flows.pop_back();
        else
            break; // one single-vector flow; give validate the last word
    }

    return sc;
}

std::vector<Scenario>
shrinkCandidates(const Scenario &scenario)
{
    std::vector<Scenario> out;
    auto keepValid = [&out](Scenario candidate) {
        if (candidate.flows.empty() && candidate.collectives.empty() &&
            candidate.patterns.empty())
            return;
        if (validateScenario(candidate, nullptr))
            out.push_back(std::move(candidate));
    };

    // Drop whole traffic sources first — the biggest simplification.
    if (!scenario.patterns.empty()) {
        Scenario s = scenario;
        s.patterns.clear();
        keepValid(std::move(s));
    }
    if (!scenario.collectives.empty()) {
        Scenario s = scenario;
        s.collectives.clear();
        keepValid(std::move(s));
    }

    // Drop each explicit flow.
    for (std::size_t i = 0; i < scenario.flows.size(); ++i) {
        Scenario s = scenario;
        s.flows.erase(s.flows.begin() + std::ptrdiff_t(i));
        keepValid(std::move(s));
    }

    // Disable error injection.
    if (scenario.mbe > 0.0) {
        Scenario s = scenario;
        s.mbe = 0.0;
        keepValid(std::move(s));
    }

    // Plainer SSN policy.
    {
        const SsnConfig def;
        if (scenario.ssn.maxExtraHops != def.maxExtraHops ||
            scenario.ssn.maxPaths != def.maxPaths ||
            scenario.ssn.loadBalance != def.loadBalance) {
            Scenario s = scenario;
            s.ssn = def;
            keepValid(std::move(s));
        }
    }

    // Plainer topology: anything -> one full-mesh node, when every
    // referenced chip fits in 8.
    if (scenario.topology.kind != ScenarioTopologyKind::Node ||
        scenario.topology.wiring != NodeWiring::FullMesh) {
        bool fits = true;
        for (const auto &f : scenario.flows)
            fits = fits && f.src < 8 && f.dst < 8;
        for (const auto &c : scenario.collectives)
            fits = fits && c.root < 8;
        if (fits) {
            Scenario s = scenario;
            s.topology = ScenarioTopology{};
            keepValid(std::move(s));
        }
    }

    // Shrink tensors: single-vector flows, plain vectors form,
    // zeroed start cycles, foreground role.
    for (std::size_t i = 0; i < scenario.flows.size(); ++i) {
        const ScenarioFlow &f = scenario.flows[i];
        if (f.tensor.vectors > 1 || f.tensor.hasShape) {
            Scenario s = scenario;
            s.flows[i].tensor = TensorSpec{};
            s.flows[i].tensor.vectors =
                std::max<std::uint32_t>(1, f.tensor.vectors / 2);
            keepValid(std::move(s));
        }
        if (f.start > 0) {
            Scenario s = scenario;
            s.flows[i].start = 0;
            keepValid(std::move(s));
        }
        if (f.role == FlowRole::Background) {
            Scenario s = scenario;
            s.flows[i].role = FlowRole::Foreground;
            keepValid(std::move(s));
        }
    }
    for (std::size_t i = 0; i < scenario.collectives.size(); ++i) {
        if (scenario.collectives[i].vectors > 1) {
            Scenario s = scenario;
            s.collectives[i].vectors /= 2;
            keepValid(std::move(s));
        }
    }
    for (std::size_t i = 0; i < scenario.patterns.size(); ++i) {
        if (scenario.patterns[i].vectors > 1) {
            Scenario s = scenario;
            s.patterns[i].vectors /= 2;
            keepValid(std::move(s));
        }
    }

    return out;
}

} // namespace tsm
