/**
 * @file
 * Seeded random scenario generation and shrinking for the
 * determinism fuzzer (tools/tsm_fuzz).
 *
 * generateScenario(seed) emits a random scenario that is always
 * valid by construction — bounded topology (at most two nodes),
 * bounded flow count and tensor sizes, and disjoint flow-id ranges
 * for the three traffic sources — and is *biased toward contention*:
 * a per-scenario hotspot chip attracts a configurable fraction of
 * flow destinations, and start cycles cluster so transfers overlap.
 * Contention is where scheduling bugs live; uniform traffic would
 * mostly test the idle machine.
 *
 * shrinkCandidates() proposes strictly simpler variants of a failing
 * scenario (fewer flows, smaller tensors, no collectives/patterns,
 * plainer topology). The fuzzer greedily re-tests candidates to find
 * a minimal reproducer to save.
 */

#ifndef TSM_SCENARIO_GENERATOR_HH
#define TSM_SCENARIO_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "scenario/scenario.hh"

namespace tsm {

/** Bounds and biases of the scenario generator. */
struct FuzzConfig
{
    /** Most explicit flows a scenario carries. */
    unsigned maxFlows = 10;

    /** Largest explicit-flow tensor, in vectors. */
    std::uint32_t maxVectors = 48;

    /** Probability a flow's destination is the hotspot chip. */
    double contentionBias = 0.6;

    bool allowCollectives = true;
    bool allowPatterns = true;

    /** Allow background-role traffic. */
    bool allowBackground = true;

    /** Allow FEC MBE injection rates > 0. */
    bool allowMbe = true;

    /** Allow 16-chip (two-node dragonfly) topologies. */
    bool allowMultiNode = true;
};

/**
 * Deterministically generate a valid scenario from `seed`. Equal
 * seeds and configs produce equal scenarios (and therefore equal
 * canonical documents).
 */
Scenario generateScenario(std::uint64_t seed,
                          const FuzzConfig &config = {});

/**
 * Strictly simpler variants of `scenario`, most aggressive first.
 * Every candidate is still valid. Empty when the scenario is already
 * minimal.
 */
std::vector<Scenario> shrinkCandidates(const Scenario &scenario);

} // namespace tsm

#endif // TSM_SCENARIO_GENERATOR_HH
