#include "hostprof/hostprof.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "common/format.hh"
#include "common/log.hh"
#include "common/table.hh"
#include "hostprof/alloc_hook.hh"
#include "telemetry/render.hh"

namespace tsm {

std::uint64_t
HostClock::nowNs() const
{
    const auto t = std::chrono::steady_clock::now().time_since_epoch();
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t).count());
}

namespace {

/** Process-wide default clock. */
const HostClock &
steadyClock()
{
    static const HostClock clock;
    return clock;
}

} // namespace

HostProfiler::HostProfiler(const HostClock *clock, std::uint64_t windowNs)
    : clock_(clock ? clock : &steadyClock()),
      windowNs_(windowNs ? windowNs : 1)
{
    if (const char *env = std::getenv("TSM_HOSTPROF_SLOWDOWN_NS"))
        slowdownNs_ = std::strtoull(env, nullptr, 10);
}

void
HostProfiler::setSeed(std::uint64_t seed)
{
    seed_ = seed;
    hasSeed_ = true;
}

const HostKindStats &
HostProfiler::kind(EventKind k) const
{
    return kinds_[unsigned(k)];
}

void
HostProfiler::runBegin(Tick simNow, std::size_t depth)
{
    TSM_ASSERT(!inRun_, "nested EventQueue runs are not profiled");
    const std::uint64_t t = clock_->nowNs();
    if (!started_) {
        started_ = true;
        startNs_ = t;
        windowStartNs_ = t;
        windowSimStartPs_ = 0;
    }
    inRun_ = true;
    ++runs_;
    mark_ = t;
    runStartNs_ = t;
    runSimStart_ = simNow;
    queue_.maxDepth = std::max<std::uint64_t>(queue_.maxDepth, depth);
}

void
HostProfiler::dispatchBegin()
{
    const std::uint64_t t = clock_->nowNs();
    queueNs_ += t - mark_;
    mark_ = t;
    curBatch_ = 0;
    inDispatch_ = true;
    allocArmedPrev_ = hostalloc::setArmed(true);
    const hostalloc::Counters c = hostalloc::snapshot();
    allocBase_ = c.allocs;
    allocBytesBase_ = c.bytes;
}

void
HostProfiler::dispatchEnd(EventKind kind, Tick simNow, std::size_t depth)
{
    hostalloc::setArmed(allocArmedPrev_);
    const hostalloc::Counters c = hostalloc::snapshot();
    HostKindStats &ks = kinds_[unsigned(kind)];
    ks.allocs += c.allocs - allocBase_;
    ks.allocBytes += c.bytes - allocBytesBase_;

    // The injected slowdown spins *before* the closing clock read so
    // the extra wall time is attributed to the event it slowed — the
    // CI gate must see it in the kind totals and the sim rate alike.
    std::uint64_t t = clock_->nowNs();
    if (slowdownNs_ > 0) {
        const std::uint64_t until = t + slowdownNs_;
        while (t < until)
            t = clock_->nowNs();
    }
    ks.wallNs += t - mark_;
    ++ks.events;
    mark_ = t;
    ++events_;
    ++windowEvents_;
    inDispatch_ = false;

    simPs_ += simNow - runSimStart_;
    runSimStart_ = simNow;

    queue_.maxDepth = std::max<std::uint64_t>(queue_.maxDepth, depth);
    if (curBatch_ > 0) {
        ++queue_.batches;
        queue_.maxBatch = std::max(queue_.maxBatch, curBatch_);
    }
    closeWindows(t, depth);
}

bool
HostProfiler::insertSampleBegin()
{
    if ((++insertTick_ & 63) != 0)
        return false;
    insertT0_ = clock_->nowNs();
    return true;
}

void
HostProfiler::insertEnd(std::size_t depth, bool timed)
{
    if (timed) {
        ++queue_.sampledInserts;
        queue_.sampledInsertNs += clock_->nowNs() - insertT0_;
    }
    ++queue_.inserts;
    queue_.maxDepth = std::max<std::uint64_t>(queue_.maxDepth, depth);
    if (inDispatch_)
        ++curBatch_;
}

void
HostProfiler::runEnd(Tick simNow, std::size_t depth)
{
    TSM_ASSERT(inRun_, "runEnd without runBegin");
    const std::uint64_t t = clock_->nowNs();
    queueNs_ += t - mark_;
    mark_ = t;
    wallNs_ += t - runStartNs_;
    simPs_ += simNow - runSimStart_;
    runSimStart_ = simNow;
    queue_.maxDepth = std::max<std::uint64_t>(queue_.maxDepth, depth);
    inRun_ = false;
}

void
HostProfiler::closeWindows(std::uint64_t t, std::size_t depth)
{
    while (t - windowStartNs_ >= windowNs_) {
        HostWindow w;
        w.endNs = windowStartNs_ + windowNs_ - startNs_;
        w.events = windowEvents_;
        w.simPs = simPs_ - windowSimStartPs_;
        w.depth = depth;
        if (windows_.size() < kHostprofMaxWindows)
            windows_.push_back(w);
        else
            ++windowsDropped_;
        windowStartNs_ += windowNs_;
        windowEvents_ = 0;
        windowSimStartPs_ = simPs_;
    }
}

Json
HostProfiler::report() const
{
    const std::uint64_t dispatchNs = wallNs_ - queueNs_;
    const double wallSec = double(wallNs_) / 1e9;
    const double simCycles = double(simPs_) / kCorePeriodPs;

    Json doc = Json::object();
    doc.set("schema", kHostprofSchema);
    doc.set("bench", bench_);
    if (hasSeed_)
        doc.set("seed", seed_);
    doc.set("events", events_);
    doc.set("runs", runs_);
    doc.set("sim_ps", simPs_);
    doc.set("sim_cycles", std::int64_t(simCycles));
    doc.set("wall_ns", wallNs_);

    Json sections = Json::object();
    sections.set("queue_ns", queueNs_);
    sections.set("dispatch_ns", dispatchNs);
    doc.set("sections", sections);

    Json kindsArr = Json::array();
    for (unsigned k = 0; k < kNumEventKinds; ++k) {
        const HostKindStats &ks = kinds_[k];
        Json row = Json::object();
        row.set("kind", eventKindName(EventKind(k)));
        row.set("events", ks.events);
        row.set("wall_ns", ks.wallNs);
        row.set("allocs", ks.allocs);
        row.set("alloc_bytes", ks.allocBytes);
        kindsArr.push(std::move(row));
    }
    doc.set("kinds", std::move(kindsArr));

    Json queue = Json::object();
    queue.set("inserts", queue_.inserts);
    queue.set("max_depth", queue_.maxDepth);
    queue.set("batches", queue_.batches);
    queue.set("max_batch", queue_.maxBatch);
    queue.set("sampled_inserts", queue_.sampledInserts);
    queue.set("sampled_insert_ns", queue_.sampledInsertNs);
    doc.set("queue", queue);

    std::uint64_t allocs = 0, allocBytes = 0;
    for (const HostKindStats &ks : kinds_) {
        allocs += ks.allocs;
        allocBytes += ks.allocBytes;
    }
    Json alloc = Json::object();
    alloc.set("hook", hostalloc::hookCompiledIn());
    alloc.set("event_path", allocs);
    alloc.set("bytes", allocBytes);
    alloc.set("per_event",
              events_ ? double(allocs) / double(events_) : 0.0);
    doc.set("allocs", alloc);

    Json rate = Json::object();
    rate.set("events_per_sec",
             wallSec > 0 ? double(events_) / wallSec : 0.0);
    rate.set("cycles_per_sec", wallSec > 0 ? simCycles / wallSec : 0.0);
    // Wall time per unit of simulated time (1000 wall-ns per sim-ps
    // == 1x). Zero when nothing simulated.
    rate.set("slowdown",
             simPs_ ? double(wallNs_) * 1e3 / double(simPs_) : 0.0);
    doc.set("sim_rate", rate);

    doc.set("window_ns", windowNs_);
    Json windowsArr = Json::array();
    auto pushWindow = [&windowsArr](const HostWindow &w) {
        Json row = Json::object();
        row.set("end_ns", w.endNs);
        row.set("events", w.events);
        row.set("sim_ps", w.simPs);
        row.set("depth", w.depth);
        windowsArr.push(std::move(row));
    };
    for (const HostWindow &w : windows_)
        pushWindow(w);
    // The open partial window, if it saw any events: its close is the
    // last attribution mark, not a window boundary.
    if (windowEvents_ > 0 && windows_.size() < kHostprofMaxWindows) {
        HostWindow w;
        w.endNs = mark_ - startNs_;
        w.events = windowEvents_;
        w.simPs = simPs_ - windowSimStartPs_;
        w.depth = 0;
        pushWindow(w);
    }
    doc.set("windows", std::move(windowsArr));
    doc.set("windows_dropped", windowsDropped_);
    doc.set("slowdown_injected_ns", slowdownNs_);
    return doc;
}

} // namespace tsm
