/**
 * @file
 * Host-side self-profiling of the simulator.
 *
 * PRs 1–5 made the *simulated* machine observable; this subsystem
 * turns the same discipline on the simulator itself. A `HostProfiler`
 * hooks the EventQueue's run loop (sim/event_queue.hh) and measures,
 * in *wall-clock* time, where the host spends it:
 *
 *  - per-event-kind dispatch time (chip issue, flit delivery, HAC
 *    rounds, router hops — sim/event_kind.hh), measured exactly: one
 *    clock read per pop, one per callback, every nanosecond of a
 *    profiled run() lands in exactly one bucket, so the attribution
 *    sums to total wall time by construction;
 *  - event-queue telemetry: insert count, depth high-water mark,
 *    batch-insertion stats (events scheduled per dispatch), and a
 *    strided sample of raw heap-insert cost;
 *  - allocations on the event path (hostprof/alloc_hook.hh), armed
 *    only while a callback runs;
 *  - sim-rate over fixed wall-clock windows: events/sec, simulated
 *    picoseconds advanced, queue depth — the trend tsm_hotspot plots
 *    and the `sim_rate` summary tsm_bench_diff gates on.
 *
 * The profiler never touches simulated state: no RNG draws, no event
 * reordering, no trace events. Journals, digests and profile reports
 * are byte-identical with and without it (tests/hostprof pins this).
 * Reports serialize as schema `tsm-hostprof-v1`; wall-time fields
 * vary run to run, count/depth fields are deterministic.
 *
 * The env var TSM_HOSTPROF_SLOWDOWN_NS=N busy-loops N wall-ns per
 * dispatched event — an artificial slowdown that must trip the CI
 * sim-rate gate, proving the gate can fail.
 */

#ifndef TSM_HOSTPROF_HOSTPROF_HH
#define TSM_HOSTPROF_HOSTPROF_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/units.hh"
#include "sim/event_kind.hh"

namespace tsm {

/** Schema tag stamped into every hostprof report. */
inline constexpr const char *kHostprofSchema = "tsm-hostprof-v1";

/**
 * Monotonic wall-clock source. The default reads
 * std::chrono::steady_clock; tests substitute a scripted clock to pin
 * attribution and window semantics exactly.
 */
class HostClock
{
  public:
    virtual ~HostClock() = default;

    /** Monotonic nanoseconds since an arbitrary origin. */
    virtual std::uint64_t nowNs() const;
};

/** Wall-time and counts accumulated for one event kind. */
struct HostKindStats
{
    std::uint64_t events = 0;
    std::uint64_t wallNs = 0;
    std::uint64_t allocs = 0;
    std::uint64_t allocBytes = 0;
};

/** Event-queue structure telemetry. */
struct HostQueueStats
{
    /** Total schedule() calls observed. */
    std::uint64_t inserts = 0;

    /** Depth high-water mark (pending events). */
    std::uint64_t maxDepth = 0;

    /** Dispatches that scheduled at least one new event. */
    std::uint64_t batches = 0;

    /** Largest number of inserts from a single dispatch. */
    std::uint64_t maxBatch = 0;

    /** Inserts whose raw heap-push cost was timed (1 in 64). */
    std::uint64_t sampledInserts = 0;

    /** Total wall-ns of the sampled heap pushes. */
    std::uint64_t sampledInsertNs = 0;
};

/** One closed sim-rate window. */
struct HostWindow
{
    /** Wall-ns from profiling start to the window's close. */
    std::uint64_t endNs = 0;

    /** Events dispatched within the window. */
    std::uint64_t events = 0;

    /** Simulated picoseconds the window advanced. */
    std::uint64_t simPs = 0;

    /** Queue depth when the window closed. */
    std::uint64_t depth = 0;
};

/**
 * The profiler the EventQueue drives. Attach with
 * EventQueue::setHostProfiler(); accumulates across multiple run()
 * invocations (wall time accrues only inside runs).
 */
class HostProfiler
{
  public:
    /**
     * @param clock Wall-clock source; nullptr uses the process-wide
     *        steady clock. Borrowed — must outlive the profiler.
     * @param windowNs Sim-rate window width in wall nanoseconds
     *        (default 50 ms).
     */
    explicit HostProfiler(const HostClock *clock = nullptr,
                          std::uint64_t windowNs = 50'000'000);

    /// @name Run identity (stamped into the report)
    /// @{
    void setBench(std::string bench) { bench_ = std::move(bench); }
    void setSeed(std::uint64_t seed);
    /// @}

    /**
     * Busy-loop this many wall-ns inside each dispatch — the
     * artificial slowdown the CI gate proves it can catch. The
     * constructor seeds it from TSM_HOSTPROF_SLOWDOWN_NS.
     */
    void setSlowdownNs(std::uint64_t ns) { slowdownNs_ = ns; }
    std::uint64_t slowdownNs() const { return slowdownNs_; }

    /// @name EventQueue hooks (hot path)
    /// @{

    /** run()/runUntil() entered with `depth` pending events. */
    void runBegin(Tick simNow, std::size_t depth);

    /** An event was popped; its callback is about to run. */
    void dispatchBegin();

    /** The callback returned; the queue holds `depth` events. */
    void dispatchEnd(EventKind kind, Tick simNow, std::size_t depth);

    /** True when the next insert's heap push should be timed. */
    bool insertSampleBegin();

    /** An event was pushed; the queue holds `depth` events. */
    void insertEnd(std::size_t depth, bool timed);

    /** run()/runUntil() returned. */
    void runEnd(Tick simNow, std::size_t depth);
    /// @}

    /// @name Results
    /// @{
    std::uint64_t events() const { return events_; }
    std::uint64_t wallNs() const { return wallNs_; }
    std::uint64_t queueNs() const { return queueNs_; }

    /** Simulated picoseconds advanced across all profiled runs. */
    std::uint64_t simPs() const { return simPs_; }

    std::uint64_t runs() const { return runs_; }
    const HostKindStats &kind(EventKind k) const;
    const HostQueueStats &queue() const { return queue_; }
    const std::vector<HostWindow> &windows() const { return windows_; }

    /** Windows not recorded once the cap was hit. */
    std::uint64_t windowsDropped() const { return windowsDropped_; }

    /** The canonical `tsm-hostprof-v1` document. */
    Json report() const;
    /// @}

  private:
    void closeWindows(std::uint64_t t, std::size_t depth);

    const HostClock *clock_;
    std::uint64_t windowNs_;
    std::string bench_ = "unknown";
    std::uint64_t seed_ = 0;
    bool hasSeed_ = false;
    std::uint64_t slowdownNs_ = 0;

    bool started_ = false;
    bool inRun_ = false;
    bool inDispatch_ = false;
    std::uint64_t startNs_ = 0;   ///< first runBegin
    std::uint64_t mark_ = 0;      ///< last attribution boundary
    std::uint64_t runStartNs_ = 0;

    std::uint64_t events_ = 0;
    std::uint64_t wallNs_ = 0;  ///< total wall time inside runs
    std::uint64_t queueNs_ = 0; ///< pop + loop + drain (non-callback)
    std::uint64_t simPs_ = 0;
    std::uint64_t runs_ = 0;
    Tick runSimStart_ = 0;

    HostKindStats kinds_[kNumEventKinds];
    HostQueueStats queue_;
    std::uint64_t curBatch_ = 0;
    std::uint64_t insertTick_ = 0; ///< strided sampling counter
    std::uint64_t insertT0_ = 0;

    bool allocArmedPrev_ = false;
    std::uint64_t allocBase_ = 0;
    std::uint64_t allocBytesBase_ = 0;

    std::vector<HostWindow> windows_;
    std::uint64_t windowStartNs_ = 0; ///< open window's start
    std::uint64_t windowEvents_ = 0;
    std::uint64_t windowSimStartPs_ = 0;
    std::uint64_t windowsDropped_ = 0;
};

/** Windows kept per report before further samples are dropped. */
inline constexpr std::size_t kHostprofMaxWindows = 4096;

/**
 * One-line wall-clock/sim-rate footer for a `tsm-hostprof-v1`
 * document: "host: 48.1k events in 0.02 s wall (2.5 M events/s, ...)".
 * Pass nullptr (or a null document) for the "host: n/a" form — the
 * line profile summaries print when a run had no --hostprof.
 */
std::string renderHostRateLine(const Json *hostprof);

/**
 * Full ASCII rendering for tools/tsm_hotspot: run header, top event
 * kinds by wall time, queue telemetry, queue-depth sparkline and
 * sim-rate trend over the windows.
 */
std::string renderHostprof(const Json &hostprof, unsigned topK = 8);

} // namespace tsm

#endif // TSM_HOSTPROF_HOSTPROF_HH
