#include "hostprof/alloc_hook.hh"

#include <cstdlib>
#include <new>

namespace tsm {
namespace hostalloc {
namespace {

thread_local bool tArmed = false;
thread_local Counters tCounters;

} // namespace

bool
hookCompiledIn()
{
#ifdef TSM_HOSTPROF_ALLOC_HOOK
    return true;
#else
    return false;
#endif
}

bool
setArmed(bool armed)
{
    const bool prev = tArmed;
    tArmed = armed;
    return prev;
}

Counters
snapshot()
{
    return tCounters;
}

#ifdef TSM_HOSTPROF_ALLOC_HOOK
namespace {

void *
countedAlloc(std::size_t size)
{
    // malloc(0) may return nullptr legally; operator new must not.
    void *p = std::malloc(size ? size : 1);
    if (tArmed && p) {
        ++tCounters.allocs;
        tCounters.bytes += size;
    }
    return p;
}

void *
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    void *p = std::aligned_alloc(align, (size + align - 1) / align * align);
    if (tArmed && p) {
        ++tCounters.allocs;
        tCounters.bytes += size;
    }
    return p;
}

} // namespace
#endif // TSM_HOSTPROF_ALLOC_HOOK

} // namespace hostalloc
} // namespace tsm

#ifdef TSM_HOSTPROF_ALLOC_HOOK

// Global replacement of the allocation functions ([new.delete] allows
// a program to define all of these). Every variant funnels through
// malloc/free, so mixing variants (sized delete for unsized new,
// array for scalar) stays well-defined. Sanitizer builds intercept
// malloc/free underneath, so leak checking keeps working.

void *
operator new(std::size_t size)
{
    void *p = tsm::hostalloc::countedAlloc(size);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    void *p = tsm::hostalloc::countedAlloc(size);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return tsm::hostalloc::countedAlloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return tsm::hostalloc::countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    void *p = tsm::hostalloc::countedAlignedAlloc(size, std::size_t(align));
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    void *p = tsm::hostalloc::countedAlignedAlloc(size, std::size_t(align));
    if (!p)
        throw std::bad_alloc();
    return p;
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

#endif // TSM_HOSTPROF_ALLOC_HOOK
