tsm_module(hostprof
    hostprof.cc
    render.cc
    alloc_hook.cc
)
