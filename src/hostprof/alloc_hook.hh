/**
 * @file
 * Allocation counting on the event path.
 *
 * The host profiler wants to know how many heap allocations one
 * simulated event costs (std::function captures, heap growth,
 * per-flit vectors): allocations are the main reason ROADMAP item 1
 * calls for arena-allocated flat event records, so the count must be
 * measured before it can be claimed away. alloc_hook.cc replaces the
 * global `operator new`/`operator delete` with malloc/free wrappers
 * that bump a thread-local counter *only while armed*; the profiler
 * arms the counter around each event callback. When never armed the
 * cost per allocation is one thread-local flag test.
 *
 * The replacement is compiled in only when TSM_HOSTPROF_ALLOC_HOOK is
 * defined (the default; see the CMake option of the same name). With
 * the hook compiled out, `armed()` stays false and every count reads
 * zero — reports mark the difference via the `alloc_hook` field.
 */

#ifndef TSM_HOSTPROF_ALLOC_HOOK_HH
#define TSM_HOSTPROF_ALLOC_HOOK_HH

#include <cstdint>

namespace tsm {
namespace hostalloc {

/** Running totals of armed allocations on this thread. */
struct Counters
{
    std::uint64_t allocs = 0;
    std::uint64_t bytes = 0;
};

/** True when the replacement operator new is linked in. */
bool hookCompiledIn();

/**
 * Arm or disarm counting on the calling thread. Returns the previous
 * state so nested scopes can restore it.
 */
bool setArmed(bool armed);

/** Current totals for the calling thread (monotonic while armed). */
Counters snapshot();

} // namespace hostalloc
} // namespace tsm

#endif // TSM_HOSTPROF_ALLOC_HOOK_HH
