/**
 * @file
 * ASCII rendering of `tsm-hostprof-v1` documents: the core of
 * tools/tsm_hotspot and the wall-clock footer line the profile
 * summaries (prof/report.cc renderProfileSummary, tools/tsm_top)
 * append below their simulated-time sections.
 */

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/format.hh"
#include "common/table.hh"
#include "hostprof/hostprof.hh"
#include "telemetry/render.hh"

namespace tsm {

namespace {

/** "48123" -> "48.1k", "2512345" -> "2.5M". */
std::string
humanCount(double v)
{
    if (v >= 1e9)
        return Table::num(v / 1e9, 1) + "G";
    if (v >= 1e6)
        return Table::num(v / 1e6, 1) + "M";
    if (v >= 1e3)
        return Table::num(v / 1e3, 1) + "k";
    return Table::num(v, 0);
}

std::string
humanNs(double ns)
{
    if (ns >= 1e9)
        return Table::num(ns / 1e9, 2) + " s";
    if (ns >= 1e6)
        return Table::num(ns / 1e6, 2) + " ms";
    if (ns >= 1e3)
        return Table::num(ns / 1e3, 2) + " us";
    return Table::num(ns, 0) + " ns";
}

/**
 * Downsample `values` to at most `cols` columns, shading each column
 * by its bucket maximum normalized to the overall maximum.
 */
std::string
sparkline(const std::vector<double> &values, unsigned cols)
{
    if (values.empty())
        return "";
    double peak = 0.0;
    for (double v : values)
        peak = std::max(peak, v);
    const std::size_t buckets =
        std::min<std::size_t>(cols ? cols : 1, values.size());
    std::string out;
    for (std::size_t b = 0; b < buckets; ++b) {
        const std::size_t lo = b * values.size() / buckets;
        const std::size_t hi =
            std::max(lo + 1, (b + 1) * values.size() / buckets);
        double m = 0.0;
        for (std::size_t i = lo; i < hi; ++i)
            m = std::max(m, values[i]);
        out += shadeChar(peak > 0 ? m / peak : 0.0);
    }
    return out;
}

} // namespace

std::string
renderHostRateLine(const Json *hostprof)
{
    if (!hostprof || hostprof->isNull() ||
        (*hostprof)["events"].isNull()) {
        return "host: n/a (run with --hostprof for wall-clock "
               "attribution)\n";
    }
    const Json &doc = *hostprof;
    const double events = doc["events"].number();
    const double wallNs = doc["wall_ns"].number();
    const Json &rate = doc["sim_rate"];
    return format(
        "host: {} events in {} wall — {} events/s, {} cycles/s, "
        "slowdown {}x\n",
        humanCount(events), humanNs(wallNs),
        humanCount(rate["events_per_sec"].number()),
        humanCount(rate["cycles_per_sec"].number()),
        Table::num(rate["slowdown"].number(), 1));
}

std::string
renderHostprof(const Json &doc, unsigned topK)
{
    std::string out;
    out += format("=== hostprof: {} (seed {}) ===\n",
                  doc["bench"].isNull() ? "?" : doc["bench"].str(),
                  doc["seed"].isNull()
                      ? std::string("-")
                      : Table::num(doc["seed"].number(), 0));
    out += renderHostRateLine(&doc);

    const double wallNs = doc["wall_ns"].number();
    const Json &sections = doc["sections"];
    out += format("sections: queue {} ({}%), dispatch {} ({}%)\n",
                  humanNs(sections["queue_ns"].number()),
                  Table::num(wallNs > 0 ? sections["queue_ns"].number() /
                                              wallNs * 100.0
                                        : 0.0,
                             1),
                  humanNs(sections["dispatch_ns"].number()),
                  Table::num(wallNs > 0
                                 ? sections["dispatch_ns"].number() /
                                       wallNs * 100.0
                                 : 0.0,
                             1));

    // Top event kinds by wall time.
    struct KindRow
    {
        std::string name;
        double events, ns, allocs;
    };
    std::vector<KindRow> rows;
    for (const Json &k : doc["kinds"].items()) {
        if (k["events"].number() == 0 && k["wall_ns"].number() == 0)
            continue;
        rows.push_back({k["kind"].str(), k["events"].number(),
                        k["wall_ns"].number(), k["allocs"].number()});
    }
    std::sort(rows.begin(), rows.end(),
              [](const KindRow &a, const KindRow &b) {
                  return a.ns != b.ns ? a.ns > b.ns
                                      : a.name < b.name;
              });
    if (rows.size() > topK)
        rows.resize(topK);
    Table table({"kind", "events", "wall", "% wall", "ns/event",
                 "allocs/event", ""});
    for (const KindRow &r : rows) {
        const double frac = wallNs > 0 ? r.ns / wallNs : 0.0;
        std::string bar;
        for (unsigned i = 0; i < unsigned(frac * 20.0 + 0.5); ++i)
            bar += '#';
        table.addRow({r.name, humanCount(r.events), humanNs(r.ns),
                      Table::num(frac * 100.0, 1),
                      Table::num(r.events > 0 ? r.ns / r.events : 0.0, 0),
                      Table::num(r.events > 0 ? r.allocs / r.events : 0.0,
                                 2),
                      bar});
    }
    out += table.ascii();

    const Json &q = doc["queue"];
    out += format(
        "queue: {} inserts, depth high-water {}, {} insert batches "
        "(max {}/dispatch)",
        humanCount(q["inserts"].number()), Table::num(q["max_depth"].number(), 0),
        humanCount(q["batches"].number()),
        Table::num(q["max_batch"].number(), 0));
    if (q["sampled_inserts"].number() > 0)
        out += format(", sampled heap push {} ns",
                      Table::num(q["sampled_insert_ns"].number() /
                                     q["sampled_inserts"].number(),
                                 0));
    out += "\n";

    const Json &alloc = doc["allocs"];
    if (!alloc.isNull()) {
        if (alloc["hook"].boolean())
            out += format("allocs: {} on the event path ({} per event, "
                          "{} bytes)\n",
                          humanCount(alloc["event_path"].number()),
                          Table::num(alloc["per_event"].number(), 2),
                          humanCount(alloc["bytes"].number()));
        else
            out += "allocs: n/a (alloc hook compiled out)\n";
    }

    // Per-window trends. Depth uses the sampled close-of-window depth;
    // rate normalizes events per window to the busiest window.
    const Json &windows = doc["windows"];
    if (windows.size() >= 2) {
        std::vector<double> depth, rate;
        for (const Json &w : windows.items()) {
            depth.push_back(w["depth"].number());
            rate.push_back(w["events"].number());
        }
        out += format("queue depth |{}|\n", sparkline(depth, 64));
        out += format("sim rate    |{}| ({} windows of {})\n",
                      sparkline(rate, 64),
                      std::uint64_t(windows.size()),
                      humanNs(doc["window_ns"].number()));
    }
    if (doc["windows_dropped"].number() > 0)
        out += format("({} windows dropped beyond the {}-window cap)\n",
                      Table::num(doc["windows_dropped"].number(), 0),
                      std::uint64_t(kHostprofMaxWindows));
    return out;
}

} // namespace tsm
