/**
 * @file
 * Per-chip clock domains with frequency drift.
 *
 * Every TSP has an independent clock source; the paper's HAC/SAC
 * machinery exists precisely because these clocks drift relative to one
 * another (plesiochronous operation, §3). A DriftClock maps a chip's
 * local cycle count onto the global picosecond timeline with a
 * parts-per-million frequency offset and an arbitrary phase.
 */

#ifndef TSM_SIM_CLOCK_HH
#define TSM_SIM_CLOCK_HH

#include <cmath>
#include <cstdint>

#include "common/units.hh"

namespace tsm {

/**
 * A clock domain with nominal 900 MHz frequency, a fixed ppm offset,
 * and a phase offset in picoseconds. Conversions are exact in the
 * sense that cycleToTick and tickToCycle round-trip.
 */
class DriftClock
{
  public:
    /**
     * @param ppm Frequency error in parts per million (positive = the
     *            local oscillator runs fast, so the period is shorter).
     * @param phase_ps Phase offset of cycle 0 on the global timeline.
     * @param nominal_period_ps Nominal period (default: 900 MHz core).
     */
    explicit DriftClock(double ppm = 0.0, Tick phase_ps = 0,
                        double nominal_period_ps = kCorePeriodPs)
        : periodPs_(nominal_period_ps / (1.0 + ppm * 1e-6)),
          phasePs_(phase_ps), ppm_(ppm)
    {}

    /** Actual period in picoseconds after applying drift. */
    double periodPs() const { return periodPs_; }

    /** Configured frequency error in ppm. */
    double ppm() const { return ppm_; }

    /** Phase of cycle 0 on the global timeline. */
    Tick phasePs() const { return phasePs_; }

    /** Global time at the start of local cycle `c`. */
    Tick
    cycleToTick(Cycle c) const
    {
        return phasePs_ + Tick(std::llround(double(c) * periodPs_));
    }

    /**
     * Local cycle containing global time `t` (0 before phase): the
     * largest c with cycleToTick(c) <= t, so conversions round-trip
     * exactly despite cycleToTick's rounding.
     */
    Cycle
    tickToCycle(Tick t) const
    {
        if (t <= phasePs_)
            return 0;
        Cycle c = Cycle(double(t - phasePs_) / periodPs_);
        while (c > 0 && cycleToTick(c) > t)
            --c;
        while (cycleToTick(c + 1) <= t)
            ++c;
        return c;
    }

    /** First cycle boundary at or after global time `t`. */
    Tick
    nextEdge(Tick t) const
    {
        Cycle c = tickToCycle(t);
        Tick edge = cycleToTick(c);
        while (edge < t)
            edge = cycleToTick(++c);
        return edge;
    }

  private:
    double periodPs_;
    Tick phasePs_;
    double ppm_;
};

} // namespace tsm

#endif // TSM_SIM_CLOCK_HH
