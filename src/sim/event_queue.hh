/**
 * @file
 * Global discrete-event simulation kernel.
 *
 * Time is a single global picosecond timeline (`Tick`); per-chip clock
 * domains (sim/clock.hh) convert their local cycles onto it. Events at
 * the same tick execute in insertion order, which together with the
 * deterministic RNG makes every simulation reproducible.
 */

#ifndef TSM_SIM_EVENT_QUEUE_HH
#define TSM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.hh"
#include "sim/event_kind.hh"
#include "trace/trace.hh"

namespace tsm {

class HostProfiler;

/**
 * A binary-heap event queue. Not thread-safe; the simulator is
 * single-threaded by design (parallelism would threaten reproducibility
 * for no benefit at the experiment sizes used here).
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /**
     * Schedule `fn` to run at absolute time `when` (>= now). `span`
     * tags the dispatch trace event with the causal transfer the
     * callback serves (e.g. a flit delivery), so a divergence in the
     * dispatch stream itself can be traced back to a transfer. `kind`
     * names the subsystem the callback belongs to — it never affects
     * execution, only the host profiler's wall-clock attribution.
     */
    void schedule(Tick when, Callback fn, SpanId span = kSpanNone,
                  EventKind kind = EventKind::Generic);

    /** Schedule `fn` to run `delay` picoseconds from now. */
    void scheduleAfter(Tick delay, Callback fn, SpanId span = kSpanNone,
                       EventKind kind = EventKind::Generic);

    /**
     * Run events until the queue drains or `limit` events have executed.
     * @return number of events executed.
     */
    std::uint64_t run(std::uint64_t limit = ~std::uint64_t(0));

    /**
     * Run events with timestamp <= `until`. Afterwards now() == until
     * (even if the queue drained earlier).
     * @return number of events executed.
     */
    std::uint64_t runUntil(Tick until);

    /** Drop all pending events and reset time to zero. */
    void reset();

    /**
     * The tracer for this simulation. Every model holds (directly or
     * through its owner) a pointer to the queue, so this is the natural
     * per-simulation scope for trace sinks. With no sinks attached the
     * instrumentation reduces to one mask test per probe.
     */
    Tracer &tracer() { return tracer_; }
    const Tracer &tracer() const { return tracer_; }

    /**
     * Attach a host-side self-profiler (src/hostprof) measuring
     * wall-clock attribution, queue telemetry and sim-rate, or detach
     * with nullptr. Borrowed: detach before destroying the profiler.
     * With none attached the hooks cost one pointer test per event;
     * attached or not, simulated behavior is bit-identical.
     */
    void setHostProfiler(HostProfiler *hp) { hostprof_ = hp; }
    HostProfiler *hostProfiler() const { return hostprof_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback fn;
        SpanId span;
        EventKind kind;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            return a.when != b.when ? a.when > b.when : a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    Tracer tracer_;
    HostProfiler *hostprof_ = nullptr;
};

} // namespace tsm

#endif // TSM_SIM_EVENT_QUEUE_HH
