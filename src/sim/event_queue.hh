/**
 * @file
 * Global discrete-event simulation kernel.
 *
 * Time is a single global picosecond timeline (`Tick`); per-chip clock
 * domains (sim/clock.hh) convert their local cycles onto it. Events at
 * the same tick execute in insertion order, which together with the
 * deterministic RNG makes every simulation reproducible.
 */

#ifndef TSM_SIM_EVENT_QUEUE_HH
#define TSM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.hh"
#include "trace/trace.hh"

namespace tsm {

/**
 * A binary-heap event queue. Not thread-safe; the simulator is
 * single-threaded by design (parallelism would threaten reproducibility
 * for no benefit at the experiment sizes used here).
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /**
     * Schedule `fn` to run at absolute time `when` (>= now). `span`
     * tags the dispatch trace event with the causal transfer the
     * callback serves (e.g. a flit delivery), so a divergence in the
     * dispatch stream itself can be traced back to a transfer.
     */
    void schedule(Tick when, Callback fn, SpanId span = kSpanNone);

    /** Schedule `fn` to run `delay` picoseconds from now. */
    void scheduleAfter(Tick delay, Callback fn, SpanId span = kSpanNone);

    /**
     * Run events until the queue drains or `limit` events have executed.
     * @return number of events executed.
     */
    std::uint64_t run(std::uint64_t limit = ~std::uint64_t(0));

    /**
     * Run events with timestamp <= `until`. Afterwards now() == until
     * (even if the queue drained earlier).
     * @return number of events executed.
     */
    std::uint64_t runUntil(Tick until);

    /** Drop all pending events and reset time to zero. */
    void reset();

    /**
     * The tracer for this simulation. Every model holds (directly or
     * through its owner) a pointer to the queue, so this is the natural
     * per-simulation scope for trace sinks. With no sinks attached the
     * instrumentation reduces to one mask test per probe.
     */
    Tracer &tracer() { return tracer_; }
    const Tracer &tracer() const { return tracer_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback fn;
        SpanId span;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            return a.when != b.when ? a.when > b.when : a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    Tracer tracer_;
};

} // namespace tsm

#endif // TSM_SIM_EVENT_QUEUE_HH
