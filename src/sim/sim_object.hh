/**
 * @file
 * Base class for named simulation components sharing one event queue.
 */

#ifndef TSM_SIM_SIM_OBJECT_HH
#define TSM_SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "sim/event_queue.hh"

namespace tsm {

/**
 * A named component bound to an event queue. Components form a flat
 * registry-by-name convention ("node3.tsp5.port2") purely for
 * diagnostics; ownership is managed by the containing system object.
 */
class SimObject
{
  public:
    SimObject(std::string name, EventQueue &eq)
        : name_(std::move(name)), eventq_(eq)
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }
    EventQueue &eventq() const { return eventq_; }
    Tick now() const { return eventq_.now(); }

  private:
    std::string name_;
    EventQueue &eventq_;
};

} // namespace tsm

#endif // TSM_SIM_SIM_OBJECT_HH
