/**
 * @file
 * Host-side classification of scheduled events.
 *
 * Every callback handed to the EventQueue carries an `EventKind` tag
 * naming the subsystem it belongs to — chip instruction issue, flit
 * delivery, HAC alignment rounds, characterizer probes, baseline
 * router hops. The tag has no effect on simulated behavior; it exists
 * purely so the host-side self-profiler (src/hostprof) can attribute
 * *wall-clock* time per event kind and answer "where does the
 * simulator itself spend its time?" — the measurement that gates any
 * future event-queue optimization claim.
 */

#ifndef TSM_SIM_EVENT_KIND_HH
#define TSM_SIM_EVENT_KIND_HH

#include <cstdint>

namespace tsm {

/** Subsystem a scheduled event's callback belongs to. */
enum class EventKind : std::uint8_t
{
    Generic,    ///< untagged callbacks (tests, ad-hoc harness events)
    ChipIssue,  ///< TSP instruction issue/step (arch/chip)
    NetDeliver, ///< flit delivery at the end of a link leg (net)
    HacUpdate,  ///< periodic HAC alignment round (sync/hac_aligner)
    SyncProbe,  ///< link characterizer echo probes (sync)
    RouterHop,  ///< baseline hardware-router arbitration/hops
};

inline constexpr unsigned kNumEventKinds = 6;

/** Short lowercase name ("chip_issue", "net_deliver", ...). */
constexpr const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::Generic:
        return "generic";
      case EventKind::ChipIssue:
        return "chip_issue";
      case EventKind::NetDeliver:
        return "net_deliver";
      case EventKind::HacUpdate:
        return "hac_update";
      case EventKind::SyncProbe:
        return "sync_probe";
      case EventKind::RouterHop:
        return "router_hop";
    }
    return "?";
}

} // namespace tsm

#endif // TSM_SIM_EVENT_KIND_HH
