tsm_module(sim
    event_queue.cc
)
