#include "sim/event_queue.hh"

#include "common/log.hh"
#include "hostprof/hostprof.hh"

namespace tsm {

void
EventQueue::schedule(Tick when, Callback fn, SpanId span, EventKind kind)
{
    TSM_ASSERT(when >= now_, "cannot schedule an event in the past");
    if (hostprof_) {
        const bool timed = hostprof_->insertSampleBegin();
        heap_.push(Entry{when, nextSeq_++, std::move(fn), span, kind});
        hostprof_->insertEnd(heap_.size(), timed);
        return;
    }
    heap_.push(Entry{when, nextSeq_++, std::move(fn), span, kind});
}

void
EventQueue::scheduleAfter(Tick delay, Callback fn, SpanId span,
                          EventKind kind)
{
    schedule(now_ + delay, std::move(fn), span, kind);
}

std::uint64_t
EventQueue::run(std::uint64_t limit)
{
    std::uint64_t executed = 0;
    if (hostprof_)
        hostprof_->runBegin(now_, heap_.size());
    while (!heap_.empty() && executed < limit) {
        // Copy out before pop so the callback may schedule new events.
        Entry top = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        now_ = top.when;
        if (tracer_.wants(TraceCat::Sim))
            tracer_.emit({top.when, 0, TraceCat::Sim, 0, "dispatch",
                          std::int64_t(top.seq), 0, top.span});
        if (hostprof_) {
            hostprof_->dispatchBegin();
            top.fn();
            hostprof_->dispatchEnd(top.kind, now_, heap_.size());
        } else {
            top.fn();
        }
        ++executed;
    }
    if (hostprof_)
        hostprof_->runEnd(now_, heap_.size());
    return executed;
}

std::uint64_t
EventQueue::runUntil(Tick until)
{
    std::uint64_t executed = 0;
    if (hostprof_)
        hostprof_->runBegin(now_, heap_.size());
    while (!heap_.empty() && heap_.top().when <= until) {
        Entry top = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        now_ = top.when;
        if (tracer_.wants(TraceCat::Sim))
            tracer_.emit({top.when, 0, TraceCat::Sim, 0, "dispatch",
                          std::int64_t(top.seq), 0, top.span});
        if (hostprof_) {
            hostprof_->dispatchBegin();
            top.fn();
            hostprof_->dispatchEnd(top.kind, now_, heap_.size());
        } else {
            top.fn();
        }
        ++executed;
    }
    if (now_ < until)
        now_ = until;
    if (hostprof_)
        hostprof_->runEnd(now_, heap_.size());
    return executed;
}

void
EventQueue::reset()
{
    heap_ = {};
    now_ = 0;
    nextSeq_ = 0;
}

} // namespace tsm
