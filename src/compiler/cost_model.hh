/**
 * @file
 * The compiler's exact cycle-count cost model for the TSP.
 *
 * Paper §4.1: "we compute the precise execution time of each pipe
 * stage's sub-task ... we know the exact execution time of each stage
 * (to the clock cycle) and therefore do not require dynamic profiling".
 * That property is what makes the parallel decomposition "precise and
 * explicitly under control of the compiler", and what lets Fig 17
 * compare the compiler's latency estimate against measurement.
 */

#ifndef TSM_COMPILER_COST_MODEL_HH
#define TSM_COMPILER_COST_MODEL_HH

#include "baseline/gpu_matmul.hh"
#include "compiler/graph.hh"

namespace tsm {

/** TSP per-op timing parameters. */
struct TspCostModel
{
    TspMatmulModel mxm;

    /** Vector-unit throughput: lanes processed per cycle. */
    double vxmLanesPerCycle = 16 * 320;

    /** SXM (on-chip data movement) bytes per cycle. */
    double sxmBytesPerCycle = 320 * 2;

    /** Fixed per-op issue overhead in cycles. */
    Cycle opOverheadCycles = 16;

    /** Host link: PCIe Gen4 x16 payload bandwidth. */
    double pcieBytesPerSec = kPcieGen4x16BytesPerSec;

    /** Fixed host-invocation overhead per transfer (driver + DMA). */
    double pcieInvocationSec = 4e-6;

    /** Cycles to execute one graph node on a single TSP. */
    Cycle nodeCycles(const GraphNode &node) const;

    /** Cycles for an entire (single-device) graph, executed serially. */
    Cycle graphCycles(const Graph &graph) const;

    /** Seconds to move `bytes` across PCIe (one invocation). */
    double pcieSeconds(Bytes bytes) const;

    /** Convert cycles to seconds at the nominal core clock. */
    static double
    cyclesToSeconds(Cycle cycles)
    {
        return double(cycles) / kCoreFreqHz;
    }
};

} // namespace tsm

#endif // TSM_COMPILER_COST_MODEL_HH
