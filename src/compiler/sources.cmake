tsm_module(compiler
    graph.cc
    cost_model.cc
    pipeline.cc
)
