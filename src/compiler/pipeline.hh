/**
 * @file
 * Pipelined model parallelism: partition a chain of layer blocks
 * across TSPs (paper §4.1, §5.4, Fig 18, Fig 20).
 *
 * Two balancing modes reproduce the paper's Fig 20 compiler ablation:
 *
 *  - FlopsOnly ("initial, unoptimized compiler"): stages are cut to
 *    equalize floating-point work only, and inter-stage activation
 *    transfers are not overlapped with compute — each inference pays
 *    compute + C2C serially at every stage.
 *
 *  - MovementAware ("optimized compiler"): stage cuts consider the
 *    data movement at each candidate boundary, and the schedule
 *    overlaps activation transfers with compute, so a stage costs
 *    max(compute, C2C). The paper reports ~26% realized-throughput
 *    improvement from this change.
 */

#ifndef TSM_COMPILER_PIPELINE_HH
#define TSM_COMPILER_PIPELINE_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "ssn/transfer.hh"

namespace tsm {

/** Compiler balancing mode (Fig 20 a/b). */
enum class BalanceMode : std::uint8_t { FlopsOnly, MovementAware };

/** Cost of one layer block, as computed by the cost model. */
struct BlockCost
{
    Cycle computeCycles = 0;

    /**
     * On-chip data movement (SXM reshapes, stream concatenation)
     * that a naive schedule pays serially but an optimized schedule
     * hides under compute.
     */
    Cycle movementCycles = 0;

    /** Bytes of activations leaving this block (to the next). */
    Bytes activationBytes = 0;

    /** Resident parameter bytes this block must hold in SRAM. */
    Bytes weightBytes = 0;
};

/** One pipeline stage mapped to one TSP. */
struct PipelineStage
{
    unsigned firstBlock = 0;
    unsigned numBlocks = 0;
    Cycle computeCycles = 0;

    /** On-chip movement cycles (hidden by the optimized schedule). */
    Cycle movementCycles = 0;

    /** C2C cycles to ship this stage's boundary activations. */
    Cycle commCycles = 0;

    /** Resident parameter bytes on this TSP. */
    Bytes weightBytes = 0;

    /** Stage occupancy per inference under the plan's mode. */
    Cycle stageCycles(BalanceMode mode) const;
};

/** A complete pipeline-parallel plan. */
struct PipelinePlan
{
    BalanceMode mode = BalanceMode::MovementAware;
    std::vector<PipelineStage> stages;

    /** Slowest stage: the pipeline's steady-state bottleneck. */
    Cycle bottleneckCycles() const;

    /** End-to-end latency of one inference (fill the pipe once). */
    Cycle latencyCycles() const;

    /** Steady-state inferences per second at the nominal clock. */
    double throughputPerSec() const;

    /**
     * True if every stage's resident weights fit its TSP's 220 MiB
     * SRAM (minus a scratch reserve for activations and the
     * cut-through spill buffer) — the paper's §1 "fit" requirement
     * that forces BERT-Large onto 4 chips in the first place.
     */
    bool fits(Bytes scratch_reserve = 32 * kMiB) const;

    /**
     * The induced inter-stage traffic for the SSN scheduler: one
     * transfer per stage boundary, device i -> i+1 (flow ids from
     * `first_flow`).
     */
    std::vector<TensorTransfer> transfers(FlowId first_flow = 1) const;
};

/**
 * Partition `blocks` into `devices` contiguous stages.
 *
 * @param blocks Per-block costs, in chain order.
 * @param devices Number of TSPs (stages).
 * @param mode Balancing mode (see file comment).
 * @param comm_cycles_per_vector Serialization budget per 320 B
 *        activation vector at a stage boundary (how many parallel
 *        links the transfer spreads over is folded in by the caller).
 */
PipelinePlan planPipeline(const std::vector<BlockCost> &blocks,
                          unsigned devices, BalanceMode mode,
                          double comm_cycles_per_vector = 24.0);

} // namespace tsm

#endif // TSM_COMPILER_PIPELINE_HH
