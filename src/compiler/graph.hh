/**
 * @file
 * The compiler's tensor-op graph IR.
 *
 * Paper §4.1: "SSN takes advantage of a ML model's static computation
 * graph and a priori knowledge of the traffic pattern". This IR is
 * that static graph: a DAG of tensor operations with shapes known at
 * compile time, from which the partitioner derives per-device
 * sub-tasks and the induced inter-device traffic pattern.
 */

#ifndef TSM_COMPILER_GRAPH_HH
#define TSM_COMPILER_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace tsm {

using NodeId = std::uint32_t;
inline constexpr NodeId kNodeInvalid = ~NodeId(0);

/** Tensor element types the hardware computes on. */
enum class DType : std::uint8_t { Fp16, Int8 };

/** Bytes per element. */
constexpr Bytes
dtypeBytes(DType t)
{
    return t == DType::Fp16 ? 2 : 1;
}

/** A dense tensor shape (row-major logical dims). */
struct TensorShape
{
    std::vector<std::uint64_t> dims;
    DType dtype = DType::Fp16;

    std::uint64_t elements() const;
    Bytes bytes() const { return elements() * dtypeBytes(dtype); }

    /** Number of 320-byte vectors occupied. */
    std::uint64_t vectors() const { return bytesToVectors(bytes()); }

    std::string str() const;
};

/** Operation kinds. */
enum class OpKind : std::uint8_t
{
    Input,       ///< graph input (host -> device over PCIe)
    Weights,     ///< resident parameters (preloaded to SRAM)
    MatMul,      ///< C[MxN] = A[MxK] . B[KxN]
    Elementwise, ///< add/mul/gelu/...: flops ~ elements
    Softmax,     ///< row softmax: ~5 flops per element
    LayerNorm,   ///< ~8 flops per element
    Transpose,   ///< data movement only
    Reduce,      ///< sum of partials: flops ~ elements * (fan_in - 1)
    Output,      ///< graph output (device -> host over PCIe)
};

const char *opKindName(OpKind k);

/** One node of the computation graph. */
struct GraphNode
{
    NodeId id = kNodeInvalid;
    OpKind kind = OpKind::Input;
    std::string label;
    std::vector<NodeId> inputs;
    TensorShape output;

    /** MatMul reduction depth (K); unused otherwise. */
    std::uint64_t contractionK = 0;

    /** Floating-point operations this node performs. */
    double flops() const;
};

/** The static computation graph. */
class Graph
{
  public:
    NodeId addInput(TensorShape shape, std::string label = "input");
    NodeId addWeights(TensorShape shape, std::string label = "weights");

    /** C[m x n] = A . B with A's id `act`, B's id `weights`. */
    NodeId addMatMul(NodeId act, NodeId weights, std::uint64_t m,
                     std::uint64_t k, std::uint64_t n,
                     DType dtype = DType::Fp16,
                     std::string label = "matmul");

    NodeId addElementwise(std::vector<NodeId> inputs, TensorShape shape,
                          std::string label = "eltwise");
    NodeId addSoftmax(NodeId input, std::string label = "softmax");
    NodeId addLayerNorm(NodeId input, std::string label = "layernorm");
    NodeId addTranspose(NodeId input, TensorShape shape,
                        std::string label = "transpose");
    NodeId addReduce(std::vector<NodeId> partials,
                     std::string label = "reduce");
    NodeId addOutput(NodeId input, std::string label = "output");

    const GraphNode &node(NodeId id) const { return nodes_[id]; }
    std::size_t size() const { return nodes_.size(); }
    const std::vector<GraphNode> &nodes() const { return nodes_; }

    /** Topological order (inputs first); the insert order is one. */
    std::vector<NodeId> topoOrder() const;

    /** Nodes consuming `id`. */
    std::vector<NodeId> consumers(NodeId id) const;

    /** Total flops over all nodes. */
    double totalFlops() const;

    /** Total resident parameter bytes (Weights nodes). */
    Bytes weightBytes() const;

    /** Panic if any edge is malformed (use in tests). */
    void validate() const;

  private:
    NodeId add(GraphNode node);

    std::vector<GraphNode> nodes_;
};

} // namespace tsm

#endif // TSM_COMPILER_GRAPH_HH
