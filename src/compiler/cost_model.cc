#include "compiler/cost_model.hh"

#include <cmath>

#include "common/log.hh"

namespace tsm {

Cycle
TspCostModel::nodeCycles(const GraphNode &node) const
{
    switch (node.kind) {
      case OpKind::MatMul: {
        const auto est = tspGemmUtilization(
            mxm, node.output.dims.at(0), node.contractionK,
            node.output.dims.at(1));
        return est.cycles + opOverheadCycles;
      }
      case OpKind::Elementwise:
      case OpKind::Softmax:
      case OpKind::LayerNorm: {
        const double mult = node.kind == OpKind::Elementwise ? 1.0
                            : node.kind == OpKind::Softmax   ? 5.0
                                                             : 8.0;
        return Cycle(std::ceil(mult * double(node.output.elements()) /
                               vxmLanesPerCycle)) +
               opOverheadCycles;
      }
      case OpKind::Transpose:
        return Cycle(std::ceil(double(node.output.bytes()) /
                               sxmBytesPerCycle)) +
               opOverheadCycles;
      case OpKind::Reduce: {
        const double adds = double(node.output.elements()) *
                            double(node.inputs.size() > 1
                                       ? node.inputs.size() - 1
                                       : 0);
        return Cycle(std::ceil(adds / vxmLanesPerCycle)) +
               opOverheadCycles;
      }
      case OpKind::Input:
      case OpKind::Weights:
      case OpKind::Output:
        return 0; // host-side; costed via pcieSeconds
    }
    return 0;
}

Cycle
TspCostModel::graphCycles(const Graph &graph) const
{
    Cycle total = 0;
    for (const auto &n : graph.nodes())
        total += nodeCycles(n);
    return total;
}

double
TspCostModel::pcieSeconds(Bytes bytes) const
{
    return pcieInvocationSec + double(bytes) / pcieBytesPerSec;
}

} // namespace tsm
