#include "compiler/graph.hh"

#include <algorithm>

#include "common/format.hh"
#include "common/log.hh"

namespace tsm {

std::uint64_t
TensorShape::elements() const
{
    std::uint64_t total = 1;
    for (auto d : dims)
        total *= d;
    return total;
}

std::string
TensorShape::str() const
{
    std::string s = "[";
    for (std::size_t i = 0; i < dims.size(); ++i) {
        s += format("{}", dims[i]);
        if (i + 1 < dims.size())
            s += "x";
    }
    s += dtype == DType::Fp16 ? "]f16" : "]i8";
    return s;
}

const char *
opKindName(OpKind k)
{
    switch (k) {
      case OpKind::Input: return "input";
      case OpKind::Weights: return "weights";
      case OpKind::MatMul: return "matmul";
      case OpKind::Elementwise: return "eltwise";
      case OpKind::Softmax: return "softmax";
      case OpKind::LayerNorm: return "layernorm";
      case OpKind::Transpose: return "transpose";
      case OpKind::Reduce: return "reduce";
      case OpKind::Output: return "output";
    }
    return "?";
}

double
GraphNode::flops() const
{
    switch (kind) {
      case OpKind::MatMul:
        // 2*M*K*N: output elements each need K MACs.
        return 2.0 * double(output.elements()) * double(contractionK);
      case OpKind::Elementwise:
        return double(output.elements());
      case OpKind::Softmax:
        return 5.0 * double(output.elements());
      case OpKind::LayerNorm:
        return 8.0 * double(output.elements());
      case OpKind::Reduce:
        return double(output.elements()) *
               double(inputs.size() > 1 ? inputs.size() - 1 : 0);
      case OpKind::Input:
      case OpKind::Weights:
      case OpKind::Transpose:
      case OpKind::Output:
        return 0.0;
    }
    return 0.0;
}

NodeId
Graph::add(GraphNode node)
{
    node.id = NodeId(nodes_.size());
    for (NodeId in : node.inputs)
        TSM_ASSERT(in < node.id, "graph edges must point backwards");
    nodes_.push_back(std::move(node));
    return nodes_.back().id;
}

NodeId
Graph::addInput(TensorShape shape, std::string label)
{
    GraphNode n;
    n.kind = OpKind::Input;
    n.output = std::move(shape);
    n.label = std::move(label);
    return add(std::move(n));
}

NodeId
Graph::addWeights(TensorShape shape, std::string label)
{
    GraphNode n;
    n.kind = OpKind::Weights;
    n.output = std::move(shape);
    n.label = std::move(label);
    return add(std::move(n));
}

NodeId
Graph::addMatMul(NodeId act, NodeId weights, std::uint64_t m,
                 std::uint64_t k, std::uint64_t n, DType dtype,
                 std::string label)
{
    GraphNode node;
    node.kind = OpKind::MatMul;
    node.inputs = {act, weights};
    node.output.dims = {m, n};
    node.output.dtype = dtype;
    node.contractionK = k;
    node.label = std::move(label);
    return add(std::move(node));
}

NodeId
Graph::addElementwise(std::vector<NodeId> inputs, TensorShape shape,
                      std::string label)
{
    GraphNode n;
    n.kind = OpKind::Elementwise;
    n.inputs = std::move(inputs);
    n.output = std::move(shape);
    n.label = std::move(label);
    return add(std::move(n));
}

NodeId
Graph::addSoftmax(NodeId input, std::string label)
{
    GraphNode n;
    n.kind = OpKind::Softmax;
    n.inputs = {input};
    n.output = nodes_[input].output;
    n.label = std::move(label);
    return add(std::move(n));
}

NodeId
Graph::addLayerNorm(NodeId input, std::string label)
{
    GraphNode n;
    n.kind = OpKind::LayerNorm;
    n.inputs = {input};
    n.output = nodes_[input].output;
    n.label = std::move(label);
    return add(std::move(n));
}

NodeId
Graph::addTranspose(NodeId input, TensorShape shape, std::string label)
{
    GraphNode n;
    n.kind = OpKind::Transpose;
    n.inputs = {input};
    n.output = std::move(shape);
    n.label = std::move(label);
    return add(std::move(n));
}

NodeId
Graph::addReduce(std::vector<NodeId> partials, std::string label)
{
    TSM_ASSERT(!partials.empty(), "reduce of nothing");
    GraphNode n;
    n.kind = OpKind::Reduce;
    n.output = nodes_[partials[0]].output;
    n.inputs = std::move(partials);
    n.label = std::move(label);
    return add(std::move(n));
}

NodeId
Graph::addOutput(NodeId input, std::string label)
{
    GraphNode n;
    n.kind = OpKind::Output;
    n.inputs = {input};
    n.output = nodes_[input].output;
    n.label = std::move(label);
    return add(std::move(n));
}

std::vector<NodeId>
Graph::topoOrder() const
{
    // Construction enforces backward edges, so ids are already
    // topologically ordered.
    std::vector<NodeId> order(nodes_.size());
    for (NodeId i = 0; i < nodes_.size(); ++i)
        order[i] = i;
    return order;
}

std::vector<NodeId>
Graph::consumers(NodeId id) const
{
    std::vector<NodeId> out;
    for (const auto &n : nodes_)
        if (std::find(n.inputs.begin(), n.inputs.end(), id) !=
            n.inputs.end())
            out.push_back(n.id);
    return out;
}

double
Graph::totalFlops() const
{
    double total = 0.0;
    for (const auto &n : nodes_)
        total += n.flops();
    return total;
}

Bytes
Graph::weightBytes() const
{
    Bytes total = 0;
    for (const auto &n : nodes_)
        if (n.kind == OpKind::Weights)
            total += n.output.bytes();
    return total;
}

void
Graph::validate() const
{
    for (const auto &n : nodes_) {
        for (NodeId in : n.inputs)
            TSM_ASSERT(in < n.id, "forward edge in DAG");
        if (n.kind == OpKind::MatMul) {
            TSM_ASSERT(n.inputs.size() == 2, "matmul needs 2 inputs");
            TSM_ASSERT(n.contractionK > 0, "matmul needs K");
        }
    }
}

} // namespace tsm
