#include "compiler/pipeline.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace tsm {

Cycle
PipelineStage::stageCycles(BalanceMode mode) const
{
    if (mode == BalanceMode::FlopsOnly) {
        // Naive schedule: on-chip movement and C2C both serialize
        // after compute.
        return computeCycles + movementCycles + commCycles;
    }
    // Optimized schedule: movement and communication overlap compute.
    return std::max(computeCycles, commCycles);
}

Cycle
PipelinePlan::bottleneckCycles() const
{
    Cycle worst = 0;
    for (const auto &s : stages)
        worst = std::max(worst, s.stageCycles(mode));
    return worst;
}

Cycle
PipelinePlan::latencyCycles() const
{
    Cycle total = 0;
    for (const auto &s : stages)
        total += s.stageCycles(mode);
    return total;
}

double
PipelinePlan::throughputPerSec() const
{
    const Cycle bn = bottleneckCycles();
    TSM_ASSERT(bn > 0, "empty pipeline");
    return kCoreFreqHz / double(bn);
}

bool
PipelinePlan::fits(Bytes scratch_reserve) const
{
    TSM_ASSERT(scratch_reserve < kLocalMemBytes,
               "scratch reserve exceeds device memory");
    const Bytes budget = kLocalMemBytes - scratch_reserve;
    for (const auto &s : stages)
        if (s.weightBytes > budget)
            return false;
    return true;
}

std::vector<TensorTransfer>
PipelinePlan::transfers(FlowId first_flow) const
{
    std::vector<TensorTransfer> out;
    Cycle ready = 0;
    for (std::size_t s = 0; s + 1 < stages.size(); ++s) {
        // Boundary activations: sized from the comm cycles (inverse of
        // the planner's conversion, conservative) — callers that need
        // byte-exact transfers build them from the block list instead.
        TensorTransfer t;
        t.flow = first_flow + FlowId(s);
        t.src = TspId(s);
        t.dst = TspId(s + 1);
        t.vectors = std::max<std::uint32_t>(
            1, std::uint32_t(stages[s].commCycles / 24));
        ready += stages[s].stageCycles(mode);
        t.earliest = ready;
        out.push_back(t);
    }
    return out;
}

PipelinePlan
planPipeline(const std::vector<BlockCost> &blocks, unsigned devices,
             BalanceMode mode, double comm_cycles_per_vector)
{
    TSM_ASSERT(!blocks.empty(), "no blocks to partition");
    TSM_ASSERT(devices >= 1, "need at least one device");
    const unsigned nb = unsigned(blocks.size());
    const unsigned nd = std::min(devices, nb);

    // Cost of a stage [i, j): compute always; the boundary comm after
    // block j-1 (if not the last block).
    auto comm_cycles = [&](unsigned boundary_block) -> Cycle {
        if (boundary_block + 1 >= nb)
            return 0;
        const auto vectors =
            bytesToVectors(blocks[boundary_block].activationBytes);
        return Cycle(std::ceil(double(vectors) * comm_cycles_per_vector));
    };
    auto stage_cost = [&](unsigned i, unsigned j) -> Cycle {
        Cycle compute = 0;
        for (unsigned b = i; b < j; ++b)
            compute += blocks[b].computeCycles;
        const Cycle comm = comm_cycles(j - 1);
        // FlopsOnly *cuts* ignore movement entirely; MovementAware
        // cuts optimize the realized stage occupancy.
        if (mode == BalanceMode::FlopsOnly)
            return compute;
        return std::max(compute, comm);
    };

    // Classic linear-partition DP: minimize the maximum stage cost.
    const Cycle inf = ~Cycle(0);
    std::vector<std::vector<Cycle>> best(
        nd + 1, std::vector<Cycle>(nb + 1, inf));
    std::vector<std::vector<unsigned>> cut(
        nd + 1, std::vector<unsigned>(nb + 1, 0));
    best[0][0] = 0;
    for (unsigned d = 1; d <= nd; ++d) {
        for (unsigned j = d; j <= nb; ++j) {
            for (unsigned i = d - 1; i < j; ++i) {
                if (best[d - 1][i] == inf)
                    continue;
                const Cycle cost =
                    std::max(best[d - 1][i], stage_cost(i, j));
                if (cost < best[d][j]) {
                    best[d][j] = cost;
                    cut[d][j] = i;
                }
            }
        }
    }

    // Recover the stage boundaries.
    std::vector<unsigned> bounds(nd + 1);
    bounds[nd] = nb;
    for (unsigned d = nd; d > 0; --d)
        bounds[d - 1] = cut[d][bounds[d]];
    TSM_ASSERT(bounds[0] == 0, "partition does not start at block 0");

    PipelinePlan plan;
    plan.mode = mode;
    for (unsigned d = 0; d < nd; ++d) {
        PipelineStage stage;
        stage.firstBlock = bounds[d];
        stage.numBlocks = bounds[d + 1] - bounds[d];
        for (unsigned b = bounds[d]; b < bounds[d + 1]; ++b) {
            stage.computeCycles += blocks[b].computeCycles;
            stage.movementCycles += blocks[b].movementCycles;
            stage.weightBytes += blocks[b].weightBytes;
        }
        stage.commCycles = comm_cycles(bounds[d + 1] - 1);
        plan.stages.push_back(stage);
    }
    return plan;
}

} // namespace tsm
