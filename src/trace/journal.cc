#include "trace/journal.hh"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/log.hh"

namespace tsm {

std::string
journalLine(const TraceEvent &ev)
{
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "%" PRIu64 " %s %" PRIu32 " %s %" PRId64 " %" PRId64
                  " %" PRIx64,
                  std::uint64_t(ev.tick), traceCatName(ev.cat), ev.actor,
                  ev.name[0] ? ev.name : "-", ev.a, ev.b,
                  std::uint64_t(ev.span));
    return buf;
}

JournalSink::JournalSink(std::ostream &os) : os_(&os)
{
    *os_ << kJournalMagic << "\n";
}

JournalSink::JournalSink(const std::string &path)
    : owned_(std::make_unique<std::ofstream>(path)), os_(owned_.get())
{
    if (!owned_->is_open())
        fatal("cannot open journal output file '{}'", path);
    *os_ << kJournalMagic << "\n";
}

JournalSink::~JournalSink()
{
    finish();
}

void
JournalSink::event(const TraceEvent &ev)
{
    if (finished_)
        return;
    *os_ << journalLine(ev) << "\n";
    ++events_;
}

void
JournalSink::finish()
{
    if (finished_)
        return;
    finished_ = true;
    os_->flush();
}

bool
parseJournalLine(const std::string &line, JournalRecord &out)
{
    std::istringstream is(line);
    std::uint64_t tick = 0;
    std::string span_hex;
    if (!(is >> tick >> out.cat >> out.actor >> out.name >> out.a >> out.b >>
          span_hex))
        return false;
    out.tick = Tick(tick);
    char *end = nullptr;
    out.span = SpanId(std::strtoull(span_hex.c_str(), &end, 16));
    if (end == nullptr || *end != '\0')
        return false;
    std::string extra;
    if (is >> extra)
        return false; // trailing junk
    return true;
}

bool
readJournal(const std::string &path, std::vector<JournalRecord> &out,
            std::string *error)
{
    std::ifstream is(path);
    if (!is.is_open()) {
        if (error)
            *error = "cannot open journal file '" + path + "'";
        return false;
    }
    std::string line;
    std::size_t lineno = 0;
    bool saw_magic = false;
    while (std::getline(is, line)) {
        ++lineno;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (lineno == 1) {
            if (line != kJournalMagic) {
                if (error)
                    *error = path + ": not a tsm-journal-v1 file";
                return false;
            }
            saw_magic = true;
            continue;
        }
        if (line.empty() || line[0] == '#')
            continue;
        JournalRecord rec;
        if (!parseJournalLine(line, rec)) {
            if (error)
                *error = path + ":" + std::to_string(lineno) +
                         ": malformed journal line";
            return false;
        }
        rec.line = lineno;
        rec.raw = line;
        out.push_back(std::move(rec));
    }
    if (!saw_magic) {
        if (error)
            *error = path + ": empty file (missing tsm-journal-v1 header)";
        return false;
    }
    return true;
}

} // namespace tsm
