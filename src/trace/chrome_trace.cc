#include "trace/chrome_trace.hh"

#include <cstdio>
#include <string_view>

#include "common/format.hh"
#include "common/log.hh"

namespace tsm {

namespace {

/** Picoseconds to the format's microsecond timestamps. */
std::string
psToUsField(Tick ps)
{
    // 6 decimals keeps single-picosecond resolution exactly.
    char buf[48];
    std::snprintf(buf, sizeof buf, "%llu.%06llu",
                  (unsigned long long)(ps / kPsPerUs),
                  (unsigned long long)(ps % kPsPerUs));
    return buf;
}

} // namespace

ChromeTraceSink::ChromeTraceSink(std::ostream &os, unsigned mask)
    : os_(&os), mask_(mask)
{
    writeHeader();
}

ChromeTraceSink::ChromeTraceSink(const std::string &path, unsigned mask)
    : owned_(std::make_unique<std::ofstream>(path)), os_(owned_.get()),
      mask_(mask)
{
    if (!owned_->is_open())
        fatal("cannot open trace output file '{}'", path);
    writeHeader();
}

ChromeTraceSink::~ChromeTraceSink()
{
    finish();
}

void
ChromeTraceSink::writeHeader()
{
    *os_ << "[";
    // One "process" per subsystem so chrome://tracing groups lanes.
    for (unsigned c = 0; c < kNumTraceCats; ++c) {
        writeRecord(format("{{\"name\":\"process_name\",\"ph\":\"M\","
                           "\"pid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                           c, traceCatName(TraceCat(c))));
    }
}

void
ChromeTraceSink::writeRecord(const std::string &json)
{
    if (records_++ > 0)
        *os_ << ",";
    *os_ << "\n" << json;
}

void
ChromeTraceSink::event(const TraceEvent &ev)
{
    if (finished_)
        return;
    const char *ph = ev.dur > 0 ? "X" : "i";
    std::string rec =
        format("{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\","
               "\"ts\":{},",
               ev.name, traceCatName(ev.cat), ph, psToUsField(ev.tick));
    if (ev.dur > 0)
        rec += format("\"dur\":{},", psToUsField(ev.dur));
    else
        rec += "\"s\":\"t\",";
    rec += format("\"pid\":{},\"tid\":{},\"args\":{{\"a\":{},\"b\":{}",
                  unsigned(ev.cat), ev.actor, ev.a, ev.b);
    if (ev.span != kSpanNone)
        rec += format(",\"span\":\"{}\"", spanStr(ev.span));
    rec += "}}";
    writeRecord(rec);
    ++events_;
    maybeWriteFlow(ev);
}

/**
 * Causal transfers render as Perfetto flow arrows: the span open is a
 * flow start (ph "s"), every link-leg arrival a flow step ("t"), and
 * the consuming receive the flow finish ("f"), all keyed by the
 * transfer's parent span id so multi-hop journeys connect across the
 * chip and link lanes.
 */
void
ChromeTraceSink::maybeWriteFlow(const TraceEvent &ev)
{
    if (ev.span == kSpanNone)
        return;
    const std::string_view name(ev.name);
    std::string_view ph;
    if (ev.cat == TraceCat::Ssn && name == "span_open")
        ph = "s";
    else if (ev.cat == TraceCat::Net && name == "rx")
        ph = "t";
    else if (ev.cat == TraceCat::Ssn && name == "span_close")
        ph = "f";
    else
        return;
    std::string rec =
        format("{{\"name\":\"transfer\",\"cat\":\"span\",\"ph\":\"{}\","
               "\"id\":{},\"ts\":{},\"pid\":{},\"tid\":{}",
               ph, std::uint64_t(spanParent(ev.span)), psToUsField(ev.tick),
               unsigned(ev.cat), ev.actor);
    if (ph == "f")
        rec += ",\"bp\":\"e\""; // bind to the enclosing slice
    rec += "}";
    writeRecord(rec);
    ++flows_;
}

void
ChromeTraceSink::finish()
{
    if (finished_)
        return;
    finished_ = true;
    *os_ << "\n]\n";
    os_->flush();
}

} // namespace tsm
