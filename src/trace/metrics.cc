#include "trace/metrics.hh"

namespace tsm {

std::uint64_t &
MetricsRegistry::counter(const std::string &name)
{
    return counters_[name];
}

std::uint64_t
MetricsRegistry::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

Accumulator &
MetricsRegistry::accumulator(const std::string &name)
{
    return accums_[name];
}

const Accumulator *
MetricsRegistry::findAccumulator(const std::string &name) const
{
    auto it = accums_.find(name);
    return it == accums_.end() ? nullptr : &it->second;
}

Log2Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    return histograms_[name];
}

const Log2Histogram *
MetricsRegistry::findHistogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void
MetricsRegistry::clear()
{
    counters_.clear();
    accums_.clear();
    histograms_.clear();
}

Table
MetricsRegistry::table() const
{
    Table t({"metric", "count", "mean", "min", "p50", "p95", "p99", "max",
             "sum"});
    for (const auto &[name, value] : counters_)
        t.addRow({name, Table::num(value), "", "", "", "", "", "", ""});
    for (const auto &[name, acc] : accums_) {
        if (acc.count() == 0) {
            t.addRow({name, "0", "", "", "", "", "", "", ""});
            continue;
        }
        t.addRow({name, Table::num(acc.count()), Table::num(acc.mean(), 3),
                  Table::num(acc.min(), 3), "", "", "",
                  Table::num(acc.max(), 3), Table::num(acc.sum(), 3)});
    }
    for (const auto &[name, h] : histograms_) {
        if (h.count() == 0) {
            t.addRow({name, "0", "", "", "", "", "", "", ""});
            continue;
        }
        t.addRow({name, Table::num(h.count()), Table::num(h.mean(), 3),
                  Table::num(h.min()), Table::num(h.p50()),
                  Table::num(h.p95()), Table::num(h.p99()),
                  Table::num(h.max()), Table::num(h.sum())});
    }
    return t;
}

std::string
MetricsRegistry::report() const
{
    return table().ascii();
}

void
MetricsSink::event(const TraceEvent &ev)
{
    std::string key = traceCatName(ev.cat);
    key += '.';
    key += ev.name;
    ++reg_.counter(key);
    if (ev.dur > 0) {
        key += ".us";
        reg_.accumulator(key).add(psToUs(double(ev.dur)));
    }
}

} // namespace tsm
