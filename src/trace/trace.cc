#include "trace/trace.hh"

#include <algorithm>

#include "common/log.hh"

namespace tsm {

const char *
traceCatName(TraceCat cat)
{
    switch (cat) {
      case TraceCat::Sim:
        return "sim";
      case TraceCat::Chip:
        return "chip";
      case TraceCat::Net:
        return "net";
      case TraceCat::Ssn:
        return "ssn";
      case TraceCat::Sync:
        return "sync";
      case TraceCat::Runtime:
        return "runtime";
    }
    return "?";
}

void
Tracer::addSink(TraceSink *sink)
{
    TSM_ASSERT(sink != nullptr, "cannot attach a null trace sink");
    for (const auto &att : sinks_)
        TSM_ASSERT(att.sink != sink, "trace sink attached twice");
    sinks_.push_back({sink, sink->categoryMask() & kTraceAllCats});
    mask_ |= sinks_.back().mask;
}

void
Tracer::removeSink(TraceSink *sink)
{
    sinks_.erase(std::remove_if(sinks_.begin(), sinks_.end(),
                                [sink](const Attached &att) {
                                    return att.sink == sink;
                                }),
                 sinks_.end());
    mask_ = 0;
    for (const auto &att : sinks_)
        mask_ |= att.mask;
}

void
Tracer::emit(const TraceEvent &ev)
{
    const unsigned bit = traceCatBit(ev.cat);
    for (const auto &att : sinks_)
        if (att.mask & bit)
            att.sink->event(ev);
}

void
Tracer::finishAll()
{
    for (const auto &att : sinks_)
        att.sink->finish();
}

} // namespace tsm
