#include "trace/span.hh"

#include "common/format.hh"

namespace tsm {

std::string
spanStr(SpanId span)
{
    if (span == kSpanNone)
        return "-";
    if (spanIsChild(span))
        return format("{}:{}/hop{}", spanFlow(span), spanSeq(span),
                      spanHop(span));
    return format("{}:{}", spanFlow(span), spanSeq(span));
}

} // namespace tsm
