/**
 * @file
 * Causal transfer spans.
 *
 * A `SpanId` names one vector's end-to-end journey through the
 * machine: allocated when the transfer is scheduled (or at the source
 * chip's first Send), carried on the flit across every `src/net` hop —
 * including nonminimal forwarded paths — and closed at the destination
 * chip's consuming receive. Every trace event along the way carries
 * the id, so a per-transfer cross-chip waterfall can be reconstructed
 * from the flat event stream (prof/profiler.hh) and a diverging event
 * in a journal can be traced back to its causal ancestry
 * (tools/tsm_diverge).
 *
 * Ids are a pure function of the compiler-assigned (flow, seq) tags
 * plus the hop index, so they are identical across runs by
 * construction — the property the determinism auditor relies on. The
 * *parent* span names the whole transfer; each link leg gets a *child*
 * span that encodes its hop index in the low byte:
 *
 *   bits [63:32]  flow + 1       (nonzero for every tagged flow,
 *                                 including the reserved sync flows)
 *   bits [31:8]   seq (mod 2^24) (vector index within the tensor)
 *   bits [7:0]    0 for the parent, hop + 1 for leg children
 */

#ifndef TSM_TRACE_SPAN_HH
#define TSM_TRACE_SPAN_HH

#include <cstdint>
#include <string>

namespace tsm {

/** One transfer's (or transfer leg's) identity on the timeline. */
using SpanId = std::uint64_t;

/** "No span": events outside any transfer carry this. */
inline constexpr SpanId kSpanNone = 0;

/** Parent span of the whole (flow, seq) transfer. */
constexpr SpanId
transferSpan(std::uint32_t flow, std::uint32_t seq)
{
    return (SpanId(flow) + 1) << 32 | SpanId(seq & 0xffffff) << 8;
}

/** Child span of hop `hop` (0 = the source's first link) of `parent`. */
constexpr SpanId
spanChild(SpanId parent, unsigned hop)
{
    return (parent & ~SpanId(0xff)) | SpanId((hop + 1) & 0xff);
}

/** The transfer span a leg child belongs to (identity on parents). */
constexpr SpanId
spanParent(SpanId span)
{
    return span & ~SpanId(0xff);
}

/** True if `span` names one link leg rather than the whole transfer. */
constexpr bool
spanIsChild(SpanId span)
{
    return (span & 0xff) != 0;
}

/** Hop index encoded in a child span (0 for the parent itself). */
constexpr unsigned
spanHop(SpanId span)
{
    const unsigned low = unsigned(span & 0xff);
    return low == 0 ? 0 : low - 1;
}

/** Flow tag the span was derived from. */
constexpr std::uint32_t
spanFlow(SpanId span)
{
    return std::uint32_t(span >> 32) - 1;
}

/** Sequence tag the span was derived from (mod 2^24). */
constexpr std::uint32_t
spanSeq(SpanId span)
{
    return std::uint32_t((span >> 8) & 0xffffff);
}

/** Render "flow:seq" (parent) or "flow:seq/hopN" (leg child). */
std::string spanStr(SpanId span);

} // namespace tsm

#endif // TSM_TRACE_SPAN_HH
