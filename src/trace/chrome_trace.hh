/**
 * @file
 * Chrome trace_event JSON exporter: any traced run can be opened in
 * chrome://tracing or https://ui.perfetto.dev. Categories map to
 * processes (one lane group per subsystem) and actors to threads, so
 * per-chip / per-link timelines render as separate rows.
 *
 * Format reference: the "Trace Event Format" document (JSON array
 * flavour). Complete events use ph:"X" with microsecond ts/dur;
 * zero-duration events render as thread-scoped instants (ph:"i").
 */

#ifndef TSM_TRACE_CHROME_TRACE_HH
#define TSM_TRACE_CHROME_TRACE_HH

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "trace/trace.hh"

namespace tsm {

/** Streams trace events as a Chrome trace_event JSON array. */
class ChromeTraceSink : public TraceSink
{
  public:
    /** Write into an externally owned stream (tests, stdout). */
    explicit ChromeTraceSink(std::ostream &os,
                             unsigned mask = kTraceDefaultCats);

    /** Open `path` for writing; fatal() if it cannot be opened. */
    explicit ChromeTraceSink(const std::string &path,
                             unsigned mask = kTraceDefaultCats);

    ~ChromeTraceSink() override;

    unsigned categoryMask() const override { return mask_; }
    void event(const TraceEvent &ev) override;

    /** Close the JSON array and flush; idempotent. */
    void finish() override;

    /** Number of trace events written (metadata excluded). */
    std::uint64_t eventsWritten() const { return events_; }

    /** Number of flow-phase records (s/t/f arrows) written. */
    std::uint64_t flowsWritten() const { return flows_; }

  private:
    /** Emit the opening bracket and per-category process metadata. */
    void writeHeader();

    /** Write one raw JSON object, handling separators. */
    void writeRecord(const std::string &json);

    /** Emit a flow-phase record for span open/step/close events. */
    void maybeWriteFlow(const TraceEvent &ev);

    std::unique_ptr<std::ofstream> owned_;
    std::ostream *os_;
    unsigned mask_;
    std::uint64_t records_ = 0;
    std::uint64_t events_ = 0;
    std::uint64_t flows_ = 0;
    bool finished_ = false;
};

} // namespace tsm

#endif // TSM_TRACE_CHROME_TRACE_HH
