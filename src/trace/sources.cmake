tsm_module(trace
    trace.cc
    chrome_trace.cc
    metrics.cc
    digest.cc
    session.cc
)
