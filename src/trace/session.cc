#include "trace/session.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "hostprof/hostprof.hh"
#include "prof/blame.hh"
#include "prof/lanes.hh"
#include "prof/report.hh"
#include "prof/whatif.hh"
#include "telemetry/phase.hh"
#include "telemetry/progress.hh"
#include "telemetry/timeline.hh"

namespace tsm {

TraceOptions
TraceOptions::fromArgs(int &argc, char **argv)
{
    TraceOptions opts;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--trace=", 8) == 0) {
            opts.tracePath = arg + 8;
        } else if (std::strcmp(arg, "--metrics") == 0) {
            opts.metrics = true;
        } else if (std::strcmp(arg, "--digest") == 0) {
            opts.digest = true;
        } else if (std::strncmp(arg, "--report=", 9) == 0) {
            opts.reportPath = arg + 9;
        } else if (std::strncmp(arg, "--journal=", 10) == 0) {
            opts.journalPath = arg + 10;
        } else if (std::strncmp(arg, "--timeline=", 11) == 0) {
            opts.timelinePath = arg + 11;
        } else if (std::strncmp(arg, "--timeline-window=", 18) == 0) {
            opts.timelineWindowCycles =
                unsigned(std::strtoul(arg + 18, nullptr, 10));
        } else if (std::strncmp(arg, "--progress=", 11) == 0) {
            opts.progressMegacycles = std::strtod(arg + 11, nullptr);
        } else if (std::strncmp(arg, "--hostprof=", 11) == 0) {
            opts.hostprofPath = arg + 11;
        } else if (std::strncmp(arg, "--blame=", 8) == 0) {
            opts.blamePath = arg + 8;
        } else if (std::strncmp(arg, "--whatif=", 9) == 0) {
            opts.whatifPath = arg + 9;
        } else if (std::strncmp(arg, "--lanes=", 8) == 0) {
            opts.lanesPath = arg + 8;
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    return opts;
}

void
TraceOptions::registerFlags(CliParser &parser)
{
    parser.addValue("--trace", &tracePath,
                    "write a Chrome trace_event timeline to FILE");
    parser.addFlag("--metrics", &metrics, "print the metrics table at exit");
    parser.addFlag("--digest", &digest,
                   "print the golden timeline digest at exit");
    parser.addValue("--report", &reportPath,
                    "write a JSON profile report to FILE");
    parser.addValue("--journal", &journalPath,
                    "record the canonical event journal to FILE");
    parser.addValue("--timeline", &timelinePath,
                    "write the windowed tsm-timeline-v1 document to FILE");
    parser.addValue("--timeline-window", &timelineWindowCycles,
                    "timeline window width in cycles (default 1024)");
    parser.addValue("--progress", &progressMegacycles,
                    "stderr heartbeat every N simulated megacycles");
    parser.addValue("--hostprof", &hostprofPath,
                    "write the tsm-hostprof-v1 host profile to FILE");
    parser.addValue("--blame", &blamePath,
                    "write the tsm-blame-v1 contention attribution to FILE");
    parser.addValue("--whatif", &whatifPath,
                    "write the tsm-whatif-v1 counterfactual lever table "
                    "to FILE");
    parser.addValue("--lanes", &lanesPath,
                    "write the tsm-parallel-v1 concurrency profile to "
                    "FILE");
}

bool
TraceOptions::instrumented() const
{
    return !tracePath.empty() || metrics || digest || !reportPath.empty() ||
           !journalPath.empty() || !timelinePath.empty() ||
           progressMegacycles > 0 || !hostprofPath.empty() ||
           !blamePath.empty() || !whatifPath.empty() ||
           !lanesPath.empty();
}

TraceSession::TraceSession() = default;

TraceSession::TraceSession(TraceOptions opts) : opts_(std::move(opts))
{
    if (!opts_.tracePath.empty())
        chrome_ = std::make_unique<ChromeTraceSink>(opts_.tracePath);
    if (opts_.metrics)
        metricsSink_ = std::make_unique<MetricsSink>();
    if (opts_.digest)
        digestSink_ = std::make_unique<DigestSink>();
    if (!opts_.journalPath.empty())
        journal_ = std::make_unique<JournalSink>(opts_.journalPath);
    if (!opts_.reportPath.empty())
        profile_ = std::make_unique<ProfileCollector>();
    if (!opts_.timelinePath.empty())
        timeline_ = std::make_unique<TimelineSampler>(
            Cycle(opts_.timelineWindowCycles));
    if (opts_.progressMegacycles > 0)
        progress_ = std::make_unique<ProgressSink>(opts_.progressMegacycles);
    if (!opts_.hostprofPath.empty())
        hostprof_ = std::make_unique<HostProfiler>();
    if (!opts_.blamePath.empty())
        blame_ = std::make_unique<BlameCollector>();
    if (!opts_.whatifPath.empty())
        whatif_ = std::make_unique<WhatIfCollector>();
    if (!opts_.lanesPath.empty())
        lanes_ = std::make_unique<LaneCollector>();
}

TraceSession::~TraceSession()
{
    finish();
}

bool
TraceSession::active() const
{
    return chrome_ || metricsSink_ || digestSink_ || journal_ ||
           profile_ || timeline_ || progress_ || hostprof_ || blame_ ||
           whatif_ || lanes_;
}

void
TraceSession::setRun(const std::string &bench, std::uint64_t seed)
{
    if (profile_) {
        profile_->setBench(bench);
        profile_->setSeed(seed);
    }
    if (timeline_) {
        timeline_->setBench(bench);
        timeline_->setSeed(seed);
    }
    if (hostprof_) {
        hostprof_->setBench(bench);
        hostprof_->setSeed(seed);
    }
    if (blame_) {
        blame_->setBench(bench);
        blame_->setSeed(seed);
    }
    if (whatif_) {
        whatif_->setBench(bench);
        whatif_->setSeed(seed);
    }
    if (lanes_) {
        lanes_->setBench(bench);
        lanes_->setSeed(seed);
    }
}

void
TraceSession::attach(Tracer &tracer)
{
    detach();
    tracer_ = &tracer;
    if (chrome_)
        tracer.addSink(chrome_.get());
    if (metricsSink_)
        tracer.addSink(metricsSink_.get());
    if (digestSink_)
        tracer.addSink(digestSink_.get());
    if (journal_)
        tracer.addSink(journal_.get());
    if (profile_)
        tracer.addSink(&profile_->sink());
    if (timeline_)
        tracer.addSink(timeline_.get());
    if (progress_)
        tracer.addSink(progress_.get());
    if (blame_)
        tracer.addSink(&blame_->sink());
    if (whatif_)
        tracer.addSink(&whatif_->sink());
    if (lanes_)
        tracer.addSink(&lanes_->sink());
}

void
TraceSession::detach()
{
    if (!tracer_)
        return;
    if (chrome_)
        tracer_->removeSink(chrome_.get());
    if (metricsSink_)
        tracer_->removeSink(metricsSink_.get());
    if (digestSink_)
        tracer_->removeSink(digestSink_.get());
    if (journal_)
        tracer_->removeSink(journal_.get());
    if (profile_)
        tracer_->removeSink(&profile_->sink());
    if (timeline_)
        tracer_->removeSink(timeline_.get());
    if (progress_)
        tracer_->removeSink(progress_.get());
    if (blame_)
        tracer_->removeSink(&blame_->sink());
    if (whatif_)
        tracer_->removeSink(&whatif_->sink());
    if (lanes_)
        tracer_->removeSink(&lanes_->sink());
    tracer_ = nullptr;
}

MetricsRegistry *
TraceSession::metrics()
{
    return metricsSink_ ? &metricsSink_->registry() : nullptr;
}

std::uint64_t
TraceSession::digest() const
{
    return digestSink_ ? digestSink_->digest() : 0;
}

void
TraceSession::finish()
{
    if (finished_)
        return;
    finished_ = true;
    detach();
    if (chrome_) {
        chrome_->finish();
        std::printf("trace: wrote %llu events to %s\n",
                    (unsigned long long)chrome_->eventsWritten(),
                    opts_.tracePath.c_str());
    }
    if (metricsSink_) {
        std::printf("metrics:\n%s",
                    metricsSink_->registry().report().c_str());
    }
    if (digestSink_) {
        std::printf("timeline digest: 0x%016llx (%llu events)\n",
                    (unsigned long long)digestSink_->digest(),
                    (unsigned long long)digestSink_->events());
    }
    if (journal_) {
        journal_->finish();
        std::printf("journal: wrote %llu events to %s\n",
                    (unsigned long long)journal_->eventsWritten(),
                    opts_.journalPath.c_str());
    }
    if (progress_)
        progress_->finish();
    if (timeline_) {
        timeline_->finish();
        const PhaseAnalysis analysis = analyzePhases(*timeline_);
        const Json doc = timeline_->report(&analysis);
        std::string error;
        if (writeProfileReport(opts_.timelinePath, doc, &error))
            std::printf("timeline: wrote %llu windows to %s\n",
                        (unsigned long long)timeline_->numWindows(),
                        opts_.timelinePath.c_str());
        else
            std::fprintf(stderr, "timeline: %s\n", error.c_str());
        // The bottleneck phases belong in the profile report too: the
        // whole-run accounts say how much, the phases say when.
        if (profile_)
            profile_->setPhases(phasesJson(analysis));
    }
    // The host profile is a separate document on purpose: the profile
    // report must stay byte-identical with and without --hostprof, so
    // the wall-clock footer rides along only in the rendered summary.
    Json hostReport;
    if (hostprof_)
        hostReport = hostprof_->report();
    if (profile_) {
        profile_->sink().finish();
        const Json report = profile_->report();
        std::printf("%s", renderProfileSummary(
                              report, 5, hostprof_ ? &hostReport : nullptr)
                              .c_str());
        std::string error;
        if (writeProfileReport(opts_.reportPath, report, &error))
            std::printf("profile: wrote %s\n", opts_.reportPath.c_str());
        else
            std::fprintf(stderr, "profile: %s\n", error.c_str());
    }
    if (hostprof_) {
        if (!profile_)
            std::printf("%s", renderHostRateLine(&hostReport).c_str());
        std::string error;
        if (writeProfileReport(opts_.hostprofPath, hostReport, &error))
            std::printf("hostprof: wrote %s\n", opts_.hostprofPath.c_str());
        else
            std::fprintf(stderr, "hostprof: %s\n", error.c_str());
    }
    // Blame is a separate document for the same reason as hostprof:
    // every other artifact must stay byte-identical with and without
    // --blame — attribution observes the run, never perturbs it.
    if (blame_) {
        const Json report = blame_->report();
        std::string error;
        if (writeProfileReport(opts_.blamePath, report, &error))
            std::printf("blame: wrote %s\n", opts_.blamePath.c_str());
        else
            std::fprintf(stderr, "blame: %s\n", error.c_str());
    }
    // Same isolation rule as hostprof and blame: the what-if document
    // rides alone so every other artifact stays byte-identical with
    // and without --whatif.
    if (whatif_) {
        const Json report = whatif_->report();
        std::string error;
        if (writeProfileReport(opts_.whatifPath, report, &error))
            std::printf("whatif: wrote %s\n", opts_.whatifPath.c_str());
        else
            std::fprintf(stderr, "whatif: %s\n", error.c_str());
    }
    // Same isolation rule again: the concurrency profile rides alone
    // so every other artifact stays byte-identical with and without
    // --lanes.
    if (lanes_) {
        const Json report = lanes_->report();
        std::string error;
        if (writeProfileReport(opts_.lanesPath, report, &error))
            std::printf("lanes: wrote %s\n", opts_.lanesPath.c_str());
        else
            std::fprintf(stderr, "lanes: %s\n", error.c_str());
    }
}

} // namespace tsm
