/**
 * @file
 * Command-line wiring for the trace subsystem, shared by the bench
 * binaries and examples:
 *
 *   --trace=FILE   write a Chrome trace_event JSON timeline to FILE
 *   --metrics      print the metrics table at exit
 *   --digest       print the 64-bit golden timeline digest at exit
 *   --report=FILE  write a machine-readable profile report (JSON) and
 *                  print its human-readable summary at exit
 *   --journal=FILE record the canonical tsm-journal-v1 event journal
 *                  to FILE (compare two with tools/tsm_diverge)
 *   --timeline=FILE sample the run into fixed-width cycle windows and
 *                  write the tsm-timeline-v1 document to FILE (render
 *                  with tools/tsm_top, gate with tools/tsm_bench_diff)
 *   --timeline-window=N  window width in cycles (default 1024)
 *   --progress=N   heartbeat: one status line to stderr every N
 *                  simulated megacycles (fractional N allowed)
 *   --hostprof=FILE  profile the simulator itself (wall-clock per
 *                  event kind, queue telemetry, sim-rate) and write
 *                  the tsm-hostprof-v1 document to FILE (render with
 *                  tools/tsm_hotspot, gate with tools/tsm_bench_diff)
 *   --blame=FILE   attribute every wait to the flow that occupied the
 *                  contended resource and write the tsm-blame-v1
 *                  document to FILE (render with tools/tsm_blame,
 *                  heatmap with tools/tsm_top)
 *   --whatif=FILE  project counterfactual perturbations (faster links,
 *                  faster compute, removed flows) over the run's SSN
 *                  schedule and write the ranked tsm-whatif-v1 lever
 *                  table to FILE (render and re-simulate with
 *                  tools/tsm_whatif, gate with tools/tsm_bench_diff)
 *   --lanes=FILE   partition the event stream into per-chip/per-link
 *                  lanes with conservative-lookahead phases and write
 *                  the tsm-parallel-v1 concurrency profile to FILE
 *                  (render and gate with tools/tsm_lanes, diff with
 *                  tools/tsm_bench_diff)
 *
 * A TraceSession owns the sinks the options imply and attaches them to
 * whichever Tracer the harness is currently driving. The tracer is
 * borrowed: call detach() (or attach() to a new tracer) before the
 * event queue owning it is destroyed.
 */

#ifndef TSM_TRACE_SESSION_HH
#define TSM_TRACE_SESSION_HH

#include <memory>
#include <string>

#include "common/cli.hh"
#include "trace/chrome_trace.hh"
#include "trace/digest.hh"
#include "trace/journal.hh"
#include "trace/metrics.hh"

namespace tsm {

class BlameCollector;
class HostProfiler;
class LaneCollector;
class ProfileCollector;
class ProgressSink;
class TimelineSampler;
class WhatIfCollector;

/** Parsed trace-related command-line options. */
struct TraceOptions
{
    /** Chrome trace output path; empty = no timeline export. */
    std::string tracePath;

    /** Print the metrics table at end of session. */
    bool metrics = false;

    /** Print the golden timeline digest at end of session. */
    bool digest = false;

    /** Profile report output path; empty = no profiling. */
    std::string reportPath;

    /** Canonical event journal output path; empty = no journal. */
    std::string journalPath;

    /** Windowed timeline output path; empty = no timeline sampling. */
    std::string timelinePath;

    /** Timeline window width in core cycles. */
    unsigned timelineWindowCycles = 1024;

    /** Heartbeat interval in simulated megacycles; 0 = no heartbeat. */
    double progressMegacycles = 0.0;

    /** Host-profile output path; empty = no host profiling. */
    std::string hostprofPath;

    /** Blame document output path; empty = no blame attribution. */
    std::string blamePath;

    /** What-if document output path; empty = no what-if analysis. */
    std::string whatifPath;

    /** Lanes document output path; empty = no concurrency profiling. */
    std::string lanesPath;

    /**
     * Scan argv for the options above, removing every recognized
     * argument in place (argc is updated) so downstream parsers
     * (e.g. google-benchmark) never see them. Unrecognized arguments
     * are left alone; harnesses wanting strict rejection should use
     * registerFlags() with their own CliParser instead.
     */
    static TraceOptions fromArgs(int &argc, char **argv);

    /** Register the trace flags on a strict CliParser. */
    void registerFlags(CliParser &parser);

    /** True if any flag above requests an instrumented run. */
    bool instrumented() const;
};

/** The sinks one traced run needs, bundled and CLI-configurable. */
class TraceSession
{
  public:
    TraceSession(); // out of line: members are incomplete types here
    explicit TraceSession(TraceOptions opts);

    /** Finishes (writes/prints) if finish() was not called. */
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /** True if any option requested any sink. */
    bool active() const;

    /**
     * Attach this session's sinks to `tracer` (detaching from any
     * previous tracer first). `tracer` must outlive the attachment.
     */
    void attach(Tracer &tracer);

    /** Detach from the current tracer, if any. */
    void detach();

    /** The metrics registry, or nullptr when --metrics is off. */
    MetricsRegistry *metrics();

    /** Current timeline digest (0 when --digest is off). */
    std::uint64_t digest() const;

    /**
     * The profile collector, or nullptr when --report is off. Use it
     * to stamp run identity (bench name, seed) and attach the SSN
     * schedule before finish().
     */
    ProfileCollector *profile() { return profile_.get(); }

    /** The timeline sampler, or nullptr when --timeline is off. */
    TimelineSampler *timeline() { return timeline_.get(); }

    /**
     * The host-side self-profiler, or nullptr when --hostprof is off.
     * Unlike the sinks above it is not attached to a Tracer: hand it
     * to the run's EventQueue via setHostProfiler() — the harness
     * helpers (runScheduledScenario, ScenarioRunner) do this
     * automatically.
     */
    HostProfiler *hostprof() { return hostprof_.get(); }

    /**
     * The blame collector, or nullptr when --blame is off. Use it to
     * attach the SSN schedule's compile-time attribution before
     * finish() — runScheduledScenario does this automatically.
     */
    BlameCollector *blame() { return blame_.get(); }

    /**
     * The what-if collector, or nullptr when --whatif is off. Use it
     * to attach the SSN schedule so the counterfactual levers can be
     * projected — runScheduledScenario does this automatically.
     */
    WhatIfCollector *whatif() { return whatif_.get(); }

    /**
     * The concurrency-profile collector, or nullptr when --lanes is
     * off. Use it to attach the SSN schedule before the run so the
     * lookahead and link directions are known at fold time —
     * runScheduledScenario does this automatically.
     */
    LaneCollector *lanes() { return lanes_.get(); }

    /**
     * Stamp run identity (bench name, seed) on every attached
     * collector — currently the profile collector and the timeline
     * sampler. Harness-specific extras (schedule, extra scalars) still
     * go through profile() directly.
     */
    void setRun(const std::string &bench, std::uint64_t seed);

    /**
     * Detach, close the trace file, print the requested metrics
     * table / digest / profile summary to stdout, and write the
     * profile report file. Idempotent.
     */
    void finish();

  private:
    TraceOptions opts_;
    std::unique_ptr<ChromeTraceSink> chrome_;
    std::unique_ptr<MetricsSink> metricsSink_;
    std::unique_ptr<DigestSink> digestSink_;
    std::unique_ptr<JournalSink> journal_;
    std::unique_ptr<ProfileCollector> profile_;
    std::unique_ptr<TimelineSampler> timeline_;
    std::unique_ptr<ProgressSink> progress_;
    std::unique_ptr<HostProfiler> hostprof_;
    std::unique_ptr<BlameCollector> blame_;
    std::unique_ptr<WhatIfCollector> whatif_;
    std::unique_ptr<LaneCollector> lanes_;
    Tracer *tracer_ = nullptr;
    bool finished_ = false;
};

} // namespace tsm

#endif // TSM_TRACE_SESSION_HH
