/**
 * @file
 * Command-line wiring for the trace subsystem, shared by the bench
 * binaries and examples:
 *
 *   --trace=FILE   write a Chrome trace_event JSON timeline to FILE
 *   --metrics      print the metrics table at exit
 *   --digest       print the 64-bit golden timeline digest at exit
 *
 * A TraceSession owns the sinks the options imply and attaches them to
 * whichever Tracer the harness is currently driving. The tracer is
 * borrowed: call detach() (or attach() to a new tracer) before the
 * event queue owning it is destroyed.
 */

#ifndef TSM_TRACE_SESSION_HH
#define TSM_TRACE_SESSION_HH

#include <memory>
#include <string>

#include "trace/chrome_trace.hh"
#include "trace/digest.hh"
#include "trace/metrics.hh"

namespace tsm {

/** Parsed trace-related command-line options. */
struct TraceOptions
{
    /** Chrome trace output path; empty = no timeline export. */
    std::string tracePath;

    /** Print the metrics table at end of session. */
    bool metrics = false;

    /** Print the golden timeline digest at end of session. */
    bool digest = false;

    /**
     * Scan argv for the options above, removing every recognized
     * argument in place (argc is updated) so downstream parsers
     * (e.g. google-benchmark) never see them.
     */
    static TraceOptions fromArgs(int &argc, char **argv);
};

/** The sinks one traced run needs, bundled and CLI-configurable. */
class TraceSession
{
  public:
    TraceSession() = default;
    explicit TraceSession(TraceOptions opts);

    /** Finishes (writes/prints) if finish() was not called. */
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /** True if any option requested any sink. */
    bool active() const;

    /**
     * Attach this session's sinks to `tracer` (detaching from any
     * previous tracer first). `tracer` must outlive the attachment.
     */
    void attach(Tracer &tracer);

    /** Detach from the current tracer, if any. */
    void detach();

    /** The metrics registry, or nullptr when --metrics is off. */
    MetricsRegistry *metrics();

    /** Current timeline digest (0 when --digest is off). */
    std::uint64_t digest() const;

    /**
     * Detach, close the trace file, and print the requested metrics
     * table / digest to stdout. Idempotent.
     */
    void finish();

  private:
    TraceOptions opts_;
    std::unique_ptr<ChromeTraceSink> chrome_;
    std::unique_ptr<MetricsSink> metricsSink_;
    std::unique_ptr<DigestSink> digestSink_;
    Tracer *tracer_ = nullptr;
    bool finished_ = false;
};

} // namespace tsm

#endif // TSM_TRACE_SESSION_HH
