/**
 * @file
 * Canonical event journals (`tsm-journal-v1`): a line-oriented text
 * serialization of the full trace stream, including the event queue's
 * per-dispatch firehose. Where the digest (trace/digest.hh) answers
 * *whether* two runs diverged with one integer, a journal answers
 * *where*: record two runs with `--journal=FILE` and feed both files
 * to tools/tsm_diverge, which reports the first event at which the
 * streams differ together with the causal span ancestry of the
 * offending transfer.
 *
 * Format: a `# tsm-journal-v1` header line, then one event per line,
 *
 *     <tick> <cat> <actor> <name> <a> <b> <span-hex>
 *
 * with fields space-separated, the span in hexadecimal (0 = no span),
 * and `#`-prefixed lines reserved for comments/metadata. Because the
 * simulator is single-threaded and sinks observe events in emission
 * order, byte-identical journals are exactly the determinism claim of
 * the paper: same program + same seed must reproduce every line.
 */

#ifndef TSM_TRACE_JOURNAL_HH
#define TSM_TRACE_JOURNAL_HH

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace tsm {

/** Header line identifying the journal format. */
inline constexpr const char *kJournalMagic = "# tsm-journal-v1";

/** Streams every trace event as one canonical text line. */
class JournalSink : public TraceSink
{
  public:
    /** Write into an externally owned stream (tests). */
    explicit JournalSink(std::ostream &os);

    /** Open `path` for writing; fatal() if it cannot be opened. */
    explicit JournalSink(const std::string &path);

    ~JournalSink() override;

    /** Everything, Sim dispatches included: divergence can start at
     *  the scheduling layer before any visible payload differs. */
    unsigned categoryMask() const override { return kTraceAllCats; }

    void event(const TraceEvent &ev) override;

    /** Flush and close; idempotent. */
    void finish() override;

    /** Number of event lines written. */
    std::uint64_t eventsWritten() const { return events_; }

  private:
    std::unique_ptr<std::ofstream> owned_;
    std::ostream *os_;
    std::uint64_t events_ = 0;
    bool finished_ = false;
};

/** One parsed journal line. */
struct JournalRecord
{
    Tick tick = 0;
    std::string cat;  ///< category name as recorded ("net", "ssn", ...)
    std::uint32_t actor = 0;
    std::string name; ///< event name ("tx", "span_open", ...)
    std::int64_t a = 0;
    std::int64_t b = 0;
    SpanId span = kSpanNone;

    std::size_t line = 0; ///< 1-based line number in the file
    std::string raw;      ///< the original line, verbatim

    bool operator==(const JournalRecord &o) const
    {
        return tick == o.tick && cat == o.cat && actor == o.actor &&
               name == o.name && a == o.a && b == o.b && span == o.span;
    }
    bool operator!=(const JournalRecord &o) const { return !(*this == o); }
};

/**
 * Parse a `tsm-journal-v1` file into `out` (appended in file order;
 * comment lines are skipped). Returns false with a description in
 * `*error` on a missing file, bad magic, or a malformed line.
 */
bool readJournal(const std::string &path, std::vector<JournalRecord> &out,
                 std::string *error);

/** Parse one event line (no magic/comment handling). */
bool parseJournalLine(const std::string &line, JournalRecord &out);

/** Serialize one event as its canonical journal line (no newline). */
std::string journalLine(const TraceEvent &ev);

} // namespace tsm

#endif // TSM_TRACE_JOURNAL_HH
