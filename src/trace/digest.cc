#include "trace/digest.hh"

#include <cstring>

namespace tsm {

std::uint64_t
fnv1a64(std::uint64_t h, const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

std::uint64_t
fnv1a64Word(std::uint64_t h, std::uint64_t word)
{
    // Explicit little-endian byte order so the digest is identical
    // across platforms, like the rest of the deterministic machinery.
    for (int i = 0; i < 8; ++i) {
        h ^= (word >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

void
DigestSink::event(const TraceEvent &ev)
{
    std::uint64_t h = digest_;
    h = fnv1a64Word(h, ev.tick);
    h = fnv1a64Word(h, ev.dur);
    h = fnv1a64Word(h, std::uint64_t(ev.cat));
    h = fnv1a64Word(h, ev.actor);
    h = fnv1a64(h, ev.name, std::strlen(ev.name));
    h = fnv1a64Word(h, std::uint64_t(ev.a));
    h = fnv1a64Word(h, std::uint64_t(ev.b));
    h = fnv1a64Word(h, ev.span);
    digest_ = h;
    ++events_;
}

void
DigestSink::reset()
{
    digest_ = kFnvOffsetBasis;
    events_ = 0;
}

} // namespace tsm
