/**
 * @file
 * Cycle-accurate timeline tracing.
 *
 * Every timing-visible action in the simulator — an event-queue
 * dispatch, an instruction issue, a flit on a link, an SSN transfer
 * leg, a HAC alignment round — can be emitted as a `TraceEvent` into a
 * `Tracer`, which fans it out to attached `TraceSink`s. The paper's
 * determinism claim becomes testable through this layer: a sink that
 * folds the full event stream into a digest (trace/digest.hh) pins the
 * entire run, while a Chrome trace_event sink (trace/chrome_trace.hh)
 * makes the same stream inspectable in chrome://tracing or Perfetto.
 *
 * The hot path is designed for zero cost when nothing is attached:
 * call sites guard with `tracer.wants(cat)`, a single bitmask test
 * against the union of the attached sinks' category masks.
 */

#ifndef TSM_TRACE_TRACE_HH
#define TSM_TRACE_TRACE_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "trace/span.hh"

namespace tsm {

/** Subsystem a trace event originates from. */
enum class TraceCat : std::uint8_t
{
    Sim,     ///< event-queue internals (one event per dispatch)
    Chip,    ///< instruction issue/execution, halts
    Net,     ///< link-level flit transmit/deliver, FEC detections
    Ssn,     ///< scheduled-transfer legs (flow/seq sends and receives)
    Sync,    ///< HAC alignment traffic and adjustments
    Runtime, ///< system bring-up phases (synchronize, launch, completion)
};

inline constexpr unsigned kNumTraceCats = 6;

/** Short lowercase name of a category ("chip", "net", ...). */
const char *traceCatName(TraceCat cat);

/** Bit of one category in a category mask. */
constexpr unsigned
traceCatBit(TraceCat c)
{
    return 1u << unsigned(c);
}

/** Mask selecting every category. */
inline constexpr unsigned kTraceAllCats = (1u << kNumTraceCats) - 1;

/**
 * Default mask: everything except the per-dispatch Sim firehose, which
 * only digest-style sinks normally want.
 */
inline constexpr unsigned kTraceDefaultCats =
    kTraceAllCats & ~traceCatBit(TraceCat::Sim);

/**
 * One traced occurrence. `name` must point to storage that outlives
 * the run (string literals / opName() mnemonics) — events are not
 * copied into owned strings on the hot path.
 */
struct TraceEvent
{
    /** Start of the event on the global picosecond timeline. */
    Tick tick = 0;

    /** Duration in picoseconds; 0 renders as an instant event. */
    Tick dur = 0;

    TraceCat cat = TraceCat::Sim;

    /** Acting entity: TSP id, link id, flow id — category-dependent. */
    std::uint32_t actor = 0;

    /** Static event name ("tx", "Send", "hac_adj", ...). */
    const char *name = "";

    /** Two free payload words (flow/seq, delta/count, ...). */
    std::int64_t a = 0;
    std::int64_t b = 0;

    /**
     * Causal transfer span this event belongs to (trace/span.hh), or
     * kSpanNone. Lets sinks stitch one vector's journey back together
     * across chips and link legs.
     */
    SpanId span = kSpanNone;
};

/** Receiver of trace events. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Categories this sink wants; consulted at attach time. */
    virtual unsigned categoryMask() const { return kTraceDefaultCats; }

    /** One event whose category is in categoryMask(). */
    virtual void event(const TraceEvent &ev) = 0;

    /** End of stream (flush/close); may be called more than once. */
    virtual void finish() {}
};

/**
 * Fan-out point instrumented code emits into. Sinks are borrowed, not
 * owned; detach a sink before destroying it.
 */
class Tracer
{
  public:
    /** Attach a sink (its categoryMask() is sampled now). */
    void addSink(TraceSink *sink);

    /** Detach a previously attached sink (no-op if absent). */
    void removeSink(TraceSink *sink);

    /** True if any attached sink wants category `c` — the hot guard. */
    bool wants(TraceCat c) const { return mask_ & traceCatBit(c); }

    /** True if any sink is attached at all. */
    bool active() const { return mask_ != 0; }

    std::size_t numSinks() const { return sinks_.size(); }

    /** Deliver `ev` to every sink whose mask includes its category. */
    void emit(const TraceEvent &ev);

    /** Forward finish() to every attached sink. */
    void finishAll();

  private:
    struct Attached
    {
        TraceSink *sink;
        unsigned mask;
    };

    std::vector<Attached> sinks_;
    unsigned mask_ = 0;
};

} // namespace tsm

#endif // TSM_TRACE_TRACE_HH
