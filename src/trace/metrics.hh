/**
 * @file
 * End-of-run metrics: a registry of named counters and accumulators
 * (common/stats.hh), plus a TraceSink that folds the trace stream into
 * one — every "<cat>.<name>" event becomes a count, and events with a
 * duration also feed a "<cat>.<name>.us" accumulator. Queryable
 * programmatically and printable as an aligned table.
 */

#ifndef TSM_TRACE_METRICS_HH
#define TSM_TRACE_METRICS_HH

#include <cstdint>
#include <map>
#include <string>

#include "common/stats.hh"
#include "common/table.hh"
#include "trace/trace.hh"

namespace tsm {

/** Named counters, sample accumulators and histograms, sorted by name. */
class MetricsRegistry
{
  public:
    /** The counter named `name`, created at zero on first use. */
    std::uint64_t &counter(const std::string &name);

    /** Value of a counter, 0 if it was never touched. */
    std::uint64_t counterValue(const std::string &name) const;

    /** The accumulator named `name`, created empty on first use. */
    Accumulator &accumulator(const std::string &name);

    /** The accumulator named `name`, or nullptr if absent. */
    const Accumulator *findAccumulator(const std::string &name) const;

    /**
     * The log2 histogram named `name`, created empty on first use.
     * Used where an Accumulator's mean hides the tail — queueing
     * delays, stall lengths — and the p50/p95/p99 split matters.
     */
    Log2Histogram &histogram(const std::string &name);

    /** The histogram named `name`, or nullptr if absent. */
    const Log2Histogram *findHistogram(const std::string &name) const;

    /** All histograms by name (for report builders). */
    const std::map<std::string, Log2Histogram> &histograms() const
    {
        return histograms_;
    }

    bool empty() const
    {
        return counters_.empty() && accums_.empty() && histograms_.empty();
    }
    std::size_t numCounters() const { return counters_.size(); }
    std::size_t numAccumulators() const { return accums_.size(); }
    std::size_t numHistograms() const { return histograms_.size(); }
    void clear();

    /**
     * Render everything as one table: counters as (name, count) rows,
     * accumulators as (name, count, mean, min, max, sum) rows, and
     * histograms as (name, count, mean, p50, p95, p99, max) rows.
     */
    Table table() const;

    /** table().ascii() convenience. */
    std::string report() const;

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, Accumulator> accums_;
    std::map<std::string, Log2Histogram> histograms_;
};

/** Folds trace events into a MetricsRegistry it owns. */
class MetricsSink : public TraceSink
{
  public:
    explicit MetricsSink(unsigned mask = kTraceAllCats) : mask_(mask) {}

    unsigned categoryMask() const override { return mask_; }
    void event(const TraceEvent &ev) override;

    MetricsRegistry &registry() { return reg_; }
    const MetricsRegistry &registry() const { return reg_; }

  private:
    MetricsRegistry reg_;
    unsigned mask_;
};

} // namespace tsm

#endif // TSM_TRACE_METRICS_HH
