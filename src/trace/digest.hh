/**
 * @file
 * Golden timeline digests: fold every traced event — tick, category,
 * name, actor, payload — into one 64-bit FNV-1a fingerprint of the
 * run's full cycle-level behaviour. Two runs are timing-identical iff
 * their digests match, which turns the paper's end-to-end determinism
 * claim into a single-integer regression oracle (tests/properties/
 * determinism_test.cc pins it under drift + jitter + FEC errors).
 */

#ifndef TSM_TRACE_DIGEST_HH
#define TSM_TRACE_DIGEST_HH

#include <cstdint>

#include "trace/trace.hh"

namespace tsm {

/** FNV-1a 64-bit offset basis — the empty-stream digest. */
inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;

/** FNV-1a 64-bit prime. */
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/** Fold `n` raw bytes into an FNV-1a running hash. */
std::uint64_t fnv1a64(std::uint64_t h, const void *data, std::size_t n);

/** Fold one 64-bit word (as 8 little-endian bytes) into the hash. */
std::uint64_t fnv1a64Word(std::uint64_t h, std::uint64_t word);

/**
 * Streaming digest over the full trace stream. Subscribes to every
 * category, including the event queue's per-dispatch events, so the
 * digest covers both what happened and the order it was scheduled in.
 */
class DigestSink : public TraceSink
{
  public:
    unsigned categoryMask() const override { return kTraceAllCats; }
    void event(const TraceEvent &ev) override;

    /** Current fingerprint of every event folded so far. */
    std::uint64_t digest() const { return digest_; }

    /** Number of events folded. */
    std::uint64_t events() const { return events_; }

    /** Return to the empty-stream state. */
    void reset();

  private:
    std::uint64_t digest_ = kFnvOffsetBasis;
    std::uint64_t events_ = 0;
};

} // namespace tsm

#endif // TSM_TRACE_DIGEST_HH
