/**
 * @file
 * Cholesky factorization on TSPs (paper §5.5, Fig 19).
 *
 * Two layers:
 *
 *  - a numeric kernel mirroring the paper's per-iteration vector
 *    pipeline (subtract accumulated update, rsqrt of the pivot, scale
 *    the column) used to factor small SPD matrices exactly as the
 *    chip's VXM would — including the fast-rsqrt approximation;
 *
 *  - a timing model of the block-cyclic multi-TSP execution. The
 *    inner loop carries a vector-matrix dependence, so every column
 *    pays a serial pipeline traversal (MXM -> VXM -> MXM) that does
 *    not parallelize; only the trailing update scales with devices.
 *    That serial fraction is what limits the paper's speedups to
 *    1.2x/1.4x/1.5x on 2/4/8 TSPs.
 */

#ifndef TSM_WORKLOAD_CHOLESKY_HH
#define TSM_WORKLOAD_CHOLESKY_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"

namespace tsm {

/// @name Numeric kernel
/// @{

/**
 * Factor the SPD matrix `a` (n x n, row-major) in place into its
 * lower-triangular Cholesky factor L (upper part zeroed), using the
 * paper's per-column vector operations with the fast rsqrt
 * approximation. Returns false if a pivot is non-positive.
 */
bool choleskyFactor(std::vector<float> &a, unsigned n);

/** Max |A - L Lt| over all entries — the factorization residual. */
float choleskyResidual(const std::vector<float> &original,
                       const std::vector<float> &factored, unsigned n);

/// @}

/// @name Timing model
/// @{

/** Calibrated per-column costs of the TSP implementation. */
struct CholeskyModel
{
    /**
     * Serial dependency chain per column: the update vector's round
     * trip through MXM and VXM plus stream turnaround. Calibrated so
     * that at p ~ 16k the model reproduces both of the paper's
     * anchors (speedups 1.2/1.4/1.5x and ~22 TFLOPs on 8 TSPs).
     */
    Cycle perColumnSerialCycles = 3300;

    /**
     * Non-overlapped part of broadcasting the column panel to peer
     * TSPs (only paid when tsps > 1).
     */
    Cycle perColumnBcastCycles = 50;

    /**
     * Effective MAC throughput of the trailing update. Far below the
     * MXM peak (204,800 MACs/cycle) because the update operands are
     * skinny [1 x K] x [K x 320] slices with partial K tiles.
     */
    double effectiveMacsPerCycle = 20000.0;
};

/** Prediction for one factorization. */
struct CholeskyEstimate
{
    unsigned tsps = 1;
    Cycle cycles = 0;
    double seconds = 0.0;
    double tflops = 0.0;
};

/**
 * Execution-time estimate for a p x p factorization block-cyclically
 * distributed over `tsps` TSPs (320-row blocks, paper Fig 19(a,b)).
 */
CholeskyEstimate choleskyEstimate(std::uint64_t p, unsigned tsps,
                                  const CholeskyModel &model = {});

/// @}

} // namespace tsm

#endif // TSM_WORKLOAD_CHOLESKY_HH
