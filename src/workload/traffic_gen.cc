#include "workload/traffic_gen.hh"

#include <algorithm>
#include <numeric>

#include "common/log.hh"

namespace tsm {

const char *
trafficPatternName(TrafficPattern p)
{
    switch (p) {
      case TrafficPattern::UniformRandom: return "uniform-random";
      case TrafficPattern::Permutation: return "permutation";
      case TrafficPattern::BitComplement: return "bit-complement";
      case TrafficPattern::Transpose: return "transpose";
      case TrafficPattern::NearestNeighbor: return "nearest-neighbor";
      case TrafficPattern::AllToOne: return "all-to-one";
      case TrafficPattern::OneToAll: return "one-to-all";
    }
    return "?";
}

std::vector<TrafficPattern>
allTrafficPatterns()
{
    return {TrafficPattern::UniformRandom, TrafficPattern::Permutation,
            TrafficPattern::BitComplement, TrafficPattern::Transpose,
            TrafficPattern::NearestNeighbor, TrafficPattern::AllToOne,
            TrafficPattern::OneToAll};
}

std::vector<TensorTransfer>
generateTraffic(const Topology &topo, TrafficPattern pattern,
                std::uint32_t vectors, std::uint64_t seed)
{
    const unsigned n = topo.numTsps();
    TSM_ASSERT(n >= 2, "traffic needs at least two endpoints");
    Rng rng(seed);

    // Destination map per source.
    std::vector<TspId> dst(n);
    switch (pattern) {
      case TrafficPattern::UniformRandom:
        for (unsigned s = 0; s < n; ++s) {
            do {
                dst[s] = TspId(rng.below(n));
            } while (dst[s] == s);
        }
        break;
      case TrafficPattern::Permutation: {
        std::vector<TspId> perm(n);
        std::iota(perm.begin(), perm.end(), 0);
        // Fisher-Yates with the deterministic RNG; re-shuffle until
        // derangement (no self-loops) — converges fast.
        auto shuffle = [&] {
            for (unsigned i = n - 1; i > 0; --i)
                std::swap(perm[i], perm[rng.below(i + 1)]);
        };
        auto has_fixed_point = [&] {
            for (unsigned i = 0; i < n; ++i)
                if (perm[i] == i)
                    return true;
            return false;
        };
        do {
            shuffle();
        } while (has_fixed_point());
        for (unsigned s = 0; s < n; ++s)
            dst[s] = perm[s];
        break;
      }
      case TrafficPattern::BitComplement:
        for (unsigned s = 0; s < n; ++s)
            dst[s] = TspId(n - 1 - s);
        break;
      case TrafficPattern::Transpose:
        for (unsigned s = 0; s < n; ++s)
            dst[s] = TspId((s + n / 2) % n);
        break;
      case TrafficPattern::NearestNeighbor:
        for (unsigned s = 0; s < n; ++s)
            dst[s] = TspId((s + 1) % n);
        break;
      case TrafficPattern::AllToOne:
        for (unsigned s = 0; s < n; ++s)
            dst[s] = 0;
        break;
      case TrafficPattern::OneToAll:
        break; // handled below
    }

    std::vector<TensorTransfer> out;
    FlowId flow = 1;
    if (pattern == TrafficPattern::OneToAll) {
        for (unsigned d = 1; d < n; ++d) {
            TensorTransfer t;
            t.flow = flow++;
            t.src = 0;
            t.dst = TspId(d);
            t.vectors = vectors;
            out.push_back(t);
        }
        return out;
    }
    for (unsigned s = 0; s < n; ++s) {
        if (dst[s] == s)
            continue; // bit-complement/transpose self at odd centers
        TensorTransfer t;
        t.flow = flow++;
        t.src = TspId(s);
        t.dst = dst[s];
        t.vectors = vectors;
        out.push_back(t);
    }
    return out;
}

} // namespace tsm
