/**
 * @file
 * Synthetic traffic generators (paper §5.6 studies the traffic
 * patterns of real workloads; these are the standard interconnect
 * benchmark patterns used to stress the same machinery).
 *
 * Every generator emits a TensorTransfer list for the SSN scheduler
 * or the baseline router, deterministic given its seed.
 */

#ifndef TSM_WORKLOAD_TRAFFIC_GEN_HH
#define TSM_WORKLOAD_TRAFFIC_GEN_HH

#include <vector>

#include "common/rng.hh"
#include "ssn/transfer.hh"

namespace tsm {

/** The classic synthetic patterns. */
enum class TrafficPattern : std::uint8_t
{
    UniformRandom,  ///< each source picks an independent random dest
    Permutation,    ///< a random one-to-one mapping (seeded)
    BitComplement,  ///< dst = ~src (adversarial for many topologies)
    Transpose,      ///< dst = rotate(src) — shift by half the system
    NearestNeighbor,///< dst = src + 1 (pipelines)
    AllToOne,       ///< incast onto TSP 0
    OneToAll,       ///< broadcast-like fan-out from TSP 0
};

const char *trafficPatternName(TrafficPattern p);

/**
 * Generate one transfer per source TSP under the given pattern.
 * Self-addressed transfers are skipped (their data never leaves the
 * chip). Flow ids are assigned 1..N in source order.
 */
std::vector<TensorTransfer> generateTraffic(const Topology &topo,
                                            TrafficPattern pattern,
                                            std::uint32_t vectors,
                                            std::uint64_t seed = 1);

/** All patterns, for sweeps. */
std::vector<TrafficPattern> allTrafficPatterns();

} // namespace tsm

#endif // TSM_WORKLOAD_TRAFFIC_GEN_HH
