#include "workload/cholesky.hh"

#include <algorithm>
#include <cmath>

#include "arch/vec.hh"
#include "common/log.hh"

namespace tsm {

bool
choleskyFactor(std::vector<float> &a, unsigned n)
{
    TSM_ASSERT(a.size() == std::size_t(n) * n, "matrix size mismatch");
    // Left-looking column factorization using the paper's kernel
    // (cholesky_vector_ops): for column i,
    //   I = S[i:n, i] - U          (U: accumulated update)
    //   splat = rsqrt(I[0])
    //   updates = I * splat
    for (unsigned i = 0; i < n; ++i) {
        // U[r] = sum_{j<i} L[r][j] * L[i][j] for r >= i.
        std::vector<float> u(n - i, 0.0f);
        for (unsigned j = 0; j < i; ++j)
            for (unsigned r = i; r < n; ++r)
                u[r - i] += a[r * n + j] * a[i * n + j];

        const float pivot = a[i * n + i] - u[0];
        if (pivot <= 0.0f)
            return false;
        const float splat = fastRsqrt(pivot);
        for (unsigned r = i; r < n; ++r)
            a[r * n + i] = (a[r * n + i] - u[r - i]) * splat;
    }
    // Zero the strict upper triangle: a now holds L.
    for (unsigned r = 0; r < n; ++r)
        for (unsigned c = r + 1; c < n; ++c)
            a[r * n + c] = 0.0f;
    return true;
}

float
choleskyResidual(const std::vector<float> &original,
                 const std::vector<float> &factored, unsigned n)
{
    float worst = 0.0f;
    for (unsigned r = 0; r < n; ++r) {
        for (unsigned c = 0; c < n; ++c) {
            float acc = 0.0f;
            for (unsigned k = 0; k <= std::min(r, c); ++k)
                acc += factored[r * n + k] * factored[c * n + k];
            worst = std::max(worst,
                             std::abs(acc - original[r * n + c]));
        }
    }
    return worst;
}

CholeskyEstimate
choleskyEstimate(std::uint64_t p, unsigned tsps, const CholeskyModel &model)
{
    TSM_ASSERT(p > 0 && tsps > 0, "degenerate factorization");
    CholeskyEstimate est;
    est.tsps = tsps;

    // Serial per-column dependency chain (paper: "difficult to
    // efficiently parallelize due to a loop-carried dependence of a
    // vector-matrix multiplication on the inner-loop").
    double cycles = double(p) * double(model.perColumnSerialCycles);

    // Broadcasting each column panel to the peers is pipelined but
    // leaves a small non-overlapped residue per column.
    if (tsps > 1)
        cycles += double(p) * double(model.perColumnBcastCycles);

    // Trailing update: p^3/6 MACs, block-cyclically spread over the
    // devices.
    const double macs = double(p) * double(p) * double(p) / 6.0;
    cycles += macs / (model.effectiveMacsPerCycle * double(tsps));

    est.cycles = Cycle(cycles);
    est.seconds = cycles / kCoreFreqHz;
    // Total useful flops of the factorization: ~p^3/3.
    est.tflops = (double(p) * double(p) * double(p) / 3.0) /
                 est.seconds / 1e12;
    return est;
}

} // namespace tsm
