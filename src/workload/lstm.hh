/**
 * @file
 * Sequence-to-sequence (LSTM) inference — the paper's §5 intro names
 * LSTMs alongside transformers as the vector-matrix workloads the TSP
 * targets. This is an extension beyond the paper's figures: a
 * batch-1, latency-bound recurrent workload where every timestep is a
 * chain of vector-matrix products. The deterministic TSP keeps its
 * matrix unit busy on these skinny operands, while the tensor-core
 * baseline pays tile padding (M = 1 against 128-row tiles) and a
 * kernel launch per step.
 */

#ifndef TSM_WORKLOAD_LSTM_HH
#define TSM_WORKLOAD_LSTM_HH

#include "compiler/cost_model.hh"

namespace tsm {

/** A stacked-LSTM decoder configuration. */
struct LstmConfig
{
    unsigned layers = 4;
    unsigned hidden = 1024;
    unsigned timesteps = 256;

    /** FLOPs per timestep: 4 gates x (input + recurrent) matvecs. */
    double flopsPerStep() const;
};

/** Prediction for one batch-1 decode. */
struct LstmEstimate
{
    double seconds = 0.0;
    double tokensPerSec = 0.0;
    double utilization = 0.0;
};

/**
 * TSP estimate: layers pipeline across `tsps` chips; the recurrent
 * dependence serializes timesteps within a layer — h_t must complete
 * its round trip through MXM and VXM (the same loop-carried chain
 * that limits Cholesky, ~300 cycles) before step t+1 can issue — so
 * steady-state throughput is one timestep per (chain + compute) per
 * stage once the pipe fills.
 */
LstmEstimate lstmOnTsp(const LstmConfig &config, unsigned tsps,
                       const TspCostModel &cost,
                       Cycle recurrent_chain_cycles = 300);

/**
 * GPU baseline estimate: per-step kernel launches and 128-row tile
 * padding on the M=1 matvecs dominate; the recurrence forbids
 * batching across time.
 */
struct GpuLstmModel
{
    GpuModel gpu;

    /** Kernel launch + sync overhead per timestep. */
    double launchPerStepSec = 8e-6;
};

LstmEstimate lstmOnGpu(const LstmConfig &config, const GpuLstmModel &model);

} // namespace tsm

#endif // TSM_WORKLOAD_LSTM_HH
