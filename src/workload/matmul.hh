/**
 * @file
 * Distributed matrix multiplication on multi-TSP systems
 * (paper §5.2, Figs 13-15).
 *
 * Two decomposition primitives, used together:
 *
 *  - column-wise weight splits: B[K x N] is split into X column
 *    blocks; each TSP computes an independent [M x K][K x N/X] and
 *    results concatenate (no reduction traffic);
 *  - row-wise weight splits: B is split into R row blocks (and A into
 *    matching column blocks); each TSP produces a full-size partial
 *    product and the partials reduce across the row group (reduction
 *    traffic proportional to M x N/X).
 *
 * The paper's Fig 14 workload ([800x32576][32576x8192]) uses 8 column
 * splits, each further row-split R = 1..13 ways with the row group
 * clustered inside one node so the partial-product reduction rides
 * the node's fully-connected links.
 */

#ifndef TSM_WORKLOAD_MATMUL_HH
#define TSM_WORKLOAD_MATMUL_HH

#include <cstdint>

#include "compiler/cost_model.hh"

namespace tsm {

/** Configuration of one distributed matmul. */
struct DistMatmulConfig
{
    std::uint64_t m = 800;
    std::uint64_t k = 32576;
    std::uint64_t n = 8192;

    /** Column-wise weight splits (independent groups). */
    unsigned colSplits = 8;

    /** Row-wise splits within each column group. */
    unsigned rowSplits = 1;
};

/** Prediction for one distributed matmul execution. */
struct DistMatmulResult
{
    unsigned tsps = 0;
    Cycle computeCycles = 0;

    /** Reduction of row-split partials over C2C (0 when rowSplits=1). */
    Cycle reduceCycles = 0;

    Cycle totalCycles = 0;
    double seconds = 0.0;
    double tflops = 0.0;

    /** Fraction of the deployed TSPs' aggregate peak. */
    double utilization = 0.0;
};

/**
 * Plan/estimate the distributed matmul of Fig 14. Row groups are
 * assumed clustered within nodes (reduction over intra-node links).
 */
DistMatmulResult planDistributedMatmul(const DistMatmulConfig &config,
                                       const TspCostModel &cost);

/**
 * Fig 15: a square [N x N][N x N] fp16 matmul decomposed with
 * column-wise splits only across a cluster of `tsps` TSPs, inputs
 * streamed over PCIe in the order that minimizes injected volume
 * (paper: row-major traversal needs only ~3.7 GB/s).
 */
struct ClusterMatmulResult
{
    double seconds = 0.0;
    double tflops = 0.0;
    double utilization = 0.0;

    /** True when PCIe streaming, not compute, limits throughput. */
    bool pcieBound = false;
};

ClusterMatmulResult clusterColSplitMatmul(std::uint64_t n, unsigned tsps,
                                          const TspCostModel &cost);

} // namespace tsm

#endif // TSM_WORKLOAD_MATMUL_HH
