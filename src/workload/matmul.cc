#include "workload/matmul.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "ssn/transfer.hh"

namespace tsm {

DistMatmulResult
planDistributedMatmul(const DistMatmulConfig &config,
                      const TspCostModel &cost)
{
    TSM_ASSERT(config.colSplits >= 1 && config.rowSplits >= 1,
               "need at least one split each way");
    DistMatmulResult result;
    result.tsps = config.colSplits * config.rowSplits;

    // Per-TSP sub-operation: [m x k/R] x [k/R x n/X].
    const std::uint64_t k_shard =
        (config.k + config.rowSplits - 1) / config.rowSplits;
    const std::uint64_t n_shard =
        (config.n + config.colSplits - 1) / config.colSplits;
    const auto gemm =
        tspGemmUtilization(cost.mxm, config.m, k_shard, n_shard);
    result.computeCycles = gemm.cycles + cost.opOverheadCycles;

    // Row-split partial products reduce across the row group, which
    // is clustered within a node: an all-to-all reduce-scatter over
    // the fully-connected links, each TSP shipping (R-1)/R of its
    // partial spread over min(R-1, 7) links, followed by the fused
    // VXM accumulation.
    if (config.rowSplits > 1) {
        const std::uint64_t partial_vectors =
            bytesToVectors(config.m * n_shard * dtypeBytes(DType::Fp16));
        const unsigned r = config.rowSplits;
        const unsigned fan = std::min(r - 1, kLocalPortsPerTsp);
        const double wire_vectors =
            double(partial_vectors) * double(r - 1) / double(r);
        Cycle reduce = Cycle(std::ceil(wire_vectors / fan) * 24.0);
        reduce += flightCycles(LinkClass::IntraNode) + kRxMarginCycles;
        // Row groups larger than a node spill onto a second node.
        if (r > kTspsPerNode)
            reduce += flightCycles(LinkClass::IntraRack) + forwardCycles();
        // VXM accumulation is fused into the receive fly-by.
        reduce += Cycle(std::ceil(double(partial_vectors) / fan));
        result.reduceCycles = reduce;
    }

    result.totalCycles = result.computeCycles + result.reduceCycles;
    result.seconds = TspCostModel::cyclesToSeconds(result.totalCycles);
    const double flops =
        2.0 * double(config.m) * double(config.k) * double(config.n);
    result.tflops = flops / result.seconds / 1e12;
    result.utilization = result.tflops /
                         (double(result.tsps) *
                          cost.mxm.peakFp16Tflops());
    return result;
}

ClusterMatmulResult
clusterColSplitMatmul(std::uint64_t n, unsigned tsps,
                      const TspCostModel &cost)
{
    TSM_ASSERT(n > 0 && tsps > 0, "degenerate cluster matmul");
    ClusterMatmulResult result;

    const std::uint64_t n_shard = (n + tsps - 1) / tsps;
    const auto gemm = tspGemmUtilization(cost.mxm, n, n, n_shard);
    double seconds = TspCostModel::cyclesToSeconds(gemm.cycles);

    // Streaming the weight shard in the traversal order that
    // minimizes injected volume (paper: row-major order needs only
    // ~3.7 GB/s for a 100k x 100k operand). If the required rate
    // exceeds the PCIe channel, the operation becomes host-bound.
    const double weight_bytes =
        double(n) * double(n_shard) * double(dtypeBytes(DType::Fp16));
    const double required_bw = weight_bytes / seconds;
    if (required_bw > cost.pcieBytesPerSec) {
        seconds = weight_bytes / cost.pcieBytesPerSec;
        result.pcieBound = true;
    }

    const double flops = 2.0 * double(n) * double(n) * double(n);
    result.seconds = seconds;
    result.tflops = flops / seconds / 1e12;
    result.utilization =
        result.tflops / (double(tsps) * cost.mxm.peakFp16Tflops());
    return result;
}

} // namespace tsm
