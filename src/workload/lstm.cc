#include "workload/lstm.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace tsm {

double
LstmConfig::flopsPerStep() const
{
    // Per layer: x and h each multiply an [1 x H] by [H x 4H].
    return double(layers) * 2.0 * (2.0 * hidden * 4.0 * hidden);
}

LstmEstimate
lstmOnTsp(const LstmConfig &config, unsigned tsps,
          const TspCostModel &cost, Cycle recurrent_chain_cycles)
{
    TSM_ASSERT(tsps >= 1, "need at least one TSP");
    // One layer-step: two [1 x H][H x 4H] matvecs plus the gate
    // elementwise ops (~8H lanes on the VXM), plus the loop-carried
    // dependence: h_t's full pipeline round trip gates step t+1.
    const auto mv =
        tspGemmUtilization(cost.mxm, 1, config.hidden,
                           4ull * config.hidden);
    const Cycle gates = Cycle(std::ceil(8.0 * config.hidden /
                                        cost.vxmLanesPerCycle));
    const Cycle layer_step = 2 * (mv.cycles + cost.opOverheadCycles) +
                             gates + recurrent_chain_cycles;

    // Layers pipeline across chips (contiguous assignment); boundary
    // activations are a single [1 x H] vector — negligible against
    // the intra-node hop, which overlaps the compute anyway.
    const unsigned stages = std::min(tsps, config.layers);
    const unsigned layers_per_stage =
        (config.layers + stages - 1) / stages;
    const Cycle stage_step = layer_step * layers_per_stage;

    // Latency: fill the pipe once, then one timestep per stage_step.
    const Cycle total =
        stage_step * (config.timesteps + stages - 1);

    LstmEstimate est;
    est.seconds = TspCostModel::cyclesToSeconds(total);
    est.tokensPerSec = double(config.timesteps) / est.seconds;
    est.utilization = config.flopsPerStep() * config.timesteps /
                      est.seconds / 1e12 /
                      (double(tsps) * cost.mxm.peakFp16Tflops());
    return est;
}

LstmEstimate
lstmOnGpu(const LstmConfig &config, const GpuLstmModel &model)
{
    // Per step: the fused gate GEMM is [1 x H][H x 4H]; tensor cores
    // pad M=1 to the 128-row tile, so useful utilization is ~1/128th
    // of the tile work, and every step pays a launch.
    const auto gemm = gpuGemmUtilization(model.gpu, 1, config.hidden,
                                         4ull * config.hidden);
    const double step_flops = config.flopsPerStep();
    const double gemm_sec =
        step_flops / (gemm.tflops * 1e12);
    const double step_sec = gemm_sec + model.launchPerStepSec;

    LstmEstimate est;
    est.seconds = step_sec * config.timesteps;
    est.tokensPerSec = double(config.timesteps) / est.seconds;
    est.utilization =
        step_flops * config.timesteps / est.seconds / 1e12 /
        model.gpu.peakFp16Tflops;
    return est;
}

} // namespace tsm
