tsm_module(workload
    matmul.cc
    cholesky.cc
    bert.cc
    traffic_gen.cc
    lstm.cc
)
