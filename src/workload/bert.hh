/**
 * @file
 * BERT transformer workloads on TSPs (paper §5.4, Figs 17, 18, 20).
 *
 * The model is built as a real op graph (compiler/graph.hh) per
 * encoder: QKV projections, attention scores, softmax, context,
 * output projection, layer norms, and the two FFN matmuls at the
 * SQuAD1.1 sequence length of 384. Encoders become pipeline blocks,
 * partitioned across TSPs by compiler/pipeline.hh.
 *
 * Fig 17's latency distribution comes from the only nondeterministic
 * element of the whole system — the PCIe host transfers — layered on
 * top of the compiler's exact cycle count for on-chip execution.
 */

#ifndef TSM_WORKLOAD_BERT_HH
#define TSM_WORKLOAD_BERT_HH

#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "compiler/cost_model.hh"
#include "compiler/pipeline.hh"

namespace tsm {

/** Transformer encoder-stack configuration. */
struct BertConfig
{
    unsigned encoders = 24;
    unsigned hidden = 1024;
    unsigned heads = 16;
    unsigned intermediate = 4096;
    unsigned seqLen = 384; // SQuAD1.1 dev

    static BertConfig base();  ///< BERT-Base: 12 x 768
    static BertConfig large(); ///< BERT-Large: 24 x 1024

    /** Same geometry as Large with a different encoder count
     *  (paper Fig 18 scales 6..96 encoders). */
    BertConfig withEncoders(unsigned n) const;

    /** Bytes of activations at an encoder boundary (seq x hidden). */
    Bytes activationBytes() const;
};

/** Build the full op graph of one encoder stack. */
Graph buildBertGraph(const BertConfig &config);

/** FLOPs of a single encoder layer. */
double encoderFlops(const BertConfig &config);

/**
 * Per-encoder pipeline block costs under the TSP cost model. The
 * movement cycles capture the attention reshapes and stream
 * concatenations a naive schedule fails to overlap (Fig 20).
 */
std::vector<BlockCost> bertBlocks(const BertConfig &config,
                                  const TspCostModel &cost);

/** Deterministic + host components of one inference's latency. */
struct BertEstimate
{
    PipelinePlan plan;

    /** On-chip latency of one inference (exact, deterministic). */
    double chipSec = 0.0;

    /** Mean PCIe input + output time (the nondeterministic part). */
    double pcieSec = 0.0;

    /** The compiler's total estimate (chip + mean PCIe). */
    double totalSec = 0.0;

    /** Steady-state realized throughput in TOPs. */
    double realizedTops = 0.0;
};

/** Estimate one inference on `tsps` chips under a balancing mode. */
BertEstimate estimateBert(const BertConfig &config, unsigned tsps,
                          const TspCostModel &cost,
                          BalanceMode mode = BalanceMode::MovementAware);

/** Parameters of the PCIe variance model used for Fig 17. */
struct PcieVarianceModel
{
    /** Mean extra invocation time beyond the deterministic base. */
    double meanExtraSec = 12e-6;

    /** Standard deviation of the extra time (log-normal-ish tail). */
    double sigmaSec = 6e-6;

    /** Hard upper bound (host OS jitter clamp). */
    double maxExtraSec = 60e-6;
};

/**
 * Simulate `runs` repeated inferences (paper: 24,240 runs of
 * BERT-Large on 4 TSPs) and return the latency samples in seconds.
 * Only the PCIe legs vary; the on-chip portion repeats to the cycle.
 */
SampleSet simulateBertRuns(const BertEstimate &estimate, unsigned runs,
                           Rng rng, PcieVarianceModel variance = {});

} // namespace tsm

#endif // TSM_WORKLOAD_BERT_HH
