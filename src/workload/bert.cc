#include "workload/bert.hh"

#include <algorithm>
#include <cmath>

#include "common/format.hh"
#include "common/log.hh"

namespace tsm {

BertConfig
BertConfig::base()
{
    BertConfig c;
    c.encoders = 12;
    c.hidden = 768;
    c.heads = 12;
    c.intermediate = 3072;
    return c;
}

BertConfig
BertConfig::large()
{
    return BertConfig{}; // defaults are BERT-Large
}

BertConfig
BertConfig::withEncoders(unsigned n) const
{
    BertConfig c = *this;
    c.encoders = n;
    return c;
}

Bytes
BertConfig::activationBytes() const
{
    return Bytes(seqLen) * hidden * dtypeBytes(DType::Fp16);
}

namespace {

/** Append one encoder layer to the graph; returns its output node. */
NodeId
addEncoder(Graph &g, const BertConfig &c, NodeId input, unsigned index)
{
    const std::uint64_t s = c.seqLen;
    const std::uint64_t h = c.hidden;
    const std::uint64_t head_dim = h / c.heads;
    const TensorShape act{{s, h}, DType::Fp16};

    // Self-attention: Q, K, V projections.
    const NodeId wq = g.addWeights({{h, h}, DType::Fp16}, "wq");
    const NodeId wk = g.addWeights({{h, h}, DType::Fp16}, "wk");
    const NodeId wv = g.addWeights({{h, h}, DType::Fp16}, "wv");
    const NodeId q = g.addMatMul(input, wq, s, h, h, DType::Fp16, "q");
    const NodeId k = g.addMatMul(input, wk, s, h, h, DType::Fp16, "k");
    const NodeId v = g.addMatMul(input, wv, s, h, h, DType::Fp16, "v");

    // Scores: per head [s x d][d x s] -> expressed as one matmul of
    // the flattened head batch: [heads*s x d] x [d x s].
    const NodeId kt =
        g.addTranspose(k, {{h, s}, DType::Fp16}, "k_t");
    const NodeId scores = g.addMatMul(q, kt, c.heads * s, head_dim, s,
                                      DType::Fp16, "scores");
    const NodeId probs = g.addSoftmax(scores, "probs");

    // Context: [heads*s x s] x [s x d].
    const NodeId ctx = g.addMatMul(probs, v, c.heads * s, s, head_dim,
                                   DType::Fp16, "context");

    // Output projection + residual + norm.
    const NodeId wo = g.addWeights({{h, h}, DType::Fp16}, "wo");
    const NodeId proj = g.addMatMul(ctx, wo, s, h, h, DType::Fp16, "proj");
    const NodeId res1 = g.addElementwise({proj, input}, act, "residual1");
    const NodeId ln1 = g.addLayerNorm(res1, "ln1");

    // Feed-forward network.
    const NodeId w1 = g.addWeights({{h, c.intermediate}, DType::Fp16},
                                   "ffn_w1");
    const NodeId w2 = g.addWeights({{c.intermediate, h}, DType::Fp16},
                                   "ffn_w2");
    const NodeId ff1 = g.addMatMul(ln1, w1, s, h, c.intermediate,
                                   DType::Fp16, "ffn1");
    const NodeId gelu = g.addElementwise(
        {ff1}, {{s, c.intermediate}, DType::Fp16}, "gelu");
    const NodeId ff2 = g.addMatMul(gelu, w2, s, c.intermediate, h,
                                   DType::Fp16, "ffn2");
    const NodeId res2 = g.addElementwise({ff2, ln1}, act, "residual2");
    return g.addLayerNorm(res2, format("encoder{}_out", index));
}

} // namespace

Graph
buildBertGraph(const BertConfig &config)
{
    Graph g;
    NodeId cur = g.addInput({{config.seqLen, config.hidden}, DType::Fp16},
                            "embeddings");
    for (unsigned e = 0; e < config.encoders; ++e)
        cur = addEncoder(g, config, cur, e);
    g.addOutput(cur, "encoded");
    g.validate();
    return g;
}

double
encoderFlops(const BertConfig &config)
{
    const BertConfig one = config.withEncoders(1);
    return buildBertGraph(one).totalFlops();
}

std::vector<BlockCost>
bertBlocks(const BertConfig &config, const TspCostModel &cost)
{
    // Cost one encoder once (all encoders are identical).
    const Graph one = buildBertGraph(config.withEncoders(1));
    Cycle compute = 0;
    Cycle movement = 0;
    for (const auto &node : one.nodes()) {
        const Cycle c = cost.nodeCycles(node);
        if (node.kind == OpKind::Transpose)
            movement += c;
        else
            compute += c;
    }
    // Attention head reshapes and stream concatenation between the
    // functional slices: the activations make ~11 passes through the
    // SXM per encoder (Q/K/V head split and merge, score layout,
    // context merge, FFN stream concatenation). A naive schedule pays
    // this serially (Fig 20's "unoptimized" bars); the optimized
    // schedule hides it under MXM compute.
    movement += Cycle(std::ceil(11.0 * double(config.activationBytes()) /
                                cost.sxmBytesPerCycle));

    std::vector<BlockCost> blocks(config.encoders);
    for (auto &b : blocks) {
        b.computeCycles = compute;
        b.movementCycles = movement;
        b.activationBytes = config.activationBytes();
        b.weightBytes = one.weightBytes();
    }
    return blocks;
}

BertEstimate
estimateBert(const BertConfig &config, unsigned tsps,
             const TspCostModel &cost, BalanceMode mode)
{
    BertEstimate est;
    const auto blocks = bertBlocks(config, cost);
    // Boundary activations ride 2 of the node's links in parallel.
    const double comm_cycles_per_vector = 24.0 / 2.0;
    est.plan = planPipeline(blocks, tsps, mode, comm_cycles_per_vector);

    est.chipSec = TspCostModel::cyclesToSeconds(est.plan.latencyCycles());
    // Input embeddings in, encoded sequence out.
    est.pcieSec = cost.pcieSeconds(config.activationBytes()) +
                  cost.pcieSeconds(config.activationBytes());
    est.totalSec = est.chipSec + est.pcieSec;

    const double model_flops =
        encoderFlops(config) * double(config.encoders);
    est.realizedTops =
        model_flops / (double(est.plan.bottleneckCycles()) / kCoreFreqHz) /
        1e12;
    return est;
}

SampleSet
simulateBertRuns(const BertEstimate &estimate, unsigned runs, Rng rng,
                 PcieVarianceModel variance)
{
    SampleSet samples;
    for (unsigned r = 0; r < runs; ++r) {
        // The chip portion repeats to the cycle; only the host legs
        // vary. Extra invocation time is drawn from a clamped
        // log-normal (long right tail, hard OS-jitter ceiling).
        const double mu = std::log(variance.meanExtraSec) -
                          0.5 * std::log(1.0 + std::pow(variance.sigmaSec /
                                                        variance.meanExtraSec,
                                                        2.0));
        const double sg = std::sqrt(std::log(
            1.0 + std::pow(variance.sigmaSec / variance.meanExtraSec, 2.0)));
        double extra = std::exp(rng.gaussian(mu, sg));
        extra = std::min(extra, variance.maxExtraSec);
        samples.add(estimate.totalSec + extra);
    }
    return samples;
}

} // namespace tsm
