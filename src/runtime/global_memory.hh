/**
 * @file
 * The global shared address space (paper Fig 3, §4.2).
 *
 * The system's SRAM is "logically shared, but physically distributed":
 * every vector word in the machine is named by the rank-5 tensor
 * address [Device, Hemisphere, Slice, Bank, Offset]. Because the
 * compiler knows the total order of every reference, remote data is
 * never *requested* — it is *pushed* by the producing device at a time
 * the consumer's schedule already expects (Fig 9(b) deletes the
 * request leg of the RDMA transaction, halving protocol traffic).
 *
 * GlobalMemory compiles a batch of such pushes into an SSN schedule
 * plus per-chip programs (source-side reads, scheduled sends, and
 * destination-side writes), and offers host-side peek/poke for setup
 * and verification.
 */

#ifndef TSM_RUNTIME_GLOBAL_MEMORY_HH
#define TSM_RUNTIME_GLOBAL_MEMORY_HH

#include <vector>

#include "arch/chip.hh"
#include "ssn/scheduler.hh"

namespace tsm {

/** One push: `vectors` consecutive words from src to a remote region. */
struct PushRequest
{
    /** First source word (device + local address). */
    GlobalAddr src;

    /** Destination device and first destination word. */
    TspId dstDevice = kTspInvalid;
    LocalAddr dstAddr;

    std::uint32_t vectors = 1;

    /** Earliest injection cycle (producer completion time). */
    Cycle earliest = 0;
};

/** A compiled batch of pushes, ready to load onto the chips. */
struct CompiledPushes
{
    NetworkSchedule schedule;
    ProgramSet programs;

    /** Cycle by which every pushed word is resident at its target. */
    Cycle completion = 0;
};

/** The logically shared, physically distributed memory. */
class GlobalMemory
{
  public:
    /**
     * @param topo System topology.
     * @param chips One chip per TSP, indexed by id (externally owned).
     */
    GlobalMemory(const Topology &topo, std::vector<TspChip *> chips);

    /** Total capacity: 220 MiB per device. */
    Bytes capacity() const;

    /** Number of addressable vector words. */
    std::uint64_t words() const;

    /// @name Host-side access (setup and verification)
    /// @{

    void write(const GlobalAddr &addr, VecPtr data);
    VecPtr read(const GlobalAddr &addr) const;
    bool present(const GlobalAddr &addr) const;

    /// @}

    /**
     * Compile a batch of pushes into a conflict-free schedule and
     * per-chip programs. Requests are scheduled in the given order
     * (flow ids 1..N assigned in order).
     */
    CompiledPushes compile(const std::vector<PushRequest> &pushes,
                           SsnConfig config = {}) const;

    /**
     * Convenience: compile, load, execute, and drain the given pushes
     * on the owned chips (which must be idle). @return completion
     * tick.
     */
    Tick execute(const std::vector<PushRequest> &pushes,
                 SsnConfig config = {});

  private:
    const Topology *topo_;
    std::vector<TspChip *> chips_;
};

} // namespace tsm

#endif // TSM_RUNTIME_GLOBAL_MEMORY_HH
