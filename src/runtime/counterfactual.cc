#include "runtime/counterfactual.hh"

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "arch/chip.hh"
#include "net/network.hh"
#include "prof/profiler.hh"
#include "sim/event_queue.hh"

namespace tsm {

bool
runCounterfactual(const Topology &topo, const WhatIfCounterfactual &cf,
                  std::uint64_t seed, CounterfactualRun *out,
                  std::string *error)
{
    ProgramSet programs;
    if (!tryBuildPrograms(cf.schedule, topo, {}, {}, programs, error))
        return false;

    Cycle promised = 0;
    for (const Program &prog : programs.byChip)
        for (const Instr &i : prog.instrs)
            if (i.op == Op::Recv && i.issueAt != kCycleUnscheduled &&
                i.issueAt > promised)
                promised = i.issueAt;

    EventQueue eq;
    ProfilerSink prof;
    eq.tracer().addSink(&prof);

    Network net(topo, eq, Rng(seed));
    for (const LinkTimingOverride &lt : cf.linkTiming)
        net.setLinkTiming(lt.link, lt.serializationPs, lt.propagationPs);

    std::vector<std::unique_ptr<TspChip>> chips;
    for (TspId t = 0; t < topo.numTsps(); ++t)
        chips.push_back(std::make_unique<TspChip>(t, net, DriftClock()));
    for (TspId t = 0; t < topo.numTsps(); ++t) {
        chips[t]->setStream(0, makeVec(Vec(1.0f)));
        programs.byChip[t].emitHalt();
        chips[t]->load(std::move(programs.byChip[t]));
        chips[t]->start(0);
    }
    eq.run();
    eq.tracer().removeSink(&prof);
    prof.finish();

    CounterfactualRun run;
    run.staticCompletionCycles = promised;
    run.simulatedCompletionCycles = Cycle(
        std::llround(double(prof.lastRecvTick()) / kCorePeriodPs));
    run.gapCycles = std::int64_t(run.simulatedCompletionCycles) -
                    std::int64_t(run.staticCompletionCycles);
    run.flitsDelivered = net.totalFlits();
    if (out)
        *out = run;
    return true;
}

} // namespace tsm
