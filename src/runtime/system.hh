/**
 * @file
 * A live multi-TSP system: topology + network + chips + clock
 * domains, with the bring-up sequence (HAC alignment, program
 * emplacement, synchronized launch) the paper's runtime performs
 * before every distributed inference (§3, §5.1).
 */

#ifndef TSM_RUNTIME_SYSTEM_HH
#define TSM_RUNTIME_SYSTEM_HH

#include <memory>
#include <vector>

#include "arch/chip.hh"
#include "net/network.hh"
#include "sync/program_alignment.hh"
#include "sync/sync_tree.hh"
#include "trace/digest.hh"
#include "trace/journal.hh"

namespace tsm {

/** Construction parameters of a system instance. */
struct SystemConfig
{
    unsigned numTsps = 8;
    NodeWiring wiring = NodeWiring::FullMesh;

    /** Per-chip frequency error drawn from N(0, sigma) ppm. */
    double driftPpmSigma = 0.0;

    /** Enable link latency jitter. */
    bool jitter = false;

    /** Global FEC error model. */
    ErrorModel errors;

    /**
     * Attach a DigestSink for the system's whole lifetime, folding
     * every traced event (all categories, including per-dispatch Sim
     * events) into a 64-bit fingerprint readable via timelineDigest().
     * Two runs are bit-identical iff their digests match.
     */
    bool captureDigest = false;

    /**
     * Record the canonical tsm-journal-v1 event journal to this path
     * for the system's whole lifetime (all categories). Two journals
     * from equal-seed runs must be byte-identical; when they are not,
     * tools/tsm_diverge locates the first diverging event.
     */
    std::string journalPath;

    std::uint64_t seed = 1;
};

/** The machine. Owns every simulation object. */
class TsmSystem
{
  public:
    explicit TsmSystem(const SystemConfig &config);

    /** Build on an externally prepared topology (e.g. with disabled
     *  nodes after a failure). The topology is copied. */
    TsmSystem(const SystemConfig &config, Topology topo);

    Topology &topo() { return topo_; }
    EventQueue &eventq() { return eq_; }
    Network &net() { return *net_; }
    TspChip &chip(TspId t) { return *chips_.at(t); }
    unsigned numTsps() const { return unsigned(chips_.size()); }

    /** The simulation's tracer (attach/remove sinks here). */
    Tracer &tracer() { return eq_.tracer(); }

    /**
     * The golden timeline digest accumulated so far. Requires
     * SystemConfig::captureDigest; 0 otherwise.
     */
    std::uint64_t timelineDigest() const;

    /** Traced events folded into the digest so far (0 if off). */
    std::uint64_t digestEvents() const;

    /** Flush the journal (if configured) and return events written. */
    std::uint64_t finishJournal();

    /**
     * Run the HAC spanning-tree alignment for `duration` and stop it.
     * @return worst residual per-edge misalignment in cycles.
     */
    int synchronize(Tick duration = 5 * kPsPerMs);

    /**
     * Emplace per-chip payloads wrapped in the initial-alignment
     * preamble (paper Fig 7(b)) and start every chip at tick 0 of the
     * launch. Chips with empty payloads still participate in
     * alignment (they forward sync tokens).
     */
    void launchAligned(std::vector<Program> payloads);

    /** Launch payloads bare (no alignment preamble), all at `at`. */
    void launchRaw(std::vector<Program> payloads, Tick at);

    /**
     * Drive the event queue until every launched chip halts or the
     * deadline passes. @return true if all halted.
     */
    bool runToCompletion(Tick deadline = kTickInvalid);

    /** Total uncorrectable errors observed (links + chips). */
    std::uint64_t criticalErrors() const;

  private:
    void buildChips();

    SystemConfig config_;
    Topology topo_;
    EventQueue eq_;
    Rng rng_;
    std::unique_ptr<Network> net_;
    std::vector<std::unique_ptr<TspChip>> chips_;
    std::vector<bool> launched_;
    std::unique_ptr<DigestSink> digest_;
    std::unique_ptr<JournalSink> journal_;
};

} // namespace tsm

#endif // TSM_RUNTIME_SYSTEM_HH
