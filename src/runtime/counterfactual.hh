/**
 * @file
 * Re-simulation of a what-if counterfactual.
 *
 * The what-if engine's projections are static claims about a machine
 * that was never built. This helper builds it: lower the perturbed
 * schedule to per-chip programs, construct a Network whose perturbed
 * links genuinely serialize and propagate faster (or whose removed
 * flow genuinely never transmits), execute on drift-free chips, and
 * measure the completion the simulator observed. The SSN invariant
 * panics stay armed — a counterfactual schedule that overlaps a
 * serialization window or underflows a receive FIFO kills the run —
 * so agreement is not a numeric coincidence but a full physical
 * replay. tools/tsm_whatif --check gates simulated == projected
 * (gap == 0) on every counterfactual it re-simulates.
 */

#ifndef TSM_RUNTIME_COUNTERFACTUAL_HH
#define TSM_RUNTIME_COUNTERFACTUAL_HH

#include <cstdint>
#include <string>

#include "net/topology.hh"
#include "prof/whatif.hh"

namespace tsm {

/** What one counterfactual re-simulation measured. */
struct CounterfactualRun
{
    /** Completion the simulator observed (last scheduled receive). */
    Cycle simulatedCompletionCycles = 0;

    /** Completion the lowered programs promise (last Recv issue). */
    Cycle staticCompletionCycles = 0;

    /** simulated - static; exactness demands 0. */
    std::int64_t gapCycles = 0;

    /** Data flits the perturbed run delivered. */
    std::uint64_t flitsDelivered = 0;
};

/**
 * Execute `cf` on `topo` with its link-timing overrides applied.
 * Returns false (with a diagnosis in `*error`) when the perturbed
 * schedule cannot be lowered — an over-capacity counterfactual is
 * reported, not simulated.
 */
bool runCounterfactual(const Topology &topo,
                       const WhatIfCounterfactual &cf, std::uint64_t seed,
                       CounterfactualRun *out,
                       std::string *error = nullptr);

} // namespace tsm

#endif // TSM_RUNTIME_COUNTERFACTUAL_HH
