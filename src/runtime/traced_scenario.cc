#include "runtime/traced_scenario.hh"

#include <memory>
#include <utility>

#include "arch/chip.hh"
#include "net/network.hh"
#include "prof/blame.hh"
#include "prof/lanes.hh"
#include "prof/report.hh"
#include "prof/whatif.hh"
#include "ssn/schedule_trace.hh"

namespace tsm {

TracedScenarioResult
runScheduledScenario(TraceSession &session, const Topology &topo,
                     const std::vector<TensorTransfer> &transfers,
                     const std::string &bench, std::uint64_t seed,
                     double mbe, SsnConfig ssn,
                     const std::vector<TraceSink *> &extraSinks,
                     HostProfiler *hostprof, LaneCollector *extraLanes)
{
    TracedScenarioResult result;

    SsnScheduler scheduler(topo, ssn);
    result.schedule = scheduler.schedule(transfers);
    session.setRun(bench, seed);
    if (ProfileCollector *prof = session.profile())
        prof->setSchedule(result.schedule, topo, transfers);
    if (BlameCollector *blame = session.blame())
        blame->setSchedule(result.schedule, topo);
    if (WhatIfCollector *whatif = session.whatif())
        whatif->setSchedule(result.schedule, topo, transfers);
    // Lane collectors fold phases and link directions at event time,
    // so their schedule must land before the stream starts.
    if (LaneCollector *lanes = session.lanes())
        lanes->setSchedule(result.schedule, topo);
    if (extraLanes)
        extraLanes->setSchedule(result.schedule, topo);

    EventQueue eq;
    session.attach(eq.tracer());
    eq.setHostProfiler(hostprof ? hostprof : session.hostprof());
    for (TraceSink *sink : extraSinks)
        eq.tracer().addSink(sink);
    if (extraLanes)
        eq.tracer().addSink(&extraLanes->sink());
    traceSchedule(eq.tracer(), result.schedule);

    Network net(topo, eq, Rng(seed));
    if (mbe > 0.0) {
        ErrorModel errors;
        errors.mbePerVector = mbe;
        net.setErrorModel(errors);
    }
    std::vector<std::unique_ptr<TspChip>> chips;
    for (TspId t = 0; t < topo.numTsps(); ++t)
        chips.push_back(std::make_unique<TspChip>(t, net, DriftClock()));
    auto programs = buildPrograms(result.schedule, topo);
    for (TspId t = 0; t < topo.numTsps(); ++t) {
        chips[t]->setStream(0, makeVec(Vec(1.0f)));
        programs.byChip[t].emitHalt();
        chips[t]->load(std::move(programs.byChip[t]));
        chips[t]->start(0);
    }
    eq.run();
    for (TraceSink *sink : extraSinks) {
        eq.tracer().removeSink(sink);
        sink->finish();
    }
    if (extraLanes) {
        eq.tracer().removeSink(&extraLanes->sink());
        extraLanes->sink().finish();
    }
    session.detach();

    result.flitsDelivered = net.totalFlits();
    result.links = unsigned(topo.links().size());
    return result;
}

} // namespace tsm
