tsm_module(runtime
    counterfactual.cc
    system.cc
    runtime.cc
    global_memory.cc
    traced_scenario.cc
)
