tsm_module(runtime
    system.cc
    runtime.cc
    global_memory.cc
    traced_scenario.cc
)
