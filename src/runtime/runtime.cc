#include "runtime/runtime.hh"

#include <algorithm>

#include "common/log.hh"

namespace tsm {

Runtime::Runtime(unsigned nodes, std::uint64_t seed)
    : nodes_(nodes), seed_(seed)
{
    TSM_ASSERT(nodes >= 2, "need at least one worker node plus the spare");
    nodeHealthy_.assign(nodes, true);
    // The highest-numbered node is held back as the hot spare.
    spareNode_ = nodes - 1;
}

std::vector<unsigned>
Runtime::activeNodes() const
{
    std::vector<unsigned> out;
    for (unsigned n = 0; n < nodes_; ++n) {
        if (!nodeHealthy_[n])
            continue;
        if (n == spareNode_ && !spareUsed_)
            continue; // held in reserve
        out.push_back(n);
    }
    return out;
}

std::vector<TspId>
Runtime::activeTsps() const
{
    std::vector<TspId> out;
    for (unsigned n : activeNodes())
        for (unsigned i = 0; i < kTspsPerNode; ++i)
            out.push_back(n * kTspsPerNode + i);
    return out;
}

unsigned
Runtime::logicalTsps() const
{
    return unsigned(activeNodes().size()) * kTspsPerNode;
}

std::uint64_t
Runtime::attempt(const WorkBuilder &work, const FaultScenario &fault,
                 bool fault_active, Tick &completion)
{
    // Build the physical topology, take failed nodes out of service.
    Topology topo = Topology::makeSingleLevel(nodes_);
    for (unsigned n = 0; n < nodes_; ++n)
        if (!nodeHealthy_[n])
            topo.disableNode(n);

    SystemConfig cfg;
    cfg.numTsps = topo.numTsps();
    cfg.seed = seed_ + (++runCounter_);
    TsmSystem system(cfg, std::move(topo));

    // Inject the scenario's marginal-node behaviour.
    if (fault_active && fault.faultyNode != ~0u) {
        ErrorModel em;
        em.mbePerVector = fault.mbeRate;
        const TspId lo = fault.faultyNode * kTspsPerNode;
        const TspId hi = lo + kTspsPerNode;
        for (LinkId l = 0; l < system.topo().links().size(); ++l) {
            const Link &link = system.topo().links()[l];
            if ((link.a >= lo && link.a < hi) ||
                (link.b >= lo && link.b < hi))
                system.net().setLinkErrorModel(l, em);
        }
    }

    // Compile: transfers -> schedule -> per-chip programs.
    const auto transfers = work(system.topo(), activeTsps());
    SsnScheduler scheduler(system.topo());
    const auto schedule = scheduler.schedule(transfers);
    auto programs = buildPrograms(schedule, system.topo());
    // Sources transmit from stream 0; give it a payload.
    for (TspId t = 0; t < system.numTsps(); ++t)
        system.chip(t).setStream(0, makeVec(Vec(1.0f)));

    system.launchRaw(std::move(programs.byChip), 0);
    const bool done = system.runToCompletion();
    TSM_ASSERT(done, "inference wedged");
    completion = system.eventq().now();

    // Triangulate the suspect node from the per-link FEC counters:
    // the node appearing in the most erroring links is the suspect.
    std::vector<std::uint64_t> node_errors(nodes_, 0);
    for (LinkId l = 0; l < system.topo().links().size(); ++l) {
        const auto &st = system.net().linkStats(l);
        if (st.mbeDetected == 0)
            continue;
        const Link &link = system.topo().links()[l];
        node_errors[link.a / kTspsPerNode] += st.mbeDetected;
        node_errors[link.b / kTspsPerNode] += st.mbeDetected;
    }
    lastSuspectNode_ = ~0u;
    std::uint64_t best = 0;
    for (unsigned n = 0; n < nodes_; ++n) {
        if (node_errors[n] > best) {
            best = node_errors[n];
            lastSuspectNode_ = n;
        }
    }
    return system.criticalErrors();
}

void
Runtime::swapSpare(unsigned node)
{
    TSM_ASSERT(!spareUsed_, "hot spare already consumed");
    nodeHealthy_[node] = false;
    spareUsed_ = true;
    inform("runtime: node {} out of service, hot spare node {} swapped in",
           node, spareNode_);
}

RunReport
Runtime::runInference(const WorkBuilder &work, const FaultScenario &fault,
                      unsigned max_attempts)
{
    RunReport report;
    bool fault_active = fault.faultyNode != ~0u;
    for (unsigned a = 0; a < max_attempts; ++a) {
        ++report.attempts;
        Tick completion = kTickInvalid;
        const std::uint64_t mbes =
            attempt(work, fault, fault_active, completion);
        report.mbesObserved += mbes;
        if (mbes == 0) {
            report.success = true;
            report.completion = completion;
            return report;
        }
        // A fault was detected: decide transient vs persistent.
        if (!fault.persistent) {
            // Transient: the replay will be clean.
            fault_active = false;
        } else if (report.attempts >= 2 && !spareUsed_ &&
                   lastSuspectNode_ != ~0u) {
            // Persistent across a replay: replace the triangulated
            // marginal node (paper: "requires physical intervention
            // ... to remedy the fault" — until then, the spare).
            report.failedNode = lastSuspectNode_;
            report.spareSwapped = true;
            swapSpare(lastSuspectNode_);
        }
    }
    return report;
}

} // namespace tsm
