/**
 * @file
 * The fault-tolerant inference runtime (paper §4.5).
 *
 * Strategy reproduced from the paper: every link runs FEC, so single-
 * bit errors vanish in situ; uncorrectable (multi-bit) errors are
 * *detected* and flagged, and the runtime *replays* the inference "on
 * a set of known good hardware". If the fault is transient it
 * disappears on replay; if it persists, the runtime triangulates the
 * marginal node from the per-link error counters, swaps in the rack's
 * N+1 hot-spare node (the Dragonfly stays fully connected — edge and
 * node symmetry), and replays again.
 */

#ifndef TSM_RUNTIME_RUNTIME_HH
#define TSM_RUNTIME_RUNTIME_HH

#include <functional>
#include <vector>

#include "runtime/system.hh"
#include "ssn/scheduler.hh"

namespace tsm {

/** Fault injection for one runtime scenario. */
struct FaultScenario
{
    /** MBE probability per vector on every link of the faulty node. */
    double mbeRate = 0.0;

    /** Node whose links misbehave (kTspInvalid: no fault). */
    unsigned faultyNode = ~0u;

    /** Transient faults clear after the first replay; persistent
     *  faults keep firing until the node is replaced. */
    bool persistent = false;
};

/** Outcome of one logical inference. */
struct RunReport
{
    bool success = false;

    /** Total attempts (1 = clean first try). */
    unsigned attempts = 0;

    /** MBEs observed across all attempts. */
    std::uint64_t mbesObserved = 0;

    /** True if the hot spare was swapped in. */
    bool spareSwapped = false;

    /** The node taken out of service (if any). */
    unsigned failedNode = ~0u;

    /** Completion tick of the successful attempt. */
    Tick completion = kTickInvalid;
};

/**
 * Builds the communication work of one inference given the healthy
 * TSPs available. Returning transfers keeps the runtime independent
 * of any particular workload.
 */
using WorkBuilder = std::function<std::vector<TensorTransfer>(
    const Topology &topo, const std::vector<TspId> &active)>;

/**
 * The runtime driver. Owns the notion of which physical nodes are
 * healthy; each inference builds a fresh system over the healthy
 * topology (the paper's runtime likewise re-marshals resources per
 * invocation).
 */
class Runtime
{
  public:
    /**
     * @param nodes Total physical nodes, one of which is held back as
     *        the hot spare (paper Fig 6: N+1 redundancy per rack).
     * @param seed Reproducibility seed.
     */
    explicit Runtime(unsigned nodes, std::uint64_t seed = 1);

    /** Physical nodes currently in service (excludes spare & failed). */
    std::vector<unsigned> activeNodes() const;

    /** TSPs of the active nodes. */
    std::vector<TspId> activeTsps() const;

    /** Logical TSP count available to workloads. */
    unsigned logicalTsps() const;

    /**
     * Execute one inference with up to `max_attempts` tries,
     * applying the fault scenario.
     */
    RunReport runInference(const WorkBuilder &work,
                           const FaultScenario &fault = {},
                           unsigned max_attempts = 3);

    /** True if the spare has been consumed. */
    bool spareUsed() const { return spareUsed_; }

  private:
    /** One attempt; returns MBE count (0 = clean). */
    std::uint64_t attempt(const WorkBuilder &work,
                          const FaultScenario &fault, bool fault_active,
                          Tick &completion);

    /** Mark `node` failed and bring the spare into service. */
    void swapSpare(unsigned node);

    unsigned nodes_;
    unsigned spareNode_;
    std::vector<bool> nodeHealthy_;
    bool spareUsed_ = false;
    std::uint64_t seed_;
    unsigned runCounter_ = 0;

    /** Node triangulated from the last attempt's FEC counters. */
    unsigned lastSuspectNode_ = ~0u;
};

} // namespace tsm

#endif // TSM_RUNTIME_RUNTIME_HH
