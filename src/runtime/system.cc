#include "runtime/system.hh"

#include "common/log.hh"

namespace tsm {

TsmSystem::TsmSystem(const SystemConfig &config)
    : TsmSystem(config, Topology::forSystemSize(config.numTsps))
{
}

TsmSystem::TsmSystem(const SystemConfig &config, Topology topo)
    : config_(config), topo_(std::move(topo)), rng_(config.seed)
{
    net_ = std::make_unique<Network>(topo_, eq_, rng_.fork(1),
                                     config_.jitter);
    net_->setErrorModel(config_.errors);
    if (config_.captureDigest) {
        digest_ = std::make_unique<DigestSink>();
        eq_.tracer().addSink(digest_.get());
    }
    if (!config_.journalPath.empty()) {
        journal_ = std::make_unique<JournalSink>(config_.journalPath);
        eq_.tracer().addSink(journal_.get());
    }
    buildChips();
}

std::uint64_t
TsmSystem::timelineDigest() const
{
    return digest_ ? digest_->digest() : 0;
}

std::uint64_t
TsmSystem::digestEvents() const
{
    return digest_ ? digest_->events() : 0;
}

std::uint64_t
TsmSystem::finishJournal()
{
    if (!journal_)
        return 0;
    journal_->finish();
    return journal_->eventsWritten();
}

void
TsmSystem::buildChips()
{
    Rng drift_rng = rng_.fork(2);
    for (TspId t = 0; t < topo_.numTsps(); ++t) {
        const double ppm = config_.driftPpmSigma > 0.0
                               ? drift_rng.gaussian(0.0,
                                                    config_.driftPpmSigma)
                               : 0.0;
        // Small random phase: chips power up unsynchronized.
        const Tick phase =
            config_.driftPpmSigma > 0.0 ? Tick(drift_rng.below(100000)) : 0;
        chips_.push_back(
            std::make_unique<TspChip>(t, *net_, DriftClock(ppm, phase)));
    }
    launched_.assign(chips_.size(), false);
}

int
TsmSystem::synchronize(Tick duration)
{
    const SyncTree tree = SyncTree::build(topo_, 0);
    SystemSynchronizer sync(
        [this] {
            std::vector<TspChip *> raw;
            for (auto &c : chips_)
                raw.push_back(c.get());
            return raw;
        }(),
        tree);
    if (eq_.tracer().wants(TraceCat::Runtime))
        eq_.tracer().emit({eq_.now(), duration, TraceCat::Runtime, 0,
                           "synchronize", std::int64_t(chips_.size()), 0});
    sync.start();
    eq_.runUntil(eq_.now() + duration);
    sync.stop();
    // Drain the aligners' final pending updates.
    eq_.run();
    return sync.worstDelta();
}

void
TsmSystem::launchAligned(std::vector<Program> payloads)
{
    TSM_ASSERT(payloads.size() == chips_.size(),
               "one payload per chip required (may be empty)");
    const SyncTree tree = SyncTree::build(topo_, 0);
    const AlignmentPlan plan = AlignmentPlan::build(topo_, tree);
    const Tick start = eq_.now();
    if (eq_.tracer().wants(TraceCat::Runtime))
        eq_.tracer().emit({start, 0, TraceCat::Runtime, 0, "launch_aligned",
                           std::int64_t(chips_.size()), 0});
    for (TspId t = 0; t < chips_.size(); ++t) {
        Program payload = std::move(payloads[t]);
        if (payload.instrs.empty() ||
            payload.instrs.back().op != Op::Halt) {
            payload.emitHalt();
        }
        chips_[t]->load(plan.assemble(t, payload));
        chips_[t]->start(start);
        launched_[t] = true;
    }
}

void
TsmSystem::launchRaw(std::vector<Program> payloads, Tick at)
{
    TSM_ASSERT(payloads.size() == chips_.size(),
               "one payload per chip required (may be empty)");
    if (eq_.tracer().wants(TraceCat::Runtime))
        eq_.tracer().emit({eq_.now(), 0, TraceCat::Runtime, 0, "launch_raw",
                           std::int64_t(chips_.size()), std::int64_t(at)});
    for (TspId t = 0; t < chips_.size(); ++t) {
        Program payload = std::move(payloads[t]);
        if (payload.instrs.empty() ||
            payload.instrs.back().op != Op::Halt) {
            payload.emitHalt();
        }
        chips_[t]->load(std::move(payload));
        chips_[t]->start(at);
        launched_[t] = true;
    }
}

bool
TsmSystem::runToCompletion(Tick deadline)
{
    const auto all_halted = [this] {
        for (TspId t = 0; t < chips_.size(); ++t)
            if (launched_[t] && !chips_[t]->halted())
                return false;
        return true;
    };
    while (!all_halted()) {
        if (eq_.pending() == 0)
            return false; // wedged: somebody waits forever
        if (deadline != kTickInvalid && eq_.now() >= deadline)
            return false;
        eq_.run(100000);
    }
    if (eq_.tracer().wants(TraceCat::Runtime))
        eq_.tracer().emit({eq_.now(), 0, TraceCat::Runtime, 0, "completed",
                           std::int64_t(chips_.size()), 0});
    return true;
}

std::uint64_t
TsmSystem::criticalErrors() const
{
    std::uint64_t total = net_->totalMbes();
    for (const auto &c : chips_)
        total += c->stats().corruptReceived;
    return total;
}

} // namespace tsm
