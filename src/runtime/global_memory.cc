#include "runtime/global_memory.hh"

#include <algorithm>

#include "common/log.hh"

namespace tsm {

GlobalMemory::GlobalMemory(const Topology &topo,
                           std::vector<TspChip *> chips)
    : topo_(&topo), chips_(std::move(chips))
{
    TSM_ASSERT(chips_.size() == topo.numTsps(),
               "one chip per TSP required");
}

Bytes
GlobalMemory::capacity() const
{
    return Bytes(topo_->numTsps()) * kLocalMemBytes;
}

std::uint64_t
GlobalMemory::words() const
{
    return std::uint64_t(topo_->numTsps()) * LocalAddr::kWords;
}

void
GlobalMemory::write(const GlobalAddr &addr, VecPtr data)
{
    TSM_ASSERT(addr.device < chips_.size(), "device out of range");
    chips_[addr.device]->mem().write(addr.local, std::move(data));
}

VecPtr
GlobalMemory::read(const GlobalAddr &addr) const
{
    TSM_ASSERT(addr.device < chips_.size(), "device out of range");
    return chips_[addr.device]->mem().read(addr.local);
}

bool
GlobalMemory::present(const GlobalAddr &addr) const
{
    TSM_ASSERT(addr.device < chips_.size(), "device out of range");
    return chips_[addr.device]->mem().present(addr.local);
}

CompiledPushes
GlobalMemory::compile(const std::vector<PushRequest> &pushes,
                      SsnConfig config) const
{
    std::vector<TensorTransfer> transfers;
    std::unordered_map<FlowId, LocalAddr> src_base;
    std::unordered_map<FlowId, LocalAddr> dst_base;
    FlowId flow = 1;
    for (const auto &p : pushes) {
        TSM_ASSERT(p.vectors > 0, "empty push");
        TSM_ASSERT(p.src.local.flatten() + p.vectors <= LocalAddr::kWords,
                   "push source runs past the end of device memory");
        TSM_ASSERT(p.dstAddr.flatten() + p.vectors <= LocalAddr::kWords,
                   "push destination runs past the end of device memory");
        TSM_ASSERT(p.src.device != p.dstDevice,
                   "a local copy needs no network push");
        TensorTransfer t;
        t.flow = flow;
        t.src = p.src.device;
        t.dst = p.dstDevice;
        t.vectors = p.vectors;
        // Leave room before the first departure for the source-side
        // memory read that feeds the send.
        t.earliest = std::max<Cycle>(p.earliest, 16);
        transfers.push_back(t);
        src_base[flow] = p.src.local;
        dst_base[flow] = p.dstAddr;
        ++flow;
    }

    CompiledPushes out;
    SsnScheduler scheduler(*topo_, config);
    out.schedule = scheduler.schedule(transfers);
    out.programs =
        buildPrograms(out.schedule, *topo_, dst_base, src_base);
    // The destination Write lands one cycle after the last arrival's
    // receive margin.
    out.completion = out.schedule.makespan + kRxMarginCycles + 1;
    return out;
}

Tick
GlobalMemory::execute(const std::vector<PushRequest> &pushes,
                      SsnConfig config)
{
    CompiledPushes compiled = compile(pushes, config);
    EventQueue &eq = chips_.front()->network().eventq();
    const Tick start = eq.now();
    // Re-base the compiled cycle numbers onto the current time so the
    // batch can launch at any point in the machine's life.
    const Cycle base = DriftClock().tickToCycle(start) + 4;
    for (TspId t = 0; t < chips_.size(); ++t) {
        TSM_ASSERT(!chips_[t]->running(), "chip busy");
        Program p = std::move(compiled.programs.byChip[t]);
        p.shift(base);
        p.emitHalt();
        chips_[t]->load(std::move(p));
        chips_[t]->start(start);
    }
    eq.run();
    for (const auto *c : chips_)
        TSM_ASSERT(c->halted(), "push program did not complete");
    return eq.now();
}

} // namespace tsm
