/**
 * @file
 * One-call instrumented execution of a scheduled transfer set.
 *
 * Every instrumented bench harness repeats the same block: schedule
 * the transfers with the SSN scheduler, stamp run identity on the
 * TraceSession's collectors, replay the schedule onto the tracer,
 * build a network + chips, lower the schedule to per-chip programs,
 * and drive the event queue to completion. `runScheduledScenario`
 * centralizes that block so a bench adds tracing with ~6 lines: build
 * a representative `TensorTransfer` set and call it.
 */

#ifndef TSM_RUNTIME_TRACED_SCENARIO_HH
#define TSM_RUNTIME_TRACED_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "net/topology.hh"
#include "ssn/scheduler.hh"
#include "trace/session.hh"
#include "trace/trace.hh"

namespace tsm {

/** What one traced execution produced. */
struct TracedScenarioResult
{
    /** The SSN schedule the run executed. */
    NetworkSchedule schedule;

    /** Data flits delivered across all links. */
    std::uint64_t flitsDelivered = 0;

    /** Links in the topology the run used. */
    unsigned links = 0;
};

/**
 * Schedule `transfers` on `topo`, execute them on freshly built chips
 * with the session's sinks attached, and return the outcome. Stamps
 * `bench`/`seed` on the session's collectors and attaches the
 * schedule analysis to the profile collector when one is active.
 * `mbe` > 0 injects FEC multi-bit errors at that per-vector rate
 * (corrupting payloads without perturbing timing). `ssn` selects the
 * scheduler policy; `extraSinks` are attached to the run's tracer for
 * its duration and finish()ed before returning — the hook the
 * scenario fuzzer uses to capture journals and waterfalls without
 * going through files. `hostprof` overrides the session's own host
 * profiler (session.hostprof() is used when null) — the event queue
 * reports its wall-clock attribution there for the duration of the
 * run. `extraLanes`, when given, is a concurrency-profile collector
 * outside the session (the fuzzer's in-memory path): unlike a plain
 * extra sink it needs the schedule *before* the stream starts (for
 * the lookahead and link directions), so it gets its own hook.
 */
TracedScenarioResult
runScheduledScenario(TraceSession &session, const Topology &topo,
                     const std::vector<TensorTransfer> &transfers,
                     const std::string &bench, std::uint64_t seed,
                     double mbe = 0.0, SsnConfig ssn = {},
                     const std::vector<TraceSink *> &extraSinks = {},
                     HostProfiler *hostprof = nullptr,
                     LaneCollector *extraLanes = nullptr);

} // namespace tsm

#endif // TSM_RUNTIME_TRACED_SCENARIO_HH
