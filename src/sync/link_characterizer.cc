#include "sync/link_characterizer.hh"

#include <cmath>

#include "common/log.hh"

namespace tsm {

LinkCharacterizer::LinkCharacterizer(TspChip &origin, TspChip &peer,
                                     LinkId link)
    : origin_(origin), peer_(peer), link_(link)
{
    const Link &l = origin.network().topo().links()[link];
    TSM_ASSERT((l.a == origin.id() && l.b == peer.id()) ||
                   (l.b == origin.id() && l.a == peer.id()),
               "characterizer endpoints do not match the link");
    originPort_ = l.portAt(origin.id());
    peerPort_ = l.portAt(peer.id());
    nominalRoundTripCycles_ =
        2.0 * double(linkPropagationPs(l.cls)) / kCorePeriodPs;

    origin_.setControlHandler(
        originPort_,
        [this](unsigned, const ArrivedFlit &af) { originHandler(af); });
    peer_.setControlHandler(
        peerPort_,
        [this](unsigned, const ArrivedFlit &af) { peerHandler(af); });
}

LinkCharacterizer::~LinkCharacterizer()
{
    origin_.setControlHandler(originPort_, nullptr);
    peer_.setControlHandler(peerPort_, nullptr);
}

void
LinkCharacterizer::start(unsigned iterations)
{
    remaining_ = iterations;
    // Begin after a short warmup so both chips' clocks are past their
    // power-up phase offsets (the HAC reads 0 before its first edge).
    origin_.network().eventq().scheduleAfter(
        kPsPerUs, [this] { sendProbe(); }, kSpanNone,
        EventKind::SyncProbe);
}

void
LinkCharacterizer::sendProbe()
{
    // Transmit the origin's instantaneous HAC value.
    probeDepartCycle_ = origin_.localCycle();
    Flit probe;
    probe.flow = kFlowHacExchange;
    probe.seq = 0; // probe
    probe.meta = origin_.hac();
    origin_.network().controlTransmit(origin_.id(), link_, std::move(probe));
}

void
LinkCharacterizer::peerHandler(const ArrivedFlit &af)
{
    if (af.flit.seq != 0)
        return;
    // Reflect the received HAC value immediately (hardware path).
    Flit reply;
    reply.flow = kFlowHacExchange;
    reply.seq = 1; // reflection
    reply.meta = af.flit.meta;
    peer_.network().controlTransmit(peer_.id(), link_, std::move(reply));
}

void
LinkCharacterizer::originHandler(const ArrivedFlit &af)
{
    if (af.flit.seq != 1)
        return;
    // Compare the reflected value with the free-running HAC: the
    // difference is the round trip modulo the HAC period (paper §3.1).
    const int hac_now = int(origin_.hac());
    const int sent = int(af.flit.meta);
    int rt_mod = (hac_now - sent) % int(kHacPeriodCycles);
    if (rt_mod < 0)
        rt_mod += int(kHacPeriodCycles);

    // Resolve the unknown multiple of the period with the design-time
    // nominal latency (the paper: "modulo a multiple of the HAC
    // period").
    double best = rt_mod;
    double best_err = std::abs(best - nominalRoundTripCycles_);
    for (int k = 1; k < 8; ++k) {
        const double cand = rt_mod + k * double(kHacPeriodCycles);
        const double err = std::abs(cand - nominalRoundTripCycles_);
        if (err < best_err) {
            best = cand;
            best_err = err;
        }
    }
    stats_.add(best / 2.0);

    if (--remaining_ > 0)
        sendProbe();
}

} // namespace tsm
