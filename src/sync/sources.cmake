tsm_module(sync
    link_characterizer.cc
    hac_aligner.cc
    sync_tree.cc
    program_alignment.cc
)
