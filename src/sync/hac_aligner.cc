#include "sync/hac_aligner.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace tsm {

HacAligner::HacAligner(TspChip &parent, TspChip &child, LinkId link,
                       double latency_cycles, HacAlignerConfig config)
    : parent_(parent), child_(child), link_(link),
      latencyCycles_(latency_cycles), config_(config)
{
    const Link &l = parent.network().topo().links()[link];
    TSM_ASSERT((l.a == parent.id() && l.b == child.id()) ||
                   (l.b == parent.id() && l.a == child.id()),
               "aligner endpoints do not match the link");
    childPort_ = l.portAt(child.id());
    child_.setControlHandler(
        childPort_,
        [this](unsigned, const ArrivedFlit &af) { childHandler(af); });
}

HacAligner::~HacAligner()
{
    child_.setControlHandler(childPort_, nullptr);
}

void
HacAligner::start()
{
    active_ = true;
    sendUpdate();
}

void
HacAligner::sendUpdate()
{
    if (!active_)
        return;
    // Each alignment round is a (tiny) causal transfer of its own:
    // stamp the update flit so the child-side hac_adj can be tied back
    // to the parent-side hac_tx that caused it.
    const SpanId round_span =
        transferSpan(kFlowHacExchange, std::uint32_t(rounds_++));
    Flit update;
    update.flow = kFlowHacExchange;
    update.seq = 2; // alignment update (probes use 0/1)
    update.meta = parent_.hac();
    update.span = round_span;
    parent_.network().controlTransmit(parent_.id(), link_,
                                      std::move(update));
    // Schedule the next periodic update on the parent's clock.
    EventQueue &eq = parent_.network().eventq();
    if (eq.tracer().wants(TraceCat::Sync))
        eq.tracer().emit({eq.now(), 0, TraceCat::Sync, parent_.id(),
                          "hac_tx", std::int64_t(parent_.hac()),
                          std::int64_t(child_.id()), round_span});
    const Tick next = parent_.clock().cycleToTick(
        parent_.localCycle() + config_.updatePeriodCycles);
    eq.schedule(next, [this] { sendUpdate(); }, kSpanNone,
                EventKind::HacUpdate);
}

void
HacAligner::childHandler(const ArrivedFlit &af)
{
    if (af.flit.seq != 2)
        return;
    // Expected child HAC if perfectly aligned: parent's transmitted
    // value advanced by the link flight time.
    const long expected =
        (long(af.flit.meta) + long(std::llround(latencyCycles_))) %
        long(kHacPeriodCycles);
    long diff = expected - long(child_.hac());
    // Map to signed [-period/2, period/2).
    diff %= long(kHacPeriodCycles);
    if (diff < -long(kHacPeriodCycles) / 2)
        diff += long(kHacPeriodCycles);
    if (diff >= long(kHacPeriodCycles) / 2)
        diff -= long(kHacPeriodCycles);

    lastDelta_ = int(diff);
    deltaMag_.add(std::abs(double(diff)));
    if (std::abs(diff) <= convergedTol_)
        ++consecutiveSmall_;
    else
        consecutiveSmall_ = 0;

    const int step = int(std::clamp<long>(diff, -config_.maxAdjustPerUpdate,
                                          config_.maxAdjustPerUpdate));
    if (step != 0)
        child_.adjustHac(step);
    ++updates_;
    EventQueue &eq = child_.network().eventq();
    // Payload: observed misalignment and the (rate-limited) correction
    // actually applied — the drift telemetry the profiler collects.
    if (eq.tracer().wants(TraceCat::Sync))
        eq.tracer().emit({eq.now(), 0, TraceCat::Sync, child_.id(),
                          "hac_adj", std::int64_t(diff),
                          std::int64_t(step), af.flit.span});
}

bool
HacAligner::converged(int tol, unsigned window) const
{
    // convergedTol_ is fixed at construction default (2); treat a
    // different requested tol conservatively via lastDelta_.
    if (tol == convergedTol_)
        return consecutiveSmall_ >= window;
    return updates_ >= window && std::abs(lastDelta_) <= tol;
}

} // namespace tsm
