#include "sync/sync_tree.hh"

#include <algorithm>
#include <deque>

#include "common/log.hh"

namespace tsm {

SyncTree
SyncTree::build(const Topology &topo, TspId root)
{
    SyncTree tree;
    tree.root_ = root;
    tree.depth_.assign(topo.numTsps(), ~0u);
    tree.depth_[root] = 0;
    std::deque<TspId> queue{root};
    while (!queue.empty()) {
        const TspId cur = queue.front();
        queue.pop_front();
        for (LinkId l : topo.linksAt(cur)) {
            if (!topo.linkEnabled(l))
                continue;
            const TspId next = topo.links()[l].peer(cur);
            if (tree.depth_[next] != ~0u)
                continue;
            tree.depth_[next] = tree.depth_[cur] + 1;
            tree.height_ = std::max(tree.height_, tree.depth_[next]);
            TreeEdge e;
            e.parent = cur;
            e.child = next;
            e.link = l;
            e.latencyCycles =
                double(linkPropagationPs(topo.links()[l].cls)) /
                kCorePeriodPs;
            tree.edges_.push_back(e);
            queue.push_back(next);
        }
    }
    for (unsigned d : tree.depth_)
        TSM_ASSERT(d != ~0u, "topology is disconnected; no spanning tree");
    return tree;
}

const TreeEdge *
SyncTree::parentEdge(TspId t) const
{
    for (const auto &e : edges_)
        if (e.child == t)
            return &e;
    return nullptr;
}

std::vector<const TreeEdge *>
SyncTree::childEdges(TspId t) const
{
    std::vector<const TreeEdge *> out;
    for (const auto &e : edges_)
        if (e.parent == t)
            out.push_back(&e);
    return out;
}

SystemSynchronizer::SystemSynchronizer(const std::vector<TspChip *> &chips,
                                       const SyncTree &tree,
                                       HacAlignerConfig config)
    : chips_(chips)
{
    for (const auto &e : tree.edges()) {
        aligners_.push_back(std::make_unique<HacAligner>(
            *chips_[e.parent], *chips_[e.child], e.link, e.latencyCycles,
            config));
    }
}

void
SystemSynchronizer::start()
{
    for (auto &a : aligners_)
        a->start();
}

void
SystemSynchronizer::stop()
{
    for (auto &a : aligners_)
        a->stop();
}

bool
SystemSynchronizer::allConverged(int tol) const
{
    return std::all_of(aligners_.begin(), aligners_.end(),
                       [tol](const auto &a) { return a->converged(tol); });
}

int
SystemSynchronizer::worstDelta() const
{
    int worst = 0;
    for (const auto &a : aligners_)
        worst = std::max(worst, std::abs(a->lastDelta()));
    return worst;
}

Tick
SystemSynchronizer::epochSkewPs(Tick at) const
{
    // Collect each chip's phase within [0, epoch) and measure the
    // smallest circular arc containing all phases.
    const double period = double(kHacPeriodCycles) * kCorePeriodPs;
    std::vector<double> phases;
    phases.reserve(chips_.size());
    for (const TspChip *c : chips_) {
        const Tick next = c->nextEpochStart(at);
        phases.push_back(double(next - at));
    }
    std::sort(phases.begin(), phases.end());
    // Largest gap between consecutive phases (circularly); the skew is
    // the rest of the circle.
    double largest_gap = period - phases.back() + phases.front();
    for (std::size_t i = 1; i < phases.size(); ++i)
        largest_gap = std::max(largest_gap, phases[i] - phases[i - 1]);
    return Tick(std::max(0.0, period - largest_gap));
}

} // namespace tsm
