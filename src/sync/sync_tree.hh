/**
 * @file
 * The HAC spanning tree and system-wide synchronization (paper §3.1):
 * "a spanning tree of parent/child HAC relationships is established to
 * maintain a common HAC reference time distributed across the network."
 */

#ifndef TSM_SYNC_SYNC_TREE_HH
#define TSM_SYNC_SYNC_TREE_HH

#include <memory>
#include <vector>

#include "arch/chip.hh"
#include "net/topology.hh"
#include "sync/hac_aligner.hh"

namespace tsm {

/** One parent→child relationship in the HAC spanning tree. */
struct TreeEdge
{
    TspId parent = kTspInvalid;
    TspId child = kTspInvalid;
    LinkId link = kLinkInvalid;

    /** One-way latency estimate in core cycles (from characterization
     *  or, by default, the link class nominal). */
    double latencyCycles = 0.0;
};

/** A BFS spanning tree over a topology rooted at a chosen TSP. */
class SyncTree
{
  public:
    /** Build a breadth-first spanning tree rooted at `root`. */
    static SyncTree build(const Topology &topo, TspId root = 0);

    TspId root() const { return root_; }
    const std::vector<TreeEdge> &edges() const { return edges_; }

    /** Tree depth of a TSP (root = 0). */
    unsigned depthOf(TspId t) const { return depth_[t]; }

    /** Height of the tree (max depth). */
    unsigned height() const { return height_; }

    /** The edge whose child is `t`, or nullptr for the root. */
    const TreeEdge *parentEdge(TspId t) const;

    /** Edges whose parent is `t`. */
    std::vector<const TreeEdge *> childEdges(TspId t) const;

  private:
    TspId root_ = 0;
    std::vector<TreeEdge> edges_;
    std::vector<unsigned> depth_;
    unsigned height_ = 0;
};

/**
 * Owns one HacAligner per tree edge and steers every chip's HAC toward
 * the root's time base.
 */
class SystemSynchronizer
{
  public:
    /**
     * @param chips All chips, indexed by TspId.
     * @param tree The spanning tree (edge latencies already filled in).
     * @param config Shared aligner configuration.
     */
    SystemSynchronizer(const std::vector<TspChip *> &chips,
                       const SyncTree &tree, HacAlignerConfig config = {});

    /** Begin periodic updates on every edge. */
    void start();

    /** Stop all aligners. */
    void stop();

    /** True once every edge's aligner reports convergence. */
    bool allConverged(int tol = 2) const;

    /** Worst current per-edge misalignment magnitude in cycles. */
    int worstDelta() const;

    /**
     * Global epoch skew: the spread (in picoseconds) of the chips'
     * next HAC epoch boundaries, measured circularly over one epoch.
     * Zero means all chips' epochs start simultaneously.
     */
    Tick epochSkewPs(Tick at) const;

  private:
    std::vector<TspChip *> chips_;
    std::vector<std::unique_ptr<HacAligner>> aligners_;
};

} // namespace tsm

#endif // TSM_SYNC_SYNC_TREE_HH
