/**
 * @file
 * Initial program alignment (paper §3.2, Fig 7(b)).
 *
 * With HACs aligned, the epoch boundary is a shared time reference.
 * The alignment plan builds a per-chip preamble so the whole system
 * begins its payload at the same global epoch:
 *
 *  - the root DESKEWs to an epoch boundary and TRANSMITs a sync token
 *    to each of its children;
 *  - every other chip sits in a polling loop that samples its parent
 *    port each epoch; the token is consumed at the first boundary
 *    after arrival (floor(L/period) + 1 epochs after the transmit);
 *  - having the token, a chip forwards it to its own children, then
 *    waits out the difference between its arrival epoch and the
 *    globally known start epoch, issues NOTIFY, and falls into the
 *    payload.
 *
 * The total synchronization overhead is (floor(L/period)+1) * h epochs
 * for tree height h — incurred once per distributed program launch.
 */

#ifndef TSM_SYNC_PROGRAM_ALIGNMENT_HH
#define TSM_SYNC_PROGRAM_ALIGNMENT_HH

#include <vector>

#include "arch/isa.hh"
#include "net/topology.hh"
#include "sync/sync_tree.hh"

namespace tsm {

/** A computed launch plan: preambles plus the common start epoch. */
class AlignmentPlan
{
  public:
    /**
     * Compute the plan for a topology and its HAC spanning tree.
     * Assumes HACs are already aligned (SystemSynchronizer).
     */
    static AlignmentPlan build(const Topology &topo, const SyncTree &tree);

    /** Epoch index (from simulation start) at which payloads begin. */
    Cycle startEpoch() const { return startEpoch_; }

    /** Epoch at which chip `t` consumes its sync token (root: 1). */
    Cycle arrivalEpoch(TspId t) const { return arrival_[t]; }

    /**
     * Full program for chip `t`: alignment preamble followed by the
     * chip's payload instructions.
     */
    Program assemble(TspId t, const Program &payload) const;

  private:
    /** Emit {Nop, Deskew} pairs waiting `n` whole epochs. */
    static void waitEpochs(Program &p, Cycle n);

    const Topology *topo_ = nullptr;
    const SyncTree *tree_ = nullptr;
    Cycle startEpoch_ = 0;
    std::vector<Cycle> arrival_;
};

} // namespace tsm

#endif // TSM_SYNC_PROGRAM_ALIGNMENT_HH
