/**
 * @file
 * Parent/child HAC alignment (paper §3.1, Fig 7(a) right half).
 *
 * After a link's latency L is characterized, the two TSPs enter a
 * parent/child relationship: the parent periodically transmits its
 * instantaneous HAC value; on receipt the child compares
 * (received + L) mod period against its own HAC and nudges its HAC by
 * a rate-limited amount toward the parent's time base. Repeated every
 * epoch, the two counters converge to within the link jitter, and the
 * protocol continuously tracks relative clock drift.
 */

#ifndef TSM_SYNC_HAC_ALIGNER_HH
#define TSM_SYNC_HAC_ALIGNER_HH

#include "arch/chip.hh"
#include "common/stats.hh"
#include "net/network.hh"

namespace tsm {

/** Configuration of the alignment control loop. */
struct HacAlignerConfig
{
    /** Maximum HAC adjustment per received update, in cycles. */
    int maxAdjustPerUpdate = 8;

    /** Updates are sent every HAC epoch (the paper: every ~256 cycles). */
    Cycle updatePeriodCycles = kHacPeriodCycles;
};

/**
 * Maintains one parent→child alignment relationship over one link.
 * start() begins periodic updates that run until stop() — drive the
 * event queue with runUntil().
 */
class HacAligner
{
  public:
    /**
     * @param parent Reference time source.
     * @param child Chip whose HAC is steered.
     * @param link Connecting link.
     * @param latency_cycles Characterized one-way latency estimate.
     * @param config Control-loop parameters.
     */
    HacAligner(TspChip &parent, TspChip &child, LinkId link,
               double latency_cycles, HacAlignerConfig config = {});

    ~HacAligner();

    /** Begin periodic updates. */
    void start();

    /** Cease sending updates (pending ones still deliver). */
    void stop() { active_ = false; }

    /** Most recent observed child-vs-parent misalignment in cycles. */
    int lastDelta() const { return lastDelta_; }

    /** Number of updates the child has applied. */
    std::uint64_t updatesApplied() const { return updates_; }

    /** History of |delta| values (for convergence analysis). */
    const Accumulator &deltaMagnitude() const { return deltaMag_; }

    /**
     * True once the last `window` observed deltas were all within
     * `tol` cycles.
     */
    bool converged(int tol = 2, unsigned window = 4) const;

  private:
    void sendUpdate();
    void childHandler(const ArrivedFlit &af);

    TspChip &parent_;
    TspChip &child_;
    LinkId link_;
    unsigned childPort_;
    double latencyCycles_;
    HacAlignerConfig config_;
    bool active_ = false;

    int lastDelta_ = 0;
    unsigned consecutiveSmall_ = 0;
    int convergedTol_ = 2;
    std::uint64_t updates_ = 0;
    std::uint32_t rounds_ = 0; ///< update rounds sent (span sequence)
    Accumulator deltaMag_;
};

} // namespace tsm

#endif // TSM_SYNC_HAC_ALIGNER_HH
