#include "sync/program_alignment.hh"

#include <algorithm>

#include "common/log.hh"

namespace tsm {

AlignmentPlan
AlignmentPlan::build(const Topology &topo, const SyncTree &tree)
{
    AlignmentPlan plan;
    plan.topo_ = &topo;
    plan.tree_ = &tree;
    plan.arrival_.assign(topo.numTsps(), 0);

    // The root "has" the token at epoch 1 (it deskews to the first
    // boundary, then transmits). Each hop adds floor(L/period)+1
    // epochs (paper §3.2).
    plan.arrival_[tree.root()] = 1;
    // Process edges in BFS order (SyncTree stores them that way).
    for (const auto &e : tree.edges()) {
        const Cycle hop =
            Cycle(e.latencyCycles) / kHacPeriodCycles + 1;
        plan.arrival_[e.child] = plan.arrival_[e.parent] + hop;
    }
    plan.startEpoch_ =
        1 + *std::max_element(plan.arrival_.begin(), plan.arrival_.end());
    return plan;
}

void
AlignmentPlan::waitEpochs(Program &p, Cycle n)
{
    for (Cycle i = 0; i < n; ++i) {
        // Step off the boundary, then deskew to the next one.
        p.emitNop(1);
        p.emit(Op::Deskew);
    }
}

Program
AlignmentPlan::assemble(TspId t, const Program &payload) const
{
    TSM_ASSERT(topo_ != nullptr, "plan not built");
    Program p;

    const TreeEdge *up = tree_->parentEdge(t);
    if (up == nullptr) {
        // Root: align with the first epoch boundary.
        p.emit(Op::Deskew);
    } else {
        // Child: poll the parent port each epoch for the sync token.
        const Link &l = topo_->links()[up->link];
        auto &poll = p.emit(Op::PollRecv);
        poll.port = l.portAt(t);
        poll.dst = std::uint8_t(kNumStreams - 1);
        poll.flow = 0; // accept the token regardless of tag
    }

    // Forward the token to each child immediately (sub-epoch cost).
    for (const TreeEdge *down : tree_->childEdges(t)) {
        const Link &l = topo_->links()[down->link];
        auto &tx = p.emit(Op::Transmit);
        tx.port = l.portAt(t);
    }

    // Wait out the remaining epochs so that every chip reaches NOTIFY
    // at the common start epoch.
    TSM_ASSERT(startEpoch_ >= arrival_[t], "start epoch mis-computed");
    waitEpochs(p, startEpoch_ - arrival_[t]);

    // SYNC parks the functional units; NOTIFY restarts them with a
    // fixed, known latency — the shared time reference from which the
    // payload's static schedule is measured.
    p.emit(Op::Sync);
    p.emit(Op::Notify);

    for (const Instr &i : payload.instrs)
        p.instrs.push_back(i);
    return p;
}

} // namespace tsm
