/**
 * @file
 * HAC-based link-latency characterization (paper §3.1, Fig 7(a),
 * Table 2).
 *
 * A TSP transmits its current HAC value to its peer; the peer reflects
 * it; on return the originator compares the reflected value with its
 * free-running HAC. The difference is the round-trip latency modulo
 * the HAC period; halving gives the one-way latency estimate. The
 * procedure repeats until the mean/variance estimates are trusted
 * (the paper uses 100 K iterations per link).
 */

#ifndef TSM_SYNC_LINK_CHARACTERIZER_HH
#define TSM_SYNC_LINK_CHARACTERIZER_HH

#include "arch/chip.hh"
#include "common/stats.hh"
#include "net/network.hh"

namespace tsm {

/**
 * Characterizes one C2C link between two chips. Install, run the
 * event queue, read the statistics. The characterizer borrows both
 * chips' control-flit handlers for the link's ports while active.
 */
class LinkCharacterizer
{
  public:
    /**
     * @param origin The measuring chip.
     * @param peer The reflecting chip (must be the link's other end).
     * @param link The link to characterize.
     */
    LinkCharacterizer(TspChip &origin, TspChip &peer, LinkId link);

    ~LinkCharacterizer();

    /**
     * Launch `iterations` echo exchanges. Probes are issued
     * back-to-back (each new probe triggered by the previous
     * reflection). Run the event queue to completion afterwards.
     */
    void start(unsigned iterations);

    /** True once all requested echoes completed. */
    bool done() const { return remaining_ == 0; }

    /** One-way latency estimates in core cycles. */
    const Accumulator &latencyCycles() const { return stats_; }

  private:
    void sendProbe();
    void originHandler(const ArrivedFlit &af);
    void peerHandler(const ArrivedFlit &af);

    TspChip &origin_;
    TspChip &peer_;
    LinkId link_;
    unsigned originPort_;
    unsigned peerPort_;
    unsigned remaining_ = 0;

    /** Origin's local cycle when the in-flight probe departed. */
    Cycle probeDepartCycle_ = 0;

    /** Nominal round trip used to resolve the mod-252 ambiguity. */
    double nominalRoundTripCycles_;

    Accumulator stats_;
};

} // namespace tsm

#endif // TSM_SYNC_LINK_CHARACTERIZER_HH
