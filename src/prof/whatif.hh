/**
 * @file
 * Causal what-if profiling: exact virtual-speedup experiments over an
 * SSN schedule.
 *
 * The paper's premise — every departure and arrival cycle is decided
 * at compile time — makes counterfactuals *computable*, not merely
 * estimable. "What does the makespan become if link L were 2x
 * faster?" is answered by replaying the schedule's own constraint
 * graph with the perturbed timing: each hop departs at the maximum of
 * its ready time (flow injection, or previous hop's arrival plus the
 * forward pipeline), the previous serialization window on its link
 * direction, and the previous instruction-issue slot on its chip.
 * Because the real scheduler placed every hop at the earliest cycle
 * satisfying exactly these constraints, the recomputation with
 * *unchanged* timing reproduces the schedule cycle-for-cycle — the
 * identity-exactness invariant tests pin — and with perturbed timing
 * it yields the schedule the same routing and resource ordering would
 * have produced on the perturbed machine.
 *
 * The engine supports five perturbation families ("levers"):
 *
 *  - link_latency    one link's propagation delay divided by k
 *  - link_bandwidth  one link's serialization time (and thus its
 *                    reservation window) divided by k
 *  - fu_throughput   every flow sourced at one chip becomes
 *                    injectable k times earlier (the producing
 *                    functional units run k times faster)
 *  - hac_drift       clock drift eliminated: the gap between the
 *                    simulated completion and the schedule's static
 *                    completion that is due to hardware-aligned
 *                    counters drifting (zero on a drift-free run)
 *  - flow_removal    one flow's traffic deleted outright; every
 *                    window and issue slot it held is released
 *
 * A WhatIfCounterfactual is not just a projection: it carries a fully
 * materialized perturbed NetworkSchedule plus the per-link physical
 * timing that justifies it, so runtime/counterfactual.hh can lower it
 * to per-chip programs and *re-simulate* it on a network with the
 * perturbed wire physics. The projected completion and the simulated
 * completion must agree exactly (gap == 0) — the same
 * prediction-vs-simulation muscle as the profiler's gap_cycles, but
 * for machines that were never built.
 *
 * WhatIfCollector folds all of this into the byte-deterministic
 * `tsm-whatif-v1` document behind the --whatif=FILE flag: a ranked
 * table of levers by projected makespan delta, rendered by
 * tools/tsm_whatif and gated by its --check mode.
 */

#ifndef TSM_PROF_WHATIF_HH
#define TSM_PROF_WHATIF_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.hh"
#include "ssn/scheduler.hh"
#include "trace/trace.hh"

namespace tsm {

/** Schema tag stamped into every what-if document. */
inline constexpr const char *kWhatIfSchema = "tsm-whatif-v1";

/** The perturbation families the engine can apply. */
enum class LeverKind : std::uint8_t
{
    LinkLatency,   ///< target = LinkId, propagation / factor
    LinkBandwidth, ///< target = LinkId, serialization / factor
    FuThroughput,  ///< target = TspId, source earliest / factor
    HacDrift,      ///< drift eliminated; schedule untouched
    FlowRemoval,   ///< target = FlowId, traffic deleted
};

/** Stable lever-kind name ("link_latency", ...). */
const char *leverKindName(LeverKind k);

/** One counterfactual perturbation. */
struct Perturbation
{
    LeverKind kind = LeverKind::HacDrift;

    /** LinkId / TspId / FlowId per kind; unused for hac_drift. */
    std::uint32_t target = 0;

    /**
     * Speedup factor k (>= 1 means faster): latency and serialization
     * are divided by k, injection readiness arrives k times earlier.
     * Ignored by hac_drift and flow_removal.
     */
    double factor = 1.0;

    /** Human-readable label ("link 3 bandwidth x2"). */
    std::string label() const;

    /** Stable identity key ("link_bandwidth:3:x2"). */
    std::string key() const;
};

/** Projected effect of one perturbation on the schedule. */
struct WhatIfProjection
{
    Perturbation lever;

    Cycle baseMakespan = 0;
    Cycle projectedMakespan = 0;

    /** baseMakespan - projectedMakespan; positive = speedup. */
    std::int64_t deltaCycles = 0;

    /** Flows whose completion cycle changed (includes a removed flow). */
    std::vector<FlowId> affectedFlows;

    /** Hops whose departure cycle changed. */
    std::uint64_t affectedHops = 0;

    /** Vectors deleted by a flow_removal lever. */
    std::uint32_t removedVectors = 0;
};

/** Perturbed physical timing of one link, for re-simulation. */
struct LinkTimingOverride
{
    LinkId link = kLinkInvalid;
    Tick serializationPs = 0;
    Tick propagationPs = 0;
};

/**
 * A materialized counterfactual: the perturbed schedule, the
 * perturbed transfer set, and the per-link wire timing a Network
 * must be given so the schedule is physically honest.
 */
struct WhatIfCounterfactual
{
    NetworkSchedule schedule;
    std::vector<TensorTransfer> transfers;
    std::vector<LinkTimingOverride> linkTiming;
    WhatIfProjection projection;
};

/**
 * The recomputation core. Holds references to the schedule, topology
 * and transfers — all must outlive the engine (the collector instead
 * computes eagerly and keeps nothing).
 */
class WhatIfEngine
{
  public:
    WhatIfEngine(const NetworkSchedule &sched, const Topology &topo,
                 const std::vector<TensorTransfer> &transfers = {});

    Cycle baseMakespan() const { return sched_->makespan; }

    /** Project one perturbation without materializing the schedule. */
    WhatIfProjection project(const Perturbation &p) const;

    /** Materialize the perturbed schedule for re-simulation. */
    WhatIfCounterfactual rebuild(const Perturbation &p) const;

    /**
     * The standard lever catalog at speedup `factor`: latency and
     * bandwidth per used link, throughput per source chip with a
     * non-zero injection time, removal per flow (when more than one
     * flow exists), and the drift lever. Deterministic order.
     */
    std::vector<Perturbation> enumerateLevers(double factor = 2.0) const;

    /**
     * Verify the identity invariant: recomputing with unchanged
     * timing reproduces every departure and arrival cycle exactly.
     * This is the theorem the projections rest on — any hop the
     * recomputation cannot explain means the engine's constraint
     * graph diverged from the scheduler's, and `*why` names the
     * first such hop.
     */
    bool identityExact(std::string *why = nullptr) const;

  private:
    struct HopNode
    {
        LinkId link = kLinkInvalid;
        TspId from = kTspInvalid;
        Cycle depart = 0;
        Cycle arrive = 0;
        std::uint32_t vec = 0;
        std::uint32_t hop = 0;
        std::int32_t prevInVec = -1; ///< previous hop of this vector
        std::int32_t prevDir = -1;   ///< previous window on (link, dir)
        std::int32_t prevIssue = -1; ///< previous send by this chip
    };

    struct Recompute
    {
        std::vector<Cycle> depart;
        std::vector<Cycle> arrive;
        std::vector<bool> removed;
        Cycle makespan = 0;
    };

    Recompute recompute(const Perturbation &p) const;

    const NetworkSchedule *sched_;
    const Topology *topo_;
    std::vector<TensorTransfer> transfers_;
    std::map<FlowId, Cycle> flowEarliest_;
    std::vector<HopNode> nodes_;       ///< flattened hops
    std::vector<std::int32_t> order_;  ///< indices by (depart, vec, hop)
    std::vector<LinkId> usedLinks_;    ///< ascending, deduplicated
    std::vector<FlowId> flowOrder_;    ///< ascending flow ids
};

/**
 * All levers of the standard catalog, projected and ranked by
 * projected makespan delta (descending), ties broken by kind then
 * target — the order the document and the renderer use.
 */
std::vector<WhatIfProjection> rankedLevers(const WhatIfEngine &engine,
                                           double factor = 2.0);

/**
 * Collects one run's what-if analysis and serializes it as the
 * `tsm-whatif-v1` document. setSchedule() computes everything
 * eagerly — the engine's inputs need not outlive the collector. The
 * sink only records the simulated completion tick so the document
 * can report the observed completion and the hac_drift lever.
 */
class WhatIfCollector
{
  public:
    /** The trace sink to attach to the run's Tracer. */
    TraceSink &sink() { return sink_; }

    void setBench(std::string name) { bench_ = std::move(name); }
    void setSeed(std::uint64_t seed);

    /** Lever speedup factor for the standard catalog (default 2). */
    void setLeverFactor(double factor) { factor_ = factor; }

    /** Cap on serialized levers (default 64; all are still ranked). */
    void setMaxLevers(unsigned n) { maxLevers_ = n; }

    /** Run the engine over this run's schedule. Call before finish. */
    void setSchedule(const NetworkSchedule &sched, const Topology &topo,
                     const std::vector<TensorTransfer> &transfers = {});

    /** Build the document. Call after the run (or without one). */
    Json report() const;

  private:
    /** Minimal sink: the last scheduled-receive tick of the run. */
    class CompletionSink : public TraceSink
    {
      public:
        unsigned
        categoryMask() const override
        {
            return traceCatBit(TraceCat::Ssn);
        }

        void
        event(const TraceEvent &ev) override
        {
            if (ev.name == std::string("recv") && ev.tick > last_)
                last_ = ev.tick;
        }

        Tick last() const { return last_; }

      private:
        Tick last_ = 0;
    };

    struct LeverRecord
    {
        Perturbation lever;
        Cycle projectedMakespan = 0;
        std::int64_t deltaCycles = 0;
        std::vector<FlowId> affectedFlows;
        std::uint64_t affectedFlowsTotal = 0;
        std::uint64_t affectedHops = 0;
        std::uint32_t removedVectors = 0;
        bool onCriticalPath = false;
    };

    CompletionSink sink_;
    std::string bench_ = "unknown";
    std::uint64_t seed_ = 0;
    bool hasSeed_ = false;
    double factor_ = 2.0;
    unsigned maxLevers_ = 64;

    bool hasSchedule_ = false;
    Cycle makespan_ = 0;
    Cycle predictedCompletion_ = 0;
    Cycle staticCompletion_ = 0;
    bool lowered_ = false;
    std::uint64_t hops_ = 0;
    std::uint64_t vectors_ = 0;
    std::uint64_t flows_ = 0;
    std::uint64_t linksUsed_ = 0;
    std::uint64_t contendedHops_ = 0;
    std::uint64_t criticalPathHops_ = 0;
    std::vector<LeverRecord> levers_;
};

/**
 * The static completion cycle of a schedule: the issue cycle of the
 * last scheduled Recv after lowering to per-chip programs. This is
 * what a drift-free simulation reproduces tick-for-tick, including
 * receives the lowerer slid past colliding instructions — the
 * schedule-level makespan plus the receive margin plus any slide.
 * Returns false (capacity, slide overflow) with a diagnosis in
 * `*error` when the schedule cannot be lowered.
 */
bool staticCompletionCycles(const NetworkSchedule &sched,
                            const Topology &topo, Cycle *out,
                            std::string *error = nullptr);

/**
 * Render a `tsm-whatif-v1` document: run header, base line, and the
 * top `top_k` levers of the ranked table.
 */
std::string renderWhatIfSummary(const Json &doc, unsigned top_k = 10);

/**
 * Structural invariants of a `tsm-whatif-v1` document: schema and
 * base fields present, ranks contiguous from 1, every lever's delta
 * consistent with base and projected makespan, no negative delta on
 * a speedup lever. Returns false with a diagnosis in `*why`.
 */
bool checkWhatIfInvariants(const Json &doc, std::string *why = nullptr);

} // namespace tsm

#endif // TSM_PROF_WHATIF_HH
