#include "prof/ssn_analysis.hh"

#include <algorithm>
#include <unordered_map>

#include "common/log.hh"

namespace tsm {

const char *
critEdgeName(CritEdge e)
{
    switch (e) {
      case CritEdge::Start: return "start";
      case CritEdge::Pipeline: return "pipeline";
      case CritEdge::Contention: return "contention";
    }
    return "?";
}

namespace {

/**
 * Serialization window per vector per link direction, in cycles. Must
 * match the ReservationLedger default the scheduler builds with (and
 * the hard-coded window in validateSchedule).
 */
constexpr Cycle kWindowCycles = 24;

/** Position of one hop in the schedule, sortable by departure. */
struct HopRef
{
    Cycle depart;
    std::uint32_t vec;
    std::uint32_t hop;

    bool operator<(const HopRef &o) const { return depart < o.depart; }
};

/** Latest entry departing strictly before `cycle`, or nullptr. */
const HopRef *
latestBefore(const std::vector<HopRef> &sorted, Cycle cycle)
{
    auto it = std::lower_bound(sorted.begin(), sorted.end(),
                               HopRef{cycle, 0, 0});
    if (it == sorted.begin())
        return nullptr;
    return &*std::prev(it);
}

} // namespace

SsnAnalysis
analyzeSchedule(const NetworkSchedule &sched, const Topology &topo,
                const std::vector<TensorTransfer> &transfers)
{
    SsnAnalysis out;
    out.makespan = sched.makespan;
    if (sched.vectors.empty())
        return out;

    std::unordered_map<FlowId, Cycle> earliestOf;
    for (const TensorTransfer &t : transfers)
        earliestOf[t.flow] = t.earliest;
    auto flowEarliest = [&](FlowId f) -> Cycle {
        auto it = earliestOf.find(f);
        return it == earliestOf.end() ? Cycle(0) : it->second;
    };

    // Index every hop by link direction and by transmitting chip so
    // the walk can find the vector occupying the preceding
    // serialization window / issue slot.
    std::unordered_map<std::uint64_t, std::vector<HopRef>> byDir;
    std::unordered_map<TspId, std::vector<HopRef>> byChip;
    for (std::uint32_t v = 0; v < sched.vectors.size(); ++v) {
        const ScheduledVector &sv = sched.vectors[v];
        for (std::uint32_t h = 0; h < sv.hops.size(); ++h) {
            const ScheduledHop &hop = sv.hops[h];
            const Link &link = topo.links()[hop.link];
            const std::uint64_t dir = std::uint64_t(hop.link) * 2 +
                                      (link.a == hop.from ? 0 : 1);
            byDir[dir].push_back({hop.depart, v, h});
            byChip[hop.from].push_back({hop.depart, v, h});
        }
    }
    for (auto &[dir, refs] : byDir)
        std::sort(refs.begin(), refs.end());
    for (auto &[chip, refs] : byChip)
        std::sort(refs.begin(), refs.end());

    // Earliest cycle hop `h` of `sv` could have departed, ignoring
    // link/issue-slot contention.
    auto minFeasible = [&](const ScheduledVector &sv, std::size_t h) {
        if (h == 0)
            return flowEarliest(sv.flow);
        const Link &prev = topo.links()[sv.hops[h - 1].link];
        (void)prev;
        return sv.hops[h - 1].arrive + forwardCycles();
    };

    // Whole-schedule slack accounting.
    for (const ScheduledVector &sv : sched.vectors) {
        for (std::size_t h = 0; h < sv.hops.size(); ++h) {
            const Cycle feasible = minFeasible(sv, h);
            TSM_ASSERT(sv.hops[h].depart >= feasible,
                       "schedule violates its own feasibility bound");
            const Cycle wait = sv.hops[h].depart - feasible;
            out.hopSlack.add(double(wait));
            ++out.hopsTotal;
            if (wait > 0) {
                ++out.contendedHops;
                out.contentionFree = false;
            }
        }
    }

    // Critical-path walk: start from the makespan-defining arrival and
    // follow the binding constraint backwards.
    std::uint32_t vi = 0;
    for (std::uint32_t v = 0; v < sched.vectors.size(); ++v) {
        if (sched.vectors[v].arrival() == sched.makespan) {
            vi = v;
            break;
        }
    }
    std::uint32_t hi = std::uint32_t(sched.vectors[vi].hops.size()) - 1;

    std::vector<CritHop> path; // built back-to-front
    for (std::uint64_t guard = 0; guard <= out.hopsTotal; ++guard) {
        const ScheduledVector &sv = sched.vectors[vi];
        const ScheduledHop &hop = sv.hops[hi];
        const Link &link = topo.links()[hop.link];
        const Cycle feasible = minFeasible(sv, hi);
        const Cycle wait = hop.depart - feasible;

        CritHop ch;
        ch.link = hop.link;
        ch.from = hop.from;
        ch.flow = sv.flow;
        ch.seq = sv.seq;
        ch.depart = hop.depart;
        ch.arrive = hop.arrive;
        ch.wait = wait;
        ch.edge = wait > 0 ? CritEdge::Contention
                  : hi > 0 ? CritEdge::Pipeline
                           : CritEdge::Start;

        // Find the predecessor the constraint points at.
        bool jumped = false;
        if (wait > 0) {
            // Prefer the vector whose serialization window this hop
            // waited behind on the same link direction.
            const std::uint64_t dir = std::uint64_t(hop.link) * 2 +
                                      (link.a == hop.from ? 0 : 1);
            if (const HopRef *blk = latestBefore(byDir[dir], hop.depart);
                blk && blk->depart + kWindowCycles > feasible &&
                !(blk->vec == vi && blk->hop == hi)) {
                vi = blk->vec;
                hi = blk->hop;
                jumped = true;
            } else if (const HopRef *slot =
                           latestBefore(byChip[hop.from], hop.depart);
                       !jumped && slot && slot->depart + 1 == hop.depart &&
                       !(slot->vec == vi && slot->hop == hi)) {
                // Otherwise the chip's one-send-per-cycle issue slot.
                vi = slot->vec;
                hi = slot->hop;
                jumped = true;
            }
        }
        path.push_back(ch);
        if (!jumped) {
            if (hi == 0)
                break; // reached an injection point
            --hi;      // forward-pipeline dependence on the prior hop
        }
    }
    std::reverse(path.begin(), path.end());

    // Decompose the makespan by telescoping departures along the path.
    // Between consecutive path hops of the *same vector* the gap is
    // flight + forward + wait; between a hop and the blocker it jumped
    // to, the whole gap is contention wait.
    out.startCycle = path.front().depart - path.front().wait;
    out.waitCyclesTotal = path.front().wait;
    for (std::size_t i = 1; i < path.size(); ++i) {
        const CritHop &prev = path[i - 1];
        const CritHop &cur = path[i];
        const Cycle delta = cur.depart - prev.depart;
        const bool chained =
            prev.flow == cur.flow && prev.seq == cur.seq;
        if (chained) {
            const Cycle flight = prev.arrive - prev.depart;
            out.flightCyclesTotal += flight;
            out.forwardCyclesTotal += forwardCycles();
            out.waitCyclesTotal += delta - flight - forwardCycles();
        } else {
            out.waitCyclesTotal += delta;
        }
    }
    out.flightCyclesTotal += path.back().arrive - path.back().depart;

    out.criticalPath = std::move(path);
    out.criticalPathCycles = out.criticalPath.back().arrive;
    TSM_ASSERT(out.criticalPathCycles == out.makespan,
               "critical path must end at the makespan");
    TSM_ASSERT(out.startCycle + out.flightCyclesTotal +
                       out.forwardCyclesTotal + out.waitCyclesTotal ==
                   out.makespan,
               "makespan decomposition must be exact");

    out.predictedCompletionCycles = out.makespan + kRxMarginCycles;
    return out;
}

} // namespace tsm
