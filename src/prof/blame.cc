#include "prof/blame.hh"

#include <algorithm>
#include <set>
#include <string_view>

#include "common/format.hh"
#include "trace/span.hh"

namespace tsm {

namespace {

/** Transfers serialized into the document (the accounts count all). */
constexpr std::size_t kMaxBlameTransfers = 512;

/** Flow pairs / chains serialized, largest first. */
constexpr std::size_t kMaxBlamePairs = 64;
constexpr std::size_t kMaxBlameChains = 8;
constexpr std::size_t kMaxChainDepth = 8;
constexpr std::size_t kMaxBlockedBy = 4;

Json
sharesJson(const WaitShares &shares)
{
    Json flows = Json::object();
    for (const auto &[flow, ps] : shares.flowPs)
        flows.set(format("{}", flow), std::uint64_t(ps));
    Json out = Json::object();
    out.set("flows", std::move(flows));
    out.set("local_ps", std::uint64_t(shares.localPs));
    out.set("margin_ps", std::uint64_t(shares.marginPs));
    return out;
}

/** Shares of one document entry summed back up (for exactness). */
std::int64_t
sharesSum(const Json &shares)
{
    std::int64_t total =
        shares["local_ps"].integer() + shares["margin_ps"].integer();
    for (const auto &[flow, ps] : shares["flows"].members())
        total += ps.integer();
    return total;
}

} // namespace

void
WaitShares::accumulate(const WaitShares &other)
{
    for (const auto &[flow, ps] : other.flowPs)
        flowPs[flow] += ps;
    for (const auto &[vec, ps] : other.vectorPs)
        vectorPs[vec] += ps;
    localPs += other.localPs;
    marginPs += other.marginPs;
}

void
BlameSink::event(const TraceEvent &ev)
{
    switch (ev.cat) {
      case TraceCat::Chip:
        chipEvent(ev);
        break;
      case TraceCat::Net:
        netEvent(ev);
        break;
      case TraceCat::Ssn:
        ssnEvent(ev);
        break;
      default:
        break;
    }
}

void
BlameSink::chipEvent(const TraceEvent &ev)
{
    const TspId chip = ev.actor;
    auto &timeline = occupancy_[chip];
    // Instructions issue in cycle order per chip, so only the latest
    // interval can still be open; clip it at the new issue point (a
    // modeled duration never outlives the next instruction's claim on
    // the issue slot — the same rule ProfilerSink::charge applies).
    if (!timeline.empty() && timeline.back().end > ev.tick)
        timeline.back().end = ev.tick;
    if (std::string_view(ev.name) == "halt")
        return;

    Occupancy occ{ev.tick, ev.tick + ev.dur, kFlowInvalid, 0, false};
    PendingTag &tag = pendingTag_[chip];
    if (tag.valid && tag.tick == ev.tick) {
        occ.flow = tag.flow;
        occ.seq = tag.seq;
        occ.tagged = true;
    }
    tag.valid = false;
    timeline.push_back(occ);
}

void
BlameSink::netEvent(const TraceEvent &ev)
{
    if (std::string_view(ev.name) != "rx")
        return;
    // Mirror the profiler's pairing exactly: data flits queue here
    // until their consuming Recv.
    const FlowId flow = FlowId(ev.a);
    if (flow != kFlowHacExchange && flow != kFlowSyncToken &&
        flow != kFlowInvalid) {
        inFlight_[{flow, std::uint32_t(ev.b)}].push_back(
            {ev.tick, LinkId(ev.actor)});
    }
}

void
BlameSink::ssnEvent(const TraceEvent &ev)
{
    const std::string_view name(ev.name);
    const FlowId flow = FlowId(ev.a);
    const std::uint32_t seq = std::uint32_t(ev.b);

    if (name == "span_open") {
        TransferBlame &tb = transfers_[ev.span];
        tb.flow = FlowId(ev.a);
        tb.seq = std::uint32_t(ev.b);
        tb.src = ev.actor;
        return;
    }
    if (name == "span_close") {
        auto it = transfers_.find(ev.span);
        if (it != transfers_.end()) {
            TransferBlame &tb = it->second;
            tb.dst = ev.actor;
            const BlamedVector key{tb.flow, tb.seq};
            if (auto w = lastRecvWaitPs_.find(key);
                w != lastRecvWaitPs_.end())
                tb.waitPs = w->second;
            if (auto s = lastRecv_.find(key); s != lastRecv_.end())
                tb.shares = s->second;
            tb.closed = true;
        }
        return;
    }
    if (name != "send" && name != "recv" && name != "corrupt")
        return;

    // This Ssn event precedes its instruction's Chip event at the
    // same (actor, tick): remember the flow it serves so the
    // occupancy interval gets tagged.
    if (isDataFlow(flow)) {
        pendingTag_[ev.actor] = {ev.tick, flow, seq, true};
    }
    if (name == "send")
        return;

    // Consuming Recv: pair with the oldest matching arrival and
    // decompose the queueing window against this chip's occupancy.
    auto it = inFlight_.find({flow, seq});
    if (it == inFlight_.end() || it->second.empty())
        return;
    const auto [arrivedAt, link] = it->second.front();
    it->second.erase(it->second.begin());
    if (it->second.empty())
        inFlight_.erase(it);

    const Tick delay = ev.tick >= arrivedAt ? ev.tick - arrivedAt : 0;
    WaitShares shares = decompose(ev.actor, ev.tick - delay, ev.tick);

    LinkBlame &lb = links_[link];
    ++lb.recvs;
    lb.waitPs += delay;
    lb.shares.accumulate(shares);
    for (const auto &[blocker, ps] : shares.flowPs)
        flowPairs_[flow][blocker] += ps;
    grid_.add(link, ev.tick - delay, ev.tick);
    ++recvs_;
    totalWaitPs_ += delay;

    lastRecvWaitPs_[{flow, seq}] = delay;
    lastRecv_[{flow, seq}] = std::move(shares);
}

WaitShares
BlameSink::decompose(TspId chip, Tick from, Tick to) const
{
    WaitShares out;
    if (to <= from)
        return out;
    Tick covered = 0;
    if (auto it = occupancy_.find(chip); it != occupancy_.end()) {
        const auto &timeline = it->second;
        // Intervals are disjoint and ordered, so both starts and ends
        // are non-decreasing: binary-search the first one that may
        // reach into [from, to).
        auto at = std::lower_bound(
            timeline.begin(), timeline.end(), from,
            [](const Occupancy &o, Tick t) { return o.end <= t; });
        for (; at != timeline.end() && at->start < to; ++at) {
            const Tick lo = std::max(from, at->start);
            const Tick hi = std::min(to, at->end);
            if (hi <= lo)
                continue;
            const Tick share = hi - lo;
            covered += share;
            if (at->tagged) {
                out.flowPs[at->flow] += share;
                out.vectorPs[{at->flow, at->seq}] += share;
            } else {
                out.localPs += share;
            }
        }
    }
    out.marginPs = (to - from) - covered;
    return out;
}

void
BlameCollector::setSeed(std::uint64_t seed)
{
    seed_ = seed;
    hasSeed_ = true;
}

void
BlameCollector::setSchedule(const NetworkSchedule &sched,
                            const Topology &topo)
{
    (void)topo;
    const ScheduleBlame &blame = sched.blame;
    Json doc = Json::object();
    doc.set("total_delay_cycles",
            std::uint64_t(blame.totalDelayCycles));
    doc.set("issue_delay_cycles",
            std::uint64_t(blame.issueDelayCycles));

    struct Pair
    {
        FlowId blocked;
        FlowId blocker;
        Cycle cycles;
    };
    std::vector<Pair> pairs;
    for (const auto &[blocked, row] : blame.flowPairCycles)
        for (const auto &[blocker, cycles] : row)
            pairs.push_back({blocked, blocker, cycles});
    std::stable_sort(pairs.begin(), pairs.end(),
                     [](const Pair &a, const Pair &b) {
                         return a.cycles > b.cycles;
                     });
    if (pairs.size() > kMaxBlamePairs)
        pairs.resize(kMaxBlamePairs);
    Json flowPairs = Json::array();
    for (const Pair &p : pairs) {
        Json entry = Json::object();
        entry.set("blocked", std::uint64_t(p.blocked));
        entry.set("blocker", std::uint64_t(p.blocker));
        entry.set("cycles", std::uint64_t(p.cycles));
        flowPairs.push(std::move(entry));
    }
    doc.set("flow_pairs", std::move(flowPairs));

    Json links = Json::array();
    for (const auto &[link, row] : blame.linkFlowCycles) {
        Json flows = Json::object();
        for (const auto &[flow, cycles] : row)
            flows.set(format("{}", flow), std::uint64_t(cycles));
        Json entry = Json::object();
        entry.set("id", std::uint64_t(link));
        entry.set("flows", std::move(flows));
        links.push(std::move(entry));
    }
    doc.set("links", std::move(links));

    Json delays = Json::array();
    for (const auto &[flow, cycles] : blame.flowDelayCycles) {
        Json entry = Json::object();
        entry.set("flow", std::uint64_t(flow));
        entry.set("cycles", std::uint64_t(cycles));
        delays.push(std::move(entry));
    }
    doc.set("flow_delay", std::move(delays));
    schedule_ = std::move(doc);
}

Json
BlameCollector::report() const
{
    Json doc = Json::object();
    doc.set("schema", kBlameSchema);
    doc.set("bench", bench_);
    if (hasSeed_)
        doc.set("seed", seed_);
    doc.set("source", source_);

    // Totals over every paired recv, all hops.
    WaitShares all;
    for (const auto &[link, lb] : sink_.links())
        all.accumulate(lb.shares);
    Tick blamedPs = 0;
    for (const auto &[flow, ps] : all.flowPs)
        blamedPs += ps;
    Json totals = Json::object();
    totals.set("recvs", sink_.recvs());
    totals.set("wait_ps", std::uint64_t(sink_.totalWaitPs()));
    totals.set("blamed_ps", std::uint64_t(blamedPs));
    totals.set("local_ps", std::uint64_t(all.localPs));
    totals.set("margin_ps", std::uint64_t(all.marginPs));
    doc.set("totals", std::move(totals));

    // Per-transfer breakdowns: shares sum exactly to wait_ps.
    Json transfers = Json::array();
    std::size_t closedCount = 0;
    Tick closedWaitPs = 0;
    for (const auto &[span, tb] : sink_.transfers()) {
        if (!tb.closed)
            continue;
        ++closedCount;
        closedWaitPs += tb.waitPs;
        if (transfers.size() >= kMaxBlameTransfers)
            continue;
        Json t = Json::object();
        t.set("flow", std::uint64_t(tb.flow));
        t.set("seq", std::uint64_t(tb.seq));
        t.set("src", std::uint64_t(tb.src));
        t.set("dst", std::uint64_t(tb.dst));
        t.set("wait_ps", std::uint64_t(tb.waitPs));
        t.set("shares", sharesJson(tb.shares));

        struct Blocker
        {
            BlamedVector vec;
            Tick ps;
        };
        std::vector<Blocker> blockers;
        for (const auto &[vec, ps] : tb.shares.vectorPs)
            blockers.push_back({vec, ps});
        std::stable_sort(blockers.begin(), blockers.end(),
                         [](const Blocker &a, const Blocker &b) {
                             return a.ps > b.ps;
                         });
        if (blockers.size() > kMaxBlockedBy)
            blockers.resize(kMaxBlockedBy);
        Json blockedBy = Json::array();
        for (const Blocker &b : blockers) {
            Json entry = Json::object();
            entry.set("flow", std::uint64_t(b.vec.first));
            entry.set("seq", std::uint64_t(b.vec.second));
            entry.set("ps", std::uint64_t(b.ps));
            blockedBy.push(std::move(entry));
        }
        t.set("blocked_by", std::move(blockedBy));
        transfers.push(std::move(t));
    }
    doc.set("transfers", std::move(transfers));

    Json tsum = Json::object();
    tsum.set("count", std::uint64_t(closedCount));
    tsum.set("wait_ps", std::uint64_t(closedWaitPs));
    doc.set("transfers_summary", std::move(tsum));

    // Runtime flow x flow blame matrix, largest pairs first.
    struct Pair
    {
        FlowId blocked;
        FlowId blocker;
        Tick ps;
    };
    std::vector<Pair> pairs;
    for (const auto &[blocked, row] : sink_.flowPairs())
        for (const auto &[blocker, ps] : row)
            pairs.push_back({blocked, blocker, ps});
    std::stable_sort(pairs.begin(), pairs.end(),
                     [](const Pair &a, const Pair &b) {
                         return a.ps > b.ps;
                     });
    if (pairs.size() > kMaxBlamePairs)
        pairs.resize(kMaxBlamePairs);
    Json flowPairs = Json::array();
    for (const Pair &p : pairs) {
        Json entry = Json::object();
        entry.set("blocked", std::uint64_t(p.blocked));
        entry.set("blocker", std::uint64_t(p.blocker));
        entry.set("ps", std::uint64_t(p.ps));
        flowPairs.push(std::move(entry));
    }
    doc.set("flow_pairs", std::move(flowPairs));

    // Per-link accounts; wait_ps reconciles with the profiler's
    // queue-delay histogram sums.
    Json links = Json::array();
    for (const auto &[link, lb] : sink_.links()) {
        Json entry = Json::object();
        entry.set("id", std::uint64_t(link));
        entry.set("recvs", lb.recvs);
        entry.set("wait_ps", std::uint64_t(lb.waitPs));
        entry.set("shares", sharesJson(lb.shares));
        links.push(std::move(entry));
    }
    doc.set("links", std::move(links));

    // Blocked-by chains: from the most-delayed transfers, follow each
    // transfer's dominant blocking vector through span identity.
    struct Head
    {
        SpanId span;
        Tick waitPs;
    };
    std::vector<Head> heads;
    for (const auto &[span, tb] : sink_.transfers())
        if (tb.closed && tb.waitPs > 0)
            heads.push_back({span, tb.waitPs});
    std::stable_sort(heads.begin(), heads.end(),
                     [](const Head &a, const Head &b) {
                         return a.waitPs > b.waitPs;
                     });
    if (heads.size() > kMaxBlameChains)
        heads.resize(kMaxBlameChains);
    Json chains = Json::array();
    for (const Head &head : heads) {
        Json nodes = Json::array();
        std::set<SpanId> visited;
        SpanId at = head.span;
        Tick via = 0;
        for (std::size_t depth = 0; depth < kMaxChainDepth; ++depth) {
            auto it = sink_.transfers().find(at);
            if (it == sink_.transfers().end() || !visited.insert(at).second)
                break;
            const TransferBlame &tb = it->second;
            Json node = Json::object();
            node.set("flow", std::uint64_t(tb.flow));
            node.set("seq", std::uint64_t(tb.seq));
            node.set("wait_ps", std::uint64_t(tb.waitPs));
            if (depth > 0)
                node.set("via_ps", std::uint64_t(via));
            nodes.push(std::move(node));
            // Dominant blocker: largest vector share, earliest key on
            // ties (map order makes this deterministic).
            const BlamedVector *best = nullptr;
            Tick bestPs = 0;
            for (const auto &[vec, ps] : tb.shares.vectorPs)
                if (ps > bestPs) {
                    best = &vec;
                    bestPs = ps;
                }
            if (!best)
                break;
            at = transferSpan(best->first, best->second);
            via = bestPs;
        }
        if (nodes.size() > 1)
            chains.push(std::move(nodes));
    }
    doc.set("chains", std::move(chains));

    if (schedule_)
        doc.set("schedule", *schedule_);
    doc.set("windows", sink_.grid().toJson());
    return doc;
}

std::string
renderBlameSummary(const Json &blame, unsigned top_k)
{
    const std::string bench =
        blame["bench"].isNull() ? "?" : blame["bench"].str();
    std::string out = format("== tsm blame: {} ==\n", bench);
    if (blame.has("seed"))
        out += format("seed: {}, source: {}\n", blame["seed"].integer(),
                      blame["source"].str());
    const Json &totals = blame["totals"];
    const double waitPs = totals["wait_ps"].number();
    auto pct = [waitPs](double ps) {
        return waitPs > 0 ? 100.0 * ps / waitPs : 0.0;
    };
    out += format("wait decomposed: {} ps over {} recvs — flows {} ps "
                  "({} %), local {} ps ({} %), margin {} ps ({} %)\n",
                  totals["wait_ps"].integer(), totals["recvs"].integer(),
                  totals["blamed_ps"].integer(),
                  format("{}", pct(totals["blamed_ps"].number())),
                  totals["local_ps"].integer(),
                  format("{}", pct(totals["local_ps"].number())),
                  totals["margin_ps"].integer(),
                  format("{}", pct(totals["margin_ps"].number())));

    out += "\ntop contended links (by decomposed wait):\n";
    struct LinkRow
    {
        std::int64_t id;
        std::int64_t waitPs;
        std::int64_t recvs;
    };
    std::vector<LinkRow> rows;
    for (const Json &link : blame["links"].items())
        rows.push_back({link["id"].integer(), link["wait_ps"].integer(),
                        link["recvs"].integer()});
    std::stable_sort(rows.begin(), rows.end(),
                     [](const LinkRow &a, const LinkRow &b) {
                         return a.waitPs > b.waitPs;
                     });
    for (std::size_t r = 0; r < std::min<std::size_t>(rows.size(), top_k);
         ++r)
        out += format("  link {}: {} ps over {} recvs\n", rows[r].id,
                      rows[r].waitPs, rows[r].recvs);

    const Json &pairs = blame["flow_pairs"];
    if (pairs.size() > 0) {
        out += "\ntop blamed flow pairs (runtime, blocked <- blocker):\n";
        for (std::size_t i = 0;
             i < std::min<std::size_t>(pairs.size(), top_k); ++i) {
            const Json &p = pairs.at(i);
            out += format("  flow {} <- flow {}: {} ps\n",
                          p["blocked"].integer(), p["blocker"].integer(),
                          p["ps"].integer());
        }
    }

    const Json &sched = blame["schedule"];
    if (!sched.isNull()) {
        out += format("\nschedule (compile-time) blame: {} delay cycles "
                      "({} issue-limited):\n",
                      sched["total_delay_cycles"].integer(),
                      sched["issue_delay_cycles"].integer());
        const Json &spairs = sched["flow_pairs"];
        for (std::size_t i = 0;
             i < std::min<std::size_t>(spairs.size(), top_k); ++i) {
            const Json &p = spairs.at(i);
            out += format("  flow {} <- flow {}: {} cycles\n",
                          p["blocked"].integer(), p["blocker"].integer(),
                          p["cycles"].integer());
        }
    }

    const Json &chains = blame["chains"];
    if (chains.size() > 0) {
        out += "\nblocked-by chains (worst waits first):\n";
        for (std::size_t i = 0;
             i < std::min<std::size_t>(chains.size(), top_k); ++i) {
            std::string line = "  ";
            const Json &nodes = chains.at(i);
            for (std::size_t n = 0; n < nodes.size(); ++n) {
                const Json &node = nodes.at(n);
                if (n == 0)
                    line += format("flow {}:{} (wait {} ps)",
                                   node["flow"].integer(),
                                   node["seq"].integer(),
                                   node["wait_ps"].integer());
                else
                    line += format(" <- flow {}:{} ({} ps)",
                                   node["flow"].integer(),
                                   node["seq"].integer(),
                                   node["via_ps"].integer());
            }
            out += line + "\n";
        }
    }
    return out;
}

bool
checkBlameExactness(const Json &blame, std::string *why)
{
    bool ok = true;
    auto fail = [&ok, why](std::string line) {
        ok = false;
        if (why) {
            *why += line;
            *why += '\n';
        }
    };
    if (blame["schema"].kind() != Json::Kind::String ||
        blame["schema"].str() != kBlameSchema) {
        fail("not a tsm-blame-v1 document");
        return false;
    }
    if (blame["transfers"].kind() != Json::Kind::Array ||
        blame["links"].kind() != Json::Kind::Array ||
        blame["windows"]["links"].kind() != Json::Kind::Array) {
        fail("transfers/links/windows sections missing or malformed");
        return false;
    }

    for (const Json &t : blame["transfers"].items()) {
        const std::int64_t wait = t["wait_ps"].integer();
        const std::int64_t sum = sharesSum(t["shares"]);
        if (sum != wait)
            fail(format("transfer flow {} seq {}: shares sum {} != "
                        "wait_ps {}",
                        t["flow"].integer(), t["seq"].integer(), sum,
                        wait));
    }

    std::map<std::int64_t, std::int64_t> linkWait;
    std::int64_t totalWait = 0;
    for (const Json &link : blame["links"].items()) {
        const std::int64_t wait = link["wait_ps"].integer();
        const std::int64_t sum = sharesSum(link["shares"]);
        if (sum != wait)
            fail(format("link {}: shares sum {} != wait_ps {}",
                        link["id"].integer(), sum, wait));
        linkWait[link["id"].integer()] = wait;
        totalWait += wait;
    }
    if (totalWait != blame["totals"]["wait_ps"].integer())
        fail(format("links wait total {} != totals.wait_ps {}", totalWait,
                    blame["totals"]["wait_ps"].integer()));

    for (const Json &link : blame["windows"]["links"].items()) {
        std::int64_t cells = 0;
        for (const Json &c : link["cells"].items())
            cells += c.integer();
        auto it = linkWait.find(link["id"].integer());
        if (it == linkWait.end())
            fail(format("windows name link {} absent from accounts",
                        link["id"].integer()));
        else if (cells != it->second)
            fail(format("link {}: windowed cells sum {} != wait_ps {}",
                        link["id"].integer(), cells, it->second));
    }
    return ok;
}

} // namespace tsm
