/**
 * @file
 * Static analysis of an SSN schedule: critical path, per-hop slack,
 * and the time decomposition of the makespan.
 *
 * The paper's core claim is that performance of a software-scheduled
 * network is a *statically analyzable* property: the schedule itself
 * contains every departure and arrival cycle, so "where did the cycles
 * go" is answerable before the simulator runs a single event. This
 * analyzer walks the schedule backwards from the makespan-defining
 * arrival, following the binding constraint at each step — the
 * forward-pipeline dependence on the previous hop, or the contention
 * edge to the vector occupying the link's previous serialization
 * window — and decomposes the end-to-end time into wire flight,
 * forward-pipeline overhead, contention wait and injection start.
 *
 * The profiler (prof/profiler.hh) pairs this static prediction with
 * the simulated timeline; on a drift-free run the two must agree
 * exactly, which tests/prof/ssn_analysis_test.cc pins.
 */

#ifndef TSM_PROF_SSN_ANALYSIS_HH
#define TSM_PROF_SSN_ANALYSIS_HH

#include <vector>

#include "common/stats.hh"
#include "ssn/scheduler.hh"

namespace tsm {

/** Why a critical-path hop departed when it did. */
enum class CritEdge : std::uint8_t
{
    Start,      ///< first constraint: the flow's injection time
    Pipeline,   ///< forward-pipeline dependence on the previous hop
    Contention, ///< waited for a link window / issue slot to free up
};

/** Short name of a critical edge kind ("start", "pipeline", ...). */
const char *critEdgeName(CritEdge e);

/** One hop on the schedule's critical path (chronological order). */
struct CritHop
{
    LinkId link = kLinkInvalid;
    TspId from = kTspInvalid;
    FlowId flow = kFlowInvalid;
    std::uint32_t seq = 0;
    Cycle depart = 0;
    Cycle arrive = 0;

    /** Cycles this hop waited beyond its earliest feasible departure. */
    Cycle wait = 0;

    /** The constraint that set this hop's departure cycle. */
    CritEdge edge = CritEdge::Start;
};

/** Full static analysis of one NetworkSchedule. */
struct SsnAnalysis
{
    /** Cycle by which every vector has arrived (== schedule makespan). */
    Cycle makespan = 0;

    /**
     * Critical path length in cycles: the arrival cycle of the chain's
     * final hop. Always equals `makespan` — the equality is an
     * internal consistency check, not an assumption.
     */
    Cycle criticalPathCycles = 0;

    /** The binding chain, source injection to final arrival. */
    std::vector<CritHop> criticalPath;

    /// @name Makespan decomposition along the critical path
    /// @{

    /**
     * Earliest feasible injection cycle of the first critical hop —
     * its flow's injection constraint. Any gap between this and the
     * hop's actual departure is counted in waitCyclesTotal, so
     * startCycle + flight + forward + wait == makespan exactly.
     */
    Cycle startCycle = 0;

    /** Cycles spent on the wire (serialization + propagation). */
    Cycle flightCyclesTotal = 0;

    /** Cycles in intermediate-hop forward pipelines. */
    Cycle forwardCyclesTotal = 0;

    /** Cycles waiting on contention (link windows, issue slots). */
    Cycle waitCyclesTotal = 0;
    /// @}

    /// @name Whole-schedule slack accounting (every hop, not just
    /// the critical path)
    /// @{

    /** Departure slack per hop, in cycles beyond earliest feasible. */
    Accumulator hopSlack;

    std::uint64_t hopsTotal = 0;

    /** Hops that waited at least one cycle. */
    std::uint64_t contendedHops = 0;

    /** True iff no hop anywhere in the schedule waited. */
    bool contentionFree = true;
    /// @}

    /**
     * Cycle at which the final scheduled Recv issues
     * (makespan + kRxMarginCycles) — what a drift-free simulation of
     * the lowered programs must reproduce exactly.
     */
    Cycle predictedCompletionCycles = 0;
};

/**
 * Analyze `sched` against `topo`. `transfers`, when provided, supplies
 * each flow's earliest injection cycle so source-side waits can be
 * separated from injection constraints; without it flows are assumed
 * injectable at cycle 0.
 */
SsnAnalysis analyzeSchedule(const NetworkSchedule &sched,
                            const Topology &topo,
                            const std::vector<TensorTransfer> &transfers = {});

} // namespace tsm

#endif // TSM_PROF_SSN_ANALYSIS_HH
