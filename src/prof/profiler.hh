/**
 * @file
 * The attribution profiler: a TraceSink that folds the PR-1 trace
 * stream into accounts that *explain* where cycles went.
 *
 *  - Per chip, per functional unit (MXM/VXM/SXM/MEM): busy, stall and
 *    idle cycles that always sum to the chip's observed span. Each
 *    instruction-issue event charges its occupancy to its unit's
 *    class (arch/isa.hh opUnit/opTimeClass); any gap to the next
 *    issue is idle by definition — the single-sequence model makes
 *    this exact.
 *  - Per link: flits carried, serialization-busy time, and a log2
 *    histogram of receive queueing delay (flit arrival to the
 *    consuming Recv), the slack the SSN schedule left at the
 *    receiver. Histograms live in a MetricsRegistry so --metrics
 *    reporting and the profiler share one mechanism. FEC multi-bit
 *    errors are attributed back to the link that corrupted the flit:
 *    `dropped` counts vectors whose payload was discarded at their
 *    consuming Recv because of an MBE on that link.
 *  - Per transfer (causal span, trace/span.hh): a cross-chip
 *    waterfall — serialize, flight, forward-queue and deskew-wait
 *    picoseconds that sum *exactly* to the observed end-to-end
 *    latency between the span's open (source Send) and close
 *    (destination Recv), however many forwarded hops lie between.
 *  - HAC alignment telemetry: every observed drift delta and applied
 *    correction, with a bounded timeline for convergence plots.
 *  - The simulated completion time of the scheduled communication,
 *    for comparison against the static prediction
 *    (prof/ssn_analysis.hh).
 *
 * The sink is order-tolerant across chips/links (events interleave on
 * the global timeline) but relies on per-actor event order, which the
 * single-threaded event queue guarantees.
 */

#ifndef TSM_PROF_PROFILER_HH
#define TSM_PROF_PROFILER_HH

#include <map>
#include <unordered_map>
#include <vector>

#include "arch/isa.hh"
#include "common/units.hh"
#include "net/flit.hh"
#include "net/topology.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace tsm {

/** Per-chip attributed cycle account. */
struct ChipAccount
{
    /** Local cycle of the first/last observed issue. */
    Cycle firstCycle = 0;
    Cycle lastCycle = 0;

    /** Busy cycles charged to each functional unit. */
    Cycle busy[kNumFuncUnits] = {};

    /** Chip-wide stall cycles (deskew, poll waits). */
    Cycle stall = 0;

    /** Empty issue slots (NOPs, waits for scheduled cycles). */
    Cycle idle = 0;

    std::uint64_t instrs = 0;
    bool halted = false;

    /** Observed span; busy + stall + idle always equals this. */
    Cycle totalCycles() const { return lastCycle - firstCycle; }

    Cycle busyTotal() const;
};

/** Per-link traffic account (both directions folded together). */
struct LinkAccount
{
    std::uint64_t flits = 0;
    std::uint64_t mbes = 0;

    /**
     * Vectors whose payload was dropped at the consuming Recv because
     * an FEC multi-bit error on *this* link corrupted them (paper
     * §4.5: MBEs are detected and flagged, never retried, so every
     * MBE eventually surfaces as one dropped payload downstream).
     */
    std::uint64_t dropped = 0;

    /** Transmitter serialization time. */
    Tick busyPs = 0;
};

/**
 * One vector's cross-chip journey, reconstructed from its causal span
 * (trace/span.hh): opened by the source chip's Send, one link leg per
 * tx/rx pair (forwarded routes have several), closed by the consuming
 * Recv at the final destination. The four waterfall stages tile the
 * observed latency exactly:
 *
 *   serializePs + flightPs + forwardPs + waitPs == closeTick - openTick
 *
 * because tx durations, inter-leg gaps and the final arrival-to-Recv
 * gap telescope over the journey.
 */
struct TransferRecord
{
    FlowId flow = 0;
    std::uint32_t seq = 0;
    TspId src = 0; ///< chip whose Send opened the span
    TspId dst = 0; ///< chip whose Recv closed it (valid once closed)

    Tick openTick = 0;
    Tick closeTick = 0;

    /** Time spent clocking the vector onto wires (all legs). */
    Tick serializePs = 0;
    /** Time in flight on the physical links (all legs). */
    Tick flightPs = 0;
    /** Layover on forwarding chips between arrival and onward Send. */
    Tick forwardPs = 0;
    /** Deskew margin at the destination: arrival to consuming Recv. */
    Tick waitPs = 0;

    unsigned legs = 0;        ///< link legs observed
    std::uint64_t mbes = 0;   ///< legs corrupted by an FEC MBE
    bool closed = false;      ///< span_close seen

    /** Observed end-to-end latency (0 until closed). */
    Tick totalPs() const { return closed ? closeTick - openTick : 0; }

    /** The telescoping invariant; holds for every closed transfer. */
    Tick stagesPs() const
    {
        return serializePs + flightPs + forwardPs + waitPs;
    }

    /// @name Sink-internal pairing state
    /// @{
    Tick lastArrival = 0;
    bool haveArrival = false;
    /// @}
};

/** HAC alignment telemetry. */
struct HacAccount
{
    /** Parent update transmissions observed. */
    std::uint64_t updatesSent = 0;

    /** Child adjustment events observed. */
    std::uint64_t adjustments = 0;

    /** Sum / max of |observed drift delta| in cycles. */
    std::uint64_t sumAbsDelta = 0;
    std::uint64_t maxAbsDelta = 0;

    /** Sum of |applied correction| in cycles. */
    std::uint64_t sumAbsStep = 0;

    /** First observations of (tick, delta, step), bounded. */
    static constexpr std::size_t kTimelineCap = 256;
    struct Sample
    {
        Tick tick;
        int delta;
        int step;
    };
    std::vector<Sample> timeline;
};

/** Folds the trace stream into the accounts above. */
class ProfilerSink : public TraceSink
{
  public:
    ProfilerSink();

    /** Everything except the per-dispatch Sim firehose. */
    unsigned categoryMask() const override { return kTraceDefaultCats; }

    void event(const TraceEvent &ev) override;

    /** Close out still-pending instruction occupancies. */
    void finish() override;

    /// @name Accounts (keyed deterministically, ascending id)
    /// @{
    const std::map<TspId, ChipAccount> &chips() const { return chips_; }
    const std::map<LinkId, LinkAccount> &links() const { return links_; }
    const HacAccount &hac() const { return hac_; }

    /** Per-transfer waterfalls, keyed by parent span id. */
    const std::map<SpanId, TransferRecord> &transfers() const
    {
        return transfers_;
    }

    /** Registry holding the per-link queue-delay histograms. */
    const MetricsRegistry &metrics() const { return reg_; }

    /** Queue-delay histogram of one link, or nullptr. */
    const Log2Histogram *queueDelay(LinkId link) const;

    /** Queue-delay histogram over all links. */
    const Log2Histogram &queueDelayAll() const { return queueAll_; }
    /// @}

    /// @name Stream-level summary
    /// @{
    std::uint64_t events() const { return events_; }

    /** Latest point any event touches (tick + duration). */
    Tick spanPs() const { return spanPs_; }

    /** Scheduled-transfer receive events seen / last one's tick. */
    std::uint64_t recvEvents() const { return recvEvents_; }
    Tick lastRecvTick() const { return lastRecvTick_; }

    /** Scheduled-transfer send events seen. */
    std::uint64_t sendEvents() const { return sendEvents_; }

    /** Total data flits carried across all links. */
    std::uint64_t totalFlits() const;
    /// @}

  private:
    struct Pending
    {
        bool valid = false;
        Cycle cycle = 0;
        Cycle durCycles = 0;
        FuncUnit unit = FuncUnit::ICU;
        OpTimeClass cls = OpTimeClass::Idle;
    };

    void chipEvent(const TraceEvent &ev);
    void netEvent(const TraceEvent &ev);
    void ssnEvent(const TraceEvent &ev);
    void syncEvent(const TraceEvent &ev);
    void charge(ChipAccount &acct, Pending &pend, Cycle until);

    std::map<TspId, ChipAccount> chips_;
    std::map<LinkId, LinkAccount> links_;
    std::unordered_map<TspId, Pending> pending_;
    HacAccount hac_;
    MetricsRegistry reg_;
    Log2Histogram queueAll_;

    /** In-flight flits awaiting their consuming Recv: (flow,seq). */
    std::map<std::pair<FlowId, std::uint32_t>,
             std::vector<std::pair<Tick, LinkId>>>
        inFlight_;

    /** Transfer waterfalls keyed by parent span id. */
    std::map<SpanId, TransferRecord> transfers_;

    /** MBE-corrupted (flow,seq) awaiting their dropping Recv: the
     *  links to charge, oldest first. */
    std::map<std::pair<FlowId, std::uint32_t>, std::vector<LinkId>>
        pendingMbe_;

    /** Mnemonic -> opcode, for attributing chip events. */
    std::unordered_map<std::string, Op> opByName_;

    std::uint64_t events_ = 0;
    Tick spanPs_ = 0;
    std::uint64_t recvEvents_ = 0;
    std::uint64_t sendEvents_ = 0;
    Tick lastRecvTick_ = 0;
};

} // namespace tsm

#endif // TSM_PROF_PROFILER_HH
