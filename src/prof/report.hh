/**
 * @file
 * Machine-readable profile reports.
 *
 * A ProfileCollector bundles the attribution profiler
 * (prof/profiler.hh) with an optional static SSN schedule analysis
 * (prof/ssn_analysis.hh) and run identity (bench name, seed, extra
 * scalars), and serializes the whole thing as one stable JSON document
 * — schema "tsm-profile-v1". Stability matters: the same binary on the
 * same seed must produce a byte-identical report, so reports diff
 * cleanly across commits and CI can treat them as artifacts.
 *
 * The same JSON is the input to the human-readable rendering
 * (renderProfileSummary), used both by the bench binaries at exit and
 * by the offline `tsm_report` tool — one formatter, two entry points.
 */

#ifndef TSM_PROF_REPORT_HH
#define TSM_PROF_REPORT_HH

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "prof/profiler.hh"
#include "prof/ssn_analysis.hh"

namespace tsm {

/** Schema tag stamped into every report. */
inline constexpr const char *kProfileSchema = "tsm-profile-v1";

/** Collects one run's profile and serializes it. */
class ProfileCollector
{
  public:
    /** The trace sink to attach to the run's Tracer. */
    ProfilerSink &sink() { return sink_; }
    const ProfilerSink &sink() const { return sink_; }

    /** Identity stamped into the report. */
    void setBench(std::string name) { bench_ = std::move(name); }
    void setSeed(std::uint64_t seed);

    /**
     * Attach the static analysis of the schedule this run executed;
     * enables the report's "ssn" section (critical path,
     * predicted-vs-simulated completion).
     */
    void setSchedule(const NetworkSchedule &sched, const Topology &topo,
                     const std::vector<TensorTransfer> &transfers = {});

    /** Extra scalar fields for the report's "extra" object. */
    void addExtra(const std::string &key, double value);

    /**
     * Attach the bottleneck-phase segmentation produced by the
     * timeline sampler (telemetry/phase.hh phasesJson); enables the
     * report's "phases" section. Passed as a prebuilt JSON array: the
     * collector does not need a TimelineSampler to serialize it.
     */
    void setPhases(Json phases);

    const std::optional<SsnAnalysis> &analysis() const { return analysis_; }

    /**
     * Build the report document. Call after the trace stream is
     * finished (Tracer::finishAll or sink().finish()).
     */
    Json report() const;

  private:
    ProfilerSink sink_;
    std::optional<SsnAnalysis> analysis_;
    std::string bench_ = "unknown";
    std::uint64_t seed_ = 0;
    bool hasSeed_ = false;
    std::vector<std::pair<std::string, double>> extras_;
    std::optional<Json> phases_;
};

/**
 * Render a report document as a human-readable summary: run header,
 * per-chip functional-unit utilization, top-`top_k` busiest links with
 * queue-delay percentiles, HAC telemetry, and the SSN critical-path
 * breakdown. Accepts any "tsm-profile-v1" document, whether built
 * in-process or parsed back from a BENCH_*.json file.
 *
 * `host` is an optional companion "tsm-hostprof-v1" document; when
 * given, a wall-clock/sim-rate footer is appended. It is deliberately
 * NOT part of `report` — profile reports must stay byte-identical
 * whether or not host profiling ran.
 */
std::string renderProfileSummary(const Json &report, unsigned top_k = 5,
                                 const Json *host = nullptr);

/**
 * Serialize `report` to `path` (pretty-printed, trailing newline).
 * Returns false and fills `error` (when given) on I/O failure.
 */
bool writeProfileReport(const std::string &path, const Json &report,
                        std::string *error = nullptr);

} // namespace tsm

#endif // TSM_PROF_REPORT_HH
