/**
 * @file
 * Cross-flow contention attribution: who did every wait *wait for*?
 *
 * The profiler (prof/profiler.hh) measures how long each transfer
 * waited (`TransferRecord::waitPs`) and how long flits sat in each
 * link's receive queue, but both are single unattributed buckets.
 * This layer decomposes every waited picosecond into per-blocker
 * shares, by replaying the same trace stream through a passive
 * `BlameSink`:
 *
 *  - Chip occupancy timeline: every instruction-issue event opens a
 *    disjoint occupancy interval on its chip; the Ssn send/recv event
 *    that precedes it at the same (actor, tick) tags the interval
 *    with the flow/vector the instruction serves.
 *  - Wait decomposition: each consuming Recv is paired with its
 *    flit's arrival (the same oldest-first pairing the profiler
 *    uses), and the [arrival, recv) window is partitioned against
 *    the destination chip's occupancy intervals — time covered by a
 *    tagged interval is blamed on that flow, time covered by an
 *    untagged one is "local" chip work, and uncovered time is
 *    "margin" (the slack the SSN schedule budgeted). The three kinds
 *    of share sum *exactly* to the wait, and the final-hop
 *    decomposition is exactly the transfer's `waitPs` — the
 *    waterfall-exactness invariant extended to attribution.
 *  - Accounts: per-transfer blame breakdowns, a flow x flow blame
 *    matrix, per-link blame totals that reconcile with the
 *    profiler's queue-delay histograms, "blocked-by" causal chains
 *    following each transfer's dominant blocker through span
 *    identity, and a windowed per-link contention grid
 *    (telemetry/contention.hh).
 *
 * A `BlameCollector` bundles the sink with run identity plus the
 * scheduler's compile-time attribution (ScheduleBlame) and emits one
 * byte-deterministic `tsm-blame-v1` document. Like the host profile,
 * it is a separate document on purpose: enabling --blame must not
 * perturb any other artifact.
 */

#ifndef TSM_PROF_BLAME_HH
#define TSM_PROF_BLAME_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "common/units.hh"
#include "net/flit.hh"
#include "net/topology.hh"
#include "ssn/scheduler.hh"
#include "telemetry/contention.hh"
#include "trace/trace.hh"

namespace tsm {

/** Schema tag stamped into every blame document. */
inline constexpr const char *kBlameSchema = "tsm-blame-v1";

/** One vector's identity as a blocker. */
using BlamedVector = std::pair<FlowId, std::uint32_t>;

/** Shares of one decomposed wait window. */
struct WaitShares
{
    /** Blocking flow -> picoseconds of the wait it occupied. */
    std::map<FlowId, Tick> flowPs;

    /** Blocking vector -> picoseconds (refines flowPs; for chains). */
    std::map<BlamedVector, Tick> vectorPs;

    /** Untagged chip work (reads/writes/compute) inside the wait. */
    Tick localPs = 0;

    /** Uncovered time: the schedule's budgeted deskew margin. */
    Tick marginPs = 0;

    Tick
    totalPs() const
    {
        Tick total = localPs + marginPs;
        for (const auto &[flow, ps] : flowPs)
            total += ps;
        return total;
    }

    void accumulate(const WaitShares &other);
};

/** One transfer's blame breakdown (final-hop wait decomposition). */
struct TransferBlame
{
    FlowId flow = kFlowInvalid;
    std::uint32_t seq = 0;
    TspId src = 0; ///< chip whose Send opened the span
    TspId dst = 0; ///< chip whose Recv closed it (valid once closed)
    Tick waitPs = 0;
    WaitShares shares;
    bool closed = false;
};

/** One link's aggregated blame account (every paired recv). */
struct LinkBlame
{
    std::uint64_t recvs = 0;

    /** Total receive-queue wait; reconciles with the profiler's
     *  per-link queue-delay histogram sum. */
    Tick waitPs = 0;
    WaitShares shares;
};

/** Folds the trace stream into blame accounts. Purely passive. */
class BlameSink : public TraceSink
{
  public:
    unsigned categoryMask() const override { return kTraceDefaultCats; }

    void event(const TraceEvent &ev) override;
    void finish() override {}

    /// @name Accounts (keyed deterministically)
    /// @{
    const std::map<SpanId, TransferBlame> &transfers() const
    {
        return transfers_;
    }
    const std::map<LinkId, LinkBlame> &links() const { return links_; }

    /** blocked flow -> blocking flow -> picoseconds. */
    const std::map<FlowId, std::map<FlowId, Tick>> &flowPairs() const
    {
        return flowPairs_;
    }

    const ContentionGrid &grid() const { return grid_; }

    /** Recvs paired / total wait decomposed across all of them. */
    std::uint64_t recvs() const { return recvs_; }
    Tick totalWaitPs() const { return totalWaitPs_; }
    /// @}

  private:
    /** One occupancy interval on a chip's issue timeline. */
    struct Occupancy
    {
        Tick start;
        Tick end;
        FlowId flow;
        std::uint32_t seq;
        bool tagged;
    };

    /** Flow/vector tag for the chip event at the same (actor, tick). */
    struct PendingTag
    {
        Tick tick = 0;
        FlowId flow = kFlowInvalid;
        std::uint32_t seq = 0;
        bool valid = false;
    };

    void chipEvent(const TraceEvent &ev);
    void netEvent(const TraceEvent &ev);
    void ssnEvent(const TraceEvent &ev);
    WaitShares decompose(TspId chip, Tick from, Tick to) const;

    std::unordered_map<TspId, std::vector<Occupancy>> occupancy_;
    std::unordered_map<TspId, PendingTag> pendingTag_;

    /** In-flight flits awaiting their consuming Recv: (flow,seq). */
    std::map<BlamedVector, std::vector<std::pair<Tick, LinkId>>>
        inFlight_;

    /** Decomposition of the most recent recv of each (flow,seq):
     *  claimed by span_close as the transfer's wait breakdown. */
    std::map<BlamedVector, WaitShares> lastRecv_;
    std::map<BlamedVector, Tick> lastRecvWaitPs_;

    std::map<SpanId, TransferBlame> transfers_;
    std::map<LinkId, LinkBlame> links_;
    std::map<FlowId, std::map<FlowId, Tick>> flowPairs_;
    ContentionGrid grid_;

    std::uint64_t recvs_ = 0;
    Tick totalWaitPs_ = 0;
};

/** Collects one run's blame accounts and serializes them. */
class BlameCollector
{
  public:
    /** The trace sink to attach to the run's Tracer. */
    BlameSink &sink() { return sink_; }
    const BlameSink &sink() const { return sink_; }

    /** Identity stamped into the document. */
    void setBench(std::string name) { bench_ = std::move(name); }
    void setSeed(std::uint64_t seed);

    /**
     * Attribution source: "ssn" (default, byte-stable across seeds)
     * or "hw_router" (fig08's hardware baseline, seed-dependent).
     */
    void setSource(std::string source) { source_ = std::move(source); }

    /**
     * Attach the scheduler's compile-time attribution; enables the
     * document's "schedule" section (who pushed whose departures,
     * resolved while the schedule was built).
     */
    void setSchedule(const NetworkSchedule &sched, const Topology &topo);

    /**
     * Build the tsm-blame-v1 document. Call after the trace stream
     * is finished. Deterministic: same-seed runs emit identical
     * bytes.
     */
    Json report() const;

  private:
    BlameSink sink_;
    std::string bench_ = "unknown";
    std::string source_ = "ssn";
    std::uint64_t seed_ = 0;
    bool hasSeed_ = false;
    std::optional<Json> schedule_;
};

/**
 * Render a blame document as a human-readable triage summary: top
 * contended links, top blamed flow pairs (runtime and compile-time),
 * and the blocked-by chains of the most-delayed transfers. Accepts
 * any "tsm-blame-v1" document, in-process or reloaded from disk.
 */
std::string renderBlameSummary(const Json &blame, unsigned top_k = 5);

/**
 * Validate the blame-exactness invariants of a document: every
 * transfer's shares sum exactly to its wait, every link's shares sum
 * to its wait total, and the windowed grid's per-link totals match
 * the link accounts. Returns true when all hold; appends one line
 * per violation to `*why` otherwise.
 */
bool checkBlameExactness(const Json &blame, std::string *why = nullptr);

} // namespace tsm

#endif // TSM_PROF_BLAME_HH
