#include "prof/report.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/format.hh"
#include "common/table.hh"
#include "hostprof/hostprof.hh"
#include "telemetry/phase.hh"

namespace tsm {

namespace {

/** Cap on critical-path hops serialized into the JSON document. */
constexpr std::size_t kMaxJsonPathHops = 128;

/** Cap on per-transfer waterfalls serialized into the document. */
constexpr std::size_t kMaxJsonTransfers = 512;

Json
histogramJson(const Log2Histogram &h)
{
    Json j = Json::object();
    j.set("count", h.count());
    j.set("mean", h.mean());
    j.set("min", h.count() ? h.min() : 0);
    j.set("p50", h.p50());
    j.set("p95", h.p95());
    j.set("p99", h.p99());
    j.set("max", h.count() ? h.max() : 0);
    return j;
}

double
frac(double num, double den)
{
    return den > 0 ? num / den : 0.0;
}

} // namespace

void
ProfileCollector::setSeed(std::uint64_t seed)
{
    seed_ = seed;
    hasSeed_ = true;
}

void
ProfileCollector::setSchedule(const NetworkSchedule &sched,
                              const Topology &topo,
                              const std::vector<TensorTransfer> &transfers)
{
    analysis_ = analyzeSchedule(sched, topo, transfers);
}

void
ProfileCollector::addExtra(const std::string &key, double value)
{
    extras_.emplace_back(key, value);
}

void
ProfileCollector::setPhases(Json phases)
{
    phases_ = std::move(phases);
}

Json
ProfileCollector::report() const
{
    const ProfilerSink &s = sink_;
    Json root = Json::object();
    root.set("schema", kProfileSchema);
    root.set("bench", bench_);
    if (hasSeed_)
        root.set("seed", seed_);

    const double spanPs = double(s.spanPs());
    const std::uint64_t spanCycles =
        std::uint64_t(std::llround(spanPs / kCorePeriodPs));
    root.set("cycles", spanCycles);

    {
        Json sim = Json::object();
        sim.set("span_ps", s.spanPs());
        sim.set("span_cycles", spanCycles);
        sim.set("events", s.events());
        root.set("sim", std::move(sim));
    }

    {
        const std::uint64_t flits = s.totalFlits();
        const std::uint64_t bytes = flits * kVectorBytes;
        Json tp = Json::object();
        tp.set("flits", flits);
        tp.set("bytes", bytes);
        // Payload bytes moved per wall-clock second of simulated time.
        tp.set("gbytes_per_sec",
               spanPs > 0 ? double(bytes) / spanPs * 1000.0 : 0.0);
        root.set("throughput", std::move(tp));
    }

    {
        Json chips = Json::array();
        for (const auto &[id, acct] : s.chips()) {
            const double total = double(acct.totalCycles());
            Json c = Json::object();
            c.set("id", id);
            c.set("total_cycles", acct.totalCycles());
            c.set("instrs", acct.instrs);
            c.set("halted", acct.halted);
            Json busy = Json::object();
            Json util = Json::object();
            for (unsigned u = 0; u < kNumFuncUnits; ++u) {
                const char *name = funcUnitName(FuncUnit(u));
                busy.set(name, acct.busy[u]);
                util.set(name, frac(double(acct.busy[u]), total));
            }
            c.set("busy", std::move(busy));
            c.set("stall", acct.stall);
            c.set("idle", acct.idle);
            c.set("util", std::move(util));
            c.set("busy_frac", frac(double(acct.busyTotal()), total));
            c.set("stall_frac", frac(double(acct.stall), total));
            c.set("idle_frac", frac(double(acct.idle), total));
            chips.push(std::move(c));
        }
        root.set("chips", std::move(chips));
    }

    {
        Json links = Json::array();
        for (const auto &[id, acct] : s.links()) {
            Json l = Json::object();
            l.set("id", id);
            l.set("flits", acct.flits);
            l.set("mbes", acct.mbes);
            l.set("dropped_flits", acct.dropped);
            l.set("busy_ps", acct.busyPs);
            l.set("util", frac(double(acct.busyPs), spanPs));
            if (const Log2Histogram *h = s.queueDelay(id))
                l.set("queue_delay_ps", histogramJson(*h));
            links.push(std::move(l));
        }
        root.set("links", std::move(links));
        root.set("queue_delay_ps", histogramJson(s.queueDelayAll()));
    }

    {
        // Per-transfer cross-chip waterfalls (causal spans). The four
        // stages of every closed transfer tile its observed latency
        // exactly; "exact" records that invariant per entry so report
        // consumers need not recompute it.
        Json transfers = Json::array();
        std::size_t closed = 0, exact = 0, serialized = 0;
        for (const auto &[span, tr] : s.transfers()) {
            if (tr.closed) {
                ++closed;
                if (tr.stagesPs() == tr.totalPs())
                    ++exact;
            }
            if (serialized >= kMaxJsonTransfers)
                continue;
            ++serialized;
            Json t = Json::object();
            t.set("flow", tr.flow);
            t.set("seq", tr.seq);
            t.set("src", tr.src);
            t.set("dst", tr.dst);
            t.set("legs", tr.legs);
            t.set("open_ps", tr.openTick);
            t.set("close_ps", tr.closeTick);
            t.set("total_ps", tr.totalPs());
            t.set("serialize_ps", tr.serializePs);
            t.set("flight_ps", tr.flightPs);
            t.set("forward_ps", tr.forwardPs);
            t.set("wait_ps", tr.waitPs);
            t.set("mbes", tr.mbes);
            t.set("closed", tr.closed);
            t.set("exact", tr.closed && tr.stagesPs() == tr.totalPs());
            transfers.push(std::move(t));
        }
        root.set("transfers", std::move(transfers));
        Json sum = Json::object();
        sum.set("total", s.transfers().size());
        sum.set("closed", closed);
        sum.set("exact", exact);
        sum.set("truncated", s.transfers().size() > kMaxJsonTransfers);
        root.set("transfers_summary", std::move(sum));
    }

    {
        const HacAccount &hac = s.hac();
        Json h = Json::object();
        h.set("updates_sent", hac.updatesSent);
        h.set("adjustments", hac.adjustments);
        h.set("mean_abs_delta",
              frac(double(hac.sumAbsDelta), double(hac.adjustments)));
        h.set("max_abs_delta", hac.maxAbsDelta);
        h.set("sum_abs_step", hac.sumAbsStep);
        Json timeline = Json::array();
        for (const auto &sample : hac.timeline) {
            Json t = Json::object();
            t.set("tick", sample.tick);
            t.set("delta", sample.delta);
            t.set("step", sample.step);
            timeline.push(std::move(t));
        }
        h.set("timeline", std::move(timeline));
        root.set("hac", std::move(h));
    }

    if (analysis_) {
        const SsnAnalysis &a = *analysis_;
        Json ssn = Json::object();
        ssn.set("makespan_cycles", a.makespan);
        ssn.set("critical_path_cycles", a.criticalPathCycles);
        ssn.set("predicted_completion_cycles", a.predictedCompletionCycles);
        const bool simulated = s.recvEvents() > 0;
        const std::uint64_t simCycles =
            simulated ? std::uint64_t(std::llround(double(s.lastRecvTick()) /
                                                   kCorePeriodPs))
                      : 0;
        ssn.set("simulated", simulated);
        ssn.set("simulated_completion_cycles", simCycles);
        ssn.set("gap_cycles",
                simulated ? std::int64_t(simCycles) -
                                std::int64_t(a.predictedCompletionCycles)
                          : std::int64_t(0));
        ssn.set("hops_total", a.hopsTotal);
        ssn.set("contended_hops", a.contendedHops);
        ssn.set("contention_free", a.contentionFree);
        {
            Json slack = Json::object();
            slack.set("mean", a.hopSlack.mean());
            slack.set("max",
                      a.hopSlack.count() ? std::int64_t(a.hopSlack.max())
                                         : std::int64_t(0));
            ssn.set("hop_slack_cycles", std::move(slack));
        }
        {
            Json d = Json::object();
            d.set("start_cycle", a.startCycle);
            d.set("flight_cycles", a.flightCyclesTotal);
            d.set("forward_cycles", a.forwardCyclesTotal);
            d.set("wait_cycles", a.waitCyclesTotal);
            ssn.set("decomposition", std::move(d));
        }
        {
            Json hops = Json::array();
            const std::size_t n =
                std::min(a.criticalPath.size(), kMaxJsonPathHops);
            for (std::size_t i = 0; i < n; ++i) {
                const CritHop &ch = a.criticalPath[i];
                Json h = Json::object();
                h.set("link", ch.link);
                h.set("from", ch.from);
                h.set("flow", ch.flow);
                h.set("seq", ch.seq);
                h.set("depart", ch.depart);
                h.set("arrive", ch.arrive);
                h.set("wait", ch.wait);
                h.set("edge", critEdgeName(ch.edge));
                hops.push(std::move(h));
            }
            ssn.set("critical_path", std::move(hops));
            ssn.set("critical_path_hops", a.criticalPath.size());
            ssn.set("critical_path_truncated",
                    a.criticalPath.size() > kMaxJsonPathHops);
        }
        root.set("ssn", std::move(ssn));
    }

    if (phases_)
        root.set("phases", *phases_);

    if (!extras_.empty()) {
        Json extra = Json::object();
        for (const auto &[key, value] : extras_)
            extra.set(key, value);
        root.set("extra", std::move(extra));
    }
    return root;
}

namespace {

std::string
pct(const Json &fraction)
{
    return Table::num(fraction.number() * 100.0, 1) + "%";
}

} // namespace

std::string
renderProfileSummary(const Json &report, unsigned top_k, const Json *host)
{
    std::string out;
    const std::string bench =
        report["bench"].isNull() ? "?" : report["bench"].str();
    out += format("== tsm profile: {} ==\n", bench);
    if (report.has("seed"))
        out += format("seed: {}\n", report["seed"].integer());
    const Json &sim = report["sim"];
    if (!sim.isNull()) {
        out += format("span: {} cycles ({} us), {} trace events\n",
                      sim["span_cycles"].integer(),
                      Table::num(psToUs(sim["span_ps"].number()), 2),
                      sim["events"].integer());
    }
    const Json &tp = report["throughput"];
    if (!tp.isNull()) {
        out += format("traffic: {} flits, {} bytes, {} GB/s\n",
                      tp["flits"].integer(), tp["bytes"].integer(),
                      Table::num(tp["gbytes_per_sec"].number(), 2));
    }

    const Json &chips = report["chips"];
    if (!chips.isNull() && chips.size() > 0) {
        out += "\nper-chip functional-unit utilization:\n";
        Table t({"chip", "cycles", "MXM", "VXM", "SXM", "MEM", "stall",
                 "idle"});
        for (const Json &c : chips.items()) {
            t.addRow({Table::num(c["id"].integer()),
                      Table::num(c["total_cycles"].integer()),
                      pct(c["util"]["MXM"]), pct(c["util"]["VXM"]),
                      pct(c["util"]["SXM"]), pct(c["util"]["MEM"]),
                      pct(c["stall_frac"]), pct(c["idle_frac"])});
        }
        out += t.ascii();
    }

    const Json &links = report["links"];
    if (!links.isNull() && links.size() > 0) {
        // Busiest links first.
        std::vector<const Json *> sorted;
        for (const Json &l : links.items())
            sorted.push_back(&l);
        std::stable_sort(sorted.begin(), sorted.end(),
                         [](const Json *a, const Json *b) {
                             return (*a)["util"].number() >
                                    (*b)["util"].number();
                         });
        if (sorted.size() > top_k)
            sorted.resize(top_k);
        out += format("\ntop {} links by utilization (of {}):\n",
                      sorted.size(), links.size());
        Table t({"link", "flits", "util", "qdelay p50", "p95", "p99",
                 "mbes", "dropped"});
        for (const Json *l : sorted) {
            const Json &q = (*l)["queue_delay_ps"];
            auto qcell = [&](const char *key) {
                return q.isNull() ? std::string("-")
                                  : Table::num(q[key].integer());
            };
            t.addRow({Table::num((*l)["id"].integer()),
                      Table::num((*l)["flits"].integer()), pct((*l)["util"]),
                      qcell("p50"), qcell("p95"), qcell("p99"),
                      Table::num((*l)["mbes"].integer()),
                      (*l)["dropped_flits"].isNull()
                          ? std::string("-")
                          : Table::num((*l)["dropped_flits"].integer())});
        }
        out += t.ascii();
    }

    const Json &transfers = report["transfers"];
    const Json &tsum = report["transfers_summary"];
    if (!transfers.isNull() && transfers.size() > 0) {
        // Slowest transfers first: the waterfall names which stage of
        // which vector journey dominates the communication time.
        std::vector<const Json *> sorted;
        for (const Json &t : transfers.items())
            if (t["closed"].boolean())
                sorted.push_back(&t);
        std::stable_sort(sorted.begin(), sorted.end(),
                         [](const Json *a, const Json *b) {
                             return (*a)["total_ps"].integer() >
                                    (*b)["total_ps"].integer();
                         });
        if (sorted.size() > top_k)
            sorted.resize(top_k);
        if (!sorted.empty()) {
            out += format("\ntop {} transfers by latency (of {} closed",
                          sorted.size(), tsum["closed"].integer());
            if (!tsum.isNull())
                out += format(", {} stage-exact", tsum["exact"].integer());
            out += "):\n";
            Table t({"flow:seq", "route", "legs", "serialize", "flight",
                     "forward", "wait", "total ps"});
            for (const Json *tr : sorted) {
                t.addRow({format("{}:{}", (*tr)["flow"].integer(),
                                 (*tr)["seq"].integer()),
                          format("{}->{}", (*tr)["src"].integer(),
                                 (*tr)["dst"].integer()),
                          Table::num((*tr)["legs"].integer()),
                          Table::num((*tr)["serialize_ps"].integer()),
                          Table::num((*tr)["flight_ps"].integer()),
                          Table::num((*tr)["forward_ps"].integer()),
                          Table::num((*tr)["wait_ps"].integer()),
                          Table::num((*tr)["total_ps"].integer())});
            }
            out += t.ascii();
        }
    }

    const Json &phases = report["phases"];
    if (!phases.isNull() && phases.size() > 0)
        out += "\n" + renderPhaseTable(phases);

    const Json &hac = report["hac"];
    if (!hac.isNull() && hac["adjustments"].integer() > 0) {
        out += format("\nhac: {} updates sent, {} adjustments, mean |drift| "
                      "{} cycles, max {}\n",
                      hac["updates_sent"].integer(),
                      hac["adjustments"].integer(),
                      Table::num(hac["mean_abs_delta"].number(), 2),
                      hac["max_abs_delta"].integer());
    }

    const Json &ssn = report["ssn"];
    if (!ssn.isNull()) {
        out += format("\nssn schedule: makespan {} cycles, {} hops, {} "
                      "contended{}\n",
                      ssn["makespan_cycles"].integer(),
                      ssn["hops_total"].integer(),
                      ssn["contended_hops"].integer(),
                      ssn["contention_free"].boolean()
                          ? " (contention-free)"
                          : "");
        out += format("predicted completion: {} cycles",
                      ssn["predicted_completion_cycles"].integer());
        if (ssn["simulated"].boolean()) {
            const std::int64_t gap = ssn["gap_cycles"].integer();
            out += format(", simulated: {} (gap {}{})",
                          ssn["simulated_completion_cycles"].integer(),
                          gap > 0 ? "+" : "", gap);
        }
        out += "\n";
        const Json &d = ssn["decomposition"];
        if (!d.isNull()) {
            out += format("critical path: start {} + flight {} + forward {} "
                          "+ wait {} = {} cycles\n",
                          d["start_cycle"].integer(),
                          d["flight_cycles"].integer(),
                          d["forward_cycles"].integer(),
                          d["wait_cycles"].integer(),
                          ssn["critical_path_cycles"].integer());
        }
        const Json &hops = ssn["critical_path"];
        if (!hops.isNull() && hops.size() > 0) {
            const std::size_t shown =
                std::min<std::size_t>(hops.size(), 20);
            out += format("critical path hops ({} of {}):\n", shown,
                          ssn["critical_path_hops"].integer());
            Table t({"#", "edge", "flow:seq", "link", "from", "depart",
                     "arrive", "wait"});
            for (std::size_t i = 0; i < shown; ++i) {
                const Json &h = hops.at(i);
                t.addRow({Table::num(std::uint64_t(i)),
                          h["edge"].str(),
                          format("{}:{}", h["flow"].integer(),
                                 h["seq"].integer()),
                          Table::num(h["link"].integer()),
                          Table::num(h["from"].integer()),
                          Table::num(h["depart"].integer()),
                          Table::num(h["arrive"].integer()),
                          Table::num(h["wait"].integer())});
            }
            out += t.ascii();
        }
    }
    out += "\n" + renderHostRateLine(host);
    return out;
}

bool
writeProfileReport(const std::string &path, const Json &report,
                   std::string *error)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) {
        if (error)
            *error = format("cannot open {} for writing", path);
        return false;
    }
    f << report.dump(2) << "\n";
    f.flush();
    if (!f) {
        if (error)
            *error = format("write to {} failed", path);
        return false;
    }
    return true;
}

} // namespace tsm
