#include "prof/profiler.hh"

#include <algorithm>
#include <cmath>

#include "common/format.hh"

namespace tsm {

Cycle
ChipAccount::busyTotal() const
{
    Cycle total = 0;
    for (unsigned u = 0; u < kNumFuncUnits; ++u)
        total += busy[u];
    return total;
}

ProfilerSink::ProfilerSink()
{
    for (unsigned o = 0; o < kNumOps; ++o)
        opByName_.emplace(opName(Op(o)), Op(o));
}

void
ProfilerSink::event(const TraceEvent &ev)
{
    ++events_;
    spanPs_ = std::max(spanPs_, ev.tick + ev.dur);
    switch (ev.cat) {
      case TraceCat::Chip:
        chipEvent(ev);
        break;
      case TraceCat::Net:
        netEvent(ev);
        break;
      case TraceCat::Ssn:
        ssnEvent(ev);
        break;
      case TraceCat::Sync:
        syncEvent(ev);
        break;
      default:
        break;
    }
}

/**
 * Charge the pending instruction's occupancy within the [pend.cycle,
 * until) gap to its class, and the remainder of the gap to idle. The
 * single-sequence chip model issues instructions strictly in cycle
 * order, so consecutive gaps tile the chip's span exactly — which is
 * what makes busy + stall + idle == total an invariant rather than an
 * approximation.
 */
void
ProfilerSink::charge(ChipAccount &acct, Pending &pend, Cycle until)
{
    if (!pend.valid)
        return;
    const Cycle gap = until >= pend.cycle ? until - pend.cycle : 0;
    const Cycle occupied = std::min(gap, pend.durCycles);
    switch (pend.cls) {
      case OpTimeClass::Busy:
        acct.busy[unsigned(pend.unit)] += occupied;
        break;
      case OpTimeClass::Stall:
        acct.stall += occupied;
        break;
      case OpTimeClass::Idle:
        acct.idle += occupied;
        break;
    }
    acct.idle += gap - occupied;
    pend.valid = false;
}

void
ProfilerSink::chipEvent(const TraceEvent &ev)
{
    const TspId chip = ev.actor;
    const Cycle cycle = Cycle(ev.b);
    ChipAccount &acct = chips_[chip];
    Pending &pend = pending_[chip];

    if (acct.instrs == 0 && !pend.valid)
        acct.firstCycle = cycle;
    charge(acct, pend, cycle);
    acct.lastCycle = std::max(acct.lastCycle, cycle);

    if (std::string_view(ev.name) == "halt") {
        acct.halted = true;
        return;
    }

    Pending next;
    next.valid = true;
    next.cycle = cycle;
    next.durCycles = Cycle(std::llround(double(ev.dur) / kCorePeriodPs));
    if (std::string_view(ev.name) == "poll_wait") {
        // A PollRecv that found nothing and is waiting for the next
        // poll epoch: time the chip spends blocked on the network.
        next.unit = FuncUnit::SXM;
        next.cls = OpTimeClass::Stall;
    } else {
        auto it = opByName_.find(ev.name);
        if (it == opByName_.end())
            return; // unknown marker: contributes nothing
        next.unit = opUnit(it->second);
        next.cls = opTimeClass(it->second);
        ++acct.instrs;
    }
    pend = next;
}

void
ProfilerSink::netEvent(const TraceEvent &ev)
{
    const std::string_view name(ev.name);
    if (name == "tx") {
        LinkAccount &acct = links_[LinkId(ev.actor)];
        ++acct.flits;
        acct.busyPs += Tick(std::llround(kVectorSerializationPs));
        // One leg of a causal transfer: its tx duration is
        // serialization plus flight, and any gap since the previous
        // leg's arrival was layover on the forwarding chip.
        if (ev.span != kSpanNone) {
            auto it = transfers_.find(spanParent(ev.span));
            if (it != transfers_.end()) {
                TransferRecord &tr = it->second;
                const Tick ser =
                    std::min(Tick(kVectorSerializationPs), ev.dur);
                tr.serializePs += ser;
                tr.flightPs += ev.dur - ser;
                if (tr.haveArrival && ev.tick >= tr.lastArrival)
                    tr.forwardPs += ev.tick - tr.lastArrival;
                ++tr.legs;
            }
        }
    } else if (name == "rx") {
        if (ev.span != kSpanNone) {
            auto it = transfers_.find(spanParent(ev.span));
            if (it != transfers_.end()) {
                it->second.lastArrival = ev.tick;
                it->second.haveArrival = true;
            }
        }
        // Data flits queue here until their consuming Recv (the "mbe"
        // variant still delivers — FEC detects but does not retry).
        const FlowId flow = FlowId(ev.a);
        if (flow != kFlowHacExchange && flow != kFlowSyncToken &&
            flow != kFlowInvalid) {
            inFlight_[{flow, std::uint32_t(ev.b)}].push_back(
                {ev.tick, LinkId(ev.actor)});
        }
    } else if (name == "mbe") {
        ++links_[LinkId(ev.actor)].mbes;
        // Remember which link corrupted this (flow,seq): the payload
        // is dropped later, at the consuming Recv, and the drop is
        // charged back to this link.
        pendingMbe_[{FlowId(ev.a), std::uint32_t(ev.b)}].push_back(
            LinkId(ev.actor));
        if (ev.span != kSpanNone) {
            auto it = transfers_.find(spanParent(ev.span));
            if (it != transfers_.end())
                ++it->second.mbes;
        }
    }
}

void
ProfilerSink::ssnEvent(const TraceEvent &ev)
{
    const std::string_view name(ev.name);
    if (name == "send") {
        ++sendEvents_;
        return;
    }
    if (name == "span_open") {
        TransferRecord &tr = transfers_[ev.span];
        tr.flow = FlowId(ev.a);
        tr.seq = std::uint32_t(ev.b);
        tr.src = ev.actor;
        tr.openTick = ev.tick;
        return;
    }
    if (name == "span_close") {
        auto it = transfers_.find(ev.span);
        if (it != transfers_.end()) {
            TransferRecord &tr = it->second;
            tr.dst = ev.actor;
            tr.closeTick = ev.tick;
            tr.waitPs = tr.haveArrival && ev.tick >= tr.lastArrival
                            ? ev.tick - tr.lastArrival
                            : 0;
            tr.closed = true;
        }
        return;
    }
    if (name != "recv" && name != "corrupt")
        return; // schedule-replay markers (hop/flow/makespan)

    if (name == "corrupt") {
        // This Recv is where an earlier MBE finally costs a payload:
        // attribute the drop to the link that corrupted the vector.
        auto pm = pendingMbe_.find({FlowId(ev.a), std::uint32_t(ev.b)});
        if (pm != pendingMbe_.end() && !pm->second.empty()) {
            ++links_[pm->second.front()].dropped;
            pm->second.erase(pm->second.begin());
            if (pm->second.empty())
                pendingMbe_.erase(pm);
        }
    }

    ++recvEvents_;
    lastRecvTick_ = std::max(lastRecvTick_, ev.tick);

    // Pair this consuming Recv with the oldest matching arrival: the
    // difference is how long the flit sat in the receive queue, i.e.
    // the margin the SSN schedule budgeted at this receiver.
    auto it = inFlight_.find({FlowId(ev.a), std::uint32_t(ev.b)});
    if (it == inFlight_.end() || it->second.empty())
        return;
    const auto [arrivedAt, link] = it->second.front();
    it->second.erase(it->second.begin());
    if (it->second.empty())
        inFlight_.erase(it);
    const Tick delay = ev.tick >= arrivedAt ? ev.tick - arrivedAt : 0;
    queueAll_.add(delay);
    reg_.histogram(format("net.link{}.queue_delay_ps", link)).add(delay);
}

void
ProfilerSink::syncEvent(const TraceEvent &ev)
{
    const std::string_view name(ev.name);
    if (name == "hac_tx") {
        ++hac_.updatesSent;
    } else if (name == "hac_adj") {
        ++hac_.adjustments;
        const std::uint64_t mag = std::uint64_t(std::llabs(ev.a));
        hac_.sumAbsDelta += mag;
        hac_.maxAbsDelta = std::max(hac_.maxAbsDelta, mag);
        hac_.sumAbsStep += std::uint64_t(std::llabs(ev.b));
        if (hac_.timeline.size() < HacAccount::kTimelineCap)
            hac_.timeline.push_back({ev.tick, int(ev.a), int(ev.b)});
    }
}

void
ProfilerSink::finish()
{
    // Close out instructions still pending at end of stream: charge
    // their full modeled occupancy and extend the chip's span to
    // cover it.
    for (auto &[chip, pend] : pending_) {
        if (!pend.valid)
            continue;
        ChipAccount &acct = chips_[chip];
        const Cycle end = pend.cycle + pend.durCycles;
        charge(acct, pend, end);
        acct.lastCycle = std::max(acct.lastCycle, end);
    }
}

const Log2Histogram *
ProfilerSink::queueDelay(LinkId link) const
{
    return reg_.findHistogram(format("net.link{}.queue_delay_ps", link));
}

std::uint64_t
ProfilerSink::totalFlits() const
{
    std::uint64_t total = 0;
    for (const auto &[link, acct] : links_)
        total += acct.flits;
    return total;
}

} // namespace tsm
