#include "prof/lanes.hh"

#include <algorithm>
#include <string_view>
#include <vector>

#include "common/format.hh"
#include "common/table.hh"
#include "net/flit.hh"

namespace tsm {

namespace {

/** Per-lane entries serialized in full before the detail truncates. */
constexpr std::size_t kMaxLaneEntries = 512;

/** Lanes whose per-phase cells ride along for the heatmap. */
constexpr std::size_t kMaxHeatmapLanes = 16;

} // namespace

Tick
conservativeLookaheadPs(const Topology &topo)
{
    Tick min = kTickInvalid;
    for (LinkId l = 0; l < topo.links().size(); ++l) {
        if (!topo.linkEnabled(l))
            continue;
        const Tick hop = Tick(kVectorSerializationPs) +
                         linkPropagationPs(topo.links()[l].cls);
        min = std::min(min, hop);
    }
    return min == kTickInvalid ? kDefaultLookaheadPs : min;
}

const char *
laneKindName(LaneKind kind)
{
    switch (kind) {
      case LaneKind::Chip:
        return "chip";
      case LaneKind::Link:
        return "link";
      case LaneKind::Sync:
        return "sync";
    }
    return "?";
}

LaneKey
LaneSink::classify(const TraceEvent &ev) const
{
    switch (ev.cat) {
      case TraceCat::Chip:
      case TraceCat::Ssn:
        // Live Ssn events (send/recv/corrupt/span_*) are emitted by
        // the chip that executes them; they ride the chip's lane.
        return {LaneKind::Chip, ev.actor, 0};
      case TraceCat::Net: {
        // Control flits and sync-flow traffic belong to the shared
        // sync lane; data flows get a lane per link direction.
        if (std::string_view(ev.name) != "ctl" &&
            isDataFlow(FlowId(ev.a))) {
            std::uint8_t dir = 0;
            if (auto it = hopDir_.find(ev.span); it != hopDir_.end())
                dir = it->second;
            return {LaneKind::Link, ev.actor, dir};
        }
        return {LaneKind::Sync, 0, 0};
      }
      default:
        return {LaneKind::Sync, 0, 0};
    }
}

void
LaneSink::event(const TraceEvent &ev)
{
    if (ev.cat == TraceCat::Ssn) {
        // traceSchedule()'s pre-run replay is bookkeeping, not live
        // work: count it apart so the lane/phase reconciliation stays
        // exact over the events a parallel engine would execute.
        const std::string_view name(ev.name);
        if (name == "hop" || name == "flow" || name == "makespan") {
            ++scheduleEvents_;
            return;
        }
    }

    const LaneKey key = classify(ev);
    LaneStats &lane = lanes_[key];
    ++lane.events;
    lane.busyPs += ev.dur;
    if (lane.firstTick == kTickInvalid)
        lane.firstTick = ev.tick;
    lane.lastTick = std::max(lane.lastTick, ev.tick + ev.dur);

    ++events_;
    busyPs_ += ev.dur;

    const std::uint64_t phase = ev.tick / lookahead_;
    ++phaseLane_[phase][key];

    // Critical path: an event follows its lane's previous event and —
    // through span ancestry — its transfer's last event wherever that
    // lane was.
    std::uint64_t depth = lane.depth + 1;
    if (ev.span != kSpanNone) {
        const SpanId parent = spanParent(ev.span);
        auto it = spanState_.find(parent);
        if (it != spanState_.end()) {
            if (!(it->second.lane == key)) {
                ++crossLaneEvents_;
                ++lane.crossIn;
                if (it->second.phase == phase)
                    ++samePhaseCrossLane_;
            }
            depth = std::max(depth, it->second.depth + 1);
        }
        spanState_[parent] = SpanState{key, phase, depth};
    }
    lane.depth = depth;
    criticalPath_ = std::max(criticalPath_, depth);
}

void
LaneCollector::setSeed(std::uint64_t seed)
{
    seed_ = seed;
    hasSeed_ = true;
}

void
LaneCollector::setSchedule(const NetworkSchedule &sched,
                           const Topology &topo)
{
    sink_.setLookahead(conservativeLookaheadPs(topo));
    for (const ScheduledVector &v : sched.vectors) {
        const SpanId parent = transferSpan(v.flow, v.seq);
        for (std::size_t h = 0; h < v.hops.size(); ++h) {
            const ScheduledHop &hop = v.hops[h];
            if (hop.link >= topo.links().size())
                continue;
            sink_.noteHopDirection(
                spanChild(parent, unsigned(h)),
                topo.links()[hop.link].a == hop.from ? 0 : 1);
        }
    }
}

Json
LaneCollector::report() const
{
    Json doc = Json::object();
    doc.set("schema", kLanesSchema);
    doc.set("bench", bench_);
    if (hasSeed_)
        doc.set("seed", seed_);
    doc.set("lookahead_ps", std::uint64_t(sink_.lookaheadPs()));

    Json totals = Json::object();
    totals.set("events", sink_.events());
    totals.set("schedule_events", sink_.scheduleEvents());
    totals.set("busy_ps", std::uint64_t(sink_.busyPs()));
    totals.set("spans", sink_.spans());
    totals.set("cross_lane_events", sink_.crossLaneEvents());
    totals.set("same_phase_cross_lane", sink_.samePhaseCrossLane());
    doc.set("totals", std::move(totals));

    doc.set("lanes_total", std::uint64_t(sink_.lanes().size()));

    // Per-kind aggregates are always complete, so the reconciliation
    // invariant never depends on the (truncatable) detail below.
    struct KindAgg
    {
        std::uint64_t lanes = 0;
        std::uint64_t events = 0;
        Tick busyPs = 0;
        std::uint64_t crossIn = 0;
    };
    KindAgg agg[3];
    for (const auto &[key, st] : sink_.lanes()) {
        KindAgg &a = agg[unsigned(key.kind)];
        ++a.lanes;
        a.events += st.events;
        a.busyPs += st.busyPs;
        a.crossIn += st.crossIn;
    }
    Json kinds = Json::array();
    for (const LaneKind kind :
         {LaneKind::Chip, LaneKind::Link, LaneKind::Sync}) {
        const KindAgg &a = agg[unsigned(kind)];
        Json entry = Json::object();
        entry.set("kind", laneKindName(kind));
        entry.set("lanes", a.lanes);
        entry.set("events", a.events);
        entry.set("busy_ps", std::uint64_t(a.busyPs));
        entry.set("cross_in", a.crossIn);
        kinds.push(std::move(entry));
    }
    doc.set("lane_kinds", std::move(kinds));

    // Per-lane detail, busiest first (map order breaks ties), capped
    // so a 10k-TSP run cannot explode the document.
    std::vector<std::pair<LaneKey, const LaneStats *>> order;
    for (const auto &[key, st] : sink_.lanes())
        order.push_back({key, &st});
    std::stable_sort(order.begin(), order.end(),
                     [](const auto &a, const auto &b) {
                         return a.second->events > b.second->events;
                     });
    Json lanes = Json::array();
    for (std::size_t i = 0;
         i < std::min(order.size(), kMaxLaneEntries); ++i) {
        const auto &[key, st] = order[i];
        Json entry = Json::object();
        entry.set("kind", laneKindName(key.kind));
        entry.set("id", std::uint64_t(key.id));
        if (key.kind == LaneKind::Link)
            entry.set("dir", std::uint64_t(key.dir));
        entry.set("events", st->events);
        entry.set("busy_ps", std::uint64_t(st->busyPs));
        entry.set("first_tick", std::uint64_t(
            st->firstTick == kTickInvalid ? 0 : st->firstTick));
        entry.set("last_tick", std::uint64_t(st->lastTick));
        entry.set("cross_in", st->crossIn);
        lanes.push(std::move(entry));
    }
    doc.set("lanes", std::move(lanes));

    // Phase aggregates: every phase from 0 to the last populated one,
    // empty phases included, so the arrays line up with wall time.
    const auto &pl = sink_.phases();
    const std::uint64_t phaseCount =
        pl.empty() ? 0 : pl.rbegin()->first + 1;
    std::vector<std::uint64_t> phaseEvents(phaseCount, 0);
    std::vector<std::uint64_t> phaseActive(phaseCount, 0);
    std::vector<std::uint64_t> phaseMaxLane(phaseCount, 0);
    for (const auto &[p, row] : pl) {
        std::uint64_t total = 0;
        std::uint64_t maxLane = 0;
        for (const auto &[key, n] : row) {
            (void)key;
            total += n;
            maxLane = std::max(maxLane, n);
        }
        phaseEvents[p] = total;
        phaseActive[p] = std::uint64_t(row.size());
        phaseMaxLane[p] = maxLane;
    }
    Json phases = Json::object();
    phases.set("count", phaseCount);
    Json evArr = Json::array();
    Json activeArr = Json::array();
    Json maxArr = Json::array();
    for (std::uint64_t p = 0; p < phaseCount; ++p) {
        evArr.push(phaseEvents[p]);
        activeArr.push(phaseActive[p]);
        maxArr.push(phaseMaxLane[p]);
    }
    phases.set("events", std::move(evArr));
    phases.set("active_lanes", std::move(activeArr));
    phases.set("max_lane_events", std::move(maxArr));
    doc.set("phases", std::move(phases));

    // Lane-occupancy histogram: phases by how many lanes were live.
    std::map<std::uint64_t, std::uint64_t> hist;
    for (std::uint64_t p = 0; p < phaseCount; ++p)
        ++hist[phaseActive[p]];
    Json occupancy = Json::array();
    for (const auto &[active, count] : hist) {
        Json entry = Json::object();
        entry.set("active_lanes", active);
        entry.set("phases", count);
        occupancy.push(std::move(entry));
    }
    doc.set("occupancy_hist", std::move(occupancy));

    // Per-phase cells of the busiest lanes, for the tsm_lanes heatmap.
    std::map<LaneKey, std::size_t> selected;
    for (std::size_t i = 0;
         i < std::min(order.size(), kMaxHeatmapLanes); ++i)
        selected[order[i].first] = i;
    std::vector<std::vector<std::uint64_t>> cells(
        selected.size(), std::vector<std::uint64_t>(phaseCount, 0));
    for (const auto &[p, row] : pl)
        for (const auto &[key, n] : row)
            if (auto it = selected.find(key); it != selected.end())
                cells[it->second][p] = n;
    Json heatmap = Json::array();
    for (std::size_t i = 0;
         i < std::min(order.size(), kMaxHeatmapLanes); ++i) {
        const LaneKey &key = order[i].first;
        Json entry = Json::object();
        entry.set("kind", laneKindName(key.kind));
        entry.set("id", std::uint64_t(key.id));
        if (key.kind == LaneKind::Link)
            entry.set("dir", std::uint64_t(key.dir));
        Json arr = Json::array();
        for (std::uint64_t p = 0; p < phaseCount; ++p)
            arr.push(cells[selected.at(key)][p]);
        entry.set("cells", std::move(arr));
        heatmap.push(std::move(entry));
    }
    doc.set("heatmap", std::move(heatmap));

    // Speedup bounds under the phase-barrier model: per phase a pool
    // of W workers needs at least max(busiest lane, ceil(events/W))
    // steps (unit cost per event); the whole run can never beat the
    // event-DAG critical path.
    const std::uint64_t total = sink_.events();
    const std::uint64_t cp = sink_.criticalPathEvents();
    const auto bound = [total, cp](std::uint64_t steps) {
        if (total == 0)
            return 1.0;
        const std::uint64_t floor =
            std::max({steps, cp, std::uint64_t(1)});
        return double(total) / double(floor);
    };
    Json critical = Json::object();
    critical.set("events", cp);
    critical.set("bound", bound(cp));
    doc.set("critical_path", std::move(critical));

    Json speedup = Json::array();
    for (const unsigned workers : kLaneWorkerPools) {
        std::uint64_t steps = 0;
        for (std::uint64_t p = 0; p < phaseCount; ++p)
            steps += std::max(phaseMaxLane[p],
                              (phaseEvents[p] + workers - 1) / workers);
        Json entry = Json::object();
        entry.set("workers", std::uint64_t(workers));
        entry.set("bound", bound(steps));
        speedup.push(std::move(entry));
    }
    doc.set("speedup", std::move(speedup));

    std::uint64_t stepsInf = 0;
    for (std::uint64_t p = 0; p < phaseCount; ++p)
        stepsInf += phaseMaxLane[p];
    doc.set("speedup_inf", bound(stepsInf));
    return doc;
}

namespace {

/** Scale a cell against the row maximum into a density glyph. */
char
densityGlyph(std::uint64_t value, std::uint64_t max)
{
    static const char glyphs[] = " .:-=+*#%@";
    if (max == 0 || value == 0)
        return glyphs[0];
    const std::size_t levels = sizeof(glyphs) - 2; // skip blank + NUL
    std::size_t idx = 1 + value * (levels - 1) / max;
    idx = std::min(idx, levels);
    return glyphs[idx];
}

/** Bucket `cells` down to at most `cols` columns by summation. */
std::vector<std::uint64_t>
bucket(const Json &cells, unsigned cols)
{
    const std::size_t n = cells.size();
    const std::size_t width = std::max<std::size_t>(cols, 1);
    std::vector<std::uint64_t> out(std::min(n, width), 0);
    for (std::size_t i = 0; i < n; ++i)
        out[i * out.size() / n] += std::uint64_t(cells.at(i).integer());
    return out;
}

std::string
ribbonLine(const Json &cells, unsigned cols)
{
    const std::vector<std::uint64_t> buckets = bucket(cells, cols);
    std::uint64_t max = 0;
    for (const std::uint64_t b : buckets)
        max = std::max(max, b);
    std::string line;
    for (const std::uint64_t b : buckets)
        line += densityGlyph(b, max);
    return line;
}

std::string
laneLabel(const Json &entry)
{
    std::string label = format("{} {}", entry["kind"].str(),
                               entry["id"].integer());
    if (entry.has("dir"))
        label += entry["dir"].integer() == 0 ? " a>b" : " b>a";
    return label;
}

} // namespace

std::string
renderLanesSummary(const Json &lanes, unsigned top_k, unsigned cols)
{
    const std::string bench =
        lanes["bench"].isNull() ? "?" : lanes["bench"].str();
    std::string out = format("== tsm lanes: {} ==\n", bench);
    if (lanes.has("seed"))
        out += format("seed: {}\n", lanes["seed"].integer());

    const Json &totals = lanes["totals"];
    out += format("lookahead: {} ps -> {} phases\n",
                  lanes["lookahead_ps"].integer(),
                  lanes["phases"]["count"].integer());
    out += format("events: {} live (+{} schedule replay) across {} "
                  "lanes",
                  totals["events"].integer(),
                  totals["schedule_events"].integer(),
                  lanes["lanes_total"].integer());
    for (const Json &kind : lanes["lane_kinds"].items())
        if (kind["lanes"].integer() > 0)
            out += format(", {} {}", kind["lanes"].integer(),
                          kind["kind"].str());
    out += "\n";
    out += format("cross-lane: {} events depend on another lane ({} "
                  "inside their own phase)\n",
                  totals["cross_lane_events"].integer(),
                  totals["same_phase_cross_lane"].integer());
    out += format("critical path: {} events (bound {}x)\n",
                  lanes["critical_path"]["events"].integer(),
                  Table::num(lanes["critical_path"]["bound"].number(), 2));

    out += "\nprojected phase-barrier speedup bounds:\n";
    for (const Json &s : lanes["speedup"].items())
        out += format("  {} workers: {}x\n", s["workers"].integer(),
                      Table::num(s["bound"].number(), 2));
    out += format("  unlimited:  {}x\n",
                  Table::num(lanes["speedup_inf"].number(), 2));

    if (lanes["phases"]["events"].size() > 0) {
        out += format("\nphase ribbon (events per phase, {} cols):\n",
                      std::uint64_t(cols));
        out += "  " + ribbonLine(lanes["phases"]["events"], cols) + "\n";
    }

    const Json &heatmap = lanes["heatmap"];
    if (heatmap.size() > 0) {
        out += "\nbusiest lanes over phases:\n";
        for (std::size_t i = 0;
             i < std::min<std::size_t>(heatmap.size(), top_k); ++i) {
            const Json &entry = heatmap.at(i);
            std::uint64_t events = 0;
            for (const Json &c : entry["cells"].items())
                events += std::uint64_t(c.integer());
            out += format("  {} {} |{}|\n",
                          laneLabel(entry),
                          format("({} ev)", events),
                          ribbonLine(entry["cells"], cols));
        }
    }
    return out;
}

bool
checkLanesInvariants(const Json &lanes, std::string *why)
{
    bool ok = true;
    auto fail = [&ok, why](std::string line) {
        ok = false;
        if (why) {
            *why += line;
            *why += '\n';
        }
    };
    if (lanes["schema"].kind() != Json::Kind::String ||
        lanes["schema"].str() != kLanesSchema) {
        fail("not a tsm-parallel-v1 document");
        return false;
    }
    if (lanes["totals"].kind() != Json::Kind::Object ||
        lanes["lane_kinds"].kind() != Json::Kind::Array ||
        lanes["lanes"].kind() != Json::Kind::Array ||
        lanes["phases"].kind() != Json::Kind::Object ||
        lanes["speedup"].kind() != Json::Kind::Array) {
        fail("totals/lane_kinds/lanes/phases/speedup sections missing "
             "or malformed");
        return false;
    }

    const std::int64_t total = lanes["totals"]["events"].integer();
    const std::int64_t lanesTotal = lanes["lanes_total"].integer();

    std::int64_t kindEvents = 0;
    std::int64_t kindLanes = 0;
    for (const Json &kind : lanes["lane_kinds"].items()) {
        kindEvents += kind["events"].integer();
        kindLanes += kind["lanes"].integer();
    }
    if (kindEvents != total)
        fail(format("lane_kinds events sum {} != totals.events {}",
                    kindEvents, total));
    if (kindLanes != lanesTotal)
        fail(format("lane_kinds lanes sum {} != lanes_total {}",
                    kindLanes, lanesTotal));

    std::int64_t laneEvents = 0;
    for (const Json &lane : lanes["lanes"].items())
        laneEvents += lane["events"].integer();
    if (std::int64_t(lanes["lanes"].size()) == lanesTotal) {
        if (laneEvents != total)
            fail(format("per-lane events sum {} != totals.events {}",
                        laneEvents, total));
    } else if (laneEvents > total) {
        fail(format("truncated per-lane events sum {} exceeds "
                    "totals.events {}",
                    laneEvents, total));
    }

    const Json &phases = lanes["phases"];
    const std::int64_t phaseCount = phases["count"].integer();
    if (std::int64_t(phases["events"].size()) != phaseCount ||
        std::int64_t(phases["active_lanes"].size()) != phaseCount ||
        std::int64_t(phases["max_lane_events"].size()) != phaseCount) {
        fail(format("phase arrays disagree with phases.count {}",
                    phaseCount));
        return false;
    }
    std::int64_t phaseEvents = 0;
    for (std::int64_t p = 0; p < phaseCount; ++p) {
        const std::int64_t ev = phases["events"].at(p).integer();
        const std::int64_t active =
            phases["active_lanes"].at(p).integer();
        const std::int64_t maxLane =
            phases["max_lane_events"].at(p).integer();
        phaseEvents += ev;
        if (maxLane > ev)
            fail(format("phase {}: max lane {} exceeds phase events {}",
                        p, maxLane, ev));
        if ((ev > 0) != (active > 0))
            fail(format("phase {}: {} events but {} active lanes", p,
                        ev, active));
    }
    if (phaseEvents != total)
        fail(format("per-phase events sum {} != totals.events {}",
                    phaseEvents, total));

    std::int64_t histPhases = 0;
    for (const Json &entry : lanes["occupancy_hist"].items())
        histPhases += entry["phases"].integer();
    if (histPhases != phaseCount)
        fail(format("occupancy_hist covers {} phases, expected {}",
                    histPhases, phaseCount));

    const std::int64_t cp = lanes["critical_path"]["events"].integer();
    if (cp > total)
        fail(format("critical path {} exceeds total events {}", cp,
                    total));
    const double cpBound = lanes["critical_path"]["bound"].number();
    constexpr double eps = 1e-9;
    double prev = 0.0;
    for (const Json &s : lanes["speedup"].items()) {
        const double b = s["bound"].number();
        if (b < 1.0 - eps)
            fail(format("speedup bound for {} workers is {} < 1",
                        s["workers"].integer(), b));
        if (b < prev - eps)
            fail(format("speedup bound for {} workers decreases ({} "
                        "after {})",
                        s["workers"].integer(), b, prev));
        if (b > cpBound + eps)
            fail(format("speedup bound for {} workers ({}) exceeds the "
                        "critical-path bound {}",
                        s["workers"].integer(), b, cpBound));
        prev = b;
    }
    const double inf = lanes["speedup_inf"].number();
    if (inf < prev - eps)
        fail(format("speedup_inf {} below the 16-worker bound {}", inf,
                    prev));
    if (inf > cpBound + eps)
        fail(format("speedup_inf {} exceeds the critical-path bound {}",
                    inf, cpBound));
    return ok;
}

} // namespace tsm
