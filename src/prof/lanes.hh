/**
 * @file
 * Concurrency profiler: how much parallelism does the event stream
 * actually contain?
 *
 * ROADMAP item 1 proposes splitting the single global picosecond
 * event queue into per-chip/per-link lanes synchronized by
 * conservative lookahead — the classic conservative PDES move, made
 * exact here because the SSN's link latencies are statically known.
 * Before building that engine we measure its ceiling. A `LaneSink`
 * partitions the live trace stream into the same logical lanes the
 * parallel engine would use:
 *
 *  - one lane per chip (Chip events plus the chip-actor Ssn
 *    send/recv/span events — work a per-chip worker would execute),
 *  - one lane per link *direction* (Net tx/rx/mbe events of data
 *    flows; the direction is resolved from the SSN schedule's per-hop
 *    source chip),
 *  - one shared HAC/sync lane (Sync and Runtime events, control
 *    flits, and sync-flow traffic — the global machinery a parallel
 *    engine would serialize on anyway).
 *
 * Time is cut into *phases* of one conservative lookahead each — the
 * minimum time a flit needs to cross the fastest link (serialization
 * + propagation, the delay before the "rx" lands on the peer). Under
 * the phase-barrier execution model, events inside one phase can only
 * be ordered by intra-lane sequence, so a pool of W workers needs at
 * least max(busiest lane, ceil(events/W)) steps per phase. Summing
 * that over phases — and flooring at the event-DAG critical path
 * (intra-lane order plus PR 3's span ancestry across lanes) — gives
 * an exact Amdahl-style speedup bound per worker count: the number
 * CI can gate on ("the serial engine leaves >= Nx on the table").
 *
 * The schedule-replay events traceSchedule() emits before the run
 * ("hop"/"flow"/"makespan") are bookkeeping, not live work; they are
 * counted separately and excluded from every lane account, so the
 * reconciliation invariant — per-lane and per-phase event counts both
 * sum exactly to the live total — stays exact.
 *
 * A `LaneCollector` bundles the sink with run identity and the
 * schedule-derived lookahead/direction tables and emits one
 * byte-deterministic `tsm-parallel-v1` document. Like hostprof and
 * blame it is a separate document on purpose: enabling --lanes must
 * not perturb any other artifact.
 */

#ifndef TSM_PROF_LANES_HH
#define TSM_PROF_LANES_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "common/json.hh"
#include "common/units.hh"
#include "net/topology.hh"
#include "ssn/scheduler.hh"
#include "trace/trace.hh"

namespace tsm {

/** Schema tag stamped into every lanes document. */
inline constexpr const char *kLanesSchema = "tsm-parallel-v1";

/** Worker-pool sizes the speedup bound is projected for. */
inline constexpr unsigned kLaneWorkerPools[] = {2, 4, 8, 16};

/**
 * The lookahead used when no topology is attached: one vector's
 * serialization plus intra-node propagation, the fastest possible
 * cross-chip influence in any deployed topology.
 */
inline constexpr Tick kDefaultLookaheadPs =
    Tick(kVectorSerializationPs) + linkPropagationPs(LinkClass::IntraNode);

/**
 * Conservative lookahead of `topo`: the minimum over its in-service
 * links of serialization + propagation — the earliest a departure can
 * land an "rx" on the peer chip. Falls back to kDefaultLookaheadPs
 * for link-less topologies.
 */
Tick conservativeLookaheadPs(const Topology &topo);

/** What kind of worker a lane belongs to. */
enum class LaneKind : std::uint8_t
{
    Chip, ///< one per chip: issue, halts, Ssn send/recv
    Link, ///< one per link direction: data-flow tx/rx/mbe
    Sync, ///< the single shared HAC/sync/runtime lane
};

/** Printable name of a lane kind ("chip", "link", "sync"). */
const char *laneKindName(LaneKind kind);

/** Identity of one lane. Ordering is the serialization order. */
struct LaneKey
{
    LaneKind kind = LaneKind::Sync;
    std::uint32_t id = 0;     ///< chip id / link id / 0
    std::uint8_t dir = 0;     ///< link lanes: 0 = a->b, 1 = b->a

    bool
    operator<(const LaneKey &o) const
    {
        if (kind != o.kind)
            return kind < o.kind;
        if (id != o.id)
            return id < o.id;
        return dir < o.dir;
    }

    bool
    operator==(const LaneKey &o) const
    {
        return kind == o.kind && id == o.id && dir == o.dir;
    }
};

/** One lane's account. */
struct LaneStats
{
    std::uint64_t events = 0;

    /** Sum of event durations (busy time a worker would execute). */
    Tick busyPs = 0;

    Tick firstTick = kTickInvalid;
    Tick lastTick = 0;

    /** Events here whose causing span last advanced in another lane. */
    std::uint64_t crossIn = 0;

    /** Critical-path depth of the lane's latest event (internal). */
    std::uint64_t depth = 0;
};

/** Folds the trace stream into lane/phase accounts. Purely passive. */
class LaneSink : public TraceSink
{
  public:
    unsigned categoryMask() const override { return kTraceDefaultCats; }

    void event(const TraceEvent &ev) override;
    void finish() override {}

    /**
     * Phase width in picoseconds. Must be set before events arrive —
     * phase assignment happens at fold time.
     */
    void setLookahead(Tick ps) { lookahead_ = ps > 0 ? ps : 1; }
    Tick lookaheadPs() const { return lookahead_; }

    /**
     * Record that the link leg with child span `child` departs from
     * side `dir` of its link (0 = Link::a, 1 = Link::b). Data-flow
     * Net events with an unknown leg fall back to direction 0.
     */
    void noteHopDirection(SpanId child, std::uint8_t dir)
    {
        hopDir_[child] = dir;
    }

    /// @name Accounts (keyed deterministically)
    /// @{
    const std::map<LaneKey, LaneStats> &lanes() const { return lanes_; }

    /** phase index -> lane -> events folded into that cell. */
    const std::map<std::uint64_t, std::map<LaneKey, std::uint64_t>> &
    phases() const
    {
        return phaseLane_;
    }

    std::uint64_t events() const { return events_; }
    std::uint64_t scheduleEvents() const { return scheduleEvents_; }
    Tick busyPs() const { return busyPs_; }
    std::uint64_t spans() const { return std::uint64_t(spanState_.size()); }
    std::uint64_t crossLaneEvents() const { return crossLaneEvents_; }
    std::uint64_t samePhaseCrossLane() const { return samePhaseCrossLane_; }

    /** Longest chain of intra-lane order + span-ancestry edges. */
    std::uint64_t criticalPathEvents() const { return criticalPath_; }
    /// @}

  private:
    /** Where the last event of a transfer span landed. */
    struct SpanState
    {
        LaneKey lane;
        std::uint64_t phase = 0;
        std::uint64_t depth = 0;
    };

    LaneKey classify(const TraceEvent &ev) const;

    Tick lookahead_ = kDefaultLookaheadPs;
    std::map<SpanId, std::uint8_t> hopDir_;

    std::map<LaneKey, LaneStats> lanes_;
    std::map<std::uint64_t, std::map<LaneKey, std::uint64_t>> phaseLane_;
    std::map<SpanId, SpanState> spanState_;

    std::uint64_t events_ = 0;
    std::uint64_t scheduleEvents_ = 0;
    Tick busyPs_ = 0;
    std::uint64_t crossLaneEvents_ = 0;
    std::uint64_t samePhaseCrossLane_ = 0;
    std::uint64_t criticalPath_ = 0;
};

/** Collects one run's lane accounts and serializes them. */
class LaneCollector
{
  public:
    /** The trace sink to attach to the run's Tracer. */
    LaneSink &sink() { return sink_; }
    const LaneSink &sink() const { return sink_; }

    /** Identity stamped into the document. */
    void setBench(std::string name) { bench_ = std::move(name); }
    void setSeed(std::uint64_t seed);

    /**
     * Derive the conservative lookahead from `topo` and the link-leg
     * direction table from `sched`. Must run before the trace stream
     * starts — runScheduledScenario does this automatically.
     */
    void setSchedule(const NetworkSchedule &sched, const Topology &topo);

    /**
     * Build the tsm-parallel-v1 document. Call after the trace stream
     * is finished. Deterministic: same-seed runs emit identical
     * bytes.
     */
    Json report() const;

  private:
    LaneSink sink_;
    std::string bench_ = "unknown";
    std::uint64_t seed_ = 0;
    bool hasSeed_ = false;
};

/**
 * Render a lanes document as a human-readable summary: run header,
 * the speedup-bound table, the phase ribbon (events per phase), and
 * the per-lane heatmap of the `top_k` busiest lanes over phases,
 * bucketed to `cols` columns. Accepts any "tsm-parallel-v1" document,
 * in-process or reloaded from disk.
 */
std::string renderLanesSummary(const Json &lanes, unsigned top_k = 8,
                               unsigned cols = 64);

/**
 * Validate the reconciliation invariants of a lanes document: the
 * per-kind lane totals and the per-phase counts each sum exactly to
 * the live event total (and the fully serialized per-lane array too,
 * when it was not truncated), the occupancy histogram covers every
 * phase, and the projected speedup bounds are >= 1, monotone in the
 * worker count, and capped by the critical-path bound. Returns true
 * when all hold; appends one line per violation to `*why` otherwise.
 */
bool checkLanesInvariants(const Json &lanes, std::string *why = nullptr);

} // namespace tsm

#endif // TSM_PROF_LANES_HH
