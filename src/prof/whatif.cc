#include "prof/whatif.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "common/table.hh"
#include "common/units.hh"
#include "net/link_params.hh"
#include "prof/ssn_analysis.hh"
#include "ssn/reservation.hh"
#include "ssn/transfer.hh"

namespace tsm {

const char *
leverKindName(LeverKind k)
{
    switch (k) {
      case LeverKind::LinkLatency:
        return "link_latency";
      case LeverKind::LinkBandwidth:
        return "link_bandwidth";
      case LeverKind::FuThroughput:
        return "fu_throughput";
      case LeverKind::HacDrift:
        return "hac_drift";
      case LeverKind::FlowRemoval:
        return "flow_removal";
    }
    return "?";
}

namespace {

std::string
factorText(double factor)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", factor);
    return buf;
}

} // namespace

std::string
Perturbation::label() const
{
    switch (kind) {
      case LeverKind::LinkLatency:
        return "link " + std::to_string(target) + " latency x" +
               factorText(factor);
      case LeverKind::LinkBandwidth:
        return "link " + std::to_string(target) + " bandwidth x" +
               factorText(factor);
      case LeverKind::FuThroughput:
        return "tsp " + std::to_string(target) + " compute x" +
               factorText(factor);
      case LeverKind::HacDrift:
        return "hac drift eliminated";
      case LeverKind::FlowRemoval:
        return "flow " + std::to_string(target) + " removed";
    }
    return "?";
}

std::string
Perturbation::key() const
{
    std::string k = leverKindName(kind);
    k += ":" + std::to_string(target);
    if (kind == LeverKind::LinkLatency || kind == LeverKind::LinkBandwidth ||
        kind == LeverKind::FuThroughput)
        k += ":x" + factorText(factor);
    return k;
}

WhatIfEngine::WhatIfEngine(const NetworkSchedule &sched,
                           const Topology &topo,
                           const std::vector<TensorTransfer> &transfers)
    : sched_(&sched), topo_(&topo), transfers_(transfers)
{
    for (const TensorTransfer &t : transfers_)
        flowEarliest_[t.flow] = t.earliest;

    std::set<FlowId> flowSet;
    std::set<LinkId> linkSet;
    for (std::uint32_t v = 0; v < sched_->vectors.size(); ++v) {
        const ScheduledVector &sv = sched_->vectors[v];
        flowSet.insert(sv.flow);
        for (std::uint32_t h = 0; h < sv.hops.size(); ++h) {
            const ScheduledHop &sh = sv.hops[h];
            linkSet.insert(sh.link);
            HopNode n;
            n.link = sh.link;
            n.from = sh.from;
            n.depart = sh.depart;
            n.arrive = sh.arrive;
            n.vec = v;
            n.hop = h;
            n.prevInVec = h == 0 ? -1 : std::int32_t(nodes_.size()) - 1;
            nodes_.push_back(n);
        }
    }
    flowOrder_.assign(flowSet.begin(), flowSet.end());
    usedLinks_.assign(linkSet.begin(), linkSet.end());

    // Process hops in departure order: every constraint predecessor
    // (previous hop of the vector, previous window on the direction,
    // previous issue slot on the chip) departs strictly earlier, so a
    // single forward pass over this order sees all inputs resolved.
    order_.resize(nodes_.size());
    for (std::size_t i = 0; i < order_.size(); ++i)
        order_[i] = std::int32_t(i);
    std::sort(order_.begin(), order_.end(),
              [this](std::int32_t a, std::int32_t b) {
                  const HopNode &na = nodes_[a];
                  const HopNode &nb = nodes_[b];
                  if (na.depart != nb.depart)
                      return na.depart < nb.depart;
                  if (na.vec != nb.vec)
                      return na.vec < nb.vec;
                  return na.hop < nb.hop;
              });

    std::map<std::uint64_t, std::int32_t> lastDir;
    std::map<TspId, std::int32_t> lastIssue;
    const auto &links = topo_->links();
    for (std::int32_t i : order_) {
        HopNode &n = nodes_[i];
        const std::uint64_t dkey =
            std::uint64_t(n.link) * 2 +
            (n.from == links[n.link].a ? 0 : 1);
        if (auto it = lastDir.find(dkey); it != lastDir.end())
            n.prevDir = it->second;
        lastDir[dkey] = i;
        if (auto it = lastIssue.find(n.from); it != lastIssue.end())
            n.prevIssue = it->second;
        lastIssue[n.from] = i;
    }
}

WhatIfEngine::Recompute
WhatIfEngine::recompute(const Perturbation &p) const
{
    const auto &links = topo_->links();
    const double f = p.factor > 0.0 ? p.factor : 1.0;

    auto serPs = [&](LinkId l) {
        double s = kVectorSerializationPs;
        if (p.kind == LeverKind::LinkBandwidth && p.target == l)
            s /= f;
        return s;
    };
    auto propPs = [&](LinkId l) {
        double pr = double(linkPropagationPs(links[l].cls));
        if (p.kind == LeverKind::LinkLatency && p.target == l)
            pr /= f;
        return pr;
    };
    // Mirrors ssn/transfer.hh flightCycles() so the unperturbed value
    // is reproduced bit-for-bit.
    auto flight = [&](LinkId l) {
        return Cycle((serPs(l) + propPs(l)) / kCorePeriodPs) + 1;
    };
    auto window = [&](LinkId l) {
        if (p.kind == LeverKind::LinkBandwidth && p.target == l) {
            const Cycle w =
                Cycle(std::ceil(double(kScheduleWindowCycles) / f));
            return w < 1 ? Cycle(1) : w;
        }
        return kScheduleWindowCycles;
    };
    auto earliest = [&](FlowId flow) {
        Cycle e = 0;
        if (auto it = flowEarliest_.find(flow); it != flowEarliest_.end())
            e = it->second;
        // Scale only flows produced on the perturbed chip.
        if (p.kind == LeverKind::FuThroughput && e > 0)
            for (const TensorTransfer &t : transfers_)
                if (t.flow == flow && t.src == p.target)
                    e = Cycle(std::llround(double(e) / f));
        return e;
    };

    const FlowId removedFlow =
        p.kind == LeverKind::FlowRemoval ? FlowId(p.target) : kFlowInvalid;

    Recompute r;
    r.depart.resize(nodes_.size(), 0);
    r.arrive.resize(nodes_.size(), 0);
    r.removed.resize(nodes_.size(), false);
    for (std::int32_t i : order_) {
        const HopNode &n = nodes_[i];
        const FlowId flow = sched_->vectors[n.vec].flow;
        if (flow == removedFlow) {
            r.removed[i] = true;
            continue;
        }
        Cycle c = n.hop == 0 ? earliest(flow)
                             : r.arrive[n.prevInVec] + forwardCycles();
        for (std::int32_t q = n.prevDir; q != -1; q = nodes_[q].prevDir) {
            if (r.removed[q])
                continue;
            // Same direction implies same link as n.
            c = std::max(c, r.depart[q] + window(nodes_[q].link));
            break;
        }
        for (std::int32_t q = n.prevIssue; q != -1;
             q = nodes_[q].prevIssue) {
            if (r.removed[q])
                continue;
            c = std::max(c, r.depart[q] + 1);
            break;
        }
        r.depart[i] = c;
        r.arrive[i] = c + flight(n.link);
        if (r.arrive[i] > r.makespan)
            r.makespan = r.arrive[i];
    }
    return r;
}

WhatIfProjection
WhatIfEngine::project(const Perturbation &p) const
{
    const Recompute r = recompute(p);

    WhatIfProjection pr;
    pr.lever = p;
    pr.baseMakespan = sched_->makespan;
    pr.projectedMakespan = r.makespan;
    pr.deltaCycles =
        std::int64_t(pr.baseMakespan) - std::int64_t(pr.projectedMakespan);

    std::map<FlowId, Cycle> newCompletion;
    std::set<FlowId> removedFlows;
    std::size_t node = 0;
    for (std::uint32_t v = 0; v < sched_->vectors.size(); ++v) {
        const ScheduledVector &sv = sched_->vectors[v];
        for (std::uint32_t h = 0; h < sv.hops.size(); ++h, ++node) {
            if (r.removed[node]) {
                removedFlows.insert(sv.flow);
                if (h + 1 == sv.hops.size())
                    ++pr.removedVectors;
                continue;
            }
            if (r.depart[node] != sv.hops[h].depart)
                ++pr.affectedHops;
            Cycle &c = newCompletion[sv.flow];
            c = std::max(c, r.arrive[node]);
        }
    }
    for (FlowId flow : flowOrder_) {
        if (removedFlows.count(flow)) {
            pr.affectedFlows.push_back(flow);
            continue;
        }
        const auto it = sched_->flows.find(flow);
        const Cycle before =
            it == sched_->flows.end() ? 0 : it->second.lastArrival;
        if (newCompletion[flow] != before)
            pr.affectedFlows.push_back(flow);
    }
    return pr;
}

WhatIfCounterfactual
WhatIfEngine::rebuild(const Perturbation &p) const
{
    const Recompute r = recompute(p);
    const FlowId removedFlow =
        p.kind == LeverKind::FlowRemoval ? FlowId(p.target) : kFlowInvalid;

    WhatIfCounterfactual cf;
    cf.projection = project(p);

    std::size_t node = 0;
    for (std::uint32_t v = 0; v < sched_->vectors.size(); ++v) {
        const ScheduledVector &sv = sched_->vectors[v];
        if (sv.flow == removedFlow) {
            node += sv.hops.size();
            continue;
        }
        ScheduledVector out = sv;
        for (std::uint32_t h = 0; h < sv.hops.size(); ++h, ++node) {
            out.hops[h].depart = r.depart[node];
            out.hops[h].arrive = r.arrive[node];
        }
        cf.schedule.vectors.push_back(std::move(out));
    }
    for (const ScheduledVector &sv : cf.schedule.vectors) {
        FlowSummary &fs = cf.schedule.flows[sv.flow];
        if (fs.vectors == 0) {
            fs.flow = sv.flow;
            fs.firstDeparture = sv.departure();
            if (auto it = sched_->flows.find(sv.flow);
                it != sched_->flows.end())
                fs.pathsUsed = it->second.pathsUsed;
        }
        fs.firstDeparture = std::min(fs.firstDeparture, sv.departure());
        fs.lastArrival = std::max(fs.lastArrival, sv.arrival());
        ++fs.vectors;
    }
    cf.schedule.makespan = r.makespan;

    for (const TensorTransfer &t : transfers_) {
        if (t.flow == removedFlow)
            continue;
        TensorTransfer out = t;
        if (p.kind == LeverKind::FuThroughput && t.src == p.target &&
            p.factor > 0.0)
            out.earliest =
                Cycle(std::llround(double(t.earliest) / p.factor));
        cf.transfers.push_back(out);
    }

    if ((p.kind == LeverKind::LinkLatency ||
         p.kind == LeverKind::LinkBandwidth) &&
        p.factor > 0.0) {
        const auto &links = topo_->links();
        if (p.target < links.size()) {
            double ser = kVectorSerializationPs;
            double prop = double(linkPropagationPs(links[p.target].cls));
            if (p.kind == LeverKind::LinkBandwidth)
                ser /= p.factor;
            else
                prop /= p.factor;
            cf.linkTiming.push_back({LinkId(p.target),
                                     Tick(std::llround(ser)),
                                     Tick(std::llround(prop))});
        }
    }
    return cf;
}

std::vector<Perturbation>
WhatIfEngine::enumerateLevers(double factor) const
{
    std::vector<Perturbation> out;
    for (LinkId l : usedLinks_)
        out.push_back({LeverKind::LinkLatency, l, factor});
    for (LinkId l : usedLinks_)
        out.push_back({LeverKind::LinkBandwidth, l, factor});

    // Compute levers only where they can matter: chips that source a
    // flow whose producer finishes after cycle 0.
    std::set<TspId> sources;
    for (const TensorTransfer &t : transfers_)
        if (t.earliest > 0)
            sources.insert(t.src);
    for (TspId s : sources)
        out.push_back({LeverKind::FuThroughput, s, factor});

    if (flowOrder_.size() > 1)
        for (FlowId f : flowOrder_)
            out.push_back({LeverKind::FlowRemoval, std::uint32_t(f), 1.0});

    out.push_back({LeverKind::HacDrift, 0, 1.0});
    return out;
}

bool
WhatIfEngine::identityExact(std::string *why) const
{
    const Recompute r = recompute({LeverKind::HacDrift, 0, 1.0});
    std::size_t node = 0;
    for (std::uint32_t v = 0; v < sched_->vectors.size(); ++v) {
        const ScheduledVector &sv = sched_->vectors[v];
        for (std::uint32_t h = 0; h < sv.hops.size(); ++h, ++node) {
            if (r.depart[node] == sv.hops[h].depart &&
                r.arrive[node] == sv.hops[h].arrive)
                continue;
            if (why) {
                char buf[160];
                std::snprintf(buf, sizeof(buf),
                              "flow %u seq %u hop %u: scheduled "
                              "depart %llu, recomputed %llu",
                              unsigned(sv.flow), sv.seq, h,
                              (unsigned long long)sv.hops[h].depart,
                              (unsigned long long)r.depart[node]);
                *why = buf;
            }
            return false;
        }
    }
    if (r.makespan != sched_->makespan) {
        if (why)
            *why = "recomputed makespan " + std::to_string(r.makespan) +
                   " != scheduled " + std::to_string(sched_->makespan);
        return false;
    }
    return true;
}

std::vector<WhatIfProjection>
rankedLevers(const WhatIfEngine &engine, double factor)
{
    std::vector<WhatIfProjection> out;
    for (const Perturbation &p : engine.enumerateLevers(factor))
        out.push_back(engine.project(p));
    std::sort(out.begin(), out.end(),
              [](const WhatIfProjection &a, const WhatIfProjection &b) {
                  if (a.deltaCycles != b.deltaCycles)
                      return a.deltaCycles > b.deltaCycles;
                  if (a.lever.kind != b.lever.kind)
                      return std::uint8_t(a.lever.kind) <
                             std::uint8_t(b.lever.kind);
                  return a.lever.target < b.lever.target;
              });
    return out;
}

bool
staticCompletionCycles(const NetworkSchedule &sched, const Topology &topo,
                       Cycle *out, std::string *error)
{
    ProgramSet programs;
    if (!tryBuildPrograms(sched, topo, {}, {}, programs, error))
        return false;
    Cycle last = 0;
    for (const Program &prog : programs.byChip)
        for (const Instr &i : prog.instrs)
            if (i.op == Op::Recv && i.issueAt != kCycleUnscheduled &&
                i.issueAt > last)
                last = i.issueAt;
    *out = last;
    return true;
}

void
WhatIfCollector::setSeed(std::uint64_t seed)
{
    seed_ = seed;
    hasSeed_ = true;
}

void
WhatIfCollector::setSchedule(const NetworkSchedule &sched,
                             const Topology &topo,
                             const std::vector<TensorTransfer> &transfers)
{
    hasSchedule_ = true;
    makespan_ = sched.makespan;
    vectors_ = sched.vectors.size();
    flows_ = sched.flows.size();

    const SsnAnalysis analysis = analyzeSchedule(sched, topo, transfers);
    predictedCompletion_ = analysis.predictedCompletionCycles;
    hops_ = analysis.hopsTotal;
    contendedHops_ = analysis.contendedHops;
    criticalPathHops_ = analysis.criticalPath.size();

    std::set<LinkId> critLinks;
    std::set<FlowId> critFlows;
    for (const CritHop &h : analysis.criticalPath) {
        critLinks.insert(h.link);
        critFlows.insert(h.flow);
    }
    std::set<TspId> critSources;
    for (const TensorTransfer &t : transfers)
        if (critFlows.count(t.flow))
            critSources.insert(t.src);

    std::set<LinkId> used;
    for (const ScheduledVector &sv : sched.vectors)
        for (const ScheduledHop &h : sv.hops)
            used.insert(h.link);
    linksUsed_ = used.size();

    lowered_ = staticCompletionCycles(sched, topo, &staticCompletion_);

    const WhatIfEngine engine(sched, topo, transfers);
    levers_.clear();
    for (const WhatIfProjection &pr : rankedLevers(engine, factor_)) {
        LeverRecord rec;
        rec.lever = pr.lever;
        rec.projectedMakespan = pr.projectedMakespan;
        rec.deltaCycles = pr.deltaCycles;
        rec.affectedFlowsTotal = pr.affectedFlows.size();
        rec.affectedFlows = pr.affectedFlows;
        if (rec.affectedFlows.size() > 8)
            rec.affectedFlows.resize(8);
        rec.affectedHops = pr.affectedHops;
        rec.removedVectors = pr.removedVectors;
        switch (pr.lever.kind) {
          case LeverKind::LinkLatency:
          case LeverKind::LinkBandwidth:
            rec.onCriticalPath = critLinks.count(LinkId(pr.lever.target));
            break;
          case LeverKind::FuThroughput:
            rec.onCriticalPath = critSources.count(TspId(pr.lever.target));
            break;
          case LeverKind::FlowRemoval:
            rec.onCriticalPath = critFlows.count(FlowId(pr.lever.target));
            break;
          case LeverKind::HacDrift:
            rec.onCriticalPath = false;
            break;
        }
        levers_.push_back(std::move(rec));
    }
}

Json
WhatIfCollector::report() const
{
    Json doc = Json::object();
    doc.set("schema", kWhatIfSchema);
    doc.set("bench", bench_);
    doc.set("seed", std::int64_t(seed_));
    doc.set("lever_factor", factor_);

    const Tick lastTick = sink_.last();
    const bool observed = lastTick > 0;
    const Cycle observedCompletion =
        observed ? Cycle(std::llround(double(lastTick) / kCorePeriodPs))
                 : 0;

    Json base = Json::object();
    base.set("makespan_cycles", std::int64_t(makespan_));
    base.set("predicted_completion_cycles",
             std::int64_t(predictedCompletion_));
    if (lowered_)
        base.set("static_completion_cycles",
                 std::int64_t(staticCompletion_));
    else
        base.set("static_completion_cycles", Json());
    if (observed)
        base.set("observed_completion_cycles",
                 std::int64_t(observedCompletion));
    else
        base.set("observed_completion_cycles", Json());
    base.set("hops", std::int64_t(hops_));
    base.set("vectors", std::int64_t(vectors_));
    base.set("flows", std::int64_t(flows_));
    base.set("links_used", std::int64_t(linksUsed_));
    base.set("contended_hops", std::int64_t(contendedHops_));
    base.set("critical_path_hops", std::int64_t(criticalPathHops_));
    doc.set("base", std::move(base));

    // The drift lever's delta is the only part of the document that
    // depends on the simulated run: observed completion minus the
    // static completion of the lowered programs. Drift-free clocks
    // make it exactly zero.
    std::vector<LeverRecord> ranked = levers_;
    for (LeverRecord &rec : ranked)
        if (rec.lever.kind == LeverKind::HacDrift && lowered_ && observed)
            rec.deltaCycles = std::int64_t(observedCompletion) -
                              std::int64_t(staticCompletion_);
    std::sort(ranked.begin(), ranked.end(),
              [](const LeverRecord &a, const LeverRecord &b) {
                  if (a.deltaCycles != b.deltaCycles)
                      return a.deltaCycles > b.deltaCycles;
                  if (a.lever.kind != b.lever.kind)
                      return std::uint8_t(a.lever.kind) <
                             std::uint8_t(b.lever.kind);
                  return a.lever.target < b.lever.target;
              });

    Json levers = Json::array();
    std::size_t shown = 0;
    for (const LeverRecord &rec : ranked) {
        if (shown >= maxLevers_)
            break;
        ++shown;
        Json l = Json::object();
        l.set("rank", std::int64_t(shown));
        l.set("kind", leverKindName(rec.lever.kind));
        l.set("target", std::int64_t(rec.lever.target));
        l.set("factor", rec.lever.factor);
        l.set("label", rec.lever.label());
        l.set("key", rec.lever.key());
        l.set("projected_makespan_cycles",
              std::int64_t(rec.projectedMakespan));
        l.set("delta_cycles", rec.deltaCycles);
        l.set("rel", makespan_ > 0
                         ? double(rec.deltaCycles) / double(makespan_)
                         : 0.0);
        Json flows = Json::array();
        for (FlowId f : rec.affectedFlows)
            flows.push(std::int64_t(f));
        l.set("affected_flows", std::move(flows));
        l.set("affected_flows_total",
              std::int64_t(rec.affectedFlowsTotal));
        l.set("affected_hops", std::int64_t(rec.affectedHops));
        l.set("removed_vectors", std::int64_t(rec.removedVectors));
        l.set("on_critical_path", rec.onCriticalPath);
        levers.push(std::move(l));
    }
    doc.set("levers", std::move(levers));
    doc.set("levers_total", std::int64_t(ranked.size()));
    doc.set("levers_shown", std::int64_t(shown));
    return doc;
}

std::string
renderWhatIfSummary(const Json &doc, unsigned top_k)
{
    std::string out;
    out += "=== what-if: " + doc["bench"].str() + " seed " +
           std::to_string(doc["seed"].integer()) + " ===\n";

    const Json &base = doc["base"];
    out += "base: makespan " +
           std::to_string(base["makespan_cycles"].integer()) +
           " cycles, completion " +
           (base["static_completion_cycles"].isNull()
                ? std::string("-")
                : std::to_string(
                      base["static_completion_cycles"].integer())) +
           " static / " +
           (base["observed_completion_cycles"].isNull()
                ? std::string("-")
                : std::to_string(
                      base["observed_completion_cycles"].integer())) +
           " observed, " + std::to_string(base["hops"].integer()) +
           " hops on " + std::to_string(base["links_used"].integer()) +
           " links (" + std::to_string(base["contended_hops"].integer()) +
           " contended)\n";

    const Json &levers = doc["levers"];
    out += "levers (factor x" + factorText(doc["lever_factor"].number()) +
           ", " + std::to_string(std::min<std::int64_t>(
                      top_k, std::int64_t(levers.size()))) +
           " of " + std::to_string(doc["levers_total"].integer()) +
           " shown):\n";

    Table table({"rank", "lever", "delta", "rel", "projected", "flows",
                 "crit"});
    unsigned shown = 0;
    for (const Json &l : levers.items()) {
        if (shown++ >= top_k)
            break;
        char rel[32];
        std::snprintf(rel, sizeof(rel), "%+.1f%%",
                      100.0 * l["rel"].number());
        table.addRow({std::to_string(l["rank"].integer()),
                      l["label"].str(),
                      std::to_string(l["delta_cycles"].integer()), rel,
                      std::to_string(
                          l["projected_makespan_cycles"].integer()),
                      std::to_string(l["affected_flows_total"].integer()),
                      l["on_critical_path"].boolean() ? "*" : ""});
    }
    out += table.ascii();
    return out;
}

bool
checkWhatIfInvariants(const Json &doc, std::string *why)
{
    auto fail = [why](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };
    if (doc["schema"].isNull() || doc["schema"].str() != kWhatIfSchema)
        return fail("not a " + std::string(kWhatIfSchema) + " document");
    const Json &base = doc["base"];
    if (!base["makespan_cycles"].isNumber())
        return fail("base.makespan_cycles missing");
    const std::int64_t makespan = base["makespan_cycles"].integer();
    const Json &levers = doc["levers"];
    if (levers.kind() != Json::Kind::Array)
        return fail("levers missing");

    std::int64_t prevDelta = 0;
    bool first = true;
    std::size_t rank = 0;
    for (const Json &l : levers.items()) {
        ++rank;
        const std::string label =
            l["label"].isNull() ? "?" : l["label"].str();
        if (l["rank"].integer() != std::int64_t(rank))
            return fail("lever \"" + label + "\": rank " +
                        std::to_string(l["rank"].integer()) +
                        " out of order (expected " +
                        std::to_string(rank) + ")");
        const std::int64_t delta = l["delta_cycles"].integer();
        const std::int64_t projected =
            l["projected_makespan_cycles"].integer();
        const std::string kind = l["kind"].str();
        if (kind == "hac_drift") {
            // The drift lever leaves the schedule untouched; its delta
            // is measured against the simulated run instead.
            if (projected != makespan)
                return fail("lever \"" + label +
                            "\": drift lever changed the projected "
                            "makespan");
        } else {
            if (delta != makespan - projected)
                return fail(
                    "lever \"" + label + "\": delta " +
                    std::to_string(delta) +
                    " != base - projected (" +
                    std::to_string(makespan - projected) + ")");
            const bool speedup =
                kind == "flow_removal" || l["factor"].number() >= 1.0;
            if (speedup && delta < 0)
                return fail("lever \"" + label +
                            "\": speedup lever projects a slowdown (" +
                            std::to_string(delta) + " cycles)");
        }
        if (!first && delta > prevDelta)
            return fail("lever \"" + label +
                        "\": ranked levers not sorted by delta");
        prevDelta = delta;
        first = false;
    }
    if (doc["levers_shown"].integer() != std::int64_t(rank))
        return fail("levers_shown != serialized lever count");
    return true;
}

} // namespace tsm
