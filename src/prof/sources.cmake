tsm_module(prof
    blame.cc
    profiler.cc
    report.cc
    ssn_analysis.cc
    whatif.cc
)
