tsm_module(prof
    profiler.cc
    report.cc
    ssn_analysis.cc
)
