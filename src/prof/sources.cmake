tsm_module(prof
    blame.cc
    lanes.cc
    profiler.cc
    report.cc
    ssn_analysis.cc
    whatif.cc
)
